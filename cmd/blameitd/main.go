// Command blameitd runs BlameIt as a long-lived HTTP service: an ingestion
// frontend accepting JSONL observation batches, a backend worker stepping
// the Algorithm 1 localization job as buckets seal, and read APIs for
// verdicts, reports, health, and metrics. It is the service-shaped
// counterpart of the batch `blameit` CLI: the same pipeline, fed over HTTP
// instead of from a file or a live simulator, producing byte-identical
// reports for the same telemetry.
//
// Usage:
//
//	blameitd [-addr :7031] [-scale small|medium|large] [-seed N]
//	         [-workload random|none] [-warmup N] [-days N] [-budget N]
//	         [-top N] [-workers N] [-manual-seal] [-max-batch-mb N]
//	         [-max-pending N] [-retain-reports N]
//	         [-data-dir DIR] [-fsync always|interval|off]
//	         [-fsync-interval-ms N] [-wal-segment-mb N] [-compact-every N]
//
// With -data-dir the daemon is crash-safe: ingested buckets and published
// reports are journaled to a write-ahead log under DIR, and a restart
// (kill -9 included) replays the journal before serving — /v1/reports
// comes back byte-identical to an uninterrupted run. The WAL carries a
// fingerprint of the world and pipeline flags; restarting over the same
// DIR with different flags refuses to start rather than diverge.
//
// The world flags (-scale, -seed, -workload, -warmup, -days) must match
// the trace producer's, exactly as for `blameit -replay`: the daemon
// regenerates topology and routing from the seeds (configuration, not
// telemetry) and serves active-phase probes from the deterministic engine
// over that world. Feed it with the tracegen loadgen:
//
//	blameitd -addr :7031 &
//	blameit-tracegen -days 2 -post http://localhost:7031
//
// SIGTERM/SIGINT drain gracefully: ingestion stops with 503, every queued
// bucket is stepped, the in-flight window is flushed as a final report,
// and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"blameit/internal/bgp"
	"blameit/internal/faults"
	"blameit/internal/metrics"
	"blameit/internal/netmodel"
	"blameit/internal/pipeline"
	"blameit/internal/probe"
	"blameit/internal/server"
	"blameit/internal/sim"
	"blameit/internal/topology"
	"blameit/internal/wal"
)

type options struct {
	addr          string
	scaleName     string
	seed          int64
	workload      string
	warmup        int
	days          int
	budget        int
	topN          int
	workers       int
	manualSeal    bool
	maxBatchMB    int
	maxPending    int
	retainReports int

	dataDir         string
	fsyncPolicy     string
	fsyncIntervalMS int
	walSegmentMB    int
	compactEvery    int
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":7031", "HTTP listen address")
	flag.StringVar(&o.scaleName, "scale", "small", "world scale: small, medium or large")
	flag.Int64Var(&o.seed, "seed", 42, "deterministic seed for the world, faults and probe noise (must match the trace producer)")
	flag.StringVar(&o.workload, "workload", "random", "fault workload behind the probe engine: random or none (must match the trace producer)")
	flag.IntVar(&o.warmup, "warmup", 1, "warmup days of ingested telemetry used for expected-RTT learning before localization starts")
	flag.IntVar(&o.days, "days", 30, "horizon in days for fault and routing generation (bounds how far the probe engine can serve)")
	flag.IntVar(&o.budget, "budget", 50, "on-demand traceroutes per cloud location per day (0 = unlimited)")
	flag.IntVar(&o.topN, "top", 10, "tickets per job run (0 = unlimited)")
	flag.IntVar(&o.workers, "workers", 0, "goroutines for the Algorithm 1 job (0 = all cores)")
	flag.BoolVar(&o.manualSeal, "manual-seal", false, "seal buckets only via POST /v1/seal, never implicitly by later-bucket arrivals")
	flag.IntVar(&o.maxBatchMB, "max-batch-mb", 32, "largest accepted ingest body in MiB (413 beyond)")
	flag.IntVar(&o.maxPending, "max-pending", server.DefaultMaxPendingRecords, "ingest queue depth in records (429 beyond)")
	flag.IntVar(&o.retainReports, "retain-reports", server.DefaultMaxReports, "reports kept for the read APIs (oldest evicted)")
	flag.StringVar(&o.dataDir, "data-dir", "", "write-ahead log directory; empty runs in-memory only (no crash recovery)")
	flag.StringVar(&o.fsyncPolicy, "fsync", "interval", "WAL fsync policy: always (power-loss safe), interval, or off")
	flag.IntVar(&o.fsyncIntervalMS, "fsync-interval-ms", 100, "flush cadence in ms under -fsync interval")
	flag.IntVar(&o.walSegmentMB, "wal-segment-mb", 64, "WAL segment rotation size in MiB")
	flag.IntVar(&o.compactEvery, "compact-every", 0, "compact the WAL after every N journaled reports (0 = default, negative = never)")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "blameitd:", err)
		os.Exit(1)
	}
}

func scaleByName(name string) (topology.Scale, error) {
	switch name {
	case "small":
		return topology.SmallScale(), nil
	case "medium":
		return topology.MediumScale(), nil
	case "large":
		return topology.LargeScale(), nil
	default:
		return topology.Scale{}, fmt.Errorf("unknown scale %q (small|medium|large)", name)
	}
}

func run(o options) error {
	scale, err := scaleByName(o.scaleName)
	if err != nil {
		return err
	}
	if o.warmup < 0 || o.days < 1 {
		return fmt.Errorf("warmup must be >= 0 and days >= 1")
	}
	w := topology.Generate(scale, o.seed)
	horizon := netmodel.Bucket(o.days * netmodel.BucketsPerDay)

	var fs []faults.Fault
	switch o.workload {
	case "random":
		fs = faults.Generate(w, faults.DefaultGenerateConfig(), horizon, o.seed+1).Faults
	case "none":
	default:
		return fmt.Errorf("unknown workload %q (random|none)", o.workload)
	}

	reg := metrics.NewRegistry()
	tbl := bgp.NewTable(w, bgp.DefaultChurnConfig(), horizon, o.seed+2)
	scfg := sim.DefaultConfig(o.seed + 3)
	scfg.Workers = o.workers
	if err := scfg.Validate(); err != nil {
		return err
	}
	s := sim.New(w, tbl, faults.NewSchedule(fs), scfg)

	pcfg := pipeline.DefaultConfig()
	pcfg.BudgetPerCloudPerDay = o.budget
	pcfg.TopNAlerts = o.topN
	pcfg.Workers = o.workers
	pcfg.Metrics = reg
	cfg := server.Config{
		Pipeline:          pcfg,
		WarmupBuckets:     netmodel.Bucket(o.warmup * netmodel.BucketsPerDay),
		MaxBatchBytes:     int64(o.maxBatchMB) << 20,
		MaxPendingRecords: o.maxPending,
		MaxReports:        o.retainReports,
		ManualSeal:        o.manualSeal,
	}
	if o.dataDir != "" {
		policy, err := wal.ParsePolicy(o.fsyncPolicy)
		if err != nil {
			return err
		}
		cfg.DataDir = o.dataDir
		cfg.CompactEveryReports = o.compactEvery
		cfg.WAL = wal.Config{
			Fsync:         policy,
			FsyncInterval: time.Duration(o.fsyncIntervalMS) * time.Millisecond,
			SegmentBytes:  int64(o.walSegmentMB) << 20,
			// The fingerprint pins every flag replay determinism depends
			// on; a mismatched restart refuses to reuse the directory.
			Meta: fmt.Sprintf("scale=%s seed=%d workload=%s warmup=%d days=%d budget=%d top=%d manual=%v",
				o.scaleName, o.seed, o.workload, o.warmup, o.days, o.budget, o.topN, o.manualSeal),
		}
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	// The daemon's pipeline reads observations from the HTTP ingest queue;
	// only active-phase probes come from the deterministic engine over the
	// regenerated world — the same split as `blameit -replay`.
	srv, err := server.New(pipeline.Deps{
		World:  w,
		Table:  tbl,
		Prober: probe.NewEngine(s, pcfg.ProbeNoiseMS),
	}, cfg)
	if err != nil {
		return err
	}

	st := w.Stats()
	fmt.Printf("world: %d clouds, %d metros, %d ASes, %d BGP prefixes, %d /24s, %d active clients\n",
		st.Clouds, st.Metros, st.ASes, st.BGPPrefixes, st.Prefix24s, st.Clients)
	if o.dataDir != "" {
		wh := srv.WALHealth()
		fmt.Printf("wal: %s (fsync %s); recovered %d buckets, %d reports, %d journaled batches; %d corrupt bytes truncated\n",
			o.dataDir, o.fsyncPolicy, wh.RecoveredBuckets, wh.RecoveredReports, wh.RecoveredBatches, wh.TruncatedBytes)
	}
	// Bind explicitly so -addr :0 works (the harness scripts grab the
	// printed port) and a taken port fails before the daemon claims to be
	// up.
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		srv.Shutdown(context.Background())
		return err
	}
	fmt.Printf("blameitd listening on %s (warmup %d buckets, job every %d buckets, workload %s over %d days)\n",
		ln.Addr(), cfg.WarmupBuckets, pcfg.RunEvery, o.workload, o.days)

	httpSrv := &http.Server{Handler: srv.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.Serve(ln) }()

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-httpErr:
		srv.Shutdown(context.Background())
		return err
	case <-sigCtx.Done():
	}
	fmt.Println("blameitd: signal received; draining")

	// Stop accepting connections first, then drain the backend: every
	// bucket already queued is stepped and the in-flight window is flushed
	// as a final report before the process exits.
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelHTTP()
	if err := httpSrv.Shutdown(httpCtx); err != nil {
		httpSrv.Close()
	}
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancelDrain()
	err = srv.Shutdown(drainCtx)

	p := srv.Pipeline()
	quar := p.Quarantine()
	fmt.Printf("blameitd: drained; %d reports published, %d records quarantined (%s)\n",
		srv.Reports(), quar.Total(), quar)
	if err != nil && !errors.Is(err, context.Canceled) {
		return err
	}
	return nil
}
