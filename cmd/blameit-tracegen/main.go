// Command blameit-tracegen generates a synthetic client-cloud RTT trace —
// the passive TCP-handshake telemetry stream of the paper — as JSON Lines
// on stdout or into a file. The trace can be replayed through the quartet
// classifier and Algorithm 1, or inspected with standard tooling.
//
// Usage:
//
//	blameit-tracegen [-scale small|medium|large] [-seed N] [-days N]
//	                 [-faults random|none] [-level quartet|sample]
//	                 [-providers N] [-provider K]
//	                 [-workers N] [-metrics] [-o FILE]
//	                 [-post URL] [-batch N] [-seal=true] [-fleet N]
//
// With -providers N > 1 the world hosts N cloud providers over one shared
// internet and the trace is provider -provider K's own observation stream
// (its served prefixes steered to its anycast edges) — quartet level only.
//
// At -level quartet (default) each line is one aggregated quartet
// observation; at -level sample each line is one raw handshake record with
// a client IP, as the cloud servers log them.
//
// With -post the tracegen becomes a load generator: instead of writing the
// trace, it replays it over HTTP into a running blameitd, POSTing JSONL
// batches of -batch records to URL/v1/ingest (backing off on 429) and
// sealing the final bucket when generation ends so the daemon's backend
// localizes everything:
//
//	blameit-tracegen -scale medium -days 2 -post http://localhost:7031
//
// -fleet N switches the feed to an edge-aggregating agent fleet: the
// prefix space splits across N agents, each pre-aggregates its slice of
// every bucket into a quartet partial, and the records become aggregate
// cells (POSTed to URL/v1/aggregates in -post mode, written as AggCell
// JSONL otherwise). The daemon merges the partials back into per-bucket
// aggregates, so the reports are byte-identical to the raw feed's:
//
//	blameit-tracegen -scale medium -days 2 -fleet 8 -post http://localhost:7031
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"blameit/internal/bgp"
	"blameit/internal/faults"
	"blameit/internal/fleet"
	"blameit/internal/ingest"
	"blameit/internal/metrics"
	"blameit/internal/netmodel"
	"blameit/internal/sim"
	"blameit/internal/topology"
	"blameit/internal/trace"
)

// poster replays the generated trace over HTTP: records accumulate into
// JSONL bodies of batchRecords each and are POSTed to a blameitd ingest
// endpoint. 429 (queue backpressure) retries with capped exponential
// backoff — the daemon's backend is the rate limiter; any other non-2xx
// status is fatal.
type poster struct {
	ctx          context.Context
	base         string
	path         string
	client       *http.Client
	buf          bytes.Buffer
	n            int
	batchRecords int

	posted      int64
	batches     int64
	retries     int64
	resent      int64 // records re-POSTed after a 429
	serverWaits int64 // 429s whose Retry-After directed the wait
	waited      time.Duration
}

// newPoster builds a load generator against one ingestion path —
// "/v1/ingest" for raw observations, "/v1/aggregates" for fleet cells.
func newPoster(ctx context.Context, base, path string, batchRecords int) *poster {
	return &poster{
		ctx:          ctx,
		base:         base,
		path:         path,
		client:       &http.Client{Timeout: 60 * time.Second},
		batchRecords: batchRecords,
	}
}

// add appends one bucket's records, flushing complete batches.
func (p *poster) add(obs []trace.Observation) error {
	if err := trace.WriteJSONL(&p.buf, obs); err != nil {
		return err
	}
	p.n += len(obs)
	if p.n >= p.batchRecords {
		return p.flush()
	}
	return nil
}

// addAgg appends one partial's aggregate cells. The whole partial lands
// in one body — the aggregate endpoint's contract — because flushes only
// happen between add calls.
func (p *poster) addAgg(cells []ingest.AggCell) error {
	if err := ingest.WriteAggJSONL(&p.buf, cells); err != nil {
		return err
	}
	p.n += len(cells)
	if p.n >= p.batchRecords {
		return p.flush()
	}
	return nil
}

// flush POSTs the pending batch, retrying backpressure until ctx dies.
func (p *poster) flush() error {
	if p.n == 0 {
		return nil
	}
	body := p.buf.Bytes()
	backoff := 50 * time.Millisecond
	for {
		req, err := http.NewRequestWithContext(p.ctx, http.MethodPost, p.base+p.path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/x-ndjson")
		resp, err := p.client.Do(req)
		if err != nil {
			return fmt.Errorf("posting batch: %w", err)
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusTooManyRequests:
			p.retries++
			p.resent += int64(p.n)
			wait := backoff
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				// Honor the server's hint exactly: it derives the wait
				// from its own queue occupancy, which beats any
				// client-side guess — no doubling, no cap on top.
				wait = time.Duration(ra) * time.Second
				p.serverWaits++
				backoff = 50 * time.Millisecond
			} else if backoff *= 2; backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
			p.waited += wait
			select {
			case <-p.ctx.Done():
				return p.ctx.Err()
			case <-time.After(wait):
			}
			continue
		case resp.StatusCode/100 != 2:
			return fmt.Errorf("ingest endpoint answered %s: %s", resp.Status, bytes.TrimSpace(msg))
		}
		p.posted += int64(p.n)
		p.batches++
		p.buf.Reset()
		p.n = 0
		return nil
	}
}

// summary prints the resend accounting: how much of the feed had to be
// re-POSTed under backpressure and who decided the waits.
func (p *poster) summary(unit string) {
	fmt.Fprintf(os.Stderr, "tracegen: resend accounting: %d retried POSTs re-sent %d %s; %d/%d waits server-directed via Retry-After; %.1fs total backpressure wait\n",
		p.retries, p.resent, unit, p.serverWaits, p.retries, p.waited.Seconds())
}

// seal flushes the tail batch and seals the trace's final bucket so the
// daemon steps it without waiting for a later record that never comes.
func (p *poster) seal(through netmodel.Bucket) error {
	if err := p.flush(); err != nil {
		return err
	}
	body := fmt.Sprintf(`{"through":%d}`, through)
	req, err := http.NewRequestWithContext(p.ctx, http.MethodPost, p.base+"/v1/seal", bytes.NewReader([]byte(body)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.client.Do(req)
	if err != nil {
		return fmt.Errorf("sealing through bucket %d: %w", through, err)
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("seal endpoint answered %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}

func main() {
	var (
		scaleName   = flag.String("scale", "small", "world scale: small, medium or large")
		seed        = flag.Int64("seed", 42, "deterministic seed")
		days        = flag.Int("days", 1, "days of trace to generate")
		workload    = flag.String("faults", "random", "fault workload: random or none")
		providers   = flag.Int("providers", 1, "cloud providers in the generated world (shared internet, per-provider anycast edges)")
		provider    = flag.Int("provider", 0, "which provider's observation stream to emit when -providers > 1")
		level       = flag.String("level", "quartet", "record granularity: quartet or sample")
		workers     = flag.Int("workers", 0, "goroutines for observation/sample generation (0 = all cores, 1 = sequential; output is identical either way)")
		dumpMetrics = flag.Bool("metrics", false, "dump the generation metrics snapshot as JSON on stderr at exit")
		outFile     = flag.String("o", "", "output file (default stdout)")
		postURL     = flag.String("post", "", "replay the trace over HTTP into a blameitd at this base URL instead of writing it (quartet level only)")
		batchSize   = flag.Int("batch", 5000, "records per POST batch in -post mode")
		sealFinal   = flag.Bool("seal", true, "in -post mode, seal the final bucket after the replay so the daemon localizes it")
		fleetN      = flag.Int("fleet", 0, "pre-aggregate at the edge with N fleet agents and emit aggregate cells instead of raw observations (quartet level only)")
	)
	flag.Parse()

	// SIGINT/SIGTERM stop generation at the next bucket boundary, leaving a
	// valid (truncated) bucket-ordered trace behind.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var scale topology.Scale
	switch *scaleName {
	case "small":
		scale = topology.SmallScale()
	case "medium":
		scale = topology.MediumScale()
	case "large":
		scale = topology.LargeScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(1)
	}

	scale.Providers = *providers
	if err := scale.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	if *provider < 0 || *provider >= *providers {
		fmt.Fprintf(os.Stderr, "tracegen: -provider %d outside the world's %d providers\n", *provider, *providers)
		os.Exit(1)
	}
	if *providers > 1 && *level != "quartet" {
		fmt.Fprintln(os.Stderr, "tracegen: -providers > 1 supports only -level quartet (samples carry no provider scope)")
		os.Exit(1)
	}
	if *providers > 1 && *fleetN > 0 {
		fmt.Fprintln(os.Stderr, "tracegen: -fleet agents aggregate a single provider's edge; use -providers 1")
		os.Exit(1)
	}

	var out io.Writer = os.Stdout
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		defer f.Close()
		bw := bufio.NewWriterSize(f, 1<<20)
		defer bw.Flush()
		out = bw
	}

	w := topology.Generate(scale, *seed)
	horizon := netmodel.Bucket(*days * netmodel.BucketsPerDay)
	var fs []faults.Fault
	if *workload == "random" {
		fs = faults.Generate(w, faults.DefaultGenerateConfig(), horizon, *seed+1).Faults
	}
	reg := metrics.NewRegistry()
	tbl := bgp.NewTable(w, bgp.DefaultChurnConfig(), horizon, *seed+2)
	scfg := sim.DefaultConfig(*seed + 3)
	scfg.Workers = *workers
	scfg.Metrics = reg
	if err := scfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	s := sim.New(w, tbl, faults.NewSchedule(fs), scfg)

	if *postURL != "" && *level != "quartet" {
		fmt.Fprintln(os.Stderr, "tracegen: -post supports only -level quartet (the daemon ingests quartet observations)")
		os.Exit(1)
	}
	if *fleetN > 0 && *level != "quartet" {
		fmt.Fprintln(os.Stderr, "tracegen: -fleet supports only -level quartet (agents pre-aggregate quartet observations)")
		os.Exit(1)
	}

	var written int64
	switch {
	case *level == "quartet" && *fleetN > 0:
		fl := fleet.New(s, *fleetN)
		sink := func(cells []ingest.AggCell) error { return ingest.WriteAggJSONL(out, cells) }
		var p *poster
		if *postURL != "" {
			p = newPoster(ctx, *postURL, "/v1/aggregates", *batchSize)
			sink = p.addAgg
		}
		start := time.Now()
		var cells []ingest.AggCell
		for b := netmodel.Bucket(0); b < horizon && ctx.Err() == nil; b++ {
			for _, ag := range fl.Agents {
				cells = ingest.AggCellsOf(ag.Collect(b), cells[:0])
				if err := sink(cells); err != nil {
					fmt.Fprintln(os.Stderr, "tracegen:", err)
					os.Exit(1)
				}
				written += int64(len(cells))
			}
		}
		if p != nil {
			err := p.flush()
			if err == nil && *sealFinal && ctx.Err() == nil {
				err = p.seal(horizon - 1)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "tracegen:", err)
				os.Exit(1)
			}
			elapsed := time.Since(start).Seconds()
			rate := float64(p.posted)
			if elapsed > 0 {
				rate /= elapsed
			}
			fmt.Fprintf(os.Stderr, "tracegen: replayed %d aggregate cells from %d agents over HTTP in %d batches (%.0f cells/sec, %d backpressure retries)\n",
				p.posted, len(fl.Agents), p.batches, rate, p.retries)
			p.summary("cells")
		}
	case *level == "quartet":
		sink := func(obs []trace.Observation) error { return trace.WriteJSONL(out, obs) }
		var p *poster
		if *postURL != "" {
			p = newPoster(ctx, *postURL, "/v1/ingest", *batchSize)
			sink = p.add
		}
		start := time.Now()
		var buf []trace.Observation
		for b := netmodel.Bucket(0); b < horizon && ctx.Err() == nil; b++ {
			if *providers > 1 {
				buf = s.ObservationsForProvider(netmodel.ProviderID(*provider), b, buf[:0])
			} else {
				buf = s.ObservationsAt(b, buf[:0])
			}
			if err := sink(buf); err != nil {
				fmt.Fprintln(os.Stderr, "tracegen:", err)
				os.Exit(1)
			}
			written += int64(len(buf))
		}
		if p != nil {
			err := p.flush()
			if err == nil && *sealFinal && ctx.Err() == nil {
				err = p.seal(horizon - 1)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "tracegen:", err)
				os.Exit(1)
			}
			elapsed := time.Since(start).Seconds()
			rate := float64(p.posted)
			if elapsed > 0 {
				rate /= elapsed
			}
			fmt.Fprintf(os.Stderr, "tracegen: replayed %d records over HTTP in %d batches (%.0f records/sec, %d backpressure retries)\n",
				p.posted, p.batches, rate, p.retries)
			p.summary("records")
		}
	case *level == "sample":
		enc := json.NewEncoder(out)
		var buf []trace.Sample
		for b := netmodel.Bucket(0); b < horizon && ctx.Err() == nil; b++ {
			buf = s.SamplesAt(b, buf[:0])
			for i := range buf {
				if err := enc.Encode(&buf[i]); err != nil {
					fmt.Fprintln(os.Stderr, "tracegen:", err)
					os.Exit(1)
				}
			}
			written += int64(len(buf))
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown level %q (quartet|sample)\n", *level)
		os.Exit(1)
	}
	kind := *level
	if *fleetN > 0 {
		kind = fmt.Sprintf("aggregate-cell (%d-agent fleet)", *fleetN)
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d %s records over %d day(s), %d faults\n", written, kind, *days, len(fs))
	if *dumpMetrics {
		// Metrics go to stderr so the trace stream on stdout stays clean.
		if err := reg.Snapshot().WriteJSON(os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
	}
}
