// Command blameit-tracegen generates a synthetic client-cloud RTT trace —
// the passive TCP-handshake telemetry stream of the paper — as JSON Lines
// on stdout or into a file. The trace can be replayed through the quartet
// classifier and Algorithm 1, or inspected with standard tooling.
//
// Usage:
//
//	blameit-tracegen [-scale small|medium|large] [-seed N] [-days N]
//	                 [-faults random|none] [-level quartet|sample]
//	                 [-workers N] [-metrics] [-o FILE]
//
// At -level quartet (default) each line is one aggregated quartet
// observation; at -level sample each line is one raw handshake record with
// a client IP, as the cloud servers log them.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"blameit/internal/bgp"
	"blameit/internal/faults"
	"blameit/internal/metrics"
	"blameit/internal/netmodel"
	"blameit/internal/sim"
	"blameit/internal/topology"
	"blameit/internal/trace"
)

func main() {
	var (
		scaleName   = flag.String("scale", "small", "world scale: small, medium or large")
		seed        = flag.Int64("seed", 42, "deterministic seed")
		days        = flag.Int("days", 1, "days of trace to generate")
		workload    = flag.String("faults", "random", "fault workload: random or none")
		level       = flag.String("level", "quartet", "record granularity: quartet or sample")
		workers     = flag.Int("workers", 0, "goroutines for observation/sample generation (0 = all cores, 1 = sequential; output is identical either way)")
		dumpMetrics = flag.Bool("metrics", false, "dump the generation metrics snapshot as JSON on stderr at exit")
		outFile     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	// SIGINT/SIGTERM stop generation at the next bucket boundary, leaving a
	// valid (truncated) bucket-ordered trace behind.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var scale topology.Scale
	switch *scaleName {
	case "small":
		scale = topology.SmallScale()
	case "medium":
		scale = topology.MediumScale()
	case "large":
		scale = topology.LargeScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(1)
	}

	var out io.Writer = os.Stdout
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		defer f.Close()
		bw := bufio.NewWriterSize(f, 1<<20)
		defer bw.Flush()
		out = bw
	}

	w := topology.Generate(scale, *seed)
	horizon := netmodel.Bucket(*days * netmodel.BucketsPerDay)
	var fs []faults.Fault
	if *workload == "random" {
		fs = faults.Generate(w, faults.DefaultGenerateConfig(), horizon, *seed+1).Faults
	}
	reg := metrics.NewRegistry()
	tbl := bgp.NewTable(w, bgp.DefaultChurnConfig(), horizon, *seed+2)
	scfg := sim.DefaultConfig(*seed + 3)
	scfg.Workers = *workers
	scfg.Metrics = reg
	if err := scfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	s := sim.New(w, tbl, faults.NewSchedule(fs), scfg)

	var written int64
	switch *level {
	case "quartet":
		var buf []trace.Observation
		for b := netmodel.Bucket(0); b < horizon && ctx.Err() == nil; b++ {
			buf = s.ObservationsAt(b, buf[:0])
			if err := trace.WriteJSONL(out, buf); err != nil {
				fmt.Fprintln(os.Stderr, "tracegen:", err)
				os.Exit(1)
			}
			written += int64(len(buf))
		}
	case "sample":
		enc := json.NewEncoder(out)
		var buf []trace.Sample
		for b := netmodel.Bucket(0); b < horizon && ctx.Err() == nil; b++ {
			buf = s.SamplesAt(b, buf[:0])
			for i := range buf {
				if err := enc.Encode(&buf[i]); err != nil {
					fmt.Fprintln(os.Stderr, "tracegen:", err)
					os.Exit(1)
				}
			}
			written += int64(len(buf))
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown level %q (quartet|sample)\n", *level)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d %s records over %d day(s), %d faults\n", written, *level, *days, len(fs))
	if *dumpMetrics {
		// Metrics go to stderr so the trace stream on stdout stays clean.
		if err := reg.Snapshot().WriteJSON(os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
	}
}
