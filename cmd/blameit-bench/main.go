// Command blameit-bench is the perf-trajectory harness: it runs the
// repository's headline performance workloads through testing.Benchmark and
// emits one schema-stable JSON document (BENCH_<date>.json) pinning the
// numbers a regression would move — ingestion throughput per source,
// quartet classification rate, Algorithm 1 job wall time, per-record bytes
// and allocations, and the store's resident-window / scan accounting.
//
// Usage:
//
//	blameit-bench [-o FILE] [-date YYYY-MM-DD] [-benchtime 3x]
//
// The output embeds the measured pre-optimization baseline (recorded when
// the harness was introduced) so every emitted file carries its own
// reference point: compare `ingest.stream_replay.records_per_sec` against
// `baseline.stream_replay_records_per_sec` to see the trajectory without
// digging through git history. CI runs this on every push and uploads the
// file as an artifact; `make bench-json` is the local entry point.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"blameit/internal/bgp"
	"blameit/internal/chaos"
	"blameit/internal/core"
	"blameit/internal/faults"
	"blameit/internal/fleet"
	"blameit/internal/ingest"
	"blameit/internal/netmodel"
	"blameit/internal/pipeline"
	"blameit/internal/probe"
	"blameit/internal/quartet"
	"blameit/internal/sim"
	"blameit/internal/stats"
	"blameit/internal/topology"
	"blameit/internal/trace"
)

// SchemaVersion identifies the BENCH_*.json layout. Bump only when a field
// is removed or changes meaning; additions are backward-compatible.
const SchemaVersion = 1

const benchSeed = 42

// Baseline is the pre-optimization reference measured on the CI container
// when the harness was introduced (same seed, same small-scale world, same
// half-day workloads), before the alloc-free JSONL decode, the
// struct-of-arrays store merge, and the incremental window aggregation
// landed. It ships inside every emitted file so a single BENCH document
// carries both ends of the trajectory.
type Baseline struct {
	RecordedAt                string  `json:"recorded_at"`
	StreamReplayRecordsPerSec float64 `json:"stream_replay_records_per_sec"`
	StreamReplayAllocsPerRec  float64 `json:"stream_replay_allocs_per_record"`
	StoreBackedRecordsPerSec  float64 `json:"store_backed_records_per_sec"`
	LiveSimRecordsPerSec      float64 `json:"live_sim_records_per_sec"`
	Algorithm1JobWallMS       float64 `json:"algorithm1_job_wall_ms"`
	PipelineDayWallMS         float64 `json:"pipeline_day_wall_ms"`
}

// baseline holds the numbers measured immediately before the optimization
// PR (see DESIGN.md §11 for the methodology).
var baseline = Baseline{
	RecordedAt:                "2026-08-08",
	StreamReplayRecordsPerSec: 426_000,
	StreamReplayAllocsPerRec:  7.0,
	StoreBackedRecordsPerSec:  736_000,
	LiveSimRecordsPerSec:      1_388_000,
	Algorithm1JobWallMS:       2.288,
	PipelineDayWallMS:         1664,
}

// IngestResult is one ingestion source's measured throughput.
type IngestResult struct {
	Records         int64   `json:"records"`
	RecordsPerSec   float64 `json:"records_per_sec"`
	NSPerRecord     float64 `json:"ns_per_record"`
	BytesPerRecord  float64 `json:"bytes_per_record,omitempty"` // heap bytes allocated
	AllocsPerRecord float64 `json:"allocs_per_record"`
	MBPerSec        float64 `json:"mb_per_sec,omitempty"` // input bytes decoded (stream replay only)
}

// StoreStats is the trace store's accounting after the store-backed drain.
type StoreStats struct {
	PeakResidentWindows int `json:"peak_resident_windows"`
	EvictedWindows      int `json:"evicted_windows"`
	ScannedBuckets      int `json:"scanned_buckets"`
	ScannedRecords      int `json:"scanned_records"`
}

// JobStats summarizes the per-job wall times of the pipeline-day run via a
// bounded-memory streaming summary (no per-job samples are retained).
type JobStats struct {
	Jobs   int     `json:"jobs"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// Doc is the emitted document.
type Doc struct {
	SchemaVersion int    `json:"schema_version"`
	Date          string `json:"date"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	NumCPU        int    `json:"num_cpu"`
	Seed          int64  `json:"seed"`
	Scale         string `json:"scale"`

	Ingest struct {
		LiveSim      IngestResult `json:"live_sim"`
		StoreBacked  IngestResult `json:"store_backed"`
		StreamReplay IngestResult `json:"stream_replay"`
	} `json:"ingest"`
	Store StoreStats `json:"store"`

	ClassifyQuartetsPerSec float64  `json:"classify_quartets_per_sec"`
	Algorithm1JobWallMS    float64  `json:"algorithm1_job_wall_ms"`
	Algorithm1Quartets     int      `json:"algorithm1_quartets"`
	PipelineDayWallMS      float64  `json:"pipeline_day_wall_ms"`
	PipelineJobs           JobStats `json:"pipeline_jobs"`

	// AggregateMerge pins the edge-aggregation fold: one loaded bucket's
	// per-agent partials merged into a recycled aggregate and flattened
	// back to cells, the collector's per-bucket hot path.
	AggregateMerge struct {
		Partials       int     `json:"partials"`
		Cells          int     `json:"cells"`
		MergesPerSec   float64 `json:"merges_per_sec"`
		NSPerMerge     float64 `json:"ns_per_merge"`
		AllocsPerMerge float64 `json:"allocs_per_merge"`
	} `json:"aggregate_merge"`
	// FleetDayWallMS is PipelineDayWallMS's counterpart with the feed
	// routed through a FleetAgents-strong edge fleet (perfect delivery):
	// the end-to-end cost of pre-aggregating at the edge.
	FleetDayWallMS float64 `json:"fleet_day_wall_ms"`
	FleetAgents    int     `json:"fleet_agents"`

	Baseline Baseline `json:"baseline"`
}

func benchSim() *sim.Simulator {
	w := topology.Generate(topology.SmallScale(), benchSeed)
	horizon := netmodel.Bucket(netmodel.BucketsPerDay)
	tbl := bgp.NewTable(w, bgp.DefaultChurnConfig(), horizon, benchSeed+2)
	return sim.New(w, tbl, faults.NewSchedule(nil), sim.DefaultConfig(benchSeed+3))
}

// drain reads half a day of buckets through a source, returning the record
// count.
func drain(b *testing.B, mk func() ingest.ObservationSource) int64 {
	ctx := context.Background()
	horizon := netmodel.Bucket(netmodel.BucketsPerDay / 2)
	var records int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := mk()
		var buf []trace.Observation
		records = 0
		for bk := netmodel.Bucket(0); bk < horizon; bk++ {
			var err error
			buf, err = src.ObservationsAt(ctx, bk, buf[:0])
			if err != nil {
				b.Fatal(err)
			}
			records += int64(len(buf))
		}
	}
	return records
}

// measureDrain benchmarks one source constructor and converts the result
// into per-record terms.
func measureDrain(mk func() ingest.ObservationSource) IngestResult {
	var records int64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		records = drain(b, mk)
	})
	perOp := float64(r.NsPerOp())
	var out IngestResult
	out.Records = records
	if perOp > 0 {
		out.RecordsPerSec = float64(records) / (perOp / 1e9)
	}
	if records > 0 {
		out.NSPerRecord = perOp / float64(records)
		out.BytesPerRecord = float64(r.AllocedBytesPerOp()) / float64(records)
		out.AllocsPerRecord = float64(r.AllocsPerOp()) / float64(records)
	}
	return out
}

func main() {
	var (
		outPath = flag.String("o", "", "output file (default stdout)")
		date    = flag.String("date", time.Now().UTC().Format("2006-01-02"), "date stamp for the document")
	)
	flag.Parse()

	var doc Doc
	doc.SchemaVersion = SchemaVersion
	doc.Date = *date
	doc.GoVersion = runtime.Version()
	doc.GOOS = runtime.GOOS
	doc.GOARCH = runtime.GOARCH
	doc.NumCPU = runtime.NumCPU()
	doc.Seed = benchSeed
	doc.Scale = "small"
	doc.Baseline = baseline

	// Ingestion: live generation (zero-storage upper bound).
	s := benchSim()
	fmt.Fprintln(os.Stderr, "bench: ingest live_sim")
	doc.Ingest.LiveSim = measureDrain(func() ingest.ObservationSource {
		return ingest.NewSimSource(s)
	})

	// Ingestion: the §6.1 store-backed scan path, keeping the last store for
	// its resident-window and scan accounting.
	fmt.Fprintln(os.Stderr, "bench: ingest store_backed")
	doc.Ingest.StoreBacked = measureDrain(func() ingest.ObservationSource {
		st := trace.NewStore(8)
		st.SetRetention(pipeline.SimDepsRetention)
		return ingest.NewStoreIngest(ingest.NewSimSource(s), st)
	})
	// Accounting drain (untimed): sample resident windows per bucket so the
	// reported peak is the true high-water mark, not the end-of-run state.
	{
		st := trace.NewStore(8)
		st.SetRetention(pipeline.SimDepsRetention)
		src := ingest.NewStoreIngest(ingest.NewSimSource(s), st)
		peak := 0
		var buf []trace.Observation
		for bk := netmodel.Bucket(0); bk < netmodel.Bucket(netmodel.BucketsPerDay/2); bk++ {
			var err error
			buf, err = src.ObservationsAt(context.Background(), bk, buf[:0])
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
			if n := st.NumWindows(); n > peak {
				peak = n
			}
		}
		doc.Store = StoreStats{
			PeakResidentWindows: peak,
			EvictedWindows:      st.EvictedWindows(),
			ScannedBuckets:      st.ScannedBuckets(),
			ScannedRecords:      st.ScannedRecords(),
		}
	}

	// Ingestion: streaming JSONL replay (decode-bound).
	fmt.Fprintln(os.Stderr, "bench: ingest stream_replay")
	var file bytes.Buffer
	var buf []trace.Observation
	for bk := netmodel.Bucket(0); bk < netmodel.Bucket(netmodel.BucketsPerDay/2); bk++ {
		buf = s.ObservationsAt(bk, buf[:0])
		if err := trace.WriteJSONL(&file, buf); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}
	raw := file.Bytes()
	doc.Ingest.StreamReplay = measureDrain(func() ingest.ObservationSource {
		return ingest.NewStreamSource(bytes.NewReader(raw))
	})
	if ns := doc.Ingest.StreamReplay.NSPerRecord * float64(doc.Ingest.StreamReplay.Records); ns > 0 {
		doc.Ingest.StreamReplay.MBPerSec = float64(len(raw)) / (ns / 1e9) / (1 << 20)
	}

	// Quartet classification rate.
	fmt.Fprintln(os.Stderr, "bench: classify")
	o := trace.Observation{Prefix: 1, Cloud: 2, Samples: 30, MeanRTT: 55}
	var sink quartet.Quartet
	rc := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink = quartet.Classify(o, 50)
		}
	})
	_ = sink
	// float division (not integer NsPerOp) keeps sub-ns ops meaningful.
	if rc.N > 0 && rc.T > 0 {
		doc.ClassifyQuartetsPerSec = float64(rc.N) / rc.T.Seconds()
	}

	// One Algorithm 1 pass over a loaded bucket's quartets.
	fmt.Fprintln(os.Stderr, "bench: algorithm1")
	qb := netmodel.Bucket(20 * netmodel.BucketsPerHour)
	buf = s.ObservationsAt(qb, buf[:0])
	qs := make([]quartet.Quartet, 0, len(buf))
	for _, ob := range buf {
		qs = append(qs, quartet.Classify(ob, s.World.TargetFor(ob.Prefix, ob.Cloud)))
	}
	loc := core.NewLocalizer(core.DefaultConfig(), s.World.CloudASN(),
		func(p netmodel.PrefixID, c netmodel.CloudID, bb netmodel.Bucket) netmodel.Path {
			return s.Routes.PathAtForPrefix(c, p, bb)
		}, nil)
	ra := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			loc.Localize(qs)
		}
	})
	doc.Algorithm1JobWallMS = float64(ra.NsPerOp()) / 1e6
	doc.Algorithm1Quartets = len(qs)

	// Aggregate merge: fold the same loaded bucket's per-agent partials
	// into a recycled aggregate, as the collector does every bucket.
	fmt.Fprintln(os.Stderr, "bench: aggregate merge")
	const benchAgents = 16
	fl := fleet.New(s, benchAgents)
	parts := make([]*quartet.Partial, 0, benchAgents)
	cellCount := 0
	for _, ag := range fl.Agents {
		part := ag.Collect(qb)
		parts = append(parts, part)
		cellCount += len(part.Cells)
	}
	agg := quartet.NewAggregate(qb)
	rm := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			agg.Reset(qb)
			for _, part := range parts {
				agg.Add(part)
			}
			_ = agg.Cells()
		}
	})
	doc.AggregateMerge.Partials = len(parts)
	doc.AggregateMerge.Cells = cellCount
	if perOp := float64(rm.NsPerOp()); perOp > 0 && len(parts) > 0 {
		doc.AggregateMerge.MergesPerSec = float64(len(parts)) / (perOp / 1e9)
		doc.AggregateMerge.NSPerMerge = perOp / float64(len(parts))
		doc.AggregateMerge.AllocsPerMerge = float64(rm.AllocsPerOp()) / float64(len(parts))
	}

	// Full pipeline day (warmup day + evaluated day), with per-job wall
	// times folded into a bounded-memory streaming summary.
	fmt.Fprintln(os.Stderr, "bench: pipeline day")
	js := stats.NewStreamingSummary()
	start := time.Now()
	p := pipeline.NewSim(benchSim(), pipeline.DefaultConfig())
	if err := p.Warmup(0, netmodel.BucketsPerDay); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	var lastJob = time.Now()
	err := p.Run(netmodel.BucketsPerDay, 2*netmodel.BucketsPerDay, func(rep *pipeline.Report) {
		now := time.Now()
		js.Add(float64(now.Sub(lastJob)) / 1e6)
		lastJob = now
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	doc.PipelineDayWallMS = float64(time.Since(start)) / 1e6
	sum := js.Summary()
	doc.PipelineJobs = JobStats{
		Jobs: sum.N, MeanMS: sum.Mean, P50MS: sum.P50, P90MS: sum.P90, MaxMS: sum.Max,
	}

	// The same day with the feed routed through an edge fleet: the
	// delta against pipeline_day_wall_ms is the aggregation overhead.
	fmt.Fprintln(os.Stderr, "bench: fleet day")
	fsim := benchSim()
	fcfg := pipeline.DefaultConfig()
	fstart := time.Now()
	fp := pipeline.New(pipeline.Deps{
		World:      fsim.World,
		Table:      fsim.Routes,
		Aggregates: fleet.NewCollector(fleet.New(fsim, benchAgents), chaos.Config{Seed: 1}),
		Prober:     probe.NewEngine(fsim, fcfg.ProbeNoiseMS),
	}, fcfg)
	if err := fp.Warmup(0, netmodel.BucketsPerDay); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	if err := fp.Run(netmodel.BucketsPerDay, 2*netmodel.BucketsPerDay, func(rep *pipeline.Report) {}); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	doc.FleetDayWallMS = float64(time.Since(fstart)) / 1e6
	doc.FleetAgents = benchAgents

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *outPath == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*outPath, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s\n", *outPath)
}
