// Command blameit-experiments regenerates every table and figure of the
// paper's evaluation from the synthetic substrate and prints them as text.
//
// Usage:
//
//	blameit-experiments [-scale small|medium] [-seed N] [-run all|<ids>]
//	                    [-workers N] [-metrics] [-time]
//
// where <ids> is a comma-separated subset of: table1, table2, fig2, fig3,
// fig4a, fig4b, fig5, fig6, fig8, fig9, fig10, cases, battery, fig11,
// fig12, fig13, probes, tomo, reverse.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"blameit/internal/bgp"
	"blameit/internal/experiments"
	"blameit/internal/faults"
	"blameit/internal/metrics"
	"blameit/internal/netmodel"
	"blameit/internal/topology"
)

// expIDs lists the experiments in presentation order.
var expIDs = []string{
	"table1", "table2", "fig2", "fig3", "fig4a", "fig4b", "fig5", "fig6",
	"fig8", "fig9", "fig10", "cases", "battery", "fig11", "fig12", "fig13",
	"probes", "tomo", "reverse",
}

func main() {
	var (
		scaleName   = flag.String("scale", "small", "world scale: small or medium")
		seed        = flag.Int64("seed", 42, "deterministic seed")
		runList     = flag.String("run", "all", "comma-separated experiment ids or 'all'")
		timing      = flag.Bool("time", false, "print per-experiment wall time")
		workers     = flag.Int("workers", 0, "cap cores used by the runtime and the default worker pools (0 = all cores; results are identical at any setting)")
		dumpMetrics = flag.Bool("metrics", false, "dump the cumulative metrics snapshot of all runs as JSON on exit")
	)
	flag.Parse()

	// Experiment runners construct their environments internally, so the
	// metrics opt-in goes through the process-default registry: every
	// simulator and pipeline built after this call reports into it.
	if *dumpMetrics {
		metrics.EnableDefault()
	}

	// Every Workers knob in the system defaults to runtime.GOMAXPROCS(0),
	// so capping GOMAXPROCS bounds the fan-out of every environment the
	// experiment runners construct — including the ones built internally
	// by workload helpers. Determinism makes this purely a speed knob.
	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}

	var scale topology.Scale
	switch *scaleName {
	case "small":
		scale = topology.SmallScale()
	case "medium":
		scale = topology.MediumScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(1)
	}

	want := make(map[string]bool)
	if *runList == "all" {
		for _, id := range expIDs {
			want[id] = true
		}
	} else {
		for _, id := range strings.Split(*runList, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	for _, id := range expIDs {
		if !want[id] {
			continue
		}
		startT := time.Now()
		runOne(id, scale, *seed)
		if *timing {
			fmt.Printf("  [%s took %.1fs]\n\n", id, time.Since(startT).Seconds())
		}
	}
	if *dumpMetrics {
		fmt.Println()
		if err := metrics.Default().Snapshot().WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "blameit-experiments:", err)
			os.Exit(1)
		}
	}
}

// envWithRandomFaults builds an environment with the default randomized
// fault schedule over the given days.
func envWithRandomFaults(scale topology.Scale, seed int64, days int) *experiments.Env {
	w := topology.Generate(scale, seed)
	horizon := netmodel.Bucket(days * netmodel.BucketsPerDay)
	fs := faults.Generate(w, faults.DefaultGenerateConfig(), horizon, seed+11)
	return experiments.NewEnv(experiments.EnvConfig{
		Scale: scale, Seed: seed, Days: days, Churn: bgp.DefaultChurnConfig(), Faults: fs.Faults,
	})
}

func runOne(id string, scale topology.Scale, seed int64) {
	out := os.Stdout
	// The middle-fault workload shared by the active-phase evaluations.
	workload := experiments.DefaultMiddleWorkload(scale, seed, 40)

	switch id {
	case "table1":
		experiments.Table1Properties().Render(out)
	case "table2":
		e := experiments.NewEnv(experiments.EnvConfig{Scale: scale, Seed: seed, Days: 1, Churn: bgp.DefaultChurnConfig()})
		tbl, _ := experiments.Table2Dataset(e, 30)
		tbl.Render(out)
	case "fig2":
		e := envWithRandomFaults(scale, seed, 1)
		fig, _ := experiments.Figure2BadQuartets(e, 0, 1)
		fig.Render(out)
	case "fig3":
		e := experiments.NewEnv(experiments.EnvConfig{Scale: scale, Seed: seed, Days: 7, Churn: bgp.DefaultChurnConfig()})
		fig, _ := experiments.Figure3Diurnal(e)
		fig.Render(out)
	case "fig4a":
		e := envWithRandomFaults(scale, seed, 2)
		fig, _ := experiments.Figure4aPersistence(e, 0, 2)
		fig.Render(out)
	case "fig4b":
		e := envWithRandomFaults(scale, seed, 2)
		fig, _ := experiments.Figure4bImpactSkew(e, 0, 2)
		fig.Render(out)
	case "fig5":
		experiments.Figure5Example().Render(out)
	case "fig6":
		e := experiments.NewEnv(experiments.EnvConfig{Scale: scale, Seed: seed, Days: 1, Churn: bgp.DefaultChurnConfig()})
		fig, _ := experiments.Figure6Grouping(e)
		fig.Render(out)
	case "fig8":
		days, maintenance := 30, 24
		base := experiments.NewEnv(experiments.EnvConfig{Scale: scale, Seed: seed, Days: 1, Churn: bgp.DefaultChurnConfig()})
		fs := experiments.Fig8Schedule(base, 1, days, maintenance, seed+13)
		e := experiments.NewEnv(experiments.EnvConfig{Scale: scale, Seed: seed, Days: days + 1, Churn: bgp.DefaultChurnConfig(), Faults: fs})
		fig, _ := experiments.Figure8BlameFractions(e, 1, days, maintenance)
		fig.Render(out)
	case "fig9":
		base := experiments.NewEnv(experiments.EnvConfig{Scale: scale, Seed: seed, Days: 1, Churn: bgp.DefaultChurnConfig()})
		fs := experiments.Fig9Schedule(base, 1, seed+17)
		e := experiments.NewEnv(experiments.EnvConfig{Scale: scale, Seed: seed, Days: 2, Churn: bgp.DefaultChurnConfig(), Faults: fs})
		fig, _ := experiments.Figure9RegionalBlame(e, 1)
		fig.Render(out)
	case "fig10":
		e := envWithRandomFaults(scale, seed, 4)
		fig, _ := experiments.Figure10DurationByCategory(e, 1, 3)
		fig.Render(out)
	case "cases":
		tbl, _ := experiments.CaseStudySuite(scale, seed)
		tbl.Render(out)
	case "battery":
		tbl, outcomes := experiments.IncidentBatterySuite(scale, seed, 88)
		// The full per-incident table is long; print the summary note and
		// the first few rows.
		short := *tbl
		if len(short.Rows) > 10 {
			short.Rows = short.Rows[:10]
			short.Notes = append([]string{"(first 10 of 88 incidents shown)"}, short.Notes...)
		}
		short.Render(out)
		fmt.Fprintf(out, "  correct fraction: %.1f%%\n\n", experiments.CorrectFraction(outcomes)*100)
	case "fig11":
		fig, _ := experiments.Figure11Corroboration(workload)
		fig.Render(out)
	case "fig12":
		fig, res := experiments.Figure12ClientTime(workload)
		fig.Render(out)
		fmt.Fprintf(out, "  spearman(estimate, oracle) = %.2f over %d episodes\n\n", res.Spearman, res.Episodes)
	case "fig13":
		fig, _ := experiments.Figure13FrequencySweep(workload)
		fig.Render(out)
	case "probes":
		tbl, _ := experiments.ProbeOverhead(workload)
		tbl.Render(out)
	case "tomo":
		tbl, _ := experiments.TomographyInfeasibility(5)
		tbl.Render(out)
	case "reverse":
		tbl, _ := experiments.ReverseEval(scale, seed, 25)
		tbl.Render(out)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
	}
}
