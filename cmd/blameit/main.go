// Command blameit runs the full BlameIt pipeline on a synthetic world:
// generate topology and routing, inject faults, learn expected RTTs, run
// the periodic localization job with budgeted active probing, and print
// blame summaries and the impact-ranked tickets an operator would see.
//
// Usage:
//
//	blameit [-scale small|medium|large] [-seed N] [-days N] [-warmup N]
//	        [-workload random|cases|battery|none] [-budget N] [-top N]
//	        [-workers N] [-replay FILE] [-metrics] [-v]
//
// With -replay, passive observations are read from a recorded JSONL trace
// (blameit-tracegen output; "-" reads stdin) instead of being generated
// live. A replay with the same -scale/-seed/-workload as the recording —
// and a tracegen horizon covering warmup+days days — reproduces the live
// run's reports byte for byte:
//
//	blameit-tracegen -seed 42 -days 2 | blameit -replay - -seed 42 -days 1
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"blameit/internal/bgp"
	"blameit/internal/chaos"
	"blameit/internal/core"
	"blameit/internal/faults"
	"blameit/internal/ingest"
	"blameit/internal/metrics"
	"blameit/internal/multicloud"
	"blameit/internal/netmodel"
	"blameit/internal/pipeline"
	"blameit/internal/probe"
	"blameit/internal/sim"
	"blameit/internal/topology"
)

func scaleByName(name string) (topology.Scale, error) {
	switch name {
	case "small":
		return topology.SmallScale(), nil
	case "medium":
		return topology.MediumScale(), nil
	case "large":
		return topology.LargeScale(), nil
	default:
		return topology.Scale{}, fmt.Errorf("unknown scale %q (small|medium|large)", name)
	}
}

type options struct {
	scaleName   string
	seed        int64
	days        int
	warmup      int
	providers   int
	workload    string
	budget      int
	topN        int
	workers     int
	replayPath  string
	chaosName   string
	dumpMetrics bool
	verbose     bool
}

func main() {
	var o options
	flag.StringVar(&o.scaleName, "scale", "small", "world scale: small, medium or large")
	flag.IntVar(&o.providers, "providers", 1, "cloud providers sharing the simulated internet; >1 runs one independent pipeline per provider and grades cross-provider consistency")
	flag.Int64Var(&o.seed, "seed", 42, "deterministic seed for the world, faults and noise")
	flag.IntVar(&o.days, "days", 2, "days to run after warmup")
	flag.IntVar(&o.warmup, "warmup", 1, "warmup days for expected-RTT learning")
	flag.StringVar(&o.workload, "workload", "random", "fault workload: random, cases, battery or none")
	flag.IntVar(&o.budget, "budget", 50, "on-demand traceroutes per cloud location per day (0 = unlimited)")
	flag.IntVar(&o.topN, "top", 5, "tickets to print per job run")
	flag.IntVar(&o.workers, "workers", 0, "goroutines for observation generation and the Algorithm 1 job (0 = all cores, 1 = sequential; output is identical either way)")
	flag.StringVar(&o.replayPath, "replay", "", "replay passive observations from a recorded JSONL trace instead of generating them (\"-\" = stdin)")
	flag.StringVar(&o.chaosName, "chaos", "off", "inject data-plane faults: off, light or heavy (deterministic per seed)")
	flag.BoolVar(&o.dumpMetrics, "metrics", false, "dump the pipeline metrics snapshot as JSON on exit")
	flag.BoolVar(&o.verbose, "v", false, "print every job run, not only runs with tickets")
	flag.Parse()

	// SIGINT/SIGTERM stop the run between buckets; learned state stays
	// consistent up to the last completed bucket.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, o); err != nil {
		fmt.Fprintln(os.Stderr, "blameit:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, o options) error {
	scale, err := scaleByName(o.scaleName)
	if err != nil {
		return err
	}
	if o.days < 1 || o.warmup < 1 {
		return fmt.Errorf("days and warmup must be positive")
	}
	if o.providers < 0 {
		return fmt.Errorf("providers must be positive, got %d", o.providers)
	}
	// 0 (the zero value) and 1 both mean the classic single-provider run.
	if o.providers > 1 {
		return runMulti(ctx, o, scale)
	}
	w := topology.Generate(scale, o.seed)
	horizon := netmodel.Bucket((o.warmup + o.days) * netmodel.BucketsPerDay)
	warmupEnd := netmodel.Bucket(o.warmup * netmodel.BucketsPerDay)

	var fs []faults.Fault
	switch o.workload {
	case "random":
		fs = faults.Generate(w, faults.DefaultGenerateConfig(), horizon, o.seed+1).Faults
	case "cases":
		for _, sc := range faults.CaseStudies(w, o.seed+1) {
			f := sc.Fault
			f.Start += warmupEnd
			fs = append(fs, f)
			fmt.Printf("scenario %-28s %s\n", sc.Name+":", sc.Desc)
		}
	case "battery":
		for _, sc := range faults.IncidentBattery(w, 88, warmupEnd+2*netmodel.BucketsPerHour, 6, o.seed+1) {
			fs = append(fs, sc.Fault)
		}
	case "none":
	default:
		return fmt.Errorf("unknown workload %q (random|cases|battery|none)", o.workload)
	}

	ccfg, err := chaos.Profile(o.chaosName, o.seed+4)
	if err != nil {
		return err
	}

	st := w.Stats()
	fmt.Printf("world: %d clouds, %d metros, %d ASes, %d BGP prefixes, %d /24s, %d active clients\n",
		st.Clouds, st.Metros, st.ASes, st.BGPPrefixes, st.Prefix24s, st.Clients)
	mode := "live"
	if o.replayPath != "" {
		mode = "replay of " + o.replayPath
	}
	if ccfg.Enabled() {
		mode += ", chaos " + o.chaosName
	}
	fmt.Printf("workload: %s (%d faults), horizon %d days + %d warmup, ingestion: %s\n\n",
		o.workload, len(fs), o.days, o.warmup, mode)

	reg := metrics.NewRegistry()
	tbl := bgp.NewTable(w, bgp.DefaultChurnConfig(), horizon, o.seed+2)
	scfg := sim.DefaultConfig(o.seed + 3)
	scfg.Workers = o.workers
	scfg.Metrics = reg
	if err := scfg.Validate(); err != nil {
		return err
	}
	s := sim.New(w, tbl, faults.NewSchedule(fs), scfg)
	cfg := pipeline.DefaultConfig()
	cfg.BudgetPerCloudPerDay = o.budget
	cfg.TopNAlerts = o.topN
	cfg.Workers = o.workers
	cfg.Metrics = reg
	if err := cfg.Validate(); err != nil {
		return err
	}

	// The observation source is the only thing replay changes: probes still
	// come from the deterministic engine over the same world, which is why
	// a matching trace reproduces the live reports byte for byte.
	deps := pipeline.SimDeps(s, cfg.ProbeNoiseMS)
	var stream *ingest.StreamSource
	if o.replayPath != "" {
		var in io.Reader = os.Stdin
		if o.replayPath != "-" {
			f, err := os.Open(o.replayPath)
			if err != nil {
				return err
			}
			defer f.Close()
			in = f
		}
		stream = ingest.NewStreamSource(in)
		deps.Source = stream
		deps.Store = nil
	}
	// Chaos wraps whatever source/prober the run ended up with — live or
	// replay — so the hardened consuming side (quarantine, retrying
	// prober, degraded verdicts) is exercised identically in both modes.
	var csrc *chaos.Source
	var cprb *chaos.Prober
	if ccfg.Enabled() {
		csrc = chaos.NewSource(deps.Source, ccfg, netmodel.PrefixID(len(w.Prefixes)))
		cprb = chaos.NewProber(deps.Prober, ccfg)
		deps.Source = csrc
		deps.Prober = cprb
	}
	p := pipeline.New(deps, cfg)
	if stream != nil {
		// Replay salvage mode: malformed or out-of-order records land in
		// the quarantine (reported, and fatal at exit) instead of aborting
		// the run mid-bucket.
		stream.SetQuarantine(p.Quarantine())
	}

	fmt.Printf("learning expected RTTs over %d warmup day(s)...\n", o.warmup)
	if err := p.WarmupContext(ctx, 0, warmupEnd); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Println("interrupted during warmup; nothing to report")
			return nil
		}
		return err
	}
	fmt.Printf("learned %d cloud and %d middle-segment medians\n\n",
		p.Thresholds.NumCloudEntries(), p.Thresholds.NumMiddleEntries())

	totals := make(map[core.Blame]int)
	ticketCount := 0
	runErr := p.RunContext(ctx, warmupEnd, horizon, func(rep *pipeline.Report) {
		for _, r := range rep.Results {
			totals[r.Blame]++
		}
		if len(rep.Tickets) == 0 && !o.verbose {
			return
		}
		day := rep.To.Day() - o.warmup
		fmt.Printf("[day %d %02d:%02d] %d verdicts, %d middle issues probed\n",
			day, rep.To.HourOfDay(), (rep.To.OfDay()%netmodel.BucketsPerHour)*netmodel.BucketMinutes,
			len(rep.Results), len(rep.Verdicts))
		for _, t := range rep.Tickets {
			ticketCount++
			fmt.Printf("  ticket #%d -> %s: %s\n", t.ID, t.Team, t.Summary)
		}
	})
	if runErr != nil {
		if !errors.Is(runErr, context.Canceled) {
			return runErr
		}
		fmt.Println("\ninterrupted; summarizing completed buckets")
	}
	incidents := p.Flush()

	fmt.Printf("\n=== summary ===\n")
	total := 0
	for _, n := range totals {
		total += n
	}
	for _, cat := range core.Categories() {
		frac := 0.0
		if total > 0 {
			frac = float64(totals[cat]) / float64(total)
		}
		fmt.Printf("%-13s %8d verdicts (%.1f%%)\n", cat.String(), totals[cat], frac*100)
	}
	cnt := p.Prober.Counters()
	fmt.Printf("\nprobes: %d background, %d churn-triggered, %d on-demand (%d total)\n",
		cnt.Count(probe.Background), cnt.Count(probe.ChurnTriggered), cnt.Count(probe.OnDemand), cnt.Total())
	fmt.Printf("badness incidents tracked: %d; tickets filed: %d\n", len(incidents), ticketCount)
	if p.Store != nil {
		fmt.Printf("ingestion store: scanned %d storage buckets / %d records, %d windows resident (%d evicted)\n",
			p.Store.ScannedBuckets(), p.Store.ScannedRecords(), p.Store.NumWindows(), p.Store.EvictedWindows())
	}
	if stream != nil {
		fmt.Printf("trace replay: consumed %d records\n", stream.Records())
	}
	// Data-plane health, printed only when something actually went wrong so
	// fault-free output is unchanged.
	quar := p.Quarantine()
	retries, dark := p.SourceFaults()
	if quar.Total() > 0 || retries > 0 || dark > 0 {
		fmt.Printf("quarantine: %s; source retries: %d, dark buckets: %d\n", quar, retries, dark)
	}
	if rp, ok := p.Prober.(*probe.RetryingProber); ok {
		if st := rp.Stats(); st.Failures > 0 {
			fmt.Printf("probe retries: %d failures, %d retried, %d exhausted; breaker: %d opens, %d short-circuits\n",
				st.Failures, st.Retries, st.Exhausted, st.BreakerOpens, st.BreakerShortCircuits)
		}
	}
	if csrc != nil {
		cs, ps := csrc.Stats(), cprb.Stats()
		fmt.Printf("chaos injected: %d corrupt, %d late (%d pending), %d duplicates, %d dropped batches, %d transient read errors, %d probe failures, %d truncated probes\n",
			cs.Corrupted, cs.LateDelivered, csrc.PendingLate(), cs.Duplicated, cs.DroppedBatches, cs.TransientErrs, ps.FailuresInjected, ps.Truncated)
	}
	if o.dumpMetrics {
		fmt.Println()
		if err := p.Metrics.Snapshot().WriteJSON(os.Stdout); err != nil {
			return err
		}
	}
	// A completed replay vouches for its input: a trace that ran out early
	// or shed records into the quarantine is a defective recording, and the
	// run must not exit zero as if the reports were trustworthy.
	if stream != nil && runErr == nil {
		qt := quar.Total()
		truncated := stream.Exhausted() && stream.LastBucket() < horizon-1
		switch {
		case truncated && qt > 0:
			return fmt.Errorf("replay: trace truncated (last record at bucket %d, run needed %d) and %d records quarantined (%s)",
				stream.LastBucket(), horizon-1, qt, quar)
		case truncated:
			return fmt.Errorf("replay: trace truncated — last record at bucket %d, run needed %d", stream.LastBucket(), horizon-1)
		case qt > 0:
			return fmt.Errorf("replay: %d records quarantined (%s)", qt, quar)
		}
	}
	return nil
}

// runMulti is the -providers N>1 mode: N independent pipelines over one
// shared internet, fed seeded transit faults every provider's paths cross,
// graded for cross-provider agreement. Exits non-zero on any disagreement
// or cross-provider cloud blame.
func runMulti(ctx context.Context, o options, scale topology.Scale) error {
	if o.replayPath != "" {
		return fmt.Errorf("-replay records a single provider's stream; it cannot drive -providers %d", o.providers)
	}
	if o.chaosName != "off" {
		return fmt.Errorf("-chaos wraps a single pipeline's data plane; it cannot drive -providers %d", o.providers)
	}
	scale.Providers = o.providers
	if err := scale.Validate(); err != nil {
		return err
	}
	w := topology.Generate(scale, o.seed)
	horizon := netmodel.Bucket((o.warmup + o.days) * netmodel.BucketsPerDay)
	warmupEnd := netmodel.Bucket(o.warmup * netmodel.BucketsPerDay)

	// Seeded unscoped transit faults are the incidents the grade is defined
	// over: four per day on the most provider-shared middle ASes.
	fs := multicloud.SeedMiddleFaults(w, 4*o.days, warmupEnd+2*netmodel.BucketsPerHour,
		6*netmodel.BucketsPerHour, 3*netmodel.BucketsPerHour, 60)

	st := w.Stats()
	fmt.Printf("world: %d providers, %d clouds, %d metros, %d ASes, %d BGP prefixes, %d /24s, %d active clients\n",
		st.Providers, st.Clouds, st.Metros, st.ASes, st.BGPPrefixes, st.Prefix24s, st.Clients)
	fmt.Printf("workload: %d seeded transit faults, horizon %d days + %d warmup\n\n", len(fs), o.days, o.warmup)

	tbl := bgp.NewTable(w, bgp.DefaultChurnConfig(), horizon, o.seed+2)
	scfg := sim.DefaultConfig(o.seed + 3)
	scfg.Workers = o.workers
	if err := scfg.Validate(); err != nil {
		return err
	}
	s := sim.New(w, tbl, faults.NewSchedule(fs), scfg)
	cfg := pipeline.DefaultConfig()
	cfg.BudgetPerCloudPerDay = o.budget
	cfg.TopNAlerts = o.topN
	cfg.Workers = o.workers
	if err := cfg.Validate(); err != nil {
		return err
	}

	r := multicloud.New(s, cfg)
	fmt.Printf("running %d pipelines concurrently (%d warmup day(s) each)...\n", o.providers, o.warmup)
	if err := r.Run(ctx, warmupEnd, horizon); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Println("interrupted; nothing to grade")
			return nil
		}
		return err
	}
	for q, reps := range r.Reports {
		tickets := 0
		for _, rep := range reps {
			tickets += len(rep.Tickets)
		}
		fmt.Printf("  %-10s (AS%d): %d job runs, %d tickets\n",
			w.Providers[q].Name, w.Providers[q].ASN, len(reps), tickets)
	}

	c := multicloud.Grade(w, s.Sched, warmupEnd, horizon, netmodel.Bucket(2*cfg.RunEvery), r.Reports)
	fmt.Printf("\n=== consistency ===\n")
	for _, f := range c.Faults {
		status := "missed"
		switch {
		case f.CrossConfirmed:
			status = "cross-confirmed"
		case f.Localized:
			status = "localized"
		case len(f.Localizers) > 0:
			status = fmt.Sprintf("DISAGREEMENT (blamed %v)", f.BlamedASes)
		}
		fmt.Printf("fault %d on AS%d @ bucket %d: %s by %d/%d providers\n",
			f.FaultID, f.AS, f.Start, status, len(f.Localizers), c.Providers)
	}
	fmt.Println(c.String())
	if !c.Consistent() {
		return fmt.Errorf("providers are inconsistent: %d disagreements, %d cloud cross-blames, %d cross-confirmed",
			c.Disagreements, c.CloudCrossBlame, c.CrossConfirmed)
	}
	fmt.Println("all providers agree")
	return nil
}
