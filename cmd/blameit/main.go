// Command blameit runs the full BlameIt pipeline on a synthetic world:
// generate topology and routing, inject faults, learn expected RTTs, run
// the periodic localization job with budgeted active probing, and print
// blame summaries and the impact-ranked tickets an operator would see.
//
// Usage:
//
//	blameit [-scale small|medium|large] [-seed N] [-days N] [-warmup N]
//	        [-workload random|cases|battery|none] [-budget N] [-top N]
//	        [-workers N] [-metrics] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"blameit/internal/bgp"
	"blameit/internal/core"
	"blameit/internal/faults"
	"blameit/internal/metrics"
	"blameit/internal/netmodel"
	"blameit/internal/pipeline"
	"blameit/internal/probe"
	"blameit/internal/sim"
	"blameit/internal/topology"
)

func scaleByName(name string) (topology.Scale, error) {
	switch name {
	case "small":
		return topology.SmallScale(), nil
	case "medium":
		return topology.MediumScale(), nil
	case "large":
		return topology.LargeScale(), nil
	default:
		return topology.Scale{}, fmt.Errorf("unknown scale %q (small|medium|large)", name)
	}
}

func main() {
	var (
		scaleName   = flag.String("scale", "small", "world scale: small, medium or large")
		seed        = flag.Int64("seed", 42, "deterministic seed for the world, faults and noise")
		days        = flag.Int("days", 2, "days to run after warmup")
		warmup      = flag.Int("warmup", 1, "warmup days for expected-RTT learning")
		workload    = flag.String("workload", "random", "fault workload: random, cases, battery or none")
		budget      = flag.Int("budget", 50, "on-demand traceroutes per cloud location per day (0 = unlimited)")
		topN        = flag.Int("top", 5, "tickets to print per job run")
		workers     = flag.Int("workers", 0, "goroutines for observation generation and the Algorithm 1 job (0 = all cores, 1 = sequential; output is identical either way)")
		dumpMetrics = flag.Bool("metrics", false, "dump the pipeline metrics snapshot as JSON on exit")
		verbose     = flag.Bool("v", false, "print every job run, not only runs with tickets")
	)
	flag.Parse()

	if err := run(*scaleName, *seed, *days, *warmup, *workload, *budget, *topN, *workers, *dumpMetrics, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "blameit:", err)
		os.Exit(1)
	}
}

func run(scaleName string, seed int64, days, warmup int, workload string, budget, topN, workers int, dumpMetrics, verbose bool) error {
	scale, err := scaleByName(scaleName)
	if err != nil {
		return err
	}
	if days < 1 || warmup < 1 {
		return fmt.Errorf("days and warmup must be positive")
	}
	w := topology.Generate(scale, seed)
	horizon := netmodel.Bucket((warmup + days) * netmodel.BucketsPerDay)
	warmupEnd := netmodel.Bucket(warmup * netmodel.BucketsPerDay)

	var fs []faults.Fault
	switch workload {
	case "random":
		fs = faults.Generate(w, faults.DefaultGenerateConfig(), horizon, seed+1).Faults
	case "cases":
		for _, sc := range faults.CaseStudies(w, seed+1) {
			f := sc.Fault
			f.Start += warmupEnd
			fs = append(fs, f)
			fmt.Printf("scenario %-28s %s\n", sc.Name+":", sc.Desc)
		}
	case "battery":
		for _, sc := range faults.IncidentBattery(w, 88, warmupEnd+2*netmodel.BucketsPerHour, 6, seed+1) {
			fs = append(fs, sc.Fault)
		}
	case "none":
	default:
		return fmt.Errorf("unknown workload %q (random|cases|battery|none)", workload)
	}

	st := w.Stats()
	fmt.Printf("world: %d clouds, %d metros, %d ASes, %d BGP prefixes, %d /24s, %d active clients\n",
		st.Clouds, st.Metros, st.ASes, st.BGPPrefixes, st.Prefix24s, st.Clients)
	fmt.Printf("workload: %s (%d faults), horizon %d days + %d warmup\n\n", workload, len(fs), days, warmup)

	reg := metrics.NewRegistry()
	tbl := bgp.NewTable(w, bgp.DefaultChurnConfig(), horizon, seed+2)
	scfg := sim.DefaultConfig(seed + 3)
	scfg.Workers = workers
	scfg.Metrics = reg
	s := sim.New(w, tbl, faults.NewSchedule(fs), scfg)
	cfg := pipeline.DefaultConfig()
	cfg.BudgetPerCloudPerDay = budget
	cfg.TopNAlerts = topN
	cfg.Workers = workers
	cfg.Metrics = reg
	p := pipeline.New(s, cfg)

	fmt.Printf("learning expected RTTs over %d warmup day(s)...\n", warmup)
	p.Warmup(0, warmupEnd)
	fmt.Printf("learned %d cloud and %d middle-segment medians\n\n",
		p.Thresholds.NumCloudEntries(), p.Thresholds.NumMiddleEntries())

	totals := make(map[core.Blame]int)
	ticketCount := 0
	p.Run(warmupEnd, horizon, func(rep *pipeline.Report) {
		for _, r := range rep.Results {
			totals[r.Blame]++
		}
		if len(rep.Tickets) == 0 && !verbose {
			return
		}
		if len(rep.Tickets) > 0 || verbose {
			day := rep.To.Day() - warmup
			fmt.Printf("[day %d %02d:%02d] %d verdicts, %d middle issues probed\n",
				day, rep.To.HourOfDay(), (rep.To.OfDay()%netmodel.BucketsPerHour)*netmodel.BucketMinutes,
				len(rep.Results), len(rep.Verdicts))
			for _, t := range rep.Tickets {
				ticketCount++
				fmt.Printf("  ticket #%d -> %s: %s\n", t.ID, t.Team, t.Summary)
			}
		}
	})
	incidents := p.Flush()

	fmt.Printf("\n=== summary ===\n")
	total := 0
	for _, n := range totals {
		total += n
	}
	for _, cat := range core.Categories() {
		frac := 0.0
		if total > 0 {
			frac = float64(totals[cat]) / float64(total)
		}
		fmt.Printf("%-13s %8d verdicts (%.1f%%)\n", cat.String(), totals[cat], frac*100)
	}
	cnt := p.Engine.Counters()
	fmt.Printf("\nprobes: %d background, %d churn-triggered, %d on-demand (%d total)\n",
		cnt.Count(probe.Background), cnt.Count(probe.ChurnTriggered), cnt.Count(probe.OnDemand), cnt.Total())
	fmt.Printf("badness incidents tracked: %d; tickets filed: %d\n", len(incidents), ticketCount)
	if dumpMetrics {
		fmt.Println()
		if err := p.Metrics.Snapshot().WriteJSON(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
