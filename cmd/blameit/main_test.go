package main

import (
	"context"
	"testing"
)

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"small", "medium", "large"} {
		if _, err := scaleByName(name); err != nil {
			t.Errorf("scaleByName(%q) = %v", name, err)
		}
	}
	if _, err := scaleByName("galactic"); err == nil {
		t.Error("unknown scale accepted")
	}
}

// opts returns a small, fast option set tests tweak per case.
func opts() options {
	return options{
		scaleName: "small", seed: 1, days: 1, warmup: 1,
		workload: "random", budget: 0, topN: 5, workers: 1,
	}
}

func TestRunValidation(t *testing.T) {
	ctx := context.Background()
	o := opts()
	o.scaleName = "nope"
	if err := run(ctx, o); err == nil {
		t.Error("bad scale accepted")
	}
	o = opts()
	o.days = 0
	if err := run(ctx, o); err == nil {
		t.Error("zero days accepted")
	}
	o = opts()
	o.workload = "martian"
	if err := run(ctx, o); err == nil {
		t.Error("bad workload accepted")
	}
	o = opts()
	o.replayPath = "testdata/definitely-missing.jsonl"
	if err := run(ctx, o); err == nil {
		t.Error("missing replay file accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full CLI run in -short mode")
	}
	// One warmup day plus one quiet day; output goes to stdout, which the
	// test harness captures.
	o := options{
		scaleName: "small", seed: 7, days: 1, warmup: 1,
		workload: "none", budget: 10, topN: 3, workers: 1, dumpMetrics: true,
	}
	if err := run(context.Background(), o); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunCancelled(t *testing.T) {
	if testing.Short() {
		t.Skip("full CLI run in -short mode")
	}
	// A pre-cancelled context must not error out: the CLI treats Canceled
	// as a clean early stop wherever it lands (here, during warmup).
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := options{
		scaleName: "small", seed: 7, days: 1, warmup: 1,
		workload: "none", budget: 10, topN: 3, workers: 1,
	}
	if err := run(ctx, o); err != nil {
		t.Fatalf("cancelled run returned error: %v", err)
	}
}
