package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"blameit/internal/netmodel"
	"blameit/internal/trace"
)

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"small", "medium", "large"} {
		if _, err := scaleByName(name); err != nil {
			t.Errorf("scaleByName(%q) = %v", name, err)
		}
	}
	if _, err := scaleByName("galactic"); err == nil {
		t.Error("unknown scale accepted")
	}
}

// opts returns a small, fast option set tests tweak per case.
func opts() options {
	return options{
		scaleName: "small", seed: 1, days: 1, warmup: 1,
		workload: "random", budget: 0, topN: 5, workers: 1,
	}
}

func TestRunValidation(t *testing.T) {
	ctx := context.Background()
	o := opts()
	o.scaleName = "nope"
	if err := run(ctx, o); err == nil {
		t.Error("bad scale accepted")
	}
	o = opts()
	o.days = 0
	if err := run(ctx, o); err == nil {
		t.Error("zero days accepted")
	}
	o = opts()
	o.workload = "martian"
	if err := run(ctx, o); err == nil {
		t.Error("bad workload accepted")
	}
	o = opts()
	o.replayPath = "testdata/definitely-missing.jsonl"
	if err := run(ctx, o); err == nil {
		t.Error("missing replay file accepted")
	}
	o = opts()
	o.chaosName = "catastrophic"
	if err := run(ctx, o); err == nil || !strings.Contains(err.Error(), "catastrophic") {
		t.Errorf("bad chaos profile: err = %v, want it named", err)
	}
	o = opts()
	o.workers = -1
	if err := run(ctx, o); err == nil || !strings.Contains(err.Error(), "Workers") {
		t.Errorf("negative workers: err = %v, want a Workers validation error", err)
	}
}

func TestRunChaosEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full CLI run in -short mode")
	}
	o := options{
		scaleName: "small", seed: 7, days: 1, warmup: 1,
		workload: "none", budget: 10, topN: 3, workers: 1, chaosName: "heavy",
	}
	if err := run(context.Background(), o); err != nil {
		t.Fatalf("chaos run: %v", err)
	}
}

// writeTrace writes a bucket-ordered JSONL trace covering [0, horizon).
func writeTrace(t *testing.T, path string, horizon netmodel.Bucket, extraLine string) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var obs []trace.Observation
	for b := netmodel.Bucket(0); b < horizon; b++ {
		obs = append(obs, trace.Observation{Prefix: 0, Cloud: 0, Bucket: b, Samples: 40, MeanRTT: 50, Clients: 10})
	}
	if err := trace.WriteJSONL(f, obs); err != nil {
		t.Fatal(err)
	}
	if extraLine != "" {
		if _, err := f.WriteString(extraLine + "\n"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunReplayTruncatedExitsNonZero(t *testing.T) {
	if testing.Short() {
		t.Skip("full CLI run in -short mode")
	}
	path := filepath.Join(t.TempDir(), "short.jsonl")
	// One warmup + one run day need 576 buckets; provide only 100.
	writeTrace(t, path, 100, "")
	o := opts()
	o.replayPath = path
	err := run(context.Background(), o)
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated replay: err = %v, want a truncation error", err)
	}
}

func TestRunReplayQuarantinedExitsNonZero(t *testing.T) {
	if testing.Short() {
		t.Skip("full CLI run in -short mode")
	}
	path := filepath.Join(t.TempDir(), "mangled.jsonl")
	horizon := netmodel.Bucket(2 * netmodel.BucketsPerDay)
	writeTrace(t, path, horizon, `{"prefix": not-json`)
	o := opts()
	o.replayPath = path
	err := run(context.Background(), o)
	if err == nil || !strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("mangled replay: err = %v, want a quarantine error", err)
	}
}

func TestRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full CLI run in -short mode")
	}
	// One warmup day plus one quiet day; output goes to stdout, which the
	// test harness captures.
	o := options{
		scaleName: "small", seed: 7, days: 1, warmup: 1,
		workload: "none", budget: 10, topN: 3, workers: 1, dumpMetrics: true,
	}
	if err := run(context.Background(), o); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunCancelled(t *testing.T) {
	if testing.Short() {
		t.Skip("full CLI run in -short mode")
	}
	// A pre-cancelled context must not error out: the CLI treats Canceled
	// as a clean early stop wherever it lands (here, during warmup).
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := options{
		scaleName: "small", seed: 7, days: 1, warmup: 1,
		workload: "none", budget: 10, topN: 3, workers: 1,
	}
	if err := run(ctx, o); err != nil {
		t.Fatalf("cancelled run returned error: %v", err)
	}
}
