package main

import (
	"testing"
)

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"small", "medium", "large"} {
		if _, err := scaleByName(name); err != nil {
			t.Errorf("scaleByName(%q) = %v", name, err)
		}
	}
	if _, err := scaleByName("galactic"); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("nope", 1, 1, 1, "random", 0, 5, 0, false, false); err == nil {
		t.Error("bad scale accepted")
	}
	if err := run("small", 1, 0, 1, "random", 0, 5, 0, false, false); err == nil {
		t.Error("zero days accepted")
	}
	if err := run("small", 1, 1, 1, "martian", 0, 5, 0, false, false); err == nil {
		t.Error("bad workload accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full CLI run in -short mode")
	}
	// One warmup day plus one quiet day; output goes to stdout, which the
	// test harness captures.
	if err := run("small", 7, 1, 1, "none", 10, 3, 1, true, false); err != nil {
		t.Fatalf("run: %v", err)
	}
}
