package ingest

import (
	"bytes"
	"context"
	"testing"

	"blameit/internal/netmodel"
	"blameit/internal/trace"
)

// FuzzStreamSource throws arbitrary bytes at the JSONL trace decoder in
// both modes. The invariants: salvage mode (with a quarantine) never
// returns an error and never panics — every bad line lands in the
// quarantine — and strict mode never panics (positioned errors are its
// contract). The surviving records are additionally run through the
// quarantine's Filter, so the full ingestion validation path is exercised
// on hostile input.
func FuzzStreamSource(f *testing.F) {
	f.Add([]byte(`{"prefix":1,"cloud":0,"device":0,"bucket":0,"samples":20,"mean_rtt_ms":40,"clients":9}` + "\n"))
	// Truncated line.
	f.Add([]byte(`{"prefix":1,"cloud":0,"device":0,"bucket":0,"sam`))
	// Out-of-range numeric literal (1e999 overflows float64).
	f.Add([]byte(`{"prefix":1,"cloud":0,"device":0,"bucket":0,"samples":20,"mean_rtt_ms":1e999,"clients":9}` + "\n"))
	// Bare NaN is not JSON.
	f.Add([]byte(`{"prefix":1,"cloud":0,"device":0,"bucket":0,"samples":20,"mean_rtt_ms":NaN,"clients":9}` + "\n"))
	// Bucket regression between two valid records.
	f.Add([]byte(`{"prefix":1,"cloud":0,"device":0,"bucket":3,"samples":20,"mean_rtt_ms":40,"clients":9}` + "\n" +
		`{"prefix":2,"cloud":0,"device":0,"bucket":1,"samples":20,"mean_rtt_ms":40,"clients":9}` + "\n"))
	// Negative RTT and unknown prefix: decode fine, must be quarantined by Filter.
	f.Add([]byte(`{"prefix":1,"cloud":0,"device":0,"bucket":0,"samples":20,"mean_rtt_ms":-5,"clients":9}` + "\n" +
		`{"prefix":99999,"cloud":0,"device":0,"bucket":0,"samples":20,"mean_rtt_ms":40,"clients":9}` + "\n"))
	f.Add([]byte("\n\n  \n"))
	f.Add([]byte{0xff, 0xfe, 0x00, '{', '}'})

	f.Fuzz(func(t *testing.T, data []byte) {
		ctx := context.Background()
		// Salvage mode: errors are a bug, everything quarantines.
		q := NewQuarantine(1024, 16)
		s := NewStreamSource(bytes.NewReader(data))
		s.SetQuarantine(q)
		var buf []trace.Observation
		var decoded, kept int64
		for b := netmodel.Bucket(0); b < 16; b++ {
			var err error
			buf, err = s.ObservationsAt(ctx, b, buf[:0])
			if err != nil {
				t.Fatalf("salvage mode returned error: %v", err)
			}
			decoded += int64(len(buf))
			buf = q.Filter(b, buf)
			kept += int64(len(buf))
		}
		if kept > decoded || kept > s.Records() {
			t.Fatalf("kept %d of %d delivered (%d records consumed)", kept, decoded, s.Records())
		}

		// Strict mode: errors are fine, panics are not.
		s2 := NewStreamSource(bytes.NewReader(data))
		for b := netmodel.Bucket(0); b < 16; b++ {
			var err error
			buf, err = s2.ObservationsAt(ctx, b, buf[:0])
			if err != nil {
				break
			}
		}
	})
}
