package ingest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"blameit/internal/netmodel"
	"blameit/internal/quartet"
	"blameit/internal/trace"
)

// AggCell is one wire record of the edge-aggregate feed: a single merged
// quartet cell tagged with the identity of the partial that carries it.
// A fleet agent flattens each per-bucket quartet.Partial into its cells
// and POSTs them as JSONL to /v1/aggregates; the server regroups cells
// by (agent, epoch, seq) and merges the rebuilt partials — deduplicated
// by that identity — into the bucket's aggregate. The wire carries cells
// only: edge badness tallies and latency sketches are advisory
// diagnostics and classification never reads them, so they stay at the
// edge rather than widening every record.
type AggCell struct {
	Agent   int                  `json:"agent"`
	Epoch   int                  `json:"epoch"`
	Seq     int64                `json:"seq"`
	Bucket  netmodel.Bucket      `json:"bucket"`
	Prefix  netmodel.PrefixID    `json:"prefix"`
	Cloud   netmodel.CloudID     `json:"cloud"`
	Device  netmodel.DeviceClass `json:"device"`
	Samples int                  `json:"samples"`
	MeanRTT float64              `json:"mean_rtt_ms"`
	Clients int                  `json:"clients"`
}

// ID is the dedup identity of the partial this cell belongs to.
func (c AggCell) ID() quartet.PartialID {
	return quartet.PartialID{Agent: c.Agent, Epoch: c.Epoch, Seq: c.Seq}
}

// Observation reconstructs the merged observation the cell encodes.
func (c AggCell) Observation() trace.Observation {
	return trace.Observation{
		Prefix: c.Prefix, Cloud: c.Cloud, Device: c.Device, Bucket: c.Bucket,
		Samples: c.Samples, MeanRTT: c.MeanRTT, Clients: c.Clients,
	}
}

// AggCellsOf flattens one partial into wire cells, appended to buf.
func AggCellsOf(p *quartet.Partial, buf []AggCell) []AggCell {
	for _, cell := range p.Cells {
		buf = append(buf, AggCell{
			Agent: p.ID.Agent, Epoch: p.ID.Epoch, Seq: p.ID.Seq, Bucket: p.Bucket,
			Prefix: cell.Key.Prefix, Cloud: cell.Key.Cloud, Device: cell.Key.Device,
			Samples: cell.Samples, MeanRTT: cell.MeanRTT, Clients: cell.Clients,
		})
	}
	return buf
}

// WriteAggJSONL writes cells as JSONL in the canonical shape, one record
// per line — the aggregate-feed counterpart of trace.WriteJSONL.
func WriteAggJSONL(w io.Writer, cells []AggCell) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range cells {
		if err := enc.Encode(&cells[i]); err != nil {
			return fmt.Errorf("ingest: encoding aggregate cell %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// The canonical aggregate-cell shape is what WriteAggJSONL (a
// json.Encoder over AggCell) emits: fields in declaration order, no
// inter-token whitespace, plain decimal numbers. As with observation
// batches, the hand-rolled scanner handles exactly that shape and
// anything else falls back to encoding/json, so the accepted inputs are
// unchanged — only the common case gets the alloc-free path.
var (
	aggKeyAgent   = []byte(`{"agent":`)
	aggKeyEpoch   = []byte(`,"epoch":`)
	aggKeySeq     = []byte(`,"seq":`)
	aggKeyBucket  = []byte(`,"bucket":`)
	aggKeyPrefix  = []byte(`,"prefix":`)
	aggKeyCloud   = []byte(`,"cloud":`)
	aggKeyDevice  = []byte(`,"device":`)
	aggKeySamples = []byte(`,"samples":`)
	aggKeyMeanRTT = []byte(`,"mean_rtt_ms":`)
	aggKeyClients = []byte(`,"clients":`)
)

// decodeAggCanonical parses one canonical aggregate-cell line into c,
// reporting whether it matched. On ok=false c is untouched and the
// caller must re-decode the line with encoding/json.
func decodeAggCanonical(line []byte, c *AggCell) bool {
	b, ok := eat(line, aggKeyAgent)
	if !ok {
		return false
	}
	var agent, epoch, seq, bucket, prefix, cloud, device, samples, clients int64
	var mean float64
	if agent, b, ok = parseInt(b); !ok {
		return false
	}
	if b, ok = eat(b, aggKeyEpoch); !ok {
		return false
	}
	if epoch, b, ok = parseInt(b); !ok {
		return false
	}
	if b, ok = eat(b, aggKeySeq); !ok {
		return false
	}
	if seq, b, ok = parseInt(b); !ok {
		return false
	}
	if b, ok = eat(b, aggKeyBucket); !ok {
		return false
	}
	if bucket, b, ok = parseInt(b); !ok {
		return false
	}
	if b, ok = eat(b, aggKeyPrefix); !ok {
		return false
	}
	if prefix, b, ok = parseInt(b); !ok {
		return false
	}
	if b, ok = eat(b, aggKeyCloud); !ok {
		return false
	}
	if cloud, b, ok = parseInt(b); !ok {
		return false
	}
	if b, ok = eat(b, aggKeyDevice); !ok {
		return false
	}
	if device, b, ok = parseInt(b); !ok {
		return false
	}
	if b, ok = eat(b, aggKeySamples); !ok {
		return false
	}
	if samples, b, ok = parseInt(b); !ok {
		return false
	}
	if b, ok = eat(b, aggKeyMeanRTT); !ok {
		return false
	}
	if mean, b, ok = parseFloat(b); !ok {
		return false
	}
	if b, ok = eat(b, aggKeyClients); !ok {
		return false
	}
	if clients, b, ok = parseInt(b); !ok {
		return false
	}
	if len(b) == 0 || b[0] != '}' || !isBlank(b[1:]) {
		return false
	}
	*c = AggCell{
		Agent: int(agent), Epoch: int(epoch), Seq: seq,
		Bucket: netmodel.Bucket(bucket),
		Prefix: netmodel.PrefixID(prefix), Cloud: netmodel.CloudID(cloud),
		Device:  netmodel.DeviceClass(device),
		Samples: int(samples), MeanRTT: mean, Clients: int(clients),
	}
	return true
}

// DecodeAggBatch decodes one bounded JSONL aggregate-cell batch — the
// request body of a blameitd POST /v1/aggregates — appending the cells
// to buf and returning the extended slice. Decoding mirrors DecodeBatch:
// canonical lines take the alloc-free scanner, anything else falls back
// to encoding/json, blank lines are skipped, and onBad selects the
// strict (nil: positioned error, reject the batch) or salvage (divert
// the bad line, keep going) failure mode.
func DecodeAggBatch(data []byte, buf []AggCell, onBad func(line []byte)) ([]AggCell, error) {
	offset := 0
	rec := 0
	for len(data) > 0 {
		var line []byte
		if nl := bytes.IndexByte(data, '\n'); nl < 0 {
			line, data = data, nil
		} else {
			line, data = data[:nl+1], data[nl+1:]
		}
		lineStart := offset
		offset += len(line)
		if isBlank(line) {
			continue
		}
		var c AggCell
		if !decodeAggCanonical(line, &c) {
			c = AggCell{}
			if err := json.Unmarshal(line, &c); err != nil {
				if onBad == nil {
					return buf, fmt.Errorf("ingest: decoding aggregate cell %d (byte offset %d): %w", rec, lineStart, err)
				}
				onBad(line)
				continue
			}
		}
		rec++
		buf = append(buf, c)
	}
	return buf, nil
}
