package ingest

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"strconv"
	"testing"

	"blameit/internal/netmodel"
	"blameit/internal/trace"
)

// TestDecodeCanonicalRoundTrip feeds randomized observations through
// trace.WriteJSONL and checks the fast-path scanner reproduces exactly what
// encoding/json decodes — including floats that need all 17 significant
// digits, the round-trip case replay byte-equivalence depends on.
func TestDecodeCanonicalRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	obs := make([]trace.Observation, 0, 2000)
	for i := 0; i < 2000; i++ {
		obs = append(obs, trace.Observation{
			Prefix:  netmodel.PrefixID(r.Intn(1 << 20)),
			Cloud:   netmodel.CloudID(r.Intn(64)),
			Device:  netmodel.DeviceClass(r.Intn(3)),
			Bucket:  netmodel.Bucket(r.Intn(1 << 16)),
			Samples: r.Intn(500),
			MeanRTT: math.Float64frombits(r.Uint64()>>12 | 0x3FF0000000000000), // [1,2) with full mantissa entropy
			Clients: r.Intn(1000),
		})
	}
	// A few structured extremes.
	obs = append(obs,
		trace.Observation{MeanRTT: 0},
		trace.Observation{MeanRTT: 1e-308},
		trace.Observation{MeanRTT: 5e-05},
		trace.Observation{MeanRTT: 1e+20},
		trace.Observation{Prefix: netmodel.PrefixID(math.MaxInt64), MeanRTT: 55.123456789012345},
	)
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, obs); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(buf.Bytes(), []byte("\n"))
	n := 0
	for _, line := range lines {
		if len(line) == 0 {
			continue
		}
		var want trace.Observation
		if err := json.Unmarshal(line, &want); err != nil {
			t.Fatalf("record %d: %v", n, err)
		}
		var got trace.Observation
		if !decodeCanonical(line, &got) {
			t.Fatalf("record %d: canonical line rejected by fast path: %s", n, line)
		}
		if got != want {
			t.Fatalf("record %d: fast path %+v != encoding/json %+v", n, got, want)
		}
		n++
	}
	if n != len(obs) {
		t.Fatalf("checked %d records, want %d", n, len(obs))
	}
}

// TestDecodeCanonicalFallsBack pins the fast path's refusal set: every
// valid-JSON deviation from the canonical shape must be declined (and left
// to encoding/json) rather than misparsed, and o must stay untouched.
func TestDecodeCanonicalFallsBack(t *testing.T) {
	reject := []string{
		`{"cloud":1,"prefix":2,"device":0,"bucket":3,"samples":30,"mean_rtt_ms":5,"clients":7}`,                    // reordered
		`{ "prefix":1,"cloud":2,"device":0,"bucket":3,"samples":30,"mean_rtt_ms":5,"clients":7}`,                   // whitespace
		`{"prefix":"1","cloud":2,"device":0,"bucket":3,"samples":30,"mean_rtt_ms":5,"clients":7}`,                  // quoted number
		`{"prefix":1,"cloud":2,"device":0,"bucket":3,"samples":30,"mean_rtt_ms":5,"clients":7,"x":1}`,              // extra field
		`{"prefix":1,"cloud":2,"device":0,"bucket":3,"samples":30,"mean_rtt_ms":5}`,                                // missing field
		`{"prefix":1.5,"cloud":2,"device":0,"bucket":3,"samples":30,"mean_rtt_ms":5,"clients":7}`,                  // fractional int
		`{"prefix":99999999999999999999,"cloud":2,"device":0,"bucket":3,"samples":30,"mean_rtt_ms":5,"clients":7}`, // overflow
		`{"prefix":1,"cloud":2,"device":0,"bucket":3,"samples":30,"mean_rtt_ms":5,"clients":7} trailing`,
		`[1,2,3]`,
		`not json`,
	}
	for _, line := range reject {
		o := trace.Observation{Prefix: 42}
		if decodeCanonical([]byte(line), &o) {
			t.Errorf("fast path accepted non-canonical line: %s", line)
		}
		if o.Prefix != 42 {
			t.Errorf("fast path mutated o on rejection of: %s", line)
		}
	}
	// The accept set: exponent floats and negative numbers are canonical
	// when json.Marshal chooses those forms.
	accept := map[string]trace.Observation{
		`{"prefix":1,"cloud":2,"device":0,"bucket":3,"samples":30,"mean_rtt_ms":5e-05,"clients":7}`: {
			Prefix: 1, Cloud: 2, Bucket: 3, Samples: 30, MeanRTT: 5e-05, Clients: 7},
		`{"prefix":1,"cloud":2,"device":0,"bucket":3,"samples":30,"mean_rtt_ms":1e+20,"clients":7}` + "\n": {
			Prefix: 1, Cloud: 2, Bucket: 3, Samples: 30, MeanRTT: 1e20, Clients: 7},
		`{"prefix":-1,"cloud":2,"device":0,"bucket":3,"samples":-5,"mean_rtt_ms":-2.5,"clients":0}`: {
			Prefix: -1, Cloud: 2, Bucket: 3, Samples: -5, MeanRTT: -2.5, Clients: 0},
	}
	for line, want := range accept {
		var got trace.Observation
		if !decodeCanonical([]byte(line), &got) {
			t.Errorf("fast path rejected canonical line: %s", line)
			continue
		}
		if got != want {
			t.Errorf("line %s: got %+v, want %+v", line, got, want)
		}
	}
}

// TestParseFloatMatchesStrconv pins the fixed-point fast path to strconv
// bit for bit, straddling every envelope edge: mantissas at and beyond
// 2^53, 18- and 19-digit runs, deep fractions, negative zero, and the
// exponent/сompound shapes that must fall back.
func TestParseFloatMatchesStrconv(t *testing.T) {
	cases := []string{
		"0", "-0", "5", "-2.5", "44.125", "55.123456789012345",
		"9007199254740991", "9007199254740991.0", // 2^53-1: last exact mantissa
		"9007199254740992", "9007199254740993", // ≥ 2^53: fallback territory
		"999999999999999999", "1999999999999999999", // 18 and 19 digits
		"0.1", "0.30000000000000004", "123.4567890123456",
		"0.0000000000000000000001", "1.00000000000000000000001", // frac 22 and beyond
		"1e+20", "5e-05", "1.5E3", "1e-308", // exponent forms: fallback
		"00", "01.5", "+5", // degenerate shapes strconv accepts
	}
	for _, s := range cases {
		in := []byte(s + ",")
		got, rest, ok := parseFloat(in)
		want, err := strconv.ParseFloat(s, 64)
		if (err == nil) != ok {
			t.Errorf("parseFloat(%q) ok=%v, strconv err=%v", s, ok, err)
			continue
		}
		if !ok {
			continue
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("parseFloat(%q) = %b, strconv = %b", s, got, want)
		}
		if string(rest) != "," {
			t.Errorf("parseFloat(%q) left %q unconsumed", s, rest)
		}
	}
	// A randomized sweep over the fixed-point shapes the trace writers emit.
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		s := strconv.FormatFloat(math.Float64frombits(r.Uint64()>>12|0x3FF0000000000000)*float64(r.Intn(1000)+1), 'f', -1, 64)
		got, _, ok := parseFloat([]byte(s))
		want, _ := strconv.ParseFloat(s, 64)
		if !ok || math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("parseFloat(%q) = %v (ok=%v), strconv = %v", s, got, ok, want)
		}
	}
}

// TestStreamSourceLongLineFallback exercises the ReadSlice buffer-full
// path: a record padded far beyond the 1MB read buffer still decodes (via
// the owned-scratch reassembly plus encoding/json, which tolerates the
// whitespace padding).
func TestStreamSourceLongLineFallback(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(`{"prefix":1,"cloud":0,"device":0,"bucket":0,"samples":30,"mean_rtt_ms":44,"clients":5}`)
	buf.WriteString("\n")
	// 2MB of spaces inside the second record keeps it valid JSON but forces
	// multiple ReadSlice rounds.
	buf.WriteString(`{"prefix":2,"cloud":0,"device":0,"bucket":1,`)
	buf.Write(bytes.Repeat([]byte(" "), 2<<20))
	buf.WriteString(`"samples":30,"mean_rtt_ms":45,"clients":6}`)
	buf.WriteString("\n")
	src := NewStreamSource(&buf)
	got, err := src.ObservationsAt(context.Background(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Prefix != 1 {
		t.Fatalf("bucket 0: %+v", got)
	}
	got, err = src.ObservationsAt(context.Background(), 1, got[:0])
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Prefix != 2 || got[0].MeanRTT != 45 {
		t.Fatalf("bucket 1 (long line): %+v", got)
	}
}
