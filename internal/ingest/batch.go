package ingest

import (
	"bytes"
	"encoding/json"
	"fmt"

	"blameit/internal/trace"
)

// DecodeBatch decodes one bounded JSONL observation batch — the request
// body of a blameitd POST /v1/ingest — appending the records to buf and
// returning the extended slice. Lines are decoded exactly as a streaming
// replay decodes them: the canonical WriteJSONL shape takes the alloc-free
// scanner, anything else falls back to encoding/json, and blank lines are
// skipped. A batch whose final line lacks a trailing newline is still
// complete; a line that is half a record is malformed.
//
// onBad selects the failure mode, mirroring StreamSource's strict/salvage
// split: when nil, the first undecodable line aborts the batch with a
// positioned error (record index and byte offset) and the caller should
// reject the whole batch; otherwise each undecodable line is handed to
// onBad (quarantine it there) and decoding continues on the next line.
func DecodeBatch(data []byte, buf []trace.Observation, onBad func(line []byte)) ([]trace.Observation, error) {
	offset := 0
	rec := 0
	for len(data) > 0 {
		var line []byte
		if nl := bytes.IndexByte(data, '\n'); nl < 0 {
			line, data = data, nil
		} else {
			line, data = data[:nl+1], data[nl+1:]
		}
		lineStart := offset
		offset += len(line)
		if isBlank(line) {
			continue
		}
		var o trace.Observation
		if !decodeCanonical(line, &o) {
			o = trace.Observation{}
			if err := json.Unmarshal(line, &o); err != nil {
				if onBad == nil {
					return buf, fmt.Errorf("ingest: decoding batch record %d (byte offset %d): %w", rec, lineStart, err)
				}
				onBad(line)
				continue
			}
		}
		rec++
		buf = append(buf, o)
	}
	return buf, nil
}
