package ingest

import (
	"errors"
	"fmt"
	"math"

	"blameit/internal/metrics"
	"blameit/internal/netmodel"
	"blameit/internal/trace"
)

// TransientError marks a source error as retryable: the same read may
// succeed if reissued (a flaky collector, a storage timeout). The pipeline
// retries transient reads a bounded number of times before declaring the
// bucket dark; any other error is treated as fatal and propagated.
type TransientError struct{ Err error }

// Error returns the wrapped error's message.
func (e *TransientError) Error() string { return e.Err.Error() }

// Unwrap exposes the wrapped error to errors.Is/As.
func (e *TransientError) Unwrap() error { return e.Err }

// Transient wraps err as retryable. A nil err stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &TransientError{Err: err}
}

// IsTransient reports whether any error in err's chain is a TransientError.
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}

// Reason classifies why a record was quarantined.
type Reason int

const (
	// ReasonMalformed is a trace line that did not decode as a record.
	ReasonMalformed Reason = iota
	// ReasonCorrupt is a decoded record with impossible field values
	// (NaN/Inf/negative RTT, negative counts, unknown prefix or cloud).
	ReasonCorrupt
	// ReasonLate is a record whose bucket does not match the bucket being
	// read — delivered out of its collection window.
	ReasonLate
	// ReasonDuplicate is a second record for a (prefix, cloud, device)
	// already seen in the same bucket.
	ReasonDuplicate
	numReasons
)

// String names the reason.
func (r Reason) String() string {
	switch r {
	case ReasonMalformed:
		return "malformed"
	case ReasonCorrupt:
		return "corrupt"
	case ReasonLate:
		return "late"
	case ReasonDuplicate:
		return "duplicate"
	default:
		return fmt.Sprintf("Reason(%d)", int(r))
	}
}

// Rejected is one quarantined record, kept for operator inspection.
type Rejected struct {
	Obs    trace.Observation
	Reason Reason
	// At is the bucket being read when the record was rejected.
	At netmodel.Bucket
	// Line holds (a prefix of) the raw input for malformed records.
	Line string
}

// recentCap bounds the ring of retained rejected records.
const recentCap = 32

// maxRejectedLine bounds how much of a malformed raw line is retained.
const maxRejectedLine = 160

// Quarantine is the counted, inspectable bin for records the ingestion
// path refuses: instead of poisoning quartet aggregates, corrupt, late,
// duplicate, and undecodable records are diverted here. Counts are
// per-reason; the most recent rejections are retained for inspection.
// Metrics (ingest.quarantine.<reason>) register lazily on first rejection,
// so a clean run's metric snapshot is indistinguishable from one taken
// before this layer existed.
//
// Like the rest of the ingestion path, a Quarantine is driven by one
// goroutine at a time.
type Quarantine struct {
	numPrefixes netmodel.PrefixID
	numClouds   int

	counts [numReasons]int64
	recent []Rejected
	next   int

	// seen dedupes (prefix, cloud, device) within one bucket; it is
	// cleared whenever Filter moves to a new bucket.
	seen       map[obsIdentity]struct{}
	seenBucket netmodel.Bucket
	seenPrimed bool

	reg     *metrics.Registry
	mCounts [numReasons]*metrics.Counter
}

type obsIdentity struct {
	prefix netmodel.PrefixID
	cloud  netmodel.CloudID
	device netmodel.DeviceClass
}

// NewQuarantine creates a quarantine that validates records against a
// world with the given prefix and cloud counts (records referencing
// entities outside those ranges are corrupt).
func NewQuarantine(numPrefixes netmodel.PrefixID, numClouds int) *Quarantine {
	return &Quarantine{
		numPrefixes: numPrefixes,
		numClouds:   numClouds,
		seen:        make(map[obsIdentity]struct{}),
	}
}

// SetMetrics attaches a registry. Counters are created lazily per reason
// on the first rejection, never eagerly — a faultless run registers
// nothing.
func (q *Quarantine) SetMetrics(reg *metrics.Registry) { q.reg = reg }

func (q *Quarantine) add(r Rejected) {
	q.counts[r.Reason]++
	if q.mCounts[r.Reason] == nil && q.reg != nil {
		q.mCounts[r.Reason] = q.reg.Counter("ingest.quarantine." + r.Reason.String())
	}
	q.mCounts[r.Reason].Inc()
	if len(r.Line) > maxRejectedLine {
		r.Line = r.Line[:maxRejectedLine]
	}
	if len(q.recent) < recentCap {
		q.recent = append(q.recent, r)
	} else {
		q.recent[q.next] = r
	}
	q.next = (q.next + 1) % recentCap
}

// Reject quarantines one decoded record.
func (q *Quarantine) Reject(o trace.Observation, reason Reason, at netmodel.Bucket) {
	q.add(Rejected{Obs: o, Reason: reason, At: at})
}

// RejectLine quarantines one undecodable raw input line.
func (q *Quarantine) RejectLine(line []byte, at netmodel.Bucket) {
	q.add(Rejected{Reason: ReasonMalformed, At: at, Line: string(line)})
}

// corrupt reports whether a record carries values no collector can emit.
func (q *Quarantine) corrupt(o trace.Observation) bool {
	return math.IsNaN(o.MeanRTT) || math.IsInf(o.MeanRTT, 0) || o.MeanRTT < 0 ||
		o.Samples < 0 || o.Clients < 0 ||
		o.Prefix < 0 || o.Prefix >= q.numPrefixes ||
		o.Cloud < 0 || netmodel.CloudID(q.numClouds) <= o.Cloud
}

// Filter validates bucket b's records in place, quarantining the rejects
// and returning the surviving records (compacted, order preserved).
// Checks run in order late → corrupt → duplicate, so each reject is
// counted under exactly one reason. Buckets must be filtered in
// non-decreasing order (the ObservationSource contract).
func (q *Quarantine) Filter(b netmodel.Bucket, obs []trace.Observation) []trace.Observation {
	if !q.seenPrimed || b != q.seenBucket {
		clear(q.seen)
		q.seenBucket = b
		q.seenPrimed = true
	}
	kept := obs[:0]
	for _, o := range obs {
		switch {
		case o.Bucket != b:
			q.Reject(o, ReasonLate, b)
		case q.corrupt(o):
			q.Reject(o, ReasonCorrupt, b)
		default:
			id := obsIdentity{o.Prefix, o.Cloud, o.Device}
			if _, dup := q.seen[id]; dup {
				q.Reject(o, ReasonDuplicate, b)
				continue
			}
			q.seen[id] = struct{}{}
			kept = append(kept, o)
		}
	}
	return kept
}

// Count returns the records quarantined under one reason.
func (q *Quarantine) Count(r Reason) int64 { return q.counts[r] }

// Total returns all quarantined records.
func (q *Quarantine) Total() int64 {
	var t int64
	for _, n := range q.counts {
		t += n
	}
	return t
}

// Recent returns the most recently quarantined records, oldest first (at
// most recentCap entries).
func (q *Quarantine) Recent() []Rejected {
	out := make([]Rejected, 0, len(q.recent))
	if len(q.recent) == recentCap {
		out = append(out, q.recent[q.next:]...)
		out = append(out, q.recent[:q.next]...)
		return out
	}
	return append(out, q.recent...)
}

// String summarizes the per-reason counts.
func (q *Quarantine) String() string {
	return fmt.Sprintf("malformed=%d corrupt=%d late=%d duplicate=%d",
		q.counts[ReasonMalformed], q.counts[ReasonCorrupt], q.counts[ReasonLate], q.counts[ReasonDuplicate])
}
