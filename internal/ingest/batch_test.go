package ingest

import (
	"bytes"
	"strings"
	"testing"

	"blameit/internal/trace"
)

func batchOf(t *testing.T, obs []trace.Observation) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, obs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDecodeBatchRoundTrip(t *testing.T) {
	want := []trace.Observation{
		{Prefix: 3, Cloud: 1, Device: 0, Bucket: 7, Samples: 40, MeanRTT: 52.25, Clients: 9},
		{Prefix: 11, Cloud: 0, Device: 1, Bucket: 7, Samples: 12, MeanRTT: 140.5, Clients: 2},
	}
	body := batchOf(t, want)
	got, err := DecodeBatch(body, nil, nil)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	// Blank lines are skipped; a final line without a trailing newline is
	// still a complete record; non-canonical but valid JSON falls back to
	// encoding/json.
	mixed := "\n" + strings.TrimSuffix(string(body), "\n") + "\n\n" +
		`{"bucket":7,"prefix":5,"cloud":1,"device":0,"samples":8,"mean_rtt_ms":33,"clients":1}`
	got, err = DecodeBatch([]byte(mixed), nil, nil)
	if err != nil {
		t.Fatalf("DecodeBatch mixed: %v", err)
	}
	if len(got) != 3 || got[2].Prefix != 5 || got[2].MeanRTT != 33 {
		t.Fatalf("mixed decode = %+v, want 3 records ending in prefix 5", got)
	}
}

func TestDecodeBatchAppendsToBuf(t *testing.T) {
	obs := []trace.Observation{{Prefix: 1, Bucket: 2, Samples: 5, MeanRTT: 10, Clients: 1}}
	seed := []trace.Observation{{Prefix: 99, Bucket: 1}}
	got, err := DecodeBatch(batchOf(t, obs), seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Prefix != 99 || got[1].Prefix != 1 {
		t.Fatalf("append result = %+v, want the seed record then the decoded one", got)
	}
}

func TestDecodeBatchStrictPositionedError(t *testing.T) {
	good := batchOf(t, []trace.Observation{{Prefix: 1, Bucket: 0, Samples: 5, MeanRTT: 10, Clients: 1}})
	body := append(append([]byte{}, good...), []byte("half a rec")...)
	_, err := DecodeBatch(body, nil, nil)
	if err == nil {
		t.Fatal("strict decode of a truncated record succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, "record 1") || !strings.Contains(msg, "byte offset") {
		t.Errorf("error %q carries no record index / byte offset", msg)
	}
}

func TestDecodeBatchSalvage(t *testing.T) {
	good := []trace.Observation{
		{Prefix: 1, Bucket: 0, Samples: 5, MeanRTT: 10, Clients: 1},
		{Prefix: 2, Bucket: 0, Samples: 6, MeanRTT: 20, Clients: 2},
	}
	body := batchOf(t, good[:1])
	body = append(body, []byte("### not json ###\n")...)
	body = append(body, batchOf(t, good[1:])...)
	body = append(body, []byte(`{"bucket":0,"trunc`)...)

	var bad [][]byte
	got, err := DecodeBatch(body, nil, func(line []byte) {
		bad = append(bad, append([]byte(nil), line...))
	})
	if err != nil {
		t.Fatalf("salvage decode: %v", err)
	}
	if len(got) != 2 || got[0].Prefix != 1 || got[1].Prefix != 2 {
		t.Fatalf("salvaged records = %+v, want prefixes 1 and 2", got)
	}
	if len(bad) != 2 {
		t.Fatalf("onBad saw %d lines, want 2", len(bad))
	}
	if !bytes.Contains(bad[0], []byte("not json")) || !bytes.Contains(bad[1], []byte("trunc")) {
		t.Errorf("onBad lines = %q, want the garbage and the truncated tail", bad)
	}
}
