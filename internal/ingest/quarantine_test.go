package ingest

import (
	"context"
	"math"
	"strings"
	"testing"

	"blameit/internal/metrics"
	"blameit/internal/netmodel"
	"blameit/internal/trace"
)

func obsAt(p netmodel.PrefixID, c netmodel.CloudID, d netmodel.DeviceClass, b netmodel.Bucket) trace.Observation {
	return trace.Observation{Prefix: p, Cloud: c, Device: d, Bucket: b, Samples: 20, MeanRTT: 50, Clients: 10}
}

func TestQuarantineFilterReasons(t *testing.T) {
	q := NewQuarantine(100, 4)
	late := obsAt(1, 0, 0, 4) // wrong bucket
	nan := obsAt(2, 0, 0, 5)
	nan.MeanRTT = math.NaN()
	inf := obsAt(3, 0, 0, 5)
	inf.MeanRTT = math.Inf(1)
	neg := obsAt(4, 0, 0, 5)
	neg.MeanRTT = -1
	negSamples := obsAt(5, 0, 0, 5)
	negSamples.Samples = -3
	unknownPrefix := obsAt(100, 0, 0, 5) // == numPrefixes, out of range
	unknownCloud := obsAt(6, 4, 0, 5)
	good := obsAt(7, 0, 0, 5)
	dup := good // same identity, same bucket

	in := []trace.Observation{late, nan, inf, neg, negSamples, unknownPrefix, unknownCloud, good, dup}
	out := q.Filter(5, in)
	if len(out) != 1 || out[0].Prefix != 7 {
		t.Fatalf("Filter kept %v, want only prefix 7", out)
	}
	if got := q.Count(ReasonLate); got != 1 {
		t.Errorf("late count = %d, want 1", got)
	}
	if got := q.Count(ReasonCorrupt); got != 6 {
		t.Errorf("corrupt count = %d, want 6", got)
	}
	if got := q.Count(ReasonDuplicate); got != 1 {
		t.Errorf("duplicate count = %d, want 1", got)
	}
	if got := q.Total(); got != 8 {
		t.Errorf("total = %d, want 8", got)
	}
	if s := q.String(); !strings.Contains(s, "corrupt=6") {
		t.Errorf("String() = %q, want corrupt=6", s)
	}
}

func TestQuarantineDedupeResetsPerBucket(t *testing.T) {
	q := NewQuarantine(10, 2)
	// Same identity in two different buckets is NOT a duplicate.
	if out := q.Filter(1, []trace.Observation{obsAt(1, 0, 0, 1)}); len(out) != 1 {
		t.Fatalf("bucket 1 rejected a clean record")
	}
	if out := q.Filter(2, []trace.Observation{obsAt(1, 0, 0, 2)}); len(out) != 1 {
		t.Fatalf("bucket 2 rejected a record seen in bucket 1")
	}
	// Different device classes are distinct identities.
	out := q.Filter(3, []trace.Observation{obsAt(1, 0, 0, 3), obsAt(1, 0, 1, 3)})
	if len(out) != 2 {
		t.Fatalf("distinct device classes deduped: kept %d", len(out))
	}
	if q.Total() != 0 {
		t.Fatalf("clean traffic quarantined: %s", q.String())
	}
}

func TestQuarantineMetricsLazy(t *testing.T) {
	reg := metrics.NewRegistry()
	q := NewQuarantine(10, 2)
	q.SetMetrics(reg)
	// Nothing rejected yet: no quarantine counters may exist (the golden
	// metric snapshot must not change when the data plane is healthy).
	for _, nv := range reg.Snapshot().Counters {
		if strings.HasPrefix(nv.Name, "ingest.quarantine.") {
			t.Fatalf("counter %s registered before any rejection", nv.Name)
		}
	}
	q.Filter(5, []trace.Observation{obsAt(1, 0, 0, 4)})
	if v, ok := reg.Snapshot().Counter("ingest.quarantine.late"); !ok || v != 1 {
		t.Fatalf("ingest.quarantine.late = %d (ok=%v), want 1", v, ok)
	}
	if _, ok := reg.Snapshot().Counter("ingest.quarantine.corrupt"); ok {
		t.Fatal("untouched reason registered a counter")
	}
}

func TestQuarantineRecentRing(t *testing.T) {
	q := NewQuarantine(10, 2)
	for i := 0; i < recentCap+5; i++ {
		q.Reject(obsAt(netmodel.PrefixID(i%10), 0, 0, 99), ReasonLate, 0)
	}
	rec := q.Recent()
	if len(rec) != recentCap {
		t.Fatalf("Recent() returned %d entries, want %d", len(rec), recentCap)
	}
	// Oldest-first: the first retained rejection is #5.
	if rec[0].Obs.Prefix != 5 {
		t.Errorf("Recent()[0].Obs.Prefix = %d, want 5", rec[0].Obs.Prefix)
	}
	if last := rec[len(rec)-1]; last.Obs.Prefix != netmodel.PrefixID((recentCap+4)%10) {
		t.Errorf("Recent() last prefix = %d, want %d", last.Obs.Prefix, (recentCap+4)%10)
	}
}

func TestTransientError(t *testing.T) {
	base := context.DeadlineExceeded
	if IsTransient(base) {
		t.Error("plain error reported transient")
	}
	wrapped := Transient(base)
	if !IsTransient(wrapped) {
		t.Error("Transient() wrapper not detected")
	}
	if wrapped.Error() != base.Error() {
		t.Errorf("message changed: %q", wrapped.Error())
	}
	if Transient(nil) != nil {
		t.Error("Transient(nil) != nil")
	}
}

func TestStreamSourceQuarantineMode(t *testing.T) {
	in := `{"prefix":1,"cloud":0,"device":0,"bucket":0,"samples":20,"mean_rtt_ms":40,"clients":9}
this is not json
{"prefix":2,"cloud":0,"device":0,"bucket":1,"samples":20,"mean_rtt_ms":41,"clients":9}
{"prefix":3,"cloud":0,"device":0,"bucket":0,"samples":20,"mean_rtt_ms":42,"clients":9}
{"prefix":4,"cloud":0,"device":0,"bucket":1,"samples":20,"mean_rtt_ms":43,"clients":9}`
	q := NewQuarantine(100, 4)
	s := NewStreamSource(strings.NewReader(in))
	s.SetQuarantine(q)
	ctx := context.Background()
	b0, err := s.ObservationsAt(ctx, 0, nil)
	if err != nil {
		t.Fatalf("bucket 0: %v", err)
	}
	b1, err := s.ObservationsAt(ctx, 1, nil)
	if err != nil {
		t.Fatalf("bucket 1: %v", err)
	}
	if len(b0) != 1 || b0[0].Prefix != 1 {
		t.Errorf("bucket 0 = %v, want [prefix 1]", b0)
	}
	// Prefix 3 regresses (bucket 1 → 0) and is quarantined as late; the
	// malformed line is quarantined too; prefixes 2 and 4 survive.
	if len(b1) != 2 || b1[0].Prefix != 2 || b1[1].Prefix != 4 {
		t.Errorf("bucket 1 = %v, want [prefix 2, prefix 4]", b1)
	}
	if q.Count(ReasonMalformed) != 1 || q.Count(ReasonLate) != 1 {
		t.Errorf("quarantine = %s, want malformed=1 late=1", q)
	}
	if !s.Exhausted() || s.LastBucket() != 1 {
		t.Errorf("Exhausted=%v LastBucket=%d, want true/1", s.Exhausted(), s.LastBucket())
	}
}
