package ingest

import (
	"bytes"
	"strconv"
	"unsafe"

	"blameit/internal/netmodel"
	"blameit/internal/trace"
)

// The canonical record shape is what trace.WriteJSONL (a json.Encoder over
// trace.Observation) emits: the struct's fields in declaration order, no
// inter-token whitespace, plain decimal numbers. Every trace writer in this
// repo produces it, so the replay hot path decodes it with a hand-rolled
// scanner that allocates nothing. Anything else — reordered or unknown
// fields, quoted numbers, embedded whitespace — falls back to
// encoding/json, so the set of accepted inputs is unchanged; the fast path
// only changes how quickly the common case is parsed.
var (
	keyPrefix  = []byte(`{"prefix":`)
	keyCloud   = []byte(`,"cloud":`)
	keyDevice  = []byte(`,"device":`)
	keyBucket  = []byte(`,"bucket":`)
	keySamples = []byte(`,"samples":`)
	keyMeanRTT = []byte(`,"mean_rtt_ms":`)
	keyClients = []byte(`,"clients":`)
)

// eat consumes an exact literal prefix.
func eat(b, lit []byte) ([]byte, bool) {
	if !bytes.HasPrefix(b, lit) {
		return b, false
	}
	return b[len(lit):], true
}

// parseInt consumes a JSON integer (optional minus, decimal digits).
// Overflow returns ok=false and lets encoding/json produce the error.
func parseInt(b []byte) (int64, []byte, bool) {
	neg := false
	if len(b) > 0 && b[0] == '-' {
		neg = true
		b = b[1:]
	}
	if len(b) == 0 || b[0] < '0' || b[0] > '9' {
		return 0, b, false
	}
	var v int64
	i := 0
	for ; i < len(b) && b[i] >= '0' && b[i] <= '9'; i++ {
		d := int64(b[i] - '0')
		if v > (1<<63-1-d)/10 {
			return 0, b, false
		}
		v = v*10 + d
	}
	// A fraction or exponent means the field is not a plain integer.
	if i < len(b) && (b[i] == '.' || b[i] == 'e' || b[i] == 'E') {
		return 0, b, false
	}
	if neg {
		v = -v
	}
	return v, b[i:], true
}

// parseFloat consumes a JSON number. The digits are handed to
// strconv.ParseFloat through an unsafe no-copy string — ParseFloat neither
// mutates nor retains its argument — so the conversion is exactly
// encoding/json's (correctly rounded, round-trip safe) without the
// per-field allocation.
func parseFloat(b []byte) (float64, []byte, bool) {
	i := 0
	for ; i < len(b); i++ {
		c := b[i]
		if (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' {
			continue
		}
		break
	}
	if i == 0 {
		return 0, b, false
	}
	seg := b[:i]
	v, err := strconv.ParseFloat(unsafe.String(unsafe.SliceData(seg), len(seg)), 64)
	if err != nil {
		return 0, b, false
	}
	return v, b[i:], true
}

// decodeCanonical parses one line of the canonical WriteJSONL shape into o,
// reporting whether it matched. On ok=false o is untouched and the caller
// must re-decode the line with encoding/json.
func decodeCanonical(line []byte, o *trace.Observation) bool {
	b, ok := eat(line, keyPrefix)
	if !ok {
		return false
	}
	var prefix, cloud, device, bucket, samples, clients int64
	var mean float64
	if prefix, b, ok = parseInt(b); !ok {
		return false
	}
	if b, ok = eat(b, keyCloud); !ok {
		return false
	}
	if cloud, b, ok = parseInt(b); !ok {
		return false
	}
	if b, ok = eat(b, keyDevice); !ok {
		return false
	}
	if device, b, ok = parseInt(b); !ok {
		return false
	}
	if b, ok = eat(b, keyBucket); !ok {
		return false
	}
	if bucket, b, ok = parseInt(b); !ok {
		return false
	}
	if b, ok = eat(b, keySamples); !ok {
		return false
	}
	if samples, b, ok = parseInt(b); !ok {
		return false
	}
	if b, ok = eat(b, keyMeanRTT); !ok {
		return false
	}
	if mean, b, ok = parseFloat(b); !ok {
		return false
	}
	if b, ok = eat(b, keyClients); !ok {
		return false
	}
	if clients, b, ok = parseInt(b); !ok {
		return false
	}
	if len(b) == 0 || b[0] != '}' || !isBlank(b[1:]) {
		return false
	}
	*o = trace.Observation{
		Prefix:  netmodel.PrefixID(prefix),
		Cloud:   netmodel.CloudID(cloud),
		Device:  netmodel.DeviceClass(device),
		Bucket:  netmodel.Bucket(bucket),
		Samples: int(samples),
		MeanRTT: mean,
		Clients: int(clients),
	}
	return true
}
