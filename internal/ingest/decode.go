package ingest

import (
	"bytes"
	"strconv"
	"unsafe"

	"blameit/internal/netmodel"
	"blameit/internal/trace"
)

// The canonical record shape is what trace.WriteJSONL (a json.Encoder over
// trace.Observation) emits: the struct's fields in declaration order, no
// inter-token whitespace, plain decimal numbers. Every trace writer in this
// repo produces it, so the replay hot path decodes it with a hand-rolled
// scanner that allocates nothing. Anything else — reordered or unknown
// fields, quoted numbers, embedded whitespace — falls back to
// encoding/json, so the set of accepted inputs is unchanged; the fast path
// only changes how quickly the common case is parsed.
var (
	keyPrefix  = []byte(`{"prefix":`)
	keyCloud   = []byte(`,"cloud":`)
	keyDevice  = []byte(`,"device":`)
	keyBucket  = []byte(`,"bucket":`)
	keySamples = []byte(`,"samples":`)
	keyMeanRTT = []byte(`,"mean_rtt_ms":`)
	keyClients = []byte(`,"clients":`)
)

// eat consumes an exact literal prefix.
func eat(b, lit []byte) ([]byte, bool) {
	if !bytes.HasPrefix(b, lit) {
		return b, false
	}
	return b[len(lit):], true
}

// parseInt consumes a JSON integer (optional minus, decimal digits).
// Overflow returns ok=false and lets encoding/json produce the error.
func parseInt(b []byte) (int64, []byte, bool) {
	neg := false
	if len(b) > 0 && b[0] == '-' {
		neg = true
		b = b[1:]
	}
	if len(b) == 0 || b[0] < '0' || b[0] > '9' {
		return 0, b, false
	}
	var v int64
	i := 0
	for ; i < len(b) && b[i] >= '0' && b[i] <= '9'; i++ {
		d := int64(b[i] - '0')
		if v > (1<<63-1-d)/10 {
			return 0, b, false
		}
		v = v*10 + d
	}
	// A fraction or exponent means the field is not a plain integer.
	if i < len(b) && (b[i] == '.' || b[i] == 'e' || b[i] == 'E') {
		return 0, b, false
	}
	if neg {
		v = -v
	}
	return v, b[i:], true
}

// pow10tab holds the powers of ten that are exactly representable in a
// float64. Dividing an exact integer mantissa (< 2^53) by one of these is
// a single IEEE operation, so the result is correctly rounded — bit for
// bit what strconv.ParseFloat computes for the same input (Clinger's
// fast-path condition).
var pow10tab = [23]float64{
	1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11,
	1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

// parseFloat consumes a JSON number. Fixed-point numbers — the
// -?d+(.d+)? shape nearly every mean_rtt_ms value takes — are parsed
// directly: the digits accumulate into an integer mantissa and one
// correctly-rounded division by a power of ten recovers the value, so the
// hot path runs no strconv at all. Everything outside the fast path's
// exactness envelope (exponents, > 18 digits, mantissa ≥ 2^53, > 22
// fractional digits) falls back to parseFloatSlow, keeping the accepted
// inputs and every decoded bit identical to strconv's.
func parseFloat(b []byte) (float64, []byte, bool) {
	i := 0
	neg := false
	if i < len(b) && b[i] == '-' {
		neg = true
		i++
	}
	intStart := i
	var mant uint64
	digits := 0
	for i < len(b) && b[i] >= '0' && b[i] <= '9' {
		mant = mant*10 + uint64(b[i]-'0')
		digits++
		i++
		if digits > 18 {
			return parseFloatSlow(b)
		}
	}
	if i == intStart {
		return parseFloatSlow(b)
	}
	frac := 0
	if i < len(b) && b[i] == '.' {
		i++
		fracStart := i
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			mant = mant*10 + uint64(b[i]-'0')
			digits++
			frac++
			i++
			if digits > 18 {
				return parseFloatSlow(b)
			}
		}
		if i == fracStart {
			return parseFloatSlow(b)
		}
	}
	if mant >= 1<<53 || frac > 22 {
		return parseFloatSlow(b)
	}
	if i < len(b) {
		switch b[i] {
		case 'e', 'E', '.', '+', '-':
			return parseFloatSlow(b)
		}
	}
	f := float64(mant)
	if frac > 0 {
		f /= pow10tab[frac]
	}
	if neg {
		f = -f
	}
	return f, b[i:], true
}

// parseFloatSlow is the general case: scan the maximal number-shaped span
// and hand it to strconv.ParseFloat through an unsafe no-copy string —
// ParseFloat neither mutates nor retains its argument — so the conversion
// is exactly encoding/json's (correctly rounded, round-trip safe) without
// the per-field allocation.
func parseFloatSlow(b []byte) (float64, []byte, bool) {
	i := 0
	for ; i < len(b); i++ {
		c := b[i]
		if (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' {
			continue
		}
		break
	}
	if i == 0 {
		return 0, b, false
	}
	seg := b[:i]
	v, err := strconv.ParseFloat(unsafe.String(unsafe.SliceData(seg), len(seg)), 64)
	if err != nil {
		return 0, b, false
	}
	return v, b[i:], true
}

// decodeCanonical parses one line of the canonical WriteJSONL shape into o,
// reporting whether it matched. On ok=false o is untouched and the caller
// must re-decode the line with encoding/json.
func decodeCanonical(line []byte, o *trace.Observation) bool {
	b, ok := eat(line, keyPrefix)
	if !ok {
		return false
	}
	var prefix, cloud, device, bucket, samples, clients int64
	var mean float64
	if prefix, b, ok = parseInt(b); !ok {
		return false
	}
	if b, ok = eat(b, keyCloud); !ok {
		return false
	}
	if cloud, b, ok = parseInt(b); !ok {
		return false
	}
	if b, ok = eat(b, keyDevice); !ok {
		return false
	}
	if device, b, ok = parseInt(b); !ok {
		return false
	}
	if b, ok = eat(b, keyBucket); !ok {
		return false
	}
	if bucket, b, ok = parseInt(b); !ok {
		return false
	}
	if b, ok = eat(b, keySamples); !ok {
		return false
	}
	if samples, b, ok = parseInt(b); !ok {
		return false
	}
	if b, ok = eat(b, keyMeanRTT); !ok {
		return false
	}
	if mean, b, ok = parseFloat(b); !ok {
		return false
	}
	if b, ok = eat(b, keyClients); !ok {
		return false
	}
	if clients, b, ok = parseInt(b); !ok {
		return false
	}
	if len(b) == 0 || b[0] != '}' || !isBlank(b[1:]) {
		return false
	}
	*o = trace.Observation{
		Prefix:  netmodel.PrefixID(prefix),
		Cloud:   netmodel.CloudID(cloud),
		Device:  netmodel.DeviceClass(device),
		Bucket:  netmodel.Bucket(bucket),
		Samples: int(samples),
		MeanRTT: mean,
		Clients: int(clients),
	}
	return true
}
