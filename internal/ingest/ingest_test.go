package ingest

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"blameit/internal/bgp"
	"blameit/internal/faults"
	"blameit/internal/netmodel"
	"blameit/internal/sim"
	"blameit/internal/topology"
	"blameit/internal/trace"
)

// testSim builds a small fault-free simulator for source-equivalence tests.
func testSim(t *testing.T) *sim.Simulator {
	t.Helper()
	w := topology.Generate(topology.SmallScale(), 42)
	tbl := bgp.NewTable(w, bgp.DefaultChurnConfig(), netmodel.BucketsPerDay, 7)
	return sim.New(w, tbl, faults.NewSchedule(nil), sim.DefaultConfig(99))
}

// equalObs compares two observation slices elementwise.
func equalObs(a, b []trace.Observation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSourcesAgreeBucketForBucket is the interface contract: the live sim,
// the store-ingesting path, a preloaded store, and a streaming trace reader
// fed from the same telemetry must yield identical observation slices for
// every bucket — the property replay determinism is built on.
func TestSourcesAgreeBucketForBucket(t *testing.T) {
	s := testSim(t)
	ctx := context.Background()
	const horizon = 2 * netmodel.BucketsPerHour

	// Reference stream straight from the simulator, also serialized to a
	// JSONL trace and preloaded into a bare store.
	var file bytes.Buffer
	preloaded := trace.NewStore(8)
	var all []trace.Observation
	var buf []trace.Observation
	for b := netmodel.Bucket(0); b < horizon; b++ {
		buf = s.ObservationsAt(b, buf[:0])
		all = append(all, buf...)
		preloaded.Write(buf)
		if err := trace.WriteJSONL(&file, buf); err != nil {
			t.Fatal(err)
		}
	}

	liveSim := NewSimSource(s)
	ingesting := NewStoreIngest(NewSimSource(s), trace.NewStore(8))
	stored := NewStoreSource(preloaded)
	stream := NewStreamSource(bytes.NewReader(file.Bytes()))

	var want, got []trace.Observation
	for b := netmodel.Bucket(0); b < horizon; b++ {
		var err error
		want, err = liveSim.ObservationsAt(ctx, b, want[:0])
		if err != nil {
			t.Fatal(err)
		}
		for name, src := range map[string]ObservationSource{
			"store-ingest": ingesting, "preloaded-store": stored, "stream": stream,
		} {
			got, err = src.ObservationsAt(ctx, b, got[:0])
			if err != nil {
				t.Fatalf("%s at bucket %d: %v", name, b, err)
			}
			if !equalObs(got, want) {
				t.Fatalf("%s diverges from live sim at bucket %d (%d vs %d records)", name, b, len(got), len(want))
			}
		}
	}
	if stream.Records() != int64(len(all)) {
		t.Errorf("stream consumed %d records, trace holds %d", stream.Records(), len(all))
	}
	if ingesting.Store().ScannedBuckets() == 0 {
		t.Error("store-ingest path did not account any storage-bucket scans")
	}
}

// TestStreamSourceSkipsBuckets mirrors the pipeline's warmup subsampling:
// requesting every 4th bucket must discard the intervening records and
// still return the right ones.
func TestStreamSourceSkipsBuckets(t *testing.T) {
	s := testSim(t)
	ctx := context.Background()
	const horizon = netmodel.BucketsPerHour

	var file bytes.Buffer
	var buf []trace.Observation
	for b := netmodel.Bucket(0); b < horizon; b++ {
		buf = s.ObservationsAt(b, buf[:0])
		if err := trace.WriteJSONL(&file, buf); err != nil {
			t.Fatal(err)
		}
	}
	stream := NewStreamSource(bytes.NewReader(file.Bytes()))
	var want, got []trace.Observation
	for b := netmodel.Bucket(0); b < horizon; b += 4 {
		want = s.ObservationsAt(b, want[:0])
		var err error
		got, err = stream.ObservationsAt(ctx, b, got[:0])
		if err != nil {
			t.Fatal(err)
		}
		if !equalObs(got, want) {
			t.Fatalf("subsampled read diverges at bucket %d", b)
		}
	}
}

// TestStreamSourceExhaustion: reads past the end of the trace return empty
// results without error, and Exhausted reports it.
func TestStreamSourceExhaustion(t *testing.T) {
	obs := []trace.Observation{{Prefix: 1, Bucket: 0, Samples: 10, MeanRTT: 5}}
	var file bytes.Buffer
	if err := trace.WriteJSONL(&file, obs); err != nil {
		t.Fatal(err)
	}
	stream := NewStreamSource(bytes.NewReader(file.Bytes()))
	ctx := context.Background()
	got, err := stream.ObservationsAt(ctx, 0, nil)
	if err != nil || len(got) != 1 {
		t.Fatalf("first bucket: %d records, err %v", len(got), err)
	}
	got, err = stream.ObservationsAt(ctx, 1, nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("past-the-end read: %d records, err %v", len(got), err)
	}
	if !stream.Exhausted() {
		t.Error("stream not marked exhausted")
	}
}

// TestStreamSourceHoldsBackFutureBucket: a record for a later bucket must
// not be consumed early or lost.
func TestStreamSourceHoldsBackFutureBucket(t *testing.T) {
	obs := []trace.Observation{
		{Prefix: 1, Bucket: 0, Samples: 10, MeanRTT: 5},
		{Prefix: 2, Bucket: 3, Samples: 10, MeanRTT: 6},
	}
	var file bytes.Buffer
	if err := trace.WriteJSONL(&file, obs); err != nil {
		t.Fatal(err)
	}
	stream := NewStreamSource(bytes.NewReader(file.Bytes()))
	ctx := context.Background()
	// Sequential requests, including empty intermediate buckets.
	wantCounts := []int{1, 0, 0, 1}
	for b := netmodel.Bucket(0); b < 4; b++ {
		got, err := stream.ObservationsAt(ctx, b, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != wantCounts[b] {
			t.Fatalf("bucket %d: %d records, want %d", b, len(got), wantCounts[b])
		}
		if len(got) == 1 && got[0].Bucket != b {
			t.Fatalf("bucket %d served record of bucket %d", b, got[0].Bucket)
		}
	}
}

// TestStreamSourceRejectsUnsortedTrace: records regressing in bucket order
// would silently mis-assign observations; the source must error instead.
func TestStreamSourceRejectsUnsortedTrace(t *testing.T) {
	obs := []trace.Observation{
		{Prefix: 1, Bucket: 5, Samples: 10, MeanRTT: 5},
		{Prefix: 2, Bucket: 3, Samples: 10, MeanRTT: 6},
	}
	var file bytes.Buffer
	if err := trace.WriteJSONL(&file, obs); err != nil {
		t.Fatal(err)
	}
	stream := NewStreamSource(bytes.NewReader(file.Bytes()))
	_, err := stream.ObservationsAt(context.Background(), 5, nil)
	if err == nil || !strings.Contains(err.Error(), "regresses") {
		t.Fatalf("unsorted trace accepted: %v", err)
	}
}

// TestStreamSourceDecodeErrorContext: a corrupt record is reported with its
// index and byte offset.
func TestStreamSourceDecodeErrorContext(t *testing.T) {
	in := "{\"prefix\":1,\"cloud\":0,\"device\":0,\"bucket\":0,\"samples\":10,\"mean_rtt_ms\":5,\"clients\":1}\n{\"prefix\": }\n"
	stream := NewStreamSource(strings.NewReader(in))
	_, err := stream.ObservationsAt(context.Background(), 0, nil)
	if err == nil {
		t.Fatal("corrupt trace accepted")
	}
	if !strings.Contains(err.Error(), "record 1") || !strings.Contains(err.Error(), "byte offset") {
		t.Errorf("decode error lacks position context: %v", err)
	}
}

// TestSourcesHonorCancellation: every source returns promptly with the
// context's error once it is cancelled.
func TestSourcesHonorCancellation(t *testing.T) {
	s := testSim(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sources := map[string]ObservationSource{
		"sim":          NewSimSource(s),
		"store":        NewStoreSource(trace.NewStore(8)),
		"store-ingest": NewStoreIngest(NewSimSource(s), trace.NewStore(8)),
		"stream":       NewStreamSource(strings.NewReader("")),
	}
	for name, src := range sources {
		if _, err := src.ObservationsAt(ctx, 0, nil); err != context.Canceled {
			t.Errorf("%s: cancelled read returned %v, want context.Canceled", name, err)
		}
	}
}
