package ingest

import (
	"bytes"
	"reflect"
	"testing"

	"blameit/internal/netmodel"
	"blameit/internal/quartet"
)

func sampleAggCells() []AggCell {
	return []AggCell{
		{Agent: 3, Epoch: 1, Seq: 42, Bucket: 288, Prefix: 7, Cloud: 2, Device: 1, Samples: 15, MeanRTT: 83.25, Clients: 4},
		{Agent: 3, Epoch: 1, Seq: 42, Bucket: 288, Prefix: 9, Cloud: 0, Device: 0, Samples: 11, MeanRTT: 40.125, Clients: 2},
		{Agent: 0, Epoch: 0, Seq: 1, Bucket: 288, Prefix: 0, Cloud: 1, Device: 2, Samples: 30, MeanRTT: 121.0625, Clients: 9},
	}
}

// TestAggWireRoundTrip: WriteAggJSONL emits the canonical shape, the
// batch decoder reproduces the cells exactly, and each line goes through
// the alloc-free scanner rather than the encoding/json fallback.
func TestAggWireRoundTrip(t *testing.T) {
	cells := sampleAggCells()
	var buf bytes.Buffer
	if err := WriteAggJSONL(&buf, cells); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAggBatch(buf.Bytes(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cells) {
		t.Fatalf("round trip changed cells:\n got %+v\nwant %+v", got, cells)
	}
	for i, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		var c AggCell
		if !decodeAggCanonical(append(line, '\n'), &c) {
			t.Errorf("line %d did not take the canonical fast path: %s", i, line)
		} else if c != cells[i] {
			t.Errorf("fast path decoded %+v, want %+v", c, cells[i])
		}
	}
}

// TestAggWireFallbackAndSalvage: non-canonical JSON still decodes via
// the fallback, truly bad lines abort in strict mode with a positioned
// error, and salvage mode diverts them and keeps going.
func TestAggWireFallbackAndSalvage(t *testing.T) {
	reordered := []byte(`{"bucket":5, "agent":1, "epoch":0, "seq":9, "prefix":3, "cloud":1, "device":0, "samples":12, "mean_rtt_ms":55.5, "clients":3}` + "\n")
	var c AggCell
	if decodeAggCanonical(reordered, &c) {
		t.Fatal("reordered line should not match the canonical shape")
	}
	got, err := DecodeAggBatch(reordered, nil, nil)
	if err != nil {
		t.Fatalf("fallback decode: %v", err)
	}
	want := AggCell{Agent: 1, Epoch: 0, Seq: 9, Bucket: 5, Prefix: 3, Cloud: 1, Device: 0, Samples: 12, MeanRTT: 55.5, Clients: 3}
	if len(got) != 1 || got[0] != want {
		t.Fatalf("fallback decoded %+v, want %+v", got, want)
	}

	mixed := append([]byte(`{"agent":zap}`+"\n"), reordered...)
	if _, err := DecodeAggBatch(mixed, nil, nil); err == nil {
		t.Fatal("strict mode accepted a malformed line")
	}
	bad := 0
	got, err = DecodeAggBatch(mixed, nil, func(line []byte) { bad++ })
	if err != nil || bad != 1 || len(got) != 1 || got[0] != want {
		t.Fatalf("salvage mode: err=%v bad=%d got=%+v", err, bad, got)
	}
}

// TestAggCellsOfRoundTrips: flattening a partial to wire cells and
// regrouping them reproduces the partial's cells and identity exactly.
func TestAggCellsOfRoundTrips(t *testing.T) {
	id := quartet.PartialID{Agent: 2, Epoch: 1, Seq: 7}
	p := quartet.NewPartial(id, 12)
	for _, c := range sampleAggCells() {
		o := c.Observation()
		o.Bucket = 12
		p.Observe(o)
	}
	cells := AggCellsOf(p, nil)
	if len(cells) != len(p.Cells) {
		t.Fatalf("flattened %d cells, partial has %d", len(cells), len(p.Cells))
	}
	back := quartet.NewPartial(id, 12)
	for _, c := range cells {
		if c.ID() != id || c.Bucket != 12 {
			t.Fatalf("cell %+v lost its partial identity", c)
		}
		back.Observe(c.Observation())
	}
	if !reflect.DeepEqual(back.Cells, p.Cells) {
		t.Fatalf("regrouped cells diverge:\n got %+v\nwant %+v", back.Cells, p.Cells)
	}
	if back.Samples() != p.Samples() {
		t.Fatalf("regrouped samples %d, want %d", back.Samples(), p.Samples())
	}
}

// Negative and boundary values must survive the fast path (a reborn
// agent's epoch is positive, but buckets and IDs near zero appear in
// every test world).
func TestAggWireBoundaryValues(t *testing.T) {
	cells := []AggCell{
		{Agent: 0, Epoch: 0, Seq: 0, Bucket: 0, Prefix: 0, Cloud: 0, Device: 0, Samples: 0, MeanRTT: 0, Clients: 0},
		{Agent: 1 << 20, Epoch: 3, Seq: 1 << 40, Bucket: netmodel.Bucket(1 << 30), Prefix: 1 << 20, Cloud: 255, Device: 2, Samples: 1 << 30, MeanRTT: 0.001, Clients: 1 << 20},
	}
	var buf bytes.Buffer
	if err := WriteAggJSONL(&buf, cells); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAggBatch(buf.Bytes(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cells) {
		t.Fatalf("boundary round trip changed cells:\n got %+v\nwant %+v", got, cells)
	}
}
