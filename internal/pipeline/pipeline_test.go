package pipeline

import (
	"testing"

	"blameit/internal/bgp"
	"blameit/internal/core"
	"blameit/internal/faults"
	"blameit/internal/netmodel"
	"blameit/internal/probe"
	"blameit/internal/sim"
	"blameit/internal/topology"
)

// buildPipeline builds a small-world pipeline with the given faults. The
// fault-free warmup day precedes bucket `dayStart`, where faults may begin.
func buildPipeline(t testing.TB, fs []faults.Fault, days int, cfg Config) *Pipeline {
	t.Helper()
	w := topology.Generate(topology.SmallScale(), 42)
	horizon := netmodel.Bucket((days + 1) * netmodel.BucketsPerDay)
	tbl := bgp.NewTable(w, bgp.DefaultChurnConfig(), horizon, 7)
	s := sim.New(w, tbl, faults.NewSchedule(fs), sim.DefaultConfig(99))
	p := NewSim(s, cfg)
	p.Warmup(0, netmodel.BucketsPerDay) // day 0 is the learning window
	return p
}

// dayStart is the first bucket after the warmup day.
const dayStart = netmodel.Bucket(netmodel.BucketsPerDay)

func TestWarmupLearnsThresholds(t *testing.T) {
	p := buildPipeline(t, nil, 1, DefaultConfig())
	if p.Thresholds == nil {
		t.Fatal("no thresholds learned")
	}
	if p.Thresholds.NumCloudEntries() == 0 || p.Thresholds.NumMiddleEntries() == 0 {
		t.Fatal("warmup learned nothing")
	}
	// Learned cloud medians must sit near typical base RTTs, far below the
	// badness targets for most locations.
	below := 0
	total := 0
	for _, c := range p.World.Clouds {
		exp, ok := p.Thresholds.CloudExpected(c.ID, netmodel.NonMobile)
		if !ok {
			continue
		}
		total++
		if exp < p.World.Target(c.Region, netmodel.NonMobile) {
			below++
		}
	}
	if total == 0 || below*3 < total*2 {
		t.Errorf("only %d/%d cloud expected-RTTs below targets", below, total)
	}
}

func TestStepCadence(t *testing.T) {
	p := buildPipeline(t, nil, 1, DefaultConfig())
	reports := 0
	for b := dayStart; b < dayStart+12; b++ {
		if rep, _ := p.Step(b); rep != nil {
			reports++
			if rep.To != b {
				t.Errorf("report window end = %d, want %d", rep.To, b)
			}
		}
	}
	if reports != 4 { // every 3rd bucket
		t.Errorf("reports = %d, want 4", reports)
	}
}

func TestCloudFaultBlamedEndToEnd(t *testing.T) {
	w := topology.Generate(topology.SmallScale(), 42)
	c := w.CloudsInRegion(netmodel.RegionEurope)[0]
	f := faults.Fault{
		Kind: faults.CloudFault, Cloud: c, ScopeCloud: faults.NoCloud,
		Start: dayStart + 6*netmodel.BucketsPerHour, Duration: 12, ExtraMS: 70,
	}
	cfg := DefaultConfig()
	p := buildPipeline(t, []faults.Fault{f}, 2, cfg)

	var blames []core.Blame
	p.Run(f.Start, f.End(), func(rep *Report) {
		for _, r := range rep.Results {
			if r.Q.Obs.Cloud == c {
				blames = append(blames, r.Blame)
			}
		}
	})
	if len(blames) == 0 {
		t.Fatal("no verdicts for the faulty cloud")
	}
	cloud := 0
	for _, b := range blames {
		if b == core.BlameCloud {
			cloud++
		}
	}
	if cloud*10 < len(blames)*8 {
		t.Errorf("only %d/%d verdicts blamed the cloud", cloud, len(blames))
	}
}

func TestClientFaultBlamedEndToEnd(t *testing.T) {
	w := topology.Generate(topology.SmallScale(), 42)
	as := w.Eyeballs[netmodel.RegionUSA][1]
	f := faults.Fault{
		Kind: faults.ClientASFault, AS: as, ScopeCloud: faults.NoCloud,
		Start: dayStart + 4*netmodel.BucketsPerHour, Duration: 12, ExtraMS: 120,
	}
	p := buildPipeline(t, []faults.Fault{f}, 2, DefaultConfig())

	var hits, misses int
	p.Run(f.Start, f.End(), func(rep *Report) {
		for _, r := range rep.Results {
			if p.World.Prefixes[r.Q.Obs.Prefix].AS != as {
				continue
			}
			if r.Blame == core.BlameClient && r.BlamedAS == as {
				hits++
			} else if r.Blame == core.BlameCloud || r.Blame == core.BlameMiddle {
				misses++
			}
		}
	})
	if hits == 0 {
		t.Fatal("client fault never blamed on the client")
	}
	// Grade by majority, as an investigation would: in the small world a
	// single client AS can own a large share of its provider's middle
	// aggregate, so some windows tip the middle check; at production scale
	// (thousands of /24s per BGP path) the 80% gate makes that impossible.
	if misses >= hits {
		t.Errorf("client fault misblamed %d times vs %d hits", misses, hits)
	}
}

func TestMiddleFaultLocalizedEndToEnd(t *testing.T) {
	w := topology.Generate(topology.SmallScale(), 42)
	// A regional transit sits on many primary paths; tier-1s only carry
	// the rare cross-region attachments in the small world.
	as := w.Transits[netmodel.RegionEurope][0]
	f := faults.Fault{
		Kind: faults.MiddleASFault, AS: as, ScopeCloud: faults.NoCloud,
		// One full day after warmup so the 12-hourly background prober has
		// established baselines for every path.
		Start: dayStart + netmodel.BucketsPerDay, Duration: 18, ExtraMS: 90,
	}
	cfg := DefaultConfig()
	cfg.BudgetPerCloudPerDay = 0 // unlimited for this test
	p := buildPipeline(t, []faults.Fault{f}, 3, cfg)

	// Establish baselines for a day before the fault.
	p.Run(dayStart, f.Start, nil)

	middleSeen, correct, comparable := 0, 0, 0
	p.Run(f.Start, f.End(), func(rep *Report) {
		for _, v := range rep.Verdicts {
			// Grade only issues whose path traverses the faulty AS; small
			// aggregates occasionally flag unrelated paths, whose correct
			// culprit is some other segment.
			onPath := false
			for _, m := range v.Issue.Path.Middle {
				if m == as {
					onPath = true
				}
			}
			if !onPath {
				continue
			}
			middleSeen++
			if v.Probed && v.OK {
				comparable++
				if v.AS == as {
					correct++
				}
			}
		}
	})
	if middleSeen == 0 {
		t.Fatal("no middle issues surfaced")
	}
	if comparable == 0 {
		t.Fatal("no comparable verdicts")
	}
	if correct*10 < comparable*8 {
		t.Errorf("active phase named the right AS in %d/%d comparable verdicts", correct, comparable)
	}
}

func TestTicketsEmittedForFault(t *testing.T) {
	w := topology.Generate(topology.SmallScale(), 42)
	c := w.CloudsInRegion(netmodel.RegionIndia)[0]
	f := faults.Fault{
		Kind: faults.CloudFault, Cloud: c, ScopeCloud: faults.NoCloud,
		Start: dayStart + 2*netmodel.BucketsPerHour, Duration: 6, ExtraMS: 80,
	}
	p := buildPipeline(t, []faults.Fault{f}, 2, DefaultConfig())
	sawCloudTicket := false
	p.Run(f.Start, f.End(), func(rep *Report) {
		for _, tk := range rep.Tickets {
			if tk.Category == core.BlameCloud && tk.Cloud == c {
				sawCloudTicket = true
			}
		}
	})
	if !sawCloudTicket {
		t.Error("no cloud ticket emitted during the fault")
	}
}

func TestBudgetLimitsOnDemandProbes(t *testing.T) {
	w := topology.Generate(topology.SmallScale(), 42)
	as := w.Transits[netmodel.RegionUSA][0]
	f := faults.Fault{
		Kind: faults.MiddleASFault, AS: as, ScopeCloud: faults.NoCloud,
		Start: dayStart, Duration: 36, ExtraMS: 90,
	}
	cfg := DefaultConfig()
	cfg.BudgetPerCloudPerDay = 1
	p := buildPipeline(t, []faults.Fault{f}, 2, cfg)
	p.Run(dayStart, dayStart+36, nil)
	// With budget 1/cloud/day, on-demand probes cannot exceed cloud count.
	if got := p.Prober.Counters().Count(probe.OnDemand); got > int64(len(p.World.Clouds)) {
		t.Errorf("on-demand probes = %d exceed budget", got)
	}
}

func TestFlushClosesIncidents(t *testing.T) {
	w := topology.Generate(topology.SmallScale(), 42)
	c := w.Clouds[0].ID
	f := faults.Fault{Kind: faults.CloudFault, Cloud: c, ScopeCloud: faults.NoCloud, Start: dayStart, Duration: 6, ExtraMS: 80}
	p := buildPipeline(t, []faults.Fault{f}, 2, DefaultConfig())
	p.Run(dayStart, dayStart+6, nil)
	incs := p.Flush()
	if len(incs) == 0 {
		t.Error("no incidents tracked")
	}
}

func TestDeterministicReports(t *testing.T) {
	run := func() int {
		w := topology.Generate(topology.SmallScale(), 42)
		f := faults.Fault{Kind: faults.CloudFault, Cloud: w.Clouds[0].ID, ScopeCloud: faults.NoCloud, Start: dayStart, Duration: 6, ExtraMS: 80}
		tbl := bgp.NewTable(w, bgp.DefaultChurnConfig(), 3*netmodel.BucketsPerDay, 7)
		s := sim.New(w, tbl, faults.NewSchedule([]faults.Fault{f}), sim.DefaultConfig(99))
		p := NewSim(s, DefaultConfig())
		p.Warmup(0, netmodel.BucketsPerDay)
		total := 0
		p.Run(dayStart, dayStart+6, func(rep *Report) { total += len(rep.Results) })
		return total
	}
	if run() != run() {
		t.Error("pipeline runs are not deterministic")
	}
}
