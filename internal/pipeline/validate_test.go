package pipeline

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"blameit/internal/bgp"
	"blameit/internal/faults"
	"blameit/internal/netmodel"
	"blameit/internal/sim"
	"blameit/internal/topology"
)

// TestConfigValidate exercises every rejection branch of Config.Validate
// plus the documented zero-value sentinels, which must stay valid.
func TestConfigValidate(t *testing.T) {
	for _, tc := range []struct {
		name    string
		mutate  func(*Config)
		wantErr string // substring; "" = valid
	}{
		{"default", func(c *Config) {}, ""},
		{"zero sentinels", func(c *Config) {
			c.Workers, c.RunEvery, c.WarmupSampleEvery = 0, 0, 0
			c.TopNAlerts, c.BudgetPerCloudPerDay, c.SourceRetries = 0, 0, 0
			c.Background.PeriodBuckets, c.Background.ChurnDedupeBuckets = 0, 0
		}, ""},
		{"negative workers", func(c *Config) { c.Workers = -1 }, "Workers"},
		{"negative run cadence", func(c *Config) { c.RunEvery = -3 }, "RunEvery"},
		{"negative warmup sampling", func(c *Config) { c.WarmupSampleEvery = -1 }, "WarmupSampleEvery"},
		{"negative alert cap", func(c *Config) { c.TopNAlerts = -5 }, "TopNAlerts"},
		{"negative budget", func(c *Config) { c.BudgetPerCloudPerDay = -1 }, "BudgetPerCloudPerDay"},
		{"NaN probe noise", func(c *Config) { c.ProbeNoiseMS = math.NaN() }, "ProbeNoiseMS"},
		{"negative probe noise", func(c *Config) { c.ProbeNoiseMS = -0.5 }, "ProbeNoiseMS"},
		{"negative source retries", func(c *Config) { c.SourceRetries = -1 }, "SourceRetries"},
		{"tau zero", func(c *Config) { c.Core.Tau = 0 }, "Tau"},
		{"tau above one", func(c *Config) { c.Core.Tau = 1.1 }, "Tau"},
		{"tau NaN", func(c *Config) { c.Core.Tau = math.NaN() }, "Tau"},
		{"min aggregate zero", func(c *Config) { c.Core.MinAggregate = 0 }, "MinAggregate"},
		{"negative baseline period", func(c *Config) { c.Background.PeriodBuckets = -1 }, "PeriodBuckets"},
		{"negative churn dedup", func(c *Config) { c.Background.ChurnDedupeBuckets = -1 }, "ChurnDedupeBuckets"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() accepted invalid config %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("Validate() = %q, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

// TestNewRejectsInvalidConfig: construction must refuse a bad config
// loudly (and name the offending knob) instead of misbehaving buckets
// later.
func TestNewRejectsInvalidConfig(t *testing.T) {
	w := topology.Generate(topology.SmallScale(), 42)
	tbl := bgp.NewTable(w, bgp.DefaultChurnConfig(), netmodel.BucketsPerDay, 7)
	s := sim.New(w, tbl, faults.NewSchedule(nil), sim.DefaultConfig(99))
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("New accepted a config with Tau = -1")
		}
		if !strings.Contains(fmt.Sprint(r), "Tau") {
			t.Fatalf("panic %v does not name the offending knob", r)
		}
	}()
	cfg := DefaultConfig()
	cfg.Core.Tau = -1
	NewSim(s, cfg)
}
