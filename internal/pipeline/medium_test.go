package pipeline

import (
	"testing"

	"blameit/internal/bgp"
	"blameit/internal/core"
	"blameit/internal/faults"
	"blameit/internal/netmodel"
	"blameit/internal/sim"
	"blameit/internal/topology"
)

// TestMediumScaleIntegration runs one full pipeline day on the
// medium-scale world (thousands of /24s, 21 locations) with a mixed fault
// workload, checking that the system behaves at experiment scale: verdicts
// in every category, cloud blame staying rare, budget respected, and a
// known injected cloud fault localized.
func TestMediumScaleIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-scale integration in -short mode")
	}
	w := topology.Generate(topology.MediumScale(), 7)
	horizon := netmodel.Bucket(2 * netmodel.BucketsPerDay)
	fs := faults.Generate(w, faults.DefaultGenerateConfig(), horizon, 8).Faults
	// One marker fault we grade explicitly.
	marker := faults.Fault{
		Kind: faults.CloudFault, Cloud: w.CloudsInRegion(netmodel.RegionIndia)[0], ScopeCloud: faults.NoCloud,
		Start: netmodel.BucketsPerDay + 6*netmodel.BucketsPerHour, Duration: 12, ExtraMS: 80,
	}
	fs = append(fs, marker)
	tbl := bgp.NewTable(w, bgp.DefaultChurnConfig(), horizon, 9)
	s := sim.New(w, tbl, faults.NewSchedule(fs), sim.DefaultConfig(10))
	p := NewSim(s, DefaultConfig())
	p.Warmup(0, netmodel.BucketsPerDay)

	totals := make(map[core.Blame]int)
	markerVotes := make(map[core.Blame]int)
	p.Run(netmodel.BucketsPerDay, horizon, func(rep *Report) {
		for _, r := range rep.Results {
			totals[r.Blame]++
			if r.Q.Obs.Cloud == marker.Cloud && r.Q.Obs.Bucket >= marker.Start+2 && r.Q.Obs.Bucket < marker.End() {
				markerVotes[r.Blame]++
			}
		}
	})

	grand := 0
	for _, n := range totals {
		grand += n
	}
	if grand == 0 {
		t.Fatal("no verdicts at medium scale")
	}
	for _, cat := range []core.Blame{core.BlameCloud, core.BlameMiddle, core.BlameClient} {
		if totals[cat] == 0 {
			t.Errorf("no %v verdicts at medium scale", cat)
		}
	}
	// Cloud blame stays a modest share of all verdicts even though the
	// marker fault floods one location's window with cloud blame.
	if frac := float64(totals[core.BlameCloud]) / float64(grand); frac > 0.3 {
		t.Errorf("cloud fraction = %.2f, too high", frac)
	}
	// The marker fault's window must be dominated by cloud blame.
	if markerVotes[core.BlameCloud] == 0 {
		t.Fatal("marker cloud fault never blamed on the cloud")
	}
	best, bestN := core.BlameNone, 0
	for cat, n := range markerVotes {
		if n > bestN {
			best, bestN = cat, n
		}
	}
	if best != core.BlameCloud {
		t.Errorf("marker fault majority verdict = %v (%v)", best, markerVotes)
	}
	// Budget: on-demand probes per cloud per day within the configured cap.
	for _, c := range w.Clouds {
		if used := p.Budget.Used(c.ID, 1); used > p.Cfg.BudgetPerCloudPerDay {
			t.Errorf("cloud %d used %d probes, budget %d", c.ID, used, p.Cfg.BudgetPerCloudPerDay)
		}
	}
}
