package pipeline

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"blameit/internal/bgp"
	"blameit/internal/core"
	"blameit/internal/faults"
	"blameit/internal/metrics"
	"blameit/internal/netmodel"
	"blameit/internal/sim"
	"blameit/internal/topology"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// goldenReport pins the end-to-end outcome of one deterministic pipeline
// day: per-category verdict counts, ticket and incident totals, and the
// counter section of the metrics snapshot. Any behavioral change to the
// classifier, the active phase, alerting, or the instrumentation shows up
// as a diff against testdata/golden_medium.json; regenerate deliberately
// with `go test ./internal/pipeline -run TestGoldenMediumReport -update`.
type goldenReport struct {
	Verdicts  map[string]int   `json:"verdicts"`
	Tickets   int              `json:"tickets"`
	Incidents int              `json:"incidents"`
	Counters  map[string]int64 `json:"counters"`
}

// TestGoldenMediumReport replays the medium-scale integration workload
// (same seeds and marker fault as TestMediumScaleIntegration) and compares
// the full outcome against a checked-in golden file. It also cross-checks
// that the metrics registry agrees with the counts observed through the
// Report callback, so the instrumentation cannot silently drift from the
// pipeline's real output.
func TestGoldenMediumReport(t *testing.T) {
	if testing.Short() {
		t.Skip("golden medium-scale run in -short mode")
	}
	w := topology.Generate(topology.MediumScale(), 7)
	horizon := netmodel.Bucket(2 * netmodel.BucketsPerDay)
	fs := faults.Generate(w, faults.DefaultGenerateConfig(), horizon, 8).Faults
	marker := faults.Fault{
		Kind: faults.CloudFault, Cloud: w.CloudsInRegion(netmodel.RegionIndia)[0], ScopeCloud: faults.NoCloud,
		Start: netmodel.BucketsPerDay + 6*netmodel.BucketsPerHour, Duration: 12, ExtraMS: 80,
	}
	fs = append(fs, marker)
	reg := metrics.NewRegistry()
	tbl := bgp.NewTable(w, bgp.DefaultChurnConfig(), horizon, 9)
	scfg := sim.DefaultConfig(10)
	scfg.Metrics = reg
	// Pin both worker pools to sequential: results are identical at any
	// width, but the runs.sequential/runs.parallel counters record which
	// path executed, and the golden file must not depend on core count.
	scfg.Workers = 1
	s := sim.New(w, tbl, faults.NewSchedule(fs), scfg)
	cfg := DefaultConfig()
	cfg.Metrics = reg
	cfg.Workers = 1
	p := NewSim(s, cfg)
	p.Warmup(0, netmodel.BucketsPerDay)

	totals := make(map[core.Blame]int)
	tickets := 0
	p.Run(netmodel.BucketsPerDay, horizon, func(rep *Report) {
		for _, r := range rep.Results {
			totals[r.Blame]++
		}
		tickets += len(rep.Tickets)
	})
	incidents := p.Flush()

	snap := p.Metrics.Snapshot()
	got := goldenReport{
		Verdicts:  make(map[string]int),
		Tickets:   tickets,
		Incidents: len(incidents),
		Counters:  make(map[string]int64),
	}
	for _, cat := range core.Categories() {
		got.Verdicts[cat.String()] = totals[cat]
	}
	for _, nv := range snap.Counters {
		got.Counters[nv.Name] = nv.Value
	}

	// Internal consistency first: the registry must agree with what the
	// Report callback saw, independent of the golden file's contents.
	for _, cat := range core.Categories() {
		name := "core.verdicts." + cat.String()
		if v, ok := snap.Counter(name); !ok || v != int64(totals[cat]) {
			t.Errorf("%s = %d, callback saw %d", name, v, totals[cat])
		}
	}
	if v, _ := snap.Counter("alerting.tickets.emitted"); v != int64(tickets) {
		t.Errorf("alerting.tickets.emitted = %d, callback saw %d tickets", v, tickets)
	}
	if v, _ := snap.Counter("pipeline.jobs.runs"); v != int64(netmodel.BucketsPerDay/p.Cfg.RunEvery) {
		t.Errorf("pipeline.jobs.runs = %d, want %d", v, netmodel.BucketsPerDay/p.Cfg.RunEvery)
	}

	path := filepath.Join("testdata", "golden_medium.json")
	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden file (run with -update to create): %v", err)
	}
	var want goldenReport
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	if !reflect.DeepEqual(got.Verdicts, want.Verdicts) {
		t.Errorf("verdict counts diverged from golden:\n got  %v\n want %v", got.Verdicts, want.Verdicts)
	}
	if got.Tickets != want.Tickets {
		t.Errorf("tickets = %d, golden %d", got.Tickets, want.Tickets)
	}
	if got.Incidents != want.Incidents {
		t.Errorf("incidents = %d, golden %d", got.Incidents, want.Incidents)
	}
	if !reflect.DeepEqual(got.Counters, want.Counters) {
		for name, v := range got.Counters {
			if wv, ok := want.Counters[name]; !ok {
				t.Errorf("counter %s = %d not in golden", name, v)
			} else if v != wv {
				t.Errorf("counter %s = %d, golden %d", name, v, wv)
			}
		}
		for name := range want.Counters {
			if _, ok := got.Counters[name]; !ok {
				t.Errorf("golden counter %s missing from run", name)
			}
		}
	}
}
