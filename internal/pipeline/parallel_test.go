package pipeline

import (
	"fmt"
	"runtime"
	"testing"

	"blameit/internal/bgp"
	"blameit/internal/core"
	"blameit/internal/faults"
	"blameit/internal/netmodel"
	"blameit/internal/sim"
	"blameit/internal/topology"
)

// reportFingerprint flattens every field of a run's reports that an
// operator could observe, so two runs can be compared exactly.
func reportFingerprint(reps []*Report) []string {
	var out []string
	for _, rep := range reps {
		out = append(out, fmt.Sprintf("window %d..%d", rep.From, rep.To))
		for _, r := range rep.Results {
			out = append(out, fmt.Sprintf("res p%d c%d b%d %s as%d",
				r.Q.Obs.Prefix, r.Q.Obs.Cloud, r.Q.Obs.Bucket, r.Blame, r.BlamedAS))
		}
		for _, v := range rep.Verdicts {
			out = append(out, fmt.Sprintf("verdict %s probed=%v ok=%v as%d", v.Issue.Key, v.Probed, v.OK, v.AS))
		}
		for _, tk := range rep.Tickets {
			out = append(out, fmt.Sprintf("ticket %s %s", tk.Team, tk.Summary))
		}
	}
	return out
}

// runWithWorkers drives a faulty two-day pipeline with the given fan-out
// in both the simulator and the job, returning the full report stream.
func runWithWorkers(workers int) []*Report {
	w := topology.Generate(topology.SmallScale(), 42)
	fs := []faults.Fault{
		{Kind: faults.CloudFault, Cloud: w.Clouds[0].ID, ScopeCloud: faults.NoCloud,
			Start: dayStart + 2*netmodel.BucketsPerHour, Duration: 12, ExtraMS: 70},
		{Kind: faults.MiddleASFault, AS: w.Transits[netmodel.RegionEurope][0], ScopeCloud: faults.NoCloud,
			Start: dayStart + 5*netmodel.BucketsPerHour, Duration: 12, ExtraMS: 90},
	}
	tbl := bgp.NewTable(w, bgp.DefaultChurnConfig(), 2*netmodel.BucketsPerDay, 7)
	scfg := sim.DefaultConfig(99)
	scfg.Workers = workers
	s := sim.New(w, tbl, faults.NewSchedule(fs), scfg)
	cfg := DefaultConfig()
	cfg.Workers = workers
	p := NewSim(s, cfg)
	p.Warmup(0, dayStart)
	var reps []*Report
	p.Run(dayStart, dayStart+8*netmodel.BucketsPerHour, func(rep *Report) { reps = append(reps, rep) })
	return reps
}

// TestReportsIdenticalAcrossWorkerCounts pins the tentpole guarantee end
// to end: the same seed produces identical Reports (verdicts, active-phase
// localizations and tickets) for Workers in {1, 4, GOMAXPROCS}.
func TestReportsIdenticalAcrossWorkerCounts(t *testing.T) {
	want := reportFingerprint(runWithWorkers(1))
	if len(want) == 0 {
		t.Fatal("sequential reference produced no report lines")
	}
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		got := reportFingerprint(runWithWorkers(workers))
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d report lines, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: line %d differs:\n got %s\nwant %s", workers, i, got[i], want[i])
			}
		}
	}
}

// TestUnalignedRunStartClampsWindow is the regression test for the
// Report.From underflow: a run starting on a bucket that is not a multiple
// of RunEvery must not report buckets it never stepped.
func TestUnalignedRunStartClampsWindow(t *testing.T) {
	cfg := DefaultConfig() // RunEvery = 3
	p := buildPipeline(t, nil, 1, cfg)

	// dayStart is a multiple of 3, so the first job boundary after an
	// unaligned start at dayStart+1 is dayStart+2: only two buckets were
	// stepped, and the old From computation (b - RunEvery + 1) would have
	// claimed dayStart as well.
	start := dayStart + 1
	var reps []*Report
	p.Run(start, start+4, func(rep *Report) { reps = append(reps, rep) })
	if len(reps) != 1 {
		t.Fatalf("reports = %d, want 1", len(reps))
	}
	if reps[0].From != start {
		t.Errorf("first report From = %d, want the run start %d", reps[0].From, start)
	}
	if reps[0].To != dayStart+2 {
		t.Errorf("first report To = %d, want %d", reps[0].To, dayStart+2)
	}
	for _, r := range reps[0].Results {
		if r.Q.Obs.Bucket < start {
			t.Fatalf("report contains bucket %d before the run start %d", r.Q.Obs.Bucket, start)
		}
	}
}

// TestSingleBucketWindowOnJobBoundary starts exactly on a job boundary:
// the window holds one bucket and the report must say so.
func TestSingleBucketWindowOnJobBoundary(t *testing.T) {
	p := buildPipeline(t, nil, 1, DefaultConfig())
	start := dayStart + 2 // (dayStart+2+1) % 3 == 0: job fires immediately
	rep, _ := p.Step(start)
	if rep == nil {
		t.Fatal("no report on the job boundary")
	}
	if rep.From != start || rep.To != start {
		t.Errorf("window = [%d, %d], want [%d, %d]", rep.From, rep.To, start, start)
	}
}

// TestAlignedWindowsUnchanged confirms the clamp leaves the steady-state
// cadence untouched: after the first job, every window spans RunEvery
// buckets.
func TestAlignedWindowsUnchanged(t *testing.T) {
	p := buildPipeline(t, nil, 1, DefaultConfig())
	var reps []*Report
	p.Run(dayStart, dayStart+12, func(rep *Report) { reps = append(reps, rep) })
	if len(reps) != 4 {
		t.Fatalf("reports = %d, want 4", len(reps))
	}
	for _, rep := range reps {
		if rep.To-rep.From+1 != netmodel.Bucket(p.Cfg.RunEvery) {
			t.Errorf("window [%d, %d] spans %d buckets, want %d", rep.From, rep.To, rep.To-rep.From+1, p.Cfg.RunEvery)
		}
	}
}

// TestRelearnOncePerDay covers Step's day-boundary relearn path: the
// thresholds snapshot must refresh exactly once per simulated day.
func TestRelearnOncePerDay(t *testing.T) {
	p := buildPipeline(t, nil, 2, DefaultConfig())
	last := p.Thresholds
	refreshes := 0
	var refreshedAt []netmodel.Bucket
	for b := dayStart; b < dayStart+2*netmodel.BucketsPerDay; b++ {
		p.Step(b)
		if p.Thresholds != last {
			refreshes++
			refreshedAt = append(refreshedAt, b)
			last = p.Thresholds
		}
	}
	if refreshes != 2 {
		t.Fatalf("thresholds refreshed %d times over two days, want 2 (at %v)", refreshes, refreshedAt)
	}
	for i, b := range refreshedAt {
		if b.OfDay() != 0 {
			t.Errorf("refresh %d happened mid-day at bucket %d", i, b)
		}
	}
}

// TestRelearnChangesVerdictsAfterDrift asserts the relearn path has teeth:
// with a stale (absurdly high) threshold snapshot installed, a cloud fault
// escapes blame; the day-boundary refresh restores the learner's medians
// and the same fault is blamed on the cloud.
func TestRelearnChangesVerdictsAfterDrift(t *testing.T) {
	w := topology.Generate(topology.SmallScale(), 42)
	c := w.CloudsInRegion(netmodel.RegionEurope)[0]
	// A fault spanning the day-1 → day-2 boundary.
	f := faults.Fault{
		Kind: faults.CloudFault, Cloud: c, ScopeCloud: faults.NoCloud,
		Start: dayStart + netmodel.BucketsPerDay - 12, Duration: 24, ExtraMS: 70,
	}
	p := buildPipeline(t, []faults.Fault{f}, 2, DefaultConfig())

	// Simulate a badly drifted learner snapshot: expected RTTs far above
	// anything observable, so nothing ever looks bad against them.
	stale := make(map[netmodel.CloudID]float64)
	for _, cl := range p.World.Clouds {
		stale[cl.ID] = 10000
	}
	p.SetThresholds(core.StaticThresholds(stale, nil))
	p.lastRelearnDay = 1 // day 1's organic refresh already happened

	countCloud := func(from, to netmodel.Bucket) (cloud, total int) {
		p.Run(from, to, func(rep *Report) {
			for _, r := range rep.Results {
				if r.Q.Obs.Cloud != c {
					continue
				}
				total++
				if r.Blame == core.BlameCloud {
					cloud++
				}
			}
		})
		return
	}

	staleCloud, staleTotal := countCloud(f.Start, dayStart+netmodel.BucketsPerDay)
	if staleTotal == 0 {
		t.Fatal("no verdicts under the stale thresholds")
	}
	if staleCloud != 0 {
		t.Fatalf("stale thresholds still blamed the cloud %d/%d times", staleCloud, staleTotal)
	}
	before := p.Thresholds

	// Crossing into day 2 must refresh the snapshot from the learner and
	// flip the verdicts to cloud.
	freshCloud, freshTotal := countCloud(dayStart+netmodel.BucketsPerDay, f.End())
	if p.Thresholds == before {
		t.Fatal("day boundary did not refresh thresholds")
	}
	if freshTotal == 0 {
		t.Fatal("no verdicts after the refresh")
	}
	if freshCloud*10 < freshTotal*8 {
		t.Errorf("after relearn only %d/%d verdicts blamed the cloud", freshCloud, freshTotal)
	}
}
