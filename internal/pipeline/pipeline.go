// Package pipeline wires every BlameIt component into the production
// workflow of Fig. 7: passive RTT collection at the cloud locations, the
// periodic Algorithm 1 job at the analytics cluster, middle-issue
// prioritization with budgeted on-demand traceroutes, background baseline
// maintenance, and impact-ranked operator alerts.
//
// The pipeline is decoupled from where its telemetry comes from: passive
// observations arrive through an ingest.ObservationSource (live simulator,
// store-backed windowed reads, or a streaming trace replay) and active
// measurements go through a probe.Prober (live traceroute engine or a
// recorded-probe replay). The simulator is just one backend among several;
// see NewSim for the conventional live wiring.
package pipeline

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"time"

	"blameit/internal/active"
	"blameit/internal/alerting"
	"blameit/internal/bgp"
	"blameit/internal/core"
	"blameit/internal/faults"
	"blameit/internal/ingest"
	"blameit/internal/metrics"
	"blameit/internal/netmodel"
	"blameit/internal/parallel"
	"blameit/internal/predict"
	"blameit/internal/probe"
	"blameit/internal/quartet"
	"blameit/internal/sim"
	"blameit/internal/topology"
	"blameit/internal/trace"
)

// Config assembles the tunables of every stage.
type Config struct {
	Core       core.Config
	Background probe.BackgroundConfig
	// BudgetPerCloudPerDay caps on-demand traceroutes per location (0 =
	// unlimited).
	BudgetPerCloudPerDay int
	// RunEvery is the cadence of the Algorithm 1 job in buckets (3 = every
	// 15 minutes, as in production).
	RunEvery int
	// TopNAlerts bounds the tickets emitted per job run (0 = unlimited).
	TopNAlerts int
	// ProbeNoiseMS is the traceroute engine's per-hop noise. It only
	// applies to the sim-backed wiring (NewSim/SimDeps), which constructs
	// the engine; a caller supplying its own Prober configures noise there.
	ProbeNoiseMS float64
	// WarmupSampleEvery subsamples warmup buckets when learning expected
	// RTTs (1 = every bucket).
	WarmupSampleEvery int
	// SourceRetries is how many times a transient observation-read error
	// (ingest.TransientError) is retried before the bucket is declared
	// dark — skipped, its records lost, the loss counted
	// (pipeline.source.dark_buckets). Fatal errors never retry. 0 disables
	// retries; negative is invalid.
	SourceRetries int
	// Retry is the policy of the probe.RetryingProber the pipeline wraps
	// around fallible probers (implementations of probe.ErrProber). Zero
	// values take probe.DefaultRetryConfig. Infallible probers — the
	// simulated Engine, the Replayer — are never wrapped, so fault-free
	// and replay runs are untouched.
	Retry probe.RetryConfig
	// Workers caps the concurrency of the Algorithm 1 job: the per-bucket
	// core.Localize calls of one window run on up to Workers goroutines
	// and their Results are merged in bucket order, so reports are
	// identical at any worker count. Non-positive means
	// runtime.GOMAXPROCS(0); 1 forces the sequential path.
	Workers int
	// Metrics is the registry every stage reports into. Nil falls back to
	// the process default registry (see metrics.EnableDefault) and, when
	// that is also unset, to a fresh private registry — so Pipeline.Metrics
	// is always usable and per-pipeline counts stay isolated by default.
	Metrics *metrics.Registry
}

// DefaultConfig returns the production-like configuration.
func DefaultConfig() Config {
	return Config{
		Core:                 core.DefaultConfig(),
		Background:           probe.DefaultBackgroundConfig(),
		BudgetPerCloudPerDay: 50,
		RunEvery:             3,
		TopNAlerts:           10,
		ProbeNoiseMS:         0.5,
		WarmupSampleEvery:    4,
		SourceRetries:        2,
	}
}

// Validate rejects configurations with no meaningful interpretation —
// negative counts, thresholds outside their domain — instead of silently
// correcting them. The zero-value sentinels stay valid (Workers 0 = all
// cores, RunEvery/WarmupSampleEvery 0 = every bucket, TopNAlerts/
// BudgetPerCloudPerDay 0 = unlimited). New panics on an invalid config;
// callers assembling configs from external input (flags) should Validate
// first and report the error.
func (c Config) Validate() error {
	switch {
	case c.Workers < 0:
		return fmt.Errorf("pipeline: Workers %d must be >= 0 (0 = all cores)", c.Workers)
	case c.RunEvery < 0:
		return fmt.Errorf("pipeline: RunEvery %d must be >= 0 (0 = every bucket)", c.RunEvery)
	case c.WarmupSampleEvery < 0:
		return fmt.Errorf("pipeline: WarmupSampleEvery %d must be >= 0 (0 = every bucket)", c.WarmupSampleEvery)
	case c.TopNAlerts < 0:
		return fmt.Errorf("pipeline: TopNAlerts %d must be >= 0 (0 = unlimited)", c.TopNAlerts)
	case c.BudgetPerCloudPerDay < 0:
		return fmt.Errorf("pipeline: BudgetPerCloudPerDay %d must be >= 0 (0 = unlimited)", c.BudgetPerCloudPerDay)
	case math.IsNaN(c.ProbeNoiseMS) || c.ProbeNoiseMS < 0:
		return fmt.Errorf("pipeline: ProbeNoiseMS %v must be >= 0", c.ProbeNoiseMS)
	case c.SourceRetries < 0:
		return fmt.Errorf("pipeline: SourceRetries %d must be >= 0", c.SourceRetries)
	case math.IsNaN(c.Core.Tau) || c.Core.Tau <= 0 || c.Core.Tau > 1:
		return fmt.Errorf("pipeline: Core.Tau %v must be in (0, 1]", c.Core.Tau)
	case c.Core.MinAggregate < 1:
		return fmt.Errorf("pipeline: Core.MinAggregate %d must be >= 1", c.Core.MinAggregate)
	case c.Background.PeriodBuckets < 0:
		return fmt.Errorf("pipeline: Background.PeriodBuckets %d must be >= 0 (0 = no periodic probes)", c.Background.PeriodBuckets)
	case c.Background.ChurnDedupeBuckets < 0:
		return fmt.Errorf("pipeline: Background.ChurnDedupeBuckets %d must be >= 0 (0 = no dedup)", c.Background.ChurnDedupeBuckets)
	}
	return nil
}

// windowRun is one stepped bucket's classified quartets. Step appends
// buckets in increasing order (the trackers enforce monotonicity), so a
// window's runs are always sorted by bucket.
type windowRun struct {
	b  netmodel.Bucket
	qs []quartet.Quartet
}

// Report is the output of one Algorithm 1 job run.
type Report struct {
	// From and To delimit the window's buckets: [From, To].
	From, To netmodel.Bucket
	// Results are per-quartet verdicts across the window.
	Results []core.Result
	// Verdicts are the active phase's AS-level localizations.
	Verdicts []active.Verdict
	// Tickets are the impact-ranked operator alerts.
	Tickets []alerting.Ticket
	// Metrics is the metric delta of this job interval — everything the
	// pipeline's registry accumulated since the previous report (or since
	// the run started, for the first report): collection and classification
	// of the window's buckets plus the job itself. Experiments can assert
	// on per-run counts without diffing registry snapshots themselves.
	Metrics metrics.Snapshot
	// Health grades the data plane over this job interval: what the
	// ingestion and probing layers absorbed (quarantined records, retried
	// reads, dark buckets, failed probes, open circuits) and the resulting
	// per-component state. Excluded from CanonicalJSON — health describes
	// the transport, not the verdicts, and a degraded replay of a perfect
	// recording must still be byte-equivalent.
	Health Health
	// Final marks a report produced by Finalize (a drain's partial-window
	// flush) rather than the job cadence. Excluded from CanonicalJSON —
	// it describes how the run stopped, not what was observed. Durability
	// layers use it: a replayed step loop regenerates cadence reports but
	// not the drain flush, so a journaled final report is restored as-is
	// and the replayed window discarded (see DiscardWindow).
	Final bool
}

// ComponentHealth grades one data-plane component over a job interval.
type ComponentHealth int

const (
	// Healthy means no faults were observed in the interval.
	Healthy ComponentHealth = iota
	// Degraded means faults occurred but were absorbed: retried reads,
	// quarantined records, failed probe attempts that later succeeded.
	Degraded
	// Dark means the component delivered nothing usable: every bucket of
	// the interval was lost, or probe circuits are open.
	Dark
)

// String names the health state.
func (h ComponentHealth) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Dark:
		return "dark"
	default:
		return fmt.Sprintf("ComponentHealth(%d)", int(h))
	}
}

// Health is the per-component data-plane summary attached to each Report,
// with the interval counts behind each grade. It is also mirrored into the
// pipeline.health.source / pipeline.health.prober gauges (0 healthy,
// 1 degraded, 2 dark).
type Health struct {
	Source ComponentHealth `json:"source"`
	Prober ComponentHealth `json:"prober"`
	// Source-side interval counts.
	Quarantined   int64 `json:"quarantined,omitempty"`
	SourceRetries int64 `json:"source_retries,omitempty"`
	DarkBuckets   int64 `json:"dark_buckets,omitempty"`
	// Prober-side interval counts (zero unless the prober is fallible).
	ProbeFailures  int64 `json:"probe_failures,omitempty"`
	ProbeExhausted int64 `json:"probe_exhausted,omitempty"`
	OpenCircuits   int   `json:"open_circuits,omitempty"`
}

// canonicalReport is the deterministic projection of a Report: everything
// except Metrics, whose histograms record wall times and therefore differ
// between runs.
type canonicalReport struct {
	From     netmodel.Bucket   `json:"from"`
	To       netmodel.Bucket   `json:"to"`
	Results  []core.Result     `json:"results"`
	Verdicts []active.Verdict  `json:"verdicts"`
	Tickets  []alerting.Ticket `json:"tickets"`
}

// CanonicalJSON serializes the report's deterministic content — window,
// results, verdicts, and tickets, excluding the wall-time-bearing Metrics
// snapshot. Two runs over the same telemetry are equivalent exactly when
// their reports' CanonicalJSON streams are byte-identical; the replay
// golden test holds blameit -replay to that standard.
func (r *Report) CanonicalJSON() ([]byte, error) {
	return json.Marshal(canonicalReport{
		From: r.From, To: r.To, Results: r.Results, Verdicts: r.Verdicts, Tickets: r.Tickets,
	})
}

// ReportFromCanonical reconstructs a report from its CanonicalJSON bytes.
// Metrics and Health are zero — the canonical form deliberately excludes
// them. Restart recovery uses it to restore journaled reports whose
// windows a replayed step loop does not regenerate (drain flushes).
func ReportFromCanonical(data []byte) (*Report, error) {
	var c canonicalReport
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("pipeline: decoding canonical report: %w", err)
	}
	return &Report{
		From: c.From, To: c.To, Results: c.Results, Verdicts: c.Verdicts, Tickets: c.Tickets,
	}, nil
}

// AggregateSource delivers one bucket's merged quartet aggregate — the
// edge-aggregated alternative to a raw ObservationSource. Implementations
// (a fleet collector merging per-agent partials, the blameitd aggregate
// endpoint) own the returned aggregate; the pipeline reads its canonical
// cells during the call and never retains it. A nil aggregate means the
// bucket delivered nothing. Errors follow the ObservationSource contract:
// ingest.TransientError values are retried per Config.SourceRetries,
// anything else is fatal.
type AggregateSource interface {
	AggregatesAt(ctx context.Context, b netmodel.Bucket) (*quartet.Aggregate, error)
}

// Deps are the pipeline's external dependencies: the topology and routing
// views shared with the telemetry backends, the passive telemetry feed,
// the active-phase prober, and optionally the storage layer behind the
// source (for §6.1 scan-cost accounting). World, Table, and Prober are
// required, plus exactly one telemetry feed: a raw observation Source or
// an Aggregates source of merged edge partials. Either way Step classifies
// from merged aggregate cells — a raw Source just goes through the
// trivial one-agent aggregation first.
type Deps struct {
	World  *topology.World
	Table  *bgp.Table
	Source ingest.ObservationSource
	// Aggregates feeds the pipeline pre-merged edge aggregates instead of
	// raw observations. Mutually exclusive with Source.
	Aggregates AggregateSource
	Prober     probe.Prober
	// Store, when non-nil, is the ingestion store the Source reads through;
	// the pipeline exposes it for scan-cost reporting but never bypasses
	// the Source to reach it.
	Store *trace.Store
	// Provider selects which of the world's cloud providers this pipeline
	// operates for: its cloud ASN is the one Algorithm 1 treats as the
	// cloud segment, and background baselines cover its edge locations.
	// The zero value is provider 0 — the historical single-provider world.
	Provider netmodel.ProviderID
}

// SimDepsRetention is the ingestion-store retention (in hour-long windows)
// of the default sim-backed wiring: the job's 15-minute window never reads
// more than one window behind the frontier, so two suffice for any run
// length.
const SimDepsRetention = 2

// SimDeps is the conventional live wiring over a simulator: observations
// are generated by the sim, scattered into an hourly-window ingestion store
// and read back through the scan-everything window read (so scan-cost
// accounting measures the real job), and probes are served by the live
// traceroute engine. The store keeps SimDepsRetention windows.
func SimDeps(s *sim.Simulator, probeNoiseMS float64) Deps {
	st := trace.NewStore(8)
	st.SetRetention(SimDepsRetention)
	return Deps{
		World:  s.World,
		Table:  s.Routes,
		Source: ingest.NewStoreIngest(ingest.NewSimSource(s), st),
		Prober: probe.NewEngine(s, probeNoiseMS),
		Store:  st,
	}
}

// Pipeline is the assembled system.
type Pipeline struct {
	World *topology.World
	Table *bgp.Table
	Cfg   Config
	// Provider is the cloud provider this pipeline localizes for.
	Provider netmodel.ProviderID

	// Source feeds the passive phase; Prober serves the active phase.
	// Aggregates replaces Source when the feed is pre-merged edge
	// partials (exactly one of the two is set).
	Source     ingest.ObservationSource
	Aggregates AggregateSource
	Prober     probe.Prober
	// Store is the ingestion store behind Source, when there is one (nil
	// for direct live or streaming sources). Read-only accounting.
	Store *trace.Store

	// Metrics is the registry every stage of this pipeline reports into.
	Metrics *metrics.Registry

	Baseliner  *probe.Baseliner
	Budget     *probe.Budget
	Learner    *core.Learner
	Thresholds *core.Thresholds
	Passive    *core.Localizer
	Active     *active.Localizer
	Durations  *predict.DurationPredictor
	Clients    *predict.ClientPredictor
	Alerter    *alerting.Alerter

	// Persistence trackers.
	QuartetTracker *quartet.Tracker
	MiddleTracker  *active.Tracker

	// keyFunc is the optional middle-grouping override.
	keyFunc core.MiddleKeyFunc

	// lastRelearnDay tracks the daily expected-RTT refresh (production
	// recomputes the trailing 14-day medians continuously).
	lastRelearnDay int

	// window accumulates classified quartets between job runs, one run per
	// stepped bucket. The quarantine guarantees every record kept at Step(b)
	// carries Obs.Bucket == b, so grouping happens incrementally at append
	// time — the job consumes the runs directly instead of rescanning the
	// whole window into a per-bucket map on every run. Runs (and their qs
	// backing arrays) are recycled across jobs. windowFrom is the first
	// bucket actually stepped into the current window (the job's Report.From
	// is clamped to it, so a run starting on a bucket unaligned with
	// RunEvery never reports buckets it did not step).
	window       []windowRun
	windowFrom   netmodel.Bucket
	windowPrimed bool
	obsBuf       []trace.Observation

	// agg is the per-bucket merged aggregate Step classifies from. Both
	// feeds converge on it: the validated observation stream of the bucket
	// (raw reads after quarantine, or the reconstruction of an upstream
	// merged aggregate, re-validated the same way) is folded into aggPart,
	// the trivial one-agent aggregation, and agg holds exactly that
	// partial. Both are recycled across buckets.
	agg     *quartet.Aggregate
	aggPart *quartet.Partial

	// Metric handles (fetched once in New; nil-safe no-ops never occur
	// here since the pipeline always has a registry).
	mStageCollect  *metrics.Histogram
	mStageClassify *metrics.Histogram
	mStageLocalize *metrics.Histogram
	mStageActive   *metrics.Histogram
	mStageAlert    *metrics.Histogram
	mJobMS         *metrics.Histogram
	mWindowQs      *metrics.Histogram
	mWindowBuckets *metrics.Histogram
	mJobs          *metrics.Counter
	mRelearns      *metrics.Counter
	mObsCollected  *metrics.Counter
	mBadQuartets   *metrics.Counter

	// lastSnap is the registry state at the end of the previous job run
	// (or at the first Step), the baseline for Report.Metrics deltas.
	lastSnap       metrics.Snapshot
	lastSnapPrimed bool

	// quar is the ingestion quarantine every observation read is validated
	// through; srcRetries/darkBuckets account transient-read recovery.
	// The last* fields are the cumulative values at the previous report,
	// for Health interval deltas. The fault counters register lazily so a
	// clean run's metric snapshot is unchanged.
	quar           *ingest.Quarantine
	srcRetries     int64
	darkBuckets    int64
	mSourceRetries *metrics.Counter
	mDarkBuckets   *metrics.Counter
	mHealthSource  *metrics.Gauge
	mHealthProber  *metrics.Gauge
	lastQuarTotal  int64
	lastSrcRetries int64
	lastDark       int64
	lastProbeStats probe.RetryStats
}

// New assembles a pipeline over explicit dependencies. The simulator is
// not among them: any ObservationSource / Prober pair over a consistent
// topology works, which is what lets blameit -replay re-run a recorded
// trace. Use NewSim for the conventional live wiring.
func New(deps Deps, cfg Config) *Pipeline {
	if deps.World == nil || deps.Table == nil || deps.Prober == nil {
		panic("pipeline: Deps.World, Table, and Prober are all required")
	}
	if (deps.Source == nil) == (deps.Aggregates == nil) {
		panic("pipeline: exactly one of Deps.Source and Deps.Aggregates is required")
	}
	if deps.Provider < 0 || int(deps.Provider) >= deps.World.NumProviders() {
		panic(fmt.Sprintf("pipeline: Deps.Provider %d outside the world's %d providers", deps.Provider, deps.World.NumProviders()))
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.RunEvery < 1 {
		cfg.RunEvery = 1
	}
	if cfg.WarmupSampleEvery < 1 {
		cfg.WarmupSampleEvery = 1
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.Default()
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	// A fallible prober (one implementing probe.ErrProber) is hardened
	// behind the retrying wrapper, so every consumer — baseliner, active
	// phase — gets retries and breaker protection. Infallible probers
	// (Engine, Replayer) pass through untouched.
	pr := deps.Prober
	if _, wrapped := pr.(*probe.RetryingProber); !wrapped {
		if _, fallible := pr.(probe.ErrProber); fallible {
			pr = probe.NewRetryingProber(pr, cfg.Retry)
		}
	}
	p := &Pipeline{
		World:      deps.World,
		Table:      deps.Table,
		Cfg:        cfg,
		Provider:   deps.Provider,
		Source:     deps.Source,
		Aggregates: deps.Aggregates,
		Prober:     pr,
		Store:      deps.Store,
		Metrics:    reg,
		Learner:    core.NewLearner(),
		Durations:  predict.NewDurationPredictor(3),
		Clients:    predict.NewClientPredictor(),
		Alerter:    alerting.NewAlerter(cfg.TopNAlerts),
		agg:        quartet.NewAggregate(0),
		aggPart:    quartet.NewPartial(quartet.PartialID{}, 0),
	}
	if m, ok := p.Prober.(interface{ SetMetrics(*metrics.Registry) }); ok {
		m.SetMetrics(reg)
	}
	if m, ok := p.Source.(interface{ SetMetrics(*metrics.Registry) }); ok {
		m.SetMetrics(reg)
	}
	if m, ok := p.Aggregates.(interface{ SetMetrics(*metrics.Registry) }); ok {
		m.SetMetrics(reg)
	}
	p.quar = ingest.NewQuarantine(netmodel.PrefixID(len(deps.World.Prefixes)), len(deps.World.Clouds))
	p.quar.SetMetrics(reg)
	p.Alerter.SetMetrics(reg)
	p.mStageCollect = reg.Histogram("pipeline.stage.collect_ms", metrics.MSBuckets)
	p.mStageClassify = reg.Histogram("pipeline.stage.classify_ms", metrics.MSBuckets)
	p.mStageLocalize = reg.Histogram("pipeline.stage.localize_ms", metrics.MSBuckets)
	p.mStageActive = reg.Histogram("pipeline.stage.active_ms", metrics.MSBuckets)
	p.mStageAlert = reg.Histogram("pipeline.stage.alert_ms", metrics.MSBuckets)
	p.mJobMS = reg.Histogram("pipeline.job.total_ms", metrics.MSBuckets)
	p.mWindowQs = reg.Histogram("pipeline.window.quartets", metrics.SizeBuckets)
	p.mWindowBuckets = reg.Histogram("pipeline.window.buckets", []float64{1, 2, 3, 6, 12, 24, 48})
	p.mJobs = reg.Counter("pipeline.jobs.runs")
	p.mRelearns = reg.Counter("pipeline.relearn.events")
	p.mObsCollected = reg.Counter("pipeline.observations.collected")
	p.mBadQuartets = reg.Counter("pipeline.quartets.bad")
	// Seed the duration predictor with the long-tailed historical prior
	// (§2.3): production learns P(T|t) from months of fault history, which
	// a fresh simulation does not have yet.
	prior := rand.New(rand.NewSource(9001))
	for i := 0; i < 400; i++ {
		p.Durations.Record("", int(faults.SampleDuration(prior)))
	}
	p.Baseliner = probe.NewBaselinerForProvider(cfg.Background, p.Prober, p.World, p.Table, p.Provider)
	p.Baseliner.SetMetrics(reg)
	p.Budget = probe.NewBudget(cfg.BudgetPerCloudPerDay)
	p.Budget.SetMetrics(reg)
	p.Active = active.NewLocalizer(p.Prober, p.Baseliner, p.Budget, p.Durations, p.Clients)
	p.QuartetTracker = quartet.NewTracker()
	p.MiddleTracker = active.NewTrackerWithStep(p.Durations, cfg.RunEvery)
	return p
}

// NewSim assembles a pipeline over a live simulator, reading observations
// through an ingestion store (SimDeps) and probing through the simulated
// traceroute engine.
func NewSim(s *sim.Simulator, cfg Config) *Pipeline {
	return New(SimDeps(s, cfg.ProbeNoiseMS), cfg)
}

// PathOf resolves a quartet's route from the BGP table.
func (p *Pipeline) PathOf(pid netmodel.PrefixID, c netmodel.CloudID, b netmodel.Bucket) netmodel.Path {
	return p.Table.PathAtForPrefix(c, pid, b)
}

// Warmup learns expected RTTs (and primes the client predictor) from the
// buckets in [from, to), sampling every WarmupSampleEvery'th bucket. Call
// it before Run; production learns over a trailing 14-day window.
func (p *Pipeline) Warmup(from, to netmodel.Bucket) error {
	return p.WarmupContext(context.Background(), from, to)
}

// WarmupContext is Warmup with cancellation.
func (p *Pipeline) WarmupContext(ctx context.Context, from, to netmodel.Bucket) error {
	if to < from {
		return fmt.Errorf("pipeline: inverted warmup window [%d, %d)", from, to)
	}
	for b := from; b < to; b += netmodel.Bucket(p.Cfg.WarmupSampleEvery) {
		if err := p.readBucket(ctx, b); err != nil {
			return err
		}
		for _, c := range p.agg.Cells() {
			if c.Samples < quartet.MinSamples {
				continue
			}
			o := c.Observation(b)
			mk := p.PathOf(o.Prefix, o.Cloud, o.Bucket).Key()
			p.Learner.AddObservation(o.Cloud, mk, o.Device, o.MeanRTT)
			p.Clients.Record(mk, o.Bucket, o.Clients)
		}
	}
	p.Thresholds = p.Learner.Snapshot()
	p.rebuildPassive()
	return nil
}

// SetThresholds installs externally learned thresholds (tests, ablations).
func (p *Pipeline) SetThresholds(th *core.Thresholds) {
	p.Thresholds = th
	p.rebuildPassive()
}

func (p *Pipeline) rebuildPassive() {
	p.Passive = core.NewLocalizer(p.Cfg.Core, p.World.ProviderASN(p.Provider), p.PathOf, p.Thresholds)
	p.Passive.SetMetrics(p.Metrics)
	if p.keyFunc != nil {
		p.Passive.SetMiddleKeyFunc(p.keyFunc)
	}
}

// SetMiddleKeyFunc overrides the passive phase's middle grouping (the
// ⟨AS, Metro⟩ baseline).
func (p *Pipeline) SetMiddleKeyFunc(f core.MiddleKeyFunc) {
	p.keyFunc = f
	if p.Passive == nil {
		p.rebuildPassive()
	}
	p.Passive.SetMiddleKeyFunc(f)
}

// Step advances the pipeline by one bucket: collects the bucket's passive
// observations, classifies quartets, advances the persistence trackers,
// runs background probing, and — on job-cadence boundaries — runs
// Algorithm 1 plus the active phase and returns a Report. Between job runs
// it returns (nil, nil).
func (p *Pipeline) Step(b netmodel.Bucket) (*Report, error) {
	return p.StepContext(context.Background(), b)
}

// StepContext is Step with cancellation: the observation read and the
// job's parallel fan-out both observe ctx.
func (p *Pipeline) StepContext(ctx context.Context, b netmodel.Bucket) (*Report, error) {
	if p.Passive == nil {
		p.rebuildPassive()
	}
	if !p.windowPrimed {
		p.windowFrom = b
		p.windowPrimed = true
	}
	if !p.lastSnapPrimed {
		p.lastSnap = p.Metrics.Snapshot()
		p.lastSnapPrimed = true
	}
	// Passive collection and aggregation: the bucket's telemetry — raw
	// records or upstream edge partials — converges on p.agg's merged
	// cells, which is what classification consumes.
	collectStart := time.Now()
	if err := p.readBucket(ctx, b); err != nil {
		return nil, err
	}
	classifyStart := time.Now()
	p.mStageCollect.Observe(msSince(collectStart, classifyStart))
	p.mObsCollected.Add(int64(len(p.obsBuf)))
	feedLearner := int(b)%p.Cfg.WarmupSampleEvery == 0
	run := p.windowRunFor(b)
	var badKeys []quartet.Key
	for _, c := range p.agg.Cells() {
		o := c.Observation(b)
		q := quartet.Classify(o, p.World.TargetFor(o.Prefix, o.Cloud))
		run.qs = append(run.qs, q)
		if q.Enough && q.Bad {
			badKeys = append(badKeys, c.Key)
		}
		if q.Enough {
			mk := p.PathOf(o.Prefix, o.Cloud, b).Key()
			// Feed the client predictor continuously with normal traffic,
			// and keep the expected-RTT learner current (subsampled).
			p.Clients.Record(mk, b, o.Clients)
			if feedLearner {
				p.Learner.AddObservation(o.Cloud, mk, o.Device, o.MeanRTT)
			}
		}
	}
	p.mStageClassify.Observe(msSince(classifyStart, time.Now()))
	p.mBadQuartets.Add(int64(len(badKeys)))
	// Refresh the learned medians at day boundaries, as the production
	// trailing-window job does.
	if day := b.Day(); day > p.lastRelearnDay {
		p.lastRelearnDay = day
		p.Thresholds = p.Learner.Snapshot()
		p.rebuildPassive()
		p.mRelearns.Inc()
	}
	p.QuartetTracker.Advance(b, badKeys)
	// Background baselines advance every bucket.
	p.Baseliner.Advance(b)

	if (int(b)+1)%p.Cfg.RunEvery != 0 {
		return nil, nil
	}
	return p.runJob(ctx, b)
}

// windowRunFor returns the window run accumulating bucket b's quartets,
// extending the window with a recycled (or fresh) run when b is new. The
// pointer stays valid until the window next grows, which cannot happen
// before the caller finishes the bucket.
func (p *Pipeline) windowRunFor(b netmodel.Bucket) *windowRun {
	if n := len(p.window); n > 0 && p.window[n-1].b == b {
		return &p.window[n-1]
	}
	if n := len(p.window); n < cap(p.window) {
		// Recycle the parked run's qs backing array.
		p.window = p.window[:n+1]
		r := &p.window[n]
		r.b = b
		r.qs = r.qs[:0]
		return r
	}
	p.window = append(p.window, windowRun{b: b})
	return &p.window[len(p.window)-1]
}

// msSince returns the wall time between two instants in milliseconds.
func msSince(from, to time.Time) float64 {
	return float64(to.Sub(from)) / float64(time.Millisecond)
}

// readBucket fills p.obsBuf with bucket b's validated observation stream
// and folds it into p.agg, the merged aggregate Step classifies from.
//
// With a raw Source the records are read directly; with an Aggregates
// feed the upstream merged aggregate's canonical cells are reconstructed
// into observations first. Either stream then passes through the
// quarantine (late, corrupt, and duplicate records are diverted there
// instead of reaching the aggregates — validation always precedes
// aggregation, so chaos-injected duplicates are quarantined, never
// silently merged) and the survivors fold into the trivial one-agent
// aggregation. Transient read errors are retried up to Cfg.SourceRetries
// times; when retries run out the bucket is declared dark — counted,
// records lost, run continues. Fatal errors (cancellation, strict decode
// failures) propagate.
func (p *Pipeline) readBucket(ctx context.Context, b netmodel.Bucket) error {
	for attempt := 0; ; attempt++ {
		var err error
		if p.Aggregates != nil {
			var agg *quartet.Aggregate
			agg, err = p.Aggregates.AggregatesAt(ctx, b)
			if err == nil {
				p.obsBuf = p.obsBuf[:0]
				if agg != nil {
					p.obsBuf = agg.Observations(p.obsBuf)
				}
			}
		} else {
			p.obsBuf, err = p.Source.ObservationsAt(ctx, b, p.obsBuf[:0])
		}
		if err == nil {
			p.obsBuf = p.quar.Filter(b, p.obsBuf)
			break
		}
		if ctx.Err() != nil || !ingest.IsTransient(err) {
			return err
		}
		if attempt >= p.Cfg.SourceRetries {
			p.darkBuckets++
			if p.mDarkBuckets == nil {
				p.mDarkBuckets = p.Metrics.Counter("pipeline.source.dark_buckets")
			}
			p.mDarkBuckets.Inc()
			p.obsBuf = p.obsBuf[:0]
			break
		}
		p.srcRetries++
		if p.mSourceRetries == nil {
			p.mSourceRetries = p.Metrics.Counter("pipeline.source.retries")
		}
		p.mSourceRetries.Inc()
	}
	// The trivial one-agent aggregation over the validated stream. The
	// quarantine guarantees per-bucket key uniqueness, so the cells are
	// exactly the validated observations in canonical order.
	p.aggPart.Reset(quartet.PartialID{Seq: int64(b)}, b)
	for _, o := range p.obsBuf {
		p.aggPart.Observe(o)
	}
	p.agg.Reset(b)
	p.agg.Add(p.aggPart)
	return nil
}

// Quarantine exposes the ingestion quarantine for inspection (counts,
// recent rejects). Never nil.
func (p *Pipeline) Quarantine() *ingest.Quarantine { return p.quar }

// SourceFaults reports the cumulative transient-read retries and dark
// (abandoned) buckets since the pipeline started.
func (p *Pipeline) SourceFaults() (retries, darkBuckets int64) {
	return p.srcRetries, p.darkBuckets
}

// healthInterval grades the data plane over the job interval ending at
// bucket b (spanning `buckets` buckets) and advances the interval
// baselines.
func (p *Pipeline) healthInterval(b netmodel.Bucket, buckets int) Health {
	var h Health
	qt := p.quar.Total()
	h.Quarantined, p.lastQuarTotal = qt-p.lastQuarTotal, qt
	h.SourceRetries, p.lastSrcRetries = p.srcRetries-p.lastSrcRetries, p.srcRetries
	h.DarkBuckets, p.lastDark = p.darkBuckets-p.lastDark, p.darkBuckets
	switch {
	case buckets > 0 && h.DarkBuckets >= int64(buckets):
		h.Source = Dark
	case h.DarkBuckets > 0 || h.Quarantined > 0 || h.SourceRetries > 0:
		h.Source = Degraded
	}
	if rp, ok := p.Prober.(*probe.RetryingProber); ok {
		st := rp.Stats()
		h.ProbeFailures = st.Failures - p.lastProbeStats.Failures
		h.ProbeExhausted = st.Exhausted - p.lastProbeStats.Exhausted
		p.lastProbeStats = st
		h.OpenCircuits = rp.OpenCircuits(b)
		switch {
		case h.OpenCircuits > 0:
			h.Prober = Dark
		case h.ProbeFailures > 0:
			h.Prober = Degraded
		}
	}
	if p.mHealthSource == nil {
		p.mHealthSource = p.Metrics.Gauge("pipeline.health.source")
		p.mHealthProber = p.Metrics.Gauge("pipeline.health.prober")
	}
	p.mHealthSource.Set(int64(h.Source))
	p.mHealthProber.Set(int64(h.Prober))
	return h
}

// runJob executes the Algorithm 1 job over the accumulated window.
func (p *Pipeline) runJob(ctx context.Context, b netmodel.Bucket) (*Report, error) {
	jobStart := time.Now()
	from := b - netmodel.Bucket(p.Cfg.RunEvery) + 1
	if p.windowPrimed && p.windowFrom > from {
		// The run started on a bucket unaligned with the job cadence (or
		// buckets were skipped): report only the buckets actually stepped.
		from = p.windowFrom
	}
	total := 0
	for i := range p.window {
		total += len(p.window[i].qs)
	}
	p.mWindowQs.Observe(float64(total))
	rep := &Report{From: from, To: b}
	// Localize each bucket of the window separately so aggregates stay
	// time-consistent. Step already grouped the window into per-bucket runs
	// (in increasing bucket order), so the job consumes them directly — the
	// old per-job rescan of every quartet into a fresh map is gone.
	//
	// The per-bucket Localize calls share only read-only state (localizer
	// config, thresholds, BGP table), so the window's buckets run
	// concurrently; per-run result slots are merged in bucket order to keep
	// reports deterministic.
	nb := int(rep.To-rep.From) + 1
	p.mWindowBuckets.Observe(float64(nb))
	localizeStart := time.Now()
	perRun := make([][]core.Result, len(p.window))
	err := parallel.ForEachCtx(ctx, len(p.window), parallel.Resolve(p.Cfg.Workers), func(i int) {
		if qs := p.window[i].qs; len(qs) > 0 {
			perRun[i] = p.Passive.Localize(qs)
		}
	})
	if err != nil {
		return nil, err
	}
	for _, rs := range perRun {
		rep.Results = append(rep.Results, rs...)
	}
	// Park the runs (keeping their backing arrays) for the next window.
	p.window = p.window[:0]
	p.windowPrimed = false
	activeStart := time.Now()
	p.mStageLocalize.Observe(msSince(localizeStart, activeStart))

	// Track middle-issue persistence at job granularity and run the active
	// phase for the window's middle verdicts.
	badMiddles := active.MiddleKeysOfBy(rep.Results, p.keyFunc)
	p.MiddleTracker.Advance(b, badMiddles)
	// Pause background refreshes on paths with an ongoing middle issue so
	// the pre-fault baseline survives for the traceroute comparison. The
	// true path keys are used (the grouping override may be coarser).
	p.Baseliner.Suppress(active.MiddleKeysOf(rep.Results), b+netmodel.Bucket(2*p.Cfg.RunEvery))
	issues := active.GroupIssuesBy(rep.Results, b, p.keyFunc)
	rep.Verdicts = p.Active.ProcessIssuesContext(ctx, b, issues, p.MiddleTracker)
	alertStart := time.Now()
	p.mStageActive.Observe(msSince(activeStart, alertStart))
	rep.Tickets = p.Alerter.Generate(b, rep.Results, rep.Verdicts)
	end := time.Now()
	p.mStageAlert.Observe(msSince(alertStart, end))
	p.mJobMS.Observe(msSince(jobStart, end))
	p.mJobs.Inc()

	// Attach the interval's metric delta: everything accumulated since the
	// previous report (collect + classify of the window plus this job).
	cur := p.Metrics.Snapshot()
	rep.Metrics = cur.Delta(p.lastSnap)
	p.lastSnap = cur
	rep.Health = p.healthInterval(b, nb)
	return rep, nil
}

// Run drives the pipeline over [from, to), invoking cb for every completed
// job run. cb may be nil.
func (p *Pipeline) Run(from, to netmodel.Bucket, cb func(*Report)) error {
	return p.RunContext(context.Background(), from, to, cb)
}

// RunContext is Run with cancellation: it stops between buckets as soon as
// ctx is done and returns the context's error. A cancelled run leaves the
// pipeline's learned state consistent up to the last completed bucket.
func (p *Pipeline) RunContext(ctx context.Context, from, to netmodel.Bucket, cb func(*Report)) error {
	if to < from {
		return fmt.Errorf("pipeline: inverted run window [%d, %d)", from, to)
	}
	for b := from; b < to; b++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		rep, err := p.StepContext(ctx, b)
		if err != nil {
			return err
		}
		if rep != nil && cb != nil {
			cb(rep)
		}
	}
	return nil
}

// Finalize runs FinalizeContext without cancellation.
func (p *Pipeline) Finalize() (*Report, error) {
	return p.FinalizeContext(context.Background())
}

// FinalizeContext flushes a partially accumulated window: when a run stops
// off the job cadence (a daemon draining on SIGTERM mid-window), the
// buckets stepped since the last job run have been classified but never
// localized. It runs the Algorithm 1 job over them and returns the final
// report, or (nil, nil) when the window is empty — a run that stopped on a
// cadence boundary has nothing to flush, and finalizing it emits no
// fabricated report. After a Finalize the pipeline can keep stepping; the
// next job window starts at the next stepped bucket.
func (p *Pipeline) FinalizeContext(ctx context.Context) (*Report, error) {
	if len(p.window) == 0 {
		return nil, nil
	}
	rep, err := p.runJob(ctx, p.window[len(p.window)-1].b)
	if rep != nil {
		rep.Final = true
	}
	return rep, err
}

// DiscardWindow drops the partially accumulated job window without
// running a job over it. Restart recovery calls it after replaying a log
// whose last journaled report was a drain flush: the replayed steps
// re-accumulated the very buckets that report already covered, and
// flushing them again would double-report the window. The next stepped
// bucket starts a fresh window, exactly as after a real Finalize.
func (p *Pipeline) DiscardWindow() {
	p.window = p.window[:0]
	p.windowPrimed = false
}

// Flush closes open incident runs at the end of a simulation.
func (p *Pipeline) Flush() []quartet.Incident {
	p.MiddleTracker.Flush()
	return p.QuartetTracker.Flush()
}
