// Package pipeline wires every BlameIt component into the production
// workflow of Fig. 7: passive RTT collection at the cloud locations, the
// periodic Algorithm 1 job at the analytics cluster, middle-issue
// prioritization with budgeted on-demand traceroutes, background baseline
// maintenance, and impact-ranked operator alerts.
package pipeline

import (
	"math/rand"
	"time"

	"blameit/internal/active"
	"blameit/internal/alerting"
	"blameit/internal/bgp"
	"blameit/internal/core"
	"blameit/internal/faults"
	"blameit/internal/metrics"
	"blameit/internal/netmodel"
	"blameit/internal/parallel"
	"blameit/internal/predict"
	"blameit/internal/probe"
	"blameit/internal/quartet"
	"blameit/internal/sim"
	"blameit/internal/topology"
)

// Config assembles the tunables of every stage.
type Config struct {
	Core       core.Config
	Background probe.BackgroundConfig
	// BudgetPerCloudPerDay caps on-demand traceroutes per location (0 =
	// unlimited).
	BudgetPerCloudPerDay int
	// RunEvery is the cadence of the Algorithm 1 job in buckets (3 = every
	// 15 minutes, as in production).
	RunEvery int
	// TopNAlerts bounds the tickets emitted per job run (0 = unlimited).
	TopNAlerts int
	// ProbeNoiseMS is the traceroute engine's per-hop noise.
	ProbeNoiseMS float64
	// WarmupSampleEvery subsamples warmup buckets when learning expected
	// RTTs (1 = every bucket).
	WarmupSampleEvery int
	// Workers caps the concurrency of the Algorithm 1 job: the per-bucket
	// core.Localize calls of one window run on up to Workers goroutines
	// and their Results are merged in bucket order, so reports are
	// identical at any worker count. Non-positive means
	// runtime.GOMAXPROCS(0); 1 forces the sequential path.
	Workers int
	// Metrics is the registry every stage reports into. Nil falls back to
	// the process default registry (see metrics.EnableDefault) and, when
	// that is also unset, to a fresh private registry — so Pipeline.Metrics
	// is always usable and per-pipeline counts stay isolated by default.
	Metrics *metrics.Registry
}

// DefaultConfig returns the production-like configuration.
func DefaultConfig() Config {
	return Config{
		Core:                 core.DefaultConfig(),
		Background:           probe.DefaultBackgroundConfig(),
		BudgetPerCloudPerDay: 50,
		RunEvery:             3,
		TopNAlerts:           10,
		ProbeNoiseMS:         0.5,
		WarmupSampleEvery:    4,
	}
}

// Report is the output of one Algorithm 1 job run.
type Report struct {
	// From and To delimit the window's buckets: [From, To].
	From, To netmodel.Bucket
	// Results are per-quartet verdicts across the window.
	Results []core.Result
	// Verdicts are the active phase's AS-level localizations.
	Verdicts []active.Verdict
	// Tickets are the impact-ranked operator alerts.
	Tickets []alerting.Ticket
	// Metrics is the metric delta of this job interval — everything the
	// pipeline's registry accumulated since the previous report (or since
	// the run started, for the first report): collection and classification
	// of the window's buckets plus the job itself. Experiments can assert
	// on per-run counts without diffing registry snapshots themselves.
	Metrics metrics.Snapshot
}

// Pipeline is the assembled system.
type Pipeline struct {
	World *topology.World
	Table *bgp.Table
	Sim   *sim.Simulator
	Cfg   Config

	// Metrics is the registry every stage of this pipeline reports into.
	Metrics *metrics.Registry

	Engine     *probe.Engine
	Baseliner  *probe.Baseliner
	Budget     *probe.Budget
	Learner    *core.Learner
	Thresholds *core.Thresholds
	Passive    *core.Localizer
	Active     *active.Localizer
	Durations  *predict.DurationPredictor
	Clients    *predict.ClientPredictor
	Alerter    *alerting.Alerter

	// Persistence trackers.
	QuartetTracker *quartet.Tracker
	MiddleTracker  *active.Tracker

	// keyFunc is the optional middle-grouping override.
	keyFunc core.MiddleKeyFunc

	// lastRelearnDay tracks the daily expected-RTT refresh (production
	// recomputes the trailing 14-day medians continuously).
	lastRelearnDay int

	// window accumulates classified quartets between job runs; windowFrom
	// is the first bucket actually stepped into the current window (the
	// job's Report.From is clamped to it, so a run starting on a bucket
	// unaligned with RunEvery never reports buckets it did not step).
	window       []quartet.Quartet
	windowFrom   netmodel.Bucket
	windowPrimed bool
	obsBuf       []sim.Observation

	// Metric handles (fetched once in New; nil-safe no-ops never occur
	// here since the pipeline always has a registry).
	mStageCollect  *metrics.Histogram
	mStageClassify *metrics.Histogram
	mStageLocalize *metrics.Histogram
	mStageActive   *metrics.Histogram
	mStageAlert    *metrics.Histogram
	mJobMS         *metrics.Histogram
	mWindowQs      *metrics.Histogram
	mWindowBuckets *metrics.Histogram
	mJobs          *metrics.Counter
	mRelearns      *metrics.Counter
	mObsCollected  *metrics.Counter
	mBadQuartets   *metrics.Counter

	// lastSnap is the registry state at the end of the previous job run
	// (or at the first Step), the baseline for Report.Metrics deltas.
	lastSnap       metrics.Snapshot
	lastSnapPrimed bool
}

// New assembles a pipeline over an existing simulator.
func New(s *sim.Simulator, cfg Config) *Pipeline {
	if cfg.RunEvery < 1 {
		cfg.RunEvery = 1
	}
	if cfg.WarmupSampleEvery < 1 {
		cfg.WarmupSampleEvery = 1
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.Default()
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	p := &Pipeline{
		World:     s.World,
		Table:     s.Routes,
		Sim:       s,
		Cfg:       cfg,
		Metrics:   reg,
		Engine:    probe.NewEngine(s, cfg.ProbeNoiseMS),
		Learner:   core.NewLearner(),
		Durations: predict.NewDurationPredictor(3),
		Clients:   predict.NewClientPredictor(),
		Alerter:   alerting.NewAlerter(cfg.TopNAlerts),
	}
	p.Engine.SetMetrics(reg)
	p.Alerter.SetMetrics(reg)
	p.mStageCollect = reg.Histogram("pipeline.stage.collect_ms", metrics.MSBuckets)
	p.mStageClassify = reg.Histogram("pipeline.stage.classify_ms", metrics.MSBuckets)
	p.mStageLocalize = reg.Histogram("pipeline.stage.localize_ms", metrics.MSBuckets)
	p.mStageActive = reg.Histogram("pipeline.stage.active_ms", metrics.MSBuckets)
	p.mStageAlert = reg.Histogram("pipeline.stage.alert_ms", metrics.MSBuckets)
	p.mJobMS = reg.Histogram("pipeline.job.total_ms", metrics.MSBuckets)
	p.mWindowQs = reg.Histogram("pipeline.window.quartets", metrics.SizeBuckets)
	p.mWindowBuckets = reg.Histogram("pipeline.window.buckets", []float64{1, 2, 3, 6, 12, 24, 48})
	p.mJobs = reg.Counter("pipeline.jobs.runs")
	p.mRelearns = reg.Counter("pipeline.relearn.events")
	p.mObsCollected = reg.Counter("pipeline.observations.collected")
	p.mBadQuartets = reg.Counter("pipeline.quartets.bad")
	// Seed the duration predictor with the long-tailed historical prior
	// (§2.3): production learns P(T|t) from months of fault history, which
	// a fresh simulation does not have yet.
	prior := rand.New(rand.NewSource(9001))
	for i := 0; i < 400; i++ {
		p.Durations.Record("", int(faults.SampleDuration(prior)))
	}
	p.Baseliner = probe.NewBaseliner(cfg.Background, p.Engine, p.Table)
	p.Baseliner.SetMetrics(reg)
	p.Budget = probe.NewBudget(cfg.BudgetPerCloudPerDay)
	p.Budget.SetMetrics(reg)
	p.Active = active.NewLocalizer(p.Engine, p.Baseliner, p.Budget, p.Durations, p.Clients)
	p.QuartetTracker = quartet.NewTracker()
	p.MiddleTracker = active.NewTrackerWithStep(p.Durations, cfg.RunEvery)
	return p
}

// PathOf resolves a quartet's route from the BGP table.
func (p *Pipeline) PathOf(pid netmodel.PrefixID, c netmodel.CloudID, b netmodel.Bucket) netmodel.Path {
	return p.Table.PathAtForPrefix(c, pid, b)
}

// Warmup learns expected RTTs (and primes the client predictor) from the
// buckets in [from, to), sampling every WarmupSampleEvery'th bucket. Call
// it before Run; production learns over a trailing 14-day window.
func (p *Pipeline) Warmup(from, to netmodel.Bucket) {
	for b := from; b < to; b += netmodel.Bucket(p.Cfg.WarmupSampleEvery) {
		p.obsBuf = p.Sim.ObservationsAt(b, p.obsBuf[:0])
		for _, o := range p.obsBuf {
			if o.Samples < quartet.MinSamples {
				continue
			}
			mk := p.PathOf(o.Prefix, o.Cloud, o.Bucket).Key()
			p.Learner.AddObservation(o.Cloud, mk, o.Device, o.MeanRTT)
			p.Clients.Record(mk, o.Bucket, o.Clients)
		}
	}
	p.Thresholds = p.Learner.Snapshot()
	p.rebuildPassive()
}

// SetThresholds installs externally learned thresholds (tests, ablations).
func (p *Pipeline) SetThresholds(th *core.Thresholds) {
	p.Thresholds = th
	p.rebuildPassive()
}

func (p *Pipeline) rebuildPassive() {
	p.Passive = core.NewLocalizer(p.Cfg.Core, p.World.CloudASN, p.PathOf, p.Thresholds)
	p.Passive.SetMetrics(p.Metrics)
	if p.keyFunc != nil {
		p.Passive.SetMiddleKeyFunc(p.keyFunc)
	}
}

// SetMiddleKeyFunc overrides the passive phase's middle grouping (the
// ⟨AS, Metro⟩ baseline).
func (p *Pipeline) SetMiddleKeyFunc(f core.MiddleKeyFunc) {
	p.keyFunc = f
	if p.Passive == nil {
		p.rebuildPassive()
	}
	p.Passive.SetMiddleKeyFunc(f)
}

// Step advances the pipeline by one bucket: collects the bucket's passive
// observations, classifies quartets, advances the persistence trackers,
// runs background probing, and — on job-cadence boundaries — runs
// Algorithm 1 plus the active phase and returns a Report. Between job runs
// it returns nil.
func (p *Pipeline) Step(b netmodel.Bucket) *Report {
	if p.Passive == nil {
		p.rebuildPassive()
	}
	if !p.windowPrimed {
		p.windowFrom = b
		p.windowPrimed = true
	}
	if !p.lastSnapPrimed {
		p.lastSnap = p.Metrics.Snapshot()
		p.lastSnapPrimed = true
	}
	// Passive collection and classification.
	collectStart := time.Now()
	p.obsBuf = p.Sim.ObservationsAt(b, p.obsBuf[:0])
	classifyStart := time.Now()
	p.mStageCollect.Observe(msSince(collectStart, classifyStart))
	p.mObsCollected.Add(int64(len(p.obsBuf)))
	feedLearner := int(b)%p.Cfg.WarmupSampleEvery == 0
	var badKeys []quartet.Key
	for _, o := range p.obsBuf {
		q := quartet.Classify(o, p.World.TargetFor(o.Prefix, o.Cloud))
		p.window = append(p.window, q)
		if q.Enough && q.Bad {
			badKeys = append(badKeys, quartet.KeyOf(o))
		}
		if q.Enough {
			mk := p.PathOf(o.Prefix, o.Cloud, b).Key()
			// Feed the client predictor continuously with normal traffic,
			// and keep the expected-RTT learner current (subsampled).
			p.Clients.Record(mk, b, o.Clients)
			if feedLearner {
				p.Learner.AddObservation(o.Cloud, mk, o.Device, o.MeanRTT)
			}
		}
	}
	p.mStageClassify.Observe(msSince(classifyStart, time.Now()))
	p.mBadQuartets.Add(int64(len(badKeys)))
	// Refresh the learned medians at day boundaries, as the production
	// trailing-window job does.
	if day := b.Day(); day > p.lastRelearnDay {
		p.lastRelearnDay = day
		p.Thresholds = p.Learner.Snapshot()
		p.rebuildPassive()
		p.mRelearns.Inc()
	}
	p.QuartetTracker.Advance(b, badKeys)
	// Background baselines advance every bucket.
	p.Baseliner.Advance(b)

	if (int(b)+1)%p.Cfg.RunEvery != 0 {
		return nil
	}
	return p.runJob(b)
}

// msSince returns the wall time between two instants in milliseconds.
func msSince(from, to time.Time) float64 {
	return float64(to.Sub(from)) / float64(time.Millisecond)
}

// runJob executes the Algorithm 1 job over the accumulated window.
func (p *Pipeline) runJob(b netmodel.Bucket) *Report {
	jobStart := time.Now()
	from := b - netmodel.Bucket(p.Cfg.RunEvery) + 1
	if p.windowPrimed && p.windowFrom > from {
		// The run started on a bucket unaligned with the job cadence (or
		// buckets were skipped): report only the buckets actually stepped.
		from = p.windowFrom
	}
	p.mWindowQs.Observe(float64(len(p.window)))
	rep := &Report{From: from, To: b}
	// Localize each bucket of the window separately so aggregates stay
	// time-consistent.
	byBucket := make(map[netmodel.Bucket][]quartet.Quartet)
	for _, q := range p.window {
		byBucket[q.Obs.Bucket] = append(byBucket[q.Obs.Bucket], q)
	}
	// The per-bucket Localize calls share only read-only state (localizer
	// config, thresholds, BGP table), so the window's buckets run
	// concurrently; per-bucket result slots are merged in bucket order to
	// keep reports deterministic.
	nb := int(rep.To-rep.From) + 1
	p.mWindowBuckets.Observe(float64(nb))
	localizeStart := time.Now()
	perBucket := make([][]core.Result, nb)
	parallel.ForEach(nb, parallel.Resolve(p.Cfg.Workers), func(i int) {
		qs := byBucket[rep.From+netmodel.Bucket(i)]
		if len(qs) == 0 {
			return
		}
		perBucket[i] = p.Passive.Localize(qs)
	})
	for _, rs := range perBucket {
		rep.Results = append(rep.Results, rs...)
	}
	p.window = p.window[:0]
	p.windowPrimed = false
	activeStart := time.Now()
	p.mStageLocalize.Observe(msSince(localizeStart, activeStart))

	// Track middle-issue persistence at job granularity and run the active
	// phase for the window's middle verdicts.
	badMiddles := active.MiddleKeysOfBy(rep.Results, p.keyFunc)
	p.MiddleTracker.Advance(b, badMiddles)
	// Pause background refreshes on paths with an ongoing middle issue so
	// the pre-fault baseline survives for the traceroute comparison. The
	// true path keys are used (the grouping override may be coarser).
	p.Baseliner.Suppress(active.MiddleKeysOf(rep.Results), b+netmodel.Bucket(2*p.Cfg.RunEvery))
	issues := active.GroupIssuesBy(rep.Results, b, p.keyFunc)
	rep.Verdicts = p.Active.ProcessIssues(b, issues, p.MiddleTracker)
	alertStart := time.Now()
	p.mStageActive.Observe(msSince(activeStart, alertStart))
	rep.Tickets = p.Alerter.Generate(b, rep.Results, rep.Verdicts)
	end := time.Now()
	p.mStageAlert.Observe(msSince(alertStart, end))
	p.mJobMS.Observe(msSince(jobStart, end))
	p.mJobs.Inc()

	// Attach the interval's metric delta: everything accumulated since the
	// previous report (collect + classify of the window plus this job).
	cur := p.Metrics.Snapshot()
	rep.Metrics = cur.Delta(p.lastSnap)
	p.lastSnap = cur
	return rep
}

// Run drives the pipeline over [from, to), invoking cb for every completed
// job run. cb may be nil.
func (p *Pipeline) Run(from, to netmodel.Bucket, cb func(*Report)) {
	for b := from; b < to; b++ {
		if rep := p.Step(b); rep != nil && cb != nil {
			cb(rep)
		}
	}
}

// Flush closes open incident runs at the end of a simulation.
func (p *Pipeline) Flush() []quartet.Incident {
	p.MiddleTracker.Flush()
	return p.QuartetTracker.Flush()
}
