package pipeline

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"blameit/internal/bgp"
	"blameit/internal/faults"
	"blameit/internal/ingest"
	"blameit/internal/netmodel"
	"blameit/internal/probe"
	"blameit/internal/sim"
	"blameit/internal/topology"
	"blameit/internal/trace"
)

// replayWorkload pins the seeds and fault mix of the replay-equivalence
// tests: the medium-scale world with a random workload plus the marker
// cloud fault, over a half-day warmup and a half-day run — long enough for
// quartet classification, middle issues, active probing, and alerting to
// all fire, short enough for three full pipeline runs in one test.
const (
	replayWarmup  = netmodel.Bucket(netmodel.BucketsPerDay / 2)
	replayHorizon = netmodel.Bucket(netmodel.BucketsPerDay)
)

// replaySim builds one fresh simulator for the replay workload. Every call
// returns an identical-but-independent instance; live and replay runs must
// not share one (the engine's probe counters would interleave).
func replaySim(scale topology.Scale, workers int) *sim.Simulator {
	w := topology.Generate(scale, 7)
	fs := faults.Generate(w, faults.DefaultGenerateConfig(), replayHorizon, 8).Faults
	fs = append(fs, faults.Fault{
		Kind: faults.CloudFault, Cloud: w.CloudsInRegion(netmodel.RegionIndia)[0], ScopeCloud: faults.NoCloud,
		Start: replayWarmup + 2*netmodel.BucketsPerHour, Duration: 12, ExtraMS: 80,
	})
	tbl := bgp.NewTable(w, bgp.DefaultChurnConfig(), replayHorizon, 9)
	scfg := sim.DefaultConfig(10)
	scfg.Workers = workers
	return sim.New(w, tbl, faults.NewSchedule(fs), scfg)
}

// canonicalStream runs a pipeline over the replay workload and returns the
// concatenated CanonicalJSON of every report — the byte stream two
// equivalent runs must agree on.
func canonicalStream(t *testing.T, p *Pipeline) []byte {
	t.Helper()
	if err := p.Warmup(0, replayWarmup); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	var out bytes.Buffer
	err := p.Run(replayWarmup, replayHorizon, func(rep *Report) {
		buf, err := rep.CanonicalJSON()
		if err != nil {
			t.Fatalf("canonicalize report: %v", err)
		}
		out.Write(buf)
		out.WriteByte('\n')
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return out.Bytes()
}

// writeReplayTrace generates the workload's full observation trace (warmup
// included) as a JSONL file, exactly as blameit-tracegen would.
func writeReplayTrace(t *testing.T, scale topology.Scale) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s := replaySim(scale, 1)
	var buf []trace.Observation
	for b := netmodel.Bucket(0); b < replayHorizon; b++ {
		buf = s.ObservationsAt(b, buf[:0])
		if err := trace.WriteJSONL(f, buf); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

// TestGoldenReplayEquivalence is the acceptance gate for blameit -replay:
// replaying a recorded medium-scale JSONL trace through the streaming
// source — with probes still served by the deterministic engine, as the
// CLI does — must reproduce the live-sim run's report/ticket stream byte
// for byte, at Workers 1 and 4. A store-backed replay (the trace preloaded
// into an hourly-window store) must match too: all three ingestion paths
// are interchangeable.
func TestGoldenReplayEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-scale replay equivalence in -short mode")
	}
	scale := topology.MediumScale()
	cfg := DefaultConfig()
	cfg.Workers = 1
	want := canonicalStream(t, NewSim(replaySim(scale, 1), cfg))
	if len(want) == 0 {
		t.Fatal("live run produced no reports")
	}
	tracePath := writeReplayTrace(t, scale)

	for _, workers := range []int{1, 4} {
		f, err := os.Open(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		s := replaySim(scale, workers) // serves probes only
		deps := Deps{
			World:  s.World,
			Table:  s.Routes,
			Source: ingest.NewStreamSource(f),
			Prober: probe.NewEngine(s, cfg.ProbeNoiseMS),
		}
		rcfg := cfg
		rcfg.Workers = workers
		got := canonicalStream(t, New(deps, rcfg))
		f.Close()
		if !bytes.Equal(got, want) {
			t.Fatalf("streaming replay (workers=%d) diverged from the live run: %d vs %d canonical bytes",
				workers, len(got), len(want))
		}
	}

	// Store-backed replay: load the whole trace into a store up front and
	// read it back through windowed scans.
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	obs, err := trace.ReadJSONL(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	st := trace.NewStore(8)
	st.Write(obs)
	s := replaySim(scale, 1)
	deps := Deps{
		World:  s.World,
		Table:  s.Routes,
		Source: ingest.NewStoreSource(st),
		Prober: probe.NewEngine(s, cfg.ProbeNoiseMS),
		Store:  st,
	}
	rcfg := cfg
	rcfg.Workers = 4
	got := canonicalStream(t, New(deps, rcfg))
	if !bytes.Equal(got, want) {
		t.Fatalf("store-backed replay diverged from the live run: %d vs %d canonical bytes", len(got), len(want))
	}
	if st.ScannedBuckets() == 0 {
		t.Error("store-backed replay accounted no storage-bucket scans")
	}
}

// TestFullDecouplingReplayWithoutSimulator closes the loop on the
// refactor's goal: record a live run's probes, then replay the observation
// trace AND the probe log through a pipeline that holds no simulator at
// all (stream source + probe replayer) — output must stay byte-identical.
func TestFullDecouplingReplayWithoutSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("replay integration in -short mode")
	}
	scale := topology.SmallScale()
	cfg := DefaultConfig()
	cfg.Workers = 1

	// Live run with probe recording.
	s := replaySim(scale, 1)
	deps := SimDeps(s, cfg.ProbeNoiseMS)
	rec := probe.NewRecorder(deps.Prober)
	deps.Prober = rec
	want := canonicalStream(t, New(deps, cfg))
	if len(want) == 0 {
		t.Fatal("live run produced no reports")
	}
	var probeLog bytes.Buffer
	if err := rec.WriteJSONL(&probeLog); err != nil {
		t.Fatal(err)
	}
	tracePath := writeReplayTrace(t, scale)

	// Replay without a simulator: world and routing are regenerated from
	// their seeds (they are configuration, not telemetry), everything
	// measured comes from the two recordings.
	recs, err := probe.ReadRecordsJSONL(&probeLog)
	if err != nil {
		t.Fatal(err)
	}
	rp := probe.NewReplayer(recs)
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := topology.Generate(scale, 7)
	tbl := bgp.NewTable(w, bgp.DefaultChurnConfig(), replayHorizon, 9)
	got := canonicalStream(t, New(Deps{
		World:  w,
		Table:  tbl,
		Source: ingest.NewStreamSource(f),
		Prober: rp,
	}, cfg))
	if !bytes.Equal(got, want) {
		t.Fatalf("simulator-free replay diverged: %d vs %d canonical bytes", len(got), len(want))
	}
	if rp.Misses() != 0 {
		t.Errorf("replayer missed %d probe requests", rp.Misses())
	}
}

// TestRunContextCancellation: cancelling mid-run stops between buckets and
// surfaces context.Canceled; completed reports already delivered stay
// valid.
func TestRunContextCancellation(t *testing.T) {
	p := buildPipeline(t, nil, 1, DefaultConfig())
	ctx, cancel := context.WithCancel(context.Background())
	reports := 0
	err := p.RunContext(ctx, dayStart, dayStart+netmodel.BucketsPerDay, func(rep *Report) {
		reports++
		if reports == 2 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if reports != 2 {
		t.Fatalf("callback ran %d times after cancellation at 2", reports)
	}
}

// TestSimDepsBoundsStoreMemory: the default live wiring must not grow the
// ingestion store with the run length (the month-long-run bound).
func TestSimDepsBoundsStoreMemory(t *testing.T) {
	p := buildPipeline(t, nil, 1, DefaultConfig())
	if p.Store == nil {
		t.Fatal("sim-backed pipeline has no ingestion store")
	}
	if err := p.Run(dayStart, dayStart+6*netmodel.BucketsPerHour, nil); err != nil {
		t.Fatal(err)
	}
	if n := p.Store.NumWindows(); n > SimDepsRetention {
		t.Errorf("store holds %d windows after 6 hours, retention is %d", n, SimDepsRetention)
	}
	if p.Store.EvictedWindows() == 0 {
		t.Error("no windows were evicted over 6 hours")
	}
}
