package trace

import (
	"bytes"
	"strings"
	"testing"

	"blameit/internal/netmodel"
)

func sampleObs() []Observation {
	return []Observation{
		{Prefix: 1, Cloud: 2, Device: netmodel.Mobile, Bucket: 10, Samples: 25, MeanRTT: 48.5, Clients: 9},
		{Prefix: 3, Cloud: 0, Device: netmodel.NonMobile, Bucket: 11, Samples: 80, MeanRTT: 22.1, Clients: 30},
		{Prefix: 7, Cloud: 2, Device: netmodel.NonMobile, Bucket: 12, Samples: 12, MeanRTT: 105.0, Clients: 4},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	obs := sampleObs()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, obs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(obs) {
		t.Fatalf("round trip returned %d records", len(got))
	}
	for i := range obs {
		if got[i] != obs[i] {
			t.Errorf("record %d: got %+v want %+v", i, got[i], obs[i])
		}
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{\"prefix\": }\n")); err == nil {
		t.Error("expected decode error")
	}
}

func TestSplitJoinRoundTrip(t *testing.T) {
	obs := sampleObs()
	rtts, clients := Split(obs)
	if len(rtts) != len(obs) || len(clients) != len(obs) {
		t.Fatal("split sizes wrong")
	}
	joined := Join(rtts, clients)
	if len(joined) != len(obs) {
		t.Fatalf("join returned %d records", len(joined))
	}
	for i := range obs {
		if joined[i] != obs[i] {
			t.Errorf("record %d mismatch after split/join", i)
		}
	}
}

func TestJoinDropsOrphans(t *testing.T) {
	obs := sampleObs()
	rtts, clients := Split(obs)
	joined := Join(rtts, clients[:1]) // only first client record survives
	if len(joined) != 1 {
		t.Fatalf("join with orphans returned %d records", len(joined))
	}
	if joined[0] != obs[0] {
		t.Error("wrong record survived the join")
	}
}

func TestStoreReadWindow(t *testing.T) {
	s := NewStore(4)
	var obs []Observation
	// Two hours of records, one per bucket.
	for b := netmodel.Bucket(0); b < 2*netmodel.BucketsPerHour; b++ {
		obs = append(obs, Observation{Prefix: netmodel.PrefixID(b), Bucket: b, Samples: 10, MeanRTT: 1})
	}
	s.Write(obs)
	got := s.ReadWindow(3, 6)
	if len(got) != 3 {
		t.Fatalf("window [3,6) returned %d records", len(got))
	}
	for _, o := range got {
		if o.Bucket < 3 || o.Bucket >= 6 {
			t.Errorf("record outside window: bucket %d", o.Bucket)
		}
	}
}

func TestStoreScansWholeHour(t *testing.T) {
	// The §6.1 quirk: reading 15 minutes requires scanning every storage
	// bucket of the hour.
	s := NewStore(8)
	var obs []Observation
	for b := netmodel.Bucket(0); b < netmodel.BucketsPerHour; b++ {
		for p := 0; p < 10; p++ {
			obs = append(obs, Observation{Prefix: netmodel.PrefixID(p), Bucket: b, Samples: 10, MeanRTT: 1})
		}
	}
	s.Write(obs)
	before := s.ScannedBuckets()
	s.ReadWindow(0, 3) // just 15 minutes
	if scanned := s.ScannedBuckets() - before; scanned != 8 {
		t.Errorf("15-minute read scanned %d storage buckets, want all 8", scanned)
	}
}

func TestStoreWindowAcrossHours(t *testing.T) {
	s := NewStore(4)
	var obs []Observation
	for b := netmodel.Bucket(0); b < 3*netmodel.BucketsPerHour; b++ {
		obs = append(obs, Observation{Prefix: 1, Bucket: b, Samples: 10, MeanRTT: 1})
	}
	s.Write(obs)
	got := s.ReadWindow(10, 26) // spans hours 0, 1, 2
	if len(got) != 16 {
		t.Fatalf("cross-hour window returned %d records, want 16", len(got))
	}
}

func TestStoreEmptyWindow(t *testing.T) {
	s := NewStore(4)
	if got := s.ReadWindow(0, 12); len(got) != 0 {
		t.Errorf("empty store returned %d records", len(got))
	}
}

func TestNewStoreDefaultSize(t *testing.T) {
	s := NewStore(0)
	s.Write([]Observation{{Prefix: 1, Bucket: 1, Samples: 10, MeanRTT: 1}})
	if got := s.ReadWindow(0, 12); len(got) != 1 {
		t.Error("default-size store lost a record")
	}
}

func TestFinerWindowsCutScanCost(t *testing.T) {
	// §6.1 follow-up: with 15-minute ingestion windows, the 15-minute job
	// scans far fewer storage buckets than with the hourly layout.
	mkObs := func() []Observation {
		var obs []Observation
		for b := netmodel.Bucket(0); b < netmodel.BucketsPerHour; b++ {
			for p := 0; p < 10; p++ {
				obs = append(obs, Observation{Prefix: netmodel.PrefixID(p), Bucket: b, Samples: 10, MeanRTT: 1})
			}
		}
		return obs
	}
	hourly := NewStoreWindow(8, netmodel.BucketsPerHour)
	hourly.Write(mkObs())
	fine := NewStoreWindow(8, 3) // 15-minute ingestion windows
	fine.Write(mkObs())

	a := hourly.ReadWindow(0, 3)
	b := fine.ReadWindow(0, 3)
	if len(a) != len(b) {
		t.Fatalf("layouts disagree on results: %d vs %d", len(a), len(b))
	}
	// The hourly layout filters through the full hour's records (12
	// buckets' worth) to answer a 15-minute query; the fine layout only
	// touches the one ingestion window that matters.
	if hourly.ScannedRecords() != 120 {
		t.Errorf("hourly layout scanned %d records, want the whole hour (120)", hourly.ScannedRecords())
	}
	if fine.ScannedRecords() != 30 {
		t.Errorf("fine layout scanned %d records, want one window (30)", fine.ScannedRecords())
	}
}

func TestStoreWindowCrossBoundary(t *testing.T) {
	s := NewStoreWindow(4, 3)
	var obs []Observation
	for b := netmodel.Bucket(0); b < 12; b++ {
		obs = append(obs, Observation{Prefix: 1, Bucket: b, Samples: 10, MeanRTT: 1})
	}
	s.Write(obs)
	got := s.ReadWindow(2, 8) // spans windows 0, 1, 2
	if len(got) != 6 {
		t.Fatalf("cross-window read returned %d records, want 6", len(got))
	}
}
