package trace

import (
	"bytes"
	"strings"
	"testing"

	"blameit/internal/netmodel"
)

func sampleObs() []Observation {
	return []Observation{
		{Prefix: 1, Cloud: 2, Device: netmodel.Mobile, Bucket: 10, Samples: 25, MeanRTT: 48.5, Clients: 9},
		{Prefix: 3, Cloud: 0, Device: netmodel.NonMobile, Bucket: 11, Samples: 80, MeanRTT: 22.1, Clients: 30},
		{Prefix: 7, Cloud: 2, Device: netmodel.NonMobile, Bucket: 12, Samples: 12, MeanRTT: 105.0, Clients: 4},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	obs := sampleObs()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, obs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(obs) {
		t.Fatalf("round trip returned %d records", len(got))
	}
	for i := range obs {
		if got[i] != obs[i] {
			t.Errorf("record %d: got %+v want %+v", i, got[i], obs[i])
		}
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{\"prefix\": }\n")); err == nil {
		t.Error("expected decode error")
	}
}

func TestSplitJoinRoundTrip(t *testing.T) {
	obs := sampleObs()
	rtts, clients := Split(obs)
	if len(rtts) != len(obs) || len(clients) != len(obs) {
		t.Fatal("split sizes wrong")
	}
	joined := Join(rtts, clients)
	if len(joined) != len(obs) {
		t.Fatalf("join returned %d records", len(joined))
	}
	for i := range obs {
		if joined[i] != obs[i] {
			t.Errorf("record %d mismatch after split/join", i)
		}
	}
}

func TestJoinDropsOrphans(t *testing.T) {
	obs := sampleObs()
	rtts, clients := Split(obs)
	joined := Join(rtts, clients[:1]) // only first client record survives
	if len(joined) != 1 {
		t.Fatalf("join with orphans returned %d records", len(joined))
	}
	if joined[0] != obs[0] {
		t.Error("wrong record survived the join")
	}
}

func TestStoreReadWindow(t *testing.T) {
	s := NewStore(4)
	var obs []Observation
	// Two hours of records, one per bucket.
	for b := netmodel.Bucket(0); b < 2*netmodel.BucketsPerHour; b++ {
		obs = append(obs, Observation{Prefix: netmodel.PrefixID(b), Bucket: b, Samples: 10, MeanRTT: 1})
	}
	s.Write(obs)
	got := s.ReadWindow(3, 6)
	if len(got) != 3 {
		t.Fatalf("window [3,6) returned %d records", len(got))
	}
	for _, o := range got {
		if o.Bucket < 3 || o.Bucket >= 6 {
			t.Errorf("record outside window: bucket %d", o.Bucket)
		}
	}
}

func TestStoreScansWholeHour(t *testing.T) {
	// The §6.1 quirk: reading 15 minutes requires scanning every storage
	// bucket of the hour.
	s := NewStore(8)
	var obs []Observation
	for b := netmodel.Bucket(0); b < netmodel.BucketsPerHour; b++ {
		for p := 0; p < 10; p++ {
			obs = append(obs, Observation{Prefix: netmodel.PrefixID(p), Bucket: b, Samples: 10, MeanRTT: 1})
		}
	}
	s.Write(obs)
	before := s.ScannedBuckets()
	s.ReadWindow(0, 3) // just 15 minutes
	if scanned := s.ScannedBuckets() - before; scanned != 8 {
		t.Errorf("15-minute read scanned %d storage buckets, want all 8", scanned)
	}
}

func TestStoreWindowAcrossHours(t *testing.T) {
	s := NewStore(4)
	var obs []Observation
	for b := netmodel.Bucket(0); b < 3*netmodel.BucketsPerHour; b++ {
		obs = append(obs, Observation{Prefix: 1, Bucket: b, Samples: 10, MeanRTT: 1})
	}
	s.Write(obs)
	got := s.ReadWindow(10, 26) // spans hours 0, 1, 2
	if len(got) != 16 {
		t.Fatalf("cross-hour window returned %d records, want 16", len(got))
	}
}

func TestStoreEmptyWindow(t *testing.T) {
	s := NewStore(4)
	if got := s.ReadWindow(0, 12); len(got) != 0 {
		t.Errorf("empty store returned %d records", len(got))
	}
}

func TestNewStoreDefaultSize(t *testing.T) {
	s := NewStore(0)
	s.Write([]Observation{{Prefix: 1, Bucket: 1, Samples: 10, MeanRTT: 1}})
	if got := s.ReadWindow(0, 12); len(got) != 1 {
		t.Error("default-size store lost a record")
	}
}

func TestFinerWindowsCutScanCost(t *testing.T) {
	// §6.1 follow-up: with 15-minute ingestion windows, the 15-minute job
	// scans far fewer storage buckets than with the hourly layout.
	mkObs := func() []Observation {
		var obs []Observation
		for b := netmodel.Bucket(0); b < netmodel.BucketsPerHour; b++ {
			for p := 0; p < 10; p++ {
				obs = append(obs, Observation{Prefix: netmodel.PrefixID(p), Bucket: b, Samples: 10, MeanRTT: 1})
			}
		}
		return obs
	}
	hourly := NewStoreWindow(8, netmodel.BucketsPerHour)
	hourly.Write(mkObs())
	fine := NewStoreWindow(8, 3) // 15-minute ingestion windows
	fine.Write(mkObs())

	a := hourly.ReadWindow(0, 3)
	b := fine.ReadWindow(0, 3)
	if len(a) != len(b) {
		t.Fatalf("layouts disagree on results: %d vs %d", len(a), len(b))
	}
	// The hourly layout filters through the full hour's records (12
	// buckets' worth) to answer a 15-minute query; the fine layout only
	// touches the one ingestion window that matters.
	if hourly.ScannedRecords() != 120 {
		t.Errorf("hourly layout scanned %d records, want the whole hour (120)", hourly.ScannedRecords())
	}
	if fine.ScannedRecords() != 30 {
		t.Errorf("fine layout scanned %d records, want one window (30)", fine.ScannedRecords())
	}
}

func TestStoreWindowCrossBoundary(t *testing.T) {
	s := NewStoreWindow(4, 3)
	var obs []Observation
	for b := netmodel.Bucket(0); b < 12; b++ {
		obs = append(obs, Observation{Prefix: 1, Bucket: b, Samples: 10, MeanRTT: 1})
	}
	s.Write(obs)
	got := s.ReadWindow(2, 8) // spans windows 0, 1, 2
	if len(got) != 6 {
		t.Fatalf("cross-window read returned %d records, want 6", len(got))
	}
}

func TestReadWindowEdgeCases(t *testing.T) {
	// Table-driven edge cases for the windowed read; the inverted and empty
	// ranges used to underflow windowOf(to-1) and scan garbage windows.
	mk := func() *Store {
		s := NewStore(4)
		var obs []Observation
		for b := netmodel.Bucket(0); b < 2*netmodel.BucketsPerHour; b++ {
			obs = append(obs, Observation{Prefix: netmodel.PrefixID(b), Bucket: b, Samples: 10, MeanRTT: 1})
		}
		s.Write(obs)
		return s
	}
	cases := []struct {
		name     string
		from, to netmodel.Bucket
		want     int
	}{
		{"empty range", 5, 5, 0},
		{"inverted range", 6, 5, 0},
		{"inverted at zero", 0, 0, 0},
		{"to below zero", 3, -2, 0},
		{"both negative", -8, -2, 0},
		{"from negative to positive", -5, 3, 3},
		{"single bucket", 7, 8, 1},
		{"whole store", 0, 2 * netmodel.BucketsPerHour, 2 * netmodel.BucketsPerHour},
		{"beyond the data", 100 * netmodel.BucketsPerHour, 101 * netmodel.BucketsPerHour, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := mk()
			before := s.ScannedBuckets()
			got := s.ReadWindow(tc.from, tc.to)
			if len(got) != tc.want {
				t.Fatalf("ReadWindow(%d, %d) returned %d records, want %d", tc.from, tc.to, len(got), tc.want)
			}
			if tc.want == 0 && tc.to <= tc.from && s.ScannedBuckets() != before {
				t.Errorf("degenerate range scanned %d storage buckets", s.ScannedBuckets()-before)
			}
			for _, o := range got {
				if o.Bucket < tc.from || o.Bucket >= tc.to {
					t.Errorf("record outside window: bucket %d", o.Bucket)
				}
			}
		})
	}
}

func TestReadWindowPreservesArrivalOrder(t *testing.T) {
	// The scatter spreads records across storage buckets; reads must put
	// them back in the exact order they were ingested — the pipeline's
	// replay determinism rides on this. Interleave prefixes so consecutive
	// records land in different storage buckets.
	s := NewStore(8)
	var written []Observation
	for b := netmodel.Bucket(0); b < 6; b++ {
		for p := 10; p >= 0; p-- { // deliberately non-sorted prefix order
			written = append(written, Observation{Prefix: netmodel.PrefixID(p * 13), Bucket: b, Samples: 10, MeanRTT: float64(p)})
		}
	}
	s.Write(written)
	got := s.ReadWindow(0, 6)
	if len(got) != len(written) {
		t.Fatalf("read %d records, wrote %d", len(got), len(written))
	}
	for i := range written {
		if got[i] != written[i] {
			t.Fatalf("record %d out of arrival order: got %+v want %+v", i, got[i], written[i])
		}
	}
	// Appending onto a caller buffer keeps the prior contents.
	buf := []Observation{{Prefix: 999}}
	buf = s.ReadWindowAppend(0, 2, buf)
	if buf[0].Prefix != 999 || len(buf) != 1+2*11 {
		t.Errorf("ReadWindowAppend clobbered or mis-sized the buffer: len=%d", len(buf))
	}
}

func TestJoinFirstWinsOnDuplicateIDs(t *testing.T) {
	// Duplicate request ids (collector retransmissions) must resolve
	// deterministically: the first record wins on both streams.
	rtts := []RTTRecord{
		{RequestID: 1, Cloud: 1, Bucket: 5, Samples: 20, MeanRTT: 30},
		{RequestID: 1, Cloud: 2, Bucket: 6, Samples: 99, MeanRTT: 99}, // dup rtt: dropped
		{RequestID: 2, Cloud: 3, Bucket: 5, Samples: 10, MeanRTT: 40},
	}
	clients := []ClientRecord{
		{RequestID: 1, Prefix: 11, Clients: 7},
		{RequestID: 1, Prefix: 22, Clients: 8}, // dup client: dropped
		{RequestID: 2, Prefix: 33, Clients: 9},
	}
	got := Join(rtts, clients)
	if len(got) != 2 {
		t.Fatalf("join returned %d records, want 2", len(got))
	}
	if got[0].Prefix != 11 || got[0].Cloud != 1 || got[0].MeanRTT != 30 {
		t.Errorf("request 1 did not resolve first-wins: %+v", got[0])
	}
	if got[1].Prefix != 33 || got[1].Cloud != 3 {
		t.Errorf("request 2 corrupted by duplicates: %+v", got[1])
	}
	// Order independence of the duplicate: reversing the client stream's
	// duplicates changes which record is "first", but stays deterministic.
	clients[0], clients[1] = clients[1], clients[0]
	got2 := Join(rtts, clients)
	if got2[0].Prefix != 22 {
		t.Errorf("first-wins should now pick prefix 22, got %d", got2[0].Prefix)
	}
}

func TestSplitStreamJSONLRoundTrip(t *testing.T) {
	rtts, clients := Split(sampleObs())
	var rb, cb bytes.Buffer
	if err := WriteRTTJSONL(&rb, rtts); err != nil {
		t.Fatal(err)
	}
	if err := WriteClientJSONL(&cb, clients); err != nil {
		t.Fatal(err)
	}
	gotR, err := ReadRTTJSONL(&rb)
	if err != nil {
		t.Fatal(err)
	}
	gotC, err := ReadClientJSONL(&cb)
	if err != nil {
		t.Fatal(err)
	}
	joined := Join(gotR, gotC)
	want := sampleObs()
	if len(joined) != len(want) {
		t.Fatalf("round trip returned %d records", len(joined))
	}
	for i := range want {
		if joined[i] != want[i] {
			t.Errorf("record %d mismatch: %+v", i, joined[i])
		}
	}
}

func TestSplitStreamDecodeErrorsNameRequestID(t *testing.T) {
	// A good record followed by garbage: the error must carry the last good
	// request id so the broken region of a huge stream can be located.
	in := "{\"request_id\":41,\"cloud\":1,\"bucket\":2,\"device\":0,\"samples\":10,\"mean_rtt_ms\":5}\n{\"request_id\": }\n"
	if _, err := ReadRTTJSONL(strings.NewReader(in)); err == nil {
		t.Fatal("expected decode error")
	} else if !strings.Contains(err.Error(), "request id 41") {
		t.Errorf("rtt decode error lacks request id context: %v", err)
	}
	cin := "{\"request_id\":77,\"prefix\":3,\"clients\":4}\n{\"oops\": }\n"
	if _, err := ReadClientJSONL(strings.NewReader(cin)); err == nil {
		t.Fatal("expected decode error")
	} else if !strings.Contains(err.Error(), "request id 77") {
		t.Errorf("client decode error lacks request id context: %v", err)
	}
}

func TestReadJSONLErrorIncludesOffset(t *testing.T) {
	in := "{\"prefix\":1,\"cloud\":2,\"device\":0,\"bucket\":3,\"samples\":10,\"mean_rtt_ms\":5,\"clients\":1}\n{\"prefix\": }\n"
	if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
		t.Fatal("expected decode error")
	} else if !strings.Contains(err.Error(), "byte offset") || !strings.Contains(err.Error(), "observation 1") {
		t.Errorf("decode error lacks position context: %v", err)
	}
}

func TestStoreRetentionBoundsMemory(t *testing.T) {
	// A 30-day run read at the job cadence must hold O(retention) windows,
	// not O(days). This is the month-long -days 30 CLI scenario.
	s := NewStore(8)
	s.SetRetention(2)
	days := 30
	var buf []Observation
	maxResident := 0
	for b := netmodel.Bucket(0); b < netmodel.Bucket(days*netmodel.BucketsPerDay); b++ {
		s.Write([]Observation{
			{Prefix: 1, Bucket: b, Samples: 10, MeanRTT: 1},
			{Prefix: 2, Bucket: b, Samples: 10, MeanRTT: 2},
		})
		got := s.ReadWindowAppend(b, b+1, buf[:0])
		if len(got) != 2 {
			t.Fatalf("bucket %d: read %d records, want 2", b, len(got))
		}
		if n := s.NumWindows(); n > maxResident {
			maxResident = n
		}
	}
	if maxResident > 2 {
		t.Errorf("retention 2 let %d windows stay resident", maxResident)
	}
	wantEvicted := days*24 - 2 // hourly windows minus the retained tail
	if got := s.EvictedWindows(); got != wantEvicted {
		t.Errorf("evicted %d windows, want %d", got, wantEvicted)
	}
	// Reads behind the horizon find nothing; writes there are rejected.
	if got := s.ReadWindow(0, 12); len(got) != 0 {
		t.Errorf("evicted window still served %d records", len(got))
	}
	s.Write([]Observation{{Prefix: 9, Bucket: 0, Samples: 10, MeanRTT: 1}})
	if got := s.ReadWindow(0, 1); len(got) != 0 {
		t.Error("straggler write into an evicted window was accepted")
	}
}

func TestStoreRetentionDisabledKeepsEverything(t *testing.T) {
	s := NewStore(4) // no SetRetention: unbounded
	var obs []Observation
	for b := netmodel.Bucket(0); b < 10*netmodel.BucketsPerHour; b++ {
		obs = append(obs, Observation{Prefix: 1, Bucket: b, Samples: 10, MeanRTT: 1})
	}
	s.Write(obs)
	for b := netmodel.Bucket(0); b < 10*netmodel.BucketsPerHour; b++ {
		s.ReadWindow(b, b+1)
	}
	if s.NumWindows() != 10 {
		t.Errorf("unbounded store holds %d windows, want 10", s.NumWindows())
	}
	if got := s.ReadWindow(0, 12); len(got) != 12 {
		t.Errorf("historical re-read returned %d records, want 12", len(got))
	}
}
