package trace

import (
	"math"
	"testing"
	"testing/quick"

	"blameit/internal/ipaddr"
	"blameit/internal/netmodel"
	"blameit/internal/stats"
)

// resolver maps /24 base addresses to sequential prefix ids.
func testResolver(known map[ipaddr.Addr]netmodel.PrefixID) PrefixResolver {
	return func(block ipaddr.Addr) (netmodel.PrefixID, bool) {
		p, ok := known[block]
		return p, ok
	}
}

func TestAggregateBasic(t *testing.T) {
	base := ipaddr.Make(10, 1, 2, 0)
	res := testResolver(map[ipaddr.Addr]netmodel.PrefixID{base: 7})
	samples := []Sample{
		{Client: base | 1, Cloud: 3, Device: netmodel.NonMobile, Bucket: 5, RTTms: 40},
		{Client: base | 2, Cloud: 3, Device: netmodel.NonMobile, Bucket: 5, RTTms: 60},
		{Client: base | 1, Cloud: 3, Device: netmodel.NonMobile, Bucket: 5, RTTms: 50},
	}
	obs, dropped := Aggregate(samples, res)
	if dropped != 0 {
		t.Fatalf("dropped = %d", dropped)
	}
	if len(obs) != 1 {
		t.Fatalf("observations = %d", len(obs))
	}
	o := obs[0]
	if o.Prefix != 7 || o.Cloud != 3 || o.Bucket != 5 {
		t.Errorf("key fields wrong: %+v", o)
	}
	if o.Samples != 3 || o.Clients != 2 {
		t.Errorf("counts wrong: samples=%d clients=%d", o.Samples, o.Clients)
	}
	if math.Abs(o.MeanRTT-50) > 1e-9 {
		t.Errorf("mean = %v", o.MeanRTT)
	}
}

func TestAggregateSplitsKeys(t *testing.T) {
	b1 := ipaddr.Make(10, 1, 2, 0)
	b2 := ipaddr.Make(10, 1, 3, 0)
	res := testResolver(map[ipaddr.Addr]netmodel.PrefixID{b1: 1, b2: 2})
	samples := []Sample{
		{Client: b1 | 1, Cloud: 0, Device: netmodel.NonMobile, Bucket: 5, RTTms: 10},
		{Client: b2 | 1, Cloud: 0, Device: netmodel.NonMobile, Bucket: 5, RTTms: 20}, // other prefix
		{Client: b1 | 1, Cloud: 1, Device: netmodel.NonMobile, Bucket: 5, RTTms: 30}, // other cloud
		{Client: b1 | 1, Cloud: 0, Device: netmodel.Mobile, Bucket: 5, RTTms: 40},    // other device
		{Client: b1 | 1, Cloud: 0, Device: netmodel.NonMobile, Bucket: 6, RTTms: 50}, // other bucket
	}
	obs, _ := Aggregate(samples, res)
	if len(obs) != 5 {
		t.Fatalf("observations = %d, want 5 distinct quartets", len(obs))
	}
}

func TestAggregateDropsUnresolved(t *testing.T) {
	res := testResolver(nil)
	obs, dropped := Aggregate([]Sample{{Client: ipaddr.Make(9, 9, 9, 9), RTTms: 10}}, res)
	if len(obs) != 0 || dropped != 1 {
		t.Fatalf("obs=%d dropped=%d", len(obs), dropped)
	}
}

func TestAggregateDeterministicOrder(t *testing.T) {
	b1 := ipaddr.Make(10, 1, 2, 0)
	b2 := ipaddr.Make(10, 1, 3, 0)
	res := testResolver(map[ipaddr.Addr]netmodel.PrefixID{b1: 1, b2: 2})
	samples := []Sample{
		{Client: b2 | 1, Cloud: 0, Bucket: 7, RTTms: 10},
		{Client: b1 | 1, Cloud: 0, Bucket: 7, RTTms: 10},
		{Client: b1 | 1, Cloud: 0, Bucket: 6, RTTms: 10},
	}
	obs, _ := Aggregate(samples, res)
	if obs[0].Bucket != 6 || obs[1].Prefix != 1 || obs[2].Prefix != 2 {
		t.Errorf("aggregation order not canonical: %+v", obs)
	}
}

func TestExpandAggregateRoundTrip(t *testing.T) {
	base := ipaddr.Make(172, 16, 9, 0)
	res := testResolver(map[ipaddr.Addr]netmodel.PrefixID{base: 4})
	f := func(samples uint8, clients uint8, rttSeed uint16) bool {
		o := Observation{
			Prefix: 4, Cloud: 2, Device: netmodel.WiFi, Bucket: 11,
			Samples: 1 + int(samples)%100,
			Clients: 1 + int(clients)%50,
			MeanRTT: 1 + float64(rttSeed)/100,
		}
		if o.Clients > o.Samples {
			o.Clients = o.Samples
		}
		raw := ExpandSamples(o, base)
		back, dropped := Aggregate(raw, res)
		if dropped != 0 || len(back) != 1 {
			return false
		}
		g := back[0]
		return g.Prefix == o.Prefix && g.Cloud == o.Cloud && g.Device == o.Device &&
			g.Bucket == o.Bucket && g.Samples == o.Samples && g.Clients == o.Clients &&
			math.Abs(g.MeanRTT-o.MeanRTT) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestExpandSamplesEdges(t *testing.T) {
	if got := ExpandSamples(Observation{Samples: 0}, 0); got != nil {
		t.Error("zero samples must expand to nil")
	}
	// More clients than hosts in a /24 clamps to 254.
	o := Observation{Samples: 300, Clients: 300, MeanRTT: 5}
	raw := ExpandSamples(o, ipaddr.Make(10, 0, 0, 0))
	hosts := make(map[ipaddr.Addr]bool)
	for _, s := range raw {
		hosts[s.Client] = true
	}
	if len(hosts) != 254 {
		t.Errorf("distinct hosts = %d, want clamp at 254", len(hosts))
	}
}

func TestSplitHalves(t *testing.T) {
	a, b := SplitHalves([]float64{1, 2, 3, 4, 5})
	if len(a) != 3 || len(b) != 2 {
		t.Fatalf("split = %v / %v", a, b)
	}
	if a[0] != 1 || b[0] != 2 {
		t.Error("interleaving wrong")
	}
}

func TestValidateQuartetSamples(t *testing.T) {
	same := make([]float64, 100)
	for i := range same {
		same[i] = 50 + float64(i%7)
	}
	if err := ValidateQuartetSamples(same, stats.KSSameDistribution, 0.01); err != nil {
		t.Errorf("homogeneous quartet rejected: %v", err)
	}
	// A quartet whose halves come from different regimes must fail: the
	// interleaved split preserves the difference when values alternate.
	mixed := make([]float64, 100)
	for i := range mixed {
		if i%2 == 0 {
			mixed[i] = 10
		} else {
			mixed[i] = 200
		}
	}
	if err := ValidateQuartetSamples(mixed, stats.KSSameDistribution, 0.01); err == nil {
		t.Error("bimodal alternating quartet accepted")
	}
	if err := ValidateQuartetSamples([]float64{1, 2}, stats.KSSameDistribution, 0.01); err != nil {
		t.Error("tiny quartet must pass vacuously")
	}
}
