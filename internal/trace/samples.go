package trace

import (
	"fmt"
	"sort"

	"blameit/internal/ipaddr"
	"blameit/internal/netmodel"
)

// Sample is one raw TCP-handshake RTT record as a cloud server logs it: a
// single connection's client address, edge location, time, and measured
// handshake RTT. Production collects hundreds of billions of these per
// day; quartet aggregation turns them into Observations.
type Sample struct {
	Client ipaddr.Addr          `json:"client_ip"`
	Cloud  netmodel.CloudID     `json:"cloud"`
	Device netmodel.DeviceClass `json:"device"`
	Bucket netmodel.Bucket      `json:"bucket"`
	RTTms  float64              `json:"rtt_ms"`
}

// Block24 returns the sample's client /24 block base address.
func (s Sample) Block24() ipaddr.Addr {
	return ipaddr.Block24(s.Client).Base
}

// PrefixResolver maps a client /24 base address back to its PrefixID
// (the production system uses longest-prefix matching against the BGP
// table; the synthetic world has an exact /24 index).
type PrefixResolver func(block ipaddr.Addr) (netmodel.PrefixID, bool)

// Aggregate folds raw samples into quartet-level observations — the
// ⟨client /24, cloud, device, 5-minute bucket⟩ aggregation of §2.1. The
// average is the arithmetic mean of the handshake RTTs; distinct client
// addresses are counted per quartet. Samples whose /24 does not resolve
// are dropped (and counted in the returned drop count), as the production
// join does with unroutable clients.
func Aggregate(samples []Sample, resolve PrefixResolver) (obs []Observation, dropped int) {
	type key struct {
		p netmodel.PrefixID
		c netmodel.CloudID
		d netmodel.DeviceClass
		b netmodel.Bucket
	}
	type agg struct {
		sum     float64
		n       int
		clients map[ipaddr.Addr]struct{}
	}
	byKey := make(map[key]*agg)
	var order []key
	for _, s := range samples {
		pid, ok := resolve(s.Block24())
		if !ok {
			dropped++
			continue
		}
		k := key{pid, s.Cloud, s.Device, s.Bucket}
		a, ok := byKey[k]
		if !ok {
			a = &agg{clients: make(map[ipaddr.Addr]struct{})}
			byKey[k] = a
			order = append(order, k)
		}
		a.sum += s.RTTms
		a.n++
		a.clients[s.Client] = struct{}{}
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.b != b.b {
			return a.b < b.b
		}
		if a.p != b.p {
			return a.p < b.p
		}
		if a.c != b.c {
			return a.c < b.c
		}
		return a.d < b.d
	})
	obs = make([]Observation, 0, len(order))
	for _, k := range order {
		a := byKey[k]
		obs = append(obs, Observation{
			Prefix:  k.p,
			Cloud:   k.c,
			Device:  k.d,
			Bucket:  k.b,
			Samples: a.n,
			MeanRTT: a.sum / float64(a.n),
			Clients: len(a.clients),
		})
	}
	return obs, dropped
}

// ExpandSamples fabricates the raw sample stream behind a quartet-level
// observation: Samples handshakes spread over Clients distinct addresses
// inside the /24, each with the observation's mean RTT (per-sample spread
// is the simulator's concern; Expand/Aggregate must round-trip). base is
// the /24's base address.
func ExpandSamples(o Observation, base ipaddr.Addr) []Sample {
	if o.Samples <= 0 {
		return nil
	}
	clients := o.Clients
	if clients < 1 {
		clients = 1
	}
	if clients > 254 {
		clients = 254
	}
	out := make([]Sample, o.Samples)
	for i := range out {
		host := byte(1 + i%clients)
		out[i] = Sample{
			Client: base | ipaddr.Addr(host),
			Cloud:  o.Cloud,
			Device: o.Device,
			Bucket: o.Bucket,
			RTTms:  o.MeanRTT,
		}
	}
	return out
}

// ValidateQuartet applies the paper's §2.1 sanity check to one quartet's
// raw RTT samples: split them in half at random positions and require the
// two-sample Kolmogorov–Smirnov test not to reject that the halves share a
// distribution. It returns an error describing the failure, or nil.
type KSFunc func(a, b []float64, alpha float64) bool

// SplitHalves partitions xs into two deterministic interleaved halves
// (even and odd positions), the stand-in for the paper's random split.
func SplitHalves(xs []float64) (a, b []float64) {
	for i, x := range xs {
		if i%2 == 0 {
			a = append(a, x)
		} else {
			b = append(b, x)
		}
	}
	return a, b
}

// ValidateQuartetSamples checks quartet homogeneity with the provided K-S
// test at significance alpha.
func ValidateQuartetSamples(rtts []float64, ks KSFunc, alpha float64) error {
	if len(rtts) < 4 {
		return nil // too few samples to split meaningfully
	}
	a, b := SplitHalves(rtts)
	if !ks(a, b, alpha) {
		return fmt.Errorf("trace: quartet halves fail the K-S test at alpha=%v", alpha)
	}
	return nil
}
