// Package trace defines the passive measurement records that flow from the
// cloud locations to the analytics cluster, and models the collection
// pipeline of §6.1 of the paper: the two telemetry streams joined by
// request id, and the hourly storage buckets whose loss of temporal
// ordering BlameIt's periodic job has to work around.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"blameit/internal/netmodel"
)

// Observation is one quartet-level passive measurement: the aggregate of
// TCP handshake RTTs from one /24 to one cloud location in one 5-minute
// bucket, split by device class.
type Observation struct {
	Prefix  netmodel.PrefixID    `json:"prefix"`
	Cloud   netmodel.CloudID     `json:"cloud"`
	Device  netmodel.DeviceClass `json:"device"`
	Bucket  netmodel.Bucket      `json:"bucket"`
	Samples int                  `json:"samples"`
	MeanRTT float64              `json:"mean_rtt_ms"`
	// Clients is the number of distinct client IPs behind the samples.
	Clients int `json:"clients"`
}

// WriteJSONL writes observations as JSON Lines.
func WriteJSONL(w io.Writer, obs []Observation) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range obs {
		if err := enc.Encode(&obs[i]); err != nil {
			return fmt.Errorf("trace: encoding observation %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL reads observations from JSON Lines until EOF. Decode errors
// identify the failing record by index and byte offset.
func ReadJSONL(r io.Reader) ([]Observation, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var out []Observation
	for {
		var o Observation
		if err := dec.Decode(&o); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: decoding observation %d (byte offset %d): %w", len(out), dec.InputOffset(), err)
		}
		out = append(out, o)
	}
}

// RTTRecord is the latency half of the raw telemetry: cloud servers log the
// handshake RTT keyed by a request id.
type RTTRecord struct {
	RequestID uint64               `json:"request_id"`
	Cloud     netmodel.CloudID     `json:"cloud"`
	Bucket    netmodel.Bucket      `json:"bucket"`
	Device    netmodel.DeviceClass `json:"device"`
	Samples   int                  `json:"samples"`
	MeanRTT   float64              `json:"mean_rtt_ms"`
}

// ClientRecord is the identity half: the client IP (here its /24 and client
// count) keyed by the same request id. The production pipeline had to join
// the two streams daily until the RTT stream was extended to carry the
// client IP (§6.1).
type ClientRecord struct {
	RequestID uint64            `json:"request_id"`
	Prefix    netmodel.PrefixID `json:"prefix"`
	Clients   int               `json:"clients"`
}

// WriteRTTJSONL writes the RTT telemetry stream as JSON Lines.
func WriteRTTJSONL(w io.Writer, recs []RTTRecord) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return fmt.Errorf("trace: encoding rtt record %d (request id %d): %w", i, recs[i].RequestID, err)
		}
	}
	return bw.Flush()
}

// ReadRTTJSONL reads the RTT telemetry stream until EOF. Decode errors name
// the last successfully read request id to anchor the failure in the stream.
func ReadRTTJSONL(r io.Reader) ([]RTTRecord, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var out []RTTRecord
	for {
		var rec RTTRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: decoding rtt record %d (after request id %d, byte offset %d): %w",
				len(out), lastRequestID(out), dec.InputOffset(), err)
		}
		out = append(out, rec)
	}
}

// WriteClientJSONL writes the client-identity telemetry stream as JSON Lines.
func WriteClientJSONL(w io.Writer, recs []ClientRecord) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return fmt.Errorf("trace: encoding client record %d (request id %d): %w", i, recs[i].RequestID, err)
		}
	}
	return bw.Flush()
}

// ReadClientJSONL reads the client-identity stream until EOF. Decode errors
// name the last successfully read request id to anchor the failure.
func ReadClientJSONL(r io.Reader) ([]ClientRecord, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var out []ClientRecord
	for {
		var rec ClientRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: decoding client record %d (after request id %d, byte offset %d): %w",
				len(out), lastClientRequestID(out), dec.InputOffset(), err)
		}
		out = append(out, rec)
	}
}

func lastRequestID(recs []RTTRecord) uint64 {
	if len(recs) == 0 {
		return 0
	}
	return recs[len(recs)-1].RequestID
}

func lastClientRequestID(recs []ClientRecord) uint64 {
	if len(recs) == 0 {
		return 0
	}
	return recs[len(recs)-1].RequestID
}

// Split separates observations into the two raw telemetry streams,
// assigning sequential request ids.
func Split(obs []Observation) ([]RTTRecord, []ClientRecord) {
	rtts := make([]RTTRecord, len(obs))
	clients := make([]ClientRecord, len(obs))
	for i, o := range obs {
		id := uint64(i) + 1
		rtts[i] = RTTRecord{RequestID: id, Cloud: o.Cloud, Bucket: o.Bucket, Device: o.Device, Samples: o.Samples, MeanRTT: o.MeanRTT}
		clients[i] = ClientRecord{RequestID: id, Prefix: o.Prefix, Clients: o.Clients}
	}
	return rtts, clients
}

// Join reassembles observations from the two streams by request id,
// dropping records without a counterpart (as the daily production join
// does). Under duplicate request ids the FIRST record wins on both sides:
// collectors retransmit on flaky links, and first-wins keeps the join
// deterministic regardless of how retransmissions interleave in either
// stream — later duplicates are dropped, never merged.
func Join(rtts []RTTRecord, clients []ClientRecord) []Observation {
	byID := make(map[uint64]ClientRecord, len(clients))
	for _, c := range clients {
		if _, dup := byID[c.RequestID]; dup {
			continue
		}
		byID[c.RequestID] = c
	}
	out := make([]Observation, 0, len(rtts))
	seen := make(map[uint64]bool, len(rtts))
	for _, r := range rtts {
		c, ok := byID[r.RequestID]
		if !ok || seen[r.RequestID] {
			continue
		}
		seen[r.RequestID] = true
		out = append(out, Observation{
			Prefix: c.Prefix, Cloud: r.Cloud, Device: r.Device, Bucket: r.Bucket,
			Samples: r.Samples, MeanRTT: r.MeanRTT, Clients: c.Clients,
		})
	}
	return out
}

// storageBucket holds one storage bucket's records in struct-of-arrays
// form: the arrival sequence numbers and the observations live in parallel
// slices. Writes append, so each bucket is a presorted run by sequence
// number — windowed reads restore collector arrival order by merging the
// runs instead of re-sorting every matching record (the per-read
// sort.Slice this layout replaced dominated the scan cost). Arrival order
// is what downstream consumers (and trace replay) depend on for
// determinism, and the split layout keeps the seq scan cache-dense.
type storageBucket struct {
	seqs []uint64
	obs  []Observation
}

// runCursor is one storage bucket's position in the read-side merge.
type runCursor struct {
	bkt *storageBucket
	i   int
}

// Store models the analytics cluster's ingestion quirk from §6.1: every
// window (one hour in production) a fresh set of storage buckets is
// created and each record lands in a pseudo-random bucket, losing temporal
// ordering within the window. A reader that wants the last 15 minutes must
// scan every storage bucket of the window and filter. The paper notes the
// team was "currently working on creating finer buckets"; WindowBuckets
// implements that follow-up — shrinking the window cuts the scan cost of
// the 15-minute job proportionally (see TestFinerWindowsCutScanCost).
//
// Reads return records in arrival order (each record carries an ingestion
// sequence number that survives the scatter), so a store-backed pipeline
// sees exactly the stream the collector wrote.
//
// A Store is NOT safe for concurrent use: Write mutates the window maps
// and ReadWindow updates the scan counters. The simulator's parallel
// generation paths merge their per-shard buffers into one ordered slice
// before anything is written here, so single-writer ingestion is the
// natural calling convention.
type Store struct {
	bucketsPerWindow int
	windowLen        netmodel.Bucket // ingestion window length in 5-min buckets
	windows          map[int][]storageBucket
	nextSeq          uint64
	reads            int // storage buckets scanned (for the inefficiency metric)
	recordsScanned   int // records examined, including filtered-out ones
	retention        int // windows kept behind the read frontier; 0 = unbounded
	evictBelow       int // all windows < evictBelow have been dropped
	evicted          int // total windows evicted so far
	cursors          []runCursor // read-side merge scratch, reused across reads
}

// NewStore creates a store with the given number of storage buckets per
// hour-long ingestion window (the production layout).
func NewStore(bucketsPerWindow int) *Store {
	return NewStoreWindow(bucketsPerWindow, netmodel.BucketsPerHour)
}

// NewStoreWindow creates a store with an explicit ingestion-window length,
// implementing the §6.1 "finer buckets" follow-up.
func NewStoreWindow(bucketsPerWindow int, windowLen netmodel.Bucket) *Store {
	if bucketsPerWindow <= 0 {
		bucketsPerWindow = 8
	}
	if windowLen < 1 {
		windowLen = netmodel.BucketsPerHour
	}
	return &Store{
		bucketsPerWindow: bucketsPerWindow,
		windowLen:        windowLen,
		windows:          make(map[int][]storageBucket),
	}
}

// SetRetention bounds the store's memory for long runs: after each read,
// ingestion windows more than n windows behind the read frontier are
// evicted. The periodic job reads forward through time, so anything that
// far behind has already been consumed. n <= 0 disables eviction (the
// default — a store used for ad-hoc historical queries must keep
// everything).
func (s *Store) SetRetention(n int) {
	if n < 0 {
		n = 0
	}
	s.retention = n
}

// NumWindows reports how many ingestion windows are currently resident.
func (s *Store) NumWindows() int { return len(s.windows) }

// EvictedWindows reports how many ingestion windows retention has dropped.
func (s *Store) EvictedWindows() int { return s.evicted }

// windowOf maps a 5-minute bucket to its ingestion-window index.
func (s *Store) windowOf(b netmodel.Bucket) int { return int(b / s.windowLen) }

// Write ingests observations, scattering them across the window's storage
// buckets. Writes into windows already evicted by retention are dropped —
// the production cluster, too, rejects stragglers for closed windows.
func (s *Store) Write(obs []Observation) {
	for _, o := range obs {
		h := s.windowOf(o.Bucket)
		if h < s.evictBelow {
			continue
		}
		hb, ok := s.windows[h]
		if !ok {
			hb = make([]storageBucket, s.bucketsPerWindow)
			s.windows[h] = hb
		}
		// Pseudo-random but deterministic scatter. The modulo is taken in
		// uint64: converting the hash to int first goes negative once the
		// product exceeds MaxInt64 (large PrefixIDs), and a negative index
		// panics. For hashes below MaxInt64 the two forms agree, so the
		// scatter of every existing trace is unchanged.
		i := int((uint64(o.Prefix)*2654435761 + uint64(o.Cloud)*40503 + uint64(o.Bucket)) % uint64(s.bucketsPerWindow))
		hb[i].seqs = append(hb[i].seqs, s.nextSeq)
		hb[i].obs = append(hb[i].obs, o)
		s.nextSeq++
	}
}

// ReadWindow returns all observations with from <= bucket < to, in arrival
// order. See ReadWindowAppend.
func (s *Store) ReadWindow(from, to netmodel.Bucket) []Observation {
	return s.ReadWindowAppend(from, to, nil)
}

// ReadWindowAppend appends all observations with from <= bucket < to onto
// buf, in arrival order, and returns the extended slice. It scans every
// storage bucket of each overlapped ingestion window (counted in
// ScannedBuckets) and filters, exactly as BlameIt's 15-minute job must.
// An empty or inverted range (to <= from) reads nothing and scans nothing.
// If a retention horizon is set, windows that fall behind it afterwards
// are evicted.
//
// Each storage bucket is a presorted run by sequence number (writes only
// append), so arrival order is restored by a k-way merge over the runs —
// no per-read global sort, and the only allocation in steady state is
// whatever growth buf itself needs.
func (s *Store) ReadWindowAppend(from, to netmodel.Bucket, buf []Observation) []Observation {
	if to <= from {
		return buf
	}
	if from < 0 {
		from = 0
	}
	if to <= from {
		return buf
	}
	cursors := s.cursors[:0]
	hi := s.windowOf(to - 1)
	for h := s.windowOf(from); h <= hi; h++ {
		hb, ok := s.windows[h]
		if !ok {
			continue
		}
		for bi := range hb {
			bkt := &hb[bi]
			s.reads++
			s.recordsScanned += len(bkt.obs)
			c := runCursor{bkt: bkt}
			if c.skipFiltered(from, to) {
				cursors = append(cursors, c)
			}
		}
	}
	// The scatter destroyed arrival order; merging the runs on their
	// sequence numbers restores it. The run count is small (storage buckets
	// per window x overlapped windows), so a linear min-scan per emitted
	// record beats heap bookkeeping.
	live := len(cursors)
	for len(cursors) > 0 {
		min := 0
		for ci := 1; ci < len(cursors); ci++ {
			if cursors[ci].bkt.seqs[cursors[ci].i] < cursors[min].bkt.seqs[cursors[min].i] {
				min = ci
			}
		}
		c := &cursors[min]
		buf = append(buf, c.bkt.obs[c.i])
		c.i++
		if !c.skipFiltered(from, to) {
			cursors[min] = cursors[len(cursors)-1]
			cursors = cursors[:len(cursors)-1]
		}
	}
	// Drop the bucket pointers before parking the scratch: a stale cursor
	// must not pin an evicted window's slices in memory.
	clear(cursors[:live])
	s.cursors = cursors[:0]
	if s.retention > 0 {
		s.evictBehind(hi)
	}
	return buf
}

// skipFiltered advances the cursor to its run's next record inside
// [from, to), reporting whether one exists.
func (c *runCursor) skipFiltered(from, to netmodel.Bucket) bool {
	for c.i < len(c.bkt.obs) {
		if b := c.bkt.obs[c.i].Bucket; b >= from && b < to {
			return true
		}
		c.i++
	}
	return false
}

// evictBehind drops every resident window at or below frontier-retention.
func (s *Store) evictBehind(frontier int) {
	low := frontier - s.retention + 1
	if low <= s.evictBelow {
		return
	}
	for h := range s.windows {
		if h < low {
			delete(s.windows, h)
			s.evicted++
		}
	}
	s.evictBelow = low
}

// ScannedBuckets reports how many storage buckets all reads so far have
// scanned.
func (s *Store) ScannedBuckets() int { return s.reads }

// ScannedRecords reports how many records all reads so far have examined,
// including records outside the requested window — the real cost of the
// coarse ingestion layout.
func (s *Store) ScannedRecords() int { return s.recordsScanned }
