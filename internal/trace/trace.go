// Package trace defines the passive measurement records that flow from the
// cloud locations to the analytics cluster, and models the collection
// pipeline of §6.1 of the paper: the two telemetry streams joined by
// request id, and the hourly storage buckets whose loss of temporal
// ordering BlameIt's periodic job has to work around.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"blameit/internal/netmodel"
)

// Observation is one quartet-level passive measurement: the aggregate of
// TCP handshake RTTs from one /24 to one cloud location in one 5-minute
// bucket, split by device class.
type Observation struct {
	Prefix  netmodel.PrefixID    `json:"prefix"`
	Cloud   netmodel.CloudID     `json:"cloud"`
	Device  netmodel.DeviceClass `json:"device"`
	Bucket  netmodel.Bucket      `json:"bucket"`
	Samples int                  `json:"samples"`
	MeanRTT float64              `json:"mean_rtt_ms"`
	// Clients is the number of distinct client IPs behind the samples.
	Clients int `json:"clients"`
}

// WriteJSONL writes observations as JSON Lines.
func WriteJSONL(w io.Writer, obs []Observation) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range obs {
		if err := enc.Encode(&obs[i]); err != nil {
			return fmt.Errorf("trace: encoding observation %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL reads observations from JSON Lines until EOF.
func ReadJSONL(r io.Reader) ([]Observation, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var out []Observation
	for {
		var o Observation
		if err := dec.Decode(&o); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: decoding observation %d: %w", len(out), err)
		}
		out = append(out, o)
	}
}

// RTTRecord is the latency half of the raw telemetry: cloud servers log the
// handshake RTT keyed by a request id.
type RTTRecord struct {
	RequestID uint64
	Cloud     netmodel.CloudID
	Bucket    netmodel.Bucket
	Device    netmodel.DeviceClass
	Samples   int
	MeanRTT   float64
}

// ClientRecord is the identity half: the client IP (here its /24 and client
// count) keyed by the same request id. The production pipeline had to join
// the two streams daily until the RTT stream was extended to carry the
// client IP (§6.1).
type ClientRecord struct {
	RequestID uint64
	Prefix    netmodel.PrefixID
	Clients   int
}

// Split separates observations into the two raw telemetry streams,
// assigning sequential request ids.
func Split(obs []Observation) ([]RTTRecord, []ClientRecord) {
	rtts := make([]RTTRecord, len(obs))
	clients := make([]ClientRecord, len(obs))
	for i, o := range obs {
		id := uint64(i) + 1
		rtts[i] = RTTRecord{RequestID: id, Cloud: o.Cloud, Bucket: o.Bucket, Device: o.Device, Samples: o.Samples, MeanRTT: o.MeanRTT}
		clients[i] = ClientRecord{RequestID: id, Prefix: o.Prefix, Clients: o.Clients}
	}
	return rtts, clients
}

// Join reassembles observations from the two streams by request id,
// dropping records without a counterpart (as the daily production join
// does).
func Join(rtts []RTTRecord, clients []ClientRecord) []Observation {
	byID := make(map[uint64]ClientRecord, len(clients))
	for _, c := range clients {
		byID[c.RequestID] = c
	}
	out := make([]Observation, 0, len(rtts))
	for _, r := range rtts {
		c, ok := byID[r.RequestID]
		if !ok {
			continue
		}
		out = append(out, Observation{
			Prefix: c.Prefix, Cloud: r.Cloud, Device: r.Device, Bucket: r.Bucket,
			Samples: r.Samples, MeanRTT: r.MeanRTT, Clients: c.Clients,
		})
	}
	return out
}

// Store models the analytics cluster's ingestion quirk from §6.1: every
// window (one hour in production) a fresh set of storage buckets is
// created and each record lands in a pseudo-random bucket, losing temporal
// ordering within the window. A reader that wants the last 15 minutes must
// scan every storage bucket of the window and filter. The paper notes the
// team was "currently working on creating finer buckets"; WindowBuckets
// implements that follow-up — shrinking the window cuts the scan cost of
// the 15-minute job proportionally (see TestFinerWindowsCutScanCost).
//
// A Store is NOT safe for concurrent use: Write mutates the window maps
// and ReadWindow updates the scan counters. The simulator's parallel
// generation paths merge their per-shard buffers into one ordered slice
// before anything is written here, so single-writer ingestion is the
// natural calling convention.
type Store struct {
	bucketsPerWindow int
	windowLen        netmodel.Bucket // ingestion window length in 5-min buckets
	windows          map[int][][]Observation
	reads            int // storage buckets scanned (for the inefficiency metric)
	recordsScanned   int // records examined, including filtered-out ones
}

// NewStore creates a store with the given number of storage buckets per
// hour-long ingestion window (the production layout).
func NewStore(bucketsPerWindow int) *Store {
	return NewStoreWindow(bucketsPerWindow, netmodel.BucketsPerHour)
}

// NewStoreWindow creates a store with an explicit ingestion-window length,
// implementing the §6.1 "finer buckets" follow-up.
func NewStoreWindow(bucketsPerWindow int, windowLen netmodel.Bucket) *Store {
	if bucketsPerWindow <= 0 {
		bucketsPerWindow = 8
	}
	if windowLen < 1 {
		windowLen = netmodel.BucketsPerHour
	}
	return &Store{
		bucketsPerWindow: bucketsPerWindow,
		windowLen:        windowLen,
		windows:          make(map[int][][]Observation),
	}
}

// windowOf maps a 5-minute bucket to its ingestion-window index.
func (s *Store) windowOf(b netmodel.Bucket) int { return int(b / s.windowLen) }

// Write ingests observations, scattering them across the window's storage
// buckets.
func (s *Store) Write(obs []Observation) {
	for _, o := range obs {
		h := s.windowOf(o.Bucket)
		hb, ok := s.windows[h]
		if !ok {
			hb = make([][]Observation, s.bucketsPerWindow)
			s.windows[h] = hb
		}
		// Pseudo-random but deterministic scatter.
		i := int(uint64(o.Prefix)*2654435761+uint64(o.Cloud)*40503+uint64(o.Bucket)) % s.bucketsPerWindow
		hb[i] = append(hb[i], o)
	}
}

// ReadWindow returns all observations with from <= bucket < to. It scans
// every storage bucket of each overlapped ingestion window (counted in
// ScannedBuckets) and filters, exactly as BlameIt's 15-minute job must.
func (s *Store) ReadWindow(from, to netmodel.Bucket) []Observation {
	var out []Observation
	for h := s.windowOf(from); h <= s.windowOf(to-1); h++ {
		hb, ok := s.windows[h]
		if !ok {
			continue
		}
		for _, bucket := range hb {
			s.reads++
			s.recordsScanned += len(bucket)
			for _, o := range bucket {
				if o.Bucket >= from && o.Bucket < to {
					out = append(out, o)
				}
			}
		}
	}
	return out
}

// ScannedBuckets reports how many storage buckets all reads so far have
// scanned.
func (s *Store) ScannedBuckets() int { return s.reads }

// ScannedRecords reports how many records all reads so far have examined,
// including records outside the requested window — the real cost of the
// coarse ingestion layout.
func (s *Store) ScannedRecords() int { return s.recordsScanned }
