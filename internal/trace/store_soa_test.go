package trace

import (
	"math"
	"math/rand"
	"testing"

	"blameit/internal/netmodel"
)

// TestWriteScatterLargePrefixID is the regression test for the scatter-index
// overflow: uint64(Prefix)*2654435761 exceeds MaxInt64 for adversarially
// large PrefixIDs, and the old int-then-modulo order produced a negative
// storage-bucket index and panicked on the slice access. The modulo now runs
// in uint64 before the conversion.
func TestWriteScatterLargePrefixID(t *testing.T) {
	s := NewStore(8)
	huge := []netmodel.PrefixID{
		netmodel.PrefixID(math.MaxInt64 / 2654435761 * 2), // hash > MaxInt64
		netmodel.PrefixID(math.MaxInt64),                  // worst case
		1 << 40,
	}
	for i, p := range huge {
		s.Write([]Observation{{Prefix: p, Cloud: netmodel.CloudID(i), Bucket: 3, Samples: 10, MeanRTT: 50}})
	}
	got := s.ReadWindow(3, 4)
	if len(got) != len(huge) {
		t.Fatalf("read back %d records, want %d", len(got), len(huge))
	}
	for i, o := range got {
		if o.Prefix != huge[i] {
			t.Errorf("record %d: prefix %d, want %d (arrival order broken)", i, o.Prefix, huge[i])
		}
	}
}

// TestWriteScatterUnchangedForExistingTraces pins the scatter of small
// (realistic) IDs: the overflow fix must not move any record of an existing
// golden trace to a different storage bucket. The expected indices are the
// values of the original formula, which agrees with the uint64 modulo for
// every hash below MaxInt64.
func TestWriteScatterUnchangedForExistingTraces(t *testing.T) {
	cases := []struct {
		prefix netmodel.PrefixID
		cloud  netmodel.CloudID
		bucket netmodel.Bucket
		want   int
	}{
		{0, 0, 0, 0},
		{1, 0, 0, int(uint64(2654435761) % 8)},
		{7, 3, 100, int((uint64(7)*2654435761 + 3*40503 + 100) % 8)},
		{1000, 12, 8063, int((uint64(1000)*2654435761 + 12*40503 + 8063) % 8)},
	}
	for _, c := range cases {
		s := NewStore(8)
		s.Write([]Observation{{Prefix: c.prefix, Cloud: c.cloud, Bucket: c.bucket, Samples: 10}})
		h := s.windowOf(c.bucket)
		hb := s.windows[h]
		got := -1
		for i := range hb {
			if len(hb[i].obs) > 0 {
				got = i
			}
		}
		if got != c.want {
			t.Errorf("prefix=%d cloud=%d bucket=%d landed in storage bucket %d, want %d",
				c.prefix, c.cloud, c.bucket, got, c.want)
		}
	}
}

// TestReadMergeMatchesArrivalOrder drives the presorted-run merge with a
// randomized workload spanning several ingestion windows and interleaved
// bucket order, checking every windowed read returns exactly the written
// records in arrival order.
func TestReadMergeMatchesArrivalOrder(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	s := NewStoreWindow(8, netmodel.BucketsPerHour)
	horizon := netmodel.Bucket(3 * netmodel.BucketsPerHour)
	var written []Observation
	for i := 0; i < 5000; i++ {
		o := Observation{
			Prefix:  netmodel.PrefixID(r.Intn(200)),
			Cloud:   netmodel.CloudID(r.Intn(6)),
			Device:  netmodel.DeviceClass(r.Intn(2)),
			Bucket:  netmodel.Bucket(r.Intn(int(horizon))),
			Samples: 10 + r.Intn(50),
			MeanRTT: 20 + 100*r.Float64(),
		}
		written = append(written, o)
		s.Write([]Observation{o})
	}
	// Sweep several read windows, including sub-window and cross-window
	// spans, against a brute-force filter of the arrival-ordered log.
	spans := [][2]netmodel.Bucket{
		{0, horizon}, {0, 1}, {5, 8}, {11, 13},
		{netmodel.BucketsPerHour - 1, netmodel.BucketsPerHour + 2},
		{0, netmodel.BucketsPerHour}, {netmodel.BucketsPerHour, 2 * netmodel.BucketsPerHour},
	}
	for _, sp := range spans {
		from, to := sp[0], sp[1]
		var want []Observation
		for _, o := range written {
			if o.Bucket >= from && o.Bucket < to {
				want = append(want, o)
			}
		}
		got := s.ReadWindow(from, to)
		if len(got) != len(want) {
			t.Fatalf("[%d,%d): %d records, want %d", from, to, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("[%d,%d): record %d = %+v, want %+v (arrival order broken)", from, to, i, got[i], want[i])
			}
		}
	}
}

// TestReadStraddlesEvictionHorizon reads a window that spans both evicted
// and resident ingestion windows: the evicted part contributes nothing, the
// resident part reads normally, and nothing panics.
func TestReadStraddlesEvictionHorizon(t *testing.T) {
	s := NewStore(4)
	s.SetRetention(2)
	obsAt := func(b netmodel.Bucket) Observation {
		return Observation{Prefix: netmodel.PrefixID(b), Bucket: b, Samples: 10, MeanRTT: 40}
	}
	// Fill windows 0..5 and advance the frontier to window 5, evicting 0..3.
	last := netmodel.Bucket(6*netmodel.BucketsPerHour - 1)
	for b := netmodel.Bucket(0); b <= last; b++ {
		s.Write([]Observation{obsAt(b)})
	}
	_ = s.ReadWindow(last, last+1)
	if got := s.NumWindows(); got != 2 {
		t.Fatalf("resident windows = %d, want 2", got)
	}
	// A historical read straddling the horizon: buckets in evicted windows
	// are gone, buckets in resident windows still read in arrival order.
	from := netmodel.Bucket(3*netmodel.BucketsPerHour - 2) // window 2 (evicted)
	to := netmodel.Bucket(4*netmodel.BucketsPerHour + 2)   // window 4 (resident)
	got := s.ReadWindow(from, to)
	want := 0
	for b := netmodel.Bucket(4 * netmodel.BucketsPerHour); b < to; b++ {
		want++
	}
	if len(got) != want {
		t.Fatalf("straddling read returned %d records, want %d (only the resident window)", len(got), want)
	}
	for i, o := range got {
		if wb := netmodel.Bucket(4*netmodel.BucketsPerHour) + netmodel.Bucket(i); o.Bucket != wb {
			t.Errorf("record %d: bucket %d, want %d", i, o.Bucket, wb)
		}
	}
}

// TestWriteBehindFrontierDropped pins the write-vs-frontier race: stragglers
// for windows the reader has already evicted are dropped, not resurrected
// into half-empty windows.
func TestWriteBehindFrontierDropped(t *testing.T) {
	s := NewStore(4)
	s.SetRetention(1)
	for b := netmodel.Bucket(0); b < 3*netmodel.BucketsPerHour; b++ {
		s.Write([]Observation{{Prefix: 1, Bucket: b, Samples: 10}})
	}
	frontier := netmodel.Bucket(3*netmodel.BucketsPerHour - 1)
	_ = s.ReadWindow(frontier, frontier+1) // evicts windows 0 and 1
	evicted := s.EvictedWindows()
	if evicted != 2 {
		t.Fatalf("evicted %d windows, want 2", evicted)
	}
	// A late write into window 0 races the frontier and loses.
	s.Write([]Observation{{Prefix: 9, Bucket: 1, Samples: 10}})
	if got := s.NumWindows(); got != 1 {
		t.Fatalf("late write resurrected a window: resident = %d, want 1", got)
	}
	if got := s.ReadWindow(0, netmodel.BucketsPerHour); len(got) != 0 {
		t.Fatalf("late write readable after eviction: %d records", len(got))
	}
}

// TestNumWindowsFlatOverMonth holds resident-window flatness over a
// simulated month at the struct-of-arrays layout: a pipeline-shaped
// write-then-read cadence with retention 2 must never hold more than
// retention + 1 windows, regardless of run length.
func TestNumWindowsFlatOverMonth(t *testing.T) {
	s := NewStore(8)
	s.SetRetention(2)
	month := netmodel.Bucket(30 * netmodel.BucketsPerDay)
	var buf []Observation
	peak := 0
	for b := netmodel.Bucket(0); b < month; b++ {
		s.Write([]Observation{
			{Prefix: netmodel.PrefixID(b % 97), Bucket: b, Samples: 12, MeanRTT: 30},
			{Prefix: netmodel.PrefixID(b % 89), Bucket: b, Samples: 15, MeanRTT: 45},
		})
		buf = s.ReadWindowAppend(b, b+1, buf[:0])
		if len(buf) != 2 {
			t.Fatalf("bucket %d: read %d records, want 2", b, len(buf))
		}
		if n := s.NumWindows(); n > peak {
			peak = n
		}
	}
	if peak > 3 {
		t.Fatalf("peak resident windows = %d, want <= 3 (retention 2 + the frontier window)", peak)
	}
	if s.EvictedWindows() == 0 {
		t.Fatal("a month-long run evicted nothing")
	}
}
