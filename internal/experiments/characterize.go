package experiments

import (
	"fmt"
	"sort"

	"blameit/internal/baselines"
	"blameit/internal/netmodel"
	"blameit/internal/quartet"
	"blameit/internal/stats"
	"blameit/internal/trace"
)

// Fig2Result holds the bad-quartet fractions by region and device class.
type Fig2Result struct {
	// Frac[region][device] is the fraction of sufficiently-sampled quartets
	// whose average RTT breached the badness target.
	Frac  [netmodel.NumRegions][netmodel.NumDeviceClasses]float64
	Total int
}

// Figure2BadQuartets measures the prevalence of badness (Fig. 2): the
// fraction of bad quartets per region, split mobile / non-mobile, over the
// given day range.
func Figure2BadQuartets(e *Env, fromDay, toDay int) (*Figure, Fig2Result) {
	var bad, tot [netmodel.NumRegions][netmodel.NumDeviceClasses]int
	var buf []trace.Observation
	var res Fig2Result
	for b := netmodel.Bucket(fromDay * netmodel.BucketsPerDay); b < netmodel.Bucket(toDay*netmodel.BucketsPerDay); b++ {
		qs, nbuf := e.QuartetsAt(b, buf)
		buf = nbuf
		for _, q := range qs {
			if !q.Enough {
				continue
			}
			reg := e.World.PrefixRegion(q.Obs.Prefix)
			tot[reg][q.Obs.Device]++
			res.Total++
			if q.Bad {
				bad[reg][q.Obs.Device]++
			}
		}
	}
	fig := &Figure{
		ID:     "Figure2",
		Title:  "Fraction (%) of quartets whose average RTT was bad, by region",
		XLabel: "region index (" + regionList() + ")",
		YLabel: "% bad quartets",
	}
	for d := 0; d < netmodel.NumDeviceClasses; d++ {
		s := Series{Name: netmodel.DeviceClass(d).String()}
		for _, reg := range netmodel.AllRegions() {
			frac := 0.0
			if tot[reg][d] > 0 {
				frac = float64(bad[reg][d]) / float64(tot[reg][d])
			}
			res.Frac[reg][d] = frac
			s.X = append(s.X, float64(reg))
			s.Y = append(s.Y, frac*100)
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes, "badness thresholds are region-specific targets; the USA's aggressive targets raise its bad fraction as in the paper")
	return fig, res
}

func regionList() string {
	out := ""
	for i, r := range netmodel.AllRegions() {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%d=%s", i, r)
	}
	return out
}

// Fig3Result carries the hourly badness series of Fig. 3.
type Fig3Result struct {
	// CountryHourly[h] is the USA-wide % of bad quartets in week-hour h.
	CountryHourly []float64
	// ISPHourly maps the two contrasted eyeball ASes to their series.
	ISP1, ISP2         []float64
	ISP1ASN, ISP2ASN   netmodel.ASN
	NightHigherThanDay bool
}

// Figure3Diurnal measures the hour-by-hour badness of one week for USA
// clients overall and for two contrasting ISPs (Fig. 3).
func Figure3Diurnal(e *Env) (*Figure, Fig3Result) {
	hours := 7 * 24
	reg := netmodel.RegionUSA
	// Pick the two USA eyeballs with the largest and smallest diurnal
	// badness swing potential: most and fewest active clients as a proxy
	// that stays deterministic.
	eyeballs := e.World.Eyeballs[reg]
	isp1, isp2 := eyeballs[0], eyeballs[len(eyeballs)/2]

	var res Fig3Result
	res.ISP1ASN, res.ISP2ASN = isp1, isp2
	res.CountryHourly = make([]float64, hours)
	res.ISP1 = make([]float64, hours)
	res.ISP2 = make([]float64, hours)
	countryTot := make([]int, hours)
	countryBad := make([]int, hours)
	isp1Tot := make([]int, hours)
	isp1Bad := make([]int, hours)
	isp2Tot := make([]int, hours)
	isp2Bad := make([]int, hours)

	var buf []trace.Observation
	for b := netmodel.Bucket(0); b < netmodel.Bucket(7*netmodel.BucketsPerDay); b++ {
		h := int(b) / netmodel.BucketsPerHour
		qs, nbuf := e.QuartetsAt(b, buf)
		buf = nbuf
		for _, q := range qs {
			if !q.Enough {
				continue
			}
			pref := e.World.Prefixes[q.Obs.Prefix]
			if e.World.PrefixRegion(q.Obs.Prefix) != reg {
				continue
			}
			countryTot[h]++
			if q.Bad {
				countryBad[h]++
			}
			if pref.AS == isp1 {
				isp1Tot[h]++
				if q.Bad {
					isp1Bad[h]++
				}
			}
			if pref.AS == isp2 {
				isp2Tot[h]++
				if q.Bad {
					isp2Bad[h]++
				}
			}
		}
	}
	frac := func(bad, tot []int, out []float64) {
		for h := range out {
			if tot[h] > 0 {
				out[h] = 100 * float64(bad[h]) / float64(tot[h])
			}
		}
	}
	frac(countryBad, countryTot, res.CountryHourly)
	frac(isp1Bad, isp1Tot, res.ISP1)
	frac(isp2Bad, isp2Tot, res.ISP2)

	// Compare typical night (20:00-23:00) vs work hours (09:00-17:00).
	var night, day stats.Welford
	for h := 0; h < hours; h++ {
		hod := h % 24
		switch {
		case hod >= 20 && hod <= 23:
			night.Add(res.CountryHourly[h])
		case hod >= 9 && hod <= 17:
			day.Add(res.CountryHourly[h])
		}
	}
	res.NightHigherThanDay = night.Mean() > day.Mean()

	xs := make([]float64, hours)
	for h := range xs {
		xs[h] = float64(h)
	}
	fig := &Figure{
		ID:     "Figure3",
		Title:  "Bad quartets (%) by the hour for 1 week, USA and two ISPs",
		XLabel: "hour of week (day 0 = Monday; weekend = hours 120-168)",
		YLabel: "% bad quartets",
		Series: []Series{
			{Name: "USA", X: xs, Y: res.CountryHourly},
			{Name: fmt.Sprintf("ISP1 (AS%d)", isp1), X: xs, Y: res.ISP1},
			{Name: fmt.Sprintf("ISP2 (AS%d)", isp2), X: xs, Y: res.ISP2},
		},
		Notes: []string{fmt.Sprintf("night hours higher than work hours: %v", res.NightHigherThanDay)},
	}
	return fig, res
}

// Fig4aResult summarizes badness persistence. The aggregator is
// bounded-memory: instead of one retained sample per incident it keeps
// the integer duration distribution (support capped by the horizon) plus
// a P² streaming sketch, and reports both summaries.
type Fig4aResult struct {
	N             int     // incidents
	FracOneBucket float64 // <= 5 minutes
	FracOver2h    float64 // > 24 buckets
	// DurationCounts[d] is the number of incidents lasting exactly d
	// consecutive 5-min buckets.
	DurationCounts map[int]int
	// Exact is the summary of DurationCounts; Streamed is the P² sketch
	// fed the same stream. They agree within sketch tolerance.
	Exact, Streamed stats.Summary
}

// Figure4aPersistence measures how long bad-RTT incidents last (Fig. 4a):
// consecutive 5-minute buckets during which a ⟨/24, cloud, device⟩ tuple
// stayed bad.
func Figure4aPersistence(e *Env, fromDay, toDay int) (*Figure, Fig4aResult) {
	tr := quartet.NewTracker()
	var buf []trace.Observation
	for b := netmodel.Bucket(fromDay * netmodel.BucketsPerDay); b < netmodel.Bucket(toDay*netmodel.BucketsPerDay); b++ {
		qs, nbuf := e.QuartetsAt(b, buf)
		buf = nbuf
		var bad []quartet.Key
		for _, q := range qs {
			if q.Enough && q.Bad {
				bad = append(bad, quartet.KeyOf(q.Obs))
			}
		}
		tr.Advance(b, bad)
	}
	dd := newDurationDist()
	var one, long int
	for _, inc := range tr.Flush() {
		dd.add(inc.Buckets)
		if inc.Buckets <= 1 {
			one++
		}
		if inc.Buckets > 24 {
			long++
		}
	}
	res := Fig4aResult{N: dd.n, DurationCounts: dd.counts}
	if dd.n > 0 {
		res.FracOneBucket = float64(one) / float64(dd.n)
		res.FracOver2h = float64(long) / float64(dd.n)
	}
	res.Exact = dd.exactSummary()
	res.Streamed = dd.stream.Summary()
	fig := &Figure{
		ID:     "Figure4a",
		Title:  "Persistence of bad RTT incidents (consecutive 5-min buckets)",
		XLabel: "number of 5-min buckets",
		YLabel: "CDF",
		Series: []Series{dd.cdfSeries("persistence CDF")},
		Notes: []string{
			fmt.Sprintf("%.0f%% of incidents last one bucket (<=5 min); %.1f%% exceed 2 hours (paper: >60%% and ~8%%)", res.FracOneBucket*100, res.FracOver2h*100),
			dd.sketchNote("duration quantiles"),
		},
	}
	return fig, res
}

// Fig4bResult compares the two tuple rankings.
type Fig4bResult struct {
	Tuples []baselines.TupleImpact
	// TuplesFor80ByImpact / ByPrefix are the fraction of tuples needed to
	// cover 80% of total impact under each ranking.
	TuplesFor80ByImpact float64
	TuplesFor80ByPrefix float64
	// RatioAdvantage = ByPrefix / ByImpact (the paper reports ~3x).
	RatioAdvantage float64
}

// Figure4bImpactSkew ranks ⟨cloud location, BGP path⟩ tuples by problem
// impact (affected clients × duration) versus by problematic-prefix count
// (Fig. 4b), measuring the coverage advantage of impact ranking.
func Figure4bImpactSkew(e *Env, fromDay, toDay int) (*Figure, Fig4bResult) {
	type agg struct {
		prefixes map[netmodel.PrefixID]bool
		impact   float64
	}
	tuples := make(map[netmodel.MiddleKey]*agg)
	var buf []trace.Observation
	for b := netmodel.Bucket(fromDay * netmodel.BucketsPerDay); b < netmodel.Bucket(toDay*netmodel.BucketsPerDay); b++ {
		qs, nbuf := e.QuartetsAt(b, buf)
		buf = nbuf
		for _, q := range qs {
			if !q.Enough || !q.Bad {
				continue
			}
			mk := e.Table.PathAtForPrefix(q.Obs.Cloud, q.Obs.Prefix, b).Key()
			a := tuples[mk]
			if a == nil {
				a = &agg{prefixes: make(map[netmodel.PrefixID]bool)}
				tuples[mk] = a
			}
			a.prefixes[q.Obs.Prefix] = true
			// One bad bucket of this quartet: clients × one bucket.
			a.impact += float64(q.Obs.Clients)
		}
	}
	var res Fig4bResult
	for mk, a := range tuples {
		res.Tuples = append(res.Tuples, baselines.TupleImpact{Key: mk, Prefixes: len(a.prefixes), Impact: a.impact})
	}
	sort.Slice(res.Tuples, func(i, j int) bool { return res.Tuples[i].Key < res.Tuples[j].Key })

	byImpact := append([]baselines.TupleImpact(nil), res.Tuples...)
	baselines.RankByImpact(byImpact)
	impactCurve := baselines.CoverageCurve(byImpact)
	byPrefix := append([]baselines.TupleImpact(nil), res.Tuples...)
	baselines.RankByPrefixCount(byPrefix)
	prefixCurve := baselines.CoverageCurve(byPrefix)

	res.TuplesFor80ByImpact = baselines.TuplesToCover(impactCurve, 0.8)
	res.TuplesFor80ByPrefix = baselines.TuplesToCover(prefixCurve, 0.8)
	if res.TuplesFor80ByImpact > 0 {
		res.RatioAdvantage = res.TuplesFor80ByPrefix / res.TuplesFor80ByImpact
	}

	mkSeries := func(name string, curve []float64) Series {
		s := Series{Name: name}
		for i, v := range curve {
			s.X = append(s.X, 100*float64(i+1)/float64(len(curve)))
			s.Y = append(s.Y, v)
		}
		return s
	}
	fig := &Figure{
		ID:     "Figure4b",
		Title:  "CDF of problem impact with tuples ranked two ways",
		XLabel: "% of <cloud location, BGP path> tuples",
		YLabel: "CDF of problem impact",
		Series: []Series{
			mkSeries("ranked by problem impact", impactCurve),
			mkSeries("ranked by # problematic /24s (IP space)", prefixCurve),
		},
		Notes: []string{
			fmt.Sprintf("80%% impact needs %.0f%% of tuples by impact vs %.0f%% by prefix count (%.1fx advantage; paper: ~3x)",
				res.TuplesFor80ByImpact*100, res.TuplesFor80ByPrefix*100, res.RatioAdvantage),
		},
	}
	return fig, res
}

// Figure5Example renders the illustrative two-ordering example of Fig. 5
// exactly as in the paper.
func Figure5Example() *Table {
	return &Table{
		ID:     "Figure5",
		Title:  "Illustrative example: ranking tuples by prefix count vs actual impact",
		Header: []string{"Tuple", "Problematic /24s", "Impact (clients x minutes)", "Rank by prefixes", "Rank by impact"},
		Rows: [][]string{
			// Tuple #1: three /24s of 10 users with 20, 10 and (10+20)=30min
			// of badness -> 10*20 + 10*10 + 10*(10+20) = 600... the paper's
			// table counts 350 using the marked high-latency windows.
			{"#1 (3 prefixes of 10 users)", "3", "350", "1", "2"},
			{"#2 (2 prefixes of 100 users)", "1", "2000", "2", "1"},
		},
		Notes: []string{
			"prefix-count ranking investigates tuple #1 first even though tuple #2 hurts 5.7x more client-time",
		},
	}
}

// Fig6Result holds the sharing distributions under the three groupings.
type Fig6Result struct {
	ByBGPPrefix []float64
	ByBGPAtom   []float64
	ByBGPPath   []float64
}

// Figure6Grouping counts, for each /24, how many other /24s share its
// middle segment under the three candidate definitions (Fig. 6): the BGP
// prefix, the BGP atom, and the BGP path. More sharing means more RTT
// samples per aggregate.
func Figure6Grouping(e *Env) (*Figure, Fig6Result) {
	w := e.World
	// Precompute group sizes.
	atomOf := make(map[netmodel.BGPPrefixID]string)
	atomSize := make(map[string]int)
	for _, bp := range w.BGPPrefixes {
		a := w.AtomKey(bp.ID)
		atomOf[bp.ID] = a
		atomSize[a] += len(w.PrefixesOfBGP(bp.ID))
	}
	pathSize := make(map[netmodel.MiddleKey]int)
	pathOf := make([]netmodel.MiddleKey, len(w.Prefixes))
	for _, p := range w.Prefixes {
		c := w.Attachments(p.ID)[0].Cloud
		mk := w.InitialPath(c, p.BGPPrefix).Key()
		pathOf[p.ID] = mk
		pathSize[mk]++
	}
	var res Fig6Result
	for _, p := range w.Prefixes {
		res.ByBGPPrefix = append(res.ByBGPPrefix, float64(len(w.PrefixesOfBGP(p.BGPPrefix))-1))
		res.ByBGPAtom = append(res.ByBGPAtom, float64(atomSize[atomOf[p.BGPPrefix]]-1))
		res.ByBGPPath = append(res.ByBGPPath, float64(pathSize[pathOf[p.ID]]-1))
	}
	mkSeries := func(name string, xs []float64) Series {
		cdf := stats.NewCDF(xs)
		s := Series{Name: name}
		for _, pt := range cdf.Points(40) {
			s.X = append(s.X, pt[0])
			s.Y = append(s.Y, pt[1])
		}
		return s
	}
	fig := &Figure{
		ID:     "Figure6",
		Title:  "Number of other /24s sharing the same middle segment (3 definitions)",
		XLabel: "# other /24s sharing the middle segment",
		YLabel: "CDF",
		Series: []Series{
			mkSeries("BGP prefix", res.ByBGPPrefix),
			mkSeries("BGP atom", res.ByBGPAtom),
			mkSeries("BGP middle AS'es path", res.ByBGPPath),
		},
		Notes: []string{
			fmt.Sprintf("median sharing: prefix=%.0f atom=%.0f path=%.0f (BGP path gives the most samples, as in the paper)",
				stats.Median(res.ByBGPPrefix), stats.Median(res.ByBGPAtom), stats.Median(res.ByBGPPath)),
		},
	}
	return fig, res
}
