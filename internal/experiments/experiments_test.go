package experiments

import (
	"bytes"
	"math"
	"testing"

	"blameit/internal/bgp"
	"blameit/internal/core"
	"blameit/internal/faults"
	"blameit/internal/netmodel"
	"blameit/internal/stats"
	"blameit/internal/topology"
)

// smallEnv builds a small fault-free environment.
func smallEnv(days int) *Env {
	return NewEnv(EnvConfig{Scale: topology.SmallScale(), Seed: 42, Days: days, Churn: bgp.DefaultChurnConfig()})
}

// smallEnvWithRandomFaults adds the default randomized schedule.
func smallEnvWithRandomFaults(days int, seed int64) *Env {
	w := topology.Generate(topology.SmallScale(), 42)
	horizon := netmodel.Bucket(days * netmodel.BucketsPerDay)
	fs := faults.Generate(w, faults.DefaultGenerateConfig(), horizon, seed)
	return NewEnv(EnvConfig{Scale: topology.SmallScale(), Seed: 42, Days: days, Churn: bgp.DefaultChurnConfig(), Faults: fs.Faults})
}

func TestTable1Renders(t *testing.T) {
	tbl := Table1Properties()
	if len(tbl.Rows) != 7 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Header) {
			t.Fatal("ragged table")
		}
		if row[1] != "yes" {
			t.Errorf("BlameIt must satisfy %q", row[0])
		}
	}
	var buf bytes.Buffer
	tbl.Render(&buf)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestTable2Dataset(t *testing.T) {
	e := smallEnv(1)
	tbl, ds := Table2Dataset(e, 7)
	if ds.RTTMeasurements <= 0 || ds.Client24s <= 0 || ds.BGPPrefixes <= 0 {
		t.Fatalf("dataset stats %+v", ds)
	}
	if ds.Client24s < ds.BGPPrefixes {
		t.Error("/24s must outnumber BGP prefixes")
	}
	if ds.RTTMeasurements < int64(ds.Client24s) {
		t.Error("measurements must outnumber prefixes")
	}
	var buf bytes.Buffer
	tbl.Render(&buf)
	t.Logf("table2:\n%s", buf.String())
}

func TestFigure2Shape(t *testing.T) {
	e := smallEnvWithRandomFaults(1, 7)
	fig, res := Figure2BadQuartets(e, 0, 1)
	if len(fig.Series) != netmodel.NumDeviceClasses {
		t.Fatal("series count")
	}
	if res.Total == 0 {
		t.Fatal("no quartets")
	}
	// Badness must be present but not overwhelming in every region.
	for _, reg := range netmodel.AllRegions() {
		frac := res.Frac[reg][netmodel.NonMobile]
		if frac < 0 || frac > 0.6 {
			t.Errorf("%v non-mobile bad fraction = %v", reg, frac)
		}
	}
	t.Logf("fig2 fractions: %+v", res.Frac)
}

func TestFigure3Shape(t *testing.T) {
	e := smallEnv(7)
	fig, res := Figure3Diurnal(e)
	if len(res.CountryHourly) != 168 {
		t.Fatalf("hours = %d", len(res.CountryHourly))
	}
	if !res.NightHigherThanDay {
		t.Error("night badness must exceed work-hours badness (paper §2.2)")
	}
	if len(fig.Series) != 3 {
		t.Error("want USA + two ISPs")
	}
	t.Logf("fig3 notes: %v", fig.Notes)
}

func TestFigure4aShape(t *testing.T) {
	e := smallEnvWithRandomFaults(2, 11)
	_, res := Figure4aPersistence(e, 1, 2)
	if res.N == 0 {
		t.Fatal("no incidents")
	}
	if res.FracOneBucket < 0.4 {
		t.Errorf("one-bucket fraction = %v, want the majority fleeting", res.FracOneBucket)
	}
	if res.FracOver2h > 0.2 {
		t.Errorf("long-tail fraction = %v, too heavy", res.FracOver2h)
	}
	total := 0
	for d, c := range res.DurationCounts {
		if d < 1 || c < 1 {
			t.Fatalf("nonsense duration count %d x %d", d, c)
		}
		total += c
	}
	if total != res.N {
		t.Fatalf("duration counts sum to %d, want %d incidents", total, res.N)
	}
	assertSketchClose(t, "fig4a durations", res.Exact, res.Streamed)
	t.Logf("fig4a: 1-bucket=%.2f >2h=%.3f n=%d exact=%v streamed=%v",
		res.FracOneBucket, res.FracOver2h, res.N, res.Exact, res.Streamed)
}

// assertSketchClose pins a P² streamed summary to the exact summary of
// the same stream: count/min/max/mean are exact by construction, the
// quantile estimates must land within sketch tolerance.
func assertSketchClose(t *testing.T, what string, exact, streamed stats.Summary) {
	t.Helper()
	if streamed.N != exact.N || streamed.Min != exact.Min || streamed.Max != exact.Max {
		t.Errorf("%s: streamed n/min/max (%d/%v/%v) != exact (%d/%v/%v)",
			what, streamed.N, streamed.Min, streamed.Max, exact.N, exact.Min, exact.Max)
	}
	if math.Abs(streamed.Mean-exact.Mean) > 1e-9*(1+math.Abs(exact.Mean)) {
		t.Errorf("%s: streamed mean %v != exact %v", what, streamed.Mean, exact.Mean)
	}
	for _, q := range []struct {
		name          string
		exact, sketch float64
	}{
		{"p10", exact.P10, streamed.P10},
		{"p50", exact.P50, streamed.P50},
		{"p90", exact.P90, streamed.P90},
		{"p99", exact.P99, streamed.P99},
	} {
		tol := math.Max(1.5, 0.35*q.exact)
		if math.Abs(q.sketch-q.exact) > tol {
			t.Errorf("%s %s: sketch %v vs exact %v (tolerance %v)", what, q.name, q.sketch, q.exact, tol)
		}
	}
}

func TestFigure4bShape(t *testing.T) {
	e := smallEnvWithRandomFaults(2, 13)
	_, res := Figure4bImpactSkew(e, 1, 2)
	if len(res.Tuples) == 0 {
		t.Fatal("no tuples")
	}
	if res.TuplesFor80ByImpact > res.TuplesFor80ByPrefix {
		t.Errorf("impact ranking (%.2f) must need no more tuples than prefix ranking (%.2f)",
			res.TuplesFor80ByImpact, res.TuplesFor80ByPrefix)
	}
	t.Logf("fig4b: byImpact=%.2f byPrefix=%.2f advantage=%.1fx tuples=%d",
		res.TuplesFor80ByImpact, res.TuplesFor80ByPrefix, res.RatioAdvantage, len(res.Tuples))
}

func TestFigure5Example(t *testing.T) {
	tbl := Figure5Example()
	if len(tbl.Rows) != 2 {
		t.Fatal("rows")
	}
}

func TestFigure6Shape(t *testing.T) {
	e := smallEnv(1)
	_, res := Figure6Grouping(e)
	if len(res.ByBGPPath) != len(e.World.Prefixes) {
		t.Fatal("missing prefixes")
	}
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	mp, ma, mpath := mean(res.ByBGPPrefix), mean(res.ByBGPAtom), mean(res.ByBGPPath)
	if mpath < ma || ma < mp {
		t.Errorf("sharing must grow prefix(%.1f) <= atom(%.1f) <= path(%.1f)", mp, ma, mpath)
	}
	t.Logf("fig6 means: prefix=%.1f atom=%.1f path=%.1f", mp, ma, mpath)
}

func TestFigure8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-day pipeline in -short mode")
	}
	days := 4
	base := smallEnv(1)
	fs := Fig8Schedule(base, 1, days, 2, 17)
	e := NewEnv(EnvConfig{Scale: topology.SmallScale(), Seed: 42, Days: days + 1, Churn: bgp.DefaultChurnConfig(), Faults: fs})
	_, res := Figure8BlameFractions(e, 1, days, 2)
	for _, cat := range core.Categories() {
		if len(res.Daily[cat]) != days {
			t.Fatal("missing days")
		}
	}
	// Cloud fraction should spike on the maintenance day.
	cloud := res.Daily[core.BlameCloud]
	if cloud[2] <= cloud[1] && cloud[2] <= cloud[3] {
		t.Errorf("maintenance day cloud fraction %.3f not elevated vs %.3f/%.3f", cloud[2], cloud[1], cloud[3])
	}
	t.Logf("fig8 cloud=%v middle=%v client=%v insuff=%v ambig=%v",
		res.Daily[core.BlameCloud], res.Daily[core.BlameMiddle], res.Daily[core.BlameClient],
		res.Daily[core.BlameInsufficient], res.Daily[core.BlameAmbiguous])
}

func TestFigure9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline day in -short mode")
	}
	base := smallEnv(1)
	fs := Fig9Schedule(base, 1, 19)
	e := NewEnv(EnvConfig{Scale: topology.SmallScale(), Seed: 42, Days: 2, Churn: bgp.DefaultChurnConfig(), Faults: fs})
	_, res := Figure9RegionalBlame(e, 1)
	boosted := res.Frac[netmodel.RegionIndia][core.BlameMiddle] +
		res.Frac[netmodel.RegionChina][core.BlameMiddle] +
		res.Frac[netmodel.RegionBrazil][core.BlameMiddle]
	usa := res.Frac[netmodel.RegionUSA][core.BlameMiddle]
	t.Logf("fig9 middle: india=%.2f china=%.2f brazil=%.2f usa=%.2f",
		res.Frac[netmodel.RegionIndia][core.BlameMiddle],
		res.Frac[netmodel.RegionChina][core.BlameMiddle],
		res.Frac[netmodel.RegionBrazil][core.BlameMiddle], usa)
	if boosted/3 <= usa {
		t.Errorf("boosted regions' middle fraction (%.2f avg) not above USA (%.2f)", boosted/3, usa)
	}
}

func TestFigure10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline days in -short mode")
	}
	base := smallEnv(1)
	horizon := netmodel.Bucket(3 * netmodel.BucketsPerDay)
	fs := faults.Generate(base.World, faults.DefaultGenerateConfig(), horizon, 23)
	e := NewEnv(EnvConfig{Scale: topology.SmallScale(), Seed: 42, Days: 3, Churn: bgp.DefaultChurnConfig(), Faults: fs.Faults})
	_, res := Figure10DurationByCategory(e, 1, 2)
	total := 0
	for cat, counts := range res.Counts {
		n := 0
		for _, c := range counts {
			n += c
		}
		if n != res.Incidents(cat) {
			t.Fatalf("%v counts sum to %d, want %d incidents", cat, n, res.Incidents(cat))
		}
		total += n
		assertSketchClose(t, "fig10 "+cat.String(), res.Exact[cat], res.Streamed[cat])
	}
	if total == 0 {
		t.Fatal("no incidents")
	}
	t.Logf("fig10 incident counts: cloud=%d middle=%d client=%d",
		res.Incidents(core.BlameCloud), res.Incidents(core.BlameMiddle), res.Incidents(core.BlameClient))
}

func TestRunCasesFiveScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("case studies in -short mode")
	}
	w := topology.Generate(topology.SmallScale(), 42)
	warmup := 1
	// Shift scenarios to start after warmup.
	scs := faults.CaseStudies(w, 3)
	var fs []faults.Fault
	for i := range scs {
		scs[i].Fault.Start += netmodel.Bucket(warmup * netmodel.BucketsPerDay)
		fs = append(fs, scs[i].Fault)
	}
	days := int(scs[len(scs)-1].Fault.End())/netmodel.BucketsPerDay + 2
	e := NewEnv(EnvConfig{Scale: topology.SmallScale(), Seed: 42, Days: days, Churn: bgp.DefaultChurnConfig(), Faults: fs})
	outcomes := RunCases(e, scs, warmup)
	if len(outcomes) != 5 {
		t.Fatalf("outcomes = %d", len(outcomes))
	}
	correct := 0
	for _, co := range outcomes {
		t.Logf("case %s: truth=%v blamed=%v conf=%.2f activeAS=%d (truth %d)",
			co.Name, co.TruthSegment, co.BlamedSegment, co.Confidence, co.ActiveAS, co.TruthAS)
		if co.CorrectSegment {
			correct++
		}
	}
	if correct < 4 {
		t.Errorf("only %d/5 case studies localized correctly", correct)
	}
}

func TestTomographyInfeasibility(t *testing.T) {
	tbl, res := TomographyInfeasibility(5)
	if res.Rank >= res.Unknowns {
		t.Error("system must be rank-deficient")
	}
	if res.CloudIdent {
		t.Error("lc1 must be unidentifiable")
	}
	if !res.CompIdent || !res.DiffIdent {
		t.Error("composites must be identifiable")
	}
	if !res.BoolAmbig {
		t.Error("boolean instance must be ambiguous")
	}
	var buf bytes.Buffer
	tbl.Render(&buf)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestFigureRenderAndSparkline(t *testing.T) {
	fig := &Figure{
		ID: "X", Title: "t", XLabel: "x", YLabel: "y",
		Series: []Series{{Name: "s", X: []float64{1, 2, 3}, Y: []float64{1, 4, 9}}},
	}
	var buf bytes.Buffer
	fig.Render(&buf)
	if buf.Len() == 0 {
		t.Error("empty figure render")
	}
	if sparkline(nil, 10) != "" {
		t.Error("empty sparkline")
	}
	if got := len([]rune(sparkline([]float64{1, 2, 3}, 10))); got != 3 {
		t.Errorf("short series sparkline length = %d", got)
	}
	if fmtInt(1234567) != "1,234,567" || fmtInt(-42) != "-42" || fmtInt(7) != "7" {
		t.Error("fmtInt broken")
	}
}

func TestIncidentBatterySuite(t *testing.T) {
	if testing.Short() {
		t.Skip("incident battery in -short mode")
	}
	tbl, outcomes := IncidentBatterySuite(topology.SmallScale(), 42, 20)
	if len(outcomes) != 20 {
		t.Fatalf("outcomes = %d", len(outcomes))
	}
	if len(tbl.Rows) != 20 {
		t.Fatal("table rows")
	}
	frac := CorrectFraction(outcomes)
	if frac < 0.85 {
		for _, co := range outcomes {
			if !co.CorrectSegment {
				t.Logf("wrong: %s truth=%v blamed=%v conf=%.2f localized=%v",
					co.Name, co.TruthSegment, co.BlamedSegment, co.Confidence, co.Localized)
			}
		}
		t.Errorf("battery correct fraction = %.2f (paper: 88/88)", frac)
	}
	t.Logf("battery: %d/%d correct", int(frac*20+0.5), 20)
}

func TestReverseEval(t *testing.T) {
	if testing.Short() {
		t.Skip("reverse eval in -short mode")
	}
	tbl, res := ReverseEval(topology.SmallScale(), 42, 15)
	if res.Episodes != 15 {
		t.Fatalf("episodes = %d", res.Episodes)
	}
	if res.ForwardAccuracy > 0.3 {
		t.Errorf("forward-only accuracy = %.2f; reverse faults should be invisible to forward probing", res.ForwardAccuracy)
	}
	if res.ReverseAccuracy <= res.ForwardAccuracy {
		t.Errorf("reverse re-check (%.2f) must beat forward-only (%.2f)", res.ReverseAccuracy, res.ForwardAccuracy)
	}
	if res.Covered == 0 {
		t.Fatal("no covered episodes")
	}
	if res.CoveredAccuracy < 0.8 {
		t.Errorf("accuracy within rich-client coverage = %.2f, want high", res.CoveredAccuracy)
	}
	if len(tbl.Rows) != 3 {
		t.Error("table rows")
	}
	t.Logf("reverse eval: forward=%.2f reverse=%.2f covered=%.2f suspicious=%d/%d",
		res.ForwardAccuracy, res.ReverseAccuracy, res.CoveredAccuracy, res.SuspiciousFlagged, res.Episodes)
}
