package experiments

import (
	"fmt"
	"math/rand"

	"blameit/internal/bgp"
	"blameit/internal/faults"
	"blameit/internal/netmodel"
	"blameit/internal/probe"
	"blameit/internal/reverse"
	"blameit/internal/sim"
	"blameit/internal/topology"
)

// ReverseEvalResult compares forward-only against reverse-assisted
// localization on reverse-direction congestion (the §5.1 extension).
type ReverseEvalResult struct {
	Episodes        int
	ForwardCorrect  int
	ReverseCorrect  int
	ForwardAccuracy float64
	ReverseAccuracy float64
	// Covered counts episodes whose client sits within rich-client reach;
	// CoveredAccuracy is the reverse-assisted accuracy among those.
	Covered         int
	CoveredCorrect  int
	CoveredAccuracy float64
	// SuspiciousFlagged counts forward outcomes the heuristic routed to a
	// reverse re-check.
	SuspiciousFlagged int
}

// ReverseEval injects reverse-only middle faults on asymmetric routes and
// grades, per affected (cloud, prefix) episode, whether the investigation
// names the faulty AS — once with forward traceroutes alone (the paper's
// production mechanism) and once with the rich-client reverse re-check.
func ReverseEval(scale topology.Scale, seed int64, nFaults int) (*Table, ReverseEvalResult) {
	w := topology.Generate(scale, seed)
	r := rand.New(rand.NewSource(seed + 31))

	// Collect asymmetric victims: (cloud, prefix, reverse-only AS).
	type victim struct {
		c  netmodel.CloudID
		p  netmodel.PrefixID
		as netmodel.ASN
	}
	var victims []victim
	for _, c := range w.Clouds {
		for _, bp := range w.BGPPrefixes {
			if !w.Asymmetric(c.ID, bp.ID) {
				continue
			}
			onFwd := make(map[netmodel.ASN]bool)
			for _, a := range w.InitialPath(c.ID, bp.ID).Middle {
				onFwd[a] = true
			}
			for _, a := range w.ReversePath(c.ID, bp.ID).Middle {
				if !onFwd[a] {
					victims = append(victims, victim{c.ID, w.PrefixesOfBGP(bp.ID)[0], a})
					break
				}
			}
		}
	}
	if len(victims) == 0 {
		return &Table{ID: "ReverseEval", Title: "no asymmetric routes"}, ReverseEvalResult{}
	}

	// Sequential reverse-only faults, one per sampled victim.
	start := netmodel.Bucket(netmodel.BucketsPerDay)
	var fs []faults.Fault
	var picked []victim
	at := start
	for i := 0; i < nFaults; i++ {
		v := victims[r.Intn(len(victims))]
		dur := netmodel.Bucket(12 + r.Intn(12))
		fs = append(fs, faults.Fault{
			Kind: faults.MiddleASFault, AS: v.as, ScopeCloud: faults.NoCloud,
			Start: at, Duration: dur, ExtraMS: 60 + 60*r.Float64(), ReverseOnly: true,
			Desc: fmt.Sprintf("reverse congestion in AS%d", v.as),
		})
		picked = append(picked, v)
		at += dur + 6
	}
	horizon := at + 6
	tbl := bgp.NewTable(w, bgp.ChurnConfig{}, horizon, seed+2)
	s := sim.New(w, tbl, faults.NewSchedule(fs), sim.DefaultConfig(seed+3))
	engine := probe.NewEngine(s, 0.5)
	co := reverse.NewCoordinator(reverse.DefaultConfig(), engine)

	// Establish both forward and reverse baselines over the first day.
	bg := probe.NewBaseliner(probe.DefaultBackgroundConfig(), engine, tbl)
	for b := netmodel.Bucket(0); b < start; b++ {
		bg.Advance(b)
		co.Advance(b)
	}

	var res ReverseEvalResult
	for i, f := range fs {
		v := picked[i]
		b := f.Start + f.Duration/2
		res.Episodes++
		// Forward investigation: on-demand traceroute vs pre-fault baseline.
		now := engine.Traceroute(v.c, v.p, b, probe.OnDemand)
		fwdOK := false
		var fwd probe.CompareResult
		if baseline, ok := bg.BaselineBefore(now.Path.Key(), f.Start-1); ok {
			fwd = probe.Compare(now, baseline)
			fwdOK = fwd.OK
		}
		if fwdOK && fwd.AS == v.as {
			res.ForwardCorrect++
		}
		// Reverse-assisted: re-check suspicious forward outcomes.
		verdictAS := fwd.AS
		verdictOK := fwdOK
		if reverse.Suspicious(fwdOK, fwd.Segment, fwd.IncreaseMS) {
			res.SuspiciousFlagged++
			// The forward diff parks reverse congestion on the first hop
			// with the full magnitude, so the comparison is not "which
			// increase is larger" — the reverse probe wins by being able
			// to PLACE a meaningful increase on a specific middle AS.
			if rres, ok := co.Localize(v.c, v.p, b, f.Start-1); ok &&
				rres.Segment == netmodel.SegMiddle && rres.IncreaseMS > 5 {
				verdictAS = rres.AS
				verdictOK = true
			}
		}
		correct := verdictOK && verdictAS == v.as
		if correct {
			res.ReverseCorrect++
		}
		if co.Covered(v.c, v.p) {
			res.Covered++
			if correct {
				res.CoveredCorrect++
			}
		}
	}
	res.ForwardAccuracy = float64(res.ForwardCorrect) / float64(res.Episodes)
	res.ReverseAccuracy = float64(res.ReverseCorrect) / float64(res.Episodes)
	if res.Covered > 0 {
		res.CoveredAccuracy = float64(res.CoveredCorrect) / float64(res.Covered)
	}

	t := &Table{
		ID:     "ReverseEval",
		Title:  "Extension (§5.1 future work): reverse-direction congestion localization",
		Header: []string{"Investigation", "Correct culprit", "Accuracy"},
		Rows: [][]string{
			{"forward traceroutes only (production)", fmt.Sprintf("%d/%d", res.ForwardCorrect, res.Episodes), fmtPct(res.ForwardAccuracy)},
			{"with rich-client reverse re-check", fmt.Sprintf("%d/%d", res.ReverseCorrect, res.Episodes), fmtPct(res.ReverseAccuracy)},
			{"  of which within rich-client coverage", fmt.Sprintf("%d/%d", res.CoveredCorrect, res.Covered), fmtPct(res.CoveredAccuracy)},
		},
		Notes: []string{
			"reverse-only faults sit on the client->cloud route of asymmetric pairs; forward per-AS diffs park the inflation on the first hop",
			fmt.Sprintf("%d/%d forward outcomes flagged suspicious and routed to the reverse re-check", res.SuspiciousFlagged, res.Episodes),
		},
	}
	return t, res
}
