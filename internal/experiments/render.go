// Package experiments contains one runner per table and figure of the
// paper's evaluation, each regenerating the corresponding rows or series
// from the synthetic substrate, plus the shared environment and rendering
// helpers. The bench harness (bench_test.go) and the blameit-experiments
// command are thin wrappers over this package.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a paper-style result table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return s + strings.Repeat(" ", n-len(s))
}

// Series is one line of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a paper-style plot rendered as text.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Render writes each series as sampled (x, y) pairs plus a sparkline.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title)
	fmt.Fprintf(w, "  x: %s, y: %s\n", f.XLabel, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, "  -- %s (%d points)\n", s.Name, len(s.X))
		fmt.Fprintf(w, "     %s\n", sparkline(s.Y, 60))
		for _, i := range sampleIndexes(len(s.X), 12) {
			fmt.Fprintf(w, "     x=%-12.4g y=%.4g\n", s.X[i], s.Y[i])
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// sampleIndexes picks up to n evenly spaced indexes of a length-m series.
func sampleIndexes(m, n int) []int {
	if m == 0 {
		return nil
	}
	if m <= n {
		out := make([]int, m)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = i * (m - 1) / (n - 1)
	}
	return out
}

// sparkline renders values as a unicode mini-chart of the given width.
func sparkline(ys []float64, width int) string {
	if len(ys) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	min, max := ys[0], ys[0]
	for _, y := range ys {
		if y < min {
			min = y
		}
		if y > max {
			max = y
		}
	}
	var sb strings.Builder
	for _, i := range sampleIndexes(len(ys), width) {
		frac := 0.0
		if max > min {
			frac = (ys[i] - min) / (max - min)
		}
		idx := int(frac * float64(len(blocks)-1))
		sb.WriteRune(blocks[idx])
	}
	return sb.String()
}

// fmtF formats a float with the given precision.
func fmtF(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// fmtPct formats a fraction as a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// fmtInt formats an integer with thousands separators.
func fmtInt(v int64) string {
	s := fmt.Sprintf("%d", v)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}
