package experiments

import (
	"fmt"

	"blameit/internal/tomography"
)

// TomoResult summarizes the §4.1 infeasibility demonstration.
type TomoResult struct {
	K          int
	Unknowns   int
	Equations  int
	Rank       int
	CloudIdent bool // is lc1 identifiable?
	CompIdent  bool // is lc1+lm1-lc2-lm2 identifiable?
	DiffIdent  bool // is lp1-lp2 identifiable?
	BoolAmbig  bool // is the boolean instance ambiguous?
	BoolMinSet int  // number of minimal explanations
}

// TomographyInfeasibility reproduces the §4.1 argument: the linear system
// over the three-way segmentation is rank-deficient (only the paper's two
// composite expressions are identifiable), and boolean tomography stays
// ambiguous without good-path coverage.
func TomographyInfeasibility(k int) (*Table, TomoResult) {
	lp := make([]float64, k)
	for i := range lp {
		lp[i] = 10 + float64(i)
	}
	s := tomography.BuildTwoCloudSystem(3, 4, 7, 8, lp)

	comp := make([]float64, s.Unknowns())
	comp[0], comp[2], comp[1], comp[3] = 1, 1, -1, -1
	diff := make([]float64, s.Unknowns())
	diff[4], diff[5] = 1, -1

	// Boolean instance: one bad path spanning cloud, middle, client with no
	// good-path coverage.
	bi := &tomography.BoolInstance{
		NumSegments: 3,
		Paths:       [][]int{{0, 1, 2}},
		Bad:         []bool{true},
	}
	exps := bi.MinimalExplanations(2)

	res := TomoResult{
		K:          k,
		Unknowns:   s.Unknowns(),
		Equations:  s.Equations(),
		Rank:       s.Rank(),
		CloudIdent: s.Identifiable(s.Unit("lc1")),
		CompIdent:  s.Identifiable(comp),
		DiffIdent:  s.Identifiable(diff),
		BoolAmbig:  bi.Ambiguous(2),
		BoolMinSet: len(exps),
	}
	t := &Table{
		ID:     "Tomography",
		Title:  fmt.Sprintf("§4.1 tomography infeasibility (k=%d client prefixes)", k),
		Header: []string{"Quantity", "Value"},
		Rows: [][]string{
			{"equations (2k)", fmt.Sprintf("%d", res.Equations)},
			{"unknowns (k+4)", fmt.Sprintf("%d", res.Unknowns)},
			{"rank", fmt.Sprintf("%d", res.Rank)},
			{"lc1 identifiable", fmt.Sprintf("%v", res.CloudIdent)},
			{"lc1+lm1-lc2-lm2 identifiable", fmt.Sprintf("%v", res.CompIdent)},
			{"lp1-lp2 identifiable", fmt.Sprintf("%v", res.DiffIdent)},
			{"boolean tomography ambiguous", fmt.Sprintf("%v (%d minimal explanations)", res.BoolAmbig, res.BoolMinSet)},
		},
		Notes: []string{
			"individual segment latencies are unidentifiable; only the paper's composite expressions solve — the motivation for BlameIt's hierarchical elimination",
		},
	}
	return t, res
}
