package experiments

import (
	"blameit/internal/bgp"
	"blameit/internal/faults"
	"blameit/internal/netmodel"
	"blameit/internal/topology"
)

// CaseStudySuite runs the five named §6.3 case studies on a fresh world.
func CaseStudySuite(scale topology.Scale, seed int64) (*Table, []CaseOutcome) {
	w := topology.Generate(scale, seed)
	warmupDays := 1
	scs := faults.CaseStudies(w, seed+3)
	var fs []faults.Fault
	for i := range scs {
		scs[i].Fault.Start += netmodel.Bucket(warmupDays * netmodel.BucketsPerDay)
		fs = append(fs, scs[i].Fault)
	}
	days := int(scs[len(scs)-1].Fault.End())/netmodel.BucketsPerDay + 2
	env := NewEnv(EnvConfig{Scale: scale, Seed: seed, Days: days, Churn: bgp.DefaultChurnConfig(), Faults: fs})
	outcomes := RunCases(env, scs, warmupDays)
	return CasesTable(outcomes), outcomes
}

// IncidentBatterySuite reproduces the paper's 88-incident validation: n
// randomized sequential incidents, each graded against its ground truth.
func IncidentBatterySuite(scale topology.Scale, seed int64, n int) (*Table, []CaseOutcome) {
	w := topology.Generate(scale, seed)
	warmupDays := 1
	start := netmodel.Bucket(warmupDays*netmodel.BucketsPerDay) + 2*netmodel.BucketsPerHour
	scs := faults.IncidentBattery(w, n, start, 6, seed+7)
	var fs []faults.Fault
	for _, sc := range scs {
		fs = append(fs, sc.Fault)
	}
	days := int(scs[len(scs)-1].Fault.End())/netmodel.BucketsPerDay + 2
	env := NewEnv(EnvConfig{Scale: scale, Seed: seed, Days: days, Churn: bgp.DefaultChurnConfig(), Faults: fs})
	outcomes := RunCases(env, scs, warmupDays)
	tbl := CasesTable(outcomes)
	tbl.ID = "IncidentBattery"
	tbl.Title = "Randomized incident battery (BlameIt vs injected ground truth)"
	return tbl, outcomes
}

// CorrectFraction returns the share of outcomes with the right segment.
func CorrectFraction(outcomes []CaseOutcome) float64 {
	if len(outcomes) == 0 {
		return 0
	}
	n := 0
	for _, co := range outcomes {
		if co.CorrectSegment {
			n++
		}
	}
	return float64(n) / float64(len(outcomes))
}
