package experiments

import (
	"fmt"
	"sort"

	"blameit/internal/baselines"
	"blameit/internal/bgp"
	"blameit/internal/faults"
	"blameit/internal/netmodel"
	"blameit/internal/pipeline"
	"blameit/internal/probe"
	"blameit/internal/stats"
	"blameit/internal/topology"
)

// MiddleWorkload bundles the environment settings shared by the Fig. 11-13
// evaluations: a battery of sequential middle faults after a warmup and
// baseline-establishment period.
type MiddleWorkload struct {
	Scale      topology.Scale
	Seed       int64
	NumFaults  int
	WarmupDays int
	// BaselineDays run quietly between warmup and the first fault so
	// background baselines exist.
	BaselineDays int
	Churn        bgp.ChurnConfig
}

// DefaultMiddleWorkload is the standard small-scale workload.
func DefaultMiddleWorkload(scale topology.Scale, seed int64, numFaults int) MiddleWorkload {
	return MiddleWorkload{
		Scale: scale, Seed: seed, NumFaults: numFaults,
		WarmupDays: 1, BaselineDays: 1, Churn: bgp.DefaultChurnConfig(),
	}
}

// Build creates the environment and returns it with the evaluation window.
func (mw MiddleWorkload) Build() (*Env, netmodel.Bucket, netmodel.Bucket) {
	w := topology.Generate(mw.Scale, mw.Seed)
	start := netmodel.Bucket((mw.WarmupDays + mw.BaselineDays) * netmodel.BucketsPerDay)
	fs := faults.MiddleBattery(w, mw.NumFaults, start, 6, mw.Seed+5)
	end := fs[len(fs)-1].End() + 6
	days := int(end)/netmodel.BucketsPerDay + 1
	env := NewEnv(EnvConfig{Scale: mw.Scale, Seed: mw.Seed, Days: days, Churn: mw.Churn, Faults: fs})
	return env, start, end
}

// Fig11Result carries per-path corroboration ratios for both groupings.
type Fig11Result struct {
	// Ratios are per-path fractions of fault episodes diagnosed with the
	// correct culprit AS.
	BGPPathRatios []float64
	ASMetroRatios []float64
	// PerfectFracBGPPath is the fraction of paths with ratio 1.0 (the
	// paper reports ~88%).
	PerfectFracBGPPath float64
	PerfectFracASMetro float64
}

// episodeOutcomes grades, for every (fault, affected BGP path) episode,
// whether any record during the fault window named the true culprit.
func episodeOutcomes(e *Env, res *MiddleEvalResult, minPrefixes int) map[netmodel.MiddleKey][]bool {
	// Index records by path key.
	byPath := make(map[netmodel.MiddleKey][]IssueRecord)
	for _, rec := range res.Records {
		byPath[rec.PathKey] = append(byPath[rec.PathKey], rec)
	}
	out := make(map[netmodel.MiddleKey][]bool)
	for _, f := range e.Sched.Faults {
		if f.Kind != faults.MiddleASFault {
			continue
		}
		mid := f.Start + f.Duration/2
		for _, pk := range affectedPaths(e, f, mid, minPrefixes) {
			ok := false
			for _, rec := range byPath[pk] {
				if rec.Bucket >= f.Start && rec.Bucket < f.End() && rec.Probed && rec.OK && rec.VerdictAS == f.AS {
					ok = true
					break
				}
			}
			out[pk] = append(out[pk], ok)
		}
	}
	return out
}

// affectedPaths lists the middle keys whose paths traverse the faulty AS
// at the fault's midpoint and cover at least minPrefixes /24s (so the
// passive aggregate gate can pass).
func affectedPaths(e *Env, f faults.Fault, at netmodel.Bucket, minPrefixes int) []netmodel.MiddleKey {
	count := make(map[netmodel.MiddleKey]int)
	for _, c := range e.World.Clouds {
		if f.ScopeCloud != faults.NoCloud && f.ScopeCloud != c.ID {
			continue
		}
		for _, bp := range e.World.BGPPrefixes {
			path := e.Table.PathAt(c.ID, bp.ID, at)
			onPath := false
			for _, m := range path.Middle {
				if m == f.AS {
					onPath = true
				}
			}
			if !onPath {
				continue
			}
			// Only primary-attached prefixes carry enough samples.
			for _, pid := range e.World.PrefixesOfBGP(bp.ID) {
				if e.World.Attachments(pid)[0].Cloud == c.ID {
					count[path.Key()]++
				}
			}
		}
	}
	var out []netmodel.MiddleKey
	for mk, n := range count {
		if n >= minPrefixes {
			out = append(out, mk)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Figure11Corroboration evaluates per-path diagnosis corroboration under
// BlameIt's BGP-path grouping versus the ⟨AS, Metro⟩ grouping (Fig. 11).
func Figure11Corroboration(mw MiddleWorkload) (*Figure, Fig11Result) {
	cfg := pipeline.DefaultConfig()
	cfg.BudgetPerCloudPerDay = 0 // corroboration isolates grouping quality

	run := func(keyed bool) map[netmodel.MiddleKey][]bool {
		env, start, end := mw.Build()
		mec := MiddleEvalConfig{Pipeline: cfg, WarmupDays: mw.WarmupDays, From: start, To: end}
		if keyed {
			mec.KeyFunc = baselines.ASMetroKeyFunc(env.World)
		}
		res := env.RunMiddleEval(mec)
		return episodeOutcomes(env, res, 6)
	}
	ratios := func(eps map[netmodel.MiddleKey][]bool) []float64 {
		var out []float64
		keys := make([]netmodel.MiddleKey, 0, len(eps))
		for mk := range eps {
			keys = append(keys, mk)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, mk := range keys {
			oks := eps[mk]
			n := 0
			for _, ok := range oks {
				if ok {
					n++
				}
			}
			out = append(out, float64(n)/float64(len(oks)))
		}
		return out
	}
	perfect := func(rs []float64) float64 {
		if len(rs) == 0 {
			return 0
		}
		n := 0
		for _, r := range rs {
			if r >= 0.9999 {
				n++
			}
		}
		return float64(n) / float64(len(rs))
	}

	var res Fig11Result
	res.BGPPathRatios = ratios(run(false))
	res.ASMetroRatios = ratios(run(true))
	res.PerfectFracBGPPath = perfect(res.BGPPathRatios)
	res.PerfectFracASMetro = perfect(res.ASMetroRatios)

	mkSeries := func(name string, rs []float64) Series {
		cdf := stats.NewCDF(rs)
		s := Series{Name: name}
		for _, pt := range cdf.Points(30) {
			s.X = append(s.X, pt[0])
			s.Y = append(s.Y, pt[1])
		}
		return s
	}
	fig := &Figure{
		ID:     "Figure11",
		Title:  "Corroboration ratios of BlameIt's diagnosis vs ground truth, per BGP path",
		XLabel: "corroboration ratio",
		YLabel: "CDF of paths",
		Series: []Series{
			mkSeries("BlameIt with BGP-path grouping", res.BGPPathRatios),
			mkSeries("BlameIt with <AS,Metro> only grouping", res.ASMetroRatios),
		},
		Notes: []string{
			fmt.Sprintf("perfect corroboration: %.0f%% of paths with BGP-path grouping vs %.0f%% with <AS,Metro> (paper: ~88%% vs far lower)",
				res.PerfectFracBGPPath*100, res.PerfectFracASMetro*100),
		},
	}
	return fig, res
}

// Fig12Result compares client-time prioritization against the oracle.
type Fig12Result struct {
	// OracleCoverage[i] is the cumulative fraction of total oracle
	// client-time covered by the top i+1 issues under oracle ranking.
	OracleCoverage []float64
	// Top5Oracle / Top5Estimate are the impact coverages when 5% of issues
	// are selected by each ranking (paper: oracle's 5% covers ~83%, and
	// BlameIt's estimate matches the oracle closely).
	Top5Oracle   float64
	Top5Estimate float64
	// Top25 coverages smooth the comparison when few episodes exist.
	Top25Oracle   float64
	Top25Estimate float64
	// Spearman is the rank correlation between estimated and oracle
	// client-time products.
	Spearman float64
	Episodes int
}

// Figure12ClientTime measures the skew of middle-issue impact and how
// closely BlameIt's estimated client-time product tracks the oracle
// (Fig. 12).
func Figure12ClientTime(mw MiddleWorkload) (*Figure, Fig12Result) {
	env, start, end := mw.Build()
	cfg := pipeline.DefaultConfig()
	cfg.BudgetPerCloudPerDay = 0
	res := env.RunMiddleEval(MiddleEvalConfig{Pipeline: cfg, WarmupDays: mw.WarmupDays, From: start, To: end})

	// One sample per (fault, path) episode, taken at the episode's middle
	// record: by then the issue's age feeds the conditional-survival
	// estimate, which is exactly when the prioritization has to separate
	// long-lived issues from fleeting ones.
	byEpisode := make(map[string][]episode)
	var order []string
	for _, rec := range res.Records {
		if rec.TruthFault < 0 {
			continue
		}
		key := fmt.Sprintf("%d|%s", rec.TruthFault, rec.PathKey)
		if _, ok := byEpisode[key]; !ok {
			order = append(order, key)
		}
		byEpisode[key] = append(byEpisode[key], episode{est: rec.EstClientTime, oracle: rec.OracleClientTime})
	}
	eps := make([]episode, 0, len(order))
	for _, k := range order {
		recs := byEpisode[k]
		eps = append(eps, recs[len(recs)/2])
	}

	var out Fig12Result
	if len(eps) == 0 {
		return &Figure{ID: "Figure12", Title: "Client-time product (no episodes)"}, out
	}
	var totalOracle float64
	for _, ep := range eps {
		totalOracle += ep.oracle
	}
	coverage := func(sorted []episode, frac float64) float64 {
		k := int(frac*float64(len(sorted)) + 0.9999)
		if k < 1 {
			k = 1
		}
		var sum float64
		for i := 0; i < k && i < len(sorted); i++ {
			sum += sorted[i].oracle
		}
		if totalOracle == 0 {
			return 0
		}
		return sum / totalOracle
	}
	byOracle := append([]episode(nil), eps...)
	sort.Slice(byOracle, func(i, j int) bool { return byOracle[i].oracle > byOracle[j].oracle })
	byEst := append([]episode(nil), eps...)
	sort.Slice(byEst, func(i, j int) bool { return byEst[i].est > byEst[j].est })

	out.Episodes = len(eps)
	out.Top5Oracle = coverage(byOracle, 0.05)
	out.Top5Estimate = coverage(byEst, 0.05)
	out.Top25Oracle = coverage(byOracle, 0.25)
	out.Top25Estimate = coverage(byEst, 0.25)
	out.Spearman = spearman(eps)
	out.OracleCoverage = make([]float64, len(byOracle))
	var run float64
	for i, ep := range byOracle {
		run += ep.oracle
		if totalOracle > 0 {
			out.OracleCoverage[i] = run / totalOracle
		}
	}

	mkSeries := func(name string, sorted []episode) Series {
		s := Series{Name: name}
		var cum float64
		for i, ep := range sorted {
			cum += ep.oracle
			s.X = append(s.X, 100*float64(i+1)/float64(len(sorted)))
			if totalOracle > 0 {
				s.Y = append(s.Y, cum/totalOracle)
			} else {
				s.Y = append(s.Y, 0)
			}
		}
		return s
	}
	fig := &Figure{
		ID:     "Figure12",
		Title:  "CDF of client-time product of middle issues (oracle vs BlameIt ranking)",
		XLabel: "% of middle-segment issues (ranked)",
		YLabel: "cumulative fraction of client-time impact",
		Series: []Series{
			mkSeries("oracle ranking", byOracle),
			mkSeries("BlameIt estimated ranking", byEst),
		},
		Notes: []string{
			fmt.Sprintf("top 5%% of issues cover %.0f%% of impact under the oracle and %.0f%% under BlameIt's estimate (paper: ~83%%, estimate ~ oracle)",
				out.Top5Oracle*100, out.Top5Estimate*100),
		},
	}
	return fig, out
}

// episode is one (fault, path) sample of estimated vs oracle client-time.
type episode struct{ est, oracle float64 }

// spearman computes the rank correlation between estimated and oracle
// client-time over the episodes.
func spearman(eps []episode) float64 {
	n := len(eps)
	if n < 2 {
		return 0
	}
	rank := func(get func(i int) float64) []float64 {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return get(idx[a]) < get(idx[b]) })
		r := make([]float64, n)
		for pos, i := range idx {
			r[i] = float64(pos)
		}
		return r
	}
	re := rank(func(i int) float64 { return eps[i].est })
	ro := rank(func(i int) float64 { return eps[i].oracle })
	var d2 float64
	for i := 0; i < n; i++ {
		d := re[i] - ro[i]
		d2 += d * d
	}
	return 1 - 6*d2/float64(n*(n*n-1))
}

// Fig13Point is one sweep setting's outcome.
type Fig13Point struct {
	PeriodBuckets netmodel.Bucket
	OnChurn       bool
	Accuracy      float64
	// ProbesPerDay counts background + churn probes per day.
	ProbesPerDay float64
}

// Fig13Result is the full frequency sweep.
type Fig13Result struct {
	Points []Fig13Point
	// ProbeReduction1012h = periodic probes(10min) / periodic probes(12h),
	// the paper's 72x background-overhead reduction (144 vs 2 probes per
	// path per day; churn-triggered and on-demand probes are counted in
	// ProbesPerDay and in the ProbeOverhead comparison).
	ProbeReduction1012h float64
	// SweetSpotAccuracy is the accuracy at 12h + churn (paper: 93%).
	SweetSpotAccuracy float64
}

// Figure13FrequencySweep measures localization accuracy and probing volume
// across background-probe frequencies, with and without churn triggers
// (Fig. 13).
func Figure13FrequencySweep(mw MiddleWorkload) (*Figure, Fig13Result) {
	periods := []netmodel.Bucket{
		2,                           // 10 min
		netmodel.BucketsPerHour,     // 1 h
		6 * netmodel.BucketsPerHour, // 6 h
		12 * netmodel.BucketsPerHour,
		24 * netmodel.BucketsPerHour,
	}
	var res Fig13Result
	var accOn, accOff, xs []float64
	days := 0.0
	var probes10min, probes12hChurn float64

	for _, churn := range []bool{true, false} {
		for _, period := range periods {
			env, start, end := mw.Build()
			cfg := pipeline.DefaultConfig()
			cfg.BudgetPerCloudPerDay = 0
			cfg.Background = probe.BackgroundConfig{PeriodBuckets: period, OnChurn: churn, ChurnDedupeBuckets: netmodel.BucketsPerHour}
			r := env.RunMiddleEval(MiddleEvalConfig{Pipeline: cfg, WarmupDays: mw.WarmupDays, From: start, To: end})
			days = float64(end) / float64(netmodel.BucketsPerDay)
			cnt := r.Pipe.Prober.Counters()
			perDay := float64(cnt.Count(probe.Background)+cnt.Count(probe.ChurnTriggered)) / days
			bgPerDay := float64(cnt.Count(probe.Background)) / days
			pt := Fig13Point{PeriodBuckets: period, OnChurn: churn, Accuracy: r.Accuracy(), ProbesPerDay: perDay}
			res.Points = append(res.Points, pt)
			if churn {
				accOn = append(accOn, pt.Accuracy)
				xs = append(xs, float64(period)*netmodel.BucketMinutes/60)
				if period == 12*netmodel.BucketsPerHour {
					probes12hChurn = bgPerDay
					res.SweetSpotAccuracy = pt.Accuracy
				}
				if period == 2 {
					probes10min = bgPerDay
				}
			} else {
				accOff = append(accOff, pt.Accuracy)
			}
		}
	}
	if probes12hChurn > 0 {
		res.ProbeReduction1012h = probes10min / probes12hChurn
	}

	fig := &Figure{
		ID:     "Figure13",
		Title:  "Active-phase accuracy vs background probing frequency",
		XLabel: "background probe period (hours)",
		YLabel: "localization accuracy",
		Series: []Series{
			{Name: "with churn-triggered probes", X: xs, Y: accOn},
			{Name: "periodic only", X: xs, Y: accOff},
		},
		Notes: []string{
			fmt.Sprintf("12h + churn accuracy = %.0f%% with %.0fx fewer probes than 10-min probing (paper: 93%% and 72x)",
				res.SweetSpotAccuracy*100, res.ProbeReduction1012h),
		},
	}
	return fig, res
}

// ProbeOverheadResult compares total probing volume across systems.
type ProbeOverheadResult struct {
	BlameItPerDay    float64
	ActiveOnlyPerDay float64
	TrinocularPerDay float64
	VsActiveOnly     float64 // paper: ~72x
	VsTrinocular     float64 // paper: ~20x
}

// ProbeOverhead measures the probing budget of BlameIt (12h background +
// churn triggers + budgeted on-demand) against the active-only continuous
// prober and the Trinocular-style adaptive prober on the same workload
// (§6.5).
func ProbeOverhead(mw MiddleWorkload) (*Table, ProbeOverheadResult) {
	var res ProbeOverheadResult

	// BlameIt.
	env, start, end := mw.Build()
	cfg := pipeline.DefaultConfig()
	r := env.RunMiddleEval(MiddleEvalConfig{Pipeline: cfg, WarmupDays: mw.WarmupDays, From: start, To: end})
	days := float64(end) / float64(netmodel.BucketsPerDay)
	res.BlameItPerDay = float64(r.Pipe.Prober.Counters().Total()) / days

	// Active-only: every path probed every 10 minutes (the volume the
	// paper rules out as prohibitive).
	env2, _, end2 := mw.Build()
	engine2 := probe.NewEngine(env2.Sim, cfg.ProbeNoiseMS)
	cp := baselines.NewContinuousProber(engine2, env2.Table, 2)
	res.ActiveOnlyPerDay = cp.ProbesPerDay()
	_ = end2

	// Trinocular-style adaptive prober, actually driven over the horizon.
	env3, _, end3 := mw.Build()
	engine3 := probe.NewEngine(env3.Sim, cfg.ProbeNoiseMS)
	tp := baselines.NewTrinocularProber(engine3, env3.Table, 2, 6)
	for b := netmodel.Bucket(0); b < end3; b++ {
		tp.Advance(b)
	}
	res.TrinocularPerDay = float64(engine3.Counters().Total()) / (float64(end3) / float64(netmodel.BucketsPerDay))

	if res.BlameItPerDay > 0 {
		res.VsActiveOnly = res.ActiveOnlyPerDay / res.BlameItPerDay
		res.VsTrinocular = res.TrinocularPerDay / res.BlameItPerDay
	}
	t := &Table{
		ID:     "ProbeOverhead",
		Title:  "Traceroute volume per day: BlameIt vs probing-only systems",
		Header: []string{"System", "Probes/day", "vs BlameIt"},
		Rows: [][]string{
			{"BlameIt (12h background + churn + on-demand)", fmtF(res.BlameItPerDay, 0), "1x"},
			{"Active probing alone (10-min continuous)", fmtF(res.ActiveOnlyPerDay, 0), fmtF(res.VsActiveOnly, 1) + "x"},
			{"Trinocular-style adaptive probing", fmtF(res.TrinocularPerDay, 0), fmtF(res.VsTrinocular, 1) + "x"},
		},
		Notes: []string{"paper: 72x fewer probes than active-only, 20x fewer than Trinocular"},
	}
	return t, res
}
