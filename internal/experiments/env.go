package experiments

import (
	"blameit/internal/bgp"
	"blameit/internal/core"
	"blameit/internal/faults"
	"blameit/internal/netmodel"
	"blameit/internal/pipeline"
	"blameit/internal/quartet"
	"blameit/internal/sim"
	"blameit/internal/topology"
	"blameit/internal/trace"
)

// Env bundles the world, routing, fault schedule and simulator that one
// experiment runs against.
type Env struct {
	World   *topology.World
	Table   *bgp.Table
	Sched   *faults.Schedule
	Sim     *sim.Simulator
	Seed    int64
	Horizon netmodel.Bucket
	// Workers is the environment's fan-out setting (see EnvConfig.Workers).
	Workers int
}

// EnvConfig parameterizes environment construction.
type EnvConfig struct {
	Scale topology.Scale
	Seed  int64
	Days  int
	Churn bgp.ChurnConfig
	// Faults is the injected schedule; nil means fault-free.
	Faults []faults.Fault
	// Workers caps the fan-out of observation generation and, via
	// NewPipeline, the Algorithm 1 job (0 = all cores, 1 = sequential).
	// Results are identical at any setting; only wall time changes.
	Workers int
}

// NewEnv builds a deterministic experiment environment.
func NewEnv(cfg EnvConfig) *Env {
	if cfg.Days < 1 {
		cfg.Days = 1
	}
	w := topology.Generate(cfg.Scale, cfg.Seed)
	horizon := netmodel.Bucket(cfg.Days * netmodel.BucketsPerDay)
	tbl := bgp.NewTable(w, cfg.Churn, horizon, cfg.Seed+1)
	scfg := sim.DefaultConfig(cfg.Seed + 2)
	scfg.Workers = cfg.Workers
	s := sim.New(w, tbl, faults.NewSchedule(cfg.Faults), scfg)
	return &Env{World: w, Table: tbl, Sched: s.Sched, Sim: s, Seed: cfg.Seed, Horizon: horizon, Workers: cfg.Workers}
}

// QuartetsAt classifies the observations of one bucket.
func (e *Env) QuartetsAt(b netmodel.Bucket, buf []trace.Observation) ([]quartet.Quartet, []trace.Observation) {
	buf = e.Sim.ObservationsAt(b, buf[:0])
	qs := make([]quartet.Quartet, len(buf))
	for i, o := range buf {
		qs[i] = quartet.Classify(o, e.World.TargetFor(o.Prefix, o.Cloud))
	}
	return qs, buf
}

// NewPipeline assembles a pipeline over the environment's simulator. A
// zero cfg.Workers inherits the environment's fan-out setting.
func (e *Env) NewPipeline(cfg pipeline.Config) *pipeline.Pipeline {
	if cfg.Workers == 0 {
		cfg.Workers = e.Workers
	}
	return pipeline.NewSim(e.Sim, cfg)
}

// IssueRecord grades one active-phase verdict against the simulator's
// ground truth. It feeds Figs. 11-13 and the probe-overhead comparison.
type IssueRecord struct {
	Bucket netmodel.Bucket
	Key    netmodel.MiddleKey
	// PathKey is the true BGP path of the probed representative (equal to
	// Key under BlameIt's grouping; coarser groupings diverge).
	PathKey netmodel.MiddleKey
	// Truth is the dominant-inflation AS at the probed client (ground
	// truth from the simulator).
	TruthAS      netmodel.ASN
	TruthSegment netmodel.Segment
	// Verdict is the active phase's output.
	Probed    bool
	OK        bool
	VerdictAS netmodel.ASN
	// Prioritization inputs.
	EstClientTime    float64
	OracleClientTime float64
	ObservedClients  int
	// TruthFault is the schedule index of the underlying fault (-1 when
	// the badness is organic).
	TruthFault int
}

// Correct reports whether the verdict named the ground-truth AS.
func (r IssueRecord) Correct() bool {
	return r.Probed && r.OK && r.VerdictAS == r.TruthAS
}

// MiddleEvalConfig drives the shared middle-issue evaluation harness.
type MiddleEvalConfig struct {
	Pipeline pipeline.Config
	// WarmupDays learn expected RTTs before anything else happens.
	WarmupDays int
	// From/To delimit the evaluated buckets (faults should lie inside).
	From, To netmodel.Bucket
	// KeyFunc optionally overrides the passive phase's middle grouping.
	KeyFunc core.MiddleKeyFunc
}

// MiddleEvalResult aggregates the harness outputs.
type MiddleEvalResult struct {
	Records []IssueRecord
	Pipe    *pipeline.Pipeline
}

// Accuracy returns the fraction of probed genuine middle issues (ground
// truth says the dominant inflation sits in the middle segment) whose
// verdict named the right AS. Failed comparisons count as wrong — they
// leave the operator without a localization. Spurious middle verdicts on
// issues whose true cause is the client or cloud segment are a passive-
// phase concern and are excluded here, matching the paper's Fig. 13 scope.
func (r *MiddleEvalResult) Accuracy() float64 {
	probed, correct := 0, 0
	for _, rec := range r.Records {
		if !rec.Probed || rec.TruthSegment != netmodel.SegMiddle {
			continue
		}
		probed++
		if rec.Correct() {
			correct++
		}
	}
	if probed == 0 {
		return 0
	}
	return float64(correct) / float64(probed)
}

// RunMiddleEval runs the pipeline over the evaluation window, grading
// every active-phase verdict against simulator ground truth.
func (e *Env) RunMiddleEval(cfg MiddleEvalConfig) *MiddleEvalResult {
	p := e.NewPipeline(cfg.Pipeline)
	if cfg.KeyFunc != nil {
		p.SetMiddleKeyFunc(cfg.KeyFunc)
	}
	warmupEnd := netmodel.Bucket(cfg.WarmupDays * netmodel.BucketsPerDay)
	p.Warmup(0, warmupEnd)
	res := &MiddleEvalResult{Pipe: p}
	start := warmupEnd
	if cfg.From > start {
		start = cfg.From
	}
	// Drive the pre-window period (baseline establishment) quietly.
	if warmupEnd < cfg.From {
		p.Run(warmupEnd, cfg.From, nil)
	}
	p.Run(start, cfg.To, func(rep *pipeline.Report) {
		for _, v := range rep.Verdicts {
			rec := IssueRecord{
				Bucket:          rep.To,
				Key:             v.Issue.Key,
				PathKey:         v.Issue.Path.Key(),
				Probed:          v.Probed,
				OK:              v.OK,
				VerdictAS:       v.AS,
				EstClientTime:   v.Issue.ClientTime,
				ObservedClients: v.Issue.ObservedClients,
				TruthFault:      -1,
			}
			// Ground truth at the probed client.
			target := v.Issue.Prefixes[0]
			inf := e.Sim.DominantInflation(target, v.Issue.Cloud, rep.To)
			rec.TruthAS = inf.AS
			rec.TruthSegment = inf.Segment
			// Oracle client-time: the real remaining duration of the
			// underlying fault times the clients observed on the path now.
			if f, ok := e.activeMiddleFault(target, v.Issue.Cloud, rep.To); ok {
				rec.TruthFault = f.ID
				rec.OracleClientTime = float64(f.End()-rep.To) * float64(v.Issue.ObservedClients)
			}
			res.Records = append(res.Records, rec)
		}
	})
	return res
}

// activeMiddleFault finds the middle fault affecting (prefix, cloud) at a
// bucket, if any.
func (e *Env) activeMiddleFault(p netmodel.PrefixID, c netmodel.CloudID, b netmodel.Bucket) (faults.Fault, bool) {
	path := e.Table.PathAtForPrefix(c, p, b)
	for _, f := range e.Sched.Faults {
		if f.Kind != faults.MiddleASFault || !f.ActiveAt(b) {
			continue
		}
		if f.ScopeCloud != faults.NoCloud && f.ScopeCloud != c {
			continue
		}
		for _, m := range path.Middle {
			if m == f.AS {
				return f, true
			}
		}
	}
	return faults.Fault{}, false
}
