package experiments

import (
	"testing"

	"blameit/internal/netmodel"
	"blameit/internal/pipeline"
	"blameit/internal/topology"
)

func smallWorkload(n int) MiddleWorkload {
	return DefaultMiddleWorkload(topology.SmallScale(), 42, n)
}

func TestMiddleWorkloadBuild(t *testing.T) {
	mw := smallWorkload(5)
	env, start, end := mw.Build()
	if start != 2*netmodel.BucketsPerDay {
		t.Errorf("start = %d", start)
	}
	if end <= start {
		t.Fatal("empty window")
	}
	if len(env.Sched.Faults) != 5 {
		t.Fatalf("faults = %d", len(env.Sched.Faults))
	}
	// Faults must be sequential and inside the window.
	for i, f := range env.Sched.Faults {
		if f.Start < start || f.End() > end {
			t.Error("fault outside window")
		}
		if i > 0 && f.Start < env.Sched.Faults[i-1].End() {
			t.Error("overlapping faults")
		}
	}
}

func TestRunMiddleEvalAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("middle eval in -short mode")
	}
	mw := smallWorkload(12)
	env, start, end := mw.Build()
	pcfg := pipeline.DefaultConfig()
	pcfg.BudgetPerCloudPerDay = 0
	res := env.RunMiddleEval(MiddleEvalConfig{Pipeline: pcfg, WarmupDays: mw.WarmupDays, From: start, To: end})
	if len(res.Records) == 0 {
		t.Fatal("no records")
	}
	// Count records tied to real faults and their correctness.
	var onFault, correct int
	for _, rec := range res.Records {
		if rec.TruthFault >= 0 {
			onFault++
			if rec.Correct() {
				correct++
			}
		}
	}
	if onFault == 0 {
		t.Fatal("no fault-attributed records")
	}
	if frac := float64(correct) / float64(onFault); frac < 0.7 {
		t.Errorf("fault-record accuracy = %.2f", frac)
	}
	t.Logf("records=%d onFault=%d correct=%d overall-acc=%.2f", len(res.Records), onFault, correct, res.Accuracy())
}

func TestFigure11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig11 in -short mode")
	}
	fig, res := Figure11Corroboration(smallWorkload(25))
	if len(res.BGPPathRatios) == 0 {
		t.Fatal("no paths graded")
	}
	if res.PerfectFracBGPPath <= res.PerfectFracASMetro {
		t.Errorf("BGP-path grouping (%.2f perfect) must beat <AS,Metro> (%.2f)",
			res.PerfectFracBGPPath, res.PerfectFracASMetro)
	}
	if res.PerfectFracBGPPath < 0.6 {
		t.Errorf("BGP-path perfect corroboration = %.2f, want high", res.PerfectFracBGPPath)
	}
	if len(fig.Series) != 2 {
		t.Error("want two series")
	}
	t.Logf("fig11: perfect bgp=%.2f asmetro=%.2f paths=%d/%d",
		res.PerfectFracBGPPath, res.PerfectFracASMetro, len(res.BGPPathRatios), len(res.ASMetroRatios))
}

func TestFigure12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig12 in -short mode")
	}
	_, res := Figure12ClientTime(smallWorkload(25))
	if len(res.OracleCoverage) == 0 {
		t.Fatal("no episodes")
	}
	// Impact is skewed: a minority of issues carries the bulk.
	if res.Top5Oracle <= 0.05 {
		t.Errorf("top-5%% oracle coverage = %.2f, no skew", res.Top5Oracle)
	}
	// BlameIt's estimated ranking must track the oracle: positive rank
	// correlation and comparable coverage at a quarter of the issues (the
	// 5% point is a single episode at this scale, so it is only logged).
	if res.Spearman < 0.2 {
		t.Errorf("spearman = %.2f, want positive correlation with oracle", res.Spearman)
	}
	if res.Top25Estimate < res.Top25Oracle*0.4 {
		t.Errorf("top-25%% estimate coverage %.2f far below oracle %.2f", res.Top25Estimate, res.Top25Oracle)
	}
	t.Logf("fig12: top5 oracle=%.2f est=%.2f; top25 oracle=%.2f est=%.2f; spearman=%.2f episodes=%d",
		res.Top5Oracle, res.Top5Estimate, res.Top25Oracle, res.Top25Estimate, res.Spearman, res.Episodes)
}

func TestFigure13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig13 sweep in -short mode")
	}
	_, res := Figure13FrequencySweep(smallWorkload(15))
	if len(res.Points) != 10 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Probing volume must fall monotonically with period (within churn
	// class), and the 72x-style reduction must be large.
	if res.ProbeReduction1012h < 30 {
		t.Errorf("probe reduction = %.1fx, want large (paper: 72x)", res.ProbeReduction1012h)
	}
	if res.SweetSpotAccuracy < 0.75 {
		t.Errorf("sweet-spot accuracy = %.2f", res.SweetSpotAccuracy)
	}
	// Accuracy with churn triggers at 12h must beat periodic-only at 12h.
	var acc12On, acc12Off float64
	for _, pt := range res.Points {
		if pt.PeriodBuckets == 12*netmodel.BucketsPerHour {
			if pt.OnChurn {
				acc12On = pt.Accuracy
			} else {
				acc12Off = pt.Accuracy
			}
		}
	}
	if acc12On < acc12Off {
		t.Errorf("churn triggers must not hurt accuracy (%.2f vs %.2f)", acc12On, acc12Off)
	}
	for _, pt := range res.Points {
		t.Logf("fig13: period=%3dh churn=%-5v acc=%.2f probes/day=%.0f",
			int(pt.PeriodBuckets)/netmodel.BucketsPerHour, pt.OnChurn, pt.Accuracy, pt.ProbesPerDay)
	}
}

func TestProbeOverheadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("probe overhead in -short mode")
	}
	tbl, res := ProbeOverhead(smallWorkload(12))
	if res.BlameItPerDay <= 0 {
		t.Fatal("no BlameIt probes")
	}
	if res.VsActiveOnly < 10 {
		t.Errorf("active-only overhead advantage = %.1fx, want large (paper: 72x)", res.VsActiveOnly)
	}
	if res.VsTrinocular < 3 {
		t.Errorf("trinocular advantage = %.1fx, want large (paper: 20x)", res.VsTrinocular)
	}
	if res.VsTrinocular >= res.VsActiveOnly {
		t.Error("trinocular must be cheaper than blind continuous probing")
	}
	if len(tbl.Rows) != 3 {
		t.Error("table rows")
	}
	t.Logf("probes/day: blameit=%.0f activeonly=%.0f trinocular=%.0f (%.0fx / %.0fx)",
		res.BlameItPerDay, res.ActiveOnlyPerDay, res.TrinocularPerDay, res.VsActiveOnly, res.VsTrinocular)
}
