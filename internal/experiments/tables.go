package experiments

import (
	"blameit/internal/netmodel"
	"blameit/internal/trace"
)

// Table1Properties reproduces Table 1: the qualitative comparison of
// BlameIt with prior network-diagnosis solutions on the desired
// properties. The matrix is transcribed from the paper; the reproduction
// implements BlameIt plus the probing comparators so the quantitative
// claims behind the last rows can be regenerated (see ProbeOverhead).
func Table1Properties() *Table {
	yes, no := "yes", "no"
	return &Table{
		ID:     "Table1",
		Title:  "Comparison with prior network diagnosis solutions",
		Header: []string{"Desired property", "BlameIt", "Tomography", "EdgeFabric", "PlanetSeer", "iPlane", "Trinocular", "Odin", "WhyHigh"},
		Rows: [][]string{
			{"Latency degradation", yes, yes, yes, no, yes, no, yes, yes},
			{"Internet scale", yes, no, yes, no, no, yes, yes, yes},
			{"Work with insufficient coverage", yes, no, yes, yes, no, yes, yes, yes},
			{"Automated root-cause diagnosis", yes, yes, no, yes, yes, yes, yes, no},
			{"Diagnosis with low latency", yes, no, yes, no, no, yes, yes, no},
			{"Triggered timely probes", yes, no, no, yes, no, no, no, no},
			{"Impact-prioritized probes", yes, no, no, no, no, no, no, no},
		},
		Notes: []string{
			"transcribed from the paper; the tomography and probing comparators are implemented in internal/tomography and internal/baselines",
		},
	}
}

// DatasetStats are the Table 2 counts measured on the synthetic world.
type DatasetStats struct {
	RTTMeasurements int64
	ClientIPs       int64
	Client24s       int
	BGPPrefixes     int
	ClientASes      int
	ClientMetros    int
	Days            int
}

// MeasureDataset computes Table 2's rows over the given number of
// simulated days. RTT volume is measured on day 0 and scaled (the
// generator is stationary across days up to diurnal shape).
func MeasureDataset(e *Env, days int) DatasetStats {
	st := e.World.Stats()
	var samples int64
	var buf []trace.Observation
	for b := netmodel.Bucket(0); b < netmodel.BucketsPerDay; b++ {
		buf = e.Sim.ObservationsAt(b, buf[:0])
		for _, o := range buf {
			samples += int64(o.Samples)
		}
	}
	return DatasetStats{
		RTTMeasurements: samples * int64(days),
		ClientIPs:       int64(st.Clients),
		Client24s:       st.Prefix24s,
		BGPPrefixes:     st.BGPPrefixes,
		ClientASes:      st.EyeballASes,
		ClientMetros:    st.Metros,
		Days:            days,
	}
}

// Table2Dataset renders the dataset summary in the shape of Table 2.
func Table2Dataset(e *Env, days int) (*Table, DatasetStats) {
	ds := MeasureDataset(e, days)
	t := &Table{
		ID:     "Table2",
		Title:  "Details of the dataset analyzed (synthetic substrate)",
		Header: []string{"Quantity", "Value"},
		Rows: [][]string{
			{"# RTT measurements", fmtInt(ds.RTTMeasurements)},
			{"# client IPs (active)", fmtInt(ds.ClientIPs)},
			{"# client IP /24's", fmtInt(int64(ds.Client24s))},
			{"# BGP prefixes", fmtInt(int64(ds.BGPPrefixes))},
			{"# client AS'es", fmtInt(int64(ds.ClientASes))},
			{"# client metros", fmtInt(int64(ds.ClientMetros))},
			{"# days", fmtInt(int64(ds.Days))},
		},
		Notes: []string{
			"the paper's production dataset is O(10^12) RTTs from O(10^8) IPs; the synthetic world preserves the structural skew at laptop scale",
		},
	}
	return t, ds
}
