package experiments

import (
	"fmt"
	"sort"

	"blameit/internal/stats"
)

// durationDist aggregates incident run lengths without retaining one
// sample per incident (the ROADMAP item 2 leftover). Memory is bounded
// two ways: the exact integer-valued distribution lives in a counts map
// whose support is capped by the horizon (an incident cannot outlast the
// evaluated window), and the quantile sketch is a P² StreamingSummary in
// O(1). The counts keep the figure CDFs exact; the sketch is what an
// unbounded deployment would report, and the tests pin the two together.
type durationDist struct {
	counts map[int]int
	n      int
	sum    float64
	stream *stats.StreamingSummary
}

func newDurationDist() *durationDist {
	return &durationDist{counts: make(map[int]int), stream: stats.NewStreamingSummary()}
}

// add records one incident of d consecutive buckets.
func (dd *durationDist) add(d int) {
	dd.counts[d]++
	dd.n++
	dd.sum += float64(d)
	dd.stream.Add(float64(d))
}

// sortedKeys returns the distinct durations ascending.
func (dd *durationDist) sortedKeys() []int {
	keys := make([]int, 0, len(dd.counts))
	for d := range dd.counts {
		keys = append(keys, d)
	}
	sort.Ints(keys)
	return keys
}

// exactSummary computes the same Summary stats.Summarize would return for
// the expanded sample, directly from the counts (interpolated order
// statistics, never materializing n values).
func (dd *durationDist) exactSummary() stats.Summary {
	if dd.n == 0 {
		return stats.Summary{}
	}
	keys := dd.sortedKeys()
	// valueAt(i) is the i'th order statistic of the expanded sample.
	valueAt := func(i int) float64 {
		cum := 0
		for _, d := range keys {
			cum += dd.counts[d]
			if i < cum {
				return float64(d)
			}
		}
		return float64(keys[len(keys)-1])
	}
	quantile := func(q float64) float64 {
		if dd.n == 1 || q <= 0 {
			return valueAt(0)
		}
		if q >= 1 {
			return valueAt(dd.n - 1)
		}
		pos := q * float64(dd.n-1)
		lo := int(pos)
		a := valueAt(lo)
		b := valueAt(lo + 1)
		v := a + (pos-float64(lo))*(b-a)
		if v < a {
			v = a
		} else if v > b {
			v = b
		}
		return v
	}
	return stats.Summary{
		N:    dd.n,
		Mean: dd.sum / float64(dd.n),
		Min:  float64(keys[0]),
		Max:  float64(keys[len(keys)-1]),
		P10:  quantile(0.10),
		P50:  quantile(0.50),
		P90:  quantile(0.90),
		P99:  quantile(0.99),
	}
}

// cdfSeries renders the exact empirical CDF, one point per distinct
// duration.
func (dd *durationDist) cdfSeries(name string) Series {
	s := Series{Name: name}
	cum := 0
	for _, d := range dd.sortedKeys() {
		cum += dd.counts[d]
		s.X = append(s.X, float64(d))
		s.Y = append(s.Y, float64(cum)/float64(dd.n))
	}
	return s
}

// sketchNote renders the exact-vs-sketch quantile agreement for a note.
func (dd *durationDist) sketchNote(label string) string {
	ex, st := dd.exactSummary(), dd.stream.Summary()
	return fmt.Sprintf("%s: p50 %.1f (sketch %.1f), p99 %.1f (sketch %.1f) over %d incidents",
		label, ex.P50, st.P50, ex.P99, st.P99, dd.n)
}
