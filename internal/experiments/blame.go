package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"blameit/internal/core"
	"blameit/internal/faults"
	"blameit/internal/netmodel"
	"blameit/internal/pipeline"
	"blameit/internal/quartet"
	"blameit/internal/stats"
)

// Fig8Result carries daily blame fractions over the run.
type Fig8Result struct {
	Days int
	// Daily[cat][day] is the fraction of that day's verdicts in the
	// category.
	Daily map[core.Blame][]float64
	// MaintenanceDay is the day with the injected cloud maintenance surge
	// (-1 if none).
	MaintenanceDay int
}

// Figure8BlameFractions runs the pipeline over `days` days and reports the
// daily mix of blame categories (Fig. 8). The environment's schedule
// should carry background random faults; a cloud-maintenance surge day can
// be marked for the day-24 annotation.
func Figure8BlameFractions(e *Env, warmupDays, days, maintenanceDay int) (*Figure, Fig8Result) {
	p := e.NewPipeline(pipeline.DefaultConfig())
	warmupEnd := netmodel.Bucket(warmupDays * netmodel.BucketsPerDay)
	p.Warmup(0, warmupEnd)

	counts := make([]map[core.Blame]int, days)
	for i := range counts {
		counts[i] = make(map[core.Blame]int)
	}
	p.Run(warmupEnd, warmupEnd+netmodel.Bucket(days*netmodel.BucketsPerDay), func(rep *pipeline.Report) {
		day := int((rep.To - warmupEnd) / netmodel.BucketsPerDay)
		if day < 0 || day >= days {
			return
		}
		for _, r := range rep.Results {
			counts[day][r.Blame]++
		}
	})

	res := Fig8Result{Days: days, Daily: make(map[core.Blame][]float64), MaintenanceDay: maintenanceDay}
	for _, cat := range core.Categories() {
		res.Daily[cat] = make([]float64, days)
	}
	for day := 0; day < days; day++ {
		total := 0
		for _, n := range counts[day] {
			total += n
		}
		if total == 0 {
			continue
		}
		for _, cat := range core.Categories() {
			res.Daily[cat][day] = float64(counts[day][cat]) / float64(total)
		}
	}

	xs := make([]float64, days)
	for i := range xs {
		xs[i] = float64(i)
	}
	fig := &Figure{
		ID:     "Figure8",
		Title:  "Blame fractions over a one-month period",
		XLabel: "day",
		YLabel: "fraction of bad quartets",
	}
	for _, cat := range core.Categories() {
		fig.Series = append(fig.Series, Series{Name: cat.String(), X: xs, Y: res.Daily[cat]})
	}
	if maintenanceDay >= 0 {
		fig.Notes = append(fig.Notes, fmt.Sprintf("cloud fractions spike around day %d due to the scheduled maintenance surge", maintenanceDay))
	}
	return fig, res
}

// Fig8Schedule builds the one-month background schedule with the paper's
// day-24 cloud-maintenance surge.
func Fig8Schedule(e *Env, warmupDays, days, maintenanceDay int, seed int64) []faults.Fault {
	horizon := netmodel.Bucket((warmupDays + days) * netmodel.BucketsPerDay)
	base := faults.Generate(e.World, faults.DefaultGenerateConfig(), horizon, seed)
	fs := append([]faults.Fault(nil), base.Faults...)
	if maintenanceDay >= 0 {
		r := rand.New(rand.NewSource(seed + 99))
		day := netmodel.Bucket((warmupDays + maintenanceDay) * netmodel.BucketsPerDay)
		// A maintenance wave across several locations.
		for i := 0; i < 1+len(e.World.Clouds)/4; i++ {
			c := e.World.Clouds[r.Intn(len(e.World.Clouds))]
			fs = append(fs, faults.Fault{
				Kind: faults.CloudFault, Cloud: c.ID, ScopeCloud: faults.NoCloud,
				Start:    day + netmodel.Bucket(r.Intn(netmodel.BucketsPerDay/2)),
				Duration: netmodel.Bucket(3*netmodel.BucketsPerHour + r.Intn(6*netmodel.BucketsPerHour)),
				ExtraMS:  50 + 40*r.Float64(),
				Desc:     fmt.Sprintf("scheduled maintenance at %s", c.Name),
			})
		}
	}
	return fs
}

// Fig9Result carries per-region blame fractions for one day.
type Fig9Result struct {
	// Frac[region][category] sums to 1 per region.
	Frac map[netmodel.Region]map[core.Blame]float64
}

// Figure9RegionalBlame runs one day and splits blame fractions by client
// region (Fig. 9). The environment's schedule should boost middle faults
// in India, China and Brazil (see Fig9Schedule).
func Figure9RegionalBlame(e *Env, warmupDays int) (*Figure, Fig9Result) {
	p := e.NewPipeline(pipeline.DefaultConfig())
	warmupEnd := netmodel.Bucket(warmupDays * netmodel.BucketsPerDay)
	p.Warmup(0, warmupEnd)

	counts := make(map[netmodel.Region]map[core.Blame]int)
	p.Run(warmupEnd, warmupEnd+netmodel.BucketsPerDay, func(rep *pipeline.Report) {
		for _, r := range rep.Results {
			reg := e.World.PrefixRegion(r.Q.Obs.Prefix)
			if counts[reg] == nil {
				counts[reg] = make(map[core.Blame]int)
			}
			counts[reg][r.Blame]++
		}
	})

	res := Fig9Result{Frac: make(map[netmodel.Region]map[core.Blame]float64)}
	fig := &Figure{
		ID:     "Figure9",
		Title:  "Blame fractions for one day across regions",
		XLabel: "region index (" + regionList() + ")",
		YLabel: "fraction of bad quartets",
	}
	for _, cat := range core.Categories() {
		s := Series{Name: cat.String()}
		for _, reg := range netmodel.AllRegions() {
			total := 0
			for _, n := range counts[reg] {
				total += n
			}
			frac := 0.0
			if total > 0 {
				frac = float64(counts[reg][cat]) / float64(total)
			}
			if res.Frac[reg] == nil {
				res.Frac[reg] = make(map[core.Blame]float64)
			}
			res.Frac[reg][cat] = frac
			s.X = append(s.X, float64(reg))
			s.Y = append(s.Y, frac)
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes, "middle-segment fractions dominate in India, China and Brazil (still-evolving transit networks)")
	return fig, res
}

// Fig9Schedule builds a one-day schedule with middle faults boosted in the
// regions the paper singles out.
func Fig9Schedule(e *Env, warmupDays int, seed int64) []faults.Fault {
	cfg := faults.DefaultGenerateConfig()
	// Tame the base middle rate so one day's randomness cannot drown the
	// regional contrast, then boost the three regions the paper singles
	// out for still-evolving transit networks.
	cfg.Rates.MiddleASPerDay = 10
	cfg.MiddleRegionBoost = map[netmodel.Region]float64{
		netmodel.RegionIndia:  12,
		netmodel.RegionChina:  12,
		netmodel.RegionBrazil: 12,
	}
	horizon := netmodel.Bucket((warmupDays + 1) * netmodel.BucketsPerDay)
	fs := faults.Generate(e.World, cfg, horizon, seed).Faults
	// The boosted regions additionally carry sustained transit trouble
	// throughout the day — the "still-evolving transit networks" the paper
	// describes — so their middle fractions dominate as in Fig. 9.
	r := rand.New(rand.NewSource(seed + 5))
	day := netmodel.Bucket(warmupDays * netmodel.BucketsPerDay)
	for _, reg := range []netmodel.Region{netmodel.RegionIndia, netmodel.RegionChina, netmodel.RegionBrazil} {
		transits := e.World.Transits[reg]
		for i := 0; i < 8; i++ {
			as := transits[r.Intn(len(transits))]
			fs = append(fs, faults.Fault{
				Kind: faults.MiddleASFault, AS: as, ScopeCloud: faults.NoCloud,
				Start:    day + netmodel.Bucket(r.Intn(netmodel.BucketsPerDay-40)),
				Duration: netmodel.Bucket(18 + r.Intn(30)),
				ExtraMS:  40 + 60*r.Float64(),
				Desc:     fmt.Sprintf("sustained transit trouble in %s", e.World.ASes[as].Name),
			})
		}
	}
	return fs
}

// Fig10Result carries incident durations split by blame category. Like
// Fig4aResult, the per-category aggregators are bounded-memory: exact
// integer duration counts plus a P² streaming sketch per category, no
// retained per-incident samples.
type Fig10Result struct {
	// Counts[cat][d] is the number of cat-blamed incidents lasting
	// exactly d consecutive 5-min buckets.
	Counts map[core.Blame]map[int]int
	// Exact summarizes Counts[cat]; Streamed is the matching P² sketch.
	Exact, Streamed map[core.Blame]stats.Summary
}

// Incidents returns the incident count of one category.
func (r Fig10Result) Incidents(cat core.Blame) int { return r.Exact[cat].N }

// Figure10DurationByCategory tracks how long cloud, middle and client
// issues last (Fig. 10): per ⟨prefix, cloud, device⟩ tuple, consecutive
// bad buckets are one incident, categorized by its majority blame.
func Figure10DurationByCategory(e *Env, warmupDays, days int) (*Figure, Fig10Result) {
	p := e.NewPipeline(pipeline.DefaultConfig())
	warmupEnd := netmodel.Bucket(warmupDays * netmodel.BucketsPerDay)
	p.Warmup(0, warmupEnd)

	type run struct {
		last   netmodel.Bucket
		length int
		votes  map[core.Blame]int
	}
	open := make(map[quartet.Key]*run)
	dists := make(map[core.Blame]*durationDist)
	closeRun := func(r *run) {
		best, bestN := core.BlameNone, -1
		for cat, n := range r.votes {
			if n > bestN || (n == bestN && cat < best) {
				best, bestN = cat, n
			}
		}
		dd := dists[best]
		if dd == nil {
			dd = newDurationDist()
			dists[best] = dd
		}
		dd.add(r.length)
	}
	p.Run(warmupEnd, warmupEnd+netmodel.Bucket(days*netmodel.BucketsPerDay), func(rep *pipeline.Report) {
		// Collect this window's bad keys with their blame votes, bucket by
		// bucket.
		byBucket := make(map[netmodel.Bucket]map[quartet.Key]core.Blame)
		for _, r := range rep.Results {
			b := r.Q.Obs.Bucket
			if byBucket[b] == nil {
				byBucket[b] = make(map[quartet.Key]core.Blame)
			}
			byBucket[b][quartet.KeyOf(r.Q.Obs)] = r.Blame
		}
		for b := rep.From; b <= rep.To; b++ {
			bad := byBucket[b]
			for k, r := range open {
				if _, still := bad[k]; !still && r.last < b-1 {
					closeRun(r)
					delete(open, k)
				}
			}
			for k, blame := range bad {
				r, ok := open[k]
				if !ok || r.last < b-1 {
					if ok {
						closeRun(r)
					}
					r = &run{votes: make(map[core.Blame]int)}
					open[k] = r
				}
				r.last = b
				r.length++
				r.votes[blame]++
			}
		}
	})
	for _, r := range open {
		closeRun(r)
	}

	res := Fig10Result{
		Counts:   make(map[core.Blame]map[int]int),
		Exact:    make(map[core.Blame]stats.Summary),
		Streamed: make(map[core.Blame]stats.Summary),
	}
	fig := &Figure{
		ID:     "Figure10",
		Title:  "Duration of cloud, middle and client segment issues",
		XLabel: "consecutive 5-min buckets",
		YLabel: "CDF",
	}
	for cat, dd := range dists {
		res.Counts[cat] = dd.counts
		res.Exact[cat] = dd.exactSummary()
		res.Streamed[cat] = dd.stream.Summary()
	}
	for _, cat := range []core.Blame{core.BlameCloud, core.BlameMiddle, core.BlameClient} {
		dd := dists[cat]
		if dd == nil || dd.n == 0 {
			continue
		}
		fig.Series = append(fig.Series, dd.cdfSeries(cat.String()))
		fig.Notes = append(fig.Notes, dd.sketchNote(cat.String()))
	}
	return fig, res
}

// CaseOutcome grades one §6.3-style incident.
type CaseOutcome struct {
	Name         string
	TruthSegment netmodel.Segment
	TruthAS      netmodel.ASN
	// Localized reports whether any segment category won votes at all.
	Localized      bool
	BlamedSegment  netmodel.Segment
	Confidence     float64 // fraction of affected verdicts in the majority category
	CorrectSegment bool
	// ActiveAS is the most common AS named by the active phase during the
	// incident (middle incidents only).
	ActiveAS        netmodel.ASN
	CorrectActiveAS bool
}

// blameToSegment maps a blame category to its network segment.
func blameToSegment(b core.Blame) (netmodel.Segment, bool) {
	switch b {
	case core.BlameCloud:
		return netmodel.SegCloud, true
	case core.BlameMiddle:
		return netmodel.SegMiddle, true
	case core.BlameClient:
		return netmodel.SegClient, true
	default:
		return 0, false
	}
}

// affectedByScenario reports whether a verdict's quartet is implicated by
// the scenario's fault.
func affectedByScenario(e *Env, sc faults.Scenario, r core.Result) bool {
	o := r.Q.Obs
	switch sc.Fault.Kind {
	case faults.CloudFault:
		return o.Cloud == sc.Fault.Cloud
	case faults.ClientASFault:
		return e.World.Prefixes[o.Prefix].AS == sc.Fault.AS
	case faults.ClientPrefixFault:
		return o.Prefix == sc.Fault.Prefix
	case faults.MiddleASFault:
		if sc.Fault.ScopeCloud != faults.NoCloud && sc.Fault.ScopeCloud != o.Cloud {
			return false
		}
		for _, m := range r.Path.Middle {
			if m == sc.Fault.AS {
				return true
			}
		}
		return false
	case faults.TrafficShift:
		for _, p := range sc.Fault.ShiftPrefixes {
			if p == o.Prefix {
				return true
			}
		}
		return false
	}
	return false
}

// validMiddleAS reports whether a blamed AS is a genuine culprit for a
// middle-segment scenario. A MiddleASFault has exactly one culprit; a
// TrafficShift inflates the first middle AS of every shifted path, so any
// of those long-haul carriers is a correct answer.
func validMiddleAS(e *Env, sc faults.Scenario, as netmodel.ASN) bool {
	switch sc.Fault.Kind {
	case faults.MiddleASFault:
		return as == sc.Fault.AS
	case faults.TrafficShift:
		for _, p := range sc.Fault.ShiftPrefixes {
			path := e.World.InitialPath(sc.Fault.Cloud, e.World.Prefixes[p].BGPPrefix)
			if len(path.Middle) > 0 && path.Middle[0] == as {
				return true
			}
		}
		return false
	default:
		return as == sc.Truth.AS
	}
}

// RunCases replays a set of non-overlapping scenarios through one pipeline
// run and grades each against its ground truth. This reproduces the §6.3
// validation: the paper reports BlameIt matched the manual investigation
// in all 88 incidents.
func RunCases(e *Env, scenarios []faults.Scenario, warmupDays int) []CaseOutcome {
	p := e.NewPipeline(pipeline.DefaultConfig())
	warmupEnd := netmodel.Bucket(warmupDays * netmodel.BucketsPerDay)
	p.Warmup(0, warmupEnd)

	// Sort scenarios by start and find the full span.
	scs := append([]faults.Scenario(nil), scenarios...)
	sort.Slice(scs, func(i, j int) bool { return scs[i].Fault.Start < scs[j].Fault.Start })
	end := warmupEnd
	for _, sc := range scs {
		if sc.Fault.End() > end {
			end = sc.Fault.End()
		}
	}

	votes := make([]map[core.Blame]int, len(scs))
	activeVotes := make([]map[netmodel.ASN]int, len(scs))
	for i := range votes {
		votes[i] = make(map[core.Blame]int)
		activeVotes[i] = make(map[netmodel.ASN]int)
	}
	p.Run(warmupEnd, end, func(rep *pipeline.Report) {
		for i, sc := range scs {
			// Skip the first couple of buckets: thresholds need the issue
			// to be established.
			if rep.To < sc.Fault.Start+2 || rep.To >= sc.Fault.End() {
				continue
			}
			for _, r := range rep.Results {
				if affectedByScenario(e, sc, r) {
					votes[i][r.Blame]++
				}
			}
			for _, v := range rep.Verdicts {
				if v.Probed && v.OK {
					activeVotes[i][v.AS]++
				}
			}
		}
	})

	out := make([]CaseOutcome, len(scs))
	for i, sc := range scs {
		co := CaseOutcome{Name: sc.Name, TruthSegment: sc.Truth.Segment, TruthAS: sc.Truth.AS, Localized: false}
		// Majority over the three segment categories; insufficient and
		// ambiguous verdicts count against the confidence denominator (the
		// paper's Italy case reports confidence this way) but cannot win.
		total, best, bestN := 0, core.BlameNone, 0
		for cat, n := range votes[i] {
			total += n
			if _, ok := blameToSegment(cat); !ok {
				continue
			}
			if n > bestN {
				best, bestN = cat, n
			}
		}
		if total > 0 {
			co.Confidence = float64(bestN) / float64(total)
		}
		if seg, ok := blameToSegment(best); ok {
			co.Localized = true
			co.BlamedSegment = seg
			co.CorrectSegment = seg == sc.Truth.Segment
		}
		if sc.Truth.Segment == netmodel.SegMiddle {
			bestAS, bestASN := netmodel.ASN(0), 0
			for as, n := range activeVotes[i] {
				if n > bestASN {
					bestAS, bestASN = as, n
				}
			}
			co.ActiveAS = bestAS
			co.CorrectActiveAS = validMiddleAS(e, sc, bestAS)
		}
		out[i] = co
	}
	return out
}

// CasesTable renders case outcomes in a table.
func CasesTable(outcomes []CaseOutcome) *Table {
	t := &Table{
		ID:     "CaseStudies",
		Title:  "Incident validation (BlameIt vs ground truth)",
		Header: []string{"Incident", "Truth", "BlameIt", "Confidence", "Segment OK", "Culprit AS OK"},
	}
	correct := 0
	for _, co := range outcomes {
		asOK := "-"
		if co.TruthSegment == netmodel.SegMiddle {
			asOK = fmt.Sprintf("%v", co.CorrectActiveAS)
		}
		t.Rows = append(t.Rows, []string{
			co.Name, co.TruthSegment.String(), co.BlamedSegment.String(),
			fmtPct(co.Confidence), fmt.Sprintf("%v", co.CorrectSegment), asOK,
		})
		if co.CorrectSegment {
			correct++
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d/%d incidents localized to the correct segment (paper: 88/88)", correct, len(outcomes)))
	return t
}
