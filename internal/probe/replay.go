package probe

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"blameit/internal/metrics"
	"blameit/internal/netmodel"
)

// Record is one recorded traceroute: the request that triggered it and the
// result it produced. A log of Records captures everything the active phase
// learned from the network, which is what lets a Replayer stand in for the
// live engine.
type Record struct {
	Cloud   netmodel.CloudID  `json:"cloud"`
	Prefix  netmodel.PrefixID `json:"prefix"`
	Bucket  netmodel.Bucket   `json:"bucket"`
	Purpose Purpose           `json:"purpose"`
	Result  Traceroute        `json:"result"`
}

// Recorder wraps a Prober and logs every traceroute issued through it, for
// later replay. Counters delegate to the wrapped prober.
type Recorder struct {
	base Prober
	log  []Record
}

var _ Prober = (*Recorder)(nil)

// NewRecorder wraps a prober with probe logging.
func NewRecorder(base Prober) *Recorder { return &Recorder{base: base} }

// Traceroute issues the probe through the wrapped prober and logs it.
func (r *Recorder) Traceroute(c netmodel.CloudID, p netmodel.PrefixID, b netmodel.Bucket, purpose Purpose) Traceroute {
	tr := r.base.Traceroute(c, p, b, purpose)
	r.log = append(r.log, Record{Cloud: c, Prefix: p, Bucket: b, Purpose: purpose, Result: tr})
	return tr
}

// Counters returns the wrapped prober's accounting.
func (r *Recorder) Counters() *Counters { return r.base.Counters() }

// Log returns the recorded probes in issue order.
func (r *Recorder) Log() []Record { return r.log }

// WriteJSONL writes the recorded probes as JSON Lines.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range r.log {
		if err := enc.Encode(&r.log[i]); err != nil {
			return fmt.Errorf("probe: encoding record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadRecordsJSONL reads a probe log written by Recorder.WriteJSONL.
func ReadRecordsJSONL(rd io.Reader) ([]Record, error) {
	dec := json.NewDecoder(bufio.NewReader(rd))
	var out []Record
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("probe: decoding record %d (byte offset %d): %w", len(out), dec.InputOffset(), err)
		}
		out = append(out, rec)
	}
}

// replayKey identifies a recorded probe by request, ignoring purpose: the
// network's answer to a traceroute does not depend on why it was issued,
// and the replayed run may legitimately issue the same request for a
// different purpose (e.g. a churn-triggered probe where the recording had
// a periodic one land on the same bucket).
type replayKey struct {
	cloud  netmodel.CloudID
	prefix netmodel.PrefixID
	bucket netmodel.Bucket
}

// Replayer serves traceroutes from a recorded probe log instead of a live
// engine, completing the pipeline's decoupling from the simulator: with a
// Replayer and a recorded observation trace, a run needs no network (or
// simulator) at all. Requests not present in the recording return a zero
// Traceroute — Compare rejects it (hop-count mismatch), so the active
// phase degrades to "probed but not comparable" rather than fabricating a
// measurement — and are counted in Misses.
type Replayer struct {
	probes   map[replayKey]Traceroute
	counters Counters
	misses   int64
	mCounts  [numPurposes]*metrics.Counter
}

var _ Prober = (*Replayer)(nil)

// NewReplayer indexes a probe log for replay. Duplicate requests keep the
// first recorded result (probers are deterministic per request, so
// duplicates only arise from re-recorded logs).
func NewReplayer(recs []Record) *Replayer {
	rp := &Replayer{probes: make(map[replayKey]Traceroute, len(recs))}
	for _, rec := range recs {
		k := replayKey{cloud: rec.Cloud, prefix: rec.Prefix, bucket: rec.Bucket}
		if _, ok := rp.probes[k]; !ok {
			rp.probes[k] = rec.Result
		}
	}
	return rp
}

// SetMetrics mirrors the replayer's per-purpose probe accounting into a
// metrics registry, matching the live engine's probe.traceroutes.*
// counters.
func (rp *Replayer) SetMetrics(reg *metrics.Registry) {
	for p := Purpose(0); p < numPurposes; p++ {
		rp.mCounts[p] = reg.Counter("probe.traceroutes." + p.String())
	}
}

// Traceroute serves the recorded result for the request, or a zero
// Traceroute on a miss.
func (rp *Replayer) Traceroute(c netmodel.CloudID, p netmodel.PrefixID, b netmodel.Bucket, purpose Purpose) Traceroute {
	rp.counters.counts[purpose]++
	rp.mCounts[purpose].Inc()
	tr, ok := rp.probes[replayKey{cloud: c, prefix: p, bucket: b}]
	if !ok {
		rp.misses++
		return Traceroute{Cloud: c, Prefix: p, Bucket: b}
	}
	return tr
}

// Counters returns the replayer's probe accounting.
func (rp *Replayer) Counters() *Counters { return &rp.counters }

// Misses reports how many requests had no recorded probe.
func (rp *Replayer) Misses() int64 { return rp.misses }
