package probe

import (
	"testing"

	"blameit/internal/metrics"
	"blameit/internal/netmodel"
)

// TestBudgetDayRollover exercises the day-boundary accounting: spend is
// charged to the day of the requesting bucket, denials at the end of an
// exhausted day are counted rather than dropped, and the first bucket of
// the next day starts from a clean allowance.
func TestBudgetDayRollover(t *testing.T) {
	reg := metrics.NewRegistry()
	b := NewBudget(3)
	b.SetMetrics(reg)
	lastOfDay0 := netmodel.Bucket(netmodel.BucketsPerDay - 1)
	firstOfDay1 := netmodel.Bucket(netmodel.BucketsPerDay)

	// Exhaust day 0 right at its final bucket.
	for i := 0; i < 3; i++ {
		if !b.TryTake(1, lastOfDay0) {
			t.Fatalf("grant %d refused within allowance", i)
		}
	}
	// Two more requests in the same bucket are denied — and recorded.
	for i := 0; i < 2; i++ {
		if b.TryTake(1, lastOfDay0) {
			t.Fatal("grant above allowance")
		}
	}
	if got := b.Denied(1, 0); got != 2 {
		t.Errorf("Denied(day 0) = %d, want 2", got)
	}
	if got := b.Used(1, 0); got != 3 {
		t.Errorf("Used(day 0) = %d, want 3", got)
	}

	// One bucket later it is a new day: full allowance, no carried debt.
	if !b.TryTake(1, firstOfDay1) {
		t.Fatal("first bucket of next day refused despite fresh allowance")
	}
	if got := b.Used(1, 1); got != 1 {
		t.Errorf("Used(day 1) = %d, want 1", got)
	}
	if got := b.Denied(1, 1); got != 0 {
		t.Errorf("Denied(day 1) = %d, want 0", got)
	}
	// Day 0's ledger is untouched by the rollover.
	if b.Used(1, 0) != 3 || b.Denied(1, 0) != 2 {
		t.Errorf("day 0 ledger changed after rollover: used=%d denied=%d", b.Used(1, 0), b.Denied(1, 0))
	}

	snap := reg.Snapshot()
	if v, _ := snap.Counter("probe.budget.granted"); v != 4 {
		t.Errorf("granted counter = %d, want 4", v)
	}
	if v, _ := snap.Counter("probe.budget.denied"); v != 2 {
		t.Errorf("denied counter = %d, want 2", v)
	}
}

// TestBudgetRolloverPerMiddleAS repeats the rollover check in PerMiddleAS
// mode, where the ledger key is the first middle AS of the issue's path.
func TestBudgetRolloverPerMiddleAS(t *testing.T) {
	b := NewBudgetMode(1, PerMiddleAS)
	path := netmodel.Path{Cloud: 1, Middle: []netmodel.ASN{2001}, Client: 10001}
	other := netmodel.Path{Cloud: 1, Middle: []netmodel.ASN{2002}, Client: 10001}
	lastOfDay0 := netmodel.Bucket(netmodel.BucketsPerDay - 1)
	firstOfDay1 := netmodel.Bucket(netmodel.BucketsPerDay)

	if !b.TryTakeForIssue(path, lastOfDay0) {
		t.Fatal("first grant refused")
	}
	if b.TryTakeForIssue(path, lastOfDay0) {
		t.Fatal("second grant allowed above per-AS allowance")
	}
	if got := b.DeniedFor(path, 0); got != 1 {
		t.Errorf("DeniedFor(day 0) = %d, want 1", got)
	}
	// A different middle AS has its own allowance on the same day.
	if !b.TryTakeForIssue(other, lastOfDay0) {
		t.Fatal("per-AS isolation broken")
	}
	if got := b.DeniedFor(other, 0); got != 0 {
		t.Errorf("DeniedFor(other AS) = %d, want 0", got)
	}
	// Rollover restores the exhausted AS.
	if !b.TryTakeForIssue(path, firstOfDay1) {
		t.Fatal("next-day grant refused in PerMiddleAS mode")
	}
	if got := b.DeniedFor(path, 1); got != 0 {
		t.Errorf("DeniedFor(day 1) = %d, want 0", got)
	}
}

// TestBudgetUnlimitedNeverDenies checks that an unlimited budget records
// every grant in the metrics and never accumulates denials.
func TestBudgetUnlimitedNeverDenies(t *testing.T) {
	reg := metrics.NewRegistry()
	b := NewBudget(0)
	b.SetMetrics(reg)
	for i := 0; i < 50; i++ {
		if !b.TryTake(3, netmodel.Bucket(i*7)) {
			t.Fatal("unlimited budget refused")
		}
	}
	snap := reg.Snapshot()
	if v, _ := snap.Counter("probe.budget.granted"); v != 50 {
		t.Errorf("granted counter = %d, want 50", v)
	}
	if v, _ := snap.Counter("probe.budget.denied"); v != 0 {
		t.Errorf("denied counter = %d, want 0", v)
	}
}
