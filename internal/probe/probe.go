// Package probe implements BlameIt's active-measurement substrate: a
// simulated traceroute engine (standing in for the native tracert issued
// from cloud locations), the background-probe manager of §5.4 (periodic
// traceroutes per BGP path plus BGP-churn-triggered probes), per-purpose
// probe accounting, and the per-location probing budget of §5.3.
package probe

import (
	"context"
	"fmt"

	"blameit/internal/metrics"
	"blameit/internal/netmodel"
	"blameit/internal/sim"
)

// Purpose labels why a traceroute was issued, for overhead accounting.
type Purpose int

const (
	// Background is a periodic baseline traceroute.
	Background Purpose = iota
	// ChurnTriggered is a baseline traceroute triggered by a BGP event.
	ChurnTriggered
	// OnDemand is a prioritized traceroute for an ongoing middle issue.
	OnDemand
	// ClientReverse is a client-issued reverse traceroute (the §5.1
	// rich-client extension).
	ClientReverse
	numPurposes
)

// String names the purpose.
func (p Purpose) String() string {
	switch p {
	case Background:
		return "background"
	case ChurnTriggered:
		return "churn-triggered"
	case OnDemand:
		return "on-demand"
	case ClientReverse:
		return "client-reverse"
	default:
		return fmt.Sprintf("Purpose(%d)", int(p))
	}
}

// Hop is a traceroute's measurement at the last responding hop inside one
// AS: the cumulative RTT from the cloud location to that hop.
type Hop struct {
	AS           netmodel.ASN
	Segment      netmodel.Segment
	CumulativeMS float64
}

// Traceroute is the result of one simulated traceroute from a cloud
// location toward a client prefix.
type Traceroute struct {
	Cloud  netmodel.CloudID
	Prefix netmodel.PrefixID
	Bucket netmodel.Bucket
	Path   netmodel.Path
	Hops   []Hop
}

// Contribution returns hop i's own latency contribution: the cumulative
// RTT increase over the previous hop.
func (t Traceroute) Contribution(i int) float64 {
	if i == 0 {
		return t.Hops[0].CumulativeMS
	}
	return t.Hops[i].CumulativeMS - t.Hops[i-1].CumulativeMS
}

// Counters tracks probes by purpose.
type Counters struct {
	counts [numPurposes]int64
}

// Count returns the probes issued for one purpose.
func (c *Counters) Count(p Purpose) int64 { return c.counts[p] }

// Total returns all probes issued.
func (c *Counters) Total() int64 {
	var t int64
	for _, v := range c.counts {
		t += v
	}
	return t
}

// Prober is the traceroute capability the active phase and the baseliner
// consume: issue one forward traceroute and account for it by purpose. The
// live implementation is *Engine (simulated tracert against the latency
// ground truth); *Replayer serves previously recorded probes instead, so a
// whole run can be reproduced without any simulator. Implementations must
// be deterministic in (cloud, prefix, bucket): replay equivalence depends
// on the same request yielding the same Traceroute regardless of when —
// or how many times — it is issued.
type Prober interface {
	Traceroute(c netmodel.CloudID, p netmodel.PrefixID, b netmodel.Bucket, purpose Purpose) Traceroute
	Counters() *Counters
}

// ErrProber is the fallible prober capability: implementations whose
// probes can time out or fail outright (a real tracert, a chaos wrapper)
// additionally expose TracerouteErr, and consumers that can degrade
// gracefully (RetryingProber, the active phase) prefer it. The returned
// Traceroute may have no hops when err is non-nil. The infallible
// simulated Engine and the Replayer deliberately do NOT implement it, so
// fault-free paths keep their exact behavior.
type ErrProber interface {
	TracerouteErr(ctx context.Context, c netmodel.CloudID, p netmodel.PrefixID, b netmodel.Bucket, purpose Purpose) (Traceroute, error)
}

// Engine issues simulated traceroutes against the latency ground truth of
// the simulator, so active and passive views are mutually consistent.
type Engine struct {
	Sim *sim.Simulator
	// NoiseMS is the absolute per-hop measurement noise amplitude.
	NoiseMS  float64
	counters Counters
	mCounts  [numPurposes]*metrics.Counter
}

var _ Prober = (*Engine)(nil)

// NewEngine creates a traceroute engine with the given per-hop noise.
func NewEngine(s *sim.Simulator, noiseMS float64) *Engine {
	return &Engine{Sim: s, NoiseMS: noiseMS}
}

// SetMetrics mirrors the engine's per-purpose probe accounting into a
// metrics registry (probe.traceroutes.<purpose> counters). Call before
// issuing probes; a nil registry leaves the engine uninstrumented.
func (e *Engine) SetMetrics(reg *metrics.Registry) {
	for p := Purpose(0); p < numPurposes; p++ {
		e.mCounts[p] = reg.Counter("probe.traceroutes." + p.String())
	}
}

// Counters returns the engine's probe accounting.
func (e *Engine) Counters() *Counters { return &e.counters }

// hopNoise derives a deterministic noise value in [-NoiseMS, +NoiseMS].
func (e *Engine) hopNoise(p netmodel.PrefixID, c netmodel.CloudID, b netmodel.Bucket, hop int) float64 {
	h := uint64(p)*0x9E3779B97F4A7C15 + uint64(c)*0xBF58476D1CE4E5B9 + uint64(b)*0x94D049BB133111EB + uint64(hop)
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	u := float64(h>>11) / float64(1<<53)
	return (2*u - 1) * e.NoiseMS
}

// Traceroute issues one traceroute from a cloud location toward a client
// prefix at a bucket. The result reports the cumulative RTT at the last
// hop inside each AS of the path, as the paper's AS-level comparison uses.
//
// Each probe's reply returns over the (possibly different) reverse route,
// so congestion that exists only in the client→cloud direction inflates
// every hop's measured RTT roughly equally — it shows up as an apparent
// first-hop (cloud-segment) increase that the per-AS diff cannot place in
// the middle. This is exactly the forward-probing blind spot §5.1
// describes; the reverse-traceroute extension closes it.
func (e *Engine) Traceroute(c netmodel.CloudID, p netmodel.PrefixID, b netmodel.Bucket, purpose Purpose) Traceroute {
	e.counters.counts[purpose]++
	e.mCounts[purpose].Inc()
	cons := e.Sim.Contributions(p, c, b)
	path := e.Sim.Routes.PathAtForPrefix(c, p, b)
	revExtra := e.Sim.ReverseExtra(p, c, b)
	hops := make([]Hop, len(cons))
	var cum float64
	for i, con := range cons {
		cum += con.MS
		hops[i] = Hop{AS: con.AS, Segment: con.Segment, CumulativeMS: cum + revExtra + e.hopNoise(p, c, b, i)}
	}
	return Traceroute{Cloud: c, Prefix: p, Bucket: b, Path: path, Hops: hops}
}

// ReverseTraceroute issues one traceroute from a rich client toward the
// cloud location, walking the reverse (client→cloud) route. Hops are
// reported in the same cloud→client orientation as forward traceroutes so
// Compare can diff them against reverse baselines. Reverse-only congestion
// is attributed to the AS that carries it.
func (e *Engine) ReverseTraceroute(c netmodel.CloudID, p netmodel.PrefixID, b netmodel.Bucket) Traceroute {
	e.counters.counts[ClientReverse]++
	e.mCounts[ClientReverse].Inc()
	path := e.Sim.ReversePathFor(p, c)
	cons := e.Sim.World.BaseContributions(path, p)
	for i := 1; i < len(cons)-1; i++ {
		cons[i].MS += e.Sim.Sched.MiddleExtraReverse(cons[i].AS, c, b)
		cons[i].MS += e.Sim.Sched.MiddleExtra(cons[i].AS, c, b) // symmetric faults cross both ways
	}
	hops := make([]Hop, len(cons))
	var cum float64
	for i, con := range cons {
		cum += con.MS
		hops[i] = Hop{AS: con.AS, Segment: con.Segment, CumulativeMS: cum + e.hopNoise(p, c, b, 100+i)}
	}
	return Traceroute{Cloud: c, Prefix: p, Bucket: b, Path: path, Hops: hops}
}

// CompareResult is the outcome of diffing an on-demand traceroute against
// its baseline.
type CompareResult struct {
	// OK is false when no comparison was possible (missing baseline or the
	// AS-level path changed since the baseline was taken).
	OK bool
	// AS is the culprit: the AS whose own contribution increased the most.
	AS      netmodel.ASN
	Segment netmodel.Segment
	// IncreaseMS is the culprit's contribution increase.
	IncreaseMS float64
}

// Compare diffs two traceroutes of the same (cloud, BGP path), attributing
// the latency increase to the AS whose own contribution grew the most —
// the §5.2 illustrative method. The cloud and middle AS sequences must
// match (a changed path makes the baseline useless); the final client hop
// is only compared when both traceroutes targeted the same /24, since
// background baselines are probed to one representative client per path
// and client-segment base latencies differ across prefixes.
// A truncated or failed traceroute (fewer hops than the baseline, or none
// at all) yields the zero CompareResult: OK=false, nothing localized. The
// caller falls back to its insufficient/ambiguous verdict rather than
// guessing from a partial path.
func Compare(now, baseline Traceroute) CompareResult {
	if len(now.Hops) == 0 || len(now.Hops) != len(baseline.Hops) {
		return CompareResult{}
	}
	n := len(now.Hops)
	for i := 0; i < n-1; i++ { // cloud + middle hops
		if now.Hops[i].AS != baseline.Hops[i].AS {
			return CompareResult{}
		}
	}
	last := n - 1
	if now.Prefix == baseline.Prefix && now.Hops[last].AS != baseline.Hops[last].AS {
		return CompareResult{}
	}
	var res CompareResult
	res.OK = true
	for i := 0; i < n-1; i++ {
		inc := now.Contribution(i) - baseline.Contribution(i)
		if inc > res.IncreaseMS {
			res.IncreaseMS = inc
			res.AS = now.Hops[i].AS
			res.Segment = now.Hops[i].Segment
		}
	}
	if now.Prefix == baseline.Prefix {
		if inc := now.Contribution(last) - baseline.Contribution(last); inc > res.IncreaseMS {
			res.IncreaseMS = inc
			res.AS = now.Hops[last].AS
			res.Segment = now.Hops[last].Segment
		}
	}
	return res
}

// BudgetMode selects the granularity at which the §5.3 traceroute budget
// is enforced. The paper deliberately avoids per-AS budgets "for
// simplicity" and uses a larger per-location budget; the per-AS mode
// exists for the ablation bench.
type BudgetMode int

const (
	// PerCloud counts on-demand traceroutes per (cloud location, day).
	PerCloud BudgetMode = iota
	// PerMiddleAS counts them per (first middle AS, day) — finer-grained
	// fairness at the cost of bookkeeping and of starving wide issues
	// whose paths share a first hop.
	PerMiddleAS
)

// Budget enforces the traceroute budget of §5.3, counted per day. Spend is
// keyed by (entity, day of the bucket), so the allowance resets exactly at
// day boundaries: a request on the last bucket of a day draws on that day's
// allowance and a request one bucket later draws on a fresh one. Denied
// requests are counted per (entity, day) rather than silently dropped —
// the denial rate is an operator-facing signal of an undersized budget.
type Budget struct {
	PerDay int
	Mode   BudgetMode
	used   map[budgetKey]int
	denied map[budgetKey]int

	mGranted *metrics.Counter
	mDenied  *metrics.Counter
}

type budgetKey struct {
	id  int
	day int
}

// NewBudget creates a per-cloud-location budget allowing n on-demand
// traceroutes per day. n <= 0 means unlimited.
func NewBudget(n int) *Budget {
	return NewBudgetMode(n, PerCloud)
}

// NewBudgetMode creates a budget with an explicit enforcement mode.
func NewBudgetMode(n int, mode BudgetMode) *Budget {
	return &Budget{PerDay: n, Mode: mode, used: make(map[budgetKey]int), denied: make(map[budgetKey]int)}
}

// SetMetrics mirrors grants and denials into a metrics registry
// (probe.budget.granted / probe.budget.denied counters).
func (bu *Budget) SetMetrics(reg *metrics.Registry) {
	bu.mGranted = reg.Counter("probe.budget.granted")
	bu.mDenied = reg.Counter("probe.budget.denied")
}

// TryTake consumes one traceroute from cloud c's budget on the day of
// bucket b (PerCloud mode), reporting whether budget remained.
func (bu *Budget) TryTake(c netmodel.CloudID, b netmodel.Bucket) bool {
	return bu.take(int(c), b)
}

// TryTakeForIssue consumes budget for an issue on the given path,
// dispatching on the configured mode.
func (bu *Budget) TryTakeForIssue(path netmodel.Path, b netmodel.Bucket) bool {
	if bu.Mode == PerMiddleAS && len(path.Middle) > 0 {
		return bu.take(int(path.Middle[0]), b)
	}
	return bu.take(int(path.Cloud), b)
}

func (bu *Budget) take(id int, b netmodel.Bucket) bool {
	if bu.PerDay <= 0 {
		bu.mGranted.Inc()
		return true
	}
	k := budgetKey{id, b.Day()}
	if bu.used[k] >= bu.PerDay {
		bu.denied[k]++
		bu.mDenied.Inc()
		return false
	}
	bu.used[k]++
	bu.mGranted.Inc()
	return true
}

// Used reports the budget consumed by cloud c on a day (PerCloud mode).
func (bu *Budget) Used(c netmodel.CloudID, day int) int {
	return bu.used[budgetKey{int(c), day}]
}

// Denied reports the requests cloud c had denied on a day (PerCloud mode).
func (bu *Budget) Denied(c netmodel.CloudID, day int) int {
	return bu.denied[budgetKey{int(c), day}]
}

// DeniedFor reports the denials charged to the entity the given path maps
// to under the configured mode (the first middle AS in PerMiddleAS mode,
// the cloud location otherwise).
func (bu *Budget) DeniedFor(path netmodel.Path, day int) int {
	if bu.Mode == PerMiddleAS && len(path.Middle) > 0 {
		return bu.denied[budgetKey{int(path.Middle[0]), day}]
	}
	return bu.denied[budgetKey{int(path.Cloud), day}]
}
