package probe

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"blameit/internal/metrics"
	"blameit/internal/netmodel"
)

func hops(ms ...float64) []Hop {
	out := make([]Hop, len(ms))
	var cum float64
	for i, m := range ms {
		cum += m
		seg := netmodel.SegMiddle
		if i == 0 {
			seg = netmodel.SegCloud
		} else if i == len(ms)-1 {
			seg = netmodel.SegClient
		}
		out[i] = Hop{AS: netmodel.ASN(100 + i), Segment: seg, CumulativeMS: cum}
	}
	return out
}

// TestCompareEmptyTraceroutes: a failed probe (zero hops) against any
// baseline — including another empty one — must yield a defined,
// non-localizing result, not an index panic.
func TestCompareEmptyTraceroutes(t *testing.T) {
	full := Traceroute{Cloud: 1, Prefix: 2, Bucket: 10, Hops: hops(5, 20, 8)}
	empty := Traceroute{Cloud: 1, Prefix: 2, Bucket: 10}
	for _, tc := range []struct {
		name          string
		now, baseline Traceroute
	}{
		{"empty vs full", empty, full},
		{"full vs empty", full, empty},
		{"empty vs empty", empty, empty},
	} {
		res := Compare(tc.now, tc.baseline) // must not panic
		if res.OK {
			t.Errorf("%s: Compare reported OK on unusable input", tc.name)
		}
		if res.AS != 0 || res.IncreaseMS != 0 {
			t.Errorf("%s: non-zero localization %+v from unusable input", tc.name, res)
		}
	}
}

// TestCompareTruncatedTraceroute: a probe that died mid-path (fewer hops
// than the baseline) must not be diffed hop-by-hop.
func TestCompareTruncatedTraceroute(t *testing.T) {
	baseline := Traceroute{Cloud: 1, Prefix: 2, Bucket: 0, Hops: hops(5, 20, 8)}
	now := Traceroute{Cloud: 1, Prefix: 2, Bucket: 12, Hops: hops(5, 60)} // truncated
	if res := Compare(now, baseline); res.OK {
		t.Errorf("truncated traceroute compared OK: %+v", res)
	}
	// Sanity: the untruncated version localizes.
	whole := Traceroute{Cloud: 1, Prefix: 2, Bucket: 12, Hops: hops(5, 60, 8)}
	res := Compare(whole, baseline)
	if !res.OK || res.AS != 101 || res.Segment != netmodel.SegMiddle {
		t.Errorf("full comparison = %+v, want OK middle AS 101", res)
	}
}

// flakyProber fails the next failNext attempts, then succeeds.
type flakyProber struct {
	counters Counters
	failNext int
	calls    int
}

func (f *flakyProber) Traceroute(c netmodel.CloudID, p netmodel.PrefixID, b netmodel.Bucket, purpose Purpose) Traceroute {
	tr, _ := f.TracerouteErr(context.Background(), c, p, b, purpose)
	return tr
}

func (f *flakyProber) TracerouteErr(_ context.Context, c netmodel.CloudID, p netmodel.PrefixID, b netmodel.Bucket, purpose Purpose) (Traceroute, error) {
	f.calls++
	if f.failNext > 0 {
		f.failNext--
		return Traceroute{}, errors.New("flaky: injected failure")
	}
	f.counters.counts[purpose]++
	return Traceroute{Cloud: c, Prefix: p, Bucket: b, Hops: hops(5, 20, 8)}, nil
}

func (f *flakyProber) Counters() *Counters { return &f.counters }

func TestRetryingProberRecoversWithinBudget(t *testing.T) {
	base := &flakyProber{failNext: 2}
	rp := NewRetryingProber(base, RetryConfig{MaxAttempts: 3})
	tr, err := rp.TracerouteErr(context.Background(), 1, 2, 10, OnDemand)
	if err != nil || len(tr.Hops) == 0 {
		t.Fatalf("probe failed despite retry budget: %v", err)
	}
	st := rp.Stats()
	if st.Attempts != 3 || st.Failures != 2 || st.Retries != 2 || st.Succeeded != 1 || st.Exhausted != 0 {
		t.Errorf("stats = %+v, want 3 attempts / 2 failures / 2 retries / 1 success", st)
	}
}

func TestRetryingProberExhaustion(t *testing.T) {
	base := &flakyProber{failNext: 10}
	rp := NewRetryingProber(base, RetryConfig{MaxAttempts: 3, BreakerThreshold: -1})
	tr, err := rp.TracerouteErr(context.Background(), 1, 2, 10, OnDemand)
	if err == nil {
		t.Fatal("exhausted probe returned nil error")
	}
	if len(tr.Hops) != 0 {
		t.Errorf("exhausted probe returned hops: %+v", tr)
	}
	// The Prober-interface path absorbs the failure into a hopless result.
	base.failNext = 10
	if tr := rp.Traceroute(1, 2, 11, OnDemand); len(tr.Hops) != 0 {
		t.Errorf("Traceroute() returned hops after exhaustion: %+v", tr)
	}
	st := rp.Stats()
	if st.Exhausted != 2 || st.BreakerOpens != 0 {
		t.Errorf("stats = %+v, want 2 exhausted and breaker disabled", st)
	}
}

func TestRetryingProberCircuitBreaker(t *testing.T) {
	base := &flakyProber{failNext: 1 << 30} // fail everything
	rp := NewRetryingProber(base, RetryConfig{MaxAttempts: 2, BreakerThreshold: 2, BreakerCooldownBuckets: 3})
	ctx := context.Background()

	// Two exhausted probes trip the breaker for cloud 1.
	rp.TracerouteErr(ctx, 1, 2, 10, OnDemand)
	rp.TracerouteErr(ctx, 1, 3, 10, OnDemand)
	if got := rp.Stats().BreakerOpens; got != 1 {
		t.Fatalf("BreakerOpens = %d after threshold, want 1", got)
	}
	if rp.OpenCircuits(10) != 1 {
		t.Fatalf("OpenCircuits(10) = %d, want 1", rp.OpenCircuits(10))
	}

	// While open, probes are refused without touching the base prober.
	calls := base.calls
	_, err := rp.TracerouteErr(ctx, 1, 4, 11, OnDemand)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open circuit returned %v, want ErrCircuitOpen", err)
	}
	if base.calls != calls {
		t.Error("short-circuited probe reached the base prober")
	}
	if got := rp.Stats().BreakerShortCircuits; got != 1 {
		t.Errorf("BreakerShortCircuits = %d, want 1", got)
	}
	// Another cloud is unaffected.
	if _, err := rp.TracerouteErr(ctx, 2, 4, 11, OnDemand); errors.Is(err, ErrCircuitOpen) {
		t.Error("breaker leaked across clouds")
	}

	// After the cooldown a half-open trial goes through; it fails, so the
	// circuit reopens immediately (one more open, not threshold-many).
	calls = base.calls
	_, err = rp.TracerouteErr(ctx, 1, 5, 13, OnDemand)
	if errors.Is(err, ErrCircuitOpen) || base.calls == calls {
		t.Fatal("half-open trial did not reach the base prober")
	}
	if got := rp.Stats().BreakerOpens; got != 2 {
		t.Errorf("BreakerOpens = %d after failed trial, want 2", got)
	}

	// Next cooldown: the trial succeeds and the circuit closes for good.
	base.failNext = 0
	if _, err := rp.TracerouteErr(ctx, 1, 6, 16, OnDemand); err != nil {
		t.Fatalf("recovered probe failed: %v", err)
	}
	if rp.OpenCircuits(16) != 0 {
		t.Error("circuit still open after successful trial")
	}
	if _, err := rp.TracerouteErr(ctx, 1, 7, 16, OnDemand); err != nil {
		t.Errorf("probe after recovery failed: %v", err)
	}
}

func TestRetryingProberPassThrough(t *testing.T) {
	// A base without ErrProber cannot fail; the wrapper must not alter
	// results or stats.
	base := &flakyProber{}
	plain := struct{ Prober }{base} // strips the ErrProber method
	rp := NewRetryingProber(plain, RetryConfig{})
	tr := rp.Traceroute(1, 2, 10, Background)
	if len(tr.Hops) == 0 {
		t.Fatal("pass-through lost the traceroute")
	}
	if st := rp.Stats(); st.Attempts != 0 {
		t.Errorf("pass-through recorded attempts: %+v", st)
	}
	if rp.Counters().Count(Background) != 1 {
		t.Error("purpose accounting not delegated to base")
	}
}

func TestRetryingProberLazyMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	base := &flakyProber{}
	rp := NewRetryingProber(base, RetryConfig{MaxAttempts: 2, BreakerThreshold: -1})
	rp.SetMetrics(reg)
	rp.TracerouteErr(context.Background(), 1, 2, 10, OnDemand)
	for _, nv := range reg.Snapshot().Counters {
		if strings.HasPrefix(nv.Name, "probe.retry.") || strings.HasPrefix(nv.Name, "probe.breaker.") {
			t.Fatalf("counter %s registered with no failures", nv.Name)
		}
	}
	base.failNext = 1
	rp.TracerouteErr(context.Background(), 1, 2, 11, OnDemand)
	if v, ok := reg.Snapshot().Counter("probe.retry.failures"); !ok || v != 1 {
		t.Errorf("probe.retry.failures = %d (ok=%v), want 1", v, ok)
	}
	if v, ok := reg.Snapshot().Counter("probe.retry.retries"); !ok || v != 1 {
		t.Errorf("probe.retry.retries = %d (ok=%v), want 1", v, ok)
	}
}

func TestRetryingProberBackoffDeterministicAndBounded(t *testing.T) {
	rp := NewRetryingProber(&flakyProber{}, RetryConfig{
		BackoffBase: 100 * time.Millisecond, BackoffCap: time.Second,
	})
	for attempt := 1; attempt <= 8; attempt++ {
		d1 := rp.backoff(3, 7, 42, attempt)
		d2 := rp.backoff(3, 7, 42, attempt)
		if d1 != d2 {
			t.Fatalf("backoff attempt %d not deterministic: %v vs %v", attempt, d1, d2)
		}
		if d1 < 0 || d1 >= 1500*time.Millisecond {
			t.Errorf("backoff attempt %d = %v outside [0, 1.5*cap)", attempt, d1)
		}
	}
	// The sleeper is only invoked between attempts, never after the last.
	slept := 0
	rp2 := NewRetryingProber(&flakyProber{failNext: 1 << 30}, RetryConfig{MaxAttempts: 3, BreakerThreshold: -1})
	rp2.SetSleep(func(time.Duration) { slept++ })
	rp2.TracerouteErr(context.Background(), 1, 2, 10, OnDemand)
	if slept != 2 {
		t.Errorf("slept %d times for 3 attempts, want 2", slept)
	}
}

func TestRetryingProberContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	base := &flakyProber{failNext: 1 << 30}
	rp := NewRetryingProber(base, RetryConfig{MaxAttempts: 5, BreakerThreshold: -1})
	_, err := rp.TracerouteErr(ctx, 1, 2, 10, OnDemand)
	if err == nil {
		t.Fatal("cancelled probe returned nil error")
	}
	if base.calls != 1 {
		t.Errorf("retried %d times under a dead context, want 1 attempt", base.calls)
	}
}
