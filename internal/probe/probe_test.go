package probe

import (
	"math"
	"testing"

	"blameit/internal/bgp"
	"blameit/internal/faults"
	"blameit/internal/netmodel"
	"blameit/internal/sim"
	"blameit/internal/topology"
)

func newSim(t testing.TB, fs []faults.Fault, churn bgp.ChurnConfig, days int) *sim.Simulator {
	t.Helper()
	w := topology.Generate(topology.SmallScale(), 42)
	tbl := bgp.NewTable(w, churn, netmodel.Bucket(days*netmodel.BucketsPerDay), 7)
	return sim.New(w, tbl, faults.NewSchedule(fs), sim.DefaultConfig(99))
}

func TestTracerouteShape(t *testing.T) {
	s := newSim(t, nil, bgp.ChurnConfig{}, 1)
	w := s.World
	e := NewEngine(s, 0)
	p := w.Prefixes[0]
	c := w.Attachments(p.ID)[0].Cloud
	tr := e.Traceroute(c, p.ID, 5, Background)
	path := s.Routes.PathAtForPrefix(c, p.ID, 5)
	if len(tr.Hops) != len(path.Middle)+2 {
		t.Fatalf("hops = %d", len(tr.Hops))
	}
	if tr.Hops[0].Segment != netmodel.SegCloud {
		t.Error("first hop must be the cloud segment")
	}
	if tr.Hops[len(tr.Hops)-1].AS != p.AS {
		t.Error("last hop must be the client AS")
	}
	// Cumulative RTTs must be nondecreasing without noise.
	for i := 1; i < len(tr.Hops); i++ {
		if tr.Hops[i].CumulativeMS < tr.Hops[i-1].CumulativeMS {
			t.Error("cumulative RTT decreased")
		}
	}
	// Final cumulative RTT equals the simulator's mean RTT.
	if math.Abs(tr.Hops[len(tr.Hops)-1].CumulativeMS-s.MeanRTT(p.ID, c, 5)) > 1e-9 {
		t.Error("end-to-end traceroute RTT differs from simulator RTT")
	}
}

func TestTracerouteCounters(t *testing.T) {
	s := newSim(t, nil, bgp.ChurnConfig{}, 1)
	e := NewEngine(s, 0)
	p := s.World.Prefixes[0].ID
	c := s.World.Attachments(p)[0].Cloud
	e.Traceroute(c, p, 1, Background)
	e.Traceroute(c, p, 2, ChurnTriggered)
	e.Traceroute(c, p, 3, OnDemand)
	e.Traceroute(c, p, 4, OnDemand)
	cnt := e.Counters()
	if cnt.Count(Background) != 1 || cnt.Count(ChurnTriggered) != 1 || cnt.Count(OnDemand) != 2 {
		t.Errorf("counters = %d/%d/%d", cnt.Count(Background), cnt.Count(ChurnTriggered), cnt.Count(OnDemand))
	}
	if cnt.Total() != 4 {
		t.Errorf("total = %d", cnt.Total())
	}
}

func TestCompareLocalizesMiddleFault(t *testing.T) {
	// Reproduces the §5.2 illustrative example: background 4/6/8/9ms vs
	// on-demand 4/60/62/64ms must blame m1.
	base := Traceroute{Hops: []Hop{
		{AS: 1, Segment: netmodel.SegCloud, CumulativeMS: 4},
		{AS: 2, Segment: netmodel.SegMiddle, CumulativeMS: 6},
		{AS: 3, Segment: netmodel.SegMiddle, CumulativeMS: 8},
		{AS: 4, Segment: netmodel.SegClient, CumulativeMS: 9},
	}}
	now := Traceroute{Hops: []Hop{
		{AS: 1, Segment: netmodel.SegCloud, CumulativeMS: 4},
		{AS: 2, Segment: netmodel.SegMiddle, CumulativeMS: 60},
		{AS: 3, Segment: netmodel.SegMiddle, CumulativeMS: 62},
		{AS: 4, Segment: netmodel.SegClient, CumulativeMS: 64},
	}}
	res := Compare(now, base)
	if !res.OK {
		t.Fatal("comparison failed")
	}
	if res.AS != 2 || res.Segment != netmodel.SegMiddle {
		t.Errorf("culprit = AS%d (%v), want AS2 (middle)", res.AS, res.Segment)
	}
	if math.Abs(res.IncreaseMS-54) > 1e-9 {
		t.Errorf("increase = %v, want 54", res.IncreaseMS)
	}
}

func TestCompareFailsOnPathChange(t *testing.T) {
	base := Traceroute{Hops: []Hop{{AS: 1, CumulativeMS: 4}, {AS: 2, CumulativeMS: 6}}}
	nowDifferentAS := Traceroute{Hops: []Hop{{AS: 1, CumulativeMS: 4}, {AS: 9, CumulativeMS: 6}}}
	if Compare(nowDifferentAS, base).OK {
		t.Error("comparison across different AS sequences must fail")
	}
	nowLonger := Traceroute{Hops: []Hop{{AS: 1, CumulativeMS: 4}, {AS: 2, CumulativeMS: 6}, {AS: 3, CumulativeMS: 7}}}
	if Compare(nowLonger, base).OK {
		t.Error("comparison across different hop counts must fail")
	}
}

func TestEndToEndFaultLocalization(t *testing.T) {
	// Inject a middle fault and verify traceroute comparison names the AS.
	w := topology.Generate(topology.SmallScale(), 42)
	as := w.Tier1s[1]
	f := faults.Fault{Kind: faults.MiddleASFault, AS: as, ScopeCloud: faults.NoCloud, Start: 100, Duration: 20, ExtraMS: 70}
	tbl := bgp.NewTable(w, bgp.ChurnConfig{}, netmodel.BucketsPerDay, 7)
	s := sim.New(w, tbl, faults.NewSchedule([]faults.Fault{f}), sim.DefaultConfig(99))
	e := NewEngine(s, 0.5)
	// Find a (cloud, prefix) pair routed through the AS.
	for _, p := range w.Prefixes {
		for _, c := range w.Clouds {
			path := tbl.PathAtForPrefix(c.ID, p.ID, 100)
			for _, m := range path.Middle {
				if m != as {
					continue
				}
				base := e.Traceroute(c.ID, p.ID, 90, Background)
				now := e.Traceroute(c.ID, p.ID, 105, OnDemand)
				res := Compare(now, base)
				if !res.OK {
					t.Fatal("comparison failed on stable path")
				}
				if res.AS != as {
					t.Fatalf("culprit = AS%d, want AS%d", res.AS, as)
				}
				return
			}
		}
	}
	t.Fatal("no path traverses the faulty AS")
}

func TestBudget(t *testing.T) {
	b := NewBudget(2)
	if !b.TryTake(1, 0) || !b.TryTake(1, 5) {
		t.Fatal("budget refused within limit")
	}
	if b.TryTake(1, 10) {
		t.Fatal("budget exceeded")
	}
	// Another cloud and another day have their own budgets.
	if !b.TryTake(2, 10) {
		t.Fatal("per-cloud isolation broken")
	}
	if !b.TryTake(1, netmodel.BucketsPerDay+1) {
		t.Fatal("per-day reset broken")
	}
	if b.Used(1, 0) != 2 {
		t.Errorf("used = %d", b.Used(1, 0))
	}
	unlimited := NewBudget(0)
	for i := 0; i < 100; i++ {
		if !unlimited.TryTake(1, 0) {
			t.Fatal("unlimited budget refused")
		}
	}
}

func TestBaselinerEstablishesBaselines(t *testing.T) {
	s := newSim(t, nil, bgp.ChurnConfig{}, 2)
	e := NewEngine(s, 0)
	cfg := BackgroundConfig{PeriodBuckets: 12 * netmodel.BucketsPerHour, OnChurn: false}
	bg := NewBaseliner(cfg, e, s.Routes)
	if bg.NumPaths() == 0 {
		t.Fatal("no paths registered")
	}
	// After one full period every path has a baseline.
	for b := netmodel.Bucket(0); b < cfg.PeriodBuckets; b++ {
		bg.Advance(b)
	}
	missing := 0
	for _, c := range s.World.Clouds {
		for _, bp := range s.World.BGPPrefixes {
			mk := s.Routes.PathAt(c.ID, bp.ID, 0).Key()
			if _, ok := bg.Baseline(mk); !ok {
				missing++
			}
		}
	}
	if missing > 0 {
		t.Errorf("%d paths missing baselines after a full period", missing)
	}
	// Periodic probe volume is paths per period.
	wantPerPeriod := int64(bg.NumPaths())
	if got := e.Counters().Count(Background); got != wantPerPeriod {
		t.Errorf("periodic probes = %d, want %d", got, wantPerPeriod)
	}
}

func TestBaselinerChurnTrigger(t *testing.T) {
	s := newSim(t, nil, bgp.DefaultChurnConfig(), 2)
	e := NewEngine(s, 0)
	cfg := BackgroundConfig{PeriodBuckets: 0, OnChurn: true} // churn only
	bg := NewBaseliner(cfg, e, s.Routes)
	horizon := netmodel.Bucket(2 * netmodel.BucketsPerDay)
	for b := netmodel.Bucket(0); b < horizon; b++ {
		bg.Advance(b)
	}
	churnProbes := e.Counters().Count(ChurnTriggered)
	events := len(s.Routes.Events(0, horizon))
	if int64(events) != churnProbes {
		t.Errorf("churn probes = %d, events = %d", churnProbes, events)
	}
	if churnProbes == 0 {
		t.Skip("no churn with this seed")
	}
}

func TestBaselineAge(t *testing.T) {
	s := newSim(t, nil, bgp.ChurnConfig{}, 2)
	e := NewEngine(s, 0)
	cfg := BackgroundConfig{PeriodBuckets: 144, OnChurn: false}
	bg := NewBaseliner(cfg, e, s.Routes)
	for b := netmodel.Bucket(0); b < 144; b++ {
		bg.Advance(b)
	}
	p := s.World.Prefixes[0]
	c := s.World.Attachments(p.ID)[0].Cloud
	mk := s.Routes.PathAtForPrefix(c, p.ID, 0).Key()
	age, ok := bg.BaselineAge(mk, 200)
	if !ok {
		t.Fatal("no baseline")
	}
	if age < 56 || age > 200 {
		t.Errorf("age = %d out of expected range", age)
	}
	if _, ok := bg.BaselineAge(netmodel.MiddleKey("c999|1"), 200); ok {
		t.Error("nonexistent baseline reported an age")
	}
}

func TestPurposeString(t *testing.T) {
	if Background.String() != "background" || ChurnTriggered.String() != "churn-triggered" || OnDemand.String() != "on-demand" {
		t.Error("purpose names wrong")
	}
	if Purpose(9).String() != "Purpose(9)" {
		t.Error("unknown purpose formatting")
	}
}

func TestBudgetPerMiddleASMode(t *testing.T) {
	b := NewBudgetMode(1, PerMiddleAS)
	pathA := netmodel.Path{Cloud: 1, Middle: []netmodel.ASN{2001, 2002}, Client: 9}
	pathB := netmodel.Path{Cloud: 1, Middle: []netmodel.ASN{2003}, Client: 9}
	if !b.TryTakeForIssue(pathA, 0) {
		t.Fatal("first take refused")
	}
	// Same first middle AS exhausts its own budget even from another cloud.
	pathA2 := netmodel.Path{Cloud: 5, Middle: []netmodel.ASN{2001}, Client: 7}
	if b.TryTakeForIssue(pathA2, 1) {
		t.Fatal("per-AS budget not shared across clouds")
	}
	// A different first middle AS has its own budget.
	if !b.TryTakeForIssue(pathB, 1) {
		t.Fatal("other AS starved")
	}
	// PerCloud mode shares across ASes but splits across clouds.
	c := NewBudgetMode(1, PerCloud)
	if !c.TryTakeForIssue(pathA, 0) || c.TryTakeForIssue(pathB, 1) {
		t.Fatal("per-cloud accounting wrong")
	}
	if !c.TryTakeForIssue(pathA2, 1) {
		t.Fatal("other cloud starved in per-cloud mode")
	}
}

func TestComparePropertySelfDiff(t *testing.T) {
	// Property: comparing a traceroute against itself yields no increase.
	w := topology.Generate(topology.SmallScale(), 42)
	tbl := bgp.NewTable(w, bgp.ChurnConfig{}, netmodel.BucketsPerDay, 7)
	s := sim.New(w, tbl, faults.NewSchedule(nil), sim.DefaultConfig(99))
	e := NewEngine(s, 0)
	for _, p := range w.Prefixes[:25] {
		c := w.Attachments(p.ID)[0].Cloud
		tr := e.Traceroute(c, p.ID, 5, Background)
		res := Compare(tr, tr)
		if !res.OK || res.IncreaseMS != 0 {
			t.Fatalf("self-diff = %+v", res)
		}
	}
}
