package probe

import (
	"bytes"
	"testing"

	"blameit/internal/bgp"
	"blameit/internal/faults"
	"blameit/internal/netmodel"
	"blameit/internal/sim"
	"blameit/internal/topology"
)

// replayRig builds a small live engine for recorder/replayer tests.
func replayRig(t *testing.T) *Engine {
	t.Helper()
	w := topology.Generate(topology.SmallScale(), 42)
	tbl := bgp.NewTable(w, bgp.DefaultChurnConfig(), netmodel.BucketsPerDay, 7)
	s := sim.New(w, tbl, faults.NewSchedule(nil), sim.DefaultConfig(99))
	return NewEngine(s, 0.5)
}

func equalTraceroutes(a, b Traceroute) bool {
	if a.Cloud != b.Cloud || a.Prefix != b.Prefix || a.Bucket != b.Bucket || len(a.Hops) != len(b.Hops) {
		return false
	}
	for i := range a.Hops {
		if a.Hops[i] != b.Hops[i] {
			return false
		}
	}
	return true
}

// TestRecorderReplayRoundTrip records a set of live probes through the
// JSONL log and replays them: the replayer must return the recorded
// results exactly, including across the serialization boundary.
func TestRecorderReplayRoundTrip(t *testing.T) {
	e := replayRig(t)
	rec := NewRecorder(e)
	var issued []Traceroute
	for b := netmodel.Bucket(0); b < 6; b++ {
		issued = append(issued, rec.Traceroute(0, netmodel.PrefixID(b), b, Background))
		issued = append(issued, rec.Traceroute(1, netmodel.PrefixID(b+1), b, OnDemand))
	}
	if len(rec.Log()) != len(issued) {
		t.Fatalf("recorder logged %d probes, issued %d", len(rec.Log()), len(issued))
	}
	// Recorder is transparent: counters are the wrapped engine's.
	if rec.Counters() != e.Counters() {
		t.Error("recorder counters are not the engine's")
	}

	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadRecordsJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(issued) {
		t.Fatalf("log round trip returned %d records, want %d", len(recs), len(issued))
	}

	rp := NewReplayer(recs)
	for i, rec := range recs {
		got := rp.Traceroute(rec.Cloud, rec.Prefix, rec.Bucket, rec.Purpose)
		if !equalTraceroutes(got, issued[i]) {
			t.Fatalf("replayed probe %d differs from the live one", i)
		}
	}
	if rp.Misses() != 0 {
		t.Errorf("replay of recorded requests missed %d times", rp.Misses())
	}
	if rp.Counters().Total() != int64(len(recs)) {
		t.Errorf("replayer counted %d probes, want %d", rp.Counters().Total(), len(recs))
	}
}

// TestReplayerIgnoresPurpose: the same request under a different purpose
// serves the same recorded result (the network's answer does not depend on
// why the probe was sent), while still accounting the new purpose.
func TestReplayerIgnoresPurpose(t *testing.T) {
	e := replayRig(t)
	rec := NewRecorder(e)
	want := rec.Traceroute(0, 3, 7, Background)
	rp := NewReplayer(rec.Log())
	got := rp.Traceroute(0, 3, 7, OnDemand)
	if !equalTraceroutes(got, want) {
		t.Fatal("purpose change broke replay lookup")
	}
	if rp.Counters().Count(OnDemand) != 1 || rp.Counters().Count(Background) != 0 {
		t.Error("replayer accounted the recorded purpose, not the requested one")
	}
}

// TestReplayerMissDegradesSafely: a request absent from the recording
// yields a zero traceroute that Compare rejects, and is counted.
func TestReplayerMissDegradesSafely(t *testing.T) {
	e := replayRig(t)
	rec := NewRecorder(e)
	baseline := rec.Traceroute(0, 3, 0, Background)
	rp := NewReplayer(rec.Log())
	miss := rp.Traceroute(0, 99, 5, OnDemand)
	if len(miss.Hops) != 0 {
		t.Fatal("miss fabricated hops")
	}
	if rp.Misses() != 1 {
		t.Fatalf("misses = %d, want 1", rp.Misses())
	}
	if res := Compare(miss, baseline); res.OK {
		t.Error("Compare accepted a missed (zero) traceroute")
	}
}
