package probe

import (
	"context"
	"errors"
	"time"

	"blameit/internal/metrics"
	"blameit/internal/netmodel"
)

// RetryConfig tunes the RetryingProber.
type RetryConfig struct {
	// MaxAttempts bounds the tries per probe, including the first
	// (default 3).
	MaxAttempts int
	// PerAttemptTimeout is the context deadline applied to each attempt
	// (default 2s). It matters only for probers that actually block; the
	// simulated chaos wrappers fail synchronously.
	PerAttemptTimeout time.Duration
	// BackoffBase is the delay before the first retry; each further retry
	// doubles it up to BackoffCap, with deterministic ±50% jitter derived
	// from the probe key (defaults 100ms / 2s). Delays are only slept when
	// a sleeper is installed with SetSleep — under simulated time retries
	// are immediate, keeping runs deterministic and fast.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// BreakerThreshold opens a cloud location's circuit after this many
	// consecutive exhausted probes from it (default 5; <0 disables the
	// breaker).
	BreakerThreshold int
	// BreakerCooldownBuckets is how long (in bucket time, so replay stays
	// deterministic) an open circuit refuses probes before letting one
	// half-open trial through (default 3 buckets = 15 minutes).
	BreakerCooldownBuckets netmodel.Bucket
}

// DefaultRetryConfig returns the production-shaped retry policy.
func DefaultRetryConfig() RetryConfig {
	return RetryConfig{
		MaxAttempts:            3,
		PerAttemptTimeout:      2 * time.Second,
		BackoffBase:            100 * time.Millisecond,
		BackoffCap:             2 * time.Second,
		BreakerThreshold:       5,
		BreakerCooldownBuckets: 3,
	}
}

// ErrCircuitOpen is returned while a cloud location's breaker is open: the
// probe was refused without reaching the underlying prober.
var ErrCircuitOpen = errors.New("probe: circuit open, probe refused")

// RetryStats is the RetryingProber's cumulative accounting.
type RetryStats struct {
	// Attempts counts every try handed to the wrapped prober.
	Attempts int64
	// Failures counts attempts that returned an error.
	Failures int64
	// Retries counts re-attempts after a failed try.
	Retries int64
	// Succeeded counts probes that eventually returned a usable traceroute.
	Succeeded int64
	// Exhausted counts probes that failed every attempt.
	Exhausted int64
	// BreakerOpens counts circuit-open transitions (including re-opens
	// after a failed half-open trial).
	BreakerOpens int64
	// BreakerShortCircuits counts probes refused while a circuit was open.
	BreakerShortCircuits int64
}

type breakerState struct {
	consecutive int // consecutive exhausted probes while closed
	open        bool
	openUntil   netmodel.Bucket
	halfOpen    bool // one trial probe in flight after cooldown
}

// RetryingProber hardens a fallible prober: failed attempts are retried
// with capped exponential backoff and deterministic jitter, and a
// per-cloud circuit breaker stops hammering a location whose probes stay
// dark — while open, probes are refused instantly (the active phase then
// emits a degraded, non-localizing verdict instead of blocking the job).
//
// The breaker runs on bucket time, not wall time: cooldowns expire as the
// simulation advances, so a run's outcome is independent of host speed and
// reproducible under replay. Like every Prober in this repo it is driven
// by one goroutine at a time (the pipeline probes serially).
//
// If the wrapped prober does not implement ErrProber it cannot fail, and
// the wrapper is a transparent pass-through — wrapping an infallible
// Engine changes nothing, byte for byte.
type RetryingProber struct {
	base  Prober
	eb    ErrProber // nil when base cannot fail
	cfg   RetryConfig
	sleep func(time.Duration)

	stats    RetryStats
	breakers map[netmodel.CloudID]*breakerState

	reg         *metrics.Registry
	mFailures   *metrics.Counter
	mRetries    *metrics.Counter
	mExhausted  *metrics.Counter
	mOpens      *metrics.Counter
	mShortCircs *metrics.Counter
}

var _ Prober = (*RetryingProber)(nil)
var _ ErrProber = (*RetryingProber)(nil)

// NewRetryingProber wraps base with the given retry policy. Zero-valued
// config fields take their defaults (DefaultRetryConfig); set
// BreakerThreshold negative to disable the circuit breaker.
func NewRetryingProber(base Prober, cfg RetryConfig) *RetryingProber {
	def := DefaultRetryConfig()
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = def.MaxAttempts
	}
	if cfg.PerAttemptTimeout <= 0 {
		cfg.PerAttemptTimeout = def.PerAttemptTimeout
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = def.BackoffBase
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = def.BackoffCap
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = def.BreakerThreshold
	}
	if cfg.BreakerCooldownBuckets <= 0 {
		cfg.BreakerCooldownBuckets = def.BreakerCooldownBuckets
	}
	eb, _ := base.(ErrProber)
	return &RetryingProber{base: base, eb: eb, cfg: cfg, breakers: make(map[netmodel.CloudID]*breakerState)}
}

// SetSleep installs a real sleeper for the backoff delays (live
// deployments pass time.Sleep). Without one, retries are immediate — the
// right behavior under simulated time.
func (rp *RetryingProber) SetSleep(f func(time.Duration)) { rp.sleep = f }

// SetMetrics registers the wrapper's failure accounting lazily (counters
// appear on first event, so a fault-free run's snapshot is unchanged) and
// forwards the registry to the wrapped prober.
func (rp *RetryingProber) SetMetrics(reg *metrics.Registry) {
	rp.reg = reg
	if m, ok := rp.base.(interface{ SetMetrics(*metrics.Registry) }); ok {
		m.SetMetrics(reg)
	}
}

func (rp *RetryingProber) counter(handle **metrics.Counter, name string) *metrics.Counter {
	if *handle == nil && rp.reg != nil {
		*handle = rp.reg.Counter(name)
	}
	return *handle
}

// Stats returns the cumulative retry/breaker accounting.
func (rp *RetryingProber) Stats() RetryStats { return rp.stats }

// OpenCircuits counts cloud locations whose breaker is open at bucket b.
func (rp *RetryingProber) OpenCircuits(b netmodel.Bucket) int {
	n := 0
	for _, st := range rp.breakers {
		if st.open && b < st.openUntil {
			n++
		}
	}
	return n
}

// Counters delegates to the wrapped prober's per-purpose accounting.
func (rp *RetryingProber) Counters() *Counters { return rp.base.Counters() }

// retryHash derives the deterministic backoff jitter for one retry.
func retryHash(c netmodel.CloudID, p netmodel.PrefixID, b netmodel.Bucket, attempt int) uint64 {
	h := uint64(c)*0x9E3779B97F4A7C15 ^ uint64(p)*0xBF58476D1CE4E5B9 ^ uint64(b)*0x94D049BB133111EB ^ uint64(attempt)
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

// backoff returns the capped exponential delay before retry `attempt`
// (1-based), jittered deterministically into [0.5d, 1.5d).
func (rp *RetryingProber) backoff(c netmodel.CloudID, p netmodel.PrefixID, b netmodel.Bucket, attempt int) time.Duration {
	d := rp.cfg.BackoffBase << (attempt - 1)
	if d > rp.cfg.BackoffCap || d <= 0 {
		d = rp.cfg.BackoffCap
	}
	u := float64(retryHash(c, p, b, attempt)>>11) / float64(1<<53)
	return time.Duration((0.5 + u) * float64(d))
}

// Traceroute implements Prober: failures are absorbed into a hopless
// result, which Compare treats as non-localizing.
func (rp *RetryingProber) Traceroute(c netmodel.CloudID, p netmodel.PrefixID, b netmodel.Bucket, purpose Purpose) Traceroute {
	tr, _ := rp.TracerouteErr(context.Background(), c, p, b, purpose)
	return tr
}

// TracerouteErr issues one traceroute with retries and breaker protection.
// On success the error is nil; otherwise the (possibly hopless) last
// result is returned with the final error — ErrCircuitOpen when the probe
// never reached the underlying prober.
func (rp *RetryingProber) TracerouteErr(ctx context.Context, c netmodel.CloudID, p netmodel.PrefixID, b netmodel.Bucket, purpose Purpose) (Traceroute, error) {
	if rp.eb == nil {
		// Infallible base: transparent pass-through.
		return rp.base.Traceroute(c, p, b, purpose), nil
	}
	st := rp.breakers[c]
	if st == nil {
		st = &breakerState{}
		rp.breakers[c] = st
	}
	if st.open {
		if b < st.openUntil {
			rp.stats.BreakerShortCircuits++
			rp.counter(&rp.mShortCircs, "probe.breaker.short_circuits").Inc()
			return Traceroute{}, ErrCircuitOpen
		}
		// Cooldown over: let one trial through.
		st.open = false
		st.halfOpen = true
	}

	var tr Traceroute
	var err error
	for attempt := 0; attempt < rp.cfg.MaxAttempts; attempt++ {
		actx := ctx
		var cancel context.CancelFunc
		if rp.cfg.PerAttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, rp.cfg.PerAttemptTimeout)
		}
		rp.stats.Attempts++
		tr, err = rp.eb.TracerouteErr(actx, c, p, b, purpose)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			rp.stats.Succeeded++
			st.consecutive = 0
			st.halfOpen = false
			return tr, nil
		}
		rp.stats.Failures++
		rp.counter(&rp.mFailures, "probe.retry.failures").Inc()
		if ctx.Err() != nil {
			// The caller's context is gone; retrying cannot help.
			break
		}
		if attempt < rp.cfg.MaxAttempts-1 {
			rp.stats.Retries++
			rp.counter(&rp.mRetries, "probe.retry.retries").Inc()
			if rp.sleep != nil {
				rp.sleep(rp.backoff(c, p, b, attempt+1))
			}
		}
	}
	rp.stats.Exhausted++
	rp.counter(&rp.mExhausted, "probe.retry.exhausted").Inc()
	if rp.cfg.BreakerThreshold > 0 {
		if st.halfOpen {
			// Failed trial: straight back to open.
			st.halfOpen = false
			st.open = true
			st.openUntil = b + rp.cfg.BreakerCooldownBuckets
			rp.stats.BreakerOpens++
			rp.counter(&rp.mOpens, "probe.breaker.opens").Inc()
		} else if st.consecutive++; st.consecutive >= rp.cfg.BreakerThreshold {
			st.open = true
			st.openUntil = b + rp.cfg.BreakerCooldownBuckets
			st.consecutive = 0
			rp.stats.BreakerOpens++
			rp.counter(&rp.mOpens, "probe.breaker.opens").Inc()
		}
	}
	return tr, err
}
