package probe

import (
	"blameit/internal/bgp"
	"blameit/internal/metrics"
	"blameit/internal/netmodel"
	"blameit/internal/topology"
)

// BackgroundConfig controls the baseline-maintenance strategy of §5.4.
type BackgroundConfig struct {
	// PeriodBuckets is the interval between periodic baseline traceroutes
	// per (cloud, BGP path). The paper's sweet spot is twice a day
	// (144 buckets = 12 hours).
	PeriodBuckets netmodel.Bucket
	// OnChurn additionally triggers a traceroute whenever the BGP listener
	// reports a path change or withdrawal for an entry.
	OnChurn bool
	// ChurnDedupeBuckets skips a churn-triggered probe when the new path
	// already has a baseline younger than this, keeping churn overhead
	// modest (0 disables deduplication).
	ChurnDedupeBuckets netmodel.Bucket
}

// DefaultBackgroundConfig is the production sweet spot: 12-hourly probes
// plus churn triggers (§6.5, Fig. 13).
func DefaultBackgroundConfig() BackgroundConfig {
	return BackgroundConfig{
		PeriodBuckets:      12 * netmodel.BucketsPerHour,
		OnChurn:            true,
		ChurnDedupeBuckets: 12 * netmodel.BucketsPerHour,
	}
}

// historyLen bounds the per-path baseline history. The active phase needs
// a baseline that predates an ongoing issue; a short ring suffices because
// issues are detected within one job period of starting.
const historyLen = 8

// Baseliner maintains baseline traceroutes for every (cloud, BGP path),
// refreshed periodically and on BGP churn. Drive it forward one bucket at
// a time with Advance.
type Baseliner struct {
	cfg      BackgroundConfig
	prober   Prober
	world    *topology.World
	table    *bgp.Table
	listener *bgp.Listener

	// reps maps each known middle key to a representative client prefix to
	// probe, and its cloud location.
	reps map[netmodel.MiddleKey]repTarget
	// baselines holds the recent traceroutes per middle key, oldest first.
	baselines map[netmodel.MiddleKey][]Traceroute
	// suppressed pauses periodic refreshes for paths with an ongoing
	// latency issue, so the "normal picture" is not overwritten by
	// incident measurements.
	suppressed map[netmodel.MiddleKey]netmodel.Bucket

	// prov/filter scope the baseliner to one provider's cloud locations in
	// a multi-provider world. Unfiltered baseliners (NewBaselinerWith)
	// cover every cloud, which is the historical behavior.
	prov   netmodel.ProviderID
	filter bool

	mSuppressions *metrics.Counter
	mSkipped      *metrics.Counter
	mChurnDeduped *metrics.Counter
	reg           *metrics.Registry
	mFailed       *metrics.Counter // lazy: registered on first failed probe
}

type repTarget struct {
	cloud  netmodel.CloudID
	prefix netmodel.PrefixID
}

// NewBaseliner builds the manager around a live traceroute engine. It is a
// convenience for NewBaselinerWith that borrows the engine's simulator
// topology.
func NewBaseliner(cfg BackgroundConfig, engine *Engine, table *bgp.Table) *Baseliner {
	return NewBaselinerWith(cfg, engine, engine.Sim.World, table)
}

// NewBaselinerWith builds the manager over any Prober and registers every
// (cloud, BGP path) pair present in the routing table at bucket 0. No
// probes are issued yet; the first Advance cycle establishes baselines.
// The world supplies the BGP-prefix → representative-/24 mapping; it must
// describe the same topology the prober measures.
func NewBaselinerWith(cfg BackgroundConfig, prober Prober, w *topology.World, table *bgp.Table) *Baseliner {
	return newBaseliner(cfg, prober, w, table, 0, false)
}

// NewBaselinerForProvider builds the manager scoped to one provider: only
// that provider's cloud locations are registered for periodic baselines,
// and churn events at other providers' locations are ignored — a provider
// cannot issue traceroutes from edges it does not own. In a
// single-provider world this is identical to NewBaselinerWith.
func NewBaselinerForProvider(cfg BackgroundConfig, prober Prober, w *topology.World, table *bgp.Table, prov netmodel.ProviderID) *Baseliner {
	return newBaseliner(cfg, prober, w, table, prov, true)
}

func newBaseliner(cfg BackgroundConfig, prober Prober, w *topology.World, table *bgp.Table, prov netmodel.ProviderID, filter bool) *Baseliner {
	bg := &Baseliner{
		cfg:        cfg,
		prober:     prober,
		world:      w,
		table:      table,
		listener:   bgp.NewListener(table),
		reps:       make(map[netmodel.MiddleKey]repTarget),
		baselines:  make(map[netmodel.MiddleKey][]Traceroute),
		suppressed: make(map[netmodel.MiddleKey]netmodel.Bucket),
		prov:       prov,
		filter:     filter,
	}
	for _, c := range w.Clouds {
		if filter && c.Provider != prov {
			continue
		}
		for _, bp := range w.BGPPrefixes {
			path := table.PathAt(c.ID, bp.ID, 0)
			mk := path.Key()
			if _, ok := bg.reps[mk]; !ok {
				kids := w.PrefixesOfBGP(bp.ID)
				bg.reps[mk] = repTarget{cloud: c.ID, prefix: kids[0]}
			}
		}
	}
	return bg
}

// NumPaths returns the number of distinct (cloud, BGP path) baselines
// being maintained.
func (bg *Baseliner) NumPaths() int { return len(bg.reps) }

// SetMetrics mirrors the baseliner's suppression and churn-dedup activity
// into a metrics registry (probe.baseline.* counters).
func (bg *Baseliner) SetMetrics(reg *metrics.Registry) {
	bg.reg = reg
	bg.mSuppressions = reg.Counter("probe.baseline.suppressions")
	bg.mSkipped = reg.Counter("probe.baseline.refreshes_suppressed")
	bg.mChurnDeduped = reg.Counter("probe.baseline.churn_deduped")
}

// offset staggers periodic probes across the period so they do not all
// fire in one bucket.
func offset(mk netmodel.MiddleKey, period netmodel.Bucket) netmodel.Bucket {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(mk); i++ {
		h ^= uint64(mk[i])
		h *= 1099511628211
	}
	return netmodel.Bucket(h % uint64(period))
}

// store appends a baseline to the key's history ring. A failed traceroute
// (no hops — every attempt exhausted on a fallible prober) is dropped: a
// hopless entry could never be compared against, and overwriting a good
// baseline with it would blind the active phase exactly when probes are
// flaky. The drop is counted (probe.baseline.failed, registered lazily so
// fault-free snapshots are unchanged).
func (bg *Baseliner) store(tr Traceroute) {
	if len(tr.Hops) == 0 {
		if bg.mFailed == nil && bg.reg != nil {
			bg.mFailed = bg.reg.Counter("probe.baseline.failed")
		}
		bg.mFailed.Inc()
		return
	}
	mk := tr.Path.Key()
	h := append(bg.baselines[mk], tr)
	if len(h) > historyLen {
		h = h[len(h)-historyLen:]
	}
	bg.baselines[mk] = h
}

// Suppress pauses periodic refreshes of the given paths until the given
// bucket. The pipeline calls this for paths with ongoing middle issues so
// incident measurements never overwrite the pre-fault picture.
func (bg *Baseliner) Suppress(keys []netmodel.MiddleKey, until netmodel.Bucket) {
	for _, mk := range keys {
		if bg.suppressed[mk] < until {
			bg.suppressed[mk] = until
			bg.mSuppressions.Inc()
		}
	}
}

// Advance runs the background prober for bucket b: issues the periodic
// probes scheduled for this bucket and, if configured, probes entries the
// BGP listener reports as changed.
func (bg *Baseliner) Advance(b netmodel.Bucket) {
	// Periodic refresh, staggered per path; suppressed paths keep their
	// pre-incident picture.
	if bg.cfg.PeriodBuckets > 0 {
		for mk, rep := range bg.reps {
			if b%bg.cfg.PeriodBuckets != offset(mk, bg.cfg.PeriodBuckets) {
				continue
			}
			if until, ok := bg.suppressed[mk]; ok && b < until {
				bg.mSkipped.Inc()
				continue
			}
			tr := bg.prober.Traceroute(rep.cloud, rep.prefix, b, Background)
			bg.store(tr)
		}
	}
	// Churn triggers: probe the affected client prefix from the affected
	// cloud, which establishes a baseline for the new path. Events whose
	// new path already has a fresh baseline are deduplicated.
	events := bg.listener.Poll(b + 1)
	if bg.cfg.OnChurn {
		for _, ev := range events {
			if bg.filter && bg.world.Clouds[ev.Cloud].Provider != bg.prov {
				continue
			}
			nk := ev.NewPath.Key()
			if bg.cfg.ChurnDedupeBuckets > 0 {
				if age, ok := bg.BaselineAge(nk, b); ok && age <= bg.cfg.ChurnDedupeBuckets {
					bg.mChurnDeduped.Inc()
					continue
				}
			}
			kids := bg.world.PrefixesOfBGP(ev.BGPPrefix)
			tr := bg.prober.Traceroute(ev.Cloud, kids[0], b, ChurnTriggered)
			bg.store(tr)
			// Churn-discovered paths are NOT added to the periodic set:
			// periodic traceroutes to the registered representatives follow
			// whatever route is current and refresh the right key, so the
			// periodic volume stays at two probes per path per day.
		}
	}
}

// Baseline returns the latest baseline traceroute for a middle key.
func (bg *Baseliner) Baseline(mk netmodel.MiddleKey) (Traceroute, bool) {
	h := bg.baselines[mk]
	if len(h) == 0 {
		return Traceroute{}, false
	}
	return h[len(h)-1], true
}

// BaselineBefore returns the most recent baseline taken at or before the
// cutoff bucket — the "picture prior to the fault" the §5.2 comparison
// needs. It falls back to the oldest retained baseline when every retained
// entry postdates the cutoff.
func (bg *Baseliner) BaselineBefore(mk netmodel.MiddleKey, cutoff netmodel.Bucket) (Traceroute, bool) {
	h := bg.baselines[mk]
	if len(h) == 0 {
		return Traceroute{}, false
	}
	for i := len(h) - 1; i >= 0; i-- {
		if h[i].Bucket <= cutoff {
			return h[i], true
		}
	}
	return h[0], true
}

// BaselineAge returns how stale the latest baseline of a middle key is at
// bucket b, and whether one exists.
func (bg *Baseliner) BaselineAge(mk netmodel.MiddleKey, b netmodel.Bucket) (netmodel.Bucket, bool) {
	tr, ok := bg.Baseline(mk)
	if !ok {
		return 0, false
	}
	return b - tr.Bucket, true
}
