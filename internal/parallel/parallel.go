// Package parallel is the small deterministic fan-out helper shared by the
// simulator's observation generation and the pipeline's Algorithm 1 job.
//
// The contract every caller follows: work is split into index-addressed
// units, each unit writes only to its own output slot (a per-shard buffer
// or a per-bucket result slice), and the caller merges the slots in index
// order after the fan-out returns. Scheduling order is therefore invisible
// in the output — results are byte-identical at any worker count, which is
// what lets the repo's seed-determinism guarantees survive parallelism.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve maps a Workers knob to a concrete worker count: any non-positive
// value means runtime.GOMAXPROCS(0) (use every available core), 1 forces
// the sequential path.
func Resolve(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines and
// returns once all calls have completed. Workers claim indices from a
// shared counter, so assignment of index to goroutine is nondeterministic;
// fn must write only to index-addressed state. With workers <= 1 (or n <=
// 1) everything runs on the calling goroutine, giving tests and ablations
// an exactly-sequential reference path.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForEachCtx is ForEach with cooperative cancellation: once ctx is
// cancelled, no further units are claimed and the context's error is
// returned. Units already running are never interrupted mid-flight — a
// unit either fully executes or is never started — so index-addressed
// output slots are always either complete or untouched. A nil error means
// every unit ran.
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	done := ctx.Done()
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// Shard is a contiguous half-open index range [Lo, Hi).
type Shard struct {
	Lo, Hi int
}

// Shards splits [0, n) into at most parts near-equal contiguous ranges,
// never returning an empty shard. The split depends only on (n, parts), so
// shard boundaries — and hence per-shard outputs — are deterministic.
func Shards(n, parts int) []Shard {
	if n <= 0 {
		return nil
	}
	if parts > n {
		parts = n
	}
	if parts < 1 {
		parts = 1
	}
	out := make([]Shard, 0, parts)
	for i := 0; i < parts; i++ {
		lo := i * n / parts
		hi := (i + 1) * n / parts
		if lo < hi {
			out = append(out, Shard{Lo: lo, Hi: hi})
		}
	}
	return out
}
