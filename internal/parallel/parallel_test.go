package parallel

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	for _, n := range []int{1, 2, 7} {
		if got := Resolve(n); got != n {
			t.Errorf("Resolve(%d) = %d", n, got)
		}
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 32} {
		const n = 100
		var hits [n]atomic.Int64
		ForEach(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmptyAndTiny(t *testing.T) {
	ForEach(0, 4, func(int) { t.Fatal("fn called for n=0") })
	ran := 0
	ForEach(1, 8, func(i int) { ran++ })
	if ran != 1 {
		t.Fatalf("n=1 ran %d times", ran)
	}
}

func TestShardsPartitionExactly(t *testing.T) {
	cases := []struct{ n, parts int }{
		{10, 3}, {3, 10}, {1, 1}, {100, 7}, {8, 8}, {5, 1}, {0, 4},
	}
	for _, c := range cases {
		shards := Shards(c.n, c.parts)
		next := 0
		for _, s := range shards {
			if s.Lo != next {
				t.Fatalf("n=%d parts=%d: shard starts at %d, want %d", c.n, c.parts, s.Lo, next)
			}
			if s.Hi <= s.Lo {
				t.Fatalf("n=%d parts=%d: empty shard %+v", c.n, c.parts, s)
			}
			next = s.Hi
		}
		if next != c.n {
			t.Fatalf("n=%d parts=%d: shards cover [0,%d), want [0,%d)", c.n, c.parts, next, c.n)
		}
		if len(shards) > c.parts && c.parts > 0 {
			t.Fatalf("n=%d parts=%d: %d shards exceed parts", c.n, c.parts, len(shards))
		}
	}
}

func TestShardsDeterministic(t *testing.T) {
	a := Shards(1000, 16)
	b := Shards(1000, 16)
	if len(a) != len(b) {
		t.Fatal("shard count varies")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("shard %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestForEachCtxRunsAllUnits(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var hits [100]atomic.Int64
		err := ForEachCtx(context.Background(), len(hits), workers, func(i int) {
			hits[i].Add(1)
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: unit %d ran %d times", workers, i, hits[i].Load())
			}
		}
	}
}

func TestForEachCtxStopsOnCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		const n = 10000
		err := ForEachCtx(ctx, n, workers, func(i int) {
			// Cancel from inside an early unit: later units must not start.
			if ran.Add(1) == 5 {
				cancel()
			}
		})
		cancel()
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if got := ran.Load(); got >= n {
			t.Fatalf("workers=%d: all %d units ran despite cancellation", workers, got)
		}
	}
}

func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	if err := ForEachCtx(ctx, 10, 1, func(i int) { ran++ }); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Fatalf("%d units ran under a pre-cancelled context", ran)
	}
	// Degenerate n with a live context is a no-op without error.
	if err := ForEachCtx(context.Background(), 0, 4, func(i int) {}); err != nil {
		t.Fatalf("n=0: %v", err)
	}
}
