// Package baselines implements the comparison systems the paper evaluates
// BlameIt against: an active-only continuous prober (which also serves as
// the ground-truth collector of §6.4), a Trinocular-style adaptive prober
// (probe-budget comparison of §6.5), the ⟨AS, Metro⟩ grouping variant of
// the passive phase (Fig. 11), and the prefix-count impact ranking
// (Fig. 4b / Fig. 12).
package baselines

import (
	"fmt"
	"sort"

	"blameit/internal/bgp"
	"blameit/internal/core"
	"blameit/internal/netmodel"
	"blameit/internal/probe"
	"blameit/internal/stats"
	"blameit/internal/topology"
)

// repTarget is a representative probing target for one middle key.
type repTarget struct {
	cloud  netmodel.CloudID
	prefix netmodel.PrefixID
}

// registerPaths enumerates the (cloud, BGP path) pairs of a routing table
// at bucket 0 with a representative client prefix each.
func registerPaths(w *topology.World, table *bgp.Table) map[netmodel.MiddleKey]repTarget {
	reps := make(map[netmodel.MiddleKey]repTarget)
	for _, c := range w.Clouds {
		for _, bp := range w.BGPPrefixes {
			mk := table.PathAt(c.ID, bp.ID, 0).Key()
			if _, ok := reps[mk]; !ok {
				reps[mk] = repTarget{cloud: c.ID, prefix: w.PrefixesOfBGP(bp.ID)[0]}
			}
		}
	}
	return reps
}

// pathNormals keeps per-hop contribution reservoirs for one path, from
// which an AS's "normal" contribution is estimated as a median.
type pathNormals struct {
	hops []hopNormal
}

type hopNormal struct {
	as      netmodel.ASN
	segment netmodel.Segment
	vals    []float64
	n       int
}

const normalCap = 256

func (pn *pathNormals) update(tr probe.Traceroute) {
	if len(pn.hops) != len(tr.Hops) || !sameASes(pn.hops, tr.Hops) {
		// Path changed: restart normals.
		pn.hops = make([]hopNormal, len(tr.Hops))
		for i, h := range tr.Hops {
			pn.hops[i] = hopNormal{as: h.AS, segment: h.Segment}
		}
	}
	for i := range tr.Hops {
		h := &pn.hops[i]
		h.n++
		v := tr.Contribution(i)
		if len(h.vals) < normalCap {
			h.vals = append(h.vals, v)
			continue
		}
		j := (uint64(h.n)*0x9E3779B97F4A7C15 ^ uint64(i)) % uint64(h.n)
		if j < normalCap {
			h.vals[j] = v
		}
	}
}

func sameASes(hops []hopNormal, trHops []probe.Hop) bool {
	for i := range hops {
		if hops[i].as != trHops[i].AS {
			return false
		}
	}
	return true
}

// culprit compares a fresh traceroute against the normals and names the AS
// with the largest contribution increase.
func (pn *pathNormals) culprit(tr probe.Traceroute) (netmodel.ASN, netmodel.Segment, float64, bool) {
	if len(pn.hops) != len(tr.Hops) || !sameASes(pn.hops, tr.Hops) {
		return 0, 0, 0, false
	}
	var bestAS netmodel.ASN
	var bestSeg netmodel.Segment
	best := 0.0
	for i := range tr.Hops {
		if len(pn.hops[i].vals) == 0 {
			return 0, 0, 0, false
		}
		inc := tr.Contribution(i) - stats.Median(pn.hops[i].vals)
		if inc > best {
			best = inc
			bestAS = tr.Hops[i].AS
			bestSeg = tr.Hops[i].Segment
		}
	}
	return bestAS, bestSeg, best, true
}

// ContinuousProber is the "active probing alone" comparator: it traceroutes
// every (cloud, BGP path) at a fixed period, maintaining per-AS normal
// contributions. With a one-bucket period it doubles as the ground-truth
// collector the paper uses for large-scale corroboration (§6.4).
type ContinuousProber struct {
	Engine  *probe.Engine
	period  netmodel.Bucket
	reps    map[netmodel.MiddleKey]repTarget
	normals map[netmodel.MiddleKey]*pathNormals
}

// NewContinuousProber probes every path each `period` buckets.
func NewContinuousProber(engine *probe.Engine, table *bgp.Table, period netmodel.Bucket) *ContinuousProber {
	if period < 1 {
		period = 1
	}
	return &ContinuousProber{
		Engine:  engine,
		period:  period,
		reps:    registerPaths(engine.Sim.World, table),
		normals: make(map[netmodel.MiddleKey]*pathNormals),
	}
}

// NumPaths returns the number of maintained paths.
func (cp *ContinuousProber) NumPaths() int { return len(cp.reps) }

// ProbesPerDay returns the steady-state probing volume.
func (cp *ContinuousProber) ProbesPerDay() float64 {
	return float64(len(cp.reps)) * float64(netmodel.BucketsPerDay) / float64(cp.period)
}

// Advance issues this bucket's probes and updates per-AS normals.
func (cp *ContinuousProber) Advance(b netmodel.Bucket) {
	for mk, rep := range cp.reps {
		if int(b)%int(cp.period) != int(offsetOf(mk, cp.period)) {
			continue
		}
		tr := cp.Engine.Traceroute(rep.cloud, rep.prefix, b, probe.Background)
		pn := cp.normals[mk]
		if pn == nil {
			pn = &pathNormals{}
			cp.normals[mk] = pn
		}
		pn.update(tr)
	}
}

// Culprit traceroutes the path now and names the AS with the largest
// contribution increase over its normal (the §6.4 ground-truth method).
func (cp *ContinuousProber) Culprit(mk netmodel.MiddleKey, b netmodel.Bucket) (netmodel.ASN, netmodel.Segment, bool) {
	rep, ok := cp.reps[mk]
	if !ok {
		return 0, 0, false
	}
	pn := cp.normals[mk]
	if pn == nil {
		return 0, 0, false
	}
	tr := cp.Engine.Traceroute(rep.cloud, rep.prefix, b, probe.OnDemand)
	as, seg, _, ok := pn.culprit(tr)
	return as, seg, ok
}

// CulpritForPrefix runs the ground-truth comparison for a specific client
// prefix rather than the registered representative.
func (cp *ContinuousProber) CulpritForPrefix(mk netmodel.MiddleKey, c netmodel.CloudID, p netmodel.PrefixID, b netmodel.Bucket) (netmodel.ASN, netmodel.Segment, bool) {
	pn := cp.normals[mk]
	if pn == nil {
		return 0, 0, false
	}
	tr := cp.Engine.Traceroute(c, p, b, probe.OnDemand)
	as, seg, _, ok := pn.culprit(tr)
	return as, seg, ok
}

// offsetOf staggers probes across the period.
func offsetOf(mk netmodel.MiddleKey, period netmodel.Bucket) netmodel.Bucket {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(mk); i++ {
		h ^= uint64(mk[i])
		h *= 1099511628211
	}
	return netmodel.Bucket(h % uint64(period))
}

// TrinocularProber is a Trinocular-style adaptive prober: each path starts
// at a fast probing cadence and backs off while measurements stay
// consistent with its belief of the path's normal RTT, snapping back to
// the fast cadence on surprises. Trinocular optimizes probing for
// reachability rather than latency, so its budget remains far above
// BlameIt's passive-first design (§6.5 reports 20×).
type TrinocularProber struct {
	Engine      *probe.Engine
	MinInterval netmodel.Bucket
	MaxInterval netmodel.Bucket

	reps     map[netmodel.MiddleKey]repTarget
	interval map[netmodel.MiddleKey]netmodel.Bucket
	next     map[netmodel.MiddleKey]netmodel.Bucket
	normal   map[netmodel.MiddleKey]float64 // belief: normal end-to-end RTT
}

// NewTrinocularProber creates the adaptive prober with the given cadence
// bounds.
func NewTrinocularProber(engine *probe.Engine, table *bgp.Table, min, max netmodel.Bucket) *TrinocularProber {
	t := &TrinocularProber{
		Engine:      engine,
		MinInterval: min,
		MaxInterval: max,
		reps:        registerPaths(engine.Sim.World, table),
		interval:    make(map[netmodel.MiddleKey]netmodel.Bucket),
		next:        make(map[netmodel.MiddleKey]netmodel.Bucket),
		normal:      make(map[netmodel.MiddleKey]float64),
	}
	for mk := range t.reps {
		t.interval[mk] = min
		t.next[mk] = offsetOf(mk, min)
	}
	return t
}

// Advance issues the probes due at bucket b and adapts per-path cadence.
func (t *TrinocularProber) Advance(b netmodel.Bucket) {
	for mk, rep := range t.reps {
		if t.next[mk] > b {
			continue
		}
		tr := t.Engine.Traceroute(rep.cloud, rep.prefix, b, probe.Background)
		rtt := tr.Hops[len(tr.Hops)-1].CumulativeMS
		norm, seen := t.normal[mk]
		if !seen {
			t.normal[mk] = rtt
			t.interval[mk] = t.MinInterval
		} else if rtt < norm*1.3 {
			// Consistent with belief: back off.
			t.normal[mk] = 0.9*norm + 0.1*rtt
			if t.interval[mk] *= 2; t.interval[mk] > t.MaxInterval {
				t.interval[mk] = t.MaxInterval
			}
		} else {
			// Surprise: probe aggressively.
			t.interval[mk] = t.MinInterval
		}
		t.next[mk] = b + t.interval[mk]
	}
}

// NumPaths returns the number of maintained paths.
func (t *TrinocularProber) NumPaths() int { return len(t.reps) }

// ASMetroKeyFunc returns the Fig. 11 baseline's grouping: middle aggregates
// keyed by ⟨client AS, metro⟩ (per cloud location) instead of the BGP path.
func ASMetroKeyFunc(w *topology.World) core.MiddleKeyFunc {
	return func(path netmodel.Path, p netmodel.PrefixID) netmodel.MiddleKey {
		pref := w.Prefixes[p]
		return netmodel.MiddleKey(fmt.Sprintf("am|c%d|a%d|m%d", path.Cloud, pref.AS, pref.Metro))
	}
}

// TupleImpact is the ranking record of §2.4: one ⟨cloud location, BGP
// path⟩ tuple with the count of problematic /24s it contains and its
// actual problem impact (affected users × duration).
type TupleImpact struct {
	Key      netmodel.MiddleKey
	Prefixes int     // problematic /24s
	Impact   float64 // clients × buckets of degradation
}

// RankByPrefixCount sorts tuples the way prior work ranks spatial
// aggregates: by the number of problematic /24s.
func RankByPrefixCount(ts []TupleImpact) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Prefixes != ts[j].Prefixes {
			return ts[i].Prefixes > ts[j].Prefixes
		}
		return ts[i].Key < ts[j].Key
	})
}

// RankByImpact sorts tuples by their actual client-time impact.
func RankByImpact(ts []TupleImpact) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Impact != ts[j].Impact {
			return ts[i].Impact > ts[j].Impact
		}
		return ts[i].Key < ts[j].Key
	})
}

// CoverageCurve returns, for a ranked tuple list, the cumulative fraction
// of total impact covered by the top k tuples (k = 1..n).
func CoverageCurve(ts []TupleImpact) []float64 {
	var total float64
	for _, t := range ts {
		total += t.Impact
	}
	out := make([]float64, len(ts))
	var run float64
	for i, t := range ts {
		run += t.Impact
		if total > 0 {
			out[i] = run / total
		}
	}
	return out
}

// TuplesToCover returns the fraction of tuples (under the given ranking)
// needed to cover the target fraction of total impact.
func TuplesToCover(curve []float64, target float64) float64 {
	for i, v := range curve {
		if v >= target {
			return float64(i+1) / float64(len(curve))
		}
	}
	return 1
}
