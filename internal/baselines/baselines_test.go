package baselines

import (
	"testing"

	"blameit/internal/bgp"
	"blameit/internal/faults"
	"blameit/internal/netmodel"
	"blameit/internal/probe"
	"blameit/internal/sim"
	"blameit/internal/topology"
)

func testRig(fs []faults.Fault, churn bgp.ChurnConfig, days int) (*topology.World, *bgp.Table, *probe.Engine) {
	w := topology.Generate(topology.SmallScale(), 42)
	tbl := bgp.NewTable(w, churn, netmodel.Bucket(days*netmodel.BucketsPerDay), 7)
	s := sim.New(w, tbl, faults.NewSchedule(fs), sim.DefaultConfig(99))
	return w, tbl, probe.NewEngine(s, 0.5)
}

func TestContinuousProberVolume(t *testing.T) {
	_, tbl, engine := testRig(nil, bgp.ChurnConfig{}, 1)
	cp := NewContinuousProber(engine, tbl, 2) // every 10 minutes
	if cp.NumPaths() == 0 {
		t.Fatal("no paths")
	}
	for b := netmodel.Bucket(0); b < 20; b++ {
		cp.Advance(b)
	}
	want := int64(cp.NumPaths() * 10) // 20 buckets / period 2
	got := engine.Counters().Count(probe.Background)
	if got != want {
		t.Errorf("probes = %d, want %d", got, want)
	}
	wantDaily := float64(cp.NumPaths()) * 144
	if cp.ProbesPerDay() != wantDaily {
		t.Errorf("probes/day = %v, want %v", cp.ProbesPerDay(), wantDaily)
	}
}

func TestContinuousProberCulprit(t *testing.T) {
	w := topology.Generate(topology.SmallScale(), 42)
	as := w.Tier1s[0]
	f := faults.Fault{Kind: faults.MiddleASFault, AS: as, ScopeCloud: faults.NoCloud, Start: 100, Duration: 30, ExtraMS: 80}
	tbl := bgp.NewTable(w, bgp.ChurnConfig{}, netmodel.BucketsPerDay, 7)
	s := sim.New(w, tbl, faults.NewSchedule([]faults.Fault{f}), sim.DefaultConfig(99))
	engine := probe.NewEngine(s, 0.5)
	cp := NewContinuousProber(engine, tbl, 1)
	for b := netmodel.Bucket(0); b < 100; b++ {
		cp.Advance(b)
	}
	// Find a path through the faulty AS.
	var victimKey netmodel.MiddleKey
	for _, c := range w.Clouds {
		for _, bp := range w.BGPPrefixes {
			path := tbl.PathAt(c.ID, bp.ID, 100)
			for _, m := range path.Middle {
				if m == as {
					victimKey = path.Key()
				}
			}
		}
	}
	if victimKey == "" {
		t.Fatal("no path through faulty AS")
	}
	got, seg, ok := cp.Culprit(victimKey, 110)
	if !ok {
		t.Fatal("culprit unavailable")
	}
	if got != as || seg != netmodel.SegMiddle {
		t.Errorf("culprit = AS%d (%v), want AS%d (middle)", got, seg, as)
	}
}

func TestContinuousProberCulpritUnknownPath(t *testing.T) {
	_, tbl, engine := testRig(nil, bgp.ChurnConfig{}, 1)
	cp := NewContinuousProber(engine, tbl, 1)
	if _, _, ok := cp.Culprit(netmodel.MiddleKey("bogus"), 5); ok {
		t.Error("unknown path produced a culprit")
	}
}

func TestTrinocularBacksOff(t *testing.T) {
	_, tbl, engine := testRig(nil, bgp.ChurnConfig{}, 2)
	tp := NewTrinocularProber(engine, tbl, 2, 6)
	// A quiet first day: cadence should settle at the max interval, so the
	// second day's probe count approaches paths × 288/6.
	day := netmodel.Bucket(netmodel.BucketsPerDay)
	for b := netmodel.Bucket(0); b < day; b++ {
		tp.Advance(b)
	}
	before := engine.Counters().Count(probe.Background)
	for b := day; b < 2*day; b++ {
		tp.Advance(b)
	}
	secondDay := engine.Counters().Count(probe.Background) - before
	steady := float64(tp.NumPaths()) * float64(netmodel.BucketsPerDay) / 6
	if float64(secondDay) > steady*1.6 {
		t.Errorf("second-day probes %d far above steady-state %v; back-off broken", secondDay, steady)
	}
	if float64(secondDay) < steady*0.5 {
		t.Errorf("second-day probes %d far below steady-state %v", secondDay, steady)
	}
}

func TestTrinocularStillCostlierThanBackground(t *testing.T) {
	// The adaptive prober must still issue far more probes than 2/day/path.
	_, tbl, engine := testRig(nil, bgp.ChurnConfig{}, 1)
	tp := NewTrinocularProber(engine, tbl, 2, 6)
	for b := netmodel.Bucket(0); b < netmodel.BucketsPerDay; b++ {
		tp.Advance(b)
	}
	perPath := float64(engine.Counters().Total()) / float64(tp.NumPaths())
	if perPath < 20 {
		t.Errorf("trinocular issues only %.1f probes/path/day", perPath)
	}
}

func TestASMetroKeyFuncGroupsByASAndMetro(t *testing.T) {
	w := topology.Generate(topology.SmallScale(), 42)
	kf := ASMetroKeyFunc(w)
	// Two prefixes of the same AS+metro share a key even on different paths.
	var a, b netmodel.PrefixID = -1, -1
	for i, p := range w.Prefixes {
		for j := i + 1; j < len(w.Prefixes); j++ {
			q := w.Prefixes[j]
			if p.AS == q.AS && p.Metro == q.Metro && p.BGPPrefix != q.BGPPrefix {
				a, b = p.ID, q.ID
			}
		}
	}
	if a < 0 {
		t.Skip("no same-AS same-metro prefix pair")
	}
	c := w.Clouds[0].ID
	pa := w.InitialPath(c, w.Prefixes[a].BGPPrefix)
	pb := w.InitialPath(c, w.Prefixes[b].BGPPrefix)
	if kf(pa, a) != kf(pb, b) {
		t.Error("same AS+metro prefixes got different keys")
	}
	// Different clouds must split the key.
	c2 := w.Clouds[1].ID
	pa2 := w.InitialPath(c2, w.Prefixes[a].BGPPrefix)
	if kf(pa, a) == kf(pa2, a) {
		t.Error("different clouds share an AS-metro key")
	}
}

func TestImpactRankingCurves(t *testing.T) {
	// Fig. 5's illustrative example: tuple #1 has 3 problematic prefixes
	// and impact 350; tuple #2 has 1 prefix and impact 2000.
	ts := []TupleImpact{
		{Key: "t1", Prefixes: 3, Impact: 350},
		{Key: "t2", Prefixes: 1, Impact: 2000},
	}
	byPrefix := append([]TupleImpact(nil), ts...)
	RankByPrefixCount(byPrefix)
	if byPrefix[0].Key != "t1" {
		t.Error("prefix-count ranking must put t1 first")
	}
	byImpact := append([]TupleImpact(nil), ts...)
	RankByImpact(byImpact)
	if byImpact[0].Key != "t2" {
		t.Error("impact ranking must put t2 first")
	}
	curve := CoverageCurve(byImpact)
	if len(curve) != 2 || curve[1] < 0.999 {
		t.Errorf("coverage curve = %v", curve)
	}
	// t2 alone covers 2000/2350 = 85% of impact.
	if curve[0] < 0.85 || curve[0] > 0.86 {
		t.Errorf("top-1 coverage = %v", curve[0])
	}
	if got := TuplesToCover(curve, 0.8); got != 0.5 {
		t.Errorf("tuples to cover 80%% = %v, want 0.5", got)
	}
	if got := TuplesToCover(curve, 0.99); got != 1.0 {
		t.Errorf("tuples to cover 99%% = %v, want 1.0", got)
	}
}

func TestCoverageCurveEmptyImpact(t *testing.T) {
	curve := CoverageCurve([]TupleImpact{{Key: "a"}, {Key: "b"}})
	for _, v := range curve {
		if v != 0 {
			t.Error("zero-impact curve must stay zero")
		}
	}
}
