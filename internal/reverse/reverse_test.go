package reverse

import (
	"testing"

	"blameit/internal/bgp"
	"blameit/internal/faults"
	"blameit/internal/netmodel"
	"blameit/internal/probe"
	"blameit/internal/sim"
	"blameit/internal/topology"
)

// asymPair finds an asymmetric (cloud, prefix) pair and an AS that is on
// the reverse path but not the forward path.
func asymPair(w *topology.World) (netmodel.CloudID, netmodel.PrefixID, netmodel.ASN, bool) {
	for _, c := range w.Clouds {
		for _, bp := range w.BGPPrefixes {
			if !w.Asymmetric(c.ID, bp.ID) {
				continue
			}
			fwd := w.InitialPath(c.ID, bp.ID)
			rev := w.ReversePath(c.ID, bp.ID)
			onFwd := make(map[netmodel.ASN]bool)
			for _, a := range fwd.Middle {
				onFwd[a] = true
			}
			for _, a := range rev.Middle {
				if !onFwd[a] {
					return c.ID, w.PrefixesOfBGP(bp.ID)[0], a, true
				}
			}
		}
	}
	return 0, 0, 0, false
}

func newSim(t testing.TB, fs []faults.Fault) *sim.Simulator {
	t.Helper()
	w := topology.Generate(topology.SmallScale(), 42)
	tbl := bgp.NewTable(w, bgp.ChurnConfig{}, 2*netmodel.BucketsPerDay, 7)
	return sim.New(w, tbl, faults.NewSchedule(fs), sim.DefaultConfig(99))
}

func TestReversePathDeterministicAndAsymmetricShare(t *testing.T) {
	w := topology.Generate(topology.SmallScale(), 42)
	asym, total := 0, 0
	for _, c := range w.Clouds {
		for _, bp := range w.BGPPrefixes {
			total++
			r1 := w.ReversePath(c.ID, bp.ID)
			r2 := w.ReversePath(c.ID, bp.ID)
			if !r1.Equal(r2) {
				t.Fatal("reverse path not deterministic")
			}
			if w.Asymmetric(c.ID, bp.ID) {
				asym++
				if r1.Equal(w.InitialPath(c.ID, bp.ID)) {
					t.Fatal("asymmetric pair has identical reverse path")
				}
			} else if !r1.Equal(w.InitialPath(c.ID, bp.ID)) {
				t.Fatal("symmetric pair has different reverse path")
			}
		}
	}
	frac := float64(asym) / float64(total)
	if frac < 0.2 || frac > 0.5 {
		t.Errorf("asymmetric share = %.2f, want ~0.35", frac)
	}
}

func TestReverseFaultRaisesRTTButHidesFromForwardProbe(t *testing.T) {
	w := topology.Generate(topology.SmallScale(), 42)
	c, p, as, ok := asymPair(w)
	if !ok {
		t.Fatal("no asymmetric pair")
	}
	f := faults.Fault{
		Kind: faults.MiddleASFault, AS: as, ScopeCloud: faults.NoCloud,
		Start: 100, Duration: 24, ExtraMS: 90, ReverseOnly: true,
	}
	s := newSim(t, []faults.Fault{f})
	// The handshake RTT sees the reverse congestion.
	before := s.MeanRTT(p, c, 90)
	during := s.MeanRTT(p, c, 110)
	if during-before < 80 {
		t.Fatalf("reverse fault invisible in RTT: delta %.1f", during-before)
	}
	// Ground truth attributes it to the reverse-path AS, middle segment.
	inf := s.DominantInflation(p, c, 110)
	if inf.AS != as || inf.Segment != netmodel.SegMiddle {
		t.Fatalf("ground truth = %+v, want AS%d middle", inf, as)
	}
	// The forward traceroute diff parks the increase on the first hop
	// (cloud segment), not on the true middle AS.
	e := probe.NewEngine(s, 0.5)
	base := e.Traceroute(c, p, 90, probe.Background)
	now := e.Traceroute(c, p, 110, probe.OnDemand)
	res := probe.Compare(now, base)
	if !res.OK {
		t.Fatal("forward comparison failed")
	}
	if res.AS == as {
		t.Fatal("forward probe unexpectedly localized the reverse fault")
	}
	if !Suspicious(res.OK, res.Segment, res.IncreaseMS) {
		t.Errorf("forward outcome (%v, %.1fms) not flagged suspicious", res.Segment, res.IncreaseMS)
	}
}

func TestCoordinatorLocalizesReverseFault(t *testing.T) {
	w := topology.Generate(topology.SmallScale(), 42)
	c, p, as, ok := asymPair(w)
	if !ok {
		t.Fatal("no asymmetric pair")
	}
	f := faults.Fault{
		Kind: faults.MiddleASFault, AS: as, ScopeCloud: faults.NoCloud,
		Start: 400, Duration: 24, ExtraMS: 90, ReverseOnly: true,
	}
	s := newSim(t, []faults.Fault{f})
	e := probe.NewEngine(s, 0.5)
	co := NewCoordinator(DefaultConfig(), e)
	if co.NumPaths() == 0 {
		t.Fatal("no reverse paths covered")
	}
	// Establish reverse baselines for a day before the fault.
	for b := netmodel.Bucket(0); b < 400; b++ {
		co.Advance(b)
	}
	res, ok2 := co.Localize(c, p, 410, 399)
	if !ok2 {
		t.Fatal("reverse localization unavailable")
	}
	if res.AS != as || res.Segment != netmodel.SegMiddle {
		t.Fatalf("reverse verdict = AS%d (%v), want AS%d (middle)", res.AS, res.Segment, as)
	}
	if res.IncreaseMS < 80 {
		t.Errorf("reverse increase = %.1f, want ~90", res.IncreaseMS)
	}
}

func TestLocalizeViaSharedPathRepresentative(t *testing.T) {
	// A prefix without a rich client can still be probed through an
	// enrolled client behind the same reverse path.
	w := topology.Generate(topology.SmallScale(), 42)
	s := newSim(t, nil)
	e := probe.NewEngine(s, 0.5)
	co := NewCoordinator(DefaultConfig(), e)
	for b := netmodel.Bucket(0); b < 300; b++ {
		co.Advance(b)
	}
	checked := 0
	for _, p := range w.Prefixes {
		if co.Enrolled(p.ID) {
			continue
		}
		c := w.Attachments(p.ID)[0].Cloud
		if _, ok := co.Localize(c, p.ID, 310, 309); ok {
			checked++
		}
	}
	if checked == 0 {
		t.Error("no unenrolled prefix could be localized via a shared representative")
	}
}

func TestEnrollmentDeterministicAndPartial(t *testing.T) {
	w := topology.Generate(topology.SmallScale(), 42)
	s := newSim(t, nil)
	co := NewCoordinator(DefaultConfig(), probe.NewEngine(s, 0))
	co2 := NewCoordinator(DefaultConfig(), probe.NewEngine(s, 0))
	enrolled := 0
	for _, p := range w.Prefixes {
		if co.Enrolled(p.ID) != co2.Enrolled(p.ID) {
			t.Fatal("enrollment not deterministic")
		}
		if co.Enrolled(p.ID) {
			enrolled++
		}
	}
	frac := float64(enrolled) / float64(len(w.Prefixes))
	if frac < 0.2 || frac > 0.5 {
		t.Errorf("enrolled share = %.2f, want ~0.35", frac)
	}
}

func TestReverseProbeCounting(t *testing.T) {
	s := newSim(t, nil)
	e := probe.NewEngine(s, 0)
	co := NewCoordinator(Config{RichClientShare: 0.35, PeriodBuckets: 144}, e)
	for b := netmodel.Bucket(0); b < 144; b++ {
		co.Advance(b)
	}
	if got := e.Counters().Count(probe.ClientReverse); got != int64(co.NumPaths()) {
		t.Errorf("reverse probes = %d, want one per covered path (%d)", got, co.NumPaths())
	}
}

func TestSuspicious(t *testing.T) {
	if !Suspicious(false, netmodel.SegMiddle, 50) {
		t.Error("failed comparison must be suspicious")
	}
	if !Suspicious(true, netmodel.SegCloud, 50) {
		t.Error("cloud-parked increase must be suspicious")
	}
	if !Suspicious(true, netmodel.SegMiddle, 1) {
		t.Error("vanishing increase must be suspicious")
	}
	if Suspicious(true, netmodel.SegMiddle, 50) {
		t.Error("clean middle verdict must not be suspicious")
	}
}
