// Package reverse implements the §5.1 future-work extension of the paper:
// client-issued reverse traceroutes. Internet routing is asymmetric, and a
// congestion event that exists only on the client→cloud direction inflates
// handshake RTTs while remaining invisible to the per-AS diff of
// cloud-issued forward traceroutes (the reply inflation is flat across
// hops and masquerades as a first-hop increase). The paper notes Azure
// "already has many users with rich clients that can be coordinated to
// issue traceroutes to measure the client-to-cloud paths"; this package is
// that coordination layer: an enrollment of rich clients, periodic reverse
// baselines per reverse path, and a localizer that re-checks suspicious
// forward verdicts with a reverse comparison.
package reverse

import (
	"blameit/internal/netmodel"
	"blameit/internal/probe"
	"blameit/internal/topology"
)

// historyLen bounds per-path reverse-baseline history, mirroring the
// forward Baseliner.
const historyLen = 8

// Config tunes the coordinator.
type Config struct {
	// RichClientShare is the fraction of client /24s with an enrolled rich
	// client able to issue traceroutes (Odin-style).
	RichClientShare float64
	// PeriodBuckets is the reverse-baseline refresh interval per reverse
	// path (same trade-off as the forward background probes).
	PeriodBuckets netmodel.Bucket
}

// DefaultConfig enrolls about a third of prefixes and refreshes reverse
// baselines twice a day, matching the forward sweet spot.
func DefaultConfig() Config {
	return Config{RichClientShare: 0.35, PeriodBuckets: 12 * netmodel.BucketsPerHour}
}

type repTarget struct {
	cloud  netmodel.CloudID
	prefix netmodel.PrefixID
}

// Coordinator maintains reverse baselines through enrolled rich clients.
type Coordinator struct {
	cfg    Config
	engine *probe.Engine

	reps      map[netmodel.MiddleKey]repTarget
	baselines map[netmodel.MiddleKey][]probe.Traceroute
}

// enrollHash drives the deterministic enrollment decision.
func enrollHash(p netmodel.PrefixID) uint64 {
	h := uint64(p)*0x9E3779B97F4A7C15 + 0x1234567
	h ^= h >> 31
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 29
	return h
}

// NewCoordinator enrolls rich clients and registers every reverse path
// that has at least one enrolled representative.
func NewCoordinator(cfg Config, engine *probe.Engine) *Coordinator {
	co := &Coordinator{
		cfg:       cfg,
		engine:    engine,
		reps:      make(map[netmodel.MiddleKey]repTarget),
		baselines: make(map[netmodel.MiddleKey][]probe.Traceroute),
	}
	w := engine.Sim.World
	for _, c := range w.Clouds {
		for _, bp := range w.BGPPrefixes {
			rk := w.ReversePath(c.ID, bp.ID).Key()
			if _, ok := co.reps[rk]; ok {
				continue
			}
			for _, pid := range w.PrefixesOfBGP(bp.ID) {
				if co.Enrolled(pid) {
					co.reps[rk] = repTarget{cloud: c.ID, prefix: pid}
					break
				}
			}
		}
	}
	return co
}

// Enrolled reports whether the /24 has a rich client able to probe.
func (co *Coordinator) Enrolled(p netmodel.PrefixID) bool {
	return enrollHash(p)%1000 < uint64(co.cfg.RichClientShare*1000)
}

// NumPaths returns the number of reverse paths with enrolled coverage.
func (co *Coordinator) NumPaths() int { return len(co.reps) }

// offset staggers periodic reverse probes.
func offset(mk netmodel.MiddleKey, period netmodel.Bucket) netmodel.Bucket {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(mk); i++ {
		h ^= uint64(mk[i])
		h *= 1099511628211
	}
	return netmodel.Bucket(h % uint64(period))
}

// Advance issues the periodic reverse baselines due at bucket b.
func (co *Coordinator) Advance(b netmodel.Bucket) {
	if co.cfg.PeriodBuckets <= 0 {
		return
	}
	for mk, rep := range co.reps {
		if b%co.cfg.PeriodBuckets != offset(mk, co.cfg.PeriodBuckets) {
			continue
		}
		tr := co.engine.ReverseTraceroute(rep.cloud, rep.prefix, b)
		co.store(tr)
	}
}

func (co *Coordinator) store(tr probe.Traceroute) {
	mk := tr.Path.Key()
	h := append(co.baselines[mk], tr)
	if len(h) > historyLen {
		h = h[len(h)-historyLen:]
	}
	co.baselines[mk] = h
}

// baselineBefore returns the latest reverse baseline at or before cutoff.
func (co *Coordinator) baselineBefore(mk netmodel.MiddleKey, cutoff netmodel.Bucket) (probe.Traceroute, bool) {
	h := co.baselines[mk]
	if len(h) == 0 {
		return probe.Traceroute{}, false
	}
	for i := len(h) - 1; i >= 0; i-- {
		if h[i].Bucket <= cutoff {
			return h[i], true
		}
	}
	return h[0], true
}

// Covered reports whether (cloud, prefix) can be reverse-probed at all:
// either the prefix has an enrolled rich client, or some enrolled client
// sits behind the same reverse path. Uncovered pairs are a real limitation
// of the extension — reverse probing reaches only as far as the rich-client
// population does.
func (co *Coordinator) Covered(c netmodel.CloudID, p netmodel.PrefixID) bool {
	if co.Enrolled(p) {
		return true
	}
	rk := co.engine.Sim.ReversePathFor(p, c).Key()
	rep, ok := co.reps[rk]
	return ok && rep.cloud == c
}

// Localize runs the reverse comparison for (cloud, prefix) at bucket b,
// against a reverse baseline predating cutoff. It needs an enrolled rich
// client in the prefix — or, failing that, one behind the same reverse
// path — and an established baseline.
func (co *Coordinator) Localize(c netmodel.CloudID, p netmodel.PrefixID, b, cutoff netmodel.Bucket) (probe.CompareResult, bool) {
	target := p
	rk := co.engine.Sim.ReversePathFor(p, c).Key()
	if !co.Enrolled(p) {
		rep, ok := co.reps[rk]
		if !ok || rep.cloud != c {
			return probe.CompareResult{}, false
		}
		target = rep.prefix
	}
	baseline, ok := co.baselineBefore(rk, cutoff)
	if !ok {
		return probe.CompareResult{}, false
	}
	now := co.engine.ReverseTraceroute(c, target, b)
	res := probe.Compare(now, baseline)
	if !res.OK {
		return probe.CompareResult{}, false
	}
	return res, true
}

// Suspicious reports whether a forward comparison's outcome warrants a
// reverse re-check for a passively middle-blamed issue: the forward diff
// failed outright, found no meaningful increase, or parked the increase on
// the cloud segment — the signature of reverse-direction congestion
// flattening every hop.
func Suspicious(ok bool, seg netmodel.Segment, increaseMS float64) bool {
	if !ok {
		return true
	}
	return seg == netmodel.SegCloud || increaseMS < 5
}

// World re-exports the engine's world for callers composing experiments.
func (co *Coordinator) World() *topology.World { return co.engine.Sim.World }
