// Package faults models wide-area latency faults: which network element is
// degraded, by how much, and for how long. It provides the long-tailed
// duration distribution from §2.3 of the paper, a randomized incident
// generator, a fast time-indexed overlay for the simulator, and a scenario
// library reproducing the real-world case studies of §6.3.
package faults

import (
	"fmt"
	"math/rand"

	"blameit/internal/netmodel"
	"blameit/internal/stats"
	"blameit/internal/topology"
)

// Kind classifies what a fault degrades.
type Kind int

const (
	// CloudFault degrades one cloud location (server overload, internal
	// routing issues, incomplete maintenance).
	CloudFault Kind = iota
	// MiddleASFault degrades a transit/tier-1 AS, either on every path
	// through it or only on paths from one cloud location.
	MiddleASFault
	// ClientASFault degrades every prefix of one eyeball AS (e.g. an ISP
	// maintenance window).
	ClientASFault
	// ClientPrefixFault degrades a single /24 (last-mile congestion).
	ClientPrefixFault
	// TrafficShift reroutes a set of prefixes to a distant cloud location
	// (the §6.3 East-Asia → US-west incident); the latency increase comes
	// from the long-haul middle segment of the new path.
	TrafficShift
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case CloudFault:
		return "cloud-fault"
	case MiddleASFault:
		return "middle-as-fault"
	case ClientASFault:
		return "client-as-fault"
	case ClientPrefixFault:
		return "client-prefix-fault"
	case TrafficShift:
		return "traffic-shift"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// NoCloud marks a middle fault as unscoped (affecting paths from every
// cloud location).
const NoCloud netmodel.CloudID = -1

// Fault is one latency-degradation incident with ground truth attached.
type Fault struct {
	ID   int
	Kind Kind

	// Cloud is the degraded location (CloudFault) or the shift target
	// (TrafficShift).
	Cloud netmodel.CloudID
	// AS is the degraded AS for MiddleASFault / ClientASFault.
	AS netmodel.ASN
	// ScopeCloud restricts a MiddleASFault to paths from one cloud
	// location (NoCloud = all). This models the paper's observation that a
	// large AS may have a problem along certain paths but not all.
	ScopeCloud netmodel.CloudID
	// Prefix is the degraded /24 for ClientPrefixFault.
	Prefix netmodel.PrefixID
	// ShiftPrefixes is the set of rerouted prefixes for TrafficShift.
	ShiftPrefixes []netmodel.PrefixID

	Start    netmodel.Bucket
	Duration netmodel.Bucket
	ExtraMS  float64
	// ReverseOnly marks a MiddleASFault that congests only the
	// client→cloud direction. The TCP handshake RTT still sees it (the
	// handshake crosses both directions), but cloud-issued forward
	// traceroutes cannot attribute it — the motivation for the §5.1
	// reverse-traceroute extension.
	ReverseOnly bool
	Desc        string
}

// End returns the first bucket after the fault.
func (f Fault) End() netmodel.Bucket { return f.Start + f.Duration }

// ActiveAt reports whether the fault is in effect during the bucket.
func (f Fault) ActiveAt(b netmodel.Bucket) bool { return b >= f.Start && b < f.End() }

// GroundTruth is the answer key for a fault: which coarse segment is to
// blame and which AS an ideal fine-grained localizer should name.
type GroundTruth struct {
	Segment netmodel.Segment
	AS      netmodel.ASN
}

// Truth computes the fault's ground truth within a world.
func (f Fault) Truth(w *topology.World) GroundTruth {
	switch f.Kind {
	case CloudFault:
		return GroundTruth{Segment: netmodel.SegCloud, AS: w.CloudASNOf(f.Cloud)}
	case MiddleASFault:
		return GroundTruth{Segment: netmodel.SegMiddle, AS: f.AS}
	case ClientASFault:
		return GroundTruth{Segment: netmodel.SegClient, AS: f.AS}
	case ClientPrefixFault:
		return GroundTruth{Segment: netmodel.SegClient, AS: w.Prefixes[f.Prefix].AS}
	case TrafficShift:
		// The long haul of the new path is carried by its first middle AS.
		if len(f.ShiftPrefixes) > 0 {
			bp := w.Prefixes[f.ShiftPrefixes[0]].BGPPrefix
			path := w.InitialPath(f.Cloud, bp)
			if len(path.Middle) > 0 {
				return GroundTruth{Segment: netmodel.SegMiddle, AS: path.Middle[0]}
			}
		}
		return GroundTruth{Segment: netmodel.SegMiddle}
	default:
		return GroundTruth{}
	}
}

// SampleDuration draws an incident duration in buckets from the long-tailed
// mixture calibrated to §2.3: over 60% of issues last one bucket (≤5 min)
// while ~8% exceed two hours.
func SampleDuration(r *rand.Rand) netmodel.Bucket {
	u := r.Float64()
	switch {
	case u < 0.60:
		return 1
	case u < 0.80:
		return netmodel.Bucket(2 + r.Intn(5)) // 10-30 min
	case u < 0.92:
		return netmodel.Bucket(7 + r.Intn(17)) // 35 min - 2 h
	default:
		return netmodel.Bucket(25 + int(stats.BoundedPareto(r, 1.1, 1, 60))) // > 2 h
	}
}

// Rates sets the expected number of randomly generated faults per day by
// kind. Client-side faults outnumber middle faults, which outnumber cloud
// faults, but each cloud fault touches far more quartets — reproducing the
// blame-fraction mix of Fig. 8 (middle slightly above client, cloud < 4%).
type Rates struct {
	CloudPerDay        float64
	MiddleASPerDay     float64
	ClientASPerDay     float64
	ClientPrefixPerDay float64
}

// DefaultRates is calibrated against the paper's Fig. 8 blame mix on the
// medium-scale world.
func DefaultRates() Rates {
	return Rates{
		CloudPerDay:        0.6,
		MiddleASPerDay:     30,
		ClientASPerDay:     5,
		ClientPrefixPerDay: 18,
	}
}

// Schedule is a set of faults over a simulation horizon, with fast lookup
// indexes for the simulator's hot path.
type Schedule struct {
	Faults []Fault

	byCloud    map[netmodel.CloudID][]int
	byMiddleAS map[netmodel.ASN][]int
	byClientAS map[netmodel.ASN][]int
	byPrefix   map[netmodel.PrefixID][]int
	shifts     map[netmodel.PrefixID][]int
}

// NewSchedule builds a schedule (and its indexes) from a fault list. Fault
// IDs are assigned by position.
func NewSchedule(fs []Fault) *Schedule {
	s := &Schedule{
		Faults:     append([]Fault(nil), fs...),
		byCloud:    make(map[netmodel.CloudID][]int),
		byMiddleAS: make(map[netmodel.ASN][]int),
		byClientAS: make(map[netmodel.ASN][]int),
		byPrefix:   make(map[netmodel.PrefixID][]int),
		shifts:     make(map[netmodel.PrefixID][]int),
	}
	for i := range s.Faults {
		s.Faults[i].ID = i
		f := s.Faults[i]
		switch f.Kind {
		case CloudFault:
			s.byCloud[f.Cloud] = append(s.byCloud[f.Cloud], i)
		case MiddleASFault:
			s.byMiddleAS[f.AS] = append(s.byMiddleAS[f.AS], i)
		case ClientASFault:
			s.byClientAS[f.AS] = append(s.byClientAS[f.AS], i)
		case ClientPrefixFault:
			s.byPrefix[f.Prefix] = append(s.byPrefix[f.Prefix], i)
		case TrafficShift:
			for _, p := range f.ShiftPrefixes {
				s.shifts[p] = append(s.shifts[p], i)
			}
		}
	}
	return s
}

// CloudExtra returns the extra latency injected into a cloud location at a
// bucket.
func (s *Schedule) CloudExtra(c netmodel.CloudID, b netmodel.Bucket) float64 {
	var ms float64
	for _, i := range s.byCloud[c] {
		if s.Faults[i].ActiveAt(b) {
			ms += s.Faults[i].ExtraMS
		}
	}
	return ms
}

// MiddleExtra returns the extra latency injected into a middle AS at a
// bucket on the forward (cloud→client) direction, as observed on paths
// from cloud c.
func (s *Schedule) MiddleExtra(as netmodel.ASN, c netmodel.CloudID, b netmodel.Bucket) float64 {
	return s.middleExtraDir(as, c, b, false)
}

// MiddleExtraReverse returns the extra latency injected into a middle AS
// on the reverse (client→cloud) direction only.
func (s *Schedule) MiddleExtraReverse(as netmodel.ASN, c netmodel.CloudID, b netmodel.Bucket) float64 {
	return s.middleExtraDir(as, c, b, true)
}

func (s *Schedule) middleExtraDir(as netmodel.ASN, c netmodel.CloudID, b netmodel.Bucket, reverse bool) float64 {
	var ms float64
	for _, i := range s.byMiddleAS[as] {
		f := s.Faults[i]
		if f.ReverseOnly != reverse {
			continue
		}
		if f.ActiveAt(b) && (f.ScopeCloud == NoCloud || f.ScopeCloud == c) {
			ms += f.ExtraMS
		}
	}
	return ms
}

// ClientExtra returns the extra latency injected into a client prefix at a
// bucket (from AS-wide or prefix-local faults).
func (s *Schedule) ClientExtra(p netmodel.PrefixID, as netmodel.ASN, b netmodel.Bucket) float64 {
	var ms float64
	for _, i := range s.byClientAS[as] {
		if s.Faults[i].ActiveAt(b) {
			ms += s.Faults[i].ExtraMS
		}
	}
	for _, i := range s.byPrefix[p] {
		if s.Faults[i].ActiveAt(b) {
			ms += s.Faults[i].ExtraMS
		}
	}
	return ms
}

// ShiftTarget reports whether prefix p is rerouted to another cloud at
// bucket b, and to which location.
func (s *Schedule) ShiftTarget(p netmodel.PrefixID, b netmodel.Bucket) (netmodel.CloudID, bool) {
	for _, i := range s.shifts[p] {
		if s.Faults[i].ActiveAt(b) {
			return s.Faults[i].Cloud, true
		}
	}
	return 0, false
}

// ActiveAt returns the faults in effect during a bucket.
func (s *Schedule) ActiveAt(b netmodel.Bucket) []Fault {
	var out []Fault
	for _, f := range s.Faults {
		if f.ActiveAt(b) {
			out = append(out, f)
		}
	}
	return out
}

// GenerateConfig controls the randomized incident generator.
type GenerateConfig struct {
	Rates Rates
	// MinExtraMS/MaxExtraMS bound the injected latency.
	MinExtraMS float64
	MaxExtraMS float64
	// MiddleRegionBoost multiplies the likelihood of middle faults landing
	// in a region's transit ASes. The paper observes still-evolving transit
	// networks (India, China, Brazil) suffer disproportionately many middle
	// issues (Fig. 9); boosting those regions reproduces that mix.
	MiddleRegionBoost map[netmodel.Region]float64
}

// DefaultGenerateConfig returns generator settings that comfortably push
// affected quartets past their badness targets.
func DefaultGenerateConfig() GenerateConfig {
	return GenerateConfig{Rates: DefaultRates(), MinExtraMS: 25, MaxExtraMS: 130}
}

// Generate draws a randomized fault schedule over [0, horizon) buckets.
func Generate(w *topology.World, cfg GenerateConfig, horizon netmodel.Bucket, seed int64) *Schedule {
	r := rand.New(rand.NewSource(seed))
	days := float64(horizon) / float64(netmodel.BucketsPerDay)
	var fs []Fault

	extra := func() float64 {
		return cfg.MinExtraMS + (cfg.MaxExtraMS-cfg.MinExtraMS)*r.Float64()
	}
	start := func() netmodel.Bucket { return netmodel.Bucket(r.Intn(int(horizon))) }
	count := func(perDay float64) int {
		mean := perDay * days
		// Poisson-ish: round with random remainder.
		n := int(mean)
		if r.Float64() < mean-float64(n) {
			n++
		}
		return n
	}

	for i := 0; i < count(cfg.Rates.CloudPerDay); i++ {
		c := w.Clouds[r.Intn(len(w.Clouds))]
		fs = append(fs, Fault{
			Kind: CloudFault, Cloud: c.ID, ScopeCloud: NoCloud,
			Start: start(), Duration: SampleDuration(r), ExtraMS: extra(),
			Desc: fmt.Sprintf("random cloud fault at %s", c.Name),
		})
	}
	// Middle faults target transit and tier-1 ASes; most are scoped to one
	// cloud location's paths (localized), some are AS-wide. Regions with
	// a boost contribute their transits proportionally more often.
	var middles []netmodel.ASN
	var weights []float64
	var weightSum float64
	addMiddle := func(as netmodel.ASN, wgt float64) {
		middles = append(middles, as)
		weights = append(weights, wgt)
		weightSum += wgt
	}
	for _, as := range w.Tier1s {
		addMiddle(as, 1)
	}
	for _, reg := range netmodel.AllRegions() {
		boost := 1.0
		if b, ok := cfg.MiddleRegionBoost[reg]; ok && b > 0 {
			boost = b
		}
		for _, as := range w.Transits[reg] {
			addMiddle(as, boost)
		}
	}
	pickMiddle := func() netmodel.ASN {
		x := r.Float64() * weightSum
		for i, wgt := range weights {
			x -= wgt
			if x <= 0 {
				return middles[i]
			}
		}
		return middles[len(middles)-1]
	}
	for i := 0; i < count(cfg.Rates.MiddleASPerDay); i++ {
		as := pickMiddle()
		scope := NoCloud
		if r.Float64() < 0.6 {
			scope = w.Clouds[r.Intn(len(w.Clouds))].ID
		}
		fs = append(fs, Fault{
			Kind: MiddleASFault, AS: as, ScopeCloud: scope,
			Start: start(), Duration: SampleDuration(r), ExtraMS: extra(),
			Desc: fmt.Sprintf("random middle fault in %s", w.ASes[as].Name),
		})
	}
	var eyeballs []netmodel.ASN
	for _, reg := range netmodel.AllRegions() {
		eyeballs = append(eyeballs, w.Eyeballs[reg]...)
	}
	for i := 0; i < count(cfg.Rates.ClientASPerDay); i++ {
		as := eyeballs[r.Intn(len(eyeballs))]
		fs = append(fs, Fault{
			Kind: ClientASFault, AS: as, ScopeCloud: NoCloud,
			Start: start(), Duration: SampleDuration(r), ExtraMS: extra(),
			Desc: fmt.Sprintf("random client-AS fault in %s", w.ASes[as].Name),
		})
	}
	for i := 0; i < count(cfg.Rates.ClientPrefixPerDay); i++ {
		p := w.Prefixes[r.Intn(len(w.Prefixes))]
		fs = append(fs, Fault{
			Kind: ClientPrefixFault, Prefix: p.ID, ScopeCloud: NoCloud,
			Start: start(), Duration: SampleDuration(r), ExtraMS: extra(),
			Desc: fmt.Sprintf("random last-mile congestion in prefix %d", p.ID),
		})
	}
	return NewSchedule(fs)
}
