package faults

import (
	"math/rand"
	"testing"

	"blameit/internal/netmodel"
	"blameit/internal/topology"
)

func testWorld() *topology.World { return topology.Generate(topology.SmallScale(), 42) }

func TestFaultActiveAt(t *testing.T) {
	f := Fault{Start: 10, Duration: 5}
	if f.ActiveAt(9) || !f.ActiveAt(10) || !f.ActiveAt(14) || f.ActiveAt(15) {
		t.Error("ActiveAt boundaries wrong")
	}
	if f.End() != 15 {
		t.Errorf("End = %d", f.End())
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		CloudFault: "cloud-fault", MiddleASFault: "middle-as-fault",
		ClientASFault: "client-as-fault", ClientPrefixFault: "client-prefix-fault",
		TrafficShift: "traffic-shift",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%v != %s", k, want)
		}
	}
}

func TestSampleDurationDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	n := 50000
	var short, over2h int
	for i := 0; i < n; i++ {
		d := SampleDuration(r)
		if d < 1 {
			t.Fatal("duration below one bucket")
		}
		if d == 1 {
			short++
		}
		if d > 24 {
			over2h++
		}
	}
	shortFrac := float64(short) / float64(n)
	longFrac := float64(over2h) / float64(n)
	// §2.3: over 60% of issues last <= 5 minutes, ~8% exceed 2 hours.
	if shortFrac < 0.55 || shortFrac > 0.65 {
		t.Errorf("fraction of 1-bucket issues = %.3f, want ~0.60", shortFrac)
	}
	if longFrac < 0.05 || longFrac > 0.11 {
		t.Errorf("fraction of >2h issues = %.3f, want ~0.08", longFrac)
	}
}

func TestScheduleCloudExtra(t *testing.T) {
	s := NewSchedule([]Fault{
		{Kind: CloudFault, Cloud: 1, Start: 5, Duration: 10, ExtraMS: 30},
		{Kind: CloudFault, Cloud: 1, Start: 8, Duration: 2, ExtraMS: 20},
		{Kind: CloudFault, Cloud: 2, Start: 5, Duration: 10, ExtraMS: 99},
	})
	if got := s.CloudExtra(1, 4); got != 0 {
		t.Errorf("extra before fault = %v", got)
	}
	if got := s.CloudExtra(1, 6); got != 30 {
		t.Errorf("extra during one fault = %v", got)
	}
	if got := s.CloudExtra(1, 8); got != 50 {
		t.Errorf("extra during overlap = %v", got)
	}
	if got := s.CloudExtra(3, 6); got != 0 {
		t.Errorf("extra for unaffected cloud = %v", got)
	}
}

func TestScheduleMiddleExtraScoping(t *testing.T) {
	s := NewSchedule([]Fault{
		{Kind: MiddleASFault, AS: 2001, ScopeCloud: 3, Start: 0, Duration: 10, ExtraMS: 40},
		{Kind: MiddleASFault, AS: 2002, ScopeCloud: NoCloud, Start: 0, Duration: 10, ExtraMS: 25},
	})
	if got := s.MiddleExtra(2001, 3, 5); got != 40 {
		t.Errorf("scoped fault on its cloud = %v", got)
	}
	if got := s.MiddleExtra(2001, 4, 5); got != 0 {
		t.Errorf("scoped fault on another cloud = %v", got)
	}
	if got := s.MiddleExtra(2002, 7, 5); got != 25 {
		t.Errorf("unscoped fault = %v", got)
	}
}

func TestScheduleClientExtra(t *testing.T) {
	s := NewSchedule([]Fault{
		{Kind: ClientASFault, AS: 10001, Start: 0, Duration: 10, ExtraMS: 50},
		{Kind: ClientPrefixFault, Prefix: 7, Start: 0, Duration: 10, ExtraMS: 15},
	})
	if got := s.ClientExtra(7, 10001, 5); got != 65 {
		t.Errorf("AS + prefix fault = %v", got)
	}
	if got := s.ClientExtra(8, 10001, 5); got != 50 {
		t.Errorf("AS fault only = %v", got)
	}
	if got := s.ClientExtra(8, 10002, 5); got != 0 {
		t.Errorf("unrelated prefix = %v", got)
	}
}

func TestShiftTarget(t *testing.T) {
	s := NewSchedule([]Fault{
		{Kind: TrafficShift, Cloud: 9, ShiftPrefixes: []netmodel.PrefixID{1, 2}, Start: 5, Duration: 5},
	})
	if _, ok := s.ShiftTarget(1, 4); ok {
		t.Error("shift before start")
	}
	if c, ok := s.ShiftTarget(1, 6); !ok || c != 9 {
		t.Errorf("shift during = %v,%v", c, ok)
	}
	if _, ok := s.ShiftTarget(3, 6); ok {
		t.Error("unshifted prefix reported as shifted")
	}
}

func TestActiveAtList(t *testing.T) {
	s := NewSchedule([]Fault{
		{Kind: CloudFault, Cloud: 1, Start: 0, Duration: 5},
		{Kind: CloudFault, Cloud: 2, Start: 10, Duration: 5},
	})
	if got := len(s.ActiveAt(2)); got != 1 {
		t.Errorf("active at 2 = %d", got)
	}
	if got := len(s.ActiveAt(7)); got != 0 {
		t.Errorf("active at 7 = %d", got)
	}
}

func TestTruth(t *testing.T) {
	w := testWorld()
	cloudF := Fault{Kind: CloudFault, Cloud: w.Clouds[0].ID}
	if gt := cloudF.Truth(w); gt.Segment != netmodel.SegCloud || gt.AS != w.CloudASN() {
		t.Errorf("cloud truth = %+v", gt)
	}
	mid := w.Tier1s[0]
	midF := Fault{Kind: MiddleASFault, AS: mid}
	if gt := midF.Truth(w); gt.Segment != netmodel.SegMiddle || gt.AS != mid {
		t.Errorf("middle truth = %+v", gt)
	}
	eye := w.Eyeballs[netmodel.RegionUSA][0]
	cliF := Fault{Kind: ClientASFault, AS: eye}
	if gt := cliF.Truth(w); gt.Segment != netmodel.SegClient || gt.AS != eye {
		t.Errorf("client truth = %+v", gt)
	}
	p := w.Prefixes[0]
	pF := Fault{Kind: ClientPrefixFault, Prefix: p.ID}
	if gt := pF.Truth(w); gt.Segment != netmodel.SegClient || gt.AS != p.AS {
		t.Errorf("prefix truth = %+v", gt)
	}
}

func TestTrafficShiftTruthIsMiddle(t *testing.T) {
	w := testWorld()
	r := rand.New(rand.NewSource(1))
	sc := ScenarioTrafficShiftEastAsia(w, 0, r)
	if sc.Truth.Segment != netmodel.SegMiddle {
		t.Errorf("traffic shift truth segment = %v", sc.Truth.Segment)
	}
	if len(sc.Fault.ShiftPrefixes) == 0 {
		t.Fatal("no prefixes shifted")
	}
	// The blamed AS must actually be on the shifted path's middle.
	bp := w.Prefixes[sc.Fault.ShiftPrefixes[0]].BGPPrefix
	path := w.InitialPath(sc.Fault.Cloud, bp)
	found := false
	for _, a := range path.Middle {
		if a == sc.Truth.AS {
			found = true
		}
	}
	if !found {
		t.Error("truth AS not on the shifted path")
	}
	// Shift target must be a USA location while clients are East Asian.
	if w.Clouds[sc.Fault.Cloud].Region != netmodel.RegionUSA {
		t.Error("shift target not in USA")
	}
}

func TestCaseStudiesCoverAllSegments(t *testing.T) {
	w := testWorld()
	scs := CaseStudies(w, 1)
	if len(scs) != 5 {
		t.Fatalf("case studies = %d", len(scs))
	}
	segs := make(map[netmodel.Segment]int)
	for _, sc := range scs {
		segs[sc.Truth.Segment]++
		if sc.Name == "" || sc.Desc == "" {
			t.Error("scenario missing name/description")
		}
	}
	if segs[netmodel.SegCloud] < 2 || segs[netmodel.SegMiddle] < 2 || segs[netmodel.SegClient] < 1 {
		t.Errorf("segment mix = %v", segs)
	}
	// Scenarios must not overlap in time (they are investigated separately).
	for i := 0; i < len(scs); i++ {
		for j := i + 1; j < len(scs); j++ {
			a, b := scs[i].Fault, scs[j].Fault
			if a.Start < b.End() && b.Start < a.End() {
				t.Errorf("scenarios %s and %s overlap", scs[i].Name, scs[j].Name)
			}
		}
	}
}

func TestIncidentBattery(t *testing.T) {
	w := testWorld()
	scs := IncidentBattery(w, 88, 10, 6, 7)
	if len(scs) != 88 {
		t.Fatalf("battery size = %d", len(scs))
	}
	kinds := make(map[Kind]int)
	for _, sc := range scs {
		kinds[sc.Fault.Kind]++
		if sc.Fault.Duration < 6 {
			t.Error("battery incident too short to investigate")
		}
		if sc.Fault.ExtraMS < 40 {
			t.Error("battery incident too weak")
		}
	}
	if kinds[CloudFault] == 0 || kinds[MiddleASFault] == 0 || kinds[ClientASFault] == 0 {
		t.Errorf("battery kind mix = %v", kinds)
	}
}

func TestGenerateSchedule(t *testing.T) {
	w := testWorld()
	horizon := netmodel.Bucket(3 * netmodel.BucketsPerDay)
	s := Generate(w, DefaultGenerateConfig(), horizon, 13)
	if len(s.Faults) == 0 {
		t.Fatal("no faults generated")
	}
	kinds := make(map[Kind]int)
	for _, f := range s.Faults {
		kinds[f.Kind]++
		if f.Start < 0 || f.Start >= horizon {
			t.Error("fault start out of horizon")
		}
		if f.Duration < 1 {
			t.Error("fault with no duration")
		}
		if f.Kind != TrafficShift && f.ExtraMS <= 0 {
			t.Error("fault with no magnitude")
		}
	}
	if kinds[CloudFault] >= kinds[MiddleASFault] {
		t.Errorf("cloud faults must stay rare relative to middle faults: %v", kinds)
	}
	// Determinism.
	s2 := Generate(w, DefaultGenerateConfig(), horizon, 13)
	if len(s2.Faults) != len(s.Faults) {
		t.Fatal("generator not deterministic")
	}
	for i := range s.Faults {
		if s.Faults[i].Start != s2.Faults[i].Start || s.Faults[i].ExtraMS != s2.Faults[i].ExtraMS {
			t.Fatal("generator not deterministic in fault details")
		}
	}
}
