package faults

import (
	"fmt"
	"math/rand"
	"sort"

	"blameit/internal/netmodel"
	"blameit/internal/topology"
)

// Scenario is a named, reproducible incident mirroring one of the §6.3
// real-world case studies, together with its ground truth.
type Scenario struct {
	Name  string
	Desc  string
	Fault Fault
	Truth GroundTruth
}

// cloudInRegion returns a cloud location in the region (the first by ID) —
// every generated world has at least one per region.
func cloudInRegion(w *topology.World, reg netmodel.Region) netmodel.CloudLocation {
	ids := w.CloudsInRegion(reg)
	return w.Clouds[ids[0]]
}

// ScenarioBrazilMaintenance reproduces case study 1: an unfinished
// maintenance operation inside the cloud location in Brazil degraded South
// American clients for a couple of days before being fixed.
func ScenarioBrazilMaintenance(w *topology.World, start netmodel.Bucket) Scenario {
	c := cloudInRegion(w, netmodel.RegionBrazil)
	f := Fault{
		Kind: CloudFault, Cloud: c.ID, ScopeCloud: NoCloud,
		Start: start, Duration: 2 * netmodel.BucketsPerDay, ExtraMS: 65,
		Desc: fmt.Sprintf("unfinished maintenance inside %s (internal routing issues)", c.Name),
	}
	return Scenario{
		Name:  "brazil-maintenance",
		Desc:  "Maintenance in Brazil: internal routing issues at a cloud location raise RTTs for South American clients for ~2 days.",
		Fault: f,
		Truth: f.Truth(w),
	}
}

// ScenarioPeeringFault reproduces case study 2: changes inside a peering AS
// raised latency for clients across the USA; the issue spans every cloud
// location peering with that AS, so the fault is AS-wide.
func ScenarioPeeringFault(w *topology.World, start netmodel.Bucket) Scenario {
	// Pick a USA transit AS that appears on many paths.
	as := w.Transits[netmodel.RegionUSA][0]
	f := Fault{
		Kind: MiddleASFault, AS: as, ScopeCloud: NoCloud,
		Start: start, Duration: 6 * netmodel.BucketsPerHour, ExtraMS: 45,
		Desc: fmt.Sprintf("path changes inside peering AS %s affecting east/west/central USA", w.ASes[as].Name),
	}
	return Scenario{
		Name:  "usa-peering-fault",
		Desc:  "Peering fault: a widespread middle-segment issue caused by changes inside a peering AS, affecting clients across the USA.",
		Fault: f,
		Truth: f.Truth(w),
	}
}

// ScenarioCloudOverloadAustralia reproduces case study 3: CPU overload at an
// Australian cloud location pushed the median RTT from 25ms to 82ms. The
// same BGP paths serving other nearby locations stayed healthy, which is
// exactly what lets Algorithm 1 pin the cloud segment.
func ScenarioCloudOverloadAustralia(w *topology.World, start netmodel.Bucket) Scenario {
	c := cloudInRegion(w, netmodel.RegionAustralia)
	f := Fault{
		Kind: CloudFault, Cloud: c.ID, ScopeCloud: NoCloud,
		Start: start, Duration: 4 * netmodel.BucketsPerHour, ExtraMS: 57,
		Desc: fmt.Sprintf("server CPU overload at %s (median RTT 25ms -> 82ms)", c.Name),
	}
	return Scenario{
		Name:  "australia-cloud-overload",
		Desc:  "Cloud overload in Australia: server overload raises RTTs for every client of one location while shared BGP paths to nearby locations stay good.",
		Fault: f,
		Truth: f.Truth(w),
	}
}

// ScenarioTrafficShiftEastAsia reproduces case study 4: BGP announcement
// side-effects routed East-Asian clients to a US-west-coast location; the
// poorly provisioned long-haul middle segment drove the latency up.
func ScenarioTrafficShiftEastAsia(w *topology.World, start netmodel.Bucket, r *rand.Rand) Scenario {
	target := cloudInRegion(w, netmodel.RegionUSA)
	// A BGP side-effect reroutes announcements, so whole BGP prefixes move
	// together and the rerouted clients share the few long-haul paths to
	// the target. Pick the largest path-sharing groups of East-Asian BGP
	// prefixes — enough clients to aggregate per middle segment, but still
	// a minority of the target location's population so the cloud
	// aggregate is not swamped (as in the real incident).
	groups := make(map[netmodel.MiddleKey][]netmodel.PrefixID)
	for _, bp := range w.BGPPrefixes {
		if w.ASes[bp.AS].Region != netmodel.RegionEastAsia {
			continue
		}
		mk := w.InitialPath(target.ID, bp.ID).Key()
		groups[mk] = append(groups[mk], w.PrefixesOfBGP(bp.ID)...)
	}
	keys := make([]netmodel.MiddleKey, 0, len(groups))
	for mk := range groups {
		keys = append(keys, mk)
	}
	sort.Slice(keys, func(i, j int) bool {
		if len(groups[keys[i]]) != len(groups[keys[j]]) {
			return len(groups[keys[i]]) > len(groups[keys[j]])
		}
		return keys[i] < keys[j]
	})
	var shifted []netmodel.PrefixID
	for _, mk := range keys {
		if len(shifted) >= 50 {
			break
		}
		shifted = append(shifted, groups[mk]...)
	}
	f := Fault{
		Kind: TrafficShift, Cloud: target.ID, ScopeCloud: NoCloud, ShiftPrefixes: shifted,
		Start: start, Duration: 5 * netmodel.BucketsPerHour,
		// The rerouted traffic rarely flows this direction, so the client
		// ISPs have no good peers for it: the long-haul middle segment of
		// the new path carries congestion on top of its propagation delay.
		ExtraMS: 40,
		Desc:    fmt.Sprintf("BGP side-effect routes %d East-Asian prefixes to %s", len(shifted), target.Name),
	}
	return Scenario{
		Name:  "eastasia-traffic-shift",
		Desc:  "Traffic shift from East Asia to the US west coast: rerouted clients traverse a long-haul middle segment with poor connectivity.",
		Fault: f,
		Truth: f.Truth(w),
	}
}

// ScenarioClientISPItaly reproduces case study 5: an unannounced maintenance
// inside a client ISP in a major Italian city raised the median RTT from
// 9ms to 161ms; the cloud could do nothing about it.
func ScenarioClientISPItaly(w *topology.World, start netmodel.Bucket) Scenario {
	as := w.Eyeballs[netmodel.RegionEurope][0]
	f := Fault{
		Kind: ClientASFault, AS: as, ScopeCloud: NoCloud,
		Start: start, Duration: 8 * netmodel.BucketsPerHour, ExtraMS: 152,
		Desc: fmt.Sprintf("unannounced maintenance inside client ISP %s (median RTT 9ms -> 161ms)", w.ASes[as].Name),
	}
	return Scenario{
		Name:  "italy-client-isp",
		Desc:  "Client ISP issue in Italy: maintenance inside the client ISP; blame falls on the client segment, avoiding wasted cloud-side investigation.",
		Fault: f,
		Truth: f.Truth(w),
	}
}

// CaseStudies returns the five named §6.3 scenarios, spaced out in time so
// they do not overlap.
func CaseStudies(w *topology.World, seed int64) []Scenario {
	r := rand.New(rand.NewSource(seed))
	day := netmodel.Bucket(netmodel.BucketsPerDay)
	return []Scenario{
		ScenarioBrazilMaintenance(w, 2*netmodel.BucketsPerHour),
		ScenarioPeeringFault(w, 2*day+3*netmodel.BucketsPerHour),
		ScenarioCloudOverloadAustralia(w, 3*day+5*netmodel.BucketsPerHour),
		// The traffic shift plays out during evening peak hours: the
		// rerouted prefixes' quartets need enough connection volume for
		// the middle aggregates on the unusual long-haul paths to pass the
		// minimum-sample gates.
		ScenarioTrafficShiftEastAsia(w, 4*day+17*netmodel.BucketsPerHour, r),
		ScenarioClientISPItaly(w, 5*day+6*netmodel.BucketsPerHour),
	}
}

// MiddleBattery generates n sequential, non-overlapping middle-AS faults
// starting at `start`, separated by `gap` buckets of quiet time. It is the
// workload behind the active-phase evaluations (Figs. 11-13): one middle
// issue at a time keeps the ground truth unambiguous.
func MiddleBattery(w *topology.World, n int, start, gap netmodel.Bucket, seed int64) []Fault {
	r := rand.New(rand.NewSource(seed))
	// Target regional transits: they carry the bulk of client traffic, so
	// the incidents are high-impact like the ones operators investigate.
	// (Tier-1 backbones in the synthetic world carry only the small
	// cross-region anycast spillover; the traffic-shift scenario exercises
	// them.) Scoped faults stay within the transit's own region, where it
	// actually serves paths.
	var out []Fault
	at := start
	for i := 0; i < n; i++ {
		// Long-tailed durations: most issues are short, a minority carries
		// the bulk of the client-time impact (the Fig. 12 skew).
		dur := netmodel.Bucket(6 + r.Intn(7)) // 30-60 min
		if r.Float64() < 0.25 {
			dur = netmodel.Bucket(30 + r.Intn(60)) // 2.5-7.5 h
		}
		reg := netmodel.AllRegions()[r.Intn(netmodel.NumRegions)]
		transits := w.Transits[reg]
		as := transits[r.Intn(len(transits))]
		scope := NoCloud
		if r.Float64() < 0.5 {
			regClouds := w.CloudsInRegion(reg)
			scope = regClouds[r.Intn(len(regClouds))]
		}
		out = append(out, Fault{
			Kind: MiddleASFault, AS: as, ScopeCloud: scope,
			Start: at, Duration: dur, ExtraMS: 35 + 95*r.Float64(),
			Desc: fmt.Sprintf("middle battery %d: %s", i, w.ASes[as].Name),
		})
		at += dur + gap
	}
	return out
}

// IncidentBattery generates n randomized single-fault scenarios with ground
// truth, used to reproduce the paper's 88-incident validation at scale.
// Incidents are sequential and non-overlapping (each starts `gap` buckets
// after the previous one ends, the first at `start`), and each is long and
// strong enough that an operator would have investigated it.
func IncidentBattery(w *topology.World, n int, start, gap netmodel.Bucket, seed int64) []Scenario {
	r := rand.New(rand.NewSource(seed))
	var out []Scenario
	at := start
	// As in MiddleBattery, middle incidents target regional transits so
	// every battery incident is high-impact and investigable.
	var middles []netmodel.ASN
	for _, reg := range netmodel.AllRegions() {
		middles = append(middles, w.Transits[reg]...)
	}
	var eyeballs []netmodel.ASN
	for _, reg := range netmodel.AllRegions() {
		eyeballs = append(eyeballs, w.Eyeballs[reg]...)
	}
	for i := 0; i < n; i++ {
		start := at
		dur := netmodel.Bucket(6 + r.Intn(30)) // 30 min - 3 h
		at = start + dur + gap
		extra := 40 + 90*r.Float64()
		var f Fault
		switch x := r.Float64(); {
		case x < 0.25:
			c := w.Clouds[r.Intn(len(w.Clouds))]
			f = Fault{Kind: CloudFault, Cloud: c.ID, ScopeCloud: NoCloud, Start: start, Duration: dur, ExtraMS: extra,
				Desc: fmt.Sprintf("incident %d: cloud fault at %s", i, c.Name)}
		case x < 0.60:
			as := middles[r.Intn(len(middles))]
			scope := NoCloud
			if r.Float64() < 0.5 {
				regClouds := w.CloudsInRegion(w.ASes[as].Region)
				scope = regClouds[r.Intn(len(regClouds))]
			}
			f = Fault{Kind: MiddleASFault, AS: as, ScopeCloud: scope, Start: start, Duration: dur, ExtraMS: extra,
				Desc: fmt.Sprintf("incident %d: middle fault in %s", i, w.ASes[as].Name)}
		default:
			as := eyeballs[r.Intn(len(eyeballs))]
			f = Fault{Kind: ClientASFault, AS: as, ScopeCloud: NoCloud, Start: start, Duration: dur, ExtraMS: extra,
				Desc: fmt.Sprintf("incident %d: client-AS fault in %s", i, w.ASes[as].Name)}
		}
		out = append(out, Scenario{
			Name:  fmt.Sprintf("incident-%03d", i),
			Desc:  f.Desc,
			Fault: f,
			Truth: f.Truth(w),
		})
	}
	return out
}
