// Package alerting turns BlameIt's verdicts into impact-prioritized,
// auto-routed tickets for network operators, as described in §6.1: issues
// are ranked by business impact, the top few are ticketed automatically,
// and the coarse segmentation routes each ticket to the right team.
package alerting

import (
	"fmt"
	"sort"

	"blameit/internal/active"
	"blameit/internal/core"
	"blameit/internal/metrics"
	"blameit/internal/netmodel"
)

// Team identifies which operations team a ticket is routed to.
type Team string

const (
	// TeamCloudInfra investigates server and intra-cloud network issues.
	TeamCloudInfra Team = "cloud-infrastructure"
	// TeamPeering investigates transit and peering-relationship issues.
	TeamPeering Team = "peering-networking"
	// TeamClientOutreach handles client-ISP issues (informational; the
	// cloud typically cannot fix them).
	TeamClientOutreach Team = "client-outreach"
)

// Ticket is one prioritized investigation request.
type Ticket struct {
	ID       int
	Bucket   netmodel.Bucket
	Category core.Blame
	Team     Team
	// Impact is the number of affected clients behind the grouped quartets.
	Impact int
	// Entity describes the blamed object (cloud location, BGP path, or
	// client AS).
	Cloud     netmodel.CloudID
	MiddleKey netmodel.MiddleKey
	ClientAS  netmodel.ASN
	// CulpritAS is the active phase's AS-level localization, when known.
	CulpritAS netmodel.ASN
	Summary   string
}

// Alerter groups verdicts into tickets and keeps only the top-N by impact
// per window.
type Alerter struct {
	TopN   int
	nextID int

	mEmitted   *metrics.Counter
	mTruncated *metrics.Counter
}

// NewAlerter creates an alerter that emits at most topN tickets per window
// (0 = unlimited).
func NewAlerter(topN int) *Alerter {
	return &Alerter{TopN: topN}
}

// SetMetrics mirrors ticket emission into a metrics registry
// (alerting.tickets.emitted / alerting.tickets.truncated counters, the
// latter counting tickets dropped by the TopN cut).
func (a *Alerter) SetMetrics(reg *metrics.Registry) {
	a.mEmitted = reg.Counter("alerting.tickets.emitted")
	a.mTruncated = reg.Counter("alerting.tickets.truncated")
}

// issueGroup accumulates one ticket-worthy issue.
type issueGroup struct {
	category core.Blame
	cloud    netmodel.CloudID
	mk       netmodel.MiddleKey
	clientAS netmodel.ASN
	impact   int
}

// Generate builds tickets from one window's passive results and active
// verdicts. Cloud issues group by location, middle issues by BGP path,
// client issues by client AS; ambiguous/insufficient verdicts are not
// ticketed.
func (a *Alerter) Generate(b netmodel.Bucket, results []core.Result, verdicts []active.Verdict) []Ticket {
	groups := make(map[string]*issueGroup)
	order := make([]string, 0)
	add := func(key string, g issueGroup) {
		ig, ok := groups[key]
		if !ok {
			fresh := g
			fresh.impact = 0
			ig = &fresh
			groups[key] = ig
			order = append(order, key)
		}
		ig.impact += g.impact
	}
	for _, r := range results {
		clients := r.Q.Obs.Clients
		switch r.Blame {
		case core.BlameCloud:
			add(fmt.Sprintf("c|%d", r.Q.Obs.Cloud), issueGroup{category: core.BlameCloud, cloud: r.Q.Obs.Cloud, impact: clients})
		case core.BlameMiddle:
			mk := r.Path.Key()
			add("m|"+string(mk), issueGroup{category: core.BlameMiddle, cloud: r.Q.Obs.Cloud, mk: mk, impact: clients})
		case core.BlameClient:
			add(fmt.Sprintf("a|%d", r.BlamedAS), issueGroup{category: core.BlameClient, clientAS: r.BlamedAS, impact: clients})
		}
	}
	// Attach active-phase culprits to middle groups.
	culprits := make(map[netmodel.MiddleKey]netmodel.ASN)
	for _, v := range verdicts {
		if v.Probed && v.OK {
			culprits[v.Issue.Key] = v.AS
		}
	}

	tickets := make([]Ticket, 0, len(groups))
	for _, key := range order {
		g := groups[key]
		t := Ticket{
			Bucket:    b,
			Category:  g.category,
			Impact:    g.impact,
			Cloud:     g.cloud,
			MiddleKey: g.mk,
			ClientAS:  g.clientAS,
		}
		switch g.category {
		case core.BlameCloud:
			t.Team = TeamCloudInfra
			t.Summary = fmt.Sprintf("cloud location %d degraded (%d clients affected)", g.cloud, g.impact)
		case core.BlameMiddle:
			t.Team = TeamPeering
			t.CulpritAS = culprits[g.mk]
			if t.CulpritAS != 0 {
				t.Summary = fmt.Sprintf("middle segment %s degraded, culprit AS%d (%d clients affected)", g.mk, t.CulpritAS, g.impact)
			} else {
				t.Summary = fmt.Sprintf("middle segment %s degraded (%d clients affected)", g.mk, g.impact)
			}
		case core.BlameClient:
			t.Team = TeamClientOutreach
			t.Summary = fmt.Sprintf("client AS%d degraded (%d clients affected)", g.clientAS, g.impact)
		}
		tickets = append(tickets, t)
	}
	sort.Slice(tickets, func(i, j int) bool {
		if tickets[i].Impact != tickets[j].Impact {
			return tickets[i].Impact > tickets[j].Impact
		}
		return tickets[i].Summary < tickets[j].Summary
	})
	if a.TopN > 0 && len(tickets) > a.TopN {
		a.mTruncated.Add(int64(len(tickets) - a.TopN))
		tickets = tickets[:a.TopN]
	}
	for i := range tickets {
		a.nextID++
		tickets[i].ID = a.nextID
	}
	a.mEmitted.Add(int64(len(tickets)))
	return tickets
}
