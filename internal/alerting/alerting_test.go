package alerting

import (
	"strings"
	"testing"

	"blameit/internal/active"
	"blameit/internal/core"
	"blameit/internal/netmodel"
	"blameit/internal/quartet"
	"blameit/internal/trace"
)

func res(blame core.Blame, cloud int, middle netmodel.ASN, clientAS netmodel.ASN, clients int) core.Result {
	return core.Result{
		Blame:    blame,
		BlamedAS: clientAS,
		Path:     netmodel.Path{Cloud: netmodel.CloudID(cloud), Middle: []netmodel.ASN{middle}, Client: clientAS},
		Q: quartet.Quartet{Obs: trace.Observation{
			Cloud: netmodel.CloudID(cloud), Clients: clients,
		}},
	}
}

func TestGenerateGroupsAndRoutes(t *testing.T) {
	a := NewAlerter(0)
	results := []core.Result{
		res(core.BlameCloud, 1, 0, 0, 10),
		res(core.BlameCloud, 1, 0, 0, 15),
		res(core.BlameMiddle, 1, 2001, 0, 7),
		res(core.BlameClient, 1, 0, 10001, 3),
		res(core.BlameAmbiguous, 1, 0, 0, 99), // never ticketed
	}
	tickets := a.Generate(5, results, nil)
	if len(tickets) != 3 {
		t.Fatalf("tickets = %d", len(tickets))
	}
	// Ranked by impact: cloud (25), middle (7), client (3).
	if tickets[0].Category != core.BlameCloud || tickets[0].Impact != 25 {
		t.Errorf("top ticket = %+v", tickets[0])
	}
	if tickets[0].Team != TeamCloudInfra {
		t.Error("cloud ticket misrouted")
	}
	if tickets[1].Team != TeamPeering || tickets[2].Team != TeamClientOutreach {
		t.Error("middle/client tickets misrouted")
	}
	// IDs are sequential and unique.
	if tickets[0].ID == tickets[1].ID {
		t.Error("duplicate ticket IDs")
	}
}

func TestGenerateTopN(t *testing.T) {
	a := NewAlerter(1)
	results := []core.Result{
		res(core.BlameCloud, 1, 0, 0, 10),
		res(core.BlameClient, 1, 0, 10001, 99),
	}
	tickets := a.Generate(5, results, nil)
	if len(tickets) != 1 {
		t.Fatalf("tickets = %d, want top-1", len(tickets))
	}
	if tickets[0].Category != core.BlameClient {
		t.Error("top-1 must keep the highest-impact ticket")
	}
}

func TestGenerateAttachesCulprit(t *testing.T) {
	a := NewAlerter(0)
	mid := res(core.BlameMiddle, 1, 2001, 0, 7)
	verdicts := []active.Verdict{{
		Issue:  active.Issue{Key: mid.Path.Key()},
		Probed: true, OK: true, AS: 2001,
	}}
	tickets := a.Generate(5, []core.Result{mid}, verdicts)
	if len(tickets) != 1 {
		t.Fatalf("tickets = %d", len(tickets))
	}
	if tickets[0].CulpritAS != 2001 {
		t.Errorf("culprit = %d", tickets[0].CulpritAS)
	}
	if !strings.Contains(tickets[0].Summary, "AS2001") {
		t.Errorf("summary %q missing culprit", tickets[0].Summary)
	}
}

func TestGenerateEmpty(t *testing.T) {
	a := NewAlerter(5)
	if tickets := a.Generate(1, nil, nil); len(tickets) != 0 {
		t.Error("no results must produce no tickets")
	}
}

func TestTicketIDsMonotonicAcrossWindows(t *testing.T) {
	a := NewAlerter(0)
	t1 := a.Generate(1, []core.Result{res(core.BlameCloud, 1, 0, 0, 5)}, nil)
	t2 := a.Generate(2, []core.Result{res(core.BlameCloud, 1, 0, 0, 5)}, nil)
	if t2[0].ID <= t1[0].ID {
		t.Error("ticket IDs must increase across windows")
	}
}
