package alerting

import (
	"fmt"
	"sort"
	"testing"

	"blameit/internal/core"
	"blameit/internal/metrics"
)

// permuted returns a deterministic shuffle of rs: reversed, then rotated
// by k. Enough to scramble any input order the pipeline could produce.
func permuted(rs []core.Result, k int) []core.Result {
	out := make([]core.Result, 0, len(rs))
	for i := len(rs) - 1; i >= 0; i-- {
		out = append(out, rs[i])
	}
	k %= len(out)
	return append(out[k:], out[:k]...)
}

// ticketKey describes a ticket independent of its assigned ID, which is
// sequential per alerter and therefore differs between fresh alerters.
func ticketKey(t Ticket) string {
	return fmt.Sprintf("%v|%d|%s|%d|%d|%s", t.Category, t.Cloud, t.MiddleKey, t.ClientAS, t.Impact, t.Summary)
}

// TestGenerateTieBreakDeterminism feeds Generate the same window of
// results in many input orders and demands the identical ticket sequence
// every time, including under TopN truncation where the tie break decides
// which equal-impact tickets survive the cut.
func TestGenerateTieBreakDeterminism(t *testing.T) {
	// Three equal-impact middle groups, two equal-impact client groups, and
	// one cloud group: plenty of ties for the sort to resolve.
	base := []core.Result{
		res(core.BlameMiddle, 1, 2001, 0, 10),
		res(core.BlameMiddle, 1, 2002, 0, 10),
		res(core.BlameMiddle, 1, 2003, 0, 10),
		res(core.BlameClient, 1, 0, 10001, 10),
		res(core.BlameClient, 1, 0, 10002, 10),
		res(core.BlameCloud, 2, 0, 0, 10),
		res(core.BlameInsufficient, 1, 0, 0, 50), // never ticketed
	}
	cases := []struct {
		name       string
		topN       int
		wantKept   int
		wantUnique int // distinct groups before the cut
	}{
		{"unlimited", 0, 6, 6},
		{"top1", 1, 1, 6},
		{"top3-cuts-ties", 3, 3, 6},
		{"top5-cuts-ties", 5, 5, 6},
		{"topN-above-count", 10, 6, 6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var want []string
			for k := 0; k < len(base); k++ {
				a := NewAlerter(tc.topN)
				tickets := a.Generate(5, permuted(base, k), nil)
				if len(tickets) != tc.wantKept {
					t.Fatalf("permutation %d: %d tickets, want %d", k, len(tickets), tc.wantKept)
				}
				got := make([]string, len(tickets))
				for i, tk := range tickets {
					got[i] = ticketKey(tk)
				}
				if want == nil {
					want = got
					continue
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("permutation %d diverged at ticket %d:\n got  %s\n want %s", k, i, got[i], want[i])
					}
				}
			}
			// Equal-impact tickets must come out in ascending summary order,
			// so the surviving prefix under truncation is well defined.
			a := NewAlerter(tc.topN)
			tickets := a.Generate(5, base, nil)
			for i := 1; i < len(tickets); i++ {
				if tickets[i-1].Impact < tickets[i].Impact {
					t.Fatalf("tickets not sorted by impact: %d before %d", tickets[i-1].Impact, tickets[i].Impact)
				}
				if tickets[i-1].Impact == tickets[i].Impact && tickets[i-1].Summary >= tickets[i].Summary {
					t.Fatalf("equal-impact tie not broken by summary: %q before %q", tickets[i-1].Summary, tickets[i].Summary)
				}
			}
		})
	}
}

// TestGenerateTruncationKeepsLexicographicWinners pins down WHICH tickets
// survive a TopN cut among all-equal impacts: the lexicographically
// smallest summaries, regardless of input order.
func TestGenerateTruncationKeepsLexicographicWinners(t *testing.T) {
	base := []core.Result{
		res(core.BlameMiddle, 1, 2001, 0, 10),
		res(core.BlameMiddle, 1, 2002, 0, 10),
		res(core.BlameMiddle, 1, 2003, 0, 10),
		res(core.BlameMiddle, 1, 2004, 0, 10),
	}
	full := NewAlerter(0).Generate(5, base, nil)
	if len(full) != 4 {
		t.Fatalf("full run produced %d tickets", len(full))
	}
	summaries := make([]string, len(full))
	for i, tk := range full {
		summaries[i] = tk.Summary
	}
	if !sort.StringsAreSorted(summaries) {
		t.Fatalf("all-equal-impact tickets not in summary order: %v", summaries)
	}
	for k := 0; k < len(base); k++ {
		cut := NewAlerter(2).Generate(5, permuted(base, k), nil)
		if len(cut) != 2 {
			t.Fatalf("permutation %d: %d tickets after top-2", k, len(cut))
		}
		for i, tk := range cut {
			if tk.Summary != summaries[i] {
				t.Fatalf("permutation %d: survivor %d = %q, want %q", k, i, tk.Summary, summaries[i])
			}
		}
	}
}

// TestGenerateMetricsCounters checks the emitted/truncated counters the
// alerter mirrors into a metrics registry.
func TestGenerateMetricsCounters(t *testing.T) {
	reg := metrics.NewRegistry()
	a := NewAlerter(2)
	a.SetMetrics(reg)
	base := []core.Result{
		res(core.BlameMiddle, 1, 2001, 0, 30),
		res(core.BlameMiddle, 1, 2002, 0, 20),
		res(core.BlameMiddle, 1, 2003, 0, 10),
	}
	if n := len(a.Generate(5, base, nil)); n != 2 {
		t.Fatalf("tickets = %d", n)
	}
	if n := len(a.Generate(6, base[:1], nil)); n != 1 {
		t.Fatalf("second window tickets = %d", n)
	}
	snap := reg.Snapshot()
	if v, _ := snap.Counter("alerting.tickets.emitted"); v != 3 {
		t.Errorf("emitted = %d, want 3", v)
	}
	if v, _ := snap.Counter("alerting.tickets.truncated"); v != 1 {
		t.Errorf("truncated = %d, want 1", v)
	}
}
