package active

import (
	"testing"

	"blameit/internal/bgp"
	"blameit/internal/core"
	"blameit/internal/faults"
	"blameit/internal/netmodel"
	"blameit/internal/predict"
	"blameit/internal/probe"
	"blameit/internal/quartet"
	"blameit/internal/sim"
	"blameit/internal/topology"
	"blameit/internal/trace"
)

// mkResult fabricates a middle-blamed core.Result.
func mkResult(blame core.Blame, cloud int, middle netmodel.ASN, prefix int, clients int) core.Result {
	return core.Result{
		Blame: blame,
		Path:  netmodel.Path{Cloud: netmodel.CloudID(cloud), Middle: []netmodel.ASN{middle}, Client: 100},
		Q: quartet.Quartet{Obs: trace.Observation{
			Prefix: netmodel.PrefixID(prefix), Cloud: netmodel.CloudID(cloud), Clients: clients, Samples: 20,
		}, Enough: true, Bad: true},
	}
}

func TestGroupIssues(t *testing.T) {
	results := []core.Result{
		mkResult(core.BlameMiddle, 1, 2001, 10, 5),
		mkResult(core.BlameMiddle, 1, 2001, 11, 7),
		mkResult(core.BlameMiddle, 1, 2002, 12, 3),
		mkResult(core.BlameClient, 1, 2003, 13, 9), // not middle: ignored
	}
	issues := GroupIssues(results, 42)
	if len(issues) != 2 {
		t.Fatalf("issues = %d", len(issues))
	}
	var found bool
	for _, is := range issues {
		if len(is.Prefixes) == 2 {
			found = true
			if is.ObservedClients != 12 {
				t.Errorf("observed clients = %d", is.ObservedClients)
			}
			if is.Bucket != 42 {
				t.Errorf("bucket = %d", is.Bucket)
			}
		}
	}
	if !found {
		t.Error("grouped issue with 2 prefixes missing")
	}
}

func TestTrackerRunsAndTraining(t *testing.T) {
	dp := predict.NewDurationPredictor(1)
	tr := NewTracker(dp)
	k := netmodel.MiddleKey("c1|2001")
	tr.Advance(0, []netmodel.MiddleKey{k})
	tr.Advance(1, []netmodel.MiddleKey{k})
	if tr.Lasted(k) != 2 {
		t.Errorf("lasted = %d", tr.Lasted(k))
	}
	tr.Advance(2, nil) // run ends: 2 buckets recorded
	if tr.Lasted(k) != 0 {
		t.Error("run not closed")
	}
	if dp.Incidents() != 1 {
		t.Fatalf("incidents = %d", dp.Incidents())
	}
	if dp.ProbLastsAtLeast(2) != 1 {
		t.Error("recorded duration wrong")
	}
	tr.Advance(3, []netmodel.MiddleKey{k})
	tr.Flush()
	if dp.Incidents() != 2 {
		t.Error("flush did not record open run")
	}
}

func TestTrackerGapClosesRuns(t *testing.T) {
	dp := predict.NewDurationPredictor(1)
	tr := NewTracker(dp)
	k := netmodel.MiddleKey("c1|2001")
	tr.Advance(0, []netmodel.MiddleKey{k})
	tr.Advance(10, []netmodel.MiddleKey{k}) // gap
	if tr.Lasted(k) != 1 {
		t.Errorf("gap must reset run, lasted = %d", tr.Lasted(k))
	}
	if dp.Incidents() != 1 {
		t.Error("gap-closed run not recorded")
	}
}

func TestPrioritizeOrdering(t *testing.T) {
	issues := []Issue{
		{Key: "a", ClientTime: 10},
		{Key: "b", ClientTime: 500},
		{Key: "c", ClientTime: 500, ObservedClients: 5},
		{Key: "d", ClientTime: 50},
	}
	Prioritize(issues)
	if issues[0].Key != "c" || issues[1].Key != "b" || issues[2].Key != "d" || issues[3].Key != "a" {
		t.Errorf("order = %v %v %v %v", issues[0].Key, issues[1].Key, issues[2].Key, issues[3].Key)
	}
}

func TestEstimateUsesPredictors(t *testing.T) {
	dp := predict.NewDurationPredictor(1)
	cp := predict.NewClientPredictor()
	k := netmodel.MiddleKey("c1|2001")
	// Every historical issue on the path lasts 10 buckets.
	for i := 0; i < 20; i++ {
		dp.Record(k, 10)
	}
	// The same window yesterday carried 40 clients.
	of := 100
	cp.Record(k, netmodel.Bucket(of), 40)
	l := &Localizer{Durations: dp, Clients: cp}
	is := Issue{Key: k, Bucket: netmodel.Bucket(netmodel.BucketsPerDay + of)}
	l.Estimate(&is, 4)
	// remaining = 6, clients = 40 => 240.
	if is.ClientTime != 240 {
		t.Errorf("client-time = %v, want 240", is.ClientTime)
	}
	if is.Lasted != 4 {
		t.Errorf("lasted = %d", is.Lasted)
	}
}

func TestEstimateFallsBackToObservedClients(t *testing.T) {
	dp := predict.NewDurationPredictor(1)
	cp := predict.NewClientPredictor()
	l := &Localizer{Durations: dp, Clients: cp}
	is := Issue{Key: "nohistory", Bucket: 5, ObservedClients: 17}
	l.Estimate(&is, 1)
	// remaining falls back to 1, clients to observed 17.
	if is.ClientTime != 17 {
		t.Errorf("client-time = %v, want 17", is.ClientTime)
	}
}

// TestProcessEndToEnd drives the full active phase against a simulated
// middle fault and verifies the culprit AS is named.
func TestProcessEndToEnd(t *testing.T) {
	w := topology.Generate(topology.SmallScale(), 42)
	as := w.Tier1s[0]
	fault := faults.Fault{Kind: faults.MiddleASFault, AS: as, ScopeCloud: faults.NoCloud, Start: 200, Duration: 30, ExtraMS: 80}
	tbl := bgp.NewTable(w, bgp.ChurnConfig{}, 2*netmodel.BucketsPerDay, 7)
	s := sim.New(w, tbl, faults.NewSchedule([]faults.Fault{fault}), sim.DefaultConfig(99))
	engine := probe.NewEngine(s, 0.5)
	bg := probe.NewBaseliner(probe.BackgroundConfig{PeriodBuckets: 144, OnChurn: true}, engine, tbl)
	for b := netmodel.Bucket(0); b < 200; b++ {
		bg.Advance(b)
	}
	dp := predict.NewDurationPredictor(2)
	cp := predict.NewClientPredictor()
	loc := NewLocalizer(engine, bg, probe.NewBudget(0), dp, cp)
	tr := NewTracker(dp)

	// Build middle-blamed results for every (prefix, cloud) pair crossing
	// the faulty AS, as Algorithm 1 would have.
	var results []core.Result
	b := netmodel.Bucket(205)
	for _, p := range w.Prefixes {
		for _, att := range w.Attachments(p.ID) {
			path := tbl.PathAtForPrefix(att.Cloud, p.ID, b)
			onPath := false
			for _, m := range path.Middle {
				if m == as {
					onPath = true
				}
			}
			if !onPath {
				continue
			}
			results = append(results, core.Result{
				Blame: core.BlameMiddle,
				Path:  path,
				Q: quartet.Quartet{Obs: trace.Observation{
					Prefix: p.ID, Cloud: att.Cloud, Bucket: b, Clients: 10, Samples: 30,
				}, Enough: true, Bad: true},
			})
		}
	}
	if len(results) == 0 {
		t.Fatal("no affected paths")
	}
	tr.Advance(b, MiddleKeysOf(results))
	verdicts := loc.Process(b, results, tr)
	if len(verdicts) == 0 {
		t.Fatal("no verdicts")
	}
	correct, ok := 0, 0
	for _, v := range verdicts {
		if !v.Probed {
			t.Error("unlimited budget but issue not probed")
		}
		if v.OK {
			ok++
			if v.AS == as {
				correct++
			}
		}
	}
	if ok == 0 {
		t.Fatal("no comparable verdicts")
	}
	if correct < ok*9/10 {
		t.Errorf("only %d/%d comparable verdicts named the right AS", correct, ok)
	}
}

func TestProcessRespectsBudget(t *testing.T) {
	w := topology.Generate(topology.SmallScale(), 42)
	tbl := bgp.NewTable(w, bgp.ChurnConfig{}, netmodel.BucketsPerDay, 7)
	s := sim.New(w, tbl, faults.NewSchedule(nil), sim.DefaultConfig(99))
	engine := probe.NewEngine(s, 0)
	bg := probe.NewBaseliner(probe.BackgroundConfig{PeriodBuckets: 0, OnChurn: false}, engine, tbl)
	loc := NewLocalizer(engine, bg, probe.NewBudget(1), predict.NewDurationPredictor(1), predict.NewClientPredictor())
	tr := NewTracker(nil)

	// Three middle issues at the same cloud, budget of 1/day.
	results := []core.Result{
		mkResult(core.BlameMiddle, int(w.Clouds[0].ID), 2001, 0, 50),
		mkResult(core.BlameMiddle, int(w.Clouds[0].ID), 2002, 1, 10),
		mkResult(core.BlameMiddle, int(w.Clouds[0].ID), 2003, 2, 90),
	}
	for i := range results {
		results[i].Q.Obs.Bucket = 5
	}
	tr.Advance(5, MiddleKeysOf(results))
	verdicts := loc.Process(5, results, tr)
	probed := 0
	for _, v := range verdicts {
		if v.Probed {
			probed++
			// The highest client-time issue (most observed clients, since no
			// history) must win the budget.
			if v.Issue.ObservedClients != 90 {
				t.Errorf("budget went to issue with %d clients", v.Issue.ObservedClients)
			}
		}
	}
	if probed != 1 {
		t.Errorf("probed = %d, want 1", probed)
	}
}

func TestMiddleKeysOfDedup(t *testing.T) {
	results := []core.Result{
		mkResult(core.BlameMiddle, 1, 2001, 0, 1),
		mkResult(core.BlameMiddle, 1, 2001, 1, 1),
		mkResult(core.BlameMiddle, 2, 2001, 2, 1),
	}
	keys := MiddleKeysOf(results)
	if len(keys) != 2 {
		t.Errorf("keys = %v", keys)
	}
}

func TestRecordClients(t *testing.T) {
	cp := predict.NewClientPredictor()
	path := netmodel.Path{Cloud: 1, Middle: []netmodel.ASN{2001}, Client: 100}
	qs := []quartet.Quartet{
		{Obs: trace.Observation{Prefix: 1, Cloud: 1, Bucket: 10, Clients: 30, Samples: 20}, Enough: true},
		{Obs: trace.Observation{Prefix: 2, Cloud: 1, Bucket: 10, Clients: 5, Samples: 3}, Enough: false}, // gated
	}
	RecordClients(cp, qs, func(netmodel.PrefixID, netmodel.CloudID, netmodel.Bucket) netmodel.Path { return path })
	got := cp.Predict(path.Key(), netmodel.Bucket(netmodel.BucketsPerDay+10))
	if got != 30 {
		t.Errorf("predict = %v, want 30 (gated quartet excluded)", got)
	}
}
