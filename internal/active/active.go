// Package active implements BlameIt's active phase (§5): it groups the
// passive phase's middle-segment verdicts into per-path issues, estimates
// each issue's client-time product (expected remaining duration × expected
// affected clients), and issues prioritized on-demand traceroutes within a
// per-location budget, comparing them against background baselines to name
// the culprit AS.
package active

import (
	"context"
	"sort"

	"blameit/internal/core"
	"blameit/internal/netmodel"
	"blameit/internal/predict"
	"blameit/internal/probe"
	"blameit/internal/quartet"
)

// Issue is one ongoing middle-segment problem: the set of bad quartets
// sharing an AS-level BGP path from one cloud location.
type Issue struct {
	Key    netmodel.MiddleKey
	Path   netmodel.Path
	Cloud  netmodel.CloudID
	Bucket netmodel.Bucket
	// Prefixes are the affected client /24s observed this window.
	Prefixes []netmodel.PrefixID
	// ObservedClients is the number of clients in the affected quartets.
	ObservedClients int
	// Lasted is how many consecutive buckets the issue has been active.
	Lasted int
	// ClientTime is the estimated client-time product used for ranking.
	ClientTime float64
}

// GroupIssues groups middle-blamed verdicts of one window by BGP path.
func GroupIssues(results []core.Result, b netmodel.Bucket) []Issue {
	return GroupIssuesBy(results, b, nil)
}

// GroupIssuesBy groups middle-blamed verdicts using a custom middle-key
// function (nil = the BGP path key). A system that groups clients by
// ⟨AS, Metro⟩ also probes per that grouping, which is exactly what the
// Fig. 11 baseline needs to reproduce.
func GroupIssuesBy(results []core.Result, b netmodel.Bucket, keyOf core.MiddleKeyFunc) []Issue {
	byKey := make(map[netmodel.MiddleKey]*Issue)
	order := make([]netmodel.MiddleKey, 0)
	for _, r := range results {
		if r.Blame != core.BlameMiddle {
			continue
		}
		mk := r.Path.Key()
		if keyOf != nil {
			mk = keyOf(r.Path, r.Q.Obs.Prefix)
		}
		is, ok := byKey[mk]
		if !ok {
			is = &Issue{Key: mk, Path: r.Path.Clone(), Cloud: r.Path.Cloud, Bucket: b}
			byKey[mk] = is
			order = append(order, mk)
		}
		is.Prefixes = append(is.Prefixes, r.Q.Obs.Prefix)
		is.ObservedClients += r.Q.Obs.Clients
	}
	out := make([]Issue, 0, len(byKey))
	for _, mk := range order {
		out = append(out, *byKey[mk])
	}
	return out
}

// Tracker measures how long each middle issue has been ongoing and feeds
// completed issue durations into the duration predictor. It is advanced at
// the Algorithm 1 job cadence; `step` converts advances into buckets.
type Tracker struct {
	open   map[netmodel.MiddleKey]int // consecutive advances active
	last   netmodel.Bucket
	primed bool
	step   int // buckets between advances (job cadence)
	dur    *predict.DurationPredictor
}

// NewTracker creates a tracker advanced every bucket that records
// completed durations into the given predictor (which may be nil).
func NewTracker(dur *predict.DurationPredictor) *Tracker {
	return NewTrackerWithStep(dur, 1)
}

// NewTrackerWithStep creates a tracker advanced every `step` buckets (the
// job cadence; 3 in production for the 15-minute job).
func NewTrackerWithStep(dur *predict.DurationPredictor, step int) *Tracker {
	if step < 1 {
		step = 1
	}
	return &Tracker{open: make(map[netmodel.MiddleKey]int), dur: dur, step: step}
}

// Advance records which middle keys are active at bucket b, closing runs
// that ended and training the duration predictor with them. Advances more
// than one step apart terminate all open runs.
func (t *Tracker) Advance(b netmodel.Bucket, active []netmodel.MiddleKey) {
	if t.primed && b <= t.last {
		panic("active: Tracker.Advance called with non-increasing bucket")
	}
	gap := t.primed && b > t.last+netmodel.Bucket(t.step)
	set := make(map[netmodel.MiddleKey]bool, len(active))
	for _, k := range active {
		set[k] = true
	}
	for k, run := range t.open {
		if gap || !set[k] {
			if t.dur != nil {
				t.dur.Record(k, run*t.step)
			}
			delete(t.open, k)
		}
	}
	for _, k := range active {
		t.open[k]++
	}
	t.last = b
	t.primed = true
}

// Lasted returns the current run length of a middle issue, in buckets
// (including the current advance).
func (t *Tracker) Lasted(k netmodel.MiddleKey) int { return t.open[k] * t.step }

// Flush closes all open runs into the predictor (end of simulation).
func (t *Tracker) Flush() {
	for k, run := range t.open {
		if t.dur != nil {
			t.dur.Record(k, run*t.step)
		}
		delete(t.open, k)
	}
}

// Verdict is the active phase's AS-level localization of one issue.
type Verdict struct {
	Issue Issue
	// Probed is false when the budget was exhausted before this issue.
	Probed bool
	// OK is false when the probe could not be compared (missing or stale
	// baseline with a different AS path, or a failed/truncated probe).
	OK bool
	// Degraded is true when the probe infrastructure itself failed — every
	// retry exhausted or the location's circuit breaker open — so no
	// comparison was even attempted. The issue stays unlocalized (an
	// explicit insufficient-style outcome, mirroring Algorithm 1's refusal
	// to guess) rather than being blamed from stale data. Omitted from
	// JSON when false so fault-free reports are byte-identical to before.
	Degraded   bool `json:",omitempty"`
	AS         netmodel.ASN
	Segment    netmodel.Segment
	IncreaseMS float64
}

// Localizer runs the active phase. Probes are issued through the Prober
// interface, so the same localization logic runs against the live
// traceroute engine or a recorded-probe replay.
type Localizer struct {
	Prober    probe.Prober
	Baseliner *probe.Baseliner
	Budget    *probe.Budget
	Durations *predict.DurationPredictor
	Clients   *predict.ClientPredictor
}

// NewLocalizer assembles the active phase from its parts.
func NewLocalizer(pr probe.Prober, bg *probe.Baseliner, bu *probe.Budget, dp *predict.DurationPredictor, cp *predict.ClientPredictor) *Localizer {
	return &Localizer{Prober: pr, Baseliner: bg, Budget: bu, Durations: dp, Clients: cp}
}

// Estimate fills an issue's client-time product from the two predictors:
// expected remaining duration (buckets) × predicted clients per bucket.
func (l *Localizer) Estimate(is *Issue, lasted int) {
	is.Lasted = lasted
	remaining := l.Durations.ExpectedRemaining(is.Key, lasted)
	clients := l.Clients.Predict(is.Key, is.Bucket)
	if clients == 0 {
		// No history for the path: use the currently observed clients.
		clients = float64(is.ObservedClients)
	}
	is.ClientTime = remaining * clients
}

// Prioritize sorts issues by descending client-time product (§5.3),
// breaking ties by observed clients then key for determinism.
func Prioritize(issues []Issue) {
	sort.Slice(issues, func(i, j int) bool {
		a, b := issues[i], issues[j]
		if a.ClientTime != b.ClientTime {
			return a.ClientTime > b.ClientTime
		}
		if a.ObservedClients != b.ObservedClients {
			return a.ObservedClients > b.ObservedClients
		}
		return a.Key < b.Key
	})
}

// Process runs the full active phase for one window: group, estimate,
// prioritize, and probe within budget. The tracker must already have been
// advanced to bucket b.
func (l *Localizer) Process(b netmodel.Bucket, results []core.Result, tr *Tracker) []Verdict {
	return l.ProcessIssues(b, GroupIssues(results, b), tr)
}

// ProcessIssues runs the active phase over pre-grouped issues.
func (l *Localizer) ProcessIssues(b netmodel.Bucket, issues []Issue, tr *Tracker) []Verdict {
	return l.ProcessIssuesContext(context.Background(), b, issues, tr)
}

// ProcessIssuesContext is ProcessIssues with cancellation, threaded into
// fallible probers (a live traceroute blocks on the network; ctx bounds
// it). A probe that fails outright — retries exhausted, circuit open —
// yields a Degraded verdict instead of a localization: the §5.2
// comparison is only ever run against measurements that actually
// completed.
func (l *Localizer) ProcessIssuesContext(ctx context.Context, b netmodel.Bucket, issues []Issue, tr *Tracker) []Verdict {
	for i := range issues {
		l.Estimate(&issues[i], tr.Lasted(issues[i].Key))
	}
	Prioritize(issues)
	ep, fallible := l.Prober.(probe.ErrProber)
	verdicts := make([]Verdict, 0, len(issues))
	for _, is := range issues {
		v := Verdict{Issue: is}
		if l.Budget.TryTakeForIssue(is.Path, b) {
			v.Probed = true
			// One traceroute per middle issue, to a representative client.
			target := is.Prefixes[0]
			var now probe.Traceroute
			if fallible {
				var perr error
				now, perr = ep.TracerouteErr(ctx, is.Cloud, target, b, probe.OnDemand)
				if perr != nil {
					v.Degraded = true
					verdicts = append(verdicts, v)
					continue
				}
			} else {
				now = l.Prober.Traceroute(is.Cloud, target, b, probe.OnDemand)
			}
			// The baseline is looked up by the path the probe actually
			// took, and must predate the issue's start — comparing against
			// a measurement taken during the incident would hide it. When
			// the issue grouping is coarser than a path (the <AS,Metro>
			// baseline) the representative may not even traverse the
			// faulty AS.
			cutoff := b - netmodel.Bucket(is.Lasted)
			if baseline, ok := l.Baseliner.BaselineBefore(now.Path.Key(), cutoff); ok {
				res := probe.Compare(now, baseline)
				v.OK = res.OK
				v.AS = res.AS
				v.Segment = res.Segment
				v.IncreaseMS = res.IncreaseMS
			}
		}
		verdicts = append(verdicts, v)
	}
	return verdicts
}

// MiddleKeysOf extracts the distinct middle keys of a window's
// middle-blamed verdicts, for feeding the tracker.
func MiddleKeysOf(results []core.Result) []netmodel.MiddleKey {
	return MiddleKeysOfBy(results, nil)
}

// MiddleKeysOfBy is MiddleKeysOf under a custom middle-key function.
func MiddleKeysOfBy(results []core.Result, keyOf core.MiddleKeyFunc) []netmodel.MiddleKey {
	seen := make(map[netmodel.MiddleKey]bool)
	var out []netmodel.MiddleKey
	for _, r := range results {
		if r.Blame != core.BlameMiddle {
			continue
		}
		mk := r.Path.Key()
		if keyOf != nil {
			mk = keyOf(r.Path, r.Q.Obs.Prefix)
		}
		if !seen[mk] {
			seen[mk] = true
			out = append(out, mk)
		}
	}
	return out
}

// RecordClients feeds the client predictor with this window's per-path
// client counts, derived from all sufficiently-sampled quartets (not just
// bad ones — the predictor needs normal traffic levels).
func RecordClients(cp *predict.ClientPredictor, qs []quartet.Quartet, pathOf core.PathFunc) {
	for _, q := range qs {
		if !q.Enough {
			continue
		}
		o := q.Obs
		mk := pathOf(o.Prefix, o.Cloud, o.Bucket).Key()
		cp.Record(mk, o.Bucket, o.Clients)
	}
}
