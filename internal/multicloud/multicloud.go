// Package multicloud runs one unchanged BlameIt pipeline per cloud
// provider over a shared simulated internet, then grades whether the
// independent deployments agree on what the internet did.
//
// The premise follows the paper's closing observation: a wide-area fault in
// a transit AS is visible to every provider whose traffic crosses it, so
// two providers running the same localization independently should blame
// the same middle AS for the same incident — and should never blame each
// other's cloud segments, which their own telemetry cannot see inside.
// Each provider gets its own observation stream (its served prefixes
// steered to its own anycast edges), its own ingestion store, probe
// engine, baseliner, and metrics registry; only the world, the BGP fabric,
// and the fault timeline are shared, exactly as in reality.
package multicloud

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"blameit/internal/faults"
	"blameit/internal/ingest"
	"blameit/internal/metrics"
	"blameit/internal/netmodel"
	"blameit/internal/pipeline"
	"blameit/internal/probe"
	"blameit/internal/sim"
	"blameit/internal/topology"
	"blameit/internal/trace"
)

// Runner owns one pipeline per provider of the simulator's world. Build it
// with New, drive it with Run, grade the collected reports with Grade.
type Runner struct {
	Sim       *sim.Simulator
	Pipelines []*pipeline.Pipeline
	// Reports collects each provider's job reports in run order. Filled by
	// Run; indexed by provider.
	Reports [][]*pipeline.Report
}

// New assembles one pipeline per provider over the shared simulator. Each
// provider's wiring mirrors pipeline.SimDeps — its own ingestion store and
// traceroute engine over its own observation stream — plus a private
// metrics registry so per-provider counters never mix. The pipeline
// configuration is shared; cfg.Metrics is ignored.
func New(s *sim.Simulator, cfg pipeline.Config) *Runner {
	n := s.World.NumProviders()
	r := &Runner{
		Sim:       s,
		Pipelines: make([]*pipeline.Pipeline, n),
		Reports:   make([][]*pipeline.Report, n),
	}
	for q := 0; q < n; q++ {
		st := trace.NewStore(8)
		st.SetRetention(pipeline.SimDepsRetention)
		pcfg := cfg
		pcfg.Metrics = metrics.NewRegistry()
		r.Pipelines[q] = pipeline.New(pipeline.Deps{
			World:    s.World,
			Table:    s.Routes,
			Source:   ingest.NewStoreIngest(ingest.NewProviderSimSource(s, netmodel.ProviderID(q)), st),
			Prober:   probe.NewEngine(s, cfg.ProbeNoiseMS),
			Store:    st,
			Provider: netmodel.ProviderID(q),
		}, pcfg)
	}
	return r
}

// Run warms up and runs every provider's pipeline concurrently over the
// shared timeline: warmup learns [0, warmupEnd), the job runs
// [warmupEnd, horizon). The simulator is safe for concurrent readers, so
// the pipelines genuinely overlap — which is also what shakes out cross-
// provider data races under -race. The first provider error (by provider
// number) is returned.
func (r *Runner) Run(ctx context.Context, warmupEnd, horizon netmodel.Bucket) error {
	errs := make([]error, len(r.Pipelines))
	var wg sync.WaitGroup
	for q := range r.Pipelines {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			p := r.Pipelines[q]
			if err := p.WarmupContext(ctx, 0, warmupEnd); err != nil {
				errs[q] = fmt.Errorf("multicloud: provider %d warmup: %w", q, err)
				return
			}
			errs[q] = nil
			if err := p.RunContext(ctx, warmupEnd, horizon, func(rep *pipeline.Report) {
				r.Reports[q] = append(r.Reports[q], rep)
			}); err != nil {
				errs[q] = fmt.Errorf("multicloud: provider %d run: %w", q, err)
			}
		}(q)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// FaultOutcome grades one injected middle-AS fault across providers.
type FaultOutcome struct {
	FaultID int
	AS      netmodel.ASN
	Start   netmodel.Bucket
	// Localizers lists the providers that produced at least one OK
	// middle verdict matching the fault's window and path footprint.
	Localizers []netmodel.ProviderID
	// BlamedASes is the sorted set of the localizing providers' primary
	// blames — each provider's majority answer across its matching
	// verdicts (a fault spans many job windows; the provider's verdict is
	// the AS it blamed most often, not every noisy one-off).
	BlamedASes []netmodel.ASN
	// Localized: every localizing provider blamed exactly the injected AS.
	Localized bool
	// CrossConfirmed: at least two providers independently localized it.
	CrossConfirmed bool
}

// Consistency is the cross-provider agreement report for one run.
type Consistency struct {
	Providers int
	Faults    []FaultOutcome
	// Disagreements counts faults where some provider localized a
	// different AS than the injected one.
	Disagreements int
	// CrossConfirmed counts faults independently localized by ≥2
	// providers.
	CrossConfirmed int
	// CloudCrossBlame counts OK verdicts in which a provider blamed an AS
	// that is another provider's cloud AS — impossible in a correct run,
	// since no provider's paths traverse another provider's cloud.
	CloudCrossBlame int
}

// Consistent reports whether the run meets the multi-provider gate: no
// cross-provider disagreement on any injected middle fault, no provider
// ever blaming another provider's cloud AS, and at least one fault
// independently confirmed by two or more providers.
func (c Consistency) Consistent() bool {
	return c.Disagreements == 0 && c.CloudCrossBlame == 0 && c.CrossConfirmed >= 1
}

// String renders a one-line summary for logs.
func (c Consistency) String() string {
	return fmt.Sprintf("multicloud: %d providers, %d faults graded, %d cross-confirmed, %d disagreements, %d cloud cross-blames",
		c.Providers, len(c.Faults), c.CrossConfirmed, c.Disagreements, c.CloudCrossBlame)
}

// Grade compares the providers' verdicts against the injected fault
// schedule. Only unscoped forward middle-AS faults starting inside
// [from, to) are graded — those are the incidents every provider's paths
// can see; scoped or reverse-only faults are provider- or
// direction-specific by construction. A verdict counts toward a fault when
// it is OK, blames a middle AS within the fault's active window (plus
// slack buckets of detection latency), and the fault's AS lies on the
// verdict's path — the same footprint the fault injected latency into.
// Verdicts explained by a different concurrently-active middle fault are
// credited to that fault instead, not held against this one.
func Grade(w *topology.World, sched *faults.Schedule, from, to, slack netmodel.Bucket, reports [][]*pipeline.Report) Consistency {
	c := Consistency{Providers: len(reports)}

	// Cloud ASNs by provider, for cross-blame detection.
	cloudProv := make(map[netmodel.ASN]netmodel.ProviderID, w.NumProviders())
	for q := 0; q < w.NumProviders(); q++ {
		cloudProv[w.ProviderASN(netmodel.ProviderID(q))] = netmodel.ProviderID(q)
	}

	// Collect every OK middle verdict per provider once.
	type verdict struct {
		as     netmodel.ASN
		bucket netmodel.Bucket
		middle []netmodel.ASN
	}
	byProv := make([][]verdict, len(reports))
	for q, reps := range reports {
		for _, rep := range reps {
			for _, v := range rep.Verdicts {
				if !v.OK {
					continue
				}
				if owner, ok := cloudProv[v.AS]; ok && owner != netmodel.ProviderID(q) {
					c.CloudCrossBlame++
					continue
				}
				if v.Segment != netmodel.SegMiddle {
					continue
				}
				byProv[q] = append(byProv[q], verdict{
					as:     v.AS,
					bucket: v.Issue.Bucket,
					middle: v.Issue.Path.Middle,
				})
			}
		}
	}

	onPath := func(as netmodel.ASN, middle []netmodel.ASN) bool {
		for _, a := range middle {
			if a == as {
				return true
			}
		}
		return false
	}
	// gradable reports whether fault f is one of the graded incidents.
	gradable := func(f faults.Fault) bool {
		return f.Kind == faults.MiddleASFault && !f.ReverseOnly &&
			f.ScopeCloud == faults.NoCloud && f.Start >= from && f.Start < to
	}
	// matches reports whether verdict v falls inside fault f's window and
	// footprint (any blamed AS accepted — agreement is graded later).
	matches := func(v verdict, f faults.Fault) bool {
		return v.bucket >= f.Start && v.bucket < f.End()+slack && onPath(f.AS, v.middle)
	}

	for _, f := range sched.Faults {
		if !gradable(f) {
			continue
		}
		out := FaultOutcome{FaultID: f.ID, AS: f.AS, Start: f.Start}
		blamed := make(map[netmodel.ASN]bool)
		for q := range byProv {
			votes := make(map[netmodel.ASN]int)
			for _, v := range byProv[q] {
				if !matches(v, f) {
					continue
				}
				if v.as != f.AS {
					// A different AS may be the right answer for a
					// different concurrently-active fault whose window and
					// footprint also cover this verdict; credit it there.
					explained := false
					for _, g := range sched.Faults {
						if g.ID != f.ID && gradable(g) && g.AS == v.as && matches(v, g) {
							explained = true
							break
						}
					}
					if explained {
						continue
					}
				}
				votes[v.as]++
			}
			if len(votes) == 0 {
				continue
			}
			// The provider's verdict for the fault is its majority blame
			// across the fault's job windows (ties break to the lower ASN
			// for determinism).
			var primary netmodel.ASN
			best := -1
			for as, n := range votes {
				if n > best || (n == best && as < primary) {
					primary, best = as, n
				}
			}
			out.Localizers = append(out.Localizers, netmodel.ProviderID(q))
			blamed[primary] = true
		}
		for as := range blamed {
			out.BlamedASes = append(out.BlamedASes, as)
		}
		sort.Slice(out.BlamedASes, func(i, j int) bool { return out.BlamedASes[i] < out.BlamedASes[j] })
		out.Localized = len(out.Localizers) >= 1 && len(out.BlamedASes) == 1 && out.BlamedASes[0] == f.AS
		out.CrossConfirmed = out.Localized && len(out.Localizers) >= 2
		if out.CrossConfirmed {
			c.CrossConfirmed++
		}
		if len(out.Localizers) > 0 && !out.Localized {
			c.Disagreements++
		}
		c.Faults = append(c.Faults, out)
	}
	return c
}

// SeedMiddleFaults builds n non-overlapping unscoped forward middle-AS
// faults on the transit/tier-1 ASes most shared across providers: ASes are
// ranked by how many providers' primary-attachment paths traverse them
// (descending), then by total path count (descending), then by ASN for
// determinism. Faults start at firstStart and follow every 'every'
// buckets, each lasting dur buckets with extraMS of injected latency.
// These are exactly the incidents Grade expects every provider to see.
func SeedMiddleFaults(w *topology.World, n int, firstStart, every, dur netmodel.Bucket, extraMS float64) []faults.Fault {
	type share struct {
		as    netmodel.ASN
		provs map[netmodel.ProviderID]bool
		paths int
	}
	byAS := make(map[netmodel.ASN]*share)
	for q := 0; q < w.NumProviders(); q++ {
		qq := netmodel.ProviderID(q)
		for _, pid := range w.Population(qq) {
			atts := w.AttachmentsFor(qq, pid)
			if len(atts) == 0 {
				continue
			}
			bp := w.Prefixes[pid].BGPPrefix
			for _, as := range w.InitialPath(atts[0].Cloud, bp).Middle {
				sh := byAS[as]
				if sh == nil {
					sh = &share{as: as, provs: make(map[netmodel.ProviderID]bool)}
					byAS[as] = sh
				}
				sh.provs[qq] = true
				sh.paths++
			}
		}
	}
	ranked := make([]*share, 0, len(byAS))
	for _, sh := range byAS {
		ranked = append(ranked, sh)
	}
	sort.Slice(ranked, func(i, j int) bool {
		a, b := ranked[i], ranked[j]
		if len(a.provs) != len(b.provs) {
			return len(a.provs) > len(b.provs)
		}
		if a.paths != b.paths {
			return a.paths > b.paths
		}
		return a.as < b.as
	})
	if n > len(ranked) {
		n = len(ranked)
	}
	fs := make([]faults.Fault, 0, n)
	for i := 0; i < n; i++ {
		fs = append(fs, faults.Fault{
			Kind:       faults.MiddleASFault,
			AS:         ranked[i].as,
			ScopeCloud: faults.NoCloud,
			Start:      firstStart + netmodel.Bucket(i)*every,
			Duration:   dur,
			ExtraMS:    extraMS,
			Desc:       fmt.Sprintf("multicloud seeded middle fault on AS%d", ranked[i].as),
		})
	}
	return fs
}
