package multicloud

import (
	"bytes"
	"context"
	"testing"

	"blameit/internal/bgp"
	"blameit/internal/faults"
	"blameit/internal/netmodel"
	"blameit/internal/pipeline"
	"blameit/internal/sim"
	"blameit/internal/topology"
)

const dayStart = netmodel.Bucket(netmodel.BucketsPerDay)

// buildRig assembles a providers-wide small world with the given faults.
func buildRig(t testing.TB, providers int, fs []faults.Fault, horizon netmodel.Bucket) *sim.Simulator {
	t.Helper()
	scale := topology.SmallScale()
	scale.Providers = providers
	w := topology.Generate(scale, 42)
	tbl := bgp.NewTable(w, bgp.DefaultChurnConfig(), horizon, 7)
	return sim.New(w, tbl, faults.NewSchedule(fs), sim.DefaultConfig(99))
}

// TestMulticloudConsistency is the multi-provider gate (run under -race by
// `make multicloud`): three independent pipelines over one shared internet
// must agree on every seeded transit fault — zero disagreements on the
// blamed middle AS, zero blame of another provider's cloud segment, and at
// least one fault cross-confirmed by two or more providers.
func TestMulticloudConsistency(t *testing.T) {
	const providers = 3
	horizon := dayStart + netmodel.Bucket(288)

	scale := topology.SmallScale()
	scale.Providers = providers
	w := topology.Generate(scale, 42)
	fs := SeedMiddleFaults(w, 2, dayStart+24, 120, 36, 60)
	if len(fs) != 2 {
		t.Fatalf("SeedMiddleFaults produced %d faults, want 2", len(fs))
	}
	tbl := bgp.NewTable(w, bgp.DefaultChurnConfig(), horizon, 7)
	s := sim.New(w, tbl, faults.NewSchedule(fs), sim.DefaultConfig(99))

	cfg := pipeline.DefaultConfig()
	r := New(s, cfg)
	if len(r.Pipelines) != providers {
		t.Fatalf("runner built %d pipelines, want %d", len(r.Pipelines), providers)
	}
	if err := r.Run(context.Background(), dayStart, horizon); err != nil {
		t.Fatal(err)
	}
	for q, reps := range r.Reports {
		if len(reps) == 0 {
			t.Fatalf("provider %d produced no reports", q)
		}
	}

	slack := netmodel.Bucket(2 * cfg.RunEvery)
	c := Grade(w, s.Sched, dayStart, horizon, slack, r.Reports)
	t.Log(c.String())
	if len(c.Faults) != 2 {
		t.Fatalf("graded %d faults, want 2", len(c.Faults))
	}
	if c.Disagreements != 0 {
		for _, f := range c.Faults {
			if !f.Localized && len(f.Localizers) > 0 {
				t.Errorf("fault %d (AS%d): providers %v blamed %v", f.FaultID, f.AS, f.Localizers, f.BlamedASes)
			}
		}
		t.Fatalf("%d cross-provider disagreements", c.Disagreements)
	}
	if c.CloudCrossBlame != 0 {
		t.Fatalf("%d verdicts blamed another provider's cloud AS", c.CloudCrossBlame)
	}
	if c.CrossConfirmed < 1 {
		t.Fatalf("no fault was independently confirmed by ≥2 providers: %+v", c.Faults)
	}
	if !c.Consistent() {
		t.Fatal("Consistent() = false despite passing gates")
	}
}

// TestMulticloudProviderOneEquivalence pins the refactor's core invariant
// end to end: a one-provider multicloud run reports byte-for-byte what the
// classic single-pipeline wiring reports.
func TestMulticloudProviderOneEquivalence(t *testing.T) {
	horizon := dayStart + netmodel.Bucket(144)
	mk := func() (*sim.Simulator, pipeline.Config) {
		scale := topology.SmallScale()
		w := topology.Generate(scale, 42)
		fsrc := SeedMiddleFaults(w, 1, dayStart+12, 96, 24, 60)
		tbl := bgp.NewTable(w, bgp.DefaultChurnConfig(), horizon, 7)
		return sim.New(w, tbl, faults.NewSchedule(fsrc), sim.DefaultConfig(99)), pipeline.DefaultConfig()
	}

	s1, cfg := mk()
	r := New(s1, cfg)
	if err := r.Run(context.Background(), dayStart, horizon); err != nil {
		t.Fatal(err)
	}

	s2, cfg2 := mk()
	p := pipeline.NewSim(s2, cfg2)
	if err := p.Warmup(0, dayStart); err != nil {
		t.Fatal(err)
	}
	var classic []*pipeline.Report
	if err := p.Run(dayStart, horizon, func(rep *pipeline.Report) {
		classic = append(classic, rep)
	}); err != nil {
		t.Fatal(err)
	}

	got := r.Reports[0]
	if len(got) != len(classic) {
		t.Fatalf("multicloud produced %d reports, classic %d", len(got), len(classic))
	}
	for i := range got {
		a, err := got[i].CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		b, err := classic[i].CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("report %d differs between 1-provider multicloud and classic pipeline:\n%s\nvs\n%s", i, a, b)
		}
	}
}

// TestSeedMiddleFaultsDeterminism: the seeded schedule is a pure function
// of the world.
func TestSeedMiddleFaultsDeterminism(t *testing.T) {
	scale := topology.SmallScale()
	scale.Providers = 3
	a := SeedMiddleFaults(topology.Generate(scale, 42), 3, 100, 50, 20, 40)
	b := SeedMiddleFaults(topology.Generate(scale, 42), 3, 100, 50, 20, 40)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].AS != b[i].AS || a[i].Start != b[i].Start {
			t.Fatalf("fault %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].End() > a[i].Start {
			t.Fatalf("faults %d and %d overlap", i-1, i)
		}
	}
}
