package predict

import (
	"math"
	"testing"

	"blameit/internal/netmodel"
)

const key = netmodel.MiddleKey("c1|2001")

func TestExpectedRemainingDeterministicDistribution(t *testing.T) {
	// All incidents last exactly 10 buckets. Having lasted 4, the expected
	// remainder is exactly 6.
	p := NewDurationPredictor(1)
	for i := 0; i < 50; i++ {
		p.Record(key, 10)
	}
	got := p.ExpectedRemaining(key, 4)
	if math.Abs(got-6) > 1e-9 {
		t.Errorf("expected remaining = %v, want 6", got)
	}
}

func TestExpectedRemainingMixture(t *testing.T) {
	// Half the incidents last 1 bucket, half last 21. Given an issue has
	// already lasted 2 buckets, it must be one of the long ones: remaining
	// = 19.
	p := NewDurationPredictor(1)
	for i := 0; i < 100; i++ {
		p.Record(key, 1)
		p.Record(key, 21)
	}
	got := p.ExpectedRemaining(key, 2)
	if math.Abs(got-19) > 1e-9 {
		t.Errorf("conditional remaining = %v, want 19", got)
	}
	// At t=1 the expectation mixes both populations:
	// E = sum_{T>=1} P(D >= 1+T)/P(D >= 1) = (20 long-bucket survivors)/2 = 10.
	got = p.ExpectedRemaining(key, 1)
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("mixture remaining at t=1 = %v, want 10", got)
	}
}

func TestLongLivedSeparation(t *testing.T) {
	// The paper only needs long-lived issues to rank above fleeting ones.
	p := NewDurationPredictor(1)
	for i := 0; i < 60; i++ {
		p.Record(key, 1)
	}
	for i := 0; i < 8; i++ {
		p.Record(key, 30)
	}
	early := p.ExpectedRemaining(key, 1)
	lasted := p.ExpectedRemaining(key, 5)
	if lasted <= early {
		t.Errorf("an issue that survived 5 buckets must have higher expected remainder (%v vs %v)", lasted, early)
	}
}

func TestPerKeyFallsBackToGlobal(t *testing.T) {
	p := NewDurationPredictor(5)
	other := netmodel.MiddleKey("c2|2002")
	for i := 0; i < 100; i++ {
		p.Record(other, 12)
	}
	// key has too little history (< minPerKey): use global.
	p.Record(key, 2)
	got := p.ExpectedRemaining(key, 4)
	if math.Abs(got-8) > 1e-9 {
		t.Errorf("global fallback remaining = %v, want 8", got)
	}
}

func TestExpectedRemainingNoHistory(t *testing.T) {
	p := NewDurationPredictor(1)
	if got := p.ExpectedRemaining(key, 3); got != 1 {
		t.Errorf("no-history remaining = %v, want 1", got)
	}
}

func TestExpectedRemainingBeyondObserved(t *testing.T) {
	p := NewDurationPredictor(1)
	p.Record(key, 5)
	// Lasted longer than anything observed on the key or globally.
	if got := p.ExpectedRemaining(key, 50); got != 1 {
		t.Errorf("beyond-observed remaining = %v, want fallback 1", got)
	}
}

func TestProbLastsAtLeast(t *testing.T) {
	p := NewDurationPredictor(1)
	for i := 0; i < 75; i++ {
		p.Record(key, 1)
	}
	for i := 0; i < 25; i++ {
		p.Record(key, 10)
	}
	if got := p.ProbLastsAtLeast(2); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("P(D>=2) = %v, want 0.25", got)
	}
	if got := p.ProbLastsAtLeast(1); got != 1 {
		t.Errorf("P(D>=1) = %v, want 1", got)
	}
	if p.Incidents() != 100 {
		t.Errorf("incidents = %d", p.Incidents())
	}
	if NewDurationPredictor(1).ProbLastsAtLeast(1) != 0 {
		t.Error("empty predictor must report 0")
	}
}

func TestDurationClamping(t *testing.T) {
	p := NewDurationPredictor(1)
	p.Record(key, 0)     // clamps to 1
	p.Record(key, 99999) // clamps to maxDuration
	if p.Incidents() != 2 {
		t.Error("clamped durations lost")
	}
	if p.ProbLastsAtLeast(maxDuration) != 0.5 {
		t.Error("overlong duration not clamped into histogram")
	}
}

func TestClientPredictorSameWindowAverage(t *testing.T) {
	p := NewClientPredictor()
	of := 100 // bucket-of-day
	// Days 0,1,2 saw 30, 60, 90 clients in this window.
	for day := 0; day < 3; day++ {
		b := netmodel.Bucket(day*netmodel.BucketsPerDay + of)
		p.Record(key, b, 30*(day+1))
	}
	b := netmodel.Bucket(3*netmodel.BucketsPerDay + of)
	if got := p.Predict(key, b); math.Abs(got-60) > 1e-9 {
		t.Errorf("predict = %v, want 60", got)
	}
}

func TestClientPredictorIgnoresOtherWindows(t *testing.T) {
	p := NewClientPredictor()
	// Record a large count in a different window of the previous day.
	p.Record(key, netmodel.Bucket(0*netmodel.BucketsPerDay+50), 1000)
	p.Record(key, netmodel.Bucket(0*netmodel.BucketsPerDay+100), 20)
	got := p.Predict(key, netmodel.Bucket(1*netmodel.BucketsPerDay+100))
	if math.Abs(got-20) > 1e-9 {
		t.Errorf("predict = %v, want 20 (same window only)", got)
	}
}

func TestClientPredictorAccumulatesWithinBucket(t *testing.T) {
	p := NewClientPredictor()
	b0 := netmodel.Bucket(100)
	p.Record(key, b0, 10)
	p.Record(key, b0, 15) // second record in the same bucket adds up
	got := p.Predict(key, netmodel.Bucket(netmodel.BucketsPerDay+100))
	if math.Abs(got-25) > 1e-9 {
		t.Errorf("predict = %v, want 25", got)
	}
}

func TestClientPredictorFallbacks(t *testing.T) {
	p := NewClientPredictor()
	if p.Predict(key, 100) != 0 {
		t.Error("unknown key must predict 0")
	}
	// Only current-day history: fall back to overall mean.
	p.Record(key, 10, 40)
	p.Record(key, 11, 20)
	got := p.Predict(key, 12)
	if math.Abs(got-30) > 1e-9 {
		t.Errorf("fallback predict = %v, want 30", got)
	}
}

func TestClientPredictorRingReuse(t *testing.T) {
	p := NewClientPredictor()
	of := 7
	// Day 0 had 100 clients; day 3 overwrites slot 0 with 10.
	p.Record(key, netmodel.Bucket(0*netmodel.BucketsPerDay+of), 100)
	p.Record(key, netmodel.Bucket(3*netmodel.BucketsPerDay+of), 10)
	// Predicting day 4 must use day 3 only (days 1,2 unrecorded, day 0 evicted).
	got := p.Predict(key, netmodel.Bucket(4*netmodel.BucketsPerDay+of))
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("predict = %v, want 10 (day 0 must be evicted)", got)
	}
}
