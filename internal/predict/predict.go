// Package predict implements the two estimators behind BlameIt's
// client-time-product prioritization (§5.3): the duration predictor, which
// computes the expected remaining duration of an ongoing issue from the
// empirical conditional survival P(T|t) of historical fault durations, and
// the client predictor, which forecasts how many clients will traverse a
// middle segment from the same time window on previous days.
package predict

import (
	"blameit/internal/netmodel"
)

// maxDuration caps tracked incident durations, in 5-minute buckets
// (400 buckets = 33 hours, far beyond the long tail of §2.3).
const maxDuration = 400

// survival is a duration histogram supporting conditional-survival
// queries.
type survival struct {
	counts [maxDuration + 1]int // counts[d] = incidents of duration d
	total  int
}

func (s *survival) record(d int) {
	if d < 1 {
		d = 1
	}
	if d > maxDuration {
		d = maxDuration
	}
	s.counts[d]++
	s.total++
}

// atLeast returns the number of incidents with duration >= t.
func (s *survival) atLeast(t int) int {
	if t < 1 {
		t = 1
	}
	n := 0
	for d := t; d <= maxDuration; d++ {
		n += s.counts[d]
	}
	return n
}

// expectedRemaining computes E[T | lasted t] = Σ_T P(D >= t+T | D >= t),
// the §5.3 formula with T in 5-minute increments.
func (s *survival) expectedRemaining(t int) (float64, bool) {
	den := s.atLeast(t)
	if den == 0 {
		return 0, false
	}
	// Σ_{T>=1} P(D >= t+T) / P(D >= t); accumulate the numerator tail sum.
	var sum float64
	run := 0
	for d := maxDuration; d >= t+1; d-- {
		run += s.counts[d]
		// run = number of incidents with duration >= d = survivors at T=d-t.
		sum += float64(run)
	}
	return sum / float64(den), true
}

// DurationPredictor learns P(T|t) per BGP path with a global fallback for
// paths with sparse history. The paper notes precise estimates are not
// needed: separating the few long-lived problems from the many short-lived
// ones suffices.
type DurationPredictor struct {
	global    survival
	perKey    map[netmodel.MiddleKey]*survival
	minPerKey int
}

// NewDurationPredictor creates a predictor; paths with fewer than
// minPerKey recorded incidents fall back to the global distribution.
func NewDurationPredictor(minPerKey int) *DurationPredictor {
	if minPerKey < 1 {
		minPerKey = 1
	}
	return &DurationPredictor{perKey: make(map[netmodel.MiddleKey]*survival), minPerKey: minPerKey}
}

// Record adds one completed incident of the given duration (in buckets) on
// a path.
func (p *DurationPredictor) Record(k netmodel.MiddleKey, durationBuckets int) {
	p.global.record(durationBuckets)
	s := p.perKey[k]
	if s == nil {
		s = &survival{}
		p.perKey[k] = s
	}
	s.record(durationBuckets)
}

// Incidents returns the total recorded incidents.
func (p *DurationPredictor) Incidents() int { return p.global.total }

// ExpectedRemaining predicts how many more buckets an issue on path k will
// last, given it has lasted `lasted` buckets so far. With no usable
// history at all it returns 1 (one more bucket).
func (p *DurationPredictor) ExpectedRemaining(k netmodel.MiddleKey, lasted int) float64 {
	if s, ok := p.perKey[k]; ok && s.total >= p.minPerKey {
		if v, ok := s.expectedRemaining(lasted); ok {
			return v
		}
	}
	if v, ok := p.global.expectedRemaining(lasted); ok {
		return v
	}
	return 1
}

// ProbLastsAtLeast returns the global P(D >= t).
func (p *DurationPredictor) ProbLastsAtLeast(t int) float64 {
	if p.global.total == 0 {
		return 0
	}
	return float64(p.global.atLeast(t)) / float64(p.global.total)
}

// historyDays is the look-back window of the client predictor; the paper
// found the same 5-minute window of the previous 3 days beats recent
// history.
const historyDays = 3

// clientHist is a per-path ring of the last few days' per-bucket client
// counts.
type clientHist struct {
	days   [historyDays][netmodel.BucketsPerDay]float32
	dayTag [historyDays]int
	// running fallback average
	sum float64
	n   int
}

// ClientPredictor forecasts the clients connecting through a middle
// segment in a 5-minute window as the average of the same window over the
// previous days.
type ClientPredictor struct {
	hist map[netmodel.MiddleKey]*clientHist
}

// NewClientPredictor creates an empty client predictor.
func NewClientPredictor() *ClientPredictor {
	return &ClientPredictor{hist: make(map[netmodel.MiddleKey]*clientHist)}
}

// Record adds the observed client count of one bucket on a path.
func (p *ClientPredictor) Record(k netmodel.MiddleKey, b netmodel.Bucket, clients int) {
	h := p.hist[k]
	if h == nil {
		h = &clientHist{dayTag: [historyDays]int{-1, -1, -1}}
		p.hist[k] = h
	}
	day := b.Day()
	slot := day % historyDays
	if h.dayTag[slot] != day {
		h.days[slot] = [netmodel.BucketsPerDay]float32{}
		h.dayTag[slot] = day
	}
	h.days[slot][b.OfDay()] += float32(clients)
	h.sum += float64(clients)
	h.n++
}

// Predict estimates the clients that will connect through path k in the
// 5-minute window of bucket b: the average over the same window of the
// previous days, falling back to the path's overall per-bucket mean.
func (p *ClientPredictor) Predict(k netmodel.MiddleKey, b netmodel.Bucket) float64 {
	h := p.hist[k]
	if h == nil {
		return 0
	}
	day := b.Day()
	of := b.OfDay()
	var sum float64
	var n int
	for back := 1; back <= historyDays; back++ {
		d := day - back
		if d < 0 {
			break
		}
		slot := d % historyDays
		if h.dayTag[slot] == d {
			sum += float64(h.days[slot][of])
			n++
		}
	}
	if n > 0 {
		return sum / float64(n)
	}
	if h.n > 0 {
		return h.sum / float64(h.n)
	}
	return 0
}
