package quartet

import (
	"fmt"
	"math"
	"sort"

	"blameit/internal/netmodel"
	"blameit/internal/trace"
)

// This file is the mergeable half of the quartet layer: the per-bucket
// partial aggregates an edge-aggregating agent fleet ships upward instead
// of raw observations, and the merged view Algorithm 1 classifies from.
//
// The design keeps every classification-relevant field byte-exact under
// any merge tree and any delivery order:
//
//   - A Partial is one agent's pre-aggregated batch for one bucket,
//     identified by (agent, epoch, seq). Its cells keep the contribution's
//     MeanRTT directly (not a sum/count pair — (m*s)/s is not bit-exact in
//     IEEE arithmetic), so a cell reconstructs its source observation
//     exactly.
//   - Aggregate.Merge is a set union of partials, deduplicated by
//     PartialID. Union is associative, commutative, and idempotent by
//     construction, and every derived view (Cells, Observations, Sketch)
//     folds the final set in canonical PartialID order — so two merge
//     trees over the same partials yield identical bytes, not merely
//     values within tolerance.
//   - Agents own disjoint contiguous slices of the prefix space, so on
//     fault-free traces every cell has a single contributor and the
//     canonical fold concatenates per-agent cell runs in prefix order —
//     exactly the order the centralized simulator emits. Colliding cells
//     (possible only with hostile or misconfigured input) combine by
//     sample-weighted mean; the supported deployments never exercise it.

// PartialID identifies one delivered partial aggregate. Epoch increments
// when an agent restarts (churn) and Seq restarts with it, so a reborn
// agent reusing sequence numbers is never deduplicated against its
// pre-restart deliveries.
type PartialID struct {
	Agent int   `json:"agent"`
	Epoch int   `json:"epoch"`
	Seq   int64 `json:"seq"`
}

// Less orders PartialIDs by (Agent, Epoch, Seq) — the canonical fold
// order of every merged view.
func (id PartialID) Less(o PartialID) bool {
	if id.Agent != o.Agent {
		return id.Agent < o.Agent
	}
	if id.Epoch != o.Epoch {
		return id.Epoch < o.Epoch
	}
	return id.Seq < o.Seq
}

// Cell is one quartet's aggregate within a bucket: the spatial key plus
// the mergeable tallies. MeanRTT is the contribution's exact mean (the
// weighted combination only triggers on colliding contributors).
type Cell struct {
	Key     Key
	Samples int
	MeanRTT float64
	Clients int
}

// Observation reconstructs the observation a cell aggregates, exactly:
// a trivial one-agent aggregation round-trips byte-identically.
func (c Cell) Observation(b netmodel.Bucket) trace.Observation {
	return trace.Observation{
		Prefix:  c.Key.Prefix,
		Cloud:   c.Key.Cloud,
		Device:  c.Key.Device,
		Bucket:  b,
		Samples: c.Samples,
		MeanRTT: c.MeanRTT,
		Clients: c.Clients,
	}
}

// combineCell merges a colliding contribution into dst by sample-weighted
// mean. Only hostile input reaches it: the supported deployments give
// every cell a single contributor (disjoint prefix ownership), and the
// centralized path's quarantine rejects duplicate keys before aggregation.
func combineCell(dst *Cell, c Cell) {
	ts := dst.Samples + c.Samples
	if ts > 0 {
		dst.MeanRTT = (dst.MeanRTT*float64(dst.Samples) + c.MeanRTT*float64(c.Samples)) / float64(ts)
	}
	dst.Samples = ts
	dst.Clients += c.Clients
}

// SketchBins is the fixed bin count of the wire latency sketch.
const SketchBins = 64

// sketchLoMS is the lower edge of bin 0; with 4 bins per octave the 64
// bins cover [0.5ms, 32s), far beyond any plausible wide-area RTT.
const sketchLoMS = 0.5

// LatencySketch is the bounded-memory latency distribution a partial
// carries: a fixed log-spaced histogram plus exact count/sum/min/max.
// Unlike the P² estimators (stats.P2Quantile), whose marker state is not
// mergeable, elementwise bin addition makes this sketch exactly mergeable
// in any order — which is why it, and not P², rides the wire. The P²
// machinery still serves the fleet: each agent keeps a
// stats.StreamingSummary over its lifetime RTT stream for diagnostics.
//
// The zero value is an empty sketch. The sketch is advisory (operator
// dashboards, impact triage); classification never reads it.
type LatencySketch struct {
	N        int64
	Sum      float64
	Min, Max float64
	Counts   [SketchBins]int64
}

// sketchBin maps an RTT to its histogram bin.
func sketchBin(ms float64) int {
	if !(ms > sketchLoMS) { // NaN and sub-floor values land in bin 0
		return 0
	}
	i := int(4 * math.Log2(ms/sketchLoMS))
	if i < 0 {
		return 0
	}
	if i >= SketchBins {
		return SketchBins - 1
	}
	return i
}

// Add records one RTT. Non-finite values are ignored — the quarantine
// rejects them downstream, and a NaN would poison Sum forever.
func (s *LatencySketch) Add(ms float64) {
	if math.IsNaN(ms) || math.IsInf(ms, 0) {
		return
	}
	if s.N == 0 || ms < s.Min {
		s.Min = ms
	}
	if s.N == 0 || ms > s.Max {
		s.Max = ms
	}
	s.N++
	s.Sum += ms
	s.Counts[sketchBin(ms)]++
}

// Merge folds another sketch in. Counts and N are exact under any merge
// order; Sum is float addition and therefore exact only when folded in a
// canonical order, which Aggregate.Sketch guarantees.
func (s *LatencySketch) Merge(o *LatencySketch) {
	if o.N == 0 {
		return
	}
	if s.N == 0 || o.Min < s.Min {
		s.Min = o.Min
	}
	if s.N == 0 || o.Max > s.Max {
		s.Max = o.Max
	}
	s.N += o.N
	s.Sum += o.Sum
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
}

// Mean returns the exact mean RTT, zero when empty.
func (s *LatencySketch) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Sum / float64(s.N)
}

// Quantile estimates the q'th quantile from the histogram: the geometric
// midpoint of the bin holding the target rank, clamped to the exact
// [Min, Max] envelope. Resolution is a quarter octave (~19%).
func (s *LatencySketch) Quantile(q float64) float64 {
	if s.N == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(s.N-1))
	var cum int64
	for i := range s.Counts {
		cum += s.Counts[i]
		if cum > rank {
			lo := sketchLoMS * math.Exp2(float64(i)/4)
			hi := sketchLoMS * math.Exp2(float64(i+1)/4)
			v := math.Sqrt(lo * hi)
			if v < s.Min {
				v = s.Min
			}
			if v > s.Max {
				v = s.Max
			}
			return v
		}
	}
	return s.Max
}

// Partial is one agent's pre-aggregated batch for one bucket: the unit of
// delivery, deduplication, and loss. Cells stay in insertion order — for
// an agent walking its prefix slice that is prefix-ascending order, which
// is what makes the canonical fold reproduce the centralized stream.
//
// A Partial handed to Aggregate.Add is owned by the aggregate from then
// on and must not be mutated.
type Partial struct {
	ID     PartialID
	Bucket netmodel.Bucket
	Cells  []Cell
	// BadCells tallies cells the edge classified bad against its local
	// targets (advisory; the analytics cluster is the classifier of
	// record and re-derives badness from MeanRTT).
	BadCells int
	Sketch   LatencySketch

	index map[Key]int
}

// NewPartial creates an empty partial for one bucket.
func NewPartial(id PartialID, b netmodel.Bucket) *Partial {
	return &Partial{ID: id, Bucket: b}
}

// Reset re-arms a partial for reuse, keeping its backing storage.
func (p *Partial) Reset(id PartialID, b netmodel.Bucket) {
	p.ID, p.Bucket = id, b
	p.Cells = p.Cells[:0]
	p.BadCells = 0
	p.Sketch = LatencySketch{}
	clear(p.index)
}

// Observe folds one observation into the partial. Observations sharing a
// key combine by weighted mean; the supported producers (the quarantined
// centralized stream, an agent's disjoint prefix slice) never collide.
func (p *Partial) Observe(o trace.Observation) {
	p.Sketch.Add(o.MeanRTT)
	k := KeyOf(o)
	if i, ok := p.index[k]; ok {
		combineCell(&p.Cells[i], Cell{Key: k, Samples: o.Samples, MeanRTT: o.MeanRTT, Clients: o.Clients})
		return
	}
	if p.index == nil {
		p.index = make(map[Key]int)
	}
	p.index[k] = len(p.Cells)
	p.Cells = append(p.Cells, Cell{Key: k, Samples: o.Samples, MeanRTT: o.MeanRTT, Clients: o.Clients})
}

// ObserveClassified is Observe plus the edge badness tally against the
// agent's local target for the quartet.
func (p *Partial) ObserveClassified(o trace.Observation, target float64) {
	if q := Classify(o, target); q.Enough && q.Bad {
		p.BadCells++
	}
	p.Observe(o)
}

// Samples returns the partial's total sample count.
func (p *Partial) Samples() int {
	n := 0
	for i := range p.Cells {
		n += p.Cells[i].Samples
	}
	return n
}

// Aggregate is the merged per-bucket view: a deduplicated set of partials
// plus the canonical fold of their cells. Merge is set union, so it is
// associative, commutative, and — via (agent, epoch, seq) dedup —
// idempotent; every derived view folds the set in PartialID order, making
// the result independent of both delivery order and merge tree shape.
type Aggregate struct {
	Bucket netmodel.Bucket
	// Deduped counts partials rejected because their ID was already
	// folded in (chaos duplication, at-least-once delivery).
	Deduped int64

	parts []*Partial
	ids   map[PartialID]struct{}

	folded  []Cell
	foldIdx map[Key]int
	clean   bool
}

// NewAggregate creates an empty aggregate for one bucket.
func NewAggregate(b netmodel.Bucket) *Aggregate {
	return &Aggregate{Bucket: b, ids: make(map[PartialID]struct{})}
}

// Reset re-arms the aggregate for a new bucket, keeping backing storage.
// The previously added partials are released, not reused.
func (a *Aggregate) Reset(b netmodel.Bucket) {
	a.Bucket = b
	a.Deduped = 0
	a.parts = a.parts[:0]
	clear(a.ids)
	a.folded = a.folded[:0]
	clear(a.foldIdx)
	a.clean = false
}

// Add folds one partial into the aggregate, reporting whether it was new.
// A partial whose ID is already present is rejected (and counted in
// Deduped) — duplicate-safe delivery is this one check. The aggregate
// takes ownership of the partial.
func (a *Aggregate) Add(p *Partial) bool {
	if p.Bucket != a.Bucket {
		panic(fmt.Sprintf("quartet: Aggregate.Add bucket %d into aggregate for bucket %d", p.Bucket, a.Bucket))
	}
	if _, dup := a.ids[p.ID]; dup {
		a.Deduped++
		return false
	}
	if a.ids == nil {
		a.ids = make(map[PartialID]struct{})
	}
	a.ids[p.ID] = struct{}{}
	a.parts = append(a.parts, p)
	a.clean = false
	return true
}

// Has reports whether a partial with the given ID has been folded in.
func (a *Aggregate) Has(id PartialID) bool {
	_, ok := a.ids[id]
	return ok
}

// Merge folds another aggregate for the same bucket in: the union of the
// two partial sets, deduplicated by ID. Since union is associative and
// commutative and every view folds the final set in canonical order,
// merge trees of any shape produce byte-identical results.
func (a *Aggregate) Merge(o *Aggregate) {
	if o == nil || o == a {
		return
	}
	if o.Bucket != a.Bucket {
		panic(fmt.Sprintf("quartet: Aggregate.Merge bucket %d into aggregate for bucket %d", o.Bucket, a.Bucket))
	}
	for _, p := range o.parts {
		a.Add(p)
	}
}

// Partials returns the number of distinct partials folded in.
func (a *Aggregate) Partials() int { return len(a.parts) }

// fold materializes the canonical cell list: partials sorted by ID, each
// partial's cells in insertion order, colliding keys combined into the
// first occurrence. The fold is cached until the partial set changes.
func (a *Aggregate) fold() {
	if a.clean {
		return
	}
	sort.SliceStable(a.parts, func(i, j int) bool { return a.parts[i].ID.Less(a.parts[j].ID) })
	a.folded = a.folded[:0]
	if len(a.parts) == 1 {
		// The trivial one-agent aggregation (the centralized path): the
		// partial's cells already are the canonical list.
		a.clean = true
		return
	}
	if a.foldIdx == nil {
		a.foldIdx = make(map[Key]int)
	} else {
		clear(a.foldIdx)
	}
	for _, p := range a.parts {
		for _, c := range p.Cells {
			if i, ok := a.foldIdx[c.Key]; ok {
				combineCell(&a.folded[i], c)
				continue
			}
			a.foldIdx[c.Key] = len(a.folded)
			a.folded = append(a.folded, c)
		}
	}
	a.clean = true
}

// Cells returns the merged cells in canonical order. The slice is owned
// by the aggregate and valid until the next mutation.
func (a *Aggregate) Cells() []Cell {
	a.fold()
	if len(a.parts) == 1 {
		return a.parts[0].Cells
	}
	return a.folded
}

// Observations reconstructs the merged observation stream in canonical
// order, appending to buf. On single-contributor cells (every supported
// deployment) the reconstruction is exact: an agent fleet over disjoint
// prefix slices reproduces the centralized stream byte-for-byte.
func (a *Aggregate) Observations(buf []trace.Observation) []trace.Observation {
	for _, c := range a.Cells() {
		buf = append(buf, c.Observation(a.Bucket))
	}
	return buf
}

// Samples returns the total sample count across merged cells.
func (a *Aggregate) Samples() int {
	n := 0
	for _, c := range a.Cells() {
		n += c.Samples
	}
	return n
}

// BadCells returns the summed edge badness tallies of the merged
// partials (advisory; see Partial.BadCells).
func (a *Aggregate) BadCells() int {
	a.fold()
	n := 0
	for _, p := range a.parts {
		n += p.BadCells
	}
	return n
}

// Sketch returns the merged latency sketch, folded in canonical partial
// order so even its float Sum is identical across merge trees.
func (a *Aggregate) Sketch() LatencySketch {
	a.fold()
	var s LatencySketch
	for _, p := range a.parts {
		s.Merge(&p.Sketch)
	}
	return s
}
