package quartet

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"blameit/internal/netmodel"
	"blameit/internal/trace"
)

// mkObs fabricates a deterministic observation for (prefix, cloud).
func mkObs(p, c, b int, r *rand.Rand) trace.Observation {
	return trace.Observation{
		Prefix:  netmodel.PrefixID(p),
		Cloud:   netmodel.CloudID(c),
		Device:  netmodel.DeviceClass(p % 3),
		Bucket:  netmodel.Bucket(b),
		Samples: 5 + r.Intn(60),
		MeanRTT: 20 + 200*r.Float64(),
		Clients: 1 + r.Intn(20),
	}
}

// mkPartials builds n partials over disjoint contiguous prefix slices —
// the supported fleet deployment — for one bucket.
func mkPartials(t *testing.T, n, prefixes, bucket int, seed int64) []*Partial {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	out := make([]*Partial, n)
	per := (prefixes + n - 1) / n
	for i := range out {
		out[i] = NewPartial(PartialID{Agent: i, Epoch: 0, Seq: int64(bucket)}, netmodel.Bucket(bucket))
		lo, hi := i*per, (i+1)*per
		if hi > prefixes {
			hi = prefixes
		}
		for p := lo; p < hi; p++ {
			for c := 0; c < 2; c++ {
				out[i].ObserveClassified(mkObs(p, c, bucket, r), 80)
			}
		}
	}
	return out
}

// snapshot captures every externally visible view of an aggregate.
type aggSnapshot struct {
	cells   []Cell
	obs     []trace.Observation
	samples int
	bad     int
	sketch  LatencySketch
	parts   int
	deduped int64
}

func snap(a *Aggregate) aggSnapshot {
	return aggSnapshot{
		cells:   append([]Cell(nil), a.Cells()...),
		obs:     a.Observations(nil),
		samples: a.Samples(),
		bad:     a.BadCells(),
		sketch:  a.Sketch(),
		parts:   a.Partials(),
		deduped: a.Deduped,
	}
}

// TestMergeCommutativeAnyDeliveryOrder adds the same partial set in many
// shuffled orders and demands byte-identical views every time.
func TestMergeCommutativeAnyDeliveryOrder(t *testing.T) {
	parts := mkPartials(t, 7, 100, 42, 1)
	base := NewAggregate(42)
	for _, p := range parts {
		base.Add(p)
	}
	want := snap(base)
	if want.parts != 7 || len(want.cells) == 0 {
		t.Fatalf("base aggregate parts=%d cells=%d", want.parts, len(want.cells))
	}
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]*Partial(nil), parts...)
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		a := NewAggregate(42)
		for _, p := range shuffled {
			a.Add(p)
		}
		if got := snap(a); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: shuffled delivery changed the merged view", trial)
		}
	}
}

// TestMergeAssociativeAnyTree merges the partial set under different
// grouping trees — left fold, right fold, balanced, and random
// two-aggregate unions — and demands byte-identical views.
func TestMergeAssociativeAnyTree(t *testing.T) {
	parts := mkPartials(t, 8, 64, 10, 3)
	single := func(ps []*Partial) *Aggregate {
		a := NewAggregate(10)
		for _, p := range ps {
			a.Add(p)
		}
		return a
	}
	want := snap(single(parts))

	// Balanced tree of pairwise merges.
	var level []*Aggregate
	for _, p := range parts {
		level = append(level, single([]*Partial{p}))
	}
	for len(level) > 1 {
		var next []*Aggregate
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				level[i].Merge(level[i+1])
			}
			next = append(next, level[i])
		}
		level = next
	}
	if got := snap(level[0]); !reflect.DeepEqual(got, want) {
		t.Fatal("balanced merge tree changed the merged view")
	}

	// Random split points: (A..k) merged into (k..Z) and vice versa.
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		k := 1 + r.Intn(len(parts)-1)
		left, right := single(parts[:k]), single(parts[k:])
		if trial%2 == 0 {
			left.Merge(right)
			if got := snap(left); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: left.Merge(right) diverged", trial)
			}
		} else {
			right.Merge(left)
			if got := snap(right); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: right.Merge(left) diverged", trial)
			}
		}
	}
}

// TestMergeIdempotentUnderDedup redelivers partials (and whole
// aggregates) and demands the merged view is unchanged with every extra
// copy counted.
func TestMergeIdempotentUnderDedup(t *testing.T) {
	parts := mkPartials(t, 4, 40, 7, 5)
	a := NewAggregate(7)
	for _, p := range parts {
		if !a.Add(p) {
			t.Fatal("first delivery rejected")
		}
	}
	want := snap(a)
	for i, p := range parts {
		if a.Add(p) {
			t.Fatalf("duplicate partial %d accepted", i)
		}
	}
	b := NewAggregate(7)
	for _, p := range parts {
		b.Add(p)
	}
	a.Merge(b) // every partial already present
	a.Merge(a) // self-merge is a no-op
	got := snap(a)
	if got.deduped != int64(len(parts))*2 {
		t.Fatalf("Deduped = %d, want %d", got.deduped, len(parts)*2)
	}
	want.deduped = got.deduped
	if !reflect.DeepEqual(got, want) {
		t.Fatal("redelivery changed the merged view")
	}
	// A restarted agent's partial (same agent+seq, bumped epoch) is NOT a
	// duplicate: epoch scopes the dedup.
	reborn := NewPartial(PartialID{Agent: 0, Epoch: 1, Seq: parts[0].ID.Seq}, 7)
	if !a.Add(reborn) {
		t.Fatal("post-churn partial wrongly deduplicated")
	}
}

// TestTrivialAggregationRoundTrips checks the centralized path's
// contract: one partial built from a stream reconstructs it exactly.
func TestTrivialAggregationRoundTrips(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	var obs []trace.Observation
	for p := 0; p < 50; p++ {
		obs = append(obs, mkObs(p, p%3, 12, r))
	}
	part := NewPartial(PartialID{}, 12)
	for _, o := range obs {
		part.Observe(o)
	}
	a := NewAggregate(12)
	a.Add(part)
	got := a.Observations(nil)
	if !reflect.DeepEqual(got, obs) {
		t.Fatal("one-agent aggregation did not reconstruct the stream byte-identically")
	}
	if a.Samples() != part.Samples() {
		t.Fatalf("Samples %d != %d", a.Samples(), part.Samples())
	}
}

// TestDisjointFleetMatchesCentralized checks the fleet contract at the
// aggregate level: disjoint agents' partials folded in any order
// reconstruct the same stream a single central partial holds.
func TestDisjointFleetMatchesCentralized(t *testing.T) {
	const prefixes = 96
	for _, agents := range []int{1, 4, 16} {
		r := rand.New(rand.NewSource(9))
		var stream []trace.Observation
		for p := 0; p < prefixes; p++ {
			for c := 0; c < 2; c++ {
				stream = append(stream, mkObs(p, c, 33, r))
			}
		}
		central := NewPartial(PartialID{}, 33)
		for _, o := range stream {
			central.Observe(o)
		}
		ca := NewAggregate(33)
		ca.Add(central)

		per := (prefixes + agents - 1) / agents
		fa := NewAggregate(33)
		order := rand.New(rand.NewSource(int64(agents))).Perm(agents)
		partsByAgent := make([]*Partial, agents)
		for i := 0; i < agents; i++ {
			partsByAgent[i] = NewPartial(PartialID{Agent: i, Seq: 33}, 33)
			lo, hi := i*per, (i+1)*per
			if hi > prefixes {
				hi = prefixes
			}
			for _, o := range stream {
				if int(o.Prefix) >= lo && int(o.Prefix) < hi {
					partsByAgent[i].Observe(o)
				}
			}
		}
		for _, i := range order {
			fa.Add(partsByAgent[i])
		}
		if !reflect.DeepEqual(fa.Observations(nil), ca.Observations(nil)) {
			t.Fatalf("%d agents: fleet fold != centralized stream", agents)
		}
	}
}

// TestCollidingCellsCombineWeighted exercises the hostile-input path:
// two partials contributing the same key combine by sample-weighted mean.
func TestCollidingCellsCombineWeighted(t *testing.T) {
	o1 := trace.Observation{Prefix: 1, Cloud: 0, Device: 1, Bucket: 5, Samples: 10, MeanRTT: 100, Clients: 3}
	o2 := o1
	o2.Samples, o2.MeanRTT, o2.Clients = 30, 60, 5
	p1 := NewPartial(PartialID{Agent: 0, Seq: 5}, 5)
	p1.Observe(o1)
	p2 := NewPartial(PartialID{Agent: 1, Seq: 5}, 5)
	p2.Observe(o2)
	a := NewAggregate(5)
	a.Add(p1)
	a.Add(p2)
	cells := a.Cells()
	if len(cells) != 1 {
		t.Fatalf("cells = %d, want 1 combined", len(cells))
	}
	c := cells[0]
	if c.Samples != 40 || c.Clients != 8 {
		t.Fatalf("combined counts = %+v", c)
	}
	want := (100.0*10 + 60.0*30) / 40
	if math.Abs(c.MeanRTT-want) > 1e-12 {
		t.Fatalf("combined mean = %v, want %v", c.MeanRTT, want)
	}
}

// TestLatencySketch checks the wire sketch's exact tallies and its
// quantile envelope.
func TestLatencySketch(t *testing.T) {
	var s LatencySketch
	s.Add(math.NaN())
	s.Add(math.Inf(1))
	vals := []float64{12, 30, 55, 80, 120, 300, 45, 60}
	for _, v := range vals {
		s.Add(v)
	}
	if s.N != int64(len(vals)) {
		t.Fatalf("N = %d, want %d (non-finite must be ignored)", s.N, len(vals))
	}
	if s.Min != 12 || s.Max != 300 {
		t.Fatalf("envelope = [%v, %v]", s.Min, s.Max)
	}
	for _, q := range []float64{0, 0.5, 0.9, 1} {
		v := s.Quantile(q)
		if v < s.Min || v > s.Max {
			t.Fatalf("Quantile(%v) = %v outside [%v, %v]", q, v, s.Min, s.Max)
		}
	}
	if s.Quantile(0.5) > s.Quantile(0.99)+1e-9 {
		t.Fatal("quantiles not monotone")
	}
	// Merge order cannot change the histogram, and the canonical-order sum
	// is exact.
	var a, b LatencySketch
	for i, v := range vals {
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	var m1, m2 LatencySketch
	m1.Merge(&a)
	m1.Merge(&b)
	m2.Merge(&b)
	m2.Merge(&a)
	if m1.Counts != m2.Counts || m1.N != m2.N || m1.Min != m2.Min || m1.Max != m2.Max {
		t.Fatal("sketch merge not order-independent on exact fields")
	}
}

// TestAggregateReset checks the reuse path keeps no stale state.
func TestAggregateReset(t *testing.T) {
	parts := mkPartials(t, 3, 30, 2, 8)
	a := NewAggregate(2)
	for _, p := range parts {
		a.Add(p)
	}
	a.Cells() // force a fold
	a.Reset(3)
	if a.Partials() != 0 || len(a.Cells()) != 0 || a.Samples() != 0 || a.Deduped != 0 {
		t.Fatal("Reset left stale state")
	}
	p := NewPartial(PartialID{Agent: 9, Seq: 3}, 3)
	p.Observe(mkObs(1, 0, 3, rand.New(rand.NewSource(1))))
	if !a.Add(p) {
		t.Fatal("post-Reset Add rejected")
	}
	if len(a.Cells()) != 1 {
		t.Fatalf("cells after reset = %d", len(a.Cells()))
	}
}

// TestPartialReset checks partial reuse (the pipeline's per-bucket
// trivial aggregation recycles one Partial).
func TestPartialReset(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	p := NewPartial(PartialID{}, 1)
	p.ObserveClassified(mkObs(1, 0, 1, r), 0) // target 0 => bad when enough
	p.Reset(PartialID{Seq: 2}, 2)
	if len(p.Cells) != 0 || p.BadCells != 0 || p.Sketch.N != 0 {
		t.Fatal("Reset left stale state")
	}
	o := mkObs(2, 1, 2, r)
	p.Observe(o)
	p.Observe(o) // same key combines, never duplicates
	if len(p.Cells) != 1 || p.Cells[0].Samples != 2*o.Samples {
		t.Fatalf("combine after reset: %+v", p.Cells)
	}
}
