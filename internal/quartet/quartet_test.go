package quartet

import (
	"testing"
	"testing/quick"

	"blameit/internal/netmodel"
	"blameit/internal/trace"
)

func obs(p int, samples int, rtt float64) trace.Observation {
	return trace.Observation{Prefix: netmodel.PrefixID(p), Cloud: 1, Device: netmodel.NonMobile, Bucket: 5, Samples: samples, MeanRTT: rtt}
}

func TestClassify(t *testing.T) {
	q := Classify(obs(1, 20, 80), 50)
	if !q.Enough || !q.Bad {
		t.Errorf("bad quartet misclassified: %+v", q)
	}
	q = Classify(obs(1, 20, 30), 50)
	if !q.Enough || q.Bad {
		t.Errorf("good quartet misclassified: %+v", q)
	}
	q = Classify(obs(1, 5, 500), 50)
	if q.Enough || q.Bad {
		t.Errorf("insufficient quartet misclassified: %+v", q)
	}
	// Boundary: exactly at target is bad; exactly MinSamples is enough.
	q = Classify(obs(1, MinSamples, 50), 50)
	if !q.Enough || !q.Bad {
		t.Errorf("boundary quartet misclassified: %+v", q)
	}
}

func TestClassifyAllAndBadFraction(t *testing.T) {
	in := []trace.Observation{
		obs(1, 20, 80), obs(2, 20, 30), obs(3, 20, 90), obs(4, 3, 200),
	}
	qs := ClassifyAll(in, func(netmodel.PrefixID) float64 { return 50 })
	frac, n := BadFraction(qs)
	if n != 3 {
		t.Errorf("enough count = %d", n)
	}
	if frac < 0.66 || frac > 0.67 {
		t.Errorf("bad fraction = %v", frac)
	}
	// Per-prefix targets must be honoured.
	qs = ClassifyAll(in, func(p netmodel.PrefixID) float64 {
		if p == 2 {
			return 10
		}
		return 50
	})
	if !qs[1].Bad {
		t.Error("per-prefix target not applied")
	}
}

func TestBadFractionEmpty(t *testing.T) {
	frac, n := BadFraction(nil)
	if frac != 0 || n != 0 {
		t.Error("empty BadFraction must be 0,0")
	}
	frac, n = BadFraction([]Quartet{{Enough: false}})
	if frac != 0 || n != 0 {
		t.Error("all-insufficient BadFraction must be 0,0")
	}
}

func TestTrackerSingleRun(t *testing.T) {
	tr := NewTracker()
	k := Key{Prefix: 1, Cloud: 2, Device: netmodel.NonMobile}
	tr.Advance(10, []Key{k})
	tr.Advance(11, []Key{k})
	tr.Advance(12, []Key{k})
	tr.Advance(13, nil)
	incs := tr.Flush()
	if len(incs) != 1 {
		t.Fatalf("incidents = %d", len(incs))
	}
	if incs[0].Start != 10 || incs[0].Buckets != 3 || incs[0].End() != 13 {
		t.Errorf("incident = %+v", incs[0])
	}
}

func TestTrackerInterleavedKeys(t *testing.T) {
	tr := NewTracker()
	a := Key{Prefix: 1}
	b := Key{Prefix: 2}
	tr.Advance(0, []Key{a, b})
	tr.Advance(1, []Key{a})
	tr.Advance(2, []Key{a, b})
	incs := tr.Flush()
	if len(incs) != 3 {
		t.Fatalf("incidents = %d: %+v", len(incs), incs)
	}
	var aRun, bRuns int
	for _, inc := range incs {
		if inc.Key == a {
			aRun = inc.Buckets
		} else {
			bRuns++
		}
	}
	if aRun != 3 {
		t.Errorf("key a run = %d, want 3", aRun)
	}
	if bRuns != 2 {
		t.Errorf("key b runs = %d, want 2", bRuns)
	}
}

func TestTrackerGapClosesRuns(t *testing.T) {
	tr := NewTracker()
	k := Key{Prefix: 1}
	tr.Advance(0, []Key{k})
	tr.Advance(5, []Key{k}) // gap: buckets 1-4 missing
	incs := tr.Flush()
	if len(incs) != 2 {
		t.Fatalf("gap should split runs, got %+v", incs)
	}
}

func TestTrackerOpenRun(t *testing.T) {
	tr := NewTracker()
	k := Key{Prefix: 1}
	if tr.OpenRun(k) != 0 {
		t.Error("open run before any badness")
	}
	tr.Advance(0, []Key{k})
	tr.Advance(1, []Key{k})
	if tr.OpenRun(k) != 2 {
		t.Errorf("open run = %d, want 2", tr.OpenRun(k))
	}
	tr.Advance(2, nil)
	if tr.OpenRun(k) != 0 {
		t.Error("open run after recovery")
	}
}

func TestTrackerPanicsOnRewind(t *testing.T) {
	tr := NewTracker()
	tr.Advance(5, nil)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on non-increasing bucket")
		}
	}()
	tr.Advance(5, nil)
}

func TestDurations(t *testing.T) {
	ds := Durations([]Incident{{Buckets: 1}, {Buckets: 24}})
	if len(ds) != 2 || ds[0] != 1 || ds[1] != 24 {
		t.Errorf("durations = %v", ds)
	}
}

func TestKeyOf(t *testing.T) {
	o := obs(9, 20, 30)
	k := KeyOf(o)
	if k.Prefix != 9 || k.Cloud != 1 || k.Device != netmodel.NonMobile {
		t.Errorf("KeyOf = %+v", k)
	}
}

func TestTrackerConservationProperty(t *testing.T) {
	// Property: the sum of closed-run lengths equals the total number of
	// (bucket, key) bad marks fed to the tracker.
	f := func(pattern []uint8) bool {
		tr := NewTracker()
		total := 0
		for i, m := range pattern {
			var bad []Key
			// Up to three keys, active when their bit is set.
			for k := 0; k < 3; k++ {
				if m&(1<<k) != 0 {
					bad = append(bad, Key{Prefix: netmodel.PrefixID(k)})
					total++
				}
			}
			tr.Advance(netmodel.Bucket(i), bad)
		}
		sum := 0
		for _, inc := range tr.Flush() {
			sum += inc.Buckets
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTrackerRunsAreMaximalProperty(t *testing.T) {
	// Property: no two closed runs of the same key are adjacent.
	f := func(pattern []bool) bool {
		tr := NewTracker()
		k := Key{Prefix: 1}
		for i, bad := range pattern {
			var keys []Key
			if bad {
				keys = []Key{k}
			}
			tr.Advance(netmodel.Bucket(i), keys)
		}
		incs := tr.Flush()
		for i := 0; i < len(incs); i++ {
			for j := 0; j < len(incs); j++ {
				if i != j && incs[i].End() == incs[j].Start {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
