// Package quartet implements the paper's unit of passive analysis: the
// "quartet" ⟨client /24, cloud location, device class, 5-minute bucket⟩
// (§2.1). It classifies quartets as good or bad against region-specific
// RTT targets, enforces the minimum-sample gate, and tracks the
// persistence of badness across consecutive buckets (§2.3).
package quartet

import (
	"blameit/internal/netmodel"
	"blameit/internal/trace"
)

// MinSamples is the minimum RTT sample count the paper requires before a
// quartet's average is trusted.
const MinSamples = 10

// Key identifies the spatial part of a quartet: the tuple whose badness is
// tracked across time buckets.
type Key struct {
	Prefix netmodel.PrefixID
	Cloud  netmodel.CloudID
	Device netmodel.DeviceClass
}

// KeyOf extracts the tracking key of an observation.
func KeyOf(o trace.Observation) Key {
	return Key{Prefix: o.Prefix, Cloud: o.Cloud, Device: o.Device}
}

// Quartet is a classified observation.
type Quartet struct {
	Obs trace.Observation
	// Target is the badness threshold that applied (region- and
	// device-specific).
	Target float64
	// Enough reports whether the quartet met the MinSamples gate.
	Enough bool
	// Bad reports whether the average RTT breached the target (only
	// meaningful when Enough).
	Bad bool
}

// TargetFunc supplies the badness threshold for a prefix (the world's
// region/device targets in production use).
type TargetFunc func(p netmodel.PrefixID) float64

// Classify applies the badness test to one observation. A mean RTT exactly
// at the target counts as bad — the >= convention every threshold
// comparison in the system follows (core.Localize applies the same
// operator to its aggregate-vs-expected-RTT tests).
func Classify(o trace.Observation, target float64) Quartet {
	q := Quartet{Obs: o, Target: target}
	q.Enough = o.Samples >= MinSamples
	if q.Enough {
		q.Bad = o.MeanRTT >= target
	}
	return q
}

// ClassifyAll classifies a batch of observations.
func ClassifyAll(obs []trace.Observation, target TargetFunc) []Quartet {
	out := make([]Quartet, len(obs))
	for i, o := range obs {
		out[i] = Classify(o, target(o.Prefix))
	}
	return out
}

// BadFraction returns the fraction of sufficiently-sampled quartets that
// are bad, and the number of quartets that passed the sample gate.
func BadFraction(qs []Quartet) (float64, int) {
	var bad, enough int
	for _, q := range qs {
		if !q.Enough {
			continue
		}
		enough++
		if q.Bad {
			bad++
		}
	}
	if enough == 0 {
		return 0, 0
	}
	return float64(bad) / float64(enough), enough
}

// Incident is a maximal run of consecutive bad buckets for one key.
type Incident struct {
	Key   Key
	Start netmodel.Bucket
	// Buckets is the run length in 5-minute buckets.
	Buckets int
}

// End returns the first bucket after the incident.
func (i Incident) End() netmodel.Bucket { return i.Start + netmodel.Bucket(i.Buckets) }

// Tracker measures badness persistence: how many consecutive 5-minute
// buckets each ⟨prefix, cloud, device⟩ tuple stays bad (§2.3). Feed it one
// bucket at a time via Advance.
type Tracker struct {
	open   map[Key]Incident
	closed []Incident
	last   netmodel.Bucket
	primed bool
}

// NewTracker creates an empty persistence tracker.
func NewTracker() *Tracker {
	return &Tracker{open: make(map[Key]Incident)}
}

// Advance records the set of bad keys of bucket b. Buckets must be fed in
// strictly increasing order; skipped buckets terminate all open runs.
func (t *Tracker) Advance(b netmodel.Bucket, bad []Key) {
	if t.primed && b <= t.last {
		panic("quartet: Tracker.Advance called with non-increasing bucket")
	}
	gap := t.primed && b != t.last+1
	badSet := make(map[Key]bool, len(bad))
	for _, k := range bad {
		badSet[k] = true
	}
	// Close runs that did not continue.
	for k, inc := range t.open {
		if gap || !badSet[k] {
			t.closed = append(t.closed, inc)
			delete(t.open, k)
		}
	}
	// Extend or open runs.
	for _, k := range bad {
		if inc, ok := t.open[k]; ok {
			inc.Buckets++
			t.open[k] = inc
		} else {
			t.open[k] = Incident{Key: k, Start: b, Buckets: 1}
		}
	}
	t.last = b
	t.primed = true
}

// Flush closes all open runs (end of simulation) and returns every closed
// incident.
func (t *Tracker) Flush() []Incident {
	for k, inc := range t.open {
		t.closed = append(t.closed, inc)
		delete(t.open, k)
	}
	return t.closed
}

// Closed returns incidents that have already terminated.
func (t *Tracker) Closed() []Incident { return t.closed }

// OpenRun returns the length (in buckets) of the key's current bad run,
// zero if the key is currently good. This feeds the duration predictor's
// "has lasted t so far" input.
func (t *Tracker) OpenRun(k Key) int {
	return t.open[k].Buckets
}

// Durations extracts the run lengths of a set of incidents, in buckets.
func Durations(incs []Incident) []float64 {
	out := make([]float64, len(incs))
	for i, inc := range incs {
		out[i] = float64(inc.Buckets)
	}
	return out
}
