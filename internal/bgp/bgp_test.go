package bgp

import (
	"testing"

	"blameit/internal/netmodel"
	"blameit/internal/topology"
)

func testWorld() *topology.World { return topology.Generate(topology.SmallScale(), 42) }

func TestTableDeterministic(t *testing.T) {
	w := testWorld()
	horizon := netmodel.Bucket(2 * netmodel.BucketsPerDay)
	t1 := NewTable(w, DefaultChurnConfig(), horizon, 9)
	t2 := NewTable(w, DefaultChurnConfig(), horizon, 9)
	if t1.TotalEvents() != t2.TotalEvents() {
		t.Fatal("same seed produced different event counts")
	}
	for b := netmodel.Bucket(0); b < horizon; b += 37 {
		for _, c := range w.Clouds {
			for _, bp := range w.BGPPrefixes {
				if !t1.PathAt(c.ID, bp.ID, b).Equal(t2.PathAt(c.ID, bp.ID, b)) {
					t.Fatal("same seed produced different paths")
				}
			}
		}
	}
}

func TestPathAtStartMatchesInitial(t *testing.T) {
	w := testWorld()
	tbl := NewTable(w, DefaultChurnConfig(), netmodel.BucketsPerDay, 3)
	for _, c := range w.Clouds {
		for _, bp := range w.BGPPrefixes {
			// The first event for an entry happens strictly after bucket 0
			// only if churn fired; at bucket 0 the initial route must hold
			// unless a churn event landed exactly at 0.
			got := tbl.PathAt(c.ID, bp.ID, 0)
			evs := tbl.Events(0, 1)
			landedAtZero := false
			for _, e := range evs {
				if e.Cloud == c.ID && e.BGPPrefix == bp.ID {
					landedAtZero = true
				}
			}
			if !landedAtZero && !got.Equal(w.InitialPath(c.ID, bp.ID)) {
				t.Fatal("path at bucket 0 differs from initial route")
			}
		}
	}
}

func TestChurnRateMatchesPaper(t *testing.T) {
	// Roughly one-third of entries should churn per day; equivalently
	// nearly two-thirds see no churn in an entire day (§5.4).
	w := topology.Generate(topology.SmallScale(), 5)
	tbl := NewTable(w, DefaultChurnConfig(), 3*netmodel.BucketsPerDay, 11)
	total := tbl.NumEntries()
	for day := 0; day < 3; day++ {
		churned := tbl.EntriesChurnedOnDay(day)
		frac := float64(churned) / float64(total)
		if frac < 0.15 || frac > 0.50 {
			t.Errorf("day %d churned fraction %.2f outside [0.15, 0.50]", day, frac)
		}
	}
}

func TestNoChurnConfig(t *testing.T) {
	w := testWorld()
	tbl := NewTable(w, ChurnConfig{}, 2*netmodel.BucketsPerDay, 1)
	if tbl.TotalEvents() != 0 {
		t.Fatalf("zero churn config produced %d events", tbl.TotalEvents())
	}
	for _, c := range w.Clouds {
		for _, bp := range w.BGPPrefixes {
			for _, b := range []netmodel.Bucket{0, 100, 2*netmodel.BucketsPerDay - 1} {
				if !tbl.PathAt(c.ID, bp.ID, b).Equal(w.InitialPath(c.ID, bp.ID)) {
					t.Fatal("path changed without churn")
				}
			}
		}
	}
}

func TestPathChangesAfterEvent(t *testing.T) {
	w := testWorld()
	tbl := NewTable(w, DefaultChurnConfig(), 2*netmodel.BucketsPerDay, 17)
	evs := tbl.Events(0, tbl.Horizon())
	if len(evs) == 0 {
		t.Skip("no churn events with this seed")
	}
	for _, e := range evs[:min(len(evs), 50)] {
		got := tbl.PathAt(e.Cloud, e.BGPPrefix, e.Bucket)
		if !got.Equal(e.NewPath) {
			t.Fatalf("path at event bucket %d is %v, event says %v", e.Bucket, got, e.NewPath)
		}
	}
}

func TestEventsWindowing(t *testing.T) {
	w := testWorld()
	tbl := NewTable(w, DefaultChurnConfig(), 2*netmodel.BucketsPerDay, 23)
	all := tbl.Events(0, tbl.Horizon())
	mid := tbl.Horizon() / 2
	first := tbl.Events(0, mid)
	second := tbl.Events(mid, tbl.Horizon())
	if len(first)+len(second) != len(all) {
		t.Fatalf("window split lost events: %d + %d != %d", len(first), len(second), len(all))
	}
	for _, e := range first {
		if e.Bucket >= mid {
			t.Fatal("event outside window")
		}
	}
	// Events must be sorted by bucket.
	for i := 1; i < len(all); i++ {
		if all[i].Bucket < all[i-1].Bucket {
			t.Fatal("events not sorted")
		}
	}
}

func TestListenerPollIncremental(t *testing.T) {
	w := testWorld()
	tbl := NewTable(w, DefaultChurnConfig(), 2*netmodel.BucketsPerDay, 29)
	l := NewListener(tbl)
	var polled []Event
	step := netmodel.Bucket(13)
	for b := step; b <= tbl.Horizon(); b += step {
		polled = append(polled, l.Poll(b)...)
	}
	polled = append(polled, l.Poll(tbl.Horizon())...)
	all := tbl.Events(0, tbl.Horizon())
	if len(polled) != len(all) {
		t.Fatalf("listener returned %d events, table has %d", len(polled), len(all))
	}
	// Re-polling returns nothing new.
	if extra := l.Poll(tbl.Horizon()); len(extra) != 0 {
		t.Fatalf("re-poll returned %d events", len(extra))
	}
}

func TestWithdrawEventsPresent(t *testing.T) {
	w := topology.Generate(topology.SmallScale(), 5)
	tbl := NewTable(w, DefaultChurnConfig(), 5*netmodel.BucketsPerDay, 31)
	var announces, withdraws int
	for _, e := range tbl.Events(0, tbl.Horizon()) {
		switch e.Kind {
		case Announce:
			announces++
		case Withdraw:
			withdraws++
		}
	}
	if announces == 0 || withdraws == 0 {
		t.Errorf("want both kinds of events, got %d announces, %d withdraws", announces, withdraws)
	}
	if withdraws > announces {
		t.Error("withdrawals should be the minority of events")
	}
}

func TestPathAtForPrefix(t *testing.T) {
	w := testWorld()
	tbl := NewTable(w, ChurnConfig{}, netmodel.BucketsPerDay, 1)
	p := w.Prefixes[3]
	got := tbl.PathAtForPrefix(w.Clouds[0].ID, p.ID, 0)
	want := w.InitialPath(w.Clouds[0].ID, p.BGPPrefix)
	if !got.Equal(want) {
		t.Fatal("PathAtForPrefix did not resolve through the BGP prefix")
	}
}

func TestEventKindString(t *testing.T) {
	if Announce.String() != "announce" || Withdraw.String() != "withdraw" || EventKind(9).String() != "unknown" {
		t.Error("EventKind names wrong")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestPathAtMatchesEventLogProperty(t *testing.T) {
	// Property: for any bucket, PathAt equals the NewPath of the entry's
	// most recent event at or before that bucket (or the initial route when
	// no event precedes it).
	w := topology.Generate(topology.SmallScale(), 5)
	horizon := netmodel.Bucket(3 * netmodel.BucketsPerDay)
	tbl := NewTable(w, DefaultChurnConfig(), horizon, 11)
	evs := tbl.Events(0, horizon)
	for _, probe := range []netmodel.Bucket{0, 100, 500, horizon - 1} {
		for _, c := range w.Clouds[:3] {
			for _, bp := range w.BGPPrefixes[:40] {
				want := w.InitialPath(c.ID, bp.ID)
				for _, e := range evs {
					if e.Cloud == c.ID && e.BGPPrefix == bp.ID && e.Bucket <= probe {
						want = e.NewPath
					}
				}
				if got := tbl.PathAt(c.ID, bp.ID, probe); !got.Equal(want) {
					t.Fatalf("PathAt(%d,%d,%d) = %v, event log says %v", c.ID, bp.ID, probe, got, want)
				}
			}
		}
	}
}

func TestEventNewPathsAreKnownAlternates(t *testing.T) {
	w := topology.Generate(topology.SmallScale(), 5)
	tbl := NewTable(w, DefaultChurnConfig(), 2*netmodel.BucketsPerDay, 13)
	for _, e := range tbl.Events(0, tbl.Horizon()) {
		valid := e.NewPath.Equal(w.InitialPath(e.Cloud, e.BGPPrefix))
		for _, alt := range w.AltPaths(e.Cloud, e.BGPPrefix) {
			if e.NewPath.Equal(alt) {
				valid = true
			}
		}
		if !valid {
			t.Fatalf("event switched to a route that is neither primary nor alternate: %v", e.NewPath)
		}
	}
}
