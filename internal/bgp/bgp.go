// Package bgp provides the BGP substrate of the reproduction: a routing
// table holding the AS-level path from every cloud location to every BGP
// prefix over simulated time, a deterministic route-churn process, and a
// listener that surfaces path-change and withdrawal events the way the
// paper's IBGP-connected BGP listener does (§5.4).
//
// The churn process is rate-matched to the paper's observation that nearly
// two-thirds of the BGP paths at the border routers see no churn in an
// entire day.
package bgp

import (
	"math/rand"
	"sort"

	"blameit/internal/netmodel"
	"blameit/internal/topology"
)

// EventKind distinguishes the two route events the listener reports.
type EventKind int

const (
	// Announce is a path change: the entry now routes via NewPath.
	Announce EventKind = iota
	// Withdraw is a route withdrawal; traffic falls back to NewPath.
	Withdraw
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case Announce:
		return "announce"
	case Withdraw:
		return "withdraw"
	default:
		return "unknown"
	}
}

// Event is one BGP routing event observed at a border router.
type Event struct {
	Bucket    netmodel.Bucket
	Cloud     netmodel.CloudID
	BGPPrefix netmodel.BGPPrefixID
	Kind      EventKind
	NewPath   netmodel.Path
}

// ChurnConfig parameterizes the synthetic churn process.
type ChurnConfig struct {
	// DailyChurnFraction is the probability that a given (cloud, BGP
	// prefix) entry sees at least one route change on a given day. The
	// paper reports ~1/3 of paths churn per day.
	DailyChurnFraction float64
	// WithdrawShare is the fraction of churn events that are withdrawals
	// rather than path changes.
	WithdrawShare float64
	// RevertProb is the probability a churned entry reverts to its previous
	// path later the same day.
	RevertProb float64
}

// DefaultChurnConfig matches the paper's reported churn rate.
func DefaultChurnConfig() ChurnConfig {
	return ChurnConfig{DailyChurnFraction: 1.0 / 3.0, WithdrawShare: 0.15, RevertProb: 0.5}
}

// timedPath records that a routing entry uses Path from bucket From onward.
type timedPath struct {
	From netmodel.Bucket
	Path netmodel.Path
}

// Table is the simulated routing state over a fixed horizon of buckets.
type Table struct {
	world   *topology.World
	horizon netmodel.Bucket
	nBGP    int
	entries [][]timedPath // indexed cloud*nBGP + bgpPrefix, sorted by From
	events  []Event       // all events sorted by bucket
}

// NewTable builds the routing table for [0, horizon) buckets, generating a
// deterministic churn schedule from the seed.
func NewTable(w *topology.World, cfg ChurnConfig, horizon netmodel.Bucket, seed int64) *Table {
	r := rand.New(rand.NewSource(seed))
	t := &Table{
		world:   w,
		horizon: horizon,
		nBGP:    len(w.BGPPrefixes),
		entries: make([][]timedPath, len(w.Clouds)*len(w.BGPPrefixes)),
	}
	days := (int(horizon) + netmodel.BucketsPerDay - 1) / netmodel.BucketsPerDay
	for _, c := range w.Clouds {
		for _, bp := range w.BGPPrefixes {
			idx := int(c.ID)*t.nBGP + int(bp.ID)
			primary := w.InitialPath(c.ID, bp.ID)
			entry := []timedPath{{From: 0, Path: primary}}
			alts := w.AltPaths(c.ID, bp.ID)
			if len(alts) > 0 {
				for day := 0; day < days; day++ {
					if r.Float64() >= cfg.DailyChurnFraction {
						continue
					}
					at := netmodel.Bucket(day*netmodel.BucketsPerDay + r.Intn(netmodel.BucketsPerDay))
					if at >= horizon {
						continue
					}
					prev := entry[len(entry)-1].Path
					next := alts[r.Intn(len(alts))]
					if next.Equal(prev) {
						continue
					}
					kind := Announce
					if r.Float64() < cfg.WithdrawShare {
						kind = Withdraw
					}
					entry = append(entry, timedPath{From: at, Path: next})
					t.events = append(t.events, Event{Bucket: at, Cloud: c.ID, BGPPrefix: bp.ID, Kind: kind, NewPath: next})
					if r.Float64() < cfg.RevertProb {
						back := at + netmodel.Bucket(1+r.Intn(netmodel.BucketsPerDay/2))
						if back < horizon && back > at {
							entry = append(entry, timedPath{From: back, Path: prev})
							t.events = append(t.events, Event{Bucket: back, Cloud: c.ID, BGPPrefix: bp.ID, Kind: Announce, NewPath: prev})
						}
					}
				}
			}
			sort.Slice(entry, func(i, j int) bool { return entry[i].From < entry[j].From })
			t.entries[idx] = entry
		}
	}
	sort.Slice(t.events, func(i, j int) bool {
		a, b := t.events[i], t.events[j]
		if a.Bucket != b.Bucket {
			return a.Bucket < b.Bucket
		}
		if a.Cloud != b.Cloud {
			return a.Cloud < b.Cloud
		}
		return a.BGPPrefix < b.BGPPrefix
	})
	return t
}

// Horizon returns the exclusive upper bound of buckets the table covers.
func (t *Table) Horizon() netmodel.Bucket { return t.horizon }

// PathAt returns the AS-level path in effect from cloud c to BGP prefix bp
// at the given bucket.
func (t *Table) PathAt(c netmodel.CloudID, bp netmodel.BGPPrefixID, b netmodel.Bucket) netmodel.Path {
	entry := t.entries[int(c)*t.nBGP+int(bp)]
	// Find the last segment with From <= b.
	i := sort.Search(len(entry), func(i int) bool { return entry[i].From > b })
	if i == 0 {
		return entry[0].Path
	}
	return entry[i-1].Path
}

// PathAtForPrefix resolves a client /24 to its covering BGP prefix and
// returns the path in effect.
func (t *Table) PathAtForPrefix(c netmodel.CloudID, p netmodel.PrefixID, b netmodel.Bucket) netmodel.Path {
	return t.PathAt(c, t.world.Prefixes[p].BGPPrefix, b)
}

// Events returns all events with from <= bucket < to, in order.
func (t *Table) Events(from, to netmodel.Bucket) []Event {
	lo := sort.Search(len(t.events), func(i int) bool { return t.events[i].Bucket >= from })
	hi := sort.Search(len(t.events), func(i int) bool { return t.events[i].Bucket >= to })
	return t.events[lo:hi]
}

// TotalEvents returns the number of churn events over the horizon.
func (t *Table) TotalEvents() int { return len(t.events) }

// EntriesChurnedOnDay counts distinct (cloud, BGP prefix) entries with at
// least one event on the given day.
func (t *Table) EntriesChurnedOnDay(day int) int {
	from := netmodel.Bucket(day * netmodel.BucketsPerDay)
	to := from + netmodel.BucketsPerDay
	seen := make(map[[2]int]bool)
	for _, e := range t.Events(from, to) {
		seen[[2]int{int(e.Cloud), int(e.BGPPrefix)}] = true
	}
	return len(seen)
}

// NumEntries returns the number of routing entries (clouds × BGP prefixes).
func (t *Table) NumEntries() int { return len(t.entries) }

// Listener consumes routing events incrementally, the way BlameIt's BGP
// listener tails the border routers. It is a cursor over the table's event
// log.
type Listener struct {
	table *Table
	next  int
}

// NewListener creates a listener positioned at the start of the event log.
func NewListener(t *Table) *Listener {
	return &Listener{table: t}
}

// Poll returns all events with bucket < upTo that have not been returned
// before, advancing the cursor.
func (l *Listener) Poll(upTo netmodel.Bucket) []Event {
	evs := l.table.events
	start := l.next
	for l.next < len(evs) && evs[l.next].Bucket < upTo {
		l.next++
	}
	return evs[start:l.next]
}
