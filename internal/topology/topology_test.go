package topology

import (
	"testing"

	"blameit/internal/netmodel"
)

func small() *World { return Generate(SmallScale(), 42) }

func TestGenerateDeterministic(t *testing.T) {
	w1 := Generate(SmallScale(), 42)
	w2 := Generate(SmallScale(), 42)
	if len(w1.Prefixes) != len(w2.Prefixes) || len(w1.BGPPrefixes) != len(w2.BGPPrefixes) {
		t.Fatal("same seed produced different entity counts")
	}
	for i := range w1.Prefixes {
		if w1.Prefixes[i] != w2.Prefixes[i] {
			t.Fatalf("prefix %d differs between identically seeded worlds", i)
		}
	}
	for _, c := range w1.Clouds {
		for _, bp := range w1.BGPPrefixes {
			if !w1.InitialPath(c.ID, bp.ID).Equal(w2.InitialPath(c.ID, bp.ID)) {
				t.Fatal("routes differ between identically seeded worlds")
			}
		}
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	w1 := Generate(SmallScale(), 1)
	w2 := Generate(SmallScale(), 2)
	same := true
	for id, ms := range w1.CloudBaseMS {
		if w2.CloudBaseMS[id] != ms {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical cloud latencies")
	}
}

func TestEntityCounts(t *testing.T) {
	w := small()
	sc := SmallScale()
	if got := len(w.Clouds); got != sc.CloudsPerRegion*netmodel.NumRegions {
		t.Errorf("clouds = %d", got)
	}
	if got := len(w.Metros); got != sc.MetrosPerRegion*netmodel.NumRegions {
		t.Errorf("metros = %d", got)
	}
	wantEyeballs := sc.EyeballsPerRegion * netmodel.NumRegions
	st := w.Stats()
	if st.EyeballASes != wantEyeballs {
		t.Errorf("eyeballs = %d, want %d", st.EyeballASes, wantEyeballs)
	}
	if st.BGPPrefixes < wantEyeballs*sc.MinBGPPerAS || st.BGPPrefixes > wantEyeballs*sc.MaxBGPPerAS {
		t.Errorf("BGP prefixes = %d out of range", st.BGPPrefixes)
	}
	if st.Prefix24s < st.BGPPrefixes {
		t.Errorf("fewer /24s (%d) than BGP prefixes (%d)", st.Prefix24s, st.BGPPrefixes)
	}
	if st.Clients <= 0 {
		t.Error("no clients generated")
	}
}

func TestBGPPrefixesCoverTheir24s(t *testing.T) {
	w := small()
	for _, bp := range w.BGPPrefixes {
		kids := w.PrefixesOfBGP(bp.ID)
		want := 1 << (24 - bp.MaskLen)
		if len(kids) != want {
			t.Fatalf("BGP prefix %d (/%d) covers %d /24s, want %d", bp.ID, bp.MaskLen, len(kids), want)
		}
		for _, pid := range kids {
			p := w.Prefixes[pid]
			if p.BGPPrefix != bp.ID {
				t.Fatal("child prefix points at the wrong BGP prefix")
			}
			if p.AS != bp.AS {
				t.Fatal("child prefix AS differs from announcing AS")
			}
			sz := uint32(1) << (32 - bp.MaskLen)
			if p.Base < bp.Base || p.Base >= bp.Base+sz {
				t.Fatalf("/24 %08x outside its BGP prefix %08x/%d", p.Base, bp.Base, bp.MaskLen)
			}
		}
	}
}

func TestBGPPrefixesDisjoint(t *testing.T) {
	w := small()
	seen := make(map[uint32]netmodel.BGPPrefixID)
	for _, p := range w.Prefixes {
		if prev, ok := seen[p.Base]; ok {
			t.Fatalf("/24 base %08x allocated to both BGP prefix %d and %d", p.Base, prev, p.BGPPrefix)
		}
		seen[p.Base] = p.BGPPrefix
	}
}

func TestRoutesExistForAllPairs(t *testing.T) {
	w := small()
	for _, c := range w.Clouds {
		for _, bp := range w.BGPPrefixes {
			p := w.InitialPath(c.ID, bp.ID)
			if p.Cloud != c.ID || p.Client != bp.AS {
				t.Fatalf("path endpoints wrong: %v", p)
			}
			if len(p.Middle) == 0 {
				t.Fatalf("path %v has empty middle", p)
			}
			for _, a := range p.Middle {
				typ := w.ASes[a].Type
				if typ != netmodel.ASTransit && typ != netmodel.ASTier1 {
					t.Fatalf("middle AS %d is %v", a, typ)
				}
			}
		}
	}
}

func TestCrossRegionPathsUseTier1(t *testing.T) {
	w := small()
	for _, c := range w.Clouds {
		for _, bp := range w.BGPPrefixes {
			clientReg := w.ASes[bp.AS].Region
			if c.Region == clientReg {
				continue
			}
			p := w.InitialPath(c.ID, bp.ID)
			hasTier1 := false
			for _, a := range p.Middle {
				if w.ASes[a].Type == netmodel.ASTier1 {
					hasTier1 = true
				}
			}
			if !hasTier1 {
				t.Fatalf("cross-region path %v has no tier-1", p)
			}
		}
	}
}

func TestAltPathsDifferFromPrimary(t *testing.T) {
	w := small()
	anyAlt := false
	for _, c := range w.Clouds {
		for _, bp := range w.BGPPrefixes {
			primary := w.InitialPath(c.ID, bp.ID)
			for _, alt := range w.AltPaths(c.ID, bp.ID) {
				anyAlt = true
				if alt.Equal(primary) {
					t.Fatal("alternate path equals primary")
				}
				if alt.Cloud != c.ID || alt.Client != bp.AS {
					t.Fatal("alternate path endpoints wrong")
				}
			}
		}
	}
	if !anyAlt {
		t.Error("no alternate paths generated anywhere")
	}
}

func TestASLevelPathDiversityWithinAS(t *testing.T) {
	// The paper reports only ~47% of <AS,Metro> pairs see one consistent
	// path; our generator must produce path diversity across the BGP
	// prefixes of at least some ASes.
	w := small()
	diverse := 0
	total := 0
	for asn, pids := range map[netmodel.ASN][]netmodel.PrefixID(nil) {
		_ = asn
		_ = pids
	}
	for _, reg := range netmodel.AllRegions() {
		for _, asn := range w.Eyeballs[reg] {
			c := w.Clouds[0]
			keys := make(map[string]bool)
			for _, bp := range w.BGPPrefixes {
				if bp.AS != asn {
					continue
				}
				keys[string(w.InitialPath(c.ID, bp.ID).Key())] = true
			}
			total++
			if len(keys) > 1 {
				diverse++
			}
		}
	}
	if total == 0 {
		t.Fatal("no ASes inspected")
	}
	if diverse == 0 {
		t.Error("every AS has a single consistent path; expected diversity")
	}
}

func TestAttachmentsValid(t *testing.T) {
	w := small()
	secondaries := 0
	for _, p := range w.Prefixes {
		att := w.Attachments(p.ID)
		if len(att) == 0 {
			t.Fatal("prefix with no cloud attachment")
		}
		var sum float64
		for _, a := range att {
			sum += a.Weight
			if a.Weight <= 0 {
				t.Fatal("non-positive attachment weight")
			}
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("attachment weights sum to %v", sum)
		}
		// Primary attachment must be in the prefix's own region.
		primReg := w.Clouds[att[0].Cloud].Region
		if primReg != w.PrefixRegion(p.ID) {
			t.Fatal("primary cloud not in client region")
		}
		if len(att) > 1 {
			secondaries++
		}
	}
	if secondaries == 0 {
		t.Error("no prefix has a secondary attachment")
	}
}

func TestBaseContributionsStructure(t *testing.T) {
	w := small()
	p := w.Prefixes[0]
	att := w.Attachments(p.ID)[0]
	path := w.InitialPath(att.Cloud, p.BGPPrefix)
	contribs := w.BaseContributions(path, p.ID)
	if len(contribs) != len(path.Middle)+2 {
		t.Fatalf("contribution count = %d", len(contribs))
	}
	if contribs[0].Segment != netmodel.SegCloud || contribs[0].AS != w.CloudASN() {
		t.Error("first contribution must be the cloud segment")
	}
	last := contribs[len(contribs)-1]
	if last.Segment != netmodel.SegClient || last.AS != p.AS {
		t.Error("last contribution must be the client segment")
	}
	var sum float64
	for _, c := range contribs {
		if c.MS <= 0 {
			t.Errorf("non-positive contribution %v", c)
		}
		sum += c.MS
	}
	if got := w.BasePathRTT(path, p.ID); got != sum {
		t.Errorf("BasePathRTT = %v, want %v", got, sum)
	}
}

func TestCrossRegionRTTHigherThanIntra(t *testing.T) {
	w := small()
	var intra, cross []float64
	for _, p := range w.Prefixes {
		reg := w.PrefixRegion(p.ID)
		for _, c := range w.Clouds {
			rtt := w.BasePathRTT(w.InitialPath(c.ID, p.BGPPrefix), p.ID)
			if c.Region == reg {
				intra = append(intra, rtt)
			} else {
				cross = append(cross, rtt)
			}
		}
	}
	meanOf := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if meanOf(cross) < meanOf(intra)*1.5 {
		t.Errorf("cross-region RTT (%.1f) not clearly above intra-region (%.1f)", meanOf(cross), meanOf(intra))
	}
}

func TestTargetsAboveTypicalRTT(t *testing.T) {
	w := small()
	for _, p := range w.Prefixes {
		att := w.Attachments(p.ID)[0]
		base := w.BasePathRTT(w.InitialPath(att.Cloud, p.BGPPrefix), p.ID)
		target := w.TargetForPrefix(p.ID)
		if target <= 0 {
			t.Fatal("non-positive target")
		}
		// Most prefixes should sit below their badness target in the
		// fault-free base state; allow the aggressive-target tail.
		_ = base
	}
	// Mobile targets must not be tighter than non-mobile in any region.
	for _, reg := range netmodel.AllRegions() {
		if w.Target(reg, netmodel.Mobile) < w.Target(reg, netmodel.NonMobile)*0.8 {
			t.Errorf("%v mobile target far below non-mobile", reg)
		}
	}
}

func TestMostPrefixesGoodAtBase(t *testing.T) {
	w := small()
	good := 0
	for _, p := range w.Prefixes {
		att := w.Attachments(p.ID)[0]
		base := w.BasePathRTT(w.InitialPath(att.Cloud, p.BGPPrefix), p.ID)
		if base < w.TargetForPrefix(p.ID) {
			good++
		}
	}
	frac := float64(good) / float64(len(w.Prefixes))
	if frac < 0.70 {
		t.Errorf("only %.0f%% of prefixes below target at base latency", frac*100)
	}
}

func TestAtomKeyGroupsConsistently(t *testing.T) {
	w := small()
	// Two BGP prefixes with the same atom key must share every per-cloud
	// path's middle sequence.
	atoms := make(map[string][]netmodel.BGPPrefixID)
	for _, bp := range w.BGPPrefixes {
		atoms[w.AtomKey(bp.ID)] = append(atoms[w.AtomKey(bp.ID)], bp.ID)
	}
	if len(atoms) >= len(w.BGPPrefixes) {
		t.Log("every BGP prefix is its own atom (no aggregation); acceptable but unusual")
	}
	for _, members := range atoms {
		if len(members) < 2 {
			continue
		}
		for _, c := range w.Clouds {
			first := w.InitialPath(c.ID, members[0]).Key()
			for _, bp := range members[1:] {
				if w.InitialPath(c.ID, bp).Key() != first {
					t.Fatal("atom members disagree on a path")
				}
			}
		}
	}
}

func TestMetrosAndCloudsRegionConsistent(t *testing.T) {
	w := small()
	for _, c := range w.Clouds {
		if w.Metros[c.Metro].Region != c.Region {
			t.Errorf("cloud %s region mismatch with metro", c.Name)
		}
	}
	for _, reg := range netmodel.AllRegions() {
		for _, id := range w.CloudsInRegion(reg) {
			if w.Clouds[id].Region != reg {
				t.Error("CloudsInRegion returned a foreign cloud")
			}
		}
	}
}

func TestPrefixesOfAS(t *testing.T) {
	w := small()
	for _, reg := range netmodel.AllRegions() {
		for _, asn := range w.Eyeballs[reg] {
			for _, pid := range w.PrefixesOfAS(asn) {
				if w.Prefixes[pid].AS != asn {
					t.Fatal("PrefixesOfAS returned a foreign prefix")
				}
			}
		}
	}
}

func TestMediumScaleGenerates(t *testing.T) {
	if testing.Short() {
		t.Skip("medium world in -short mode")
	}
	w := Generate(MediumScale(), 7)
	st := w.Stats()
	if st.Prefix24s < 2000 {
		t.Errorf("medium world too small: %d /24s", st.Prefix24s)
	}
	if st.Clouds != 21 {
		t.Errorf("medium world clouds = %d", st.Clouds)
	}
}

func TestWiFiDeviceClass(t *testing.T) {
	w := small()
	counts := make(map[netmodel.DeviceClass]int)
	for _, p := range w.Prefixes {
		counts[p.Device]++
	}
	if counts[netmodel.WiFi] == 0 || counts[netmodel.NonMobile] == 0 || counts[netmodel.Mobile] == 0 {
		t.Fatalf("device mix missing a class: %v", counts)
	}
	// Cellular ASes carry only Mobile prefixes; broadband ASes never do.
	for _, p := range w.Prefixes {
		cellular := p.Device == netmodel.Mobile
		for _, q := range w.PrefixesOfAS(p.AS) {
			if (w.Prefixes[q].Device == netmodel.Mobile) != cellular {
				t.Fatal("mixed cellular/broadband prefixes within one AS")
			}
		}
	}
	// Target looseness must follow access technology per region.
	for _, reg := range netmodel.AllRegions() {
		nm := w.Target(reg, netmodel.NonMobile)
		wf := w.Target(reg, netmodel.WiFi)
		mo := w.Target(reg, netmodel.Mobile)
		if !(nm <= wf && wf <= mo) {
			t.Errorf("%v target ordering broken: wired=%.1f wifi=%.1f mobile=%.1f", reg, nm, wf, mo)
		}
	}
}
