// Package topology generates the synthetic wide-area world that stands in
// for Azure's production environment: cloud edge locations across regions,
// a tier-1/transit/eyeball AS fabric, metros, BGP-announced prefixes and
// their /24 blocks, AS-level routes from every cloud location to every BGP
// prefix, and the static base-latency parameters of every network segment.
//
// The world can host several independent cloud providers over one shared
// internet: each provider owns its cloud ASN and its own edge locations per
// region (with anycast-style nearest-location steering for its clients),
// while metros, client prefixes, transit and tier-1 ASes, and the AS-level
// path fabric are shared — so the same middle-segment fault is visible to
// every provider that routes through the faulty AS. Provider 0 is the
// historical single-cloud world: a Scale with Providers <= 1 generates
// exactly the world older seeds produced, bit for bit.
//
// Everything is generated deterministically from a seed so that every
// experiment in the reproduction is replayable bit-for-bit.
package topology

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"blameit/internal/ipaddr"
	"blameit/internal/netmodel"
	"blameit/internal/stats"
)

// Scale controls the size of the generated world. The reproduction ships
// three presets (Small/Medium/Large); tests use Small, the experiment
// harness uses Medium or Large.
type Scale struct {
	// Providers is the number of independent cloud providers sharing the
	// world. 0 is treated as 1 so zero-value Scale literals keep meaning
	// the historical single-provider world.
	Providers         int
	CloudsPerRegion   int // per provider
	MetrosPerRegion   int
	Tier1Count        int
	TransitPerRegion  int
	EyeballsPerRegion int
	MinBGPPerAS       int // BGP prefixes announced per eyeball AS
	MaxBGPPerAS       int
	MaxMaskShorten    int // a BGP prefix is a /24../(24-MaxMaskShorten)
	CellularASShare   float64
	// WiFiShare is the fraction of non-cellular /24s whose clients are
	// predominantly behind home Wi-Fi (the §2.1 follow-up device class).
	WiFiShare           float64
	SecondaryCloudShare float64 // fraction of prefixes with a secondary cloud attachment
	// OverlapShare is the probability that a prefix outside a provider's
	// home population is nonetheless served by that provider too, giving
	// multi-provider worlds overlapping vantage populations (every prefix
	// always belongs to exactly one home provider). Single-provider worlds
	// ignore it.
	OverlapShare float64
}

// MaxProviders bounds Scale.Providers: provider ASNs are 8075 + 100*q and
// must stay clear of the eyeball ASN range starting at 10000.
const MaxProviders = 16

// Validate reports whether the scale is generatable. The zero value of
// Providers is accepted by Generate (it means 1); Validate is strict so
// CLIs reject nonsense before paying for generation.
func (s Scale) Validate() error {
	bad01 := func(x float64) bool { return math.IsNaN(x) || x < 0 || x > 1 }
	switch {
	case s.Providers < 1:
		return fmt.Errorf("topology: Providers %d must be >= 1", s.Providers)
	case s.Providers > MaxProviders:
		return fmt.Errorf("topology: Providers %d must be <= %d (provider ASNs 8075+100q must stay below the eyeball ASN range)", s.Providers, MaxProviders)
	case s.CloudsPerRegion < 1:
		return fmt.Errorf("topology: CloudsPerRegion %d must be >= 1", s.CloudsPerRegion)
	case s.MetrosPerRegion < 1:
		return fmt.Errorf("topology: MetrosPerRegion %d must be >= 1", s.MetrosPerRegion)
	case s.Tier1Count < 1:
		return fmt.Errorf("topology: Tier1Count %d must be >= 1", s.Tier1Count)
	case s.TransitPerRegion < 1:
		return fmt.Errorf("topology: TransitPerRegion %d must be >= 1", s.TransitPerRegion)
	case s.EyeballsPerRegion < 1:
		return fmt.Errorf("topology: EyeballsPerRegion %d must be >= 1", s.EyeballsPerRegion)
	case s.MinBGPPerAS < 1:
		return fmt.Errorf("topology: MinBGPPerAS %d must be >= 1", s.MinBGPPerAS)
	case s.MaxBGPPerAS < s.MinBGPPerAS:
		return fmt.Errorf("topology: MaxBGPPerAS %d must be >= MinBGPPerAS %d", s.MaxBGPPerAS, s.MinBGPPerAS)
	case s.MaxMaskShorten < 0 || s.MaxMaskShorten > 8:
		return fmt.Errorf("topology: MaxMaskShorten %d must be in [0, 8]", s.MaxMaskShorten)
	case bad01(s.CellularASShare):
		return fmt.Errorf("topology: CellularASShare %v must be in [0, 1]", s.CellularASShare)
	case bad01(s.WiFiShare):
		return fmt.Errorf("topology: WiFiShare %v must be in [0, 1]", s.WiFiShare)
	case bad01(s.SecondaryCloudShare):
		return fmt.Errorf("topology: SecondaryCloudShare %v must be in [0, 1]", s.SecondaryCloudShare)
	case bad01(s.OverlapShare):
		return fmt.Errorf("topology: OverlapShare %v must be in [0, 1]", s.OverlapShare)
	}
	return nil
}

// SmallScale is sized for unit tests: a few hundred /24s.
func SmallScale() Scale {
	return Scale{
		Providers:           1,
		CloudsPerRegion:     2,
		MetrosPerRegion:     2,
		Tier1Count:          4,
		TransitPerRegion:    6,
		EyeballsPerRegion:   20,
		MinBGPPerAS:         3,
		MaxBGPPerAS:         4,
		MaxMaskShorten:      2,
		CellularASShare:     0.25,
		WiFiShare:           0.35,
		SecondaryCloudShare: 0.4,
		OverlapShare:        0.5,
	}
}

// MediumScale is sized for the experiment harness: a few thousand /24s.
func MediumScale() Scale {
	return Scale{
		Providers:           1,
		CloudsPerRegion:     3,
		MetrosPerRegion:     4,
		Tier1Count:          6,
		TransitPerRegion:    8,
		EyeballsPerRegion:   22,
		MinBGPPerAS:         3,
		MaxBGPPerAS:         8,
		MaxMaskShorten:      3,
		CellularASShare:     0.25,
		WiFiShare:           0.35,
		SecondaryCloudShare: 0.4,
		OverlapShare:        0.5,
	}
}

// LargeScale is sized for stress benchmarks: tens of thousands of /24s.
func LargeScale() Scale {
	return Scale{
		Providers:           1,
		CloudsPerRegion:     5,
		MetrosPerRegion:     6,
		Tier1Count:          8,
		TransitPerRegion:    10,
		EyeballsPerRegion:   60,
		MinBGPPerAS:         4,
		MaxBGPPerAS:         10,
		MaxMaskShorten:      3,
		CellularASShare:     0.25,
		WiFiShare:           0.35,
		SecondaryCloudShare: 0.4,
		OverlapShare:        0.5,
	}
}

// Provider is one cloud provider's identity in the shared world.
type Provider struct {
	ID   netmodel.ProviderID
	ASN  netmodel.ASN
	Name string
}

// providerNames supplies stable human names for the first few providers;
// beyond the list, providers are named Cloud-<q+1>.
var providerNames = []string{"CloudNet", "Skylift", "Nimbus", "Stratus", "Vapor", "Cirrus"}

func providerName(q int) string {
	if q < len(providerNames) {
		return providerNames[q]
	}
	return fmt.Sprintf("Cloud-%d", q+1)
}

// providerASN returns provider q's cloud ASN. Provider 0 keeps the
// historical 8075; the stride keeps the namespace disjoint from tier-1
// (1000+), transit (2000–2699), and eyeball (10000+) ASNs for any
// Providers <= MaxProviders.
func providerASN(q int) netmodel.ASN {
	return netmodel.ASN(8075 + 100*q)
}

// providerSeed derives the dedicated RNG stream seed of provider q's
// world-generation draws (q >= 1; provider 0 uses the world's main stream
// so single-provider worlds are bit-identical to historical ones).
func providerSeed(seed int64, q int) int64 {
	return seed + int64(q)*0x9E3779B9
}

// CloudAttachment records that a prefix's clients connect to a cloud
// location with the given share of the prefix's traffic.
type CloudAttachment struct {
	Cloud  netmodel.CloudID
	Weight float64
}

// ASContribution is one AS's share of a path's base RTT, in milliseconds.
type ASContribution struct {
	AS      netmodel.ASN
	Segment netmodel.Segment
	MS      float64
}

// routeKey identifies a (cloud location, BGP prefix) routing entry.
type routeKey struct {
	cloud netmodel.CloudID
	bp    netmodel.BGPPrefixID
}

// World is the generated environment: entities, routing, and static latency
// ground truth.
type World struct {
	Seed  int64
	Scale Scale

	// Providers lists the cloud providers sharing the world, in ID order.
	// Provider 0 is the historical single cloud (ASN 8075, "CloudNet").
	Providers []Provider

	ASes     map[netmodel.ASN]netmodel.AS
	Tier1s   []netmodel.ASN
	Transits map[netmodel.Region][]netmodel.ASN
	Eyeballs map[netmodel.Region][]netmodel.ASN

	Metros      []netmodel.Metro
	Clouds      []netmodel.CloudLocation
	BGPPrefixes []netmodel.BGPPrefix
	Prefixes    []netmodel.Prefix24

	// Derived lookups.
	prefixesByBGP map[netmodel.BGPPrefixID][]netmodel.PrefixID
	prefixesByAS  map[netmodel.ASN][]netmodel.PrefixID
	cloudsByReg   []map[netmodel.Region][]netmodel.CloudID // per provider
	byBase        map[uint32]netmodel.PrefixID             // /24 base address -> prefix

	// Routing: primary and alternate paths per (cloud, BGP prefix).
	routes    map[routeKey]netmodel.Path
	altRoutes map[routeKey][]netmodel.Path

	// Cloud attachments per provider per client prefix.
	attachments [][][]CloudAttachment

	// Per-provider client populations: served[q][p] reports whether
	// provider q serves prefix p, population[q] lists the served prefixes
	// in ascending ID order. Provider 0 of a single-provider world serves
	// everything.
	served     [][]bool
	population [][]netmodel.PrefixID

	// Static latency ground truth.
	CloudBaseMS  map[netmodel.CloudID]float64
	ASBaseMS     map[netmodel.ASN]float64
	PrefixBaseMS []float64 // indexed by PrefixID
	RegionPropMS [netmodel.NumRegions][netmodel.NumRegions]float64

	// Region- and device-specific RTT badness targets (§2.1), per provider.
	targets [][netmodel.NumRegions][netmodel.NumDeviceClasses]float64
}

var metroNames = map[netmodel.Region][]string{
	netmodel.RegionUSA:       {"NewYork", "Seattle", "Chicago", "Dallas", "LosAngeles", "Atlanta"},
	netmodel.RegionEurope:    {"London", "Amsterdam", "Frankfurt", "Paris", "Milan", "Madrid"},
	netmodel.RegionChina:     {"Beijing", "Shanghai", "Guangzhou", "Chengdu", "Wuhan", "Xian"},
	netmodel.RegionIndia:     {"Mumbai", "Delhi", "Chennai", "Bangalore", "Hyderabad", "Kolkata"},
	netmodel.RegionBrazil:    {"SaoPaulo", "Rio", "Brasilia", "Salvador", "Fortaleza", "Curitiba"},
	netmodel.RegionAustralia: {"Sydney", "Melbourne", "Brisbane", "Perth", "Adelaide", "Canberra"},
	netmodel.RegionEastAsia:  {"Tokyo", "Seoul", "Singapore", "HongKong", "Osaka", "Taipei"},
}

// Generate builds a world from a scale and seed.
//
// RNG discipline: provider 0's entities draw from the world's main seeded
// stream in exactly the historical order, and every additional provider
// draws from its own derived stream — so a Providers<=1 world is
// bit-identical to the single-cloud generator of earlier versions, and
// provider 0's entities (and the shared fabric) are bit-identical across
// any provider count.
func Generate(scale Scale, seed int64) *World {
	if scale.Providers < 1 {
		scale.Providers = 1 // zero-value Scale literals mean the single-provider world
	}
	nProv := scale.Providers
	r := rand.New(rand.NewSource(seed))
	w := &World{
		Seed:          seed,
		Scale:         scale,
		Providers:     make([]Provider, nProv),
		ASes:          make(map[netmodel.ASN]netmodel.AS),
		Transits:      make(map[netmodel.Region][]netmodel.ASN),
		Eyeballs:      make(map[netmodel.Region][]netmodel.ASN),
		prefixesByBGP: make(map[netmodel.BGPPrefixID][]netmodel.PrefixID),
		prefixesByAS:  make(map[netmodel.ASN][]netmodel.PrefixID),
		cloudsByReg:   make([]map[netmodel.Region][]netmodel.CloudID, nProv),
		byBase:        make(map[uint32]netmodel.PrefixID),
		routes:        make(map[routeKey]netmodel.Path),
		altRoutes:     make(map[routeKey][]netmodel.Path),
		attachments:   make([][][]CloudAttachment, nProv),
		CloudBaseMS:   make(map[netmodel.CloudID]float64),
		ASBaseMS:      make(map[netmodel.ASN]float64),
	}

	for q := 0; q < nProv; q++ {
		pv := Provider{ID: netmodel.ProviderID(q), ASN: providerASN(q), Name: providerName(q)}
		w.Providers[q] = pv
		w.ASes[pv.ASN] = netmodel.AS{ASN: pv.ASN, Name: pv.Name, Type: netmodel.ASCloud, Region: netmodel.RegionUSA}
		w.cloudsByReg[q] = make(map[netmodel.Region][]netmodel.CloudID)
	}

	w.generateFabric(r, scale)
	w.generateMetros(scale)
	// Provider 0's edge locations exist before the client and latency
	// draws so the main RNG stream is consumed in the historical order;
	// generateLatencyParams assigns CloudBaseMS by ranging over w.Clouds,
	// which at that point holds exactly provider 0's locations.
	w.generateProviderClouds(0, nil, scale)
	w.generateClients(r, scale)
	w.generateLatencyParams(r)
	for q := 1; q < nProv; q++ {
		rq := rand.New(rand.NewSource(providerSeed(seed, q)))
		w.generateProviderClouds(netmodel.ProviderID(q), rq, scale)
	}
	w.generateRoutes(r, scale)
	w.generateAttachments(0, r, scale)
	for q := 1; q < nProv; q++ {
		rq := rand.New(rand.NewSource(providerSeed(seed, q) + 1))
		w.generateAttachments(netmodel.ProviderID(q), rq, scale)
	}
	w.assignPopulations()
	w.deriveTargets()
	return w
}

func (w *World) generateFabric(r *rand.Rand, scale Scale) {
	for i := 0; i < scale.Tier1Count; i++ {
		asn := netmodel.ASN(1000 + i)
		w.ASes[asn] = netmodel.AS{ASN: asn, Name: fmt.Sprintf("Tier1-%d", i+1), Type: netmodel.ASTier1, Region: netmodel.RegionUSA}
		w.Tier1s = append(w.Tier1s, asn)
	}
	for _, reg := range netmodel.AllRegions() {
		for i := 0; i < scale.TransitPerRegion; i++ {
			asn := netmodel.ASN(2000 + int(reg)*100 + i)
			w.ASes[asn] = netmodel.AS{ASN: asn, Name: fmt.Sprintf("%s-Transit-%d", reg, i+1), Type: netmodel.ASTransit, Region: reg}
			w.Transits[reg] = append(w.Transits[reg], asn)
		}
	}
}

func (w *World) generateMetros(scale Scale) {
	for _, reg := range netmodel.AllRegions() {
		names := metroNames[reg]
		for i := 0; i < scale.MetrosPerRegion; i++ {
			name := fmt.Sprintf("%s-Metro-%d", reg, i+1)
			if i < len(names) {
				name = names[i]
			}
			w.Metros = append(w.Metros, netmodel.Metro{
				ID:     netmodel.MetroID(len(w.Metros)),
				Name:   name,
				Region: reg,
			})
		}
	}
}

// generateProviderClouds creates provider q's edge locations, one pass per
// region. Provider 0 consumes no randomness (its base latencies come from
// the main stream in generateLatencyParams, as they always have); every
// later provider draws its CloudBaseMS from its own stream rq, and its
// sites sit offset within the shared metro list so providers overlap but
// do not mirror each other's footprints.
func (w *World) generateProviderClouds(q netmodel.ProviderID, rq *rand.Rand, scale Scale) {
	pname := strings.ToLower(w.Providers[q].Name)
	for _, reg := range netmodel.AllRegions() {
		metros := w.MetrosInRegion(reg)
		for i := 0; i < scale.CloudsPerRegion; i++ {
			m := metros[(i+int(q))%len(metros)]
			id := netmodel.CloudID(len(w.Clouds))
			name := "edge-" + m.Name
			if q > 0 {
				name = pname + "-edge-" + m.Name
			}
			w.Clouds = append(w.Clouds, netmodel.CloudLocation{
				ID:       id,
				Name:     name,
				Metro:    m.ID,
				Region:   reg,
				Provider: q,
			})
			w.cloudsByReg[q][reg] = append(w.cloudsByReg[q][reg], id)
			if rq != nil {
				w.CloudBaseMS[id] = 1 + 4*rq.Float64() // 1-5ms inside the cloud
			}
		}
	}
}

func (w *World) generateClients(r *rand.Rand, scale Scale) {
	// Allocate address space deterministically: each BGP prefix gets a
	// distinct chunk of a region-specific /8-ish space.
	nextBlock := make(map[netmodel.Region]uint32)
	for _, reg := range netmodel.AllRegions() {
		nextBlock[reg] = uint32(ipaddr.Make(byte(10+int(reg)), 0, 0, 0))
	}
	for _, reg := range netmodel.AllRegions() {
		metros := w.MetrosInRegion(reg)
		for i := 0; i < scale.EyeballsPerRegion; i++ {
			asn := netmodel.ASN(10000 + int(reg)*1000 + i)
			cellular := r.Float64() < scale.CellularASShare
			typ := "ISP"
			if cellular {
				typ = "Mobile"
			}
			w.ASes[asn] = netmodel.AS{ASN: asn, Name: fmt.Sprintf("%s-%s-%d", reg, typ, i+1), Type: netmodel.ASEyeball, Region: reg}
			w.Eyeballs[reg] = append(w.Eyeballs[reg], asn)

			nBGP := scale.MinBGPPerAS + r.Intn(scale.MaxBGPPerAS-scale.MinBGPPerAS+1)
			for j := 0; j < nBGP; j++ {
				shorten := r.Intn(scale.MaxMaskShorten + 1)
				mask := 24 - shorten
				n24 := 1 << shorten
				metro := metros[r.Intn(len(metros))]
				bpID := netmodel.BGPPrefixID(len(w.BGPPrefixes))
				base := nextBlock[reg]
				// Advance by the block size, aligned to it.
				sz := uint32(1) << (32 - mask)
				if base%sz != 0 {
					base = (base/sz + 1) * sz
				}
				nextBlock[reg] = base + sz
				w.BGPPrefixes = append(w.BGPPrefixes, netmodel.BGPPrefix{
					ID: bpID, Base: base, MaskLen: mask, AS: asn, Metro: metro.ID,
				})
				for k := 0; k < n24; k++ {
					device := netmodel.NonMobile
					if cellular {
						device = netmodel.Mobile
					} else if r.Float64() < scale.WiFiShare {
						device = netmodel.WiFi
					}
					pid := netmodel.PrefixID(len(w.Prefixes))
					// The paper observes that larger announced blocks often
					// have fewer active clients per /24; shrink activity as
					// blocks grow. The floor keeps typical quartets at "many
					// tens" of RTT samples, as in the production dataset.
					activity := stats.BoundedPareto(r, 0.9, 10, 600) / float64(1+shorten)
					w.Prefixes = append(w.Prefixes, netmodel.Prefix24{
						ID:            pid,
						Base:          base + uint32(k)<<8,
						AS:            asn,
						Metro:         metro.ID,
						BGPPrefix:     bpID,
						ActiveClients: 6 + int(activity),
						Device:        device,
					})
					w.prefixesByBGP[bpID] = append(w.prefixesByBGP[bpID], pid)
					w.prefixesByAS[asn] = append(w.prefixesByAS[asn], pid)
					w.byBase[base+uint32(k)<<8] = pid
				}
			}
		}
	}
}

func (w *World) generateLatencyParams(r *rand.Rand) {
	for _, c := range w.Clouds {
		w.CloudBaseMS[c.ID] = 1 + 4*r.Float64() // 1-5ms inside the cloud
	}
	for _, asn := range w.Tier1s {
		w.ASBaseMS[asn] = 6 + 10*r.Float64() // 6-16ms backbone hop
	}
	for _, reg := range netmodel.AllRegions() {
		for _, asn := range w.Transits[reg] {
			w.ASBaseMS[asn] = 2 + 8*r.Float64() // 2-10ms regional transit
		}
	}
	w.PrefixBaseMS = make([]float64, len(w.Prefixes))
	for i, p := range w.Prefixes {
		base := 4 + 26*r.Float64() // 4-30ms last mile
		switch p.Device {
		case netmodel.Mobile:
			base += 12 + 25*r.Float64() // cellular access penalty
		case netmodel.WiFi:
			base += 3 + 8*r.Float64() // home-wireless penalty
		}
		w.PrefixBaseMS[i] = base
	}
	// Inter-region propagation, symmetric. Intra-region is small.
	for i := 0; i < netmodel.NumRegions; i++ {
		for j := i; j < netmodel.NumRegions; j++ {
			var ms float64
			if i == j {
				ms = 1 + 5*r.Float64()
			} else {
				ms = 60 + 110*r.Float64() // 60-170ms intercontinental
			}
			w.RegionPropMS[i][j] = ms
			w.RegionPropMS[j][i] = ms
		}
	}
}

// providersOf returns the deterministic upstream transit providers of an
// eyeball AS: two or three transits in its region, chosen by ASN.
func (w *World) providersOf(asn netmodel.ASN) []netmodel.ASN {
	as := w.ASes[asn]
	transits := w.Transits[as.Region]
	n := 2 + int(asn)%2
	if n > len(transits) {
		n = len(transits)
	}
	out := make([]netmodel.ASN, n)
	for i := 0; i < n; i++ {
		out[i] = transits[(int(asn)+i*3)%len(transits)]
	}
	return out
}

func (w *World) generateRoutes(r *rand.Rand, scale Scale) {
	for _, c := range w.Clouds {
		for _, bp := range w.BGPPrefixes {
			key := routeKey{c.ID, bp.ID}
			paths := w.candidatePaths(c, bp)
			// Deterministic per-prefix primary selection: an AS's prefixes
			// spread across its first two candidate paths (so no single
			// client AS dominates a middle segment's aggregate — Insight-2
			// needs middle aggregates to mix many ASes) with a small share
			// on later candidates, while different BGP prefixes of one AS
			// use different providers (the paper finds only 47% of
			// <AS,Metro> pairs see a single path).
			sel := (int(bp.ID) + int(c.ID)*7) % 12
			idx := 0
			switch {
			case sel < 5:
				idx = 0
			case sel < 10:
				idx = 1
			default:
				idx = 2
			}
			// Primaries stay on the shortest candidate paths; longer
			// detours exist only as churn alternates, so middle aggregates
			// are not fragmented across rarely-used AS sequences.
			pool := primaryPool(paths)
			primary := paths[idx%pool]
			w.routes[key] = primary
			alts := make([]netmodel.Path, 0, len(paths))
			for _, p := range paths {
				if !p.Equal(primary) {
					alts = append(alts, p)
				}
			}
			// A prefix-specific detour: route churn frequently lands on an
			// AS sequence nobody else is using, which is what makes stale
			// background baselines useless until the path is re-probed
			// (the Fig. 13 periodic-only decline).
			if d, ok := w.detourPath(primary, bp); ok {
				alts = append(alts, d)
			}
			w.altRoutes[key] = alts
		}
	}
}

// primaryPool returns the number of leading candidates with the minimal
// middle length (the single-transit paths for intra-region routes).
func primaryPool(paths []netmodel.Path) int {
	minLen := len(paths[0].Middle)
	for _, p := range paths {
		if len(p.Middle) < minLen {
			minLen = len(p.Middle)
		}
	}
	n := 0
	for _, p := range paths {
		if len(p.Middle) == minLen {
			n++
		} else {
			break // candidates are ordered shortest-first
		}
	}
	if n == 0 {
		return len(paths)
	}
	return n
}

// detourPath derives a prefix-specific alternate of a path by inserting an
// extra regional transit hop before the client's provider.
func (w *World) detourPath(primary netmodel.Path, bp netmodel.BGPPrefix) (netmodel.Path, bool) {
	clientReg := w.ASes[bp.AS].Region
	transits := w.Transits[clientReg]
	if len(transits) < 2 || len(primary.Middle) == 0 {
		return netmodel.Path{}, false
	}
	provider := primary.Middle[len(primary.Middle)-1]
	t := transits[(int(provider)+int(bp.ID))%len(transits)]
	if t == provider {
		t = transits[(int(provider)+int(bp.ID)+1)%len(transits)]
	}
	if t == provider {
		return netmodel.Path{}, false
	}
	d := primary.Clone()
	d.Middle = append(d.Middle[:len(d.Middle)-1:len(d.Middle)-1], t, provider)
	for _, m := range primary.Middle {
		if m == t {
			return netmodel.Path{}, false // already on path
		}
	}
	return d, true
}

// candidatePaths enumerates the plausible AS-level routes from a cloud
// location to a BGP prefix.
func (w *World) candidatePaths(c netmodel.CloudLocation, bp netmodel.BGPPrefix) []netmodel.Path {
	clientAS := bp.AS
	clientReg := w.ASes[clientAS].Region
	providers := w.providersOf(clientAS)
	var out []netmodel.Path
	if c.Region == clientReg {
		// Intra-region: cloud peers directly with the regional transits.
		// Single-transit paths come first; the rarer two-transit detour is
		// last so the weighted primary selection keeps it a minority.
		for _, p := range providers {
			out = append(out, netmodel.Path{Cloud: c.ID, Middle: []netmodel.ASN{p}, Client: clientAS})
		}
		if len(w.Transits[clientReg]) > 1 {
			p0 := providers[0]
			other := w.Transits[clientReg][(int(p0)+1)%len(w.Transits[clientReg])]
			if other != p0 {
				out = append(out, netmodel.Path{Cloud: c.ID, Middle: []netmodel.ASN{other, p0}, Client: clientAS})
			}
		}
	} else {
		// Cross-region: a tier-1 backbone carries the long haul into the
		// client's regional provider. Each cloud location leans on a small
		// set of backbone carriers (as real edges do), so cross-region
		// traffic through one location shares middle segments.
		for i, p := range providers {
			t1 := w.Tier1s[(int(c.ID)+i)%len(w.Tier1s)]
			out = append(out, netmodel.Path{Cloud: c.ID, Middle: []netmodel.ASN{t1, p}, Client: clientAS})
		}
		t1b := w.Tier1s[(int(c.ID)+int(clientAS))%len(w.Tier1s)]
		out = append(out, netmodel.Path{Cloud: c.ID, Middle: []netmodel.ASN{t1b, providers[0]}, Client: clientAS})
	}
	// Deduplicate while preserving order.
	seen := make(map[string]bool, len(out))
	uniq := out[:0]
	for _, p := range out {
		k := p.FullKey()
		if !seen[k] {
			seen[k] = true
			uniq = append(uniq, p)
		}
	}
	return uniq
}

// generateAttachments assigns provider q's anycast steering for every
// prefix: the nearest in-region location by the deterministic
// (metro, AS) hash, with an occasional secondary spillover location.
func (w *World) generateAttachments(q netmodel.ProviderID, r *rand.Rand, scale Scale) {
	regOf := w.cloudsByReg[q]
	atts := make([][]CloudAttachment, len(w.Prefixes))
	for i, p := range w.Prefixes {
		reg := w.Metros[p.Metro].Region
		regClouds := regOf[reg]
		primary := regClouds[(int(p.Metro)+int(p.AS))%len(regClouds)]
		att := []CloudAttachment{{Cloud: primary, Weight: 1.0}}
		if r.Float64() < scale.SecondaryCloudShare {
			// Anycast occasionally lands clients on another location —
			// usually in-region, sometimes a neighboring region.
			// Anycast overwhelmingly keeps the spillover in-region; only a
			// sliver of clients land on a neighbouring region's location.
			var sec netmodel.CloudID
			if len(regClouds) > 1 && r.Float64() < 0.92 {
				sec = regClouds[(int(primary)+1+r.Intn(len(regClouds)-1))%len(regClouds)]
				for sec == primary {
					sec = regClouds[r.Intn(len(regClouds))]
				}
			} else {
				oreg := netmodel.Region((int(reg) + 1 + r.Intn(netmodel.NumRegions-1)) % netmodel.NumRegions)
				oc := regOf[oreg]
				sec = oc[r.Intn(len(oc))]
			}
			att[0].Weight = 0.85
			att = append(att, CloudAttachment{Cloud: sec, Weight: 0.15})
		}
		atts[i] = att
	}
	w.attachments[q] = atts
}

// mix64 is a splitmix64-style hash chain used for the provider-population
// assignment (kept local to avoid coupling to the simulator's identical
// helper; the two need not produce related streams).
func mix64(vals ...uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, v := range vals {
		h ^= v
		h *= 0xBF58476D1CE4E5B9
		h ^= h >> 27
		h *= 0x94D049BB133111EB
		h ^= h >> 31
	}
	return h
}

// assignPopulations gives every prefix one home provider (uniform by hash)
// plus membership in each other provider's population with probability
// OverlapShare, modeling overlapping vantage populations across providers.
// A single-provider world serves every prefix from provider 0.
func (w *World) assignPopulations() {
	n := len(w.Providers)
	w.served = make([][]bool, n)
	w.population = make([][]netmodel.PrefixID, n)
	for q := range w.served {
		w.served[q] = make([]bool, len(w.Prefixes))
	}
	for pid := range w.Prefixes {
		home := int(mix64(uint64(w.Seed), uint64(pid), 0x70) % uint64(n))
		for q := 0; q < n; q++ {
			in := q == home
			if !in && w.Scale.OverlapShare > 0 {
				u := float64(mix64(uint64(w.Seed), uint64(pid), 0x71, uint64(q))>>11) / (1 << 53)
				in = u < w.Scale.OverlapShare
			}
			if in {
				w.served[q][pid] = true
				w.population[q] = append(w.population[q], netmodel.PrefixID(pid))
			}
		}
	}
}

// deriveTargets sets region- and device-specific badness thresholds from
// the generated base RTTs, mirroring the paper's note that targets track
// regional RTT levels and that the USA's targets are comparatively
// aggressive. Each provider derives its own targets from its own served
// population and its own attachments.
func (w *World) deriveTargets() {
	w.targets = make([][netmodel.NumRegions][netmodel.NumDeviceClasses]float64, len(w.Providers))
	for q := range w.Providers {
		w.deriveProviderTargets(netmodel.ProviderID(q))
	}
}

func (w *World) deriveProviderTargets(q netmodel.ProviderID) {
	// Region targets reflect the normal (primary, in-region) connection
	// experience; structurally distant pairs get per-pair relief in
	// TargetFor instead, so no prefix is consistently above its threshold.
	var samples [netmodel.NumRegions][netmodel.NumDeviceClasses][]float64
	for _, pid := range w.population[q] {
		p := w.Prefixes[pid]
		reg := w.Metros[p.Metro].Region
		att := w.attachments[q][pid][0] // primary attachment
		path := w.InitialPath(att.Cloud, p.BGPPrefix)
		rtt := w.BasePathRTT(path, pid)
		samples[reg][p.Device] = append(samples[reg][p.Device], rtt)
	}
	for _, reg := range netmodel.AllRegions() {
		for d := 0; d < netmodel.NumDeviceClasses; d++ {
			xs := samples[reg][d]
			if len(xs) == 0 {
				// Fall back to the other device class or a generic level.
				xs = samples[reg][1-d]
			}
			var target float64
			if len(xs) == 0 {
				target = 100
			} else if reg == netmodel.RegionUSA {
				// Aggressive target: barely above the P75 of normal RTTs.
				target = stats.Quantile(xs, 0.75) * 1.10
			} else {
				target = stats.Quantile(xs, 0.90) * 1.25
			}
			w.targets[q][reg][d] = target
		}
		// Target looseness follows access-technology penalty: wired
		// broadband <= Wi-Fi <= cellular. Never let sampling noise invert
		// that ordering.
		if w.targets[q][reg][netmodel.WiFi] < w.targets[q][reg][netmodel.NonMobile] {
			w.targets[q][reg][netmodel.WiFi] = w.targets[q][reg][netmodel.NonMobile] * 1.1
		}
		if w.targets[q][reg][netmodel.Mobile] < w.targets[q][reg][netmodel.WiFi] {
			w.targets[q][reg][netmodel.Mobile] = w.targets[q][reg][netmodel.WiFi] * 1.15
		}
	}
}

// NumProviders returns the number of cloud providers in the world.
func (w *World) NumProviders() int { return len(w.Providers) }

// CloudASN returns provider 0's cloud ASN — the historical single-provider
// identity.
func (w *World) CloudASN() netmodel.ASN { return w.Providers[0].ASN }

// ProviderASN returns provider q's cloud ASN.
func (w *World) ProviderASN(q netmodel.ProviderID) netmodel.ASN { return w.Providers[q].ASN }

// ProviderOf returns the provider owning a cloud location.
func (w *World) ProviderOf(c netmodel.CloudID) netmodel.ProviderID { return w.Clouds[c].Provider }

// CloudASNOf returns the cloud ASN of the provider owning a cloud location.
func (w *World) CloudASNOf(c netmodel.CloudID) netmodel.ASN {
	return w.Providers[w.Clouds[c].Provider].ASN
}

// ProviderByASN maps a cloud ASN back to its provider.
func (w *World) ProviderByASN(asn netmodel.ASN) (netmodel.ProviderID, bool) {
	for _, pv := range w.Providers {
		if pv.ASN == asn {
			return pv.ID, true
		}
	}
	return 0, false
}

// MetrosInRegion returns the metros of a region in ID order.
func (w *World) MetrosInRegion(reg netmodel.Region) []netmodel.Metro {
	var out []netmodel.Metro
	for _, m := range w.Metros {
		if m.Region == reg {
			out = append(out, m)
		}
	}
	return out
}

// CloudsInRegion returns provider 0's cloud location IDs of a region.
func (w *World) CloudsInRegion(reg netmodel.Region) []netmodel.CloudID {
	return w.cloudsByReg[0][reg]
}

// CloudsInRegionFor returns provider q's cloud location IDs of a region.
func (w *World) CloudsInRegionFor(q netmodel.ProviderID, reg netmodel.Region) []netmodel.CloudID {
	return w.cloudsByReg[q][reg]
}

// PrefixesOfBGP returns the /24 prefix IDs covered by a BGP prefix.
func (w *World) PrefixesOfBGP(bp netmodel.BGPPrefixID) []netmodel.PrefixID {
	return w.prefixesByBGP[bp]
}

// PrefixesOfAS returns the /24 prefix IDs announced by an AS.
func (w *World) PrefixesOfAS(asn netmodel.ASN) []netmodel.PrefixID {
	return w.prefixesByAS[asn]
}

// InitialPath returns the primary route from a cloud location to a BGP
// prefix at simulation start.
func (w *World) InitialPath(c netmodel.CloudID, bp netmodel.BGPPrefixID) netmodel.Path {
	return w.routes[routeKey{c, bp}]
}

// AltPaths returns alternate routes available for churn events.
func (w *World) AltPaths(c netmodel.CloudID, bp netmodel.BGPPrefixID) []netmodel.Path {
	return w.altRoutes[routeKey{c, bp}]
}

// asymHash drives the deterministic routing-asymmetry decision.
func asymHash(c netmodel.CloudID, bp netmodel.BGPPrefixID) uint64 {
	h := uint64(c)*0x9E3779B97F4A7C15 + uint64(bp)*0xBF58476D1CE4E5B9
	h ^= h >> 29
	h *= 0x94D049BB133111EB
	h ^= h >> 32
	return h
}

// asymmetricShare is the fraction of (cloud, BGP prefix) pairs whose
// reverse (client→cloud) route differs from the forward route. Internet
// routing asymmetry is common (§5.1 cites it as the reason cloud-issued
// traceroutes may not see reverse-path problems).
const asymmetricShare = 0.35

// Asymmetric reports whether the reverse route of (cloud, BGP prefix)
// differs from the forward route.
func (w *World) Asymmetric(c netmodel.CloudID, bp netmodel.BGPPrefixID) bool {
	if len(w.altRoutes[routeKey{c, bp}]) == 0 {
		return false
	}
	return asymHash(c, bp)%1000 < uint64(asymmetricShare*1000)
}

// ReversePath returns the client→cloud route of (cloud, BGP prefix),
// expressed in the same cloud→client orientation as forward paths so path
// keys stay comparable. For symmetric pairs it equals the forward route;
// for asymmetric pairs it is one of the alternate routes, deterministically
// chosen. Reverse routes are held fixed over the simulation horizon (a
// documented simplification; forward churn is modeled in the bgp table).
func (w *World) ReversePath(c netmodel.CloudID, bp netmodel.BGPPrefixID) netmodel.Path {
	if !w.Asymmetric(c, bp) {
		return w.InitialPath(c, bp)
	}
	alts := w.altRoutes[routeKey{c, bp}]
	return alts[int(asymHash(c, bp)>>10)%len(alts)]
}

// Attachments returns the provider-0 cloud locations a prefix's clients
// connect to, with traffic weights summing to 1.
func (w *World) Attachments(p netmodel.PrefixID) []CloudAttachment {
	return w.attachments[0][p]
}

// AttachmentsFor returns provider q's cloud attachments of a prefix.
func (w *World) AttachmentsFor(q netmodel.ProviderID, p netmodel.PrefixID) []CloudAttachment {
	return w.attachments[q][p]
}

// Population returns the prefixes served by provider q, in ascending ID
// order. Callers must not mutate the returned slice.
func (w *World) Population(q netmodel.ProviderID) []netmodel.PrefixID {
	return w.population[q]
}

// ServedBy reports whether provider q serves prefix p.
func (w *World) ServedBy(q netmodel.ProviderID, p netmodel.PrefixID) bool {
	return w.served[q][p]
}

// Target returns provider 0's RTT badness threshold for a client region
// and device class.
func (w *World) Target(reg netmodel.Region, d netmodel.DeviceClass) float64 {
	return w.targets[0][reg][d]
}

// TargetOf returns provider q's RTT badness threshold for a client region
// and device class.
func (w *World) TargetOf(q netmodel.ProviderID, reg netmodel.Region, d netmodel.DeviceClass) float64 {
	return w.targets[q][reg][d]
}

// TargetForPrefix returns the badness threshold applying to a prefix at
// its provider-0 primary cloud location.
func (w *World) TargetForPrefix(p netmodel.PrefixID) float64 {
	return w.TargetFor(p, w.attachments[0][p][0].Cloud)
}

// TargetFor returns the badness threshold for one (prefix, cloud) quartet,
// under the cloud location's owning provider. It starts from the region-
// and device-specific target and, for the prefix's normal attachments,
// relaxes it so that a structurally distant pair (e.g. an in-region prefix
// anycast onto a neighbouring region's location) is not consistently above
// threshold — the paper's stated tuning criterion. Connections to
// locations the prefix does not normally use (e.g. after a routing
// accident) get no such relief.
func (w *World) TargetFor(p netmodel.PrefixID, c netmodel.CloudID) float64 {
	q := w.Clouds[c].Provider
	pref := w.Prefixes[p]
	t := w.targets[q][w.Metros[pref.Metro].Region][pref.Device]
	for _, att := range w.attachments[q][p] {
		if att.Cloud != c {
			continue
		}
		base := w.BasePathRTT(w.InitialPath(c, pref.BGPPrefix), p)
		if adj := base*1.3 + 8; adj > t {
			t = adj
		}
		break
	}
	return t
}

// ResolvePrefix maps a /24 base address back to its prefix (the
// production system resolves clients against the BGP table; the synthetic
// world keeps an exact index).
func (w *World) ResolvePrefix(base uint32) (netmodel.PrefixID, bool) {
	p, ok := w.byBase[base]
	return p, ok
}

// PrefixCIDR renders a prefix's /24 in CIDR notation.
func (w *World) PrefixCIDR(p netmodel.PrefixID) string {
	return ipaddr.MakePrefix(ipaddr.Addr(w.Prefixes[p].Base), 24).String()
}

// BGPPrefixCIDR renders a BGP-announced prefix in CIDR notation.
func (w *World) BGPPrefixCIDR(bp netmodel.BGPPrefixID) string {
	b := w.BGPPrefixes[bp]
	return ipaddr.MakePrefix(ipaddr.Addr(b.Base), b.MaskLen).String()
}

// PrefixRegion returns the region a prefix's metro belongs to.
func (w *World) PrefixRegion(p netmodel.PrefixID) netmodel.Region {
	return w.Metros[w.Prefixes[p].Metro].Region
}

// BaseContributions returns the static per-AS base latency contributions of
// a path serving the given prefix, ordered cloud → middle ASes → client.
// The cloud segment is attributed to the owning provider's cloud ASN.
// Inter-region propagation is attributed to the first middle AS (the one
// carrying the long haul).
func (w *World) BaseContributions(path netmodel.Path, p netmodel.PrefixID) []ASContribution {
	out := make([]ASContribution, 0, len(path.Middle)+2)
	cloud := w.Clouds[path.Cloud]
	out = append(out, ASContribution{AS: w.CloudASNOf(path.Cloud), Segment: netmodel.SegCloud, MS: w.CloudBaseMS[path.Cloud]})
	clientReg := w.PrefixRegion(p)
	prop := w.RegionPropMS[cloud.Region][clientReg]
	for i, a := range path.Middle {
		ms := w.ASBaseMS[a]
		if i == 0 {
			ms += prop
		}
		out = append(out, ASContribution{AS: a, Segment: netmodel.SegMiddle, MS: ms})
	}
	out = append(out, ASContribution{AS: path.Client, Segment: netmodel.SegClient, MS: w.PrefixBaseMS[p]})
	return out
}

// BasePathRTT sums the base contributions of a path for a prefix.
func (w *World) BasePathRTT(path netmodel.Path, p netmodel.PrefixID) float64 {
	var sum float64
	for _, c := range w.BaseContributions(path, p) {
		sum += c.MS
	}
	return sum
}

// AtomKey identifies a BGP atom: the set of BGP prefixes that share
// identical AS-level paths from every cloud location (Broido & claffy's
// policy atoms, referenced by the paper when comparing grouping choices).
func (w *World) AtomKey(bp netmodel.BGPPrefixID) string {
	keys := make([]string, 0, len(w.Clouds))
	for _, c := range w.Clouds {
		keys = append(keys, w.InitialPath(c.ID, bp).FullKey())
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += k + ";"
	}
	return out
}

// Stats summarizes entity counts for Table 2.
type Stats struct {
	Providers   int
	Clouds      int
	Metros      int
	ASes        int
	EyeballASes int
	BGPPrefixes int
	Prefix24s   int
	Clients     int
}

// Stats returns entity counts.
func (w *World) Stats() Stats {
	s := Stats{
		Providers:   len(w.Providers),
		Clouds:      len(w.Clouds),
		Metros:      len(w.Metros),
		ASes:        len(w.ASes),
		BGPPrefixes: len(w.BGPPrefixes),
		Prefix24s:   len(w.Prefixes),
	}
	for _, as := range w.ASes {
		if as.Type == netmodel.ASEyeball {
			s.EyeballASes++
		}
	}
	for _, p := range w.Prefixes {
		s.Clients += p.ActiveClients
	}
	return s
}
