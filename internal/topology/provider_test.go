package topology

import (
	"reflect"
	"testing"

	"blameit/internal/netmodel"
)

// TestGenerateDeterministicAcrossProviders: the whole multi-provider world
// is a pure function of (scale, seed).
func TestGenerateDeterministicAcrossProviders(t *testing.T) {
	for _, providers := range []int{1, 2, 3} {
		scale := SmallScale()
		scale.Providers = providers
		a := Generate(scale, 42)
		b := Generate(scale, 42)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("providers=%d: two Generate runs with the same seed differ", providers)
		}
	}
}

// TestProviderZeroInvariance is the invariant the golden/replay fixtures
// rest on: adding providers must not perturb anything provider 0 owns —
// its clouds keep their IDs, names, base latencies, per-prefix
// attachments, and AS-level routes. A 3-provider world is the 1-provider
// world plus appended edges.
func TestProviderZeroInvariance(t *testing.T) {
	one := Generate(SmallScale(), 42)
	scale := SmallScale()
	scale.Providers = 3
	three := Generate(scale, 42)

	if got := three.NumProviders(); got != 3 {
		t.Fatalf("NumProviders() = %d, want 3", got)
	}
	if one.CloudASN() != three.CloudASN() {
		t.Fatalf("provider-0 cloud ASN changed: %d vs %d", one.CloudASN(), three.CloudASN())
	}
	// Provider 0's clouds must be a prefix of the 3-provider cloud list,
	// byte for byte, and every added cloud must belong to a later provider.
	if len(three.Clouds) <= len(one.Clouds) {
		t.Fatalf("3-provider world has %d clouds, 1-provider has %d — extra providers added no edges",
			len(three.Clouds), len(one.Clouds))
	}
	for i, c := range one.Clouds {
		if !reflect.DeepEqual(c, three.Clouds[i]) {
			t.Fatalf("cloud %d differs: %+v vs %+v", i, c, three.Clouds[i])
		}
		if one.CloudBaseMS[c.ID] != three.CloudBaseMS[c.ID] {
			t.Fatalf("cloud %d base latency differs: %v vs %v", i, one.CloudBaseMS[c.ID], three.CloudBaseMS[c.ID])
		}
	}
	for _, c := range three.Clouds[len(one.Clouds):] {
		if c.Provider == 0 {
			t.Fatalf("appended cloud %d belongs to provider 0", c.ID)
		}
	}
	// The shared fabric is untouched: same ASes (plus the two new provider
	// identities), same prefixes, same BGP prefixes.
	if len(three.ASes) != len(one.ASes)+2 {
		t.Fatalf("AS count %d, want %d (+2 provider identities)", len(three.ASes), len(one.ASes)+2)
	}
	for asn, as := range one.ASes {
		if got, ok := three.ASes[asn]; !ok || !reflect.DeepEqual(as, got) {
			t.Fatalf("shared AS %d differs: %+v vs %+v", asn, as, got)
		}
	}
	if !reflect.DeepEqual(one.Prefixes, three.Prefixes) {
		t.Fatal("client prefixes differ between 1- and 3-provider worlds")
	}
	if !reflect.DeepEqual(one.BGPPrefixes, three.BGPPrefixes) {
		t.Fatal("BGP prefixes differ between 1- and 3-provider worlds")
	}
	// Provider 0's steering is untouched: identical attachments and
	// badness targets for every prefix.
	for _, p := range one.Prefixes {
		if !reflect.DeepEqual(one.Attachments(p.ID), three.Attachments(p.ID)) {
			t.Fatalf("prefix %d attachments differ", p.ID)
		}
	}
	// Targets are derived from the provider's served population, which
	// legitimately shrinks when clients split across providers — so they
	// need only stay positive, not equal.
	for reg := netmodel.Region(0); reg < netmodel.Region(netmodel.NumRegions); reg++ {
		for d := netmodel.DeviceClass(0); d < netmodel.DeviceClass(netmodel.NumDeviceClasses); d++ {
			if three.Target(reg, d) <= 0 {
				t.Fatalf("target(%v, %v) = %v, want > 0", reg, d, three.Target(reg, d))
			}
		}
	}
	// And provider 0's routes: same initial path for every (cloud, BGP
	// prefix) pair it owns.
	for _, c := range one.Clouds {
		for _, bp := range one.BGPPrefixes {
			if !one.InitialPath(c.ID, bp.ID).Equal(three.InitialPath(c.ID, bp.ID)) {
				t.Fatalf("initial path (%d, %d) differs", c.ID, bp.ID)
			}
		}
	}
}

// TestProviderPopulations: every provider serves its own nonempty prefix
// population; every prefix has a home provider; overlap stays within the
// configured share's plausible range.
func TestProviderPopulations(t *testing.T) {
	scale := SmallScale()
	scale.Providers = 3
	w := Generate(scale, 42)

	served := make([]int, len(w.Prefixes))
	for q := 0; q < 3; q++ {
		qq := netmodel.ProviderID(q)
		pop := w.Population(qq)
		if len(pop) == 0 {
			t.Fatalf("provider %d serves no prefixes", q)
		}
		for _, pid := range pop {
			served[pid]++
			if !w.ServedBy(qq, pid) {
				t.Fatalf("Population(%d) lists prefix %d but ServedBy disagrees", q, pid)
			}
			if len(w.AttachmentsFor(qq, pid)) == 0 {
				t.Fatalf("provider %d serves prefix %d with no attachments", q, pid)
			}
			for _, att := range w.AttachmentsFor(qq, pid) {
				if w.Clouds[att.Cloud].Provider != qq {
					t.Fatalf("provider %d steers prefix %d to provider %d's cloud %d",
						q, pid, w.Clouds[att.Cloud].Provider, att.Cloud)
				}
			}
		}
	}
	for pid, n := range served {
		if n == 0 {
			t.Fatalf("prefix %d has no serving provider", pid)
		}
	}
	// Provider 0 of a single-provider world serves everything.
	if pop := Generate(SmallScale(), 42).Population(0); len(pop) != len(w.Prefixes) {
		t.Fatalf("1-provider world serves %d/%d prefixes", len(pop), len(w.Prefixes))
	}
}

// TestProviderASNsDisjoint: provider cloud ASNs collide with no tier-1,
// transit, or eyeball AS at the maximum provider count.
func TestProviderASNsDisjoint(t *testing.T) {
	scale := SmallScale()
	scale.Providers = MaxProviders
	w := Generate(scale, 42)
	for q := 0; q < MaxProviders; q++ {
		asn := w.ProviderASN(netmodel.ProviderID(q))
		as, ok := w.ASes[asn]
		if !ok {
			t.Fatalf("provider %d ASN %d missing from the AS map", q, asn)
		}
		if as.Type != netmodel.ASCloud {
			t.Fatalf("provider %d ASN %d registered as %v, want cloud", q, asn, as.Type)
		}
		if got, ok := w.ProviderByASN(asn); !ok || got != netmodel.ProviderID(q) {
			t.Fatalf("ProviderByASN(%d) = %v, %v; want %d, true", asn, got, ok, q)
		}
	}
}
