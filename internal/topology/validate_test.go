package topology

import (
	"math"
	"strings"
	"testing"
)

// TestScaleValidate exercises every rejection branch plus the presets,
// which must all be valid.
func TestScaleValidate(t *testing.T) {
	for _, tc := range []struct {
		name    string
		mutate  func(*Scale)
		wantErr string // substring; "" = valid
	}{
		{"small preset", func(s *Scale) {}, ""},
		{"max providers", func(s *Scale) { s.Providers = MaxProviders }, ""},
		{"share bounds", func(s *Scale) {
			s.CellularASShare, s.WiFiShare, s.SecondaryCloudShare, s.OverlapShare = 0, 1, 0, 1
		}, ""},
		{"zero providers", func(s *Scale) { s.Providers = 0 }, "Providers"},
		{"negative providers", func(s *Scale) { s.Providers = -2 }, "Providers"},
		{"too many providers", func(s *Scale) { s.Providers = MaxProviders + 1 }, "Providers"},
		{"zero clouds", func(s *Scale) { s.CloudsPerRegion = 0 }, "CloudsPerRegion"},
		{"zero metros", func(s *Scale) { s.MetrosPerRegion = 0 }, "MetrosPerRegion"},
		{"zero tier1", func(s *Scale) { s.Tier1Count = 0 }, "Tier1Count"},
		{"zero transit", func(s *Scale) { s.TransitPerRegion = 0 }, "TransitPerRegion"},
		{"zero eyeballs", func(s *Scale) { s.EyeballsPerRegion = 0 }, "EyeballsPerRegion"},
		{"zero min BGP", func(s *Scale) { s.MinBGPPerAS = 0 }, "MinBGPPerAS"},
		{"inverted BGP range", func(s *Scale) { s.MaxBGPPerAS = s.MinBGPPerAS - 1 }, "MaxBGPPerAS"},
		{"negative mask shorten", func(s *Scale) { s.MaxMaskShorten = -1 }, "MaxMaskShorten"},
		{"huge mask shorten", func(s *Scale) { s.MaxMaskShorten = 9 }, "MaxMaskShorten"},
		{"cellular share > 1", func(s *Scale) { s.CellularASShare = 1.5 }, "CellularASShare"},
		{"NaN cellular share", func(s *Scale) { s.CellularASShare = math.NaN() }, "CellularASShare"},
		{"negative wifi share", func(s *Scale) { s.WiFiShare = -0.2 }, "WiFiShare"},
		{"secondary share > 1", func(s *Scale) { s.SecondaryCloudShare = 2 }, "SecondaryCloudShare"},
		{"overlap share > 1", func(s *Scale) { s.OverlapShare = 1.01 }, "OverlapShare"},
		{"negative overlap share", func(s *Scale) { s.OverlapShare = -0.5 }, "OverlapShare"},
		{"NaN overlap share", func(s *Scale) { s.OverlapShare = math.NaN() }, "OverlapShare"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sc := SmallScale()
			tc.mutate(&sc)
			err := sc.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() accepted invalid scale %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("Validate() = %q, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

// TestPresetScalesValid: every preset must pass its own validation.
func TestPresetScalesValid(t *testing.T) {
	for name, sc := range map[string]Scale{
		"small": SmallScale(), "medium": MediumScale(), "large": LargeScale(),
	} {
		if err := sc.Validate(); err != nil {
			t.Errorf("%s preset invalid: %v", name, err)
		}
	}
}
