package chaos

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"blameit/internal/ingest"
	"blameit/internal/metrics"
	"blameit/internal/netmodel"
	"blameit/internal/probe"
	"blameit/internal/trace"
)

const testPrefixes = 50

// fixedSource emits nPer records for every requested bucket.
type fixedSource struct {
	nPer  int
	calls int
}

func (f *fixedSource) ObservationsAt(_ context.Context, b netmodel.Bucket, buf []trace.Observation) ([]trace.Observation, error) {
	f.calls++
	out := buf[:0]
	for i := 0; i < f.nPer; i++ {
		out = append(out, trace.Observation{
			Prefix: netmodel.PrefixID(i % testPrefixes), Cloud: netmodel.CloudID(i % 3),
			Device: netmodel.DeviceClass(i % 2), Bucket: b,
			Samples: 40, MeanRTT: 50 + float64(i), Clients: 10,
		})
	}
	return out, nil
}

// drain runs the chaos source over [0, horizon) through a quarantine,
// retrying transient errors like the pipeline does, and returns the
// quarantine plus the total records that survived filtering.
func drain(t *testing.T, s *Source, q *ingest.Quarantine, horizon netmodel.Bucket) (kept int) {
	t.Helper()
	var buf []trace.Observation
	for b := netmodel.Bucket(0); b < horizon; b++ {
		var err error
		for attempt := 0; ; attempt++ {
			buf, err = s.ObservationsAt(context.Background(), b, buf[:0])
			if err == nil {
				break
			}
			if !ingest.IsTransient(err) || attempt > 2 {
				t.Fatalf("bucket %d: non-transient or persistent error: %v", b, err)
			}
		}
		buf = q.Filter(b, buf)
		kept += len(buf)
	}
	return kept
}

func TestSourceDeterministic(t *testing.T) {
	cfg := Heavy(7)
	run := func() (SourceStats, [4]int64) {
		q := ingest.NewQuarantine(testPrefixes, 3)
		s := NewSource(&fixedSource{nPer: 30}, cfg, testPrefixes)
		drain(t, s, q, 100)
		var counts [4]int64
		for r := ingest.Reason(0); int(r) < 4; r++ {
			counts[r] = q.Count(r)
		}
		return s.Stats(), counts
	}
	st1, q1 := run()
	st2, q2 := run()
	if st1 != st2 || q1 != q2 {
		t.Errorf("two identical chaos runs diverged:\n%+v %v\n%+v %v", st1, q1, st2, q2)
	}
	if st1.Corrupted == 0 || st1.Held == 0 || st1.Duplicated == 0 || st1.TransientErrs == 0 || st1.DroppedBatches == 0 {
		t.Errorf("heavy profile injected nothing for some fault class: %+v", st1)
	}
}

// TestSourceAccounting: every record the source injures must show up in
// exactly one quarantine bin — the books balance.
func TestSourceAccounting(t *testing.T) {
	cfg := Heavy(3)
	q := ingest.NewQuarantine(testPrefixes, 3)
	s := NewSource(&fixedSource{nPer: 40}, cfg, testPrefixes)
	kept := drain(t, s, q, 200)
	st := s.Stats()

	if got := q.Count(ingest.ReasonCorrupt); got != st.Corrupted {
		t.Errorf("corrupt: injected %d, quarantined %d", st.Corrupted, got)
	}
	if got := q.Count(ingest.ReasonLate); got != st.LateDelivered {
		t.Errorf("late: delivered %d, quarantined %d", st.LateDelivered, got)
	}
	if got := q.Count(ingest.ReasonDuplicate); got != st.Duplicated {
		t.Errorf("duplicate: injected %d, quarantined %d", st.Duplicated, got)
	}
	if got := int64(s.PendingLate()); got != st.Held-st.LateDelivered {
		t.Errorf("pending late = %d, want held-delivered = %d", got, st.Held-st.LateDelivered)
	}
	wantKept := st.Read - st.DroppedRecords - st.Corrupted - st.Held
	if int64(kept) != wantKept {
		t.Errorf("kept %d records, want read-dropped-corrupted-held = %d", kept, wantKept)
	}
}

// TestCorruptionKindsAllQuarantined forces CorruptProb to 1 so every
// mutation kind is exercised, and requires the quarantine to reject all
// of them.
func TestCorruptionKindsAllQuarantined(t *testing.T) {
	cfg := Config{Seed: 1, CorruptProb: 1}
	q := ingest.NewQuarantine(testPrefixes, 3)
	s := NewSource(&fixedSource{nPer: 40}, cfg, testPrefixes)
	kept := drain(t, s, q, 20)
	if kept != 0 {
		t.Errorf("%d corrupt records survived the quarantine", kept)
	}
	st := s.Stats()
	if st.Corrupted != st.Read || q.Count(ingest.ReasonCorrupt) != st.Corrupted {
		t.Errorf("corrupted %d of %d read, quarantined %d", st.Corrupted, st.Read, q.Count(ingest.ReasonCorrupt))
	}
}

// TestLateDeliveryOutOfBucket: held records must come back in a strictly
// later bucket, carrying their original bucket stamp.
func TestLateDeliveryOutOfBucket(t *testing.T) {
	cfg := Config{Seed: 2, LateProb: 0.5, LateMaxDelay: 4}
	s := NewSource(&fixedSource{nPer: 20}, cfg, testPrefixes)
	var buf []trace.Observation
	for b := netmodel.Bucket(0); b < 30; b++ {
		var err error
		buf, err = s.ObservationsAt(context.Background(), b, buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range buf {
			if o.Bucket > b {
				t.Fatalf("record from future bucket %d delivered at %d", o.Bucket, b)
			}
			if o.Bucket < b && b-o.Bucket > cfg.LateMaxDelay {
				t.Fatalf("record from bucket %d delivered at %d, beyond max delay %d", o.Bucket, b, cfg.LateMaxDelay)
			}
		}
	}
	st := s.Stats()
	if st.Held == 0 || st.LateDelivered == 0 {
		t.Fatalf("late injection inactive: %+v", st)
	}
}

func TestSourceTransientErrorRetrySucceeds(t *testing.T) {
	cfg := Config{Seed: 5, TransientErrProb: 1} // every bucket's first read fails
	base := &fixedSource{nPer: 5}
	s := NewSource(base, cfg, testPrefixes)
	_, err := s.ObservationsAt(context.Background(), 3, nil)
	if !ingest.IsTransient(err) {
		t.Fatalf("first read returned %v, want a transient error", err)
	}
	out, err := s.ObservationsAt(context.Background(), 3, nil)
	if err != nil || len(out) != 5 {
		t.Fatalf("retry: got %d records, err %v", len(out), err)
	}
	if s.Stats().TransientErrs != 1 {
		t.Errorf("TransientErrs = %d, want 1 (one per bucket)", s.Stats().TransientErrs)
	}
}

func TestSourceLazyMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	s := NewSource(&fixedSource{nPer: 10}, Config{Seed: 1}, testPrefixes)
	s.SetMetrics(reg)
	if _, err := s.ObservationsAt(context.Background(), 0, nil); err != nil {
		t.Fatal(err)
	}
	for _, nv := range reg.Snapshot().Counters {
		if strings.HasPrefix(nv.Name, "chaos.") {
			t.Fatalf("counter %s registered with injection disabled", nv.Name)
		}
	}
	s2 := NewSource(&fixedSource{nPer: 10}, Config{Seed: 1, CorruptProb: 1}, testPrefixes)
	s2.SetMetrics(reg)
	if _, err := s2.ObservationsAt(context.Background(), 0, nil); err != nil {
		t.Fatal(err)
	}
	if v, ok := reg.Snapshot().Counter("chaos.source.corrupted"); !ok || v != 10 {
		t.Errorf("chaos.source.corrupted = %d (ok=%v), want 10", v, ok)
	}
}

// steadyProber returns a fixed 3-hop traceroute.
type steadyProber struct {
	counters probe.Counters
	calls    int
}

func (s *steadyProber) Traceroute(c netmodel.CloudID, p netmodel.PrefixID, b netmodel.Bucket, purpose probe.Purpose) probe.Traceroute {
	s.calls++
	return probe.Traceroute{Cloud: c, Prefix: p, Bucket: b, Hops: []probe.Hop{
		{AS: 100, Segment: netmodel.SegCloud, CumulativeMS: 5},
		{AS: 101, Segment: netmodel.SegMiddle, CumulativeMS: 25},
		{AS: 102, Segment: netmodel.SegClient, CumulativeMS: 33},
	}}
}

func (s *steadyProber) Counters() *probe.Counters { return &s.counters }

func TestProberInjectsFailuresDeterministically(t *testing.T) {
	cfg := Config{Seed: 9, ProbeFailProb: 0.3}
	run := func() (ProberStats, int) {
		cp := NewProber(&steadyProber{}, cfg)
		fails := 0
		for b := netmodel.Bucket(0); b < 50; b++ {
			for p := netmodel.PrefixID(0); p < 10; p++ {
				if _, err := cp.TracerouteErr(context.Background(), 1, p, b, probe.OnDemand); err != nil {
					fails++
				}
			}
		}
		return cp.Stats(), fails
	}
	st1, f1 := run()
	st2, f2 := run()
	if st1 != st2 || f1 != f2 {
		t.Errorf("chaos prober not deterministic: %+v/%d vs %+v/%d", st1, f1, st2, f2)
	}
	if st1.FailuresInjected == 0 || int64(f1) != st1.FailuresInjected {
		t.Errorf("failures %d, errors seen %d", st1.FailuresInjected, f1)
	}
	// 30% of 500 probes: expect failures in a broad band around 150.
	if f1 < 100 || f1 > 200 {
		t.Errorf("failure count %d far from the 30%% rate", f1)
	}
}

// TestProberRetriesRollIndependently: a failed attempt followed by a
// retry of the same probe must make a fresh decision, so a retrying
// caller usually recovers.
func TestProberRetriesRollIndependently(t *testing.T) {
	cfg := Config{Seed: 4, ProbeFailProb: 0.5}
	cp := NewProber(&steadyProber{}, cfg)
	recovered := 0
	for p := netmodel.PrefixID(0); p < 100; p++ {
		if _, err := cp.TracerouteErr(context.Background(), 1, p, 10, probe.OnDemand); err == nil {
			continue
		}
		// Retry the identical probe; at 50% it should often succeed.
		if _, err := cp.TracerouteErr(context.Background(), 1, p, 10, probe.OnDemand); err == nil {
			recovered++
		}
	}
	if recovered == 0 {
		t.Fatal("no retried probe ever recovered — attempts are not rolled independently")
	}
}

func TestProberTruncation(t *testing.T) {
	cfg := Config{Seed: 6, TruncateProb: 1}
	cp := NewProber(&steadyProber{}, cfg)
	tr, err := cp.TracerouteErr(context.Background(), 1, 2, 10, probe.OnDemand)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Hops) == 0 || len(tr.Hops) >= 3 {
		t.Fatalf("truncated traceroute has %d hops, want a strict nonempty prefix of 3", len(tr.Hops))
	}
	// A truncated probe must be unusable, not mislocalized.
	full := (&steadyProber{}).Traceroute(1, 2, 0, probe.Background)
	if res := probe.Compare(tr, full); res.OK {
		t.Errorf("truncated traceroute localized: %+v", res)
	}
	if cp.Stats().Truncated != 1 {
		t.Errorf("Truncated = %d, want 1", cp.Stats().Truncated)
	}
}

// TestProberWrappedByRetrier: the chaos prober implements ErrProber, so
// the retrying wrapper recovers most injected failures end to end.
func TestProberWrappedByRetrier(t *testing.T) {
	base := &steadyProber{}
	cp := NewProber(base, Config{Seed: 11, ProbeFailProb: 0.2})
	rp := probe.NewRetryingProber(cp, probe.RetryConfig{MaxAttempts: 3, BreakerThreshold: -1})
	failed := 0
	for p := netmodel.PrefixID(0); p < 200; p++ {
		if _, err := rp.TracerouteErr(context.Background(), 1, p, 5, probe.OnDemand); err != nil {
			failed++
		}
	}
	// P(3 consecutive failures) = 0.8% — nearly everything recovers.
	if failed > 10 {
		t.Errorf("%d of 200 probes failed through the retrier; injected-fault recovery is broken", failed)
	}
	if rp.Stats().Failures != cp.Stats().FailuresInjected {
		t.Errorf("retrier saw %d failures, injector injected %d", rp.Stats().Failures, cp.Stats().FailuresInjected)
	}
}

func TestProfiles(t *testing.T) {
	for _, name := range []string{"off", "light", "heavy", ""} {
		cfg, err := Profile(name, 1)
		if err != nil {
			t.Fatalf("Profile(%q) = %v", name, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("profile %q invalid: %v", name, err)
		}
		if (name == "light" || name == "heavy") != cfg.Enabled() {
			t.Errorf("profile %q Enabled() = %v", name, cfg.Enabled())
		}
	}
	if _, err := Profile("extreme", 1); err == nil || !strings.Contains(err.Error(), "extreme") {
		t.Errorf("unknown profile error = %v, want it named", err)
	}
}

func TestConfigValidate(t *testing.T) {
	good := Heavy(1)
	if err := good.Validate(); err != nil {
		t.Fatalf("heavy profile rejected: %v", err)
	}
	for _, tc := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"negative prob", func(c *Config) { c.CorruptProb = -0.1 }},
		{"prob above one", func(c *Config) { c.ProbeFailProb = 1.5 }},
		{"NaN prob", func(c *Config) { c.LateProb = math.NaN() }},
		{"negative delay", func(c *Config) { c.LateMaxDelay = -1 }},
	} {
		cfg := Heavy(1)
		tc.mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("%s: Validate accepted it", tc.name)
		}
	}
}

// errSource always fails fatally; the chaos source must pass base errors
// through untouched.
type errSource struct{}

func (errSource) ObservationsAt(context.Context, netmodel.Bucket, []trace.Observation) ([]trace.Observation, error) {
	return nil, errors.New("base: permanent failure")
}

func TestSourcePropagatesBaseErrors(t *testing.T) {
	s := NewSource(errSource{}, Config{Seed: 1}, testPrefixes)
	_, err := s.ObservationsAt(context.Background(), 0, nil)
	if err == nil || ingest.IsTransient(err) {
		t.Fatalf("base error not passed through verbatim: %v", err)
	}
}
