package chaos_test

import (
	"testing"

	"blameit/internal/bgp"
	"blameit/internal/chaos"
	"blameit/internal/faults"
	"blameit/internal/ingest"
	"blameit/internal/metrics"
	"blameit/internal/netmodel"
	"blameit/internal/pipeline"
	"blameit/internal/probe"
	"blameit/internal/sim"
	"blameit/internal/topology"
)

// armResult is one arm of the A/B run: identical world and fault
// schedule, with or without chaos injection.
type armResult struct {
	pipe *pipeline.Pipeline
	csrc *chaos.Source
	cpr  *chaos.Prober
	reg  *metrics.Registry

	// Verdict grading against simulator ground truth.
	probed, degraded, localized int
	correct, wrong, graded      int
	// Health observed across reports.
	unhealthyReports int
	probeFailureSum  int64
}

// runArm drives a full 1-warmup + 7-day run over the shared world and
// fault schedule, grading every active-phase verdict.
func runArm(t *testing.T, chaosOn bool, fs []faults.Fault, days int) *armResult {
	t.Helper()
	w := topology.Generate(topology.SmallScale(), 42)
	horizon := netmodel.Bucket((days + 1) * netmodel.BucketsPerDay)
	tbl := bgp.NewTable(w, bgp.DefaultChurnConfig(), horizon, 7)
	s := sim.New(w, tbl, faults.NewSchedule(fs), sim.DefaultConfig(99))

	cfg := pipeline.DefaultConfig()
	res := &armResult{reg: metrics.NewRegistry()}
	cfg.Metrics = res.reg
	deps := pipeline.SimDeps(s, cfg.ProbeNoiseMS)
	if chaosOn {
		ccfg := chaos.Heavy(1234)
		res.csrc = chaos.NewSource(deps.Source, ccfg, netmodel.PrefixID(len(w.Prefixes)))
		res.cpr = chaos.NewProber(deps.Prober, ccfg)
		deps.Source = res.csrc
		deps.Prober = res.cpr
	}
	p := pipeline.New(deps, cfg)
	res.pipe = p
	if err := p.Warmup(0, netmodel.BucketsPerDay); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	err := p.Run(netmodel.BucketsPerDay, horizon, func(rep *pipeline.Report) {
		if rep.Health.Source != pipeline.Healthy || rep.Health.Prober != pipeline.Healthy {
			res.unhealthyReports++
		}
		res.probeFailureSum += rep.Health.ProbeFailures
		for _, v := range rep.Verdicts {
			if !v.Probed {
				continue
			}
			res.probed++
			if v.Degraded {
				res.degraded++
				continue
			}
			if !v.OK {
				continue
			}
			res.localized++
			// Grade only clear-cut cases: the ground-truth inflation is
			// dominant, sizable, and in the middle segment.
			target := v.Issue.Prefixes[0]
			inf := s.DominantInflation(target, v.Issue.Cloud, rep.To)
			if inf.Segment != netmodel.SegMiddle || !inf.Dominant || inf.TotalMS < 20 {
				continue
			}
			res.graded++
			if v.AS == inf.AS {
				res.correct++
			} else {
				res.wrong++
			}
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func (r *armResult) wrongFrac() float64 {
	if r.graded == 0 {
		return 0
	}
	return float64(r.wrong) / float64(r.graded)
}

// TestChaosEndToEnd is the headline robustness test: a 7-day run under
// the heavy chaos profile (20% probe failures, 5% corrupt records,
// bursty late delivery) against a fault-free-infrastructure control arm
// over the identical world and incident schedule. The chaos arm must
// finish without panics, account for every injected fault, and degrade
// gracefully: fewer localizations are fine, *wrong* localizations are
// not.
func TestChaosEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("7-day chaos A/B run skipped in -short mode")
	}
	const days = 7
	w := topology.Generate(topology.SmallScale(), 42)
	// One middle-AS incident per day across regions, long enough (90 min)
	// for detection and probing, starting a full day after warmup so
	// baselines exist. A cloud and a client fault ride along so the chaos
	// arm also exercises non-middle classifications.
	regions := []netmodel.Region{netmodel.RegionUSA, netmodel.RegionEurope, netmodel.RegionEastAsia}
	var fs []faults.Fault
	for d := 1; d < days; d++ {
		tr := w.Transits[regions[d%len(regions)]]
		fs = append(fs, faults.Fault{
			Kind: faults.MiddleASFault, AS: tr[d%len(tr)], ScopeCloud: faults.NoCloud,
			Start:    netmodel.Bucket((d + 1) * netmodel.BucketsPerDay),
			Duration: 18, ExtraMS: 90,
		})
	}
	fs = append(fs,
		faults.Fault{Kind: faults.CloudFault, Cloud: w.Clouds[0].ID, ScopeCloud: faults.NoCloud,
			Start: 2*netmodel.BucketsPerDay + 100, Duration: 12, ExtraMS: 60},
		faults.Fault{Kind: faults.ClientPrefixFault, Prefix: w.Prefixes[0].ID,
			Start: 3*netmodel.BucketsPerDay + 50, Duration: 12, ExtraMS: 70},
	)

	golden := runArm(t, false, fs, days)
	hostile := runArm(t, true, fs, days)

	// --- Control arm sanity: no chaos, no fault bookkeeping. ---
	if n := golden.pipe.Quarantine().Total(); n != 0 {
		t.Errorf("control arm quarantined %d records", n)
	}
	if r, d := golden.pipe.SourceFaults(); r != 0 || d != 0 {
		t.Errorf("control arm saw source faults: retries=%d dark=%d", r, d)
	}
	if golden.unhealthyReports != 0 {
		t.Errorf("control arm reported %d unhealthy intervals", golden.unhealthyReports)
	}
	if golden.graded == 0 || golden.correct == 0 {
		t.Fatalf("control arm graded nothing (graded=%d correct=%d) — test world too quiet", golden.graded, golden.correct)
	}

	// --- Every injected fault must be accounted for. ---
	st := hostile.csrc.Stats()
	q := hostile.pipe.Quarantine()
	if st.Corrupted == 0 || st.Held == 0 || st.Duplicated == 0 || st.TransientErrs == 0 {
		t.Fatalf("heavy profile injected nothing: %+v", st)
	}
	if got := q.Count(ingest.ReasonCorrupt); got != st.Corrupted {
		t.Errorf("corrupt: injected %d, quarantined %d", st.Corrupted, got)
	}
	if got := q.Count(ingest.ReasonLate); got != st.LateDelivered {
		t.Errorf("late: delivered %d, quarantined %d", st.LateDelivered, got)
	}
	if got := q.Count(ingest.ReasonDuplicate); got != st.Duplicated {
		t.Errorf("duplicate: injected %d, quarantined %d", st.Duplicated, got)
	}
	if got := int64(hostile.csrc.PendingLate()); got != st.Held-st.LateDelivered {
		t.Errorf("pending late = %d, want %d", got, st.Held-st.LateDelivered)
	}
	retries, dark := hostile.pipe.SourceFaults()
	if retries+dark != st.TransientErrs {
		t.Errorf("transient errors: injected %d, pipeline absorbed %d retries + %d dark buckets", st.TransientErrs, retries, dark)
	}
	rp, ok := hostile.pipe.Prober.(*probe.RetryingProber)
	if !ok {
		t.Fatal("pipeline did not wrap the chaos prober in a RetryingProber")
	}
	pst := hostile.cpr.Stats()
	if pst.FailuresInjected == 0 || pst.Truncated == 0 {
		t.Fatalf("prober injected nothing: %+v", pst)
	}
	if rp.Stats().Failures != pst.FailuresInjected {
		t.Errorf("retrier saw %d failures, injector injected %d", rp.Stats().Failures, pst.FailuresInjected)
	}
	// The same books, through the metrics registry.
	snap := hostile.reg.Snapshot()
	for name, want := range map[string]int64{
		"chaos.source.corrupted":      st.Corrupted,
		"chaos.source.late_delivered": st.LateDelivered,
		"chaos.source.duplicated":     st.Duplicated,
		"chaos.source.transient_errs": st.TransientErrs,
		"chaos.probe.failures":        pst.FailuresInjected,
		"ingest.quarantine.corrupt":   st.Corrupted,
		"pipeline.source.retries":     retries,
	} {
		if got, ok := snap.Counter(name); !ok || got != want {
			t.Errorf("counter %s = %d (ok=%v), want %d", name, got, ok, want)
		}
	}

	// --- Degradation must be visible... ---
	if hostile.unhealthyReports == 0 {
		t.Error("no report flagged the data plane unhealthy under heavy chaos")
	}
	if hostile.probeFailureSum != pst.FailuresInjected {
		t.Errorf("health reports account %d probe failures, injector injected %d", hostile.probeFailureSum, pst.FailuresInjected)
	}
	if hostile.degraded == 0 {
		t.Error("no degraded verdicts despite 20% probe failures")
	}
	if golden.degraded != 0 {
		t.Errorf("control arm emitted %d degraded verdicts", golden.degraded)
	}

	// --- ...and graceful: shortfall, never wrong answers. ---
	if hostile.correct == 0 {
		t.Error("chaos arm localized nothing correctly over 7 days")
	}
	if hostile.localized*2 < golden.localized {
		t.Errorf("chaos arm localized %d issues vs control %d — degraded more than half", hostile.localized, golden.localized)
	}
	if hf, gf := hostile.wrongFrac(), golden.wrongFrac(); hf > gf+0.05 {
		t.Errorf("wrong-localization fraction %.3f under chaos vs %.3f control — corrupt data is flipping verdicts", hf, gf)
	}
	t.Logf("control: probed=%d localized=%d graded=%d correct=%d wrong=%d",
		golden.probed, golden.localized, golden.graded, golden.correct, golden.wrong)
	t.Logf("chaos:   probed=%d localized=%d graded=%d correct=%d wrong=%d degraded=%d",
		hostile.probed, hostile.localized, hostile.graded, hostile.correct, hostile.wrong, hostile.degraded)
	t.Logf("injected: %+v / %+v ; quarantine: %s ; retries=%d dark=%d", st, pst, q, retries, dark)
}
