// Package chaos provides fault-injecting wrappers for the data plane:
// a Source that corrupts, delays, duplicates, and drops passive
// observations (and fails reads transiently), and a Prober whose
// traceroutes time out or come back truncated. All injection is driven
// by a seeded deterministic hash of the record's identity, so a chaos
// run is exactly reproducible — same seed, same faults — and two runs
// over the same world differ only where injection says they should.
//
// The wrappers inject faults; they never absorb them. The consuming
// side — the ingestion quarantine, the retrying prober, degraded-mode
// localization — is what the injected faults exercise, and every
// injected fault is counted here so tests can demand the two sides'
// books balance.
package chaos

import (
	"context"
	"fmt"
	"math"
	"sort"

	"blameit/internal/ingest"
	"blameit/internal/metrics"
	"blameit/internal/netmodel"
	"blameit/internal/probe"
	"blameit/internal/trace"
)

// Config sets the per-fault injection rates. The zero value injects
// nothing; all probabilities are per record (or per probe attempt).
type Config struct {
	// Seed namespaces every injection decision. Two sources (or a source
	// and a prober) sharing a seed make independent decisions because each
	// fault class hashes under its own tag.
	Seed int64

	// DropBatchProb drops a whole bucket's batch of observations.
	DropBatchProb float64
	// TransientErrProb fails a bucket's first read with a retryable
	// (ingest.Transient) error; the retry succeeds, so SourceRetries >= 1
	// absorbs it and SourceRetries == 0 turns it into a dark bucket.
	TransientErrProb float64
	// CorruptProb mutates a record into one of the corruption kinds the
	// quarantine must catch: NaN / +Inf / negative RTT, negative sample or
	// client counts, or an unknown prefix.
	CorruptProb float64
	// LateProb holds a record back and redelivers it 1..LateMaxDelay
	// buckets later (out of bucket — the quarantine rejects it as late).
	LateProb float64
	// LateMaxDelay bounds the redelivery delay in buckets (minimum 1).
	LateMaxDelay netmodel.Bucket
	// LateBurstProb makes a whole bucket bursty: LateBurstFrac of its
	// records are held back, modeling a collector falling behind.
	LateBurstProb float64
	// LateBurstFrac is the fraction of a bursty bucket's records held.
	LateBurstFrac float64
	// DuplicateProb redelivers a clean record a second time in the same
	// batch (the quarantine deduplicates it).
	DuplicateProb float64

	// AgentChurnProb restarts a fleet agent before it delivers a bucket's
	// partial aggregate: the partial is lost, the agent's epoch bumps and
	// its sequence counter restarts (exercising epoch-scoped dedup). Only
	// the fleet delivery layer reads it; the observation Source ignores
	// it, so raw-path chaos runs are untouched.
	AgentChurnProb float64

	// ProbeFailProb fails one traceroute attempt (per attempt, so a
	// retrying caller usually recovers).
	ProbeFailProb float64
	// TruncateProb cuts a successful traceroute short, keeping a strict
	// prefix of its hops — no error, just an unusable measurement.
	TruncateProb float64
}

// Enabled reports whether the config injects anything at all.
func (c Config) Enabled() bool {
	return c.DropBatchProb > 0 || c.TransientErrProb > 0 || c.CorruptProb > 0 ||
		c.LateProb > 0 || c.LateBurstProb > 0 || c.DuplicateProb > 0 ||
		c.AgentChurnProb > 0 || c.ProbeFailProb > 0 || c.TruncateProb > 0
}

// Validate rejects rates outside [0, 1] and a nonsensical delay bound.
func (c Config) Validate() error {
	check := func(name string, v float64) error {
		if math.IsNaN(v) || v < 0 || v > 1 {
			return fmt.Errorf("chaos: %s %v must be in [0, 1]", name, v)
		}
		return nil
	}
	for _, pr := range []struct {
		name string
		v    float64
	}{
		{"DropBatchProb", c.DropBatchProb},
		{"TransientErrProb", c.TransientErrProb},
		{"CorruptProb", c.CorruptProb},
		{"LateProb", c.LateProb},
		{"LateBurstProb", c.LateBurstProb},
		{"LateBurstFrac", c.LateBurstFrac},
		{"DuplicateProb", c.DuplicateProb},
		{"AgentChurnProb", c.AgentChurnProb},
		{"ProbeFailProb", c.ProbeFailProb},
		{"TruncateProb", c.TruncateProb},
	} {
		if err := check(pr.name, pr.v); err != nil {
			return err
		}
	}
	if c.LateMaxDelay < 0 {
		return fmt.Errorf("chaos: LateMaxDelay %d must be >= 0", c.LateMaxDelay)
	}
	return nil
}

// Light is a gentle profile: faults are visible in the metrics but rare
// enough that accuracy is essentially unaffected.
func Light(seed int64) Config {
	return Config{
		Seed:             seed,
		DropBatchProb:    0.002,
		TransientErrProb: 0.01,
		CorruptProb:      0.01,
		LateProb:         0.005,
		LateMaxDelay:     6,
		LateBurstProb:    0.01,
		LateBurstFrac:    0.25,
		DuplicateProb:    0.005,
		AgentChurnProb:   0.002,
		ProbeFailProb:    0.05,
		TruncateProb:     0.01,
	}
}

// Heavy is the hostile profile the headline chaos test runs under: one
// probe in five fails, one record in twenty is corrupt, and late bursts
// hold back half a bucket.
func Heavy(seed int64) Config {
	return Config{
		Seed:             seed,
		DropBatchProb:    0.01,
		TransientErrProb: 0.05,
		CorruptProb:      0.05,
		LateProb:         0.01,
		LateMaxDelay:     12,
		LateBurstProb:    0.05,
		LateBurstFrac:    0.5,
		DuplicateProb:    0.02,
		AgentChurnProb:   0.01,
		ProbeFailProb:    0.20,
		TruncateProb:     0.05,
	}
}

// Profile resolves a named chaos profile: "off", "light", or "heavy".
func Profile(name string, seed int64) (Config, error) {
	switch name {
	case "off", "":
		return Config{}, nil
	case "light":
		return Light(seed), nil
	case "heavy":
		return Heavy(seed), nil
	}
	return Config{}, fmt.Errorf("chaos: unknown profile %q (want off, light, or heavy)", name)
}

// hash64 mixes the seed, a fault-class tag, and the decision's identity
// into a uniform 64-bit value (FNV-1a over the parts, finished with a
// splitmix64 round).
func hash64(seed int64, tag string, parts ...int64) uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	mix(uint64(seed))
	for i := 0; i < len(tag); i++ {
		h ^= uint64(tag[i])
		h *= 1099511628211
	}
	for _, p := range parts {
		mix(uint64(p))
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// roll converts a hash into a uniform probability in [0, 1).
func roll(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// Decider is the seeded deterministic dice every injector in this package
// rolls, exported for fault layers built outside it (the fleet delivery
// fabric). Each fault class hashes under its own tag, so deciders sharing
// a seed make independent decisions per class.
type Decider struct {
	Seed int64
}

// Hash mixes the seed, a fault-class tag, and the decision's identity
// into a uniform 64-bit value.
func (d Decider) Hash(tag string, parts ...int64) uint64 {
	return hash64(d.Seed, tag, parts...)
}

// Roll returns the decision's uniform draw in [0, 1).
func (d Decider) Roll(tag string, parts ...int64) float64 {
	return roll(hash64(d.Seed, tag, parts...))
}

// SourceStats counts what the chaos source injected, cumulatively.
type SourceStats struct {
	// Read is the number of records read from the base source.
	Read int64
	// DroppedBatches / DroppedRecords count whole-bucket batch drops.
	DroppedBatches, DroppedRecords int64
	// TransientErrs is the number of injected retryable read failures.
	TransientErrs int64
	// Corrupted is the number of records mutated into invalid ones.
	Corrupted int64
	// Held is the number of records delayed for late delivery;
	// LateDelivered of them have been redelivered so far.
	Held, LateDelivered int64
	// Duplicated is the number of extra copies emitted.
	Duplicated int64
}

// Source wraps an ObservationSource with fault injection. Not safe for
// concurrent use (the pipeline reads buckets serially).
type Source struct {
	base        ingest.ObservationSource
	cfg         Config
	numPrefixes netmodel.PrefixID

	held        map[netmodel.Bucket][]trace.Observation
	erredBucket netmodel.Bucket
	erredPrimed bool
	dups        []trace.Observation
	stats       SourceStats

	reg                                *metrics.Registry
	mDropped, mTransient, mCorrupted   *metrics.Counter
	mHeld, mLateDelivered, mDuplicated *metrics.Counter
}

// NewSource wraps base. numPrefixes is the world's prefix count, used to
// fabricate out-of-range prefixes for the corruption kind the quarantine
// must bounds-check.
func NewSource(base ingest.ObservationSource, cfg Config, numPrefixes netmodel.PrefixID) *Source {
	if cfg.LateMaxDelay < 1 {
		cfg.LateMaxDelay = 1
	}
	return &Source{base: base, cfg: cfg, numPrefixes: numPrefixes, held: make(map[netmodel.Bucket][]trace.Observation)}
}

// SetMetrics mirrors injection counts into chaos.source.* counters,
// registered lazily on first injection so fault-free snapshots are
// unchanged.
func (s *Source) SetMetrics(reg *metrics.Registry) { s.reg = reg }

func (s *Source) count(handle **metrics.Counter, name string) {
	if s.reg == nil {
		return
	}
	if *handle == nil {
		*handle = s.reg.Counter(name)
	}
	(*handle).Inc()
}

// Stats returns the cumulative injection counts.
func (s *Source) Stats() SourceStats { return s.stats }

// PendingLate is the number of held records not yet redelivered (still
// in flight when the run ended).
func (s *Source) PendingLate() int {
	n := 0
	for _, batch := range s.held {
		n += len(batch)
	}
	return n
}

// recordHash identifies one observation for a fault-class decision.
func (s *Source) recordHash(tag string, o trace.Observation) uint64 {
	return hash64(s.cfg.Seed, tag, int64(o.Prefix), int64(o.Cloud), int64(o.Device), int64(o.Bucket))
}

// corruptObs mutates a record into one of six invalid shapes, all of
// which the ingestion quarantine must catch.
func (s *Source) corruptObs(o trace.Observation, h uint64) trace.Observation {
	switch h % 6 {
	case 0:
		o.MeanRTT = math.NaN()
	case 1:
		o.MeanRTT = math.Inf(1)
	case 2:
		o.MeanRTT = -o.MeanRTT - 1
	case 3:
		o.Samples = -o.Samples - 1
	case 4:
		o.Clients = -o.Clients - 1
	default:
		o.Prefix = s.numPrefixes + netmodel.PrefixID(h%1024)
	}
	return o
}

// ObservationsAt reads bucket b through the fault injector: the batch
// may fail transiently (once per bucket, before the base read), be
// dropped outright, or have records corrupted, held for late delivery,
// or duplicated. Held records from earlier buckets are flushed into the
// result in delivery-bucket order.
func (s *Source) ObservationsAt(ctx context.Context, b netmodel.Bucket, buf []trace.Observation) ([]trace.Observation, error) {
	if s.cfg.TransientErrProb > 0 && !(s.erredPrimed && s.erredBucket == b) &&
		roll(hash64(s.cfg.Seed, "transient", int64(b))) < s.cfg.TransientErrProb {
		s.erredBucket, s.erredPrimed = b, true
		s.stats.TransientErrs++
		s.count(&s.mTransient, "chaos.source.transient_errs")
		return buf[:0], ingest.Transient(fmt.Errorf("chaos: injected transient read failure at bucket %d", b))
	}

	out, err := s.base.ObservationsAt(ctx, b, buf)
	if err != nil {
		return out, err
	}
	s.stats.Read += int64(len(out))

	if s.cfg.DropBatchProb > 0 && roll(hash64(s.cfg.Seed, "drop", int64(b))) < s.cfg.DropBatchProb {
		s.stats.DroppedBatches++
		s.stats.DroppedRecords += int64(len(out))
		s.count(&s.mDropped, "chaos.source.dropped_batches")
		out = out[:0]
	} else {
		burst := s.cfg.LateBurstProb > 0 && roll(hash64(s.cfg.Seed, "burst", int64(b))) < s.cfg.LateBurstProb
		s.dups = s.dups[:0]
		w := 0
		for _, o := range out {
			lateH := s.recordHash("late", o)
			late := roll(lateH) < s.cfg.LateProb
			if burst && roll(s.recordHash("burstpick", o)) < s.cfg.LateBurstFrac {
				late = true
			}
			if late {
				delay := 1 + netmodel.Bucket(lateH%uint64(s.cfg.LateMaxDelay))
				s.held[b+delay] = append(s.held[b+delay], o)
				s.stats.Held++
				s.count(&s.mHeld, "chaos.source.late_held")
				continue
			}
			if corruptH := s.recordHash("corrupt", o); roll(corruptH) < s.cfg.CorruptProb {
				out[w] = s.corruptObs(o, corruptH)
				w++
				s.stats.Corrupted++
				s.count(&s.mCorrupted, "chaos.source.corrupted")
				continue
			}
			out[w] = o
			w++
			if roll(s.recordHash("dup", o)) < s.cfg.DuplicateProb {
				s.dups = append(s.dups, o)
				s.stats.Duplicated++
				s.count(&s.mDuplicated, "chaos.source.duplicated")
			}
		}
		out = append(out[:w], s.dups...)
	}

	// Redeliver everything whose delivery bucket has arrived, in
	// delivery-bucket order for determinism.
	if len(s.held) > 0 {
		var due []netmodel.Bucket
		for k := range s.held {
			if k <= b {
				due = append(due, k)
			}
		}
		sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
		for _, k := range due {
			for range s.held[k] {
				s.count(&s.mLateDelivered, "chaos.source.late_delivered")
			}
			s.stats.LateDelivered += int64(len(s.held[k]))
			out = append(out, s.held[k]...)
			delete(s.held, k)
		}
	}
	return out, nil
}

// ProberStats counts what the chaos prober injected, cumulatively.
type ProberStats struct {
	// Probes is the number of attempts that reached the injector.
	Probes int64
	// FailuresInjected is the number of attempts failed outright.
	FailuresInjected int64
	// Truncated is the number of successful probes cut short.
	Truncated int64
}

type probeKey struct {
	c       netmodel.CloudID
	p       netmodel.PrefixID
	b       netmodel.Bucket
	purpose probe.Purpose
}

// Prober wraps a Prober with per-attempt failure and truncation
// injection. It implements probe.ErrProber, so pipeline.New hardens it
// behind a RetryingProber automatically. Not safe for concurrent use.
type Prober struct {
	base probe.Prober
	cfg  Config

	// attempts distinguishes retries of the same probe so each attempt
	// rolls its own failure; cleared when the bucket advances.
	attempts map[probeKey]int
	lastB    netmodel.Bucket
	primed   bool
	stats    ProberStats

	reg                 *metrics.Registry
	mFailed, mTruncated *metrics.Counter
}

// NewProber wraps base with fault injection.
func NewProber(base probe.Prober, cfg Config) *Prober {
	return &Prober{base: base, cfg: cfg, attempts: make(map[probeKey]int)}
}

// SetMetrics mirrors injection counts into chaos.probe.* counters
// (lazily registered). It is forwarded to the base prober when that
// supports it.
func (cp *Prober) SetMetrics(reg *metrics.Registry) {
	cp.reg = reg
	if m, ok := cp.base.(interface{ SetMetrics(*metrics.Registry) }); ok {
		m.SetMetrics(reg)
	}
}

func (cp *Prober) count(handle **metrics.Counter, name string) {
	if cp.reg == nil {
		return
	}
	if *handle == nil {
		*handle = cp.reg.Counter(name)
	}
	(*handle).Inc()
}

// Stats returns the cumulative injection counts.
func (cp *Prober) Stats() ProberStats { return cp.stats }

// Counters delegates purpose accounting to the base prober.
func (cp *Prober) Counters() *probe.Counters { return cp.base.Counters() }

// Traceroute is the infallible interface: injected failures surface as
// hopless traceroutes (which the baseliner refuses to store).
func (cp *Prober) Traceroute(c netmodel.CloudID, p netmodel.PrefixID, b netmodel.Bucket, purpose probe.Purpose) probe.Traceroute {
	tr, _ := cp.TracerouteErr(context.Background(), c, p, b, purpose)
	return tr
}

// TracerouteErr runs one probe attempt through the injector: it may fail
// outright (an error, no hops) or succeed truncated (a strict prefix of
// the real hops — structurally valid, unusable for comparison).
func (cp *Prober) TracerouteErr(ctx context.Context, c netmodel.CloudID, p netmodel.PrefixID, b netmodel.Bucket, purpose probe.Purpose) (probe.Traceroute, error) {
	if err := ctx.Err(); err != nil {
		return probe.Traceroute{}, err
	}
	if !cp.primed || b != cp.lastB {
		clear(cp.attempts)
		cp.lastB, cp.primed = b, true
	}
	k := probeKey{c, p, b, purpose}
	attempt := cp.attempts[k]
	cp.attempts[k] = attempt + 1
	cp.stats.Probes++

	if cp.cfg.ProbeFailProb > 0 &&
		roll(hash64(cp.cfg.Seed, "probefail", int64(c), int64(p), int64(b), int64(purpose), int64(attempt))) < cp.cfg.ProbeFailProb {
		cp.stats.FailuresInjected++
		cp.count(&cp.mFailed, "chaos.probe.failures")
		return probe.Traceroute{}, fmt.Errorf("chaos: injected probe failure (cloud %d, prefix %d, bucket %d, attempt %d)", c, p, b, attempt)
	}
	tr := cp.base.Traceroute(c, p, b, purpose)
	if cp.cfg.TruncateProb > 0 && len(tr.Hops) >= 2 {
		if h := hash64(cp.cfg.Seed, "trunc", int64(c), int64(p), int64(b), int64(purpose), int64(attempt)); roll(h) < cp.cfg.TruncateProb {
			tr.Hops = tr.Hops[:1+int(h%uint64(len(tr.Hops)-1))]
			cp.stats.Truncated++
			cp.count(&cp.mTruncated, "chaos.probe.truncated")
		}
	}
	return tr, nil
}
