// Package tomography implements the classical network-tomography baselines
// that §4.1 of the paper shows to be infeasible at BlameIt's granularity:
// the linear formulation (whose rank deficiency leaves individual segment
// latencies unidentifiable even without noise) and boolean tomography
// (whose minimal-explanation sets stay ambiguous).
package tomography

import (
	"fmt"
	"math"
	"sort"
)

// System is a linear system A·x = d over named unknowns.
type System struct {
	A     [][]float64
	D     []float64
	Names []string
}

// Unknowns returns the number of variables.
func (s *System) Unknowns() int { return len(s.Names) }

// Equations returns the number of equations.
func (s *System) Equations() int { return len(s.A) }

// BuildTwoCloudSystem constructs the exact §4.1 counterexample: two cloud
// locations c1, c2 with middle segments m1, m2 serving k client prefixes
// p1..pk, yielding 2k delay equations l_ci + l_mi + l_pj = d_ij over k+4
// unknowns. The supplied ground-truth latencies generate the (noise-free)
// measurements.
func BuildTwoCloudSystem(lc1, lc2, lm1, lm2 float64, lp []float64) *System {
	k := len(lp)
	s := &System{Names: make([]string, 0, k+4)}
	s.Names = append(s.Names, "lc1", "lc2", "lm1", "lm2")
	for j := range lp {
		s.Names = append(s.Names, fmt.Sprintf("lp%d", j+1))
	}
	addEq := func(ci int, lci, lmi float64, j int) {
		row := make([]float64, k+4)
		row[ci] = 1   // lc_i
		row[2+ci] = 1 // lm_i
		row[4+j] = 1  // lp_j
		s.A = append(s.A, row)
		s.D = append(s.D, lci+lmi+lp[j])
	}
	for j := 0; j < k; j++ {
		addEq(0, lc1, lm1, j)
	}
	for j := 0; j < k; j++ {
		addEq(1, lc2, lm2, j)
	}
	return s
}

// rankOf computes the rank of a matrix by Gaussian elimination with
// partial pivoting.
func rankOf(m [][]float64) int {
	if len(m) == 0 {
		return 0
	}
	rows := make([][]float64, len(m))
	for i, r := range m {
		rows[i] = append([]float64(nil), r...)
	}
	cols := len(rows[0])
	rank := 0
	for col := 0; col < cols && rank < len(rows); col++ {
		// Find pivot.
		pivot := -1
		best := 1e-9
		for r := rank; r < len(rows); r++ {
			if v := math.Abs(rows[r][col]); v > best {
				best = v
				pivot = r
			}
		}
		if pivot < 0 {
			continue
		}
		rows[rank], rows[pivot] = rows[pivot], rows[rank]
		pv := rows[rank][col]
		for r := rank + 1; r < len(rows); r++ {
			f := rows[r][col] / pv
			if f == 0 {
				continue
			}
			for c := col; c < cols; c++ {
				rows[r][c] -= f * rows[rank][c]
			}
		}
		rank++
	}
	return rank
}

// Rank returns the rank of the coefficient matrix.
func (s *System) Rank() int { return rankOf(s.A) }

// Identifiable reports whether the linear functional target·x is uniquely
// determined by the system, i.e. target lies in the row space of A.
func (s *System) Identifiable(target []float64) bool {
	if len(target) != s.Unknowns() {
		return false
	}
	aug := make([][]float64, 0, len(s.A)+1)
	aug = append(aug, s.A...)
	aug = append(aug, target)
	return rankOf(aug) == s.Rank()
}

// Unit returns the target functional selecting a single named unknown.
func (s *System) Unit(name string) []float64 {
	t := make([]float64, s.Unknowns())
	for i, n := range s.Names {
		if n == name {
			t[i] = 1
		}
	}
	return t
}

// BoolInstance is a boolean-tomography instance: a path is good only if
// every one of its segments is good.
type BoolInstance struct {
	NumSegments int
	Paths       [][]int // segment indices per path
	Bad         []bool  // per-path status
}

// Candidates returns the segments that could be bad: those not appearing
// on any good path.
func (bi *BoolInstance) Candidates() []int {
	exonerated := make([]bool, bi.NumSegments)
	for i, path := range bi.Paths {
		if !bi.Bad[i] {
			for _, seg := range path {
				exonerated[seg] = true
			}
		}
	}
	var out []int
	for seg := 0; seg < bi.NumSegments; seg++ {
		if !exonerated[seg] {
			out = append(out, seg)
		}
	}
	return out
}

// MinimalExplanations enumerates all minimal candidate sets (up to
// maxSize) that cover every bad path. More than one minimal explanation
// means the instance is ambiguous: boolean tomography cannot localize the
// fault.
func (bi *BoolInstance) MinimalExplanations(maxSize int) [][]int {
	cands := bi.Candidates()
	var badPaths [][]int
	for i, path := range bi.Paths {
		if bi.Bad[i] {
			badPaths = append(badPaths, path)
		}
	}
	if len(badPaths) == 0 {
		return nil
	}
	var results [][]int
	// Enumerate candidate subsets by increasing size; keep only covering
	// sets that have no covering proper subset already found.
	var subsets func(start int, cur []int, size int)
	covers := func(set []int) bool {
		for _, path := range badPaths {
			hit := false
			for _, seg := range path {
				for _, s := range set {
					if s == seg {
						hit = true
					}
				}
			}
			if !hit {
				return false
			}
		}
		return true
	}
	isSuperset := func(set []int) bool {
		for _, r := range results {
			all := true
			for _, s := range r {
				found := false
				for _, x := range set {
					if x == s {
						found = true
					}
				}
				if !found {
					all = false
					break
				}
			}
			if all {
				return true
			}
		}
		return false
	}
	for size := 1; size <= maxSize && size <= len(cands); size++ {
		subsets = func(start int, cur []int, left int) {
			if left == 0 {
				if !isSuperset(cur) && covers(cur) {
					results = append(results, append([]int(nil), cur...))
				}
				return
			}
			for i := start; i <= len(cands)-left; i++ {
				subsets(i+1, append(cur, cands[i]), left-1)
			}
		}
		subsets(0, nil, size)
	}
	for _, r := range results {
		sort.Ints(r)
	}
	sort.Slice(results, func(i, j int) bool {
		if len(results[i]) != len(results[j]) {
			return len(results[i]) < len(results[j])
		}
		for k := range results[i] {
			if results[i][k] != results[j][k] {
				return results[i][k] < results[j][k]
			}
		}
		return false
	})
	return results
}

// Ambiguous reports whether boolean tomography yields more than one
// minimal explanation.
func (bi *BoolInstance) Ambiguous(maxSize int) bool {
	return len(bi.MinimalExplanations(maxSize)) > 1
}
