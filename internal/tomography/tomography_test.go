package tomography

import (
	"testing"
)

func buildExample(k int) *System {
	lp := make([]float64, k)
	for i := range lp {
		lp[i] = 10 + float64(i)
	}
	return BuildTwoCloudSystem(3, 4, 7, 8, lp)
}

func TestSystemShape(t *testing.T) {
	k := 6
	s := buildExample(k)
	if s.Unknowns() != k+4 {
		t.Errorf("unknowns = %d, want %d", s.Unknowns(), k+4)
	}
	if s.Equations() != 2*k {
		t.Errorf("equations = %d, want %d", s.Equations(), 2*k)
	}
}

// TestRankDeficiency reproduces the §4.1 argument: 2k equations over k+4
// unknowns still leave the system rank-deficient, so individual segment
// latencies cannot be inferred. The rank is exactly k+1: the lc_i and lm_i
// columns coincide (they always appear together), collapsing the four
// cloud/middle unknowns into the two composites the paper derives.
func TestRankDeficiency(t *testing.T) {
	for _, k := range []int{3, 5, 10} {
		s := buildExample(k)
		if got := s.Rank(); got != k+1 {
			t.Errorf("k=%d: rank = %d, want %d", k, got, k+1)
		}
		if got := s.Rank(); got >= s.Unknowns() {
			t.Errorf("k=%d: system unexpectedly full-rank", k)
		}
	}
}

func TestIndividualLatenciesUnidentifiable(t *testing.T) {
	s := buildExample(5)
	for _, name := range []string{"lc1", "lc2", "lm1", "lm2", "lp1", "lp3"} {
		if s.Identifiable(s.Unit(name)) {
			t.Errorf("%s should be unidentifiable", name)
		}
	}
}

// TestCompositesIdentifiable checks the two composite expressions the
// paper derives as the only solvable quantities: lc1+lm1−lc2−lm2 and
// lp_s−lp_t.
func TestCompositesIdentifiable(t *testing.T) {
	s := buildExample(5)
	comp := make([]float64, s.Unknowns())
	comp[0], comp[2], comp[1], comp[3] = 1, 1, -1, -1 // lc1+lm1-lc2-lm2
	if !s.Identifiable(comp) {
		t.Error("lc1+lm1-lc2-lm2 should be identifiable")
	}
	diff := make([]float64, s.Unknowns())
	diff[4], diff[6] = 1, -1 // lp1 - lp3
	if !s.Identifiable(diff) {
		t.Error("lp1-lp3 should be identifiable")
	}
	// Per-path sums are identifiable too (they are the measurements).
	sum := make([]float64, s.Unknowns())
	sum[0], sum[2], sum[4] = 1, 1, 1
	if !s.Identifiable(sum) {
		t.Error("lc1+lm1+lp1 should be identifiable")
	}
}

func TestIdentifiableRejectsWrongLength(t *testing.T) {
	s := buildExample(3)
	if s.Identifiable([]float64{1}) {
		t.Error("wrong-length target accepted")
	}
}

func TestBooleanCandidates(t *testing.T) {
	// Segments: 0=cloud, 1=m1, 2=m2, 3..5=clients.
	bi := &BoolInstance{
		NumSegments: 6,
		Paths: [][]int{
			{0, 1, 3}, // bad
			{0, 1, 4}, // bad
			{0, 2, 5}, // good -> exonerates 0, 2, 5
		},
		Bad: []bool{true, true, false},
	}
	cands := bi.Candidates()
	want := map[int]bool{1: true, 3: true, 4: true}
	if len(cands) != len(want) {
		t.Fatalf("candidates = %v", cands)
	}
	for _, c := range cands {
		if !want[c] {
			t.Errorf("unexpected candidate %d", c)
		}
	}
}

func TestBooleanUnambiguousCase(t *testing.T) {
	// Good path exonerates everything except m1: unique explanation.
	bi := &BoolInstance{
		NumSegments: 5,
		Paths: [][]int{
			{0, 1, 3}, // bad
			{0, 2, 3}, // good
			{0, 1, 4}, // bad
			{0, 2, 4}, // good
		},
		Bad: []bool{true, false, true, false},
	}
	exps := bi.MinimalExplanations(3)
	if len(exps) != 1 || len(exps[0]) != 1 || exps[0][0] != 1 {
		t.Errorf("explanations = %v, want [[1]]", exps)
	}
	if bi.Ambiguous(3) {
		t.Error("unambiguous instance reported ambiguous")
	}
}

// TestBooleanAmbiguousCase shows the ambiguity §4.1 refers to: without
// good-path coverage, several minimal explanations remain.
func TestBooleanAmbiguousCase(t *testing.T) {
	// One bad path, no good paths: every segment on it is a minimal
	// explanation.
	bi := &BoolInstance{
		NumSegments: 3,
		Paths:       [][]int{{0, 1, 2}},
		Bad:         []bool{true},
	}
	exps := bi.MinimalExplanations(2)
	if len(exps) != 3 {
		t.Errorf("explanations = %v, want 3 singletons", exps)
	}
	if !bi.Ambiguous(2) {
		t.Error("ambiguous instance not reported")
	}
}

func TestBooleanMinimality(t *testing.T) {
	// Two disjoint bad paths need a pair; no singleton covers both, and
	// supersets of valid pairs must not be reported.
	bi := &BoolInstance{
		NumSegments: 4,
		Paths:       [][]int{{0, 1}, {2, 3}},
		Bad:         []bool{true, true},
	}
	exps := bi.MinimalExplanations(3)
	for _, e := range exps {
		if len(e) != 2 {
			t.Errorf("non-minimal explanation %v", e)
		}
	}
	if len(exps) != 4 {
		t.Errorf("want 4 minimal pairs, got %v", exps)
	}
}

func TestBooleanNoBadPaths(t *testing.T) {
	bi := &BoolInstance{NumSegments: 2, Paths: [][]int{{0}, {1}}, Bad: []bool{false, false}}
	if exps := bi.MinimalExplanations(2); exps != nil {
		t.Errorf("healthy instance produced explanations %v", exps)
	}
}
