// Package netmodel defines the core entity types shared by every subsystem
// of the BlameIt reproduction: autonomous systems, regions, metros, cloud
// edge locations, client prefixes, BGP prefixes, and AS-level paths.
//
// The types deliberately mirror the vocabulary of the paper ("Zooming in on
// Wide-area Latencies to a Global Cloud Provider", SIGCOMM 2019): a client
// /24 connects to a cloud location over a path that is segmented into a
// cloud segment (the cloud AS), a middle segment (the ordered set of transit
// ASes, called the "BGP path"), and a client segment (the client AS).
package netmodel

import (
	"fmt"
	"strconv"
	"strings"
)

// Region identifies a coarse geographic cloud region. The evaluation in the
// paper slices results by region (Fig. 2, Fig. 9), so regions are first-class
// here.
type Region int

// Regions used throughout the synthetic world. The set matches the regions
// named in the paper's figures (USA, Europe, China, India, Brazil,
// Australia) plus East Asia, which appears in the §6.3 traffic-shift case
// study.
const (
	RegionUSA Region = iota
	RegionEurope
	RegionChina
	RegionIndia
	RegionBrazil
	RegionAustralia
	RegionEastAsia
	numRegions
)

// NumRegions is the count of defined regions.
const NumRegions = int(numRegions)

var regionNames = [...]string{
	RegionUSA:       "USA",
	RegionEurope:    "Europe",
	RegionChina:     "China",
	RegionIndia:     "India",
	RegionBrazil:    "Brazil",
	RegionAustralia: "Australia",
	RegionEastAsia:  "EastAsia",
}

// String returns the human-readable region name.
func (r Region) String() string {
	if r < 0 || int(r) >= len(regionNames) {
		return fmt.Sprintf("Region(%d)", int(r))
	}
	return regionNames[r]
}

// AllRegions returns every defined region in declaration order.
func AllRegions() []Region {
	out := make([]Region, NumRegions)
	for i := range out {
		out[i] = Region(i)
	}
	return out
}

// ParseRegion maps a region name (as produced by Region.String) back to its
// value. It reports false when the name is unknown.
func ParseRegion(name string) (Region, bool) {
	for i, n := range regionNames {
		if strings.EqualFold(n, name) {
			return Region(i), true
		}
	}
	return 0, false
}

// DeviceClass distinguishes mobile (cellular) clients from non-mobile
// (broadband) clients. The paper's quartet definition and badness thresholds
// both key on this distinction.
type DeviceClass int

const (
	// NonMobile clients connect over wired broadband networks.
	NonMobile DeviceClass = iota
	// Mobile clients connect over cellular networks and carry looser RTT
	// targets.
	Mobile
	// WiFi clients sit behind home wireless on a broadband uplink — the
	// distinction the paper planned to add ("Going forward, we plan to
	// distinguish Wi-Fi connections as well", §2.1). Their targets sit
	// between wired broadband and cellular.
	WiFi
	numDeviceClasses
)

// NumDeviceClasses is the count of defined device classes.
const NumDeviceClasses = int(numDeviceClasses)

// String names the device class.
func (d DeviceClass) String() string {
	switch d {
	case NonMobile:
		return "non-mobile"
	case Mobile:
		return "mobile"
	case WiFi:
		return "wifi"
	default:
		return fmt.Sprintf("DeviceClass(%d)", int(d))
	}
}

// ASN is an autonomous-system number.
type ASN int

// ASType classifies an AS by its role in the synthetic topology.
type ASType int

const (
	// ASCloud is the cloud provider's own network (the "cloud segment").
	ASCloud ASType = iota
	// ASTier1 is a global backbone AS present in every region.
	ASTier1
	// ASTransit is a regional transit AS (part of "middle segments").
	ASTransit
	// ASEyeball is a client-facing ISP (the "client segment").
	ASEyeball
)

// String names the AS type.
func (t ASType) String() string {
	switch t {
	case ASCloud:
		return "cloud"
	case ASTier1:
		return "tier1"
	case ASTransit:
		return "transit"
	case ASEyeball:
		return "eyeball"
	default:
		return fmt.Sprintf("ASType(%d)", int(t))
	}
}

// AS describes one autonomous system.
type AS struct {
	ASN    ASN
	Name   string
	Type   ASType
	Region Region // primary region; tier-1 ASes span all regions
}

// MetroID identifies a metropolitan area within a region.
type MetroID int

// Metro is a metropolitan area; client prefixes and cloud locations are
// anchored to metros.
type Metro struct {
	ID     MetroID
	Name   string
	Region Region
}

// CloudID identifies one cloud edge location.
type CloudID int

// ProviderID identifies one cloud provider in a multi-provider world.
// Provider 0 is the "home" provider: a single-provider world contains
// exactly provider 0 and behaves identically to the historical
// single-cloud model.
type ProviderID int

// CloudLocation is one of a provider's network edge locations ("cloud
// locations" in the paper). Clients reach the provider's nearest location
// via anycast.
type CloudLocation struct {
	ID       CloudID
	Name     string
	Metro    MetroID
	Region   Region
	Provider ProviderID
}

// PrefixID indexes a client /24 prefix within a World.
type PrefixID int

// BGPPrefixID indexes a BGP-announced prefix within a World.
type BGPPrefixID int

// Prefix24 is a client IP /24 block, the spatial unit of the paper's
// "quartet" aggregation.
type Prefix24 struct {
	ID        PrefixID
	Base      uint32 // network byte order base address of the /24
	AS        ASN    // client (eyeball) AS announcing this block
	Metro     MetroID
	BGPPrefix BGPPrefixID // covering BGP-announced prefix
	// ActiveClients is the typical number of distinct active client IPs in
	// this /24 during a 5-minute window. The paper observes large BGP blocks
	// often have fewer active clients than small ones; the generator
	// reproduces that skew.
	ActiveClients int
	// Device is the dominant connectivity class of this block (cellular
	// blocks are marked Mobile).
	Device DeviceClass
}

// BGPPrefix is a BGP-announced aggregate covering one or more /24 blocks.
type BGPPrefix struct {
	ID      BGPPrefixID
	Base    uint32
	MaskLen int
	AS      ASN
	Metro   MetroID
}

// Path is an AS-level route from a cloud location to a client prefix. Cloud
// holds the edge location, Middle the ordered transit ASes between the cloud
// AS and the client AS ("BGP path" in the paper), and Client the eyeball AS.
type Path struct {
	Cloud  CloudID
	Middle []ASN
	Client ASN
}

// MiddleKey canonically encodes the middle segment of a path, scoped to its
// cloud location. Algorithm 1 aggregates quartets by this key when deciding
// middle-segment blame, and the active phase groups probe targets by it.
type MiddleKey string

// Key returns the MiddleKey for the path.
func (p Path) Key() MiddleKey {
	var sb strings.Builder
	sb.Grow(8 + 8*len(p.Middle))
	sb.WriteString("c")
	sb.WriteString(strconv.Itoa(int(p.Cloud)))
	for _, a := range p.Middle {
		sb.WriteByte('|')
		sb.WriteString(strconv.Itoa(int(a)))
	}
	return MiddleKey(sb.String())
}

// FullKey encodes the complete AS-level path including the client AS. Two
// paths with equal FullKeys traverse identical AS sequences end to end.
func (p Path) FullKey() string {
	return string(p.Key()) + ">" + strconv.Itoa(int(p.Client))
}

// Equal reports whether two paths traverse the same cloud location, middle
// ASes (in order) and client AS.
func (p Path) Equal(q Path) bool {
	if p.Cloud != q.Cloud || p.Client != q.Client || len(p.Middle) != len(q.Middle) {
		return false
	}
	for i, a := range p.Middle {
		if a != q.Middle[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the path.
func (p Path) Clone() Path {
	c := p
	c.Middle = append([]ASN(nil), p.Middle...)
	return c
}

// String renders the path as "cloud:3 [64601 64602] -> AS64701".
func (p Path) String() string {
	parts := make([]string, len(p.Middle))
	for i, a := range p.Middle {
		parts[i] = strconv.Itoa(int(a))
	}
	return fmt.Sprintf("cloud:%d [%s] -> AS%d", int(p.Cloud), strings.Join(parts, " "), int(p.Client))
}

// Segment identifies which coarse network segment a blame or fault refers
// to: the cloud AS, one of the middle ASes, or the client AS.
type Segment int

const (
	// SegCloud is the cloud provider's network.
	SegCloud Segment = iota
	// SegMiddle is the set of transit ASes between cloud and client.
	SegMiddle
	// SegClient is the client's own ISP.
	SegClient
)

// String names the segment.
func (s Segment) String() string {
	switch s {
	case SegCloud:
		return "cloud"
	case SegMiddle:
		return "middle"
	case SegClient:
		return "client"
	default:
		return fmt.Sprintf("Segment(%d)", int(s))
	}
}

// Bucket is a simulated 5-minute time window index, counted from the start
// of the simulation. All temporal reasoning in the reproduction uses
// buckets; there is no wall-clock dependence.
type Bucket int

// BucketsPerHour is the number of 5-minute buckets in one hour.
const BucketsPerHour = 12

// BucketsPerDay is the number of 5-minute buckets in one day.
const BucketsPerDay = 24 * BucketsPerHour

// BucketMinutes is the length of a bucket in minutes.
const BucketMinutes = 5

// Day returns the zero-based simulated day of the bucket.
func (b Bucket) Day() int { return int(b) / BucketsPerDay }

// HourOfDay returns the zero-based hour-of-day of the bucket.
func (b Bucket) HourOfDay() int { return (int(b) % BucketsPerDay) / BucketsPerHour }

// OfDay returns the bucket index within its day, in [0, BucketsPerDay).
func (b Bucket) OfDay() int { return int(b) % BucketsPerDay }

// IsWeekend reports whether the bucket's simulated day falls on a weekend.
// Day 0 is a Monday, so days 5 and 6 of each week are weekend days.
func (b Bucket) IsWeekend() bool {
	d := b.Day() % 7
	return d == 5 || d == 6
}

// Minutes converts a bucket count into minutes.
func (b Bucket) Minutes() int { return int(b) * BucketMinutes }
