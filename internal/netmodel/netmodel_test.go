package netmodel

import (
	"testing"
	"testing/quick"
)

func TestRegionString(t *testing.T) {
	cases := []struct {
		r    Region
		want string
	}{
		{RegionUSA, "USA"},
		{RegionEurope, "Europe"},
		{RegionChina, "China"},
		{RegionIndia, "India"},
		{RegionBrazil, "Brazil"},
		{RegionAustralia, "Australia"},
		{RegionEastAsia, "EastAsia"},
		{Region(99), "Region(99)"},
		{Region(-1), "Region(-1)"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Region(%d).String() = %q, want %q", int(c.r), got, c.want)
		}
	}
}

func TestParseRegionRoundTrip(t *testing.T) {
	for _, r := range AllRegions() {
		got, ok := ParseRegion(r.String())
		if !ok || got != r {
			t.Errorf("ParseRegion(%q) = %v,%v, want %v,true", r.String(), got, ok, r)
		}
	}
	if _, ok := ParseRegion("Atlantis"); ok {
		t.Error("ParseRegion accepted unknown region")
	}
}

func TestParseRegionCaseInsensitive(t *testing.T) {
	r, ok := ParseRegion("usa")
	if !ok || r != RegionUSA {
		t.Errorf("ParseRegion(usa) = %v,%v", r, ok)
	}
}

func TestAllRegionsCount(t *testing.T) {
	if len(AllRegions()) != NumRegions {
		t.Fatalf("AllRegions() has %d entries, want %d", len(AllRegions()), NumRegions)
	}
}

func TestDeviceClassString(t *testing.T) {
	if NonMobile.String() != "non-mobile" || Mobile.String() != "mobile" {
		t.Error("device class names wrong")
	}
	if DeviceClass(7).String() != "DeviceClass(7)" {
		t.Error("unknown device class formatting wrong")
	}
}

func TestASTypeString(t *testing.T) {
	cases := map[ASType]string{
		ASCloud: "cloud", ASTier1: "tier1", ASTransit: "transit", ASEyeball: "eyeball",
	}
	for typ, want := range cases {
		if typ.String() != want {
			t.Errorf("%v != %s", typ, want)
		}
	}
	if ASType(9).String() != "ASType(9)" {
		t.Error("unknown AS type formatting wrong")
	}
}

func TestSegmentString(t *testing.T) {
	if SegCloud.String() != "cloud" || SegMiddle.String() != "middle" || SegClient.String() != "client" {
		t.Error("segment names wrong")
	}
	if Segment(5).String() != "Segment(5)" {
		t.Error("unknown segment formatting wrong")
	}
}

func TestPathKeyDistinguishesClouds(t *testing.T) {
	p1 := Path{Cloud: 1, Middle: []ASN{10, 20}, Client: 30}
	p2 := Path{Cloud: 2, Middle: []ASN{10, 20}, Client: 30}
	if p1.Key() == p2.Key() {
		t.Error("paths through different clouds must have different middle keys")
	}
}

func TestPathKeyDistinguishesOrder(t *testing.T) {
	p1 := Path{Cloud: 1, Middle: []ASN{10, 20}, Client: 30}
	p2 := Path{Cloud: 1, Middle: []ASN{20, 10}, Client: 30}
	if p1.Key() == p2.Key() {
		t.Error("middle key must be order sensitive")
	}
}

func TestPathKeyNoAmbiguousConcatenation(t *testing.T) {
	// AS 1 followed by AS 12 must not collide with AS 11 followed by AS 2.
	p1 := Path{Cloud: 1, Middle: []ASN{1, 12}, Client: 30}
	p2 := Path{Cloud: 1, Middle: []ASN{11, 2}, Client: 30}
	if p1.Key() == p2.Key() {
		t.Error("middle key concatenation is ambiguous")
	}
	// A cloud id ending in a digit must not bleed into the first ASN.
	p3 := Path{Cloud: 11, Middle: []ASN{2}, Client: 30}
	p4 := Path{Cloud: 1, Middle: []ASN{12}, Client: 30}
	if p3.Key() == p4.Key() {
		t.Error("cloud id concatenation is ambiguous")
	}
}

func TestPathFullKeyIncludesClient(t *testing.T) {
	p1 := Path{Cloud: 1, Middle: []ASN{10}, Client: 30}
	p2 := Path{Cloud: 1, Middle: []ASN{10}, Client: 31}
	if p1.Key() != p2.Key() {
		t.Error("middle key must not include client")
	}
	if p1.FullKey() == p2.FullKey() {
		t.Error("full key must include client")
	}
}

func TestPathEqual(t *testing.T) {
	p := Path{Cloud: 3, Middle: []ASN{5, 6}, Client: 9}
	if !p.Equal(p.Clone()) {
		t.Error("clone must equal original")
	}
	q := p.Clone()
	q.Middle[0] = 7
	if p.Equal(q) {
		t.Error("different middles must not be equal")
	}
	if p.Middle[0] != 5 {
		t.Error("Clone must deep-copy Middle")
	}
	if p.Equal(Path{Cloud: 3, Middle: []ASN{5}, Client: 9}) {
		t.Error("different middle lengths must not be equal")
	}
}

func TestPathKeyEqualConsistency(t *testing.T) {
	// Property: Equal(p, q) iff FullKey(p) == FullKey(q).
	f := func(cloud1, cloud2 uint8, m1, m2 []uint16, cl1, cl2 uint16) bool {
		toPath := func(c uint8, m []uint16, cl uint16) Path {
			mid := make([]ASN, len(m))
			for i, v := range m {
				mid[i] = ASN(v)
			}
			return Path{Cloud: CloudID(c), Middle: mid, Client: ASN(cl)}
		}
		p, q := toPath(cloud1, m1, cl1), toPath(cloud2, m2, cl2)
		return p.Equal(q) == (p.FullKey() == q.FullKey())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBucketArithmetic(t *testing.T) {
	if BucketsPerDay != 288 {
		t.Fatalf("BucketsPerDay = %d, want 288", BucketsPerDay)
	}
	b := Bucket(BucketsPerDay + 13) // day 1, 13th bucket
	if b.Day() != 1 {
		t.Errorf("Day() = %d, want 1", b.Day())
	}
	if b.HourOfDay() != 1 {
		t.Errorf("HourOfDay() = %d, want 1", b.HourOfDay())
	}
	if b.OfDay() != 13 {
		t.Errorf("OfDay() = %d, want 13", b.OfDay())
	}
	if Bucket(3).Minutes() != 15 {
		t.Errorf("Minutes() = %d, want 15", Bucket(3).Minutes())
	}
}

func TestBucketWeekend(t *testing.T) {
	// Day 0 is Monday; days 5 and 6 are the weekend.
	for day := 0; day < 14; day++ {
		b := Bucket(day * BucketsPerDay)
		want := day%7 == 5 || day%7 == 6
		if b.IsWeekend() != want {
			t.Errorf("day %d IsWeekend = %v, want %v", day, b.IsWeekend(), want)
		}
	}
}

func TestBucketHourProperty(t *testing.T) {
	f := func(n uint16) bool {
		b := Bucket(n)
		return b.HourOfDay() >= 0 && b.HourOfDay() < 24 &&
			b.OfDay() >= 0 && b.OfDay() < BucketsPerDay &&
			b.Day()*BucketsPerDay+b.OfDay() == int(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
