package stats

import (
	"math"
	"testing"
)

// floatsFromBytes expands a fuzz byte string into a float64 sample. Each
// byte becomes one observation; the spread keeps values small and finite
// so invariant violations are ordering bugs, not float-overflow artifacts.
func floatsFromBytes(data []byte) []float64 {
	xs := make([]float64, len(data))
	for i, b := range data {
		xs[i] = float64(int(b)-128) * 0.5
	}
	return xs
}

// FuzzQuantileMonotonicity checks the core order-statistic invariants of
// Quantile on arbitrary samples: results are bounded by the sample min and
// max, and a higher quantile never returns a smaller value.
func FuzzQuantileMonotonicity(f *testing.F) {
	f.Add([]byte{}, 0.5, 0.9)
	f.Add([]byte{1}, 0.0, 1.0)
	f.Add([]byte{200, 1, 128, 128, 7}, 0.25, 0.75)
	f.Add([]byte{0, 255}, 0.9, 0.1)
	f.Add([]byte{42, 42, 42}, -1.0, 2.0)
	f.Fuzz(func(t *testing.T, data []byte, q1, q2 float64) {
		if math.IsNaN(q1) || math.IsNaN(q2) {
			return
		}
		xs := floatsFromBytes(data)
		if len(xs) == 0 {
			if v := Quantile(xs, q1); v != 0 {
				t.Fatalf("Quantile(empty, %v) = %v, want 0", q1, v)
			}
			return
		}
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1, v2 := Quantile(xs, q1), Quantile(xs, q2)
		if v1 > v2 {
			t.Fatalf("Quantile not monotone: q=%v -> %v > q=%v -> %v (n=%d)", q1, v1, q2, v2, len(xs))
		}
		for _, v := range []float64{v1, v2} {
			if v < lo || v > hi {
				t.Fatalf("Quantile escaped sample range: %v not in [%v, %v]", v, lo, hi)
			}
		}
		// The quantile path must agree with Median's shortcut.
		if m := Median(xs); m != Quantile(xs, 0.5) {
			t.Fatalf("Median = %v disagrees with Quantile(0.5) = %v", m, Quantile(xs, 0.5))
		}
	})
}

// FuzzSummarizeOrdering checks that Summarize keeps its order statistics
// sorted (min <= p10 <= p50 <= p90 <= p99 <= max) and the mean inside the
// sample range, for any input.
func FuzzSummarizeOrdering(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{128})
	f.Add([]byte{0, 255, 0, 255})
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		xs := floatsFromBytes(data)
		s := Summarize(xs)
		if s.N != len(xs) {
			t.Fatalf("N = %d, want %d", s.N, len(xs))
		}
		if len(xs) == 0 {
			return
		}
		seq := []float64{s.Min, s.P10, s.P50, s.P90, s.P99, s.Max}
		for i := 1; i < len(seq); i++ {
			if seq[i-1] > seq[i] {
				t.Fatalf("summary order statistics not sorted: %+v", s)
			}
		}
		if s.Mean < s.Min || s.Mean > s.Max {
			t.Fatalf("mean %v outside [%v, %v]", s.Mean, s.Min, s.Max)
		}
	})
}

// FuzzCDFQuantileAgreement checks that the CDF wrapper and the standalone
// Quantile agree on any sample, and that CDF.At is a proper CDF: values in
// [0,1] and non-decreasing in its argument.
func FuzzCDFQuantileAgreement(f *testing.F) {
	f.Add([]byte{1, 2, 3}, 0.5, 1.5)
	f.Add([]byte{255, 0}, -10.0, 10.0)
	f.Add([]byte{}, 0.0, 0.0)
	f.Fuzz(func(t *testing.T, data []byte, x1, x2 float64) {
		if math.IsNaN(x1) || math.IsNaN(x2) {
			return
		}
		xs := floatsFromBytes(data)
		c := NewCDF(xs)
		if c.N() != len(xs) {
			t.Fatalf("CDF.N = %d, want %d", c.N(), len(xs))
		}
		for _, q := range []float64{0, 0.1, 0.5, 0.9, 1} {
			if got, want := c.Quantile(q), Quantile(xs, q); got != want {
				t.Fatalf("CDF.Quantile(%v) = %v, Quantile = %v", q, got, want)
			}
		}
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		p1, p2 := c.At(x1), c.At(x2)
		if p1 < 0 || p1 > 1 || p2 < 0 || p2 > 1 {
			t.Fatalf("CDF.At out of [0,1]: At(%v)=%v At(%v)=%v", x1, p1, x2, p2)
		}
		if p1 > p2 {
			t.Fatalf("CDF.At not monotone: At(%v)=%v > At(%v)=%v", x1, p1, x2, p2)
		}
	})
}
