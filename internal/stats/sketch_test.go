package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestP2QuantileAccuracy checks the P² estimate tracks the exact empirical
// quantile within a few percent on well-behaved distributions.
func TestP2QuantileAccuracy(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	dists := []struct {
		name string
		draw func() float64
	}{
		{"uniform", func() float64 { return r.Float64() * 100 }},
		{"normal", func() float64 { return 50 + 10*r.NormFloat64() }},
		{"lognormal", func() float64 { return LogNormal(r, 3, 0.8) }},
		{"pareto", func() float64 { return BoundedPareto(r, 1.2, 1, 1000) }},
	}
	for _, d := range dists {
		for _, q := range []float64{0.10, 0.50, 0.90, 0.99} {
			p := NewP2Quantile(q)
			xs := make([]float64, 0, 20000)
			for i := 0; i < 20000; i++ {
				x := d.draw()
				xs = append(xs, x)
				p.Add(x)
			}
			exact := Quantile(xs, q)
			got := p.Value()
			// Tolerance in quantile space: the estimate must sit between
			// nearby exact quantiles.
			loQ, hiQ := math.Max(0, q-0.03), math.Min(1, q+0.03)
			lo, hi := Quantile(xs, loQ), Quantile(xs, hiQ)
			if got < lo || got > hi {
				t.Errorf("%s q=%.2f: P² %.3f outside [%.3f, %.3f] (exact %.3f)", d.name, q, got, lo, hi, exact)
			}
		}
	}
}

// TestP2QuantileSmallSamples pins exactness below the five-marker
// threshold and sane behavior on tiny streams.
func TestP2QuantileSmallSamples(t *testing.T) {
	p := NewP2Quantile(0.5)
	if p.Value() != 0 || p.N() != 0 {
		t.Fatalf("empty estimator: value %v n %d", p.Value(), p.N())
	}
	p.Add(7)
	if p.Value() != 7 {
		t.Fatalf("n=1 median %v, want 7", p.Value())
	}
	p.Add(1)
	p.Add(3)
	if got, want := p.Value(), 3.0; got != want {
		t.Fatalf("n=3 median %v, want %v", got, want)
	}
}

// TestP2QuantileIgnoresNonFinite: a NaN or Inf must not wedge the markers.
func TestP2QuantileIgnoresNonFinite(t *testing.T) {
	p := NewP2Quantile(0.5)
	for i := 0; i < 100; i++ {
		p.Add(float64(i))
		p.Add(math.NaN())
		p.Add(math.Inf(1))
	}
	if p.N() != 100 {
		t.Fatalf("n = %d, want 100 (non-finite must not count)", p.N())
	}
	v := p.Value()
	if math.IsNaN(v) || v < 30 || v > 70 {
		t.Fatalf("median of 0..99 with NaN/Inf noise = %v", v)
	}
}

// TestStreamingSummaryMatchesSummarize compares the bounded-memory summary
// with the exact one: count/mean/min/max exactly, quantiles within
// tolerance.
func TestStreamingSummaryMatchesSummarize(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	s := NewStreamingSummary()
	xs := make([]float64, 0, 30000)
	for i := 0; i < 30000; i++ {
		x := LogNormal(r, 4, 0.5)
		xs = append(xs, x)
		s.Add(x)
	}
	s.Add(math.NaN())
	s.Add(math.Inf(-1))
	exact := Summarize(xs)
	got := s.Summary()
	if got.N != exact.N || got.Min != exact.Min || got.Max != exact.Max {
		t.Fatalf("exact fields diverge: got %+v want %+v", got, exact)
	}
	if math.Abs(got.Mean-exact.Mean) > 1e-9*exact.Mean {
		t.Fatalf("mean %v, want %v", got.Mean, exact.Mean)
	}
	if s.NonFinite != 2 {
		t.Fatalf("NonFinite = %d, want 2", s.NonFinite)
	}
	for _, c := range []struct {
		name     string
		got      float64
		q        float64
	}{{"p10", got.P10, 0.10}, {"p50", got.P50, 0.50}, {"p90", got.P90, 0.90}, {"p99", got.P99, 0.99}} {
		lo := Quantile(xs, math.Max(0, c.q-0.03))
		hi := Quantile(xs, math.Min(1, c.q+0.03))
		if c.got < lo || c.got > hi {
			t.Errorf("%s: P² %.3f outside exact band [%.3f, %.3f]", c.name, c.got, lo, hi)
		}
	}
}

// TestSummarizeInPlaceMatchesSummarize pins the no-copy form to the copying
// one, and NewCDFInPlace to NewCDF.
func TestSummarizeInPlaceMatchesSummarize(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.NormFloat64() * 100
	}
	want := Summarize(xs)
	own := append([]float64(nil), xs...)
	if got := SummarizeInPlace(own); got != want {
		t.Fatalf("SummarizeInPlace %+v != Summarize %+v", got, want)
	}
	c1 := NewCDF(xs)
	c2 := NewCDFInPlace(append([]float64(nil), xs...))
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.999, 1} {
		if c1.Quantile(q) != c2.Quantile(q) {
			t.Fatalf("q=%v: NewCDFInPlace %v != NewCDF %v", q, c2.Quantile(q), c1.Quantile(q))
		}
	}
	if c1.At(0) != c2.At(0) || c1.N() != c2.N() {
		t.Fatal("CDF At/N diverge between copying and in-place forms")
	}
}
