package stats

import (
	"math"
	"sort"
)

// P2Quantile is the Jain–Chlamtac P² streaming quantile estimator: five
// markers tracking the running q'th quantile in O(1) memory and O(1) per
// observation, with no retained samples. It is the bounded-memory
// alternative to Quantile for hot paths that cannot afford to buffer and
// sort their inputs (the full-sample forms stay the source of truth for
// experiment output, which must be exact).
type P2Quantile struct {
	q       float64
	n       int
	heights [5]float64 // marker heights (estimated quantile values)
	pos     [5]float64 // actual marker positions, 1-based
	want    [5]float64 // desired marker positions
	dwant   [5]float64 // desired-position increments per observation
}

// NewP2Quantile creates an estimator for the q'th quantile, q in (0, 1).
func NewP2Quantile(q float64) *P2Quantile {
	p := &P2Quantile{q: Clamp(q, 0, 1)}
	p.dwant = [5]float64{0, p.q / 2, p.q, (1 + p.q) / 2, 1}
	return p
}

// Q returns the target quantile.
func (p *P2Quantile) Q() float64 { return p.q }

// N returns the number of observations fed so far.
func (p *P2Quantile) N() int { return p.n }

// Add records one observation. Non-finite values are ignored — a single
// NaN would otherwise wedge every marker forever.
func (p *P2Quantile) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return
	}
	if p.n < 5 {
		p.heights[p.n] = x
		p.n++
		if p.n == 5 {
			sort.Float64s(p.heights[:])
			for i := range p.pos {
				p.pos[i] = float64(i + 1)
				p.want[i] = 1 + 4*p.dwant[i]
			}
		}
		return
	}
	p.n++
	// Find the cell k containing x and bump the extreme markers.
	var k int
	switch {
	case x < p.heights[0]:
		p.heights[0] = x
		k = 0
	case x >= p.heights[4]:
		p.heights[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < p.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := range p.want {
		p.want[i] += p.dwant[i]
	}
	// Nudge the three interior markers toward their desired positions,
	// adjusting heights by the P² parabolic fit (linear when the parabola
	// would cross a neighbor).
	for i := 1; i <= 3; i++ {
		d := p.want[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			h := p.parabolic(i, s)
			if p.heights[i-1] < h && h < p.heights[i+1] {
				p.heights[i] = h
			} else {
				p.heights[i] = p.linear(i, s)
			}
			p.pos[i] += s
		}
	}
}

// parabolic is the P² quadratic height adjustment for marker i moved by s.
func (p *P2Quantile) parabolic(i int, s float64) float64 {
	return p.heights[i] + s/(p.pos[i+1]-p.pos[i-1])*
		((p.pos[i]-p.pos[i-1]+s)*(p.heights[i+1]-p.heights[i])/(p.pos[i+1]-p.pos[i])+
			(p.pos[i+1]-p.pos[i]-s)*(p.heights[i]-p.heights[i-1])/(p.pos[i]-p.pos[i-1]))
}

// linear is the fallback height adjustment.
func (p *P2Quantile) linear(i int, s float64) float64 {
	j := i + int(s)
	return p.heights[i] + s*(p.heights[j]-p.heights[i])/(p.pos[j]-p.pos[i])
}

// Value returns the current quantile estimate. Below five observations it
// is the exact small-sample quantile.
func (p *P2Quantile) Value() float64 {
	if p.n == 0 {
		return 0
	}
	if p.n < 5 {
		var s [5]float64
		copy(s[:], p.heights[:p.n])
		sort.Float64s(s[:p.n])
		return sortedQuantile(s[:p.n], p.q)
	}
	return p.heights[2]
}

// StreamingSummary is the bounded-memory counterpart of Summarize: exact
// count/mean/min/max (Welford) plus P² estimates of the four quantiles a
// Summary reports, in O(1) memory per stream. Use it where aggregates over
// unbounded streams must not retain raw samples; use Summarize where the
// sample is small or exact order statistics are required.
type StreamingSummary struct {
	w        Welford
	min, max float64
	// NonFinite counts NaN/±Inf observations, which update nothing else.
	NonFinite int
	p10, p50, p90, p99 *P2Quantile
}

// NewStreamingSummary creates an empty streaming summary.
func NewStreamingSummary() *StreamingSummary {
	return &StreamingSummary{
		min: math.Inf(1), max: math.Inf(-1),
		p10: NewP2Quantile(0.10), p50: NewP2Quantile(0.50),
		p90: NewP2Quantile(0.90), p99: NewP2Quantile(0.99),
	}
}

// Add records one observation.
func (s *StreamingSummary) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		s.NonFinite++
		return
	}
	s.w.Add(x)
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
	s.p10.Add(x)
	s.p50.Add(x)
	s.p90.Add(x)
	s.p99.Add(x)
}

// N returns the number of finite observations recorded.
func (s *StreamingSummary) N() int { return s.w.N() }

// Summary renders the current state in the same shape Summarize returns;
// the quantiles are P² estimates, everything else is exact.
func (s *StreamingSummary) Summary() Summary {
	if s.w.N() == 0 {
		return Summary{}
	}
	return Summary{
		N: s.w.N(), Mean: s.w.Mean(), Min: s.min, Max: s.max,
		P10: s.p10.Value(), P50: s.p50.Value(), P90: s.p90.Value(), P99: s.p99.Value(),
	}
}
