// Package stats implements the statistical primitives the reproduction
// relies on: order statistics, empirical CDFs, the two-sample
// Kolmogorov–Smirnov test used to validate quartet homogeneity (§2.1 of the
// paper), streaming summaries, and the heavy-tailed random distributions
// that drive the fault model.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median of xs without modifying it, or 0 for an empty
// slice.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q'th empirical quantile of xs (q in [0,1]) using
// linear interpolation between order statistics. The input is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return sortedQuantile(s, q)
}

// sortedQuantile computes a quantile over an already-sorted slice.
func sortedQuantile(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	// a + frac*(b-a) instead of a*(1-frac) + b*frac: the symmetric form can
	// round an ulp below a when interpolating between equal order statistics,
	// which breaks quantile monotonicity. The clamp pins the few remaining
	// rounding escapes to the bracketing order statistics.
	v := s[lo] + frac*(s[lo+1]-s[lo])
	if v < s[lo] {
		v = s[lo]
	} else if v > s[lo+1] {
		v = s[lo+1]
	}
	return v
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N                  int
	Mean               float64
	Min, Max           float64
	P10, P50, P90, P99 float64
}

// Summarize computes a Summary of xs without modifying it (the input is
// copied and sorted). Hot paths that own their sample should use
// SummarizeInPlace and skip the copy; unbounded streams should use
// StreamingSummary and skip retaining samples entirely.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	return SummarizeInPlace(s)
}

// SummarizeInPlace computes a Summary of xs, sorting xs in place instead of
// copying it. The result is identical to Summarize.
func SummarizeInPlace(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sort.Float64s(xs)
	return Summary{
		N:    len(xs),
		Mean: Mean(xs),
		Min:  xs[0],
		Max:  xs[len(xs)-1],
		P10:  sortedQuantile(xs, 0.10),
		P50:  sortedQuantile(xs, 0.50),
		P90:  sortedQuantile(xs, 0.90),
		P99:  sortedQuantile(xs, 0.99),
	}
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f min=%.2f p10=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f",
		s.N, s.Mean, s.Min, s.P10, s.P50, s.P90, s.P99, s.Max)
}

// CDF is an empirical cumulative distribution function over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs (which it copies).
func NewCDF(xs []float64) CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return CDF{sorted: s}
}

// NewCDFInPlace builds an empirical CDF over xs itself, sorting it in place
// and taking ownership — the caller must not mutate xs afterwards. This is
// the no-copy form for hot paths that build a disposable sample slice just
// to wrap it in a CDF.
func NewCDFInPlace(xs []float64) CDF {
	sort.Float64s(xs)
	return CDF{sorted: xs}
}

// N returns the sample size underlying the CDF.
func (c CDF) N() int { return len(c.sorted) }

// At returns P(X <= x).
func (c CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// Index of first element > x.
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q'th quantile of the sample.
func (c CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return sortedQuantile(c.sorted, q)
}

// Points samples the CDF at n evenly spaced quantiles, returning (value,
// cumulative probability) pairs suitable for rendering figure series.
func (c CDF) Points(n int) [][2]float64 {
	if n < 2 || len(c.sorted) == 0 {
		return nil
	}
	out := make([][2]float64, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		out[i] = [2]float64{sortedQuantile(c.sorted, q), q}
	}
	return out
}

// KSStatistic returns the two-sample Kolmogorov–Smirnov statistic: the
// maximum absolute difference between the empirical CDFs of a and b.
func KSStatistic(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	var d float64
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		x := sa[i]
		if sb[j] < x {
			x = sb[j]
		}
		for i < len(sa) && sa[i] == x {
			i++
		}
		for j < len(sb) && sb[j] == x {
			j++
		}
		diff := math.Abs(float64(i)/float64(len(sa)) - float64(j)/float64(len(sb)))
		if diff > d {
			d = diff
		}
	}
	return d
}

// KSSameDistribution applies the two-sample K-S test at significance level
// alpha and reports whether the null hypothesis (same distribution) is NOT
// rejected. This mirrors the paper's validation that the two random halves
// of a quartet's RTT samples come from one distribution.
func KSSameDistribution(a, b []float64, alpha float64) bool {
	if len(a) == 0 || len(b) == 0 {
		return true
	}
	d := KSStatistic(a, b)
	// c(alpha) for the large-sample critical value sqrt(-ln(alpha/2)/2).
	cAlpha := math.Sqrt(-math.Log(alpha/2) / 2)
	n, m := float64(len(a)), float64(len(b))
	crit := cAlpha * math.Sqrt((n+m)/(n*m))
	return d <= crit
}

// Histogram counts values into fixed-width bins over [min, max); finite
// values outside the range are clamped into the edge bins. NaN and ±Inf
// cannot be binned — int(NaN) is platform-defined, so before the NonFinite
// counter existed a NaN silently landed in an arbitrary clamped bin — and
// are counted separately instead.
type Histogram struct {
	Min, Max float64
	Counts   []int
	// NonFinite counts NaN and ±Inf observations, which no bin receives.
	NonFinite int
	total     int
}

// NewHistogram creates a histogram with n bins spanning [min, max). It
// panics when n <= 0 or max <= min, which indicates a caller bug.
func NewHistogram(min, max float64, n int) *Histogram {
	if n <= 0 || max <= min {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, n)}
}

// Add records one observation. Non-finite values are diverted to the
// NonFinite counter: they carry no position on the axis, and converting
// them to a bin index is platform-defined.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		h.NonFinite++
		return
	}
	// Clamp in float space before the int conversion: converting a float
	// beyond int range is platform-defined (amd64 yields math.MinInt64, so a
	// huge positive value would land in the FIRST bin via the negative
	// clamp).
	f := (x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts))
	i := 0
	switch {
	case f >= float64(len(h.Counts)):
		i = len(h.Counts) - 1
	case f > 0:
		i = int(f)
		if i >= len(h.Counts) { // f just below len rounds up in conversion
			i = len(h.Counts) - 1
		}
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of binned observations; NonFinite rejects are
// not included (Fraction denominators stay consistent with the bins).
func (h *Histogram) Total() int { return h.total }

// Fraction returns the share of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// Welford implements a numerically stable streaming mean/variance
// accumulator.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running sample variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the running sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// BoundedPareto draws from a bounded Pareto distribution with shape alpha
// (> 0) on [lo, hi]. The paper's badness durations are long-tailed (§2.3);
// this is the generator behind them. Samples are guaranteed to stay inside
// [lo, hi]; see boundedParetoInv.
func BoundedPareto(r *rand.Rand, alpha, lo, hi float64) float64 {
	if lo >= hi {
		return lo
	}
	return boundedParetoInv(r.Float64(), alpha, lo, hi)
}

// boundedParetoInv is the inverse CDF of the bounded Pareto: the standard
// form x = (-(u·hi^α − u·lo^α − hi^α) / (hi^α·lo^α))^(−1/α), whose
// endpoints are algebraically exact (u=0 → lo, u=1 → hi) but escape
// numerically: when lo^α ≪ hi^α the numerator cancels to 0 for u near 1
// and Pow(0, −1/α) returns +Inf, and for hi^α beyond float range the
// Inf−Inf cancellation yields NaN. Those escapes are recomputed through
// the cancellation-free equivalent x = lo·(1 − u·(1 − (lo/hi)^α))^(−1/α)
// ((lo/hi)^α ∈ (0,1) never overflows) and the result clamped, so in-range
// draws keep their historical bit patterns (seeded schedules replay
// unchanged) while every sample lands in [lo, hi].
func boundedParetoInv(u, alpha, lo, hi float64) float64 {
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
	if x >= lo && x <= hi {
		return x
	}
	x = lo * math.Pow(1-u*(1-math.Pow(lo/hi, alpha)), -1/alpha)
	return Clamp(x, lo, hi)
}

// LogNormal draws from a log-normal distribution parameterized by the
// location mu and scale sigma of the underlying normal.
func LogNormal(r *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
