package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("odd median = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
	if Median(nil) != 0 {
		t.Error("Median(nil) != 0")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{9, 1, 5}
	Quantile(xs, 0.5)
	if xs[0] != 9 || xs[1] != 1 || xs[2] != 5 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileEdges(t *testing.T) {
	xs := []float64{10, 20, 30}
	if Quantile(xs, 0) != 10 || Quantile(xs, 1) != 30 {
		t.Error("quantile edges wrong")
	}
	if Quantile(xs, -0.5) != 10 || Quantile(xs, 1.5) != 30 {
		t.Error("out-of-range q must clamp")
	}
	if Quantile([]float64{7}, 0.9) != 7 {
		t.Error("single element quantile")
	}
}

func TestQuantileMonotonicProperty(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		a, b := math.Abs(math.Mod(q1, 1)), math.Abs(math.Mod(q2, 1))
		if a > b {
			a, b = b, a
		}
		return Quantile(raw, a) <= Quantile(raw, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	if s.N != 101 || s.Min != 0 || s.Max != 100 {
		t.Errorf("summary %+v", s)
	}
	if !almostEqual(s.P50, 50, 1e-9) || !almostEqual(s.P90, 90, 1e-9) {
		t.Errorf("percentiles %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Error("empty summary")
	}
	if s.String() == "" {
		t.Error("summary string empty")
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); !almostEqual(got, cse.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
	if NewCDF(nil).At(5) != 0 {
		t.Error("empty CDF must return 0")
	}
}

func TestCDFQuantileInverse(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	c := NewCDF(xs)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		v := c.Quantile(q)
		if got := c.At(v); !almostEqual(got, q, 0.01) {
			t.Errorf("At(Quantile(%v)) = %v", q, got)
		}
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0][1] != 0 || pts[4][1] != 1 {
		t.Error("point probabilities must span [0,1]")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] {
			t.Error("point values must be nondecreasing")
		}
	}
	if c.Points(1) != nil || NewCDF(nil).Points(5) != nil {
		t.Error("degenerate Points must return nil")
	}
}

func TestKSStatisticIdentical(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if d := KSStatistic(xs, xs); d != 0 {
		t.Errorf("KS of identical samples = %v", d)
	}
}

func TestKSStatisticDisjoint(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	if d := KSStatistic(a, b); !almostEqual(d, 1, 1e-12) {
		t.Errorf("KS of disjoint samples = %v", d)
	}
}

func TestKSSameDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a := make([]float64, 500)
	b := make([]float64, 500)
	c := make([]float64, 500)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64()
		c[i] = r.NormFloat64() + 3 // shifted
	}
	if !KSSameDistribution(a, b, 0.05) {
		t.Error("same-distribution samples rejected")
	}
	if KSSameDistribution(a, c, 0.05) {
		t.Error("shifted samples accepted")
	}
	if !KSSameDistribution(nil, a, 0.05) {
		t.Error("empty sample must not reject")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for i := 0; i < 10; i++ {
		h.Add(float64(i))
	}
	h.Add(-5) // clamps to first bin
	h.Add(99) // clamps to last bin
	if h.Total() != 12 {
		t.Errorf("total = %d", h.Total())
	}
	if h.Counts[0] != 3 { // 0, 1, -5
		t.Errorf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[4] != 3 { // 8, 9, 99
		t.Errorf("bin4 = %d", h.Counts[4])
	}
	if !almostEqual(h.Fraction(0), 0.25, 1e-12) {
		t.Errorf("fraction = %v", h.Fraction(0))
	}
}

func TestHistogramPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestWelford(t *testing.T) {
	var w Welford
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Errorf("n = %d", w.N())
	}
	if !almostEqual(w.Mean(), 5, 1e-12) {
		t.Errorf("mean = %v", w.Mean())
	}
	// Sample variance of this classic dataset is 32/7.
	if !almostEqual(w.Variance(), 32.0/7.0, 1e-9) {
		t.Errorf("variance = %v", w.Variance())
	}
	if !almostEqual(w.Stddev(), math.Sqrt(32.0/7.0), 1e-9) {
		t.Errorf("stddev = %v", w.Stddev())
	}
	var empty Welford
	if empty.Variance() != 0 {
		t.Error("variance of empty accumulator")
	}
}

func TestBoundedParetoRange(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		v := BoundedPareto(r, 1.2, 1, 100)
		if v < 1 || v > 100 {
			t.Fatalf("BoundedPareto out of range: %v", v)
		}
	}
	if BoundedPareto(r, 1.2, 5, 5) != 5 {
		t.Error("degenerate range must return lo")
	}
}

func TestBoundedParetoSkew(t *testing.T) {
	// A shape-1.2 bounded Pareto on [1,100] should put most mass near the
	// low end: the median well below the midpoint.
	r := rand.New(rand.NewSource(11))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = BoundedPareto(r, 1.2, 1, 100)
	}
	sort.Float64s(xs)
	med := xs[len(xs)/2]
	if med > 5 {
		t.Errorf("median %v too high; distribution not long-tailed", med)
	}
	if xs[len(xs)-1] < 50 {
		t.Errorf("max %v too low; tail missing", xs[len(xs)-1])
	}
}

func TestLogNormal(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	var w Welford
	for i := 0; i < 50000; i++ {
		w.Add(math.Log(LogNormal(r, 2, 0.5)))
	}
	if !almostEqual(w.Mean(), 2, 0.02) {
		t.Errorf("log-mean = %v", w.Mean())
	}
	if !almostEqual(w.Stddev(), 0.5, 0.02) {
		t.Errorf("log-stddev = %v", w.Stddev())
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 10) != 5 || Clamp(-1, 0, 10) != 0 || Clamp(11, 0, 10) != 10 {
		t.Error("Clamp wrong")
	}
}

func TestKSStatisticSymmetryProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		for _, v := range append(append([]float64{}, a...), b...) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		return almostEqual(KSStatistic(a, b), KSStatistic(b, a), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
