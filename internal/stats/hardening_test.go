package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestHistogramNonFinite pins the NaN/±Inf fix: int(NaN) is
// platform-defined, so before the NonFinite counter a NaN landed in an
// arbitrary clamped bin. Now every non-finite observation is diverted and
// the bins, Total, and Fraction stay untouched.
func TestHistogramNonFinite(t *testing.T) {
	cases := []struct {
		name string
		x    float64
	}{
		{"nan", math.NaN()},
		{"neg-nan", math.Float64frombits(0xFFF8000000000001)},
		{"+inf", math.Inf(1)},
		{"-inf", math.Inf(-1)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h := NewHistogram(0, 10, 5)
			h.Add(3)
			h.Add(c.x)
			if h.NonFinite != 1 {
				t.Errorf("NonFinite = %d, want 1", h.NonFinite)
			}
			if h.Total() != 1 {
				t.Errorf("Total = %d, want 1 (non-finite must not bin)", h.Total())
			}
			sum := 0
			for _, n := range h.Counts {
				sum += n
			}
			if sum != 1 {
				t.Errorf("bin mass = %d, want 1", sum)
			}
			if h.Fraction(1) != 1 {
				t.Errorf("Fraction(1) = %v, want 1 (denominator must exclude rejects)", h.Fraction(1))
			}
		})
	}
	// Finite extremes still clamp into the edge bins as before.
	h := NewHistogram(0, 10, 5)
	h.Add(-math.MaxFloat64)
	h.Add(math.MaxFloat64)
	if h.Counts[0] != 1 || h.Counts[4] != 1 || h.NonFinite != 0 {
		t.Errorf("finite extremes misrouted: %+v", h)
	}
}

// TestBoundedParetoInvEndpoints audits the inverse CDF at its algebraic
// endpoints and in the regimes where the standard form escapes numerically.
func TestBoundedParetoInvEndpoints(t *testing.T) {
	cases := []struct {
		name           string
		alpha, lo, hi  float64
	}{
		{"typical", 1.2, 1, 100},
		{"alpha-near-0", 1e-6, 1, 100},
		{"alpha-tiny-wide", 1e-9, 0.5, 1e6},
		{"alpha-large", 50, 1, 10},
		{"wide-range", 1.2, 1e-3, 1e12},
		{"overflow-ha", 3, 1, 1e200}, // hi^alpha overflows float64 → Inf−Inf in the naive form
		{"sub-one", 0.5, 0.01, 0.99},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := boundedParetoInv(0, c.alpha, c.lo, c.hi); math.Abs(got-c.lo) > 1e-9*c.lo {
				t.Errorf("u=0: got %v, want lo=%v", got, c.lo)
			}
			for _, u := range []float64{1, 1 - 1e-16, 0.999999999999999} {
				got := boundedParetoInv(u, c.alpha, c.lo, c.hi)
				if math.IsNaN(got) || math.IsInf(got, 0) {
					t.Fatalf("u=%v: non-finite sample %v", u, got)
				}
				if got < c.lo || got > c.hi {
					t.Errorf("u=%v: sample %v outside [%v, %v]", u, got, c.lo, c.hi)
				}
			}
		})
	}
}

// TestBoundedParetoProperty sweeps (alpha, lo, hi, u) combinations and
// requires every sample to be finite and inside [lo, hi] — the guarantee
// fault durations rely on (a NaN duration would wedge the fault scheduler).
func TestBoundedParetoProperty(t *testing.T) {
	alphas := []float64{1e-9, 1e-3, 0.3, 1, 1.2, 2.5, 20, 200}
	bounds := [][2]float64{{1, 100}, {1e-6, 1}, {0.5, 1e9}, {1e-300, 1e300}, {3, 3.0000001}}
	us := []float64{0, 1e-300, 1e-16, 0.25, 0.5, 0.9999, 1 - 1e-16, 1}
	for _, a := range alphas {
		for _, b := range bounds {
			for _, u := range us {
				x := boundedParetoInv(u, a, b[0], b[1])
				if math.IsNaN(x) || x < b[0] || x > b[1] {
					t.Fatalf("alpha=%g lo=%g hi=%g u=%g: sample %v escapes", a, b[0], b[1], u, x)
				}
			}
		}
	}
	// Random sweep on top of the grid.
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 50000; i++ {
		a := math.Exp(r.Float64()*12 - 6) // alpha in [e^-6, e^6]
		lo := math.Exp(r.Float64()*20 - 10)
		hi := lo * (1 + math.Exp(r.Float64()*10-2))
		x := BoundedPareto(r, a, lo, hi)
		if math.IsNaN(x) || x < lo || x > hi {
			t.Fatalf("iter %d: alpha=%g lo=%g hi=%g: sample %v escapes", i, a, lo, hi, x)
		}
	}
}

// TestBoundedParetoInRangeDrawsUnchanged pins the bit patterns of draws the
// original formula produced in range: seeded fault schedules (and through
// them every golden report) must replay unchanged.
func TestBoundedParetoInRangeDrawsUnchanged(t *testing.T) {
	naive := func(u, alpha, lo, hi float64) float64 {
		la := math.Pow(lo, alpha)
		ha := math.Pow(hi, alpha)
		return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
	}
	r := rand.New(rand.NewSource(29))
	for i := 0; i < 100000; i++ {
		u := r.Float64()
		want := naive(u, 1.2, 1, 100)
		if want < 1 || want > 100 {
			continue // an escape: the fix may legitimately differ here
		}
		got := boundedParetoInv(u, 1.2, 1, 100)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("u=%v: in-range draw changed bits: %v -> %v", u, want, got)
		}
	}
}
