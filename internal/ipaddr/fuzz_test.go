package ipaddr

import "testing"

// FuzzParseAddr checks that any string Parse accepts round-trips through
// String back to the same address, and that the rendered form is the
// canonical one Parse produces it from.
func FuzzParseAddr(f *testing.F) {
	for _, seed := range []string{
		"0.0.0.0", "255.255.255.255", "192.168.1.1", "10.0.0.1",
		"1.2.3.4", "01.2.3.4", "1.2.3", "1.2.3.4.5", "a.b.c.d",
		"-1.2.3.4", "256.1.1.1", "1..2.3", "",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		a, err := Parse(s)
		if err != nil {
			return
		}
		round := a.String()
		b, err := Parse(round)
		if err != nil {
			t.Fatalf("Parse(%q) ok but reparse of %q failed: %v", s, round, err)
		}
		if b != a {
			t.Fatalf("round trip changed address: %q -> %v -> %q -> %v", s, a, round, b)
		}
		if round != b.String() {
			t.Fatalf("String not canonical: %q vs %q", round, b.String())
		}
	})
}

// FuzzParsePrefix checks the CIDR parse/format round trip and the basic
// containment invariants of any prefix ParsePrefix accepts: the base has
// no host bits, the prefix contains its first and last address, excludes
// the addresses on either side, and covers itself.
func FuzzParsePrefix(f *testing.F) {
	for _, seed := range []string{
		"0.0.0.0/0", "255.255.255.255/32", "10.0.0.0/8", "192.168.1.0/24",
		"1.2.3.4/26", "1.2.3.4/33", "1.2.3.4/-1", "1.2.3.4", "1.2.3.4/",
		"1.2.3.4/2x", "300.0.0.0/8",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePrefix(s)
		if err != nil {
			return
		}
		if p.Len < 0 || p.Len > 32 {
			t.Fatalf("ParsePrefix(%q) accepted length %d", s, p.Len)
		}
		if p.Base&Mask(p.Len) != p.Base {
			t.Fatalf("ParsePrefix(%q) = %v has host bits set", s, p)
		}
		round := p.String()
		q, err := ParsePrefix(round)
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", round, err)
		}
		if q != p {
			t.Fatalf("round trip changed prefix: %q -> %v -> %q -> %v", s, p, round, q)
		}
		first := p.Base
		last := p.Base + Addr(p.NumAddrs()-1)
		if !p.Contains(first) || !p.Contains(last) {
			t.Fatalf("%v does not contain its own range [%v, %v]", p, first, last)
		}
		if p.Len > 0 {
			if first != 0 && p.Contains(first-1) {
				t.Fatalf("%v contains %v below its range", p, first-1)
			}
			if last != 0xFFFFFFFF && p.Contains(last+1) {
				t.Fatalf("%v contains %v above its range", p, last+1)
			}
		}
		if !p.ContainsPrefix(p) {
			t.Fatalf("%v does not cover itself", p)
		}
	})
}

// FuzzContainment drives MakePrefix/Contains/ContainsPrefix/Block24 with
// arbitrary numeric inputs: containment must agree with mask arithmetic,
// a prefix must cover every /24 carved out of it, and a longer prefix can
// never cover a shorter one.
func FuzzContainment(f *testing.F) {
	f.Add(uint32(0xC0A80100), 24, uint32(0xC0A80142))
	f.Add(uint32(0), 0, uint32(0xFFFFFFFF))
	f.Add(uint32(0x0A000000), 8, uint32(0x0B000000))
	f.Add(uint32(0xFFFFFFFF), 32, uint32(0xFFFFFFFF))
	f.Fuzz(func(t *testing.T, base uint32, length int, probe uint32) {
		if length < 0 {
			length = -length
		}
		length %= 33
		p := MakePrefix(Addr(base), length)
		a := Addr(probe)
		want := a&Mask(length) == p.Base
		if got := p.Contains(a); got != want {
			t.Fatalf("%v.Contains(%v) = %v, mask arithmetic says %v", p, a, got, want)
		}
		if p.Contains(a) {
			b24 := Block24(a)
			if length <= 24 && !p.ContainsPrefix(b24) {
				t.Fatalf("%v contains %v but not its /24 %v", p, a, b24)
			}
			if length > 24 && b24.ContainsPrefix(p) != (b24.Base == p.Base&Mask(24)) {
				t.Fatalf("/24 coverage of %v by %v inconsistent", p, b24)
			}
		}
		if length > 0 {
			wider := MakePrefix(Addr(base), length-1)
			if !wider.ContainsPrefix(p) {
				t.Fatalf("%v does not cover its own refinement %v", wider, p)
			}
			if p.ContainsPrefix(wider) && p != wider {
				t.Fatalf("longer prefix %v claims to cover shorter %v", p, wider)
			}
		}
	})
}
