// Package ipaddr provides the small amount of IPv4 arithmetic the
// reproduction needs: /24 block handling, CIDR formatting/parsing, and
// prefix containment, with addresses represented as host-order uint32s.
package ipaddr

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order.
type Addr uint32

// Make assembles an address from its four octets.
func Make(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// Octets splits the address into its four octets.
func (a Addr) Octets() (byte, byte, byte, byte) {
	return byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)
}

// String renders dotted-quad notation.
func (a Addr) String() string {
	o1, o2, o3, o4 := a.Octets()
	return fmt.Sprintf("%d.%d.%d.%d", o1, o2, o3, o4)
}

// Parse parses a dotted-quad IPv4 address.
func Parse(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("ipaddr: %q is not a dotted quad", s)
	}
	var a Addr
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 || (len(p) > 1 && p[0] == '0') {
			return 0, fmt.Errorf("ipaddr: bad octet %q in %q", p, s)
		}
		a = a<<8 | Addr(v)
	}
	return a, nil
}

// Mask returns the network mask for a prefix length.
func Mask(length int) Addr {
	if length <= 0 {
		return 0
	}
	if length >= 32 {
		return 0xFFFFFFFF
	}
	return Addr(0xFFFFFFFF << (32 - length))
}

// Prefix is an IPv4 CIDR block.
type Prefix struct {
	Base Addr
	Len  int
}

// MakePrefix builds a prefix, zeroing host bits of the base address.
func MakePrefix(base Addr, length int) Prefix {
	return Prefix{Base: base & Mask(length), Len: length}
}

// ParsePrefix parses "a.b.c.d/len" notation.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("ipaddr: %q has no prefix length", s)
	}
	base, err := Parse(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	length, err := strconv.Atoi(s[slash+1:])
	if err != nil || length < 0 || length > 32 {
		return Prefix{}, fmt.Errorf("ipaddr: bad prefix length in %q", s)
	}
	return MakePrefix(base, length), nil
}

// String renders CIDR notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", p.Base, p.Len)
}

// Contains reports whether the address falls inside the prefix.
func (p Prefix) Contains(a Addr) bool {
	return a&Mask(p.Len) == p.Base
}

// ContainsPrefix reports whether q is fully covered by p.
func (p Prefix) ContainsPrefix(q Prefix) bool {
	return q.Len >= p.Len && p.Contains(q.Base)
}

// NumAddrs returns the number of addresses in the prefix.
func (p Prefix) NumAddrs() int {
	return 1 << (32 - p.Len)
}

// Num24s returns the number of /24 blocks the prefix covers (zero for
// prefixes longer than /24).
func (p Prefix) Num24s() int {
	if p.Len > 24 {
		return 0
	}
	return 1 << (24 - p.Len)
}

// Block24 returns the /24 block containing the address.
func Block24(a Addr) Prefix {
	return MakePrefix(a, 24)
}

// Nth24 returns the base address of the i'th /24 inside the prefix. It
// panics if the prefix is longer than /24 or i is out of range, which would
// indicate a topology-generation bug.
func (p Prefix) Nth24(i int) Addr {
	if p.Len > 24 {
		panic("ipaddr: Nth24 on prefix longer than /24")
	}
	if i < 0 || i >= p.Num24s() {
		panic(fmt.Sprintf("ipaddr: Nth24 index %d out of range for %s", i, p))
	}
	return p.Base + Addr(i)<<8
}
