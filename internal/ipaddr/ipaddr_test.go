package ipaddr

import (
	"testing"
	"testing/quick"
)

func TestMakeOctetsRoundTrip(t *testing.T) {
	a := Make(10, 20, 30, 40)
	o1, o2, o3, o4 := a.Octets()
	if o1 != 10 || o2 != 20 || o3 != 30 || o4 != 40 {
		t.Fatalf("octets = %d.%d.%d.%d", o1, o2, o3, o4)
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		got, err := Parse(a.String())
		return err == nil && got == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	bad := []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "-1.2.3.4", "a.b.c.d", "01.2.3.4", "1..2.3"}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", s)
		}
	}
}

func TestMask(t *testing.T) {
	cases := []struct {
		len  int
		want Addr
	}{
		{0, 0}, {8, 0xFF000000}, {16, 0xFFFF0000}, {24, 0xFFFFFF00}, {32, 0xFFFFFFFF},
		{-3, 0}, {40, 0xFFFFFFFF},
	}
	for _, c := range cases {
		if got := Mask(c.len); got != c.want {
			t.Errorf("Mask(%d) = %08x, want %08x", c.len, uint32(got), uint32(c.want))
		}
	}
}

func TestMakePrefixZeroesHostBits(t *testing.T) {
	p := MakePrefix(Make(10, 1, 2, 3), 24)
	if p.Base != Make(10, 1, 2, 0) {
		t.Errorf("base = %s", p.Base)
	}
	if p.String() != "10.1.2.0/24" {
		t.Errorf("String = %s", p)
	}
}

func TestParsePrefix(t *testing.T) {
	p, err := ParsePrefix("192.168.0.0/16")
	if err != nil {
		t.Fatal(err)
	}
	if p.Base != Make(192, 168, 0, 0) || p.Len != 16 {
		t.Errorf("got %v", p)
	}
	for _, s := range []string{"1.2.3.4", "1.2.3.4/33", "1.2.3.4/-1", "1.2.3/8", "1.2.3.4/x"} {
		if _, err := ParsePrefix(s); err == nil {
			t.Errorf("ParsePrefix(%q) unexpectedly succeeded", s)
		}
	}
}

func TestContains(t *testing.T) {
	p := MakePrefix(Make(10, 0, 0, 0), 8)
	if !p.Contains(Make(10, 255, 1, 2)) {
		t.Error("10/8 should contain 10.255.1.2")
	}
	if p.Contains(Make(11, 0, 0, 0)) {
		t.Error("10/8 should not contain 11.0.0.0")
	}
}

func TestContainsPrefix(t *testing.T) {
	p16 := MakePrefix(Make(10, 1, 0, 0), 16)
	p24 := MakePrefix(Make(10, 1, 5, 0), 24)
	if !p16.ContainsPrefix(p24) {
		t.Error("/16 should contain nested /24")
	}
	if p24.ContainsPrefix(p16) {
		t.Error("/24 must not contain covering /16")
	}
	if !p16.ContainsPrefix(p16) {
		t.Error("prefix should contain itself")
	}
}

func TestNumAddrsAndNum24s(t *testing.T) {
	p := MakePrefix(Make(10, 0, 0, 0), 22)
	if p.NumAddrs() != 1024 {
		t.Errorf("NumAddrs = %d", p.NumAddrs())
	}
	if p.Num24s() != 4 {
		t.Errorf("Num24s = %d", p.Num24s())
	}
	if MakePrefix(0, 25).Num24s() != 0 {
		t.Error("/25 should cover zero /24s")
	}
}

func TestNth24(t *testing.T) {
	p := MakePrefix(Make(10, 0, 0, 0), 22)
	if got := p.Nth24(3); got != Make(10, 0, 3, 0) {
		t.Errorf("Nth24(3) = %s", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Nth24 out of range must panic")
		}
	}()
	p.Nth24(4)
}

func TestBlock24(t *testing.T) {
	b := Block24(Make(172, 16, 5, 77))
	if b.Base != Make(172, 16, 5, 0) || b.Len != 24 {
		t.Errorf("Block24 = %v", b)
	}
}

func TestContainmentProperty(t *testing.T) {
	// Every /24 enumerated by Nth24 is contained in its parent.
	f := func(v uint32, lenSeed uint8) bool {
		length := 8 + int(lenSeed)%17 // /8../24
		p := MakePrefix(Addr(v), length)
		for i := 0; i < p.Num24s(); i += 1 + p.Num24s()/8 {
			if !p.ContainsPrefix(MakePrefix(p.Nth24(i), 24)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
