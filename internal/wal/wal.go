// Package wal is blameitd's durability layer: a checksummed,
// length-prefixed, append-only write-ahead log over rotating segment
// files. The daemon journals the ingest queue's externally visible events
// — accepted batches, explicit seals, and the exact per-bucket streams
// the pipeline consumed — plus every published report and the aggregate
// feed's accepted cell batches. Because the pipeline's state is a
// deterministic function of the consumed observation streams, replaying
// the journaled buckets through the unchanged WarmupContext/StepContext
// path reconstructs the backend exactly, and a restart (including kill -9
// mid-window) serves /v1/reports byte-identical to an uninterrupted run.
//
// Durability semantics by fsync policy:
//
//	always    every append reaches the disk before the caller proceeds —
//	          acknowledged data survives power loss.
//	interval  a background flusher syncs on a timer — acknowledged data
//	          survives process death; power loss can lose the last window.
//	off       the OS flushes when it pleases — acknowledged data survives
//	          process death only.
//
// Process death (kill -9 included) never loses an acknowledged record
// under any policy: every append is one write(2) of a fully framed record
// with no userspace buffering, and the kernel keeps page-cache writes
// from dead processes. fsync only moves the power-loss line.
//
// Torn and corrupt tails: the scanner validates every record's CRC and
// body on open, truncates the log at the last valid record, deletes any
// later segments, and reports the discarded byte count so the daemon can
// surface it in /healthz.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"blameit/internal/ingest"
	"blameit/internal/netmodel"
	"blameit/internal/trace"
)

// Policy selects when appended records are fsynced.
type Policy string

const (
	SyncAlways   Policy = "always"
	SyncInterval Policy = "interval"
	SyncOff      Policy = "off"
)

// ParsePolicy resolves a -fsync flag value.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case SyncAlways, SyncInterval, SyncOff:
		return Policy(s), nil
	case "":
		return SyncInterval, nil
	}
	return "", fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or off)", s)
}

// Config tunes the log. Zero values take the defaults below.
type Config struct {
	// Fsync is the durability policy; see the package comment.
	Fsync Policy
	// FsyncInterval is the flush cadence under SyncInterval.
	FsyncInterval time.Duration
	// SegmentBytes rotates the active segment once it would exceed this.
	SegmentBytes int64
	// MaxRecordBytes bounds one record; larger appends fail and larger
	// lengths found on disk are treated as corruption.
	MaxRecordBytes int64
	// Meta is the daemon's configuration fingerprint. It is journaled as
	// the first record of every segment and must match on reopen: a WAL
	// replayed under different pipeline flags would diverge silently, so
	// a mismatch refuses to open instead.
	Meta string
}

const (
	DefaultFsyncInterval  = 100 * time.Millisecond
	DefaultSegmentBytes   = 64 << 20
	DefaultMaxRecordBytes = 64 << 20
)

func (c Config) withDefaults() Config {
	if c.Fsync == "" {
		c.Fsync = SyncInterval
	}
	if c.FsyncInterval <= 0 {
		c.FsyncInterval = DefaultFsyncInterval
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = DefaultSegmentBytes
	}
	if c.MaxRecordBytes <= 0 {
		c.MaxRecordBytes = DefaultMaxRecordBytes
	}
	return c
}

// ErrMetaMismatch means the directory's WAL was written by a daemon with
// different configuration; replaying it here would diverge.
var ErrMetaMismatch = errors.New("wal: configuration fingerprint mismatch")

// Stats is a point-in-time view of the log's activity.
type Stats struct {
	AppendedRecords int64
	AppendedBytes   int64
	Syncs           int64
	// LagRecords counts appended records not yet fsynced — the window a
	// power loss (not a process death) could lose.
	LagRecords  int64
	Segments    int
	Compactions int64
}

// BucketStream is one consumed bucket: the exact observation stream —
// stale arrivals first, then pending records in arrival order — the
// ingest queue served to the pipeline.
type BucketStream struct {
	Bucket netmodel.Bucket
	Obs    []trace.Observation
}

// Report is one journaled published report.
type Report struct {
	Seq       int64
	From, To  netmodel.Bucket
	Final     bool
	Canonical []byte
	// AfterBuckets is how many consumed-bucket records preceded this
	// report in the log. It is derived at scan time, not encoded:
	// recovery uses it to re-apply a drain flush's window discard at the
	// right point in the replayed consume sequence.
	AfterBuckets int
}

// Batch is one accepted ingest batch in push order.
type Batch struct {
	Obs []trace.Observation
	// AfterBuckets is how many consumed-bucket records preceded this
	// batch in the log — i.e. which reads had already happened when it
	// arrived. Derived at scan time, like Report.AfterBuckets: recovery
	// simulates each record's fate (served, discarded, or still queued)
	// against the reads that followed the batch.
	AfterBuckets int
}

// AggEvent is one aggregate-feed event in arrival order: either an
// accepted cell batch or a flush trigger.
type AggEvent struct {
	Flush   bool
	Through netmodel.Bucket
	Cells   []ingest.AggCell
}

// Recovery is everything a scan of the directory reconstructs.
type Recovery struct {
	// Buckets are the consumed per-bucket streams, in consumption order.
	Buckets []BucketStream
	// Batches are the accepted-but-possibly-unconsumed ingest batches in
	// push order. Recovery re-pushes what the consumed streams did not
	// already settle.
	Batches []Batch
	// Reports are the journaled published reports in publish order.
	Reports []Report
	// MaxSeal is the highest explicitly sealed bucket, or -1.
	MaxSeal netmodel.Bucket
	// AggEvents replays the aggregate buffer's history.
	AggEvents []AggEvent
	// AggHigh carries compaction bookkeeping forward; see snapshotRec.
	AggHigh netmodel.Bucket
	// TruncatedBytes is how much corrupt tail the open discarded.
	TruncatedBytes int64
	Segments       int

	// Snapshot bookkeeping from the scan.
	supersedes  uint64
	hasSnapshot bool
}

// Empty reports whether the scan found nothing to replay.
func (r *Recovery) Empty() bool {
	return len(r.Buckets) == 0 && len(r.Batches) == 0 && len(r.Reports) == 0 &&
		r.MaxSeal < 0 && len(r.AggEvents) == 0
}

// Log is the append side. All methods are safe for concurrent use.
type Log struct {
	dir string
	cfg Config

	mu     sync.Mutex
	f      *os.File
	seq    uint64 // active segment sequence number
	size   int64  // active segment size
	stats  Stats
	closed bool

	buf []byte // scratch frame buffer, reused under mu

	stop     chan struct{} // interval flusher shutdown
	syncDone chan struct{}

	// compactStep, when set (tests), is called between compaction phases
	// so crash points inside the compaction protocol can be exercised
	// deterministically. Returning false abandons the compaction at that
	// point, as a kill would.
	compactStep func(phase string) bool
}

func segName(seq uint64) string { return fmt.Sprintf("wal-%010d.log", seq) }

// Open scans dir (created if missing), recovers its contents, truncates
// any corrupt tail, and returns the log opened for append plus the
// recovery state. The returned Recovery is never nil.
func Open(dir string, cfg Config) (*Log, *Recovery, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			// A compaction that died before its rename; its contents are
			// not part of the log.
			os.Remove(filepath.Join(dir, name))
			continue
		}
		var seq uint64
		if _, err := fmt.Sscanf(name, "wal-%d.log", &seq); err == nil {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })

	rec := &Recovery{MaxSeal: -1, AggHigh: -1}
	l := &Log{dir: dir, cfg: cfg}

	// Scan segments in order. The first corruption truncates: the file is
	// cut back to its last valid record and every later segment is
	// discarded — replay needs a consistent prefix, and anything after a
	// corrupt record has no trustworthy ordering against it.
	truncatedFrom := -1
	for i, seq := range seqs {
		path := filepath.Join(dir, segName(seq))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: %w", err)
		}
		if len(data) < segHeader || string(data[:len(segMagic)]) != segMagic {
			rec.TruncatedBytes += int64(len(data))
			os.Remove(path)
			truncatedFrom = i
			break
		}
		recs, valid := scanRecords(data[segHeader:], cfg.MaxRecordBytes)
		if err := interpret(rec, recs, cfg.Meta); err != nil {
			return nil, nil, err
		}
		if int(valid) < len(data)-segHeader {
			rec.TruncatedBytes += int64(len(data)-segHeader) - valid
			if err := os.Truncate(path, int64(segHeader)+valid); err != nil {
				return nil, nil, fmt.Errorf("wal: truncating corrupt tail: %w", err)
			}
			truncatedFrom = i + 1
			break
		}
	}
	if truncatedFrom >= 0 {
		for _, seq := range seqs[truncatedFrom:] {
			path := filepath.Join(dir, segName(seq))
			if st, err := os.Stat(path); err == nil {
				rec.TruncatedBytes += st.Size()
			}
			os.Remove(path)
		}
		seqs = seqs[:truncatedFrom]
	}

	// Drop segments a surviving snapshot superseded: a compaction that
	// renamed its rewrite but died before deleting the originals leaves
	// both on disk, and the snapshot marker says which to trust.
	if super, ok := maxSupersedes(rec); ok {
		kept := seqs[:0]
		for _, seq := range seqs {
			if seq <= super {
				os.Remove(filepath.Join(dir, segName(seq)))
				continue
			}
			kept = append(kept, seq)
		}
		seqs = kept
	}
	rec.Segments = len(seqs)

	if len(seqs) == 0 {
		l.seq = 1
		f, size, err := l.createSegment(l.seq, nil)
		if err != nil {
			return nil, nil, err
		}
		l.f, l.size = f, size
	} else {
		l.seq = seqs[len(seqs)-1]
		path := filepath.Join(dir, segName(l.seq))
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o666)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: %w", err)
		}
		l.f, l.size = f, st.Size()
	}
	l.stats.Segments = len(seqs)
	if l.stats.Segments == 0 {
		l.stats.Segments = 1
	}

	if cfg.Fsync == SyncInterval {
		l.stop = make(chan struct{})
		l.syncDone = make(chan struct{})
		go l.flusher()
	}
	return l, rec, nil
}

// interpret folds scanned records into the recovery state. A snapshot
// record resets it: the compacted segment restates everything that still
// matters from the segments it supersedes.
func interpret(rec *Recovery, recs []rawRecord, wantMeta string) error {
	for _, r := range recs {
		switch r.typ {
		case recMeta:
			if got := r.val.(string); got != wantMeta {
				return fmt.Errorf("%w: log written under %q, reopened under %q", ErrMetaMismatch, got, wantMeta)
			}
		case recSnapshot:
			s := r.val.(snapshotRec)
			rec.Buckets, rec.Batches, rec.Reports = nil, nil, nil
			rec.AggEvents = nil
			rec.MaxSeal = -1
			rec.AggHigh = netmodel.Bucket(s.aggHigh)
			rec.supersedes, rec.hasSnapshot = s.supersedes, true
		case recBatch:
			rec.Batches = append(rec.Batches, Batch{Obs: r.val.([]trace.Observation), AfterBuckets: len(rec.Buckets)})
		case recBucket:
			rec.Buckets = append(rec.Buckets, r.val.(BucketStream))
		case recSeal:
			if b := r.val.(netmodel.Bucket); b > rec.MaxSeal {
				rec.MaxSeal = b
			}
		case recReport:
			rep := r.val.(Report)
			rep.AfterBuckets = len(rec.Buckets)
			rec.Reports = append(rec.Reports, rep)
		case recAggBatch:
			rec.AggEvents = append(rec.AggEvents, AggEvent{Cells: r.val.([]ingest.AggCell)})
		case recAggFlush:
			rec.AggEvents = append(rec.AggEvents, AggEvent{Flush: true, Through: r.val.(netmodel.Bucket)})
		}
	}
	return nil
}

// maxSupersedes returns the supersede marker of the last snapshot seen.
func maxSupersedes(rec *Recovery) (uint64, bool) {
	return rec.supersedes, rec.hasSnapshot
}

// createSegment writes a fresh segment file: header, meta record, and any
// extra pre-framed payloads (a compaction's snapshot + kept records). The
// file and directory are fsynced before it is trusted.
func (l *Log) createSegment(seq uint64, extra []byte) (*os.File, int64, error) {
	path := filepath.Join(l.dir, segName(seq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o666)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	buf := make([]byte, 0, segHeader+64+len(extra))
	buf = append(buf, segMagic...)
	buf = append(buf, byte(segVersion), 0, 0, 0)
	buf = appendFrame(buf, append([]byte{recMeta}, l.cfg.Meta...))
	buf = append(buf, extra...)
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(path)
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	syncDir(l.dir)
	return f, int64(len(buf)), nil
}

func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// append frames and writes one record under the configured fsync policy,
// rotating the active segment first when it would overflow.
func (l *Log) append(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log closed")
	}
	if int64(len(payload)) > l.cfg.MaxRecordBytes {
		return fmt.Errorf("wal: record %d bytes exceeds limit %d", len(payload), l.cfg.MaxRecordBytes)
	}
	frame := appendFrame(l.buf[:0], payload)
	l.buf = frame[:0]
	if l.size+int64(len(frame)) > l.cfg.SegmentBytes && l.size > int64(segHeader) {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.size += int64(len(frame))
	l.stats.AppendedRecords++
	l.stats.AppendedBytes += int64(len(frame))
	if l.cfg.Fsync == SyncAlways {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.stats.Syncs++
	} else {
		l.stats.LagRecords++
	}
	return nil
}

func (l *Log) rotateLocked() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.stats.Syncs++
	l.stats.LagRecords = 0
	l.f.Close()
	f, size, err := l.createSegment(l.seq+1, nil)
	if err != nil {
		return err
	}
	l.seq++
	l.f, l.size = f, size
	l.stats.Segments++
	return nil
}

// AppendBatch journals one accepted ingest batch in queue push order.
func (l *Log) AppendBatch(obs []trace.Observation) error {
	return l.append(appendObs([]byte{recBatch}, obs))
}

// AppendBucket journals the exact stream served to the pipeline for one
// consumed bucket. Empty streams are journaled too: replay must re-seal
// empty buckets in the same places.
func (l *Log) AppendBucket(b netmodel.Bucket, obs []trace.Observation) error {
	buf := appendVarintByte(recBucket, int64(b))
	return l.append(appendObs(buf, obs))
}

// AppendSeal journals one explicit watermark advance.
func (l *Log) AppendSeal(b netmodel.Bucket) error {
	return l.append(appendVarintByte(recSeal, int64(b)))
}

// AppendReport journals one published report's canonical JSON.
func (l *Log) AppendReport(rep Report) error {
	buf := appendVarintByte(recReport, rep.Seq)
	buf = appendVarint(buf, int64(rep.From))
	buf = appendVarint(buf, int64(rep.To))
	if rep.Final {
		buf = appendVarint(buf, 1)
	} else {
		buf = appendVarint(buf, 0)
	}
	return l.append(append(buf, rep.Canonical...))
}

// AppendAggBatch journals one accepted aggregate cell batch.
func (l *Log) AppendAggBatch(cells []ingest.AggCell) error {
	return l.append(appendCells([]byte{recAggBatch}, cells))
}

// AppendAggFlush journals one aggregate flush trigger.
func (l *Log) AppendAggFlush(through netmodel.Bucket) error {
	return l.append(appendVarintByte(recAggFlush, int64(through)))
}

// Sync forces everything appended so far to disk.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.closed || l.f == nil {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.stats.Syncs++
	l.stats.LagRecords = 0
	return nil
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Close syncs and closes the active segment and stops the flusher.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	err := l.syncLocked()
	l.closed = true
	if l.f != nil {
		l.f.Close()
	}
	stop := l.stop
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.syncDone
	}
	return err
}

// Abandon closes the file handles without syncing — the crash-simulation
// path for tests: whatever the OS has is whatever a kill -9 would leave.
func (l *Log) Abandon() {
	l.mu.Lock()
	l.closed = true
	if l.f != nil {
		l.f.Close()
	}
	stop := l.stop
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.syncDone
	}
}

func (l *Log) flusher() {
	defer close(l.syncDone)
	t := time.NewTicker(l.cfg.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.stats.LagRecords > 0 {
				l.syncLocked()
			}
			l.mu.Unlock()
		}
	}
}

func appendVarint(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}

func appendVarintByte(typ byte, v int64) []byte {
	return appendVarint([]byte{typ}, v)
}
