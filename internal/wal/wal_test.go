package wal

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"blameit/internal/ingest"
	"blameit/internal/netmodel"
	"blameit/internal/trace"
)

func obsFor(b netmodel.Bucket, n int) []trace.Observation {
	obs := make([]trace.Observation, n)
	for i := range obs {
		obs[i] = trace.Observation{
			Prefix:  netmodel.PrefixID(i % 7),
			Cloud:   netmodel.CloudID(i % 3),
			Device:  netmodel.DeviceClass(i % 2),
			Bucket:  b,
			Samples: 10 + i,
			MeanRTT: 42.5 + float64(i),
			Clients: 3 + i,
		}
	}
	return obs
}

// writeSample populates a fresh log with one of every record type and
// returns what recovery should reconstruct.
func writeSample(t *testing.T, dir string, cfg Config) *Recovery {
	t.Helper()
	l, rec, err := Open(dir, cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !rec.Empty() {
		t.Fatalf("fresh dir recovered non-empty state: %+v", rec)
	}
	want := &Recovery{MaxSeal: -1, AggHigh: -1}

	batch0 := obsFor(0, 5)
	// Exercise the exact-bits paths: NaN, Inf, negative counts (chaos
	// corruption shapes that must survive the round-trip bit for bit).
	batch0[1].MeanRTT = math.NaN()
	batch0[2].MeanRTT = math.Inf(1)
	batch0[3].Samples = -4
	batch0[4].Clients = -1
	if err := l.AppendBatch(batch0); err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	want.Batches = append(want.Batches, Batch{Obs: batch0, AfterBuckets: 0})

	if err := l.AppendBucket(0, batch0); err != nil {
		t.Fatalf("AppendBucket: %v", err)
	}
	want.Buckets = append(want.Buckets, BucketStream{Bucket: 0, Obs: batch0})
	if err := l.AppendBucket(1, nil); err != nil {
		t.Fatalf("AppendBucket empty: %v", err)
	}
	want.Buckets = append(want.Buckets, BucketStream{Bucket: 1})

	if err := l.AppendSeal(3); err != nil {
		t.Fatalf("AppendSeal: %v", err)
	}
	want.MaxSeal = 3

	rep := Report{Seq: 0, From: 0, To: 2, Final: true, Canonical: []byte(`{"from":0,"to":2}` + "\n")}
	if err := l.AppendReport(rep); err != nil {
		t.Fatalf("AppendReport: %v", err)
	}
	want.Reports = append(want.Reports, rep)

	cells := []ingest.AggCell{{Agent: 1, Epoch: 2, Seq: 3, Bucket: 4, Prefix: 5, Cloud: 1, Device: 1, Samples: 9, MeanRTT: 55.25, Clients: 2}}
	if err := l.AppendAggBatch(cells); err != nil {
		t.Fatalf("AppendAggBatch: %v", err)
	}
	want.AggEvents = append(want.AggEvents, AggEvent{Cells: cells})
	if err := l.AppendAggFlush(4); err != nil {
		t.Fatalf("AppendAggFlush: %v", err)
	}
	want.AggEvents = append(want.AggEvents, AggEvent{Flush: true, Through: 4})

	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return want
}

func checkRecovered(t *testing.T, got, want *Recovery) {
	t.Helper()
	if len(got.Buckets) != len(want.Buckets) {
		t.Fatalf("recovered %d bucket streams, want %d", len(got.Buckets), len(want.Buckets))
	}
	for i := range want.Buckets {
		if got.Buckets[i].Bucket != want.Buckets[i].Bucket {
			t.Errorf("bucket stream %d: bucket %d, want %d", i, got.Buckets[i].Bucket, want.Buckets[i].Bucket)
		}
		if !obsEqual(got.Buckets[i].Obs, want.Buckets[i].Obs) {
			t.Errorf("bucket stream %d: observations differ", i)
		}
	}
	if len(got.Batches) != len(want.Batches) {
		t.Fatalf("recovered %d batches, want %d", len(got.Batches), len(want.Batches))
	}
	for i := range want.Batches {
		if !obsEqual(got.Batches[i].Obs, want.Batches[i].Obs) {
			t.Errorf("batch %d: observations differ", i)
		}
		if got.Batches[i].AfterBuckets != want.Batches[i].AfterBuckets {
			t.Errorf("batch %d: AfterBuckets = %d, want %d", i, got.Batches[i].AfterBuckets, want.Batches[i].AfterBuckets)
		}
	}
	if len(got.Reports) != len(want.Reports) {
		t.Fatalf("recovered %d reports, want %d", len(got.Reports), len(want.Reports))
	}
	for i := range want.Reports {
		g, w := got.Reports[i], want.Reports[i]
		if g.Seq != w.Seq || g.From != w.From || g.To != w.To || g.Final != w.Final || !bytes.Equal(g.Canonical, w.Canonical) {
			t.Errorf("report %d: got %+v want %+v", i, g, w)
		}
	}
	if got.MaxSeal != want.MaxSeal {
		t.Errorf("MaxSeal = %d, want %d", got.MaxSeal, want.MaxSeal)
	}
	if !reflect.DeepEqual(got.AggEvents, want.AggEvents) {
		t.Errorf("AggEvents = %+v, want %+v", got.AggEvents, want.AggEvents)
	}
}

// obsEqual compares observations with NaN-aware float equality (the codec
// round-trips IEEE bits, so NaN must compare equal to itself here).
func obsEqual(a, b []trace.Observation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if math.Float64bits(x.MeanRTT) != math.Float64bits(y.MeanRTT) {
			return false
		}
		x.MeanRTT, y.MeanRTT = 0, 0
		if x != y {
			return false
		}
	}
	return true
}

func TestRoundTrip(t *testing.T) {
	for _, policy := range []Policy{SyncAlways, SyncInterval, SyncOff} {
		t.Run(string(policy), func(t *testing.T) {
			dir := t.TempDir()
			cfg := Config{Fsync: policy, Meta: "test-meta"}
			want := writeSample(t, dir, cfg)
			l, rec, err := Open(dir, cfg)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer l.Close()
			checkRecovered(t, rec, want)
			if rec.TruncatedBytes != 0 {
				t.Errorf("TruncatedBytes = %d on a clean log", rec.TruncatedBytes)
			}
		})
	}
}

func TestMetaMismatchRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	writeSample(t, dir, Config{Meta: "scale=small seed=1"})
	_, _, err := Open(dir, Config{Meta: "scale=small seed=2"})
	if err == nil {
		t.Fatal("Open with a different meta fingerprint succeeded")
	}
}

// TestTornTailTruncation cuts the log at every byte offset and reopens:
// recovery must always succeed with a strict prefix of the records, count
// the discarded bytes, and leave the file appendable.
func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Fsync: SyncOff, Meta: "m"}
	want := writeSample(t, dir, cfg)
	path := filepath.Join(dir, segName(1))
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	stride := 1
	if testing.Short() {
		stride = 37
	}
	for cut := len(full) - 1; cut >= 0; cut -= stride {
		dir2 := t.TempDir()
		path2 := filepath.Join(dir2, segName(1))
		if err := os.WriteFile(path2, full[:cut], 0o666); err != nil {
			t.Fatal(err)
		}
		l, rec, err := Open(dir2, cfg)
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		if len(rec.Buckets) > len(want.Buckets) || len(rec.Reports) > len(want.Reports) {
			t.Fatalf("cut=%d: recovered more than was written", cut)
		}
		// The log must remain appendable after tail truncation.
		if err := l.AppendSeal(9); err != nil {
			t.Fatalf("cut=%d: append after truncation: %v", cut, err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("cut=%d: close: %v", cut, err)
		}
		l2, rec2, err := Open(dir2, cfg)
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		if rec2.MaxSeal != 9 {
			t.Fatalf("cut=%d: post-truncation append lost: MaxSeal=%d", cut, rec2.MaxSeal)
		}
		l2.Close()
	}
}

// TestBitFlipTruncation flips each byte in turn: the scanner must never
// panic, must recover a prefix, and must report the truncated tail.
func TestBitFlipTruncation(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Fsync: SyncOff, Meta: "m"}
	writeSample(t, dir, cfg)
	path := filepath.Join(dir, segName(1))
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	stride := 1
	if testing.Short() {
		stride = 23
	}
	for off := segHeader; off < len(full); off += stride {
		mut := append([]byte(nil), full...)
		mut[off] ^= 0x40
		dir2 := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir2, segName(1)), mut, 0o666); err != nil {
			t.Fatal(err)
		}
		l, rec, err := Open(dir2, cfg)
		if err != nil {
			// A flip inside the meta record legitimately fails the
			// fingerprint check rather than truncating.
			continue
		}
		if rec.TruncatedBytes == 0 && !recEqualBytes(dir2, dir) {
			t.Fatalf("off=%d: corruption neither truncated nor preserved the log", off)
		}
		l.Close()
	}
}

func recEqualBytes(dirA, dirB string) bool {
	a, errA := os.ReadFile(filepath.Join(dirA, segName(1)))
	b, errB := os.ReadFile(filepath.Join(dirB, segName(1)))
	return errA == nil && errB == nil && bytes.Equal(a, b)
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Fsync: SyncOff, SegmentBytes: 256, Meta: "m"}
	l, _, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want []BucketStream
	for b := netmodel.Bucket(0); b < 40; b++ {
		obs := obsFor(b, 3)
		if err := l.AppendBucket(b, obs); err != nil {
			t.Fatalf("append bucket %d: %v", b, err)
		}
		want = append(want, BucketStream{Bucket: b, Obs: obs})
	}
	st := l.Stats()
	if st.Segments < 2 {
		t.Fatalf("Segments = %d, want rotation past 1 segment", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(rec.Buckets) != len(want) {
		t.Fatalf("recovered %d bucket streams across segments, want %d", len(rec.Buckets), len(want))
	}
	for i := range want {
		if rec.Buckets[i].Bucket != want[i].Bucket || !obsEqual(rec.Buckets[i].Obs, want[i].Obs) {
			t.Fatalf("bucket stream %d differs after rotation", i)
		}
	}
}

// TestAbandonKeepsAcknowledged simulates a kill -9: Abandon closes the fd
// without syncing; every record appended before the crash must still be
// recovered (the OS keeps page-cache writes from dead processes).
func TestAbandonKeepsAcknowledged(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Fsync: SyncOff, Meta: "m"}
	l, _, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for b := netmodel.Bucket(0); b < 10; b++ {
		if err := l.AppendBucket(b, obsFor(b, 2)); err != nil {
			t.Fatal(err)
		}
	}
	l.Abandon()
	_, rec, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Buckets) != 10 {
		t.Fatalf("recovered %d bucket streams after abandon, want 10", len(rec.Buckets))
	}
}

func TestStatsAndLag(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Config{Fsync: SyncOff, Meta: "m"})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 5; i++ {
		if err := l.AppendSeal(netmodel.Bucket(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.AppendedRecords != 5 || st.LagRecords != 5 {
		t.Fatalf("Stats = %+v, want 5 appended / 5 lagging under SyncOff", st)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.LagRecords != 0 {
		t.Fatalf("LagRecords = %d after Sync, want 0", st.LagRecords)
	}
}
