package wal

import (
	"encoding/binary"
	"hash/crc32"
	"math"

	"blameit/internal/ingest"
	"blameit/internal/netmodel"
	"blameit/internal/trace"
)

// Record framing. Every record is
//
//	[uint32 payload length][uint32 CRC-32C of payload][payload]
//
// little-endian, where payload is one type byte followed by the
// type-specific body. The CRC covers the whole payload, so a torn write —
// a partial length, a partial payload, or a payload that never made it to
// disk at all — fails validation and the scanner truncates the log at the
// last record that checks out. Lengths are validated against the
// configured maximum before any allocation, so a corrupt length field
// (even one that survives the CRC of some earlier record) cannot drive an
// out-of-memory allocation.
const (
	frameHeader = 8 // uint32 length + uint32 crc

	recMeta     = 0x01 // configuration fingerprint; first record of every segment
	recSnapshot = 0x02 // compaction marker: supersedes all lower segments
	recBatch    = 0x03 // one accepted ingest batch, in queue push order
	recBucket   = 0x04 // one consumed bucket: the exact stream served to the pipeline
	recSeal     = 0x05 // one explicit watermark advance
	recReport   = 0x06 // one published report's canonical JSON
	recAggBatch = 0x07 // one accepted /v1/aggregates cell batch
	recAggFlush = 0x08 // one aggregate flush trigger (buckets <= through flushed)
)

// segment file header: magic + format version.
const (
	segMagic   = "BLAMEWAL"
	segVersion = 1
	segHeader  = len(segMagic) + 4
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendFrame frames one payload (type byte already included) onto buf.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// rawRecord is one CRC-valid record as scanned from a segment, with its
// decoded body. The body slice aliases the scanned file buffer; decoded
// values own their memory.
type rawRecord struct {
	typ  byte
	body []byte
	val  any
}

// scanRecords walks data (a segment's bytes after the header) and returns
// the longest prefix of frame-valid, body-decodable records plus the byte
// offset where that prefix ends. Anything after the returned offset —
// a torn frame, a CRC mismatch, an over-long length, an unknown type, or
// an undecodable body — is the corrupt tail the caller truncates.
func scanRecords(data []byte, maxRecord int64) (recs []rawRecord, valid int64) {
	off := int64(0)
	for {
		rest := data[off:]
		if len(rest) < frameHeader {
			return recs, off
		}
		n := int64(binary.LittleEndian.Uint32(rest[0:4]))
		if n == 0 || n > maxRecord || n > int64(len(rest))-frameHeader {
			return recs, off
		}
		payload := rest[frameHeader : frameHeader+n]
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(rest[4:8]) {
			return recs, off
		}
		typ, body := payload[0], payload[1:]
		val, ok := decodeBody(typ, body)
		if !ok {
			return recs, off
		}
		recs = append(recs, rawRecord{typ: typ, body: body, val: val})
		off += frameHeader + n
	}
}

// reader is a bounds-checked cursor over a record body. Any overrun sets
// err and subsequent reads return zero values, so decoders can read the
// whole shape and check err once.
type reader struct {
	b   []byte
	err bool
}

func (r *reader) varint() int64 {
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.err = true
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) uvarint() uint64 {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.err = true
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) f64() float64 {
	if len(r.b) < 8 {
		r.err = true
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b))
	r.b = r.b[8:]
	return v
}

func (r *reader) rest() []byte {
	b := r.b
	r.b = nil
	return b
}

func (r *reader) empty() bool { return len(r.b) == 0 }

// Observation codec: varints for the integer fields (chaos-corrupted
// records can carry negative samples or clients, so everything is
// sign-aware) and the raw IEEE bits for MeanRTT so NaN and ±Inf round-trip
// exactly — the quarantine must see post-restart exactly what it saw live.
const minObsBytes = 5 + 8 + 1 // five 1-byte varints, 8-byte float, 1-byte varint

func appendObs(buf []byte, obs []trace.Observation) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(obs)))
	for i := range obs {
		o := &obs[i]
		buf = binary.AppendVarint(buf, int64(o.Prefix))
		buf = binary.AppendVarint(buf, int64(o.Cloud))
		buf = binary.AppendVarint(buf, int64(o.Device))
		buf = binary.AppendVarint(buf, int64(o.Bucket))
		buf = binary.AppendVarint(buf, int64(o.Samples))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(o.MeanRTT))
		buf = binary.AppendVarint(buf, int64(o.Clients))
	}
	return buf
}

func readObs(r *reader) []trace.Observation {
	n := r.uvarint()
	if r.err || n > uint64(len(r.b)/minObsBytes)+1 {
		r.err = true
		return nil
	}
	obs := make([]trace.Observation, 0, n)
	for i := uint64(0); i < n; i++ {
		var o trace.Observation
		o.Prefix = netmodel.PrefixID(r.varint())
		o.Cloud = netmodel.CloudID(r.varint())
		o.Device = netmodel.DeviceClass(r.varint())
		o.Bucket = netmodel.Bucket(r.varint())
		o.Samples = int(r.varint())
		o.MeanRTT = r.f64()
		o.Clients = int(r.varint())
		if r.err {
			return nil
		}
		obs = append(obs, o)
	}
	return obs
}

const minCellBytes = 9 + 8 // nine 1-byte varints, 8-byte float

func appendCells(buf []byte, cells []ingest.AggCell) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(cells)))
	for i := range cells {
		c := &cells[i]
		buf = binary.AppendVarint(buf, int64(c.Agent))
		buf = binary.AppendVarint(buf, int64(c.Epoch))
		buf = binary.AppendVarint(buf, c.Seq)
		buf = binary.AppendVarint(buf, int64(c.Bucket))
		buf = binary.AppendVarint(buf, int64(c.Prefix))
		buf = binary.AppendVarint(buf, int64(c.Cloud))
		buf = binary.AppendVarint(buf, int64(c.Device))
		buf = binary.AppendVarint(buf, int64(c.Samples))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.MeanRTT))
		buf = binary.AppendVarint(buf, int64(c.Clients))
	}
	return buf
}

func readCells(r *reader) []ingest.AggCell {
	n := r.uvarint()
	if r.err || n > uint64(len(r.b)/minCellBytes)+1 {
		r.err = true
		return nil
	}
	cells := make([]ingest.AggCell, 0, n)
	for i := uint64(0); i < n; i++ {
		var c ingest.AggCell
		c.Agent = int(r.varint())
		c.Epoch = int(r.varint())
		c.Seq = r.varint()
		c.Bucket = netmodel.Bucket(r.varint())
		c.Prefix = netmodel.PrefixID(r.varint())
		c.Cloud = netmodel.CloudID(r.varint())
		c.Device = netmodel.DeviceClass(r.varint())
		c.Samples = int(r.varint())
		c.MeanRTT = r.f64()
		c.Clients = int(r.varint())
		if r.err {
			return nil
		}
		cells = append(cells, c)
	}
	return cells
}

// snapshotRec is the compaction marker. DroppedConsumed accounts, per
// bucket, for consumed records whose originating batch records were
// dropped by compaction — recovery subtracts them from the consumed
// totals when computing how many leftover batch records to skip.
type snapshotRec struct {
	supersedes uint64
	aggHigh    int64
	dropped    map[netmodel.Bucket]int64
}

func appendSnapshot(buf []byte, s snapshotRec) []byte {
	buf = binary.AppendUvarint(buf, s.supersedes)
	buf = binary.AppendVarint(buf, s.aggHigh)
	buf = binary.AppendUvarint(buf, uint64(len(s.dropped)))
	for _, b := range sortedBuckets(s.dropped) {
		buf = binary.AppendVarint(buf, int64(b))
		buf = binary.AppendVarint(buf, s.dropped[b])
	}
	return buf
}

func readSnapshot(r *reader) snapshotRec {
	s := snapshotRec{supersedes: r.uvarint(), aggHigh: r.varint()}
	n := r.uvarint()
	if r.err || n > uint64(len(r.b)/2)+1 {
		r.err = true
		return s
	}
	s.dropped = make(map[netmodel.Bucket]int64, n)
	for i := uint64(0); i < n; i++ {
		b := netmodel.Bucket(r.varint())
		s.dropped[b] = r.varint()
	}
	return s
}

// decodeBody decodes one record body by type. A false return marks the
// record — and everything after it — as the corrupt tail.
func decodeBody(typ byte, body []byte) (any, bool) {
	r := &reader{b: body}
	switch typ {
	case recMeta:
		return string(body), true
	case recSnapshot:
		s := readSnapshot(r)
		return s, !r.err && r.empty()
	case recBatch:
		obs := readObs(r)
		return obs, !r.err && r.empty()
	case recBucket:
		b := netmodel.Bucket(r.varint())
		obs := readObs(r)
		return BucketStream{Bucket: b, Obs: obs}, !r.err && r.empty()
	case recSeal:
		b := netmodel.Bucket(r.varint())
		return b, !r.err && r.empty()
	case recReport:
		rep := Report{
			Seq:  r.varint(),
			From: netmodel.Bucket(r.varint()),
			To:   netmodel.Bucket(r.varint()),
		}
		flag := r.varint()
		rep.Final = flag != 0
		rep.Canonical = append([]byte(nil), r.rest()...)
		return rep, !r.err
	case recAggBatch:
		cells := readCells(r)
		return cells, !r.err && r.empty()
	case recAggFlush:
		b := netmodel.Bucket(r.varint())
		return b, !r.err && r.empty()
	}
	return nil, false
}

func sortedBuckets(m map[netmodel.Bucket]int64) []netmodel.Bucket {
	out := make([]netmodel.Bucket, 0, len(m))
	for b := range m {
		out = append(out, b)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
