package wal

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzWALDecode drives the segment record scanner over arbitrary bytes.
// The scanner sits on the recovery path of every daemon restart, so it
// must uphold, for ANY input: no panic, no out-of-bounds, a valid offset
// (the truncation point never exceeds the input), and prefix consistency
// (the records it accepts re-encode to exactly the bytes it consumed —
// what recovery replays is what was on disk).
func FuzzWALDecode(f *testing.F) {
	// Seed corpus: a valid log, a torn tail, a bit flip, a zero-length
	// record, and a giant-length record.
	valid := appendFrame(nil, append([]byte{recMeta}, "m"...))
	valid = appendFrame(valid, appendObs([]byte{recBatch}, obsFor(3, 2)))
	valid = appendFrame(valid, appendVarintByte(recSeal, 7))
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x20
	f.Add(flipped) // bit flip
	var zero [8]byte
	f.Add(append(append([]byte(nil), valid...), zero[:]...)) // zero-length record
	giant := append([]byte(nil), valid...)
	giant = binary.LittleEndian.AppendUint32(giant, 0xFFFFFFF0) // giant length
	giant = binary.LittleEndian.AppendUint32(giant, 0)
	f.Add(giant)
	f.Add([]byte{})

	const maxRecord = 1 << 20
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid := scanRecords(data, maxRecord)
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("truncation offset %d out of range [0, %d]", valid, len(data))
		}
		// Prefix consistency: re-encoding the accepted records must
		// reproduce the consumed bytes exactly.
		var re []byte
		for _, r := range recs {
			payload := make([]byte, 0, 1+len(r.body))
			payload = append(payload, r.typ)
			payload = append(payload, r.body...)
			re = appendFrame(re, payload)
		}
		if !bytes.Equal(re, data[:valid]) {
			t.Fatalf("accepted records re-encode to %d bytes != consumed %d", len(re), valid)
		}
		// Interpretation must not panic either (decodeBody already ran in
		// scanRecords; fold the records as recovery would).
		rec := &Recovery{MaxSeal: -1, AggHigh: -1}
		_ = interpret(rec, recs, "m")
	})
}
