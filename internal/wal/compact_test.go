package wal

import (
	"testing"

	"blameit/internal/ingest"
	"blameit/internal/netmodel"
	"blameit/internal/trace"
)

// populate writes a realistic history: batches pushed, buckets consumed,
// reports published, an aggregate prefix flushed, plus a leftover
// unconsumed batch and an unflushed aggregate batch that compaction must
// keep.
func populate(t *testing.T, l *Log) {
	t.Helper()
	for b := netmodel.Bucket(0); b < 6; b++ {
		obs := obsFor(b, 4)
		if err := l.AppendBatch(obs); err != nil {
			t.Fatal(err)
		}
		if err := l.AppendBucket(b, obs); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.AppendSeal(5); err != nil {
		t.Fatal(err)
	}
	for i, to := range []netmodel.Bucket{2, 5} {
		rep := Report{Seq: int64(i), From: 3 * netmodel.Bucket(i), To: to, Canonical: []byte("{}\n")}
		if err := l.AppendReport(rep); err != nil {
			t.Fatal(err)
		}
	}
	// Aggregate feed: one fully flushed batch, one still buffered.
	flushed := []ingest.AggCell{{Agent: 1, Bucket: 2, Samples: 5, MeanRTT: 10, Clients: 1}}
	if err := l.AppendAggBatch(flushed); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendAggFlush(3); err != nil {
		t.Fatal(err)
	}
	pendingCells := []ingest.AggCell{{Agent: 2, Bucket: 9, Samples: 5, MeanRTT: 11, Clients: 1}}
	if err := l.AppendAggBatch(pendingCells); err != nil {
		t.Fatal(err)
	}
	// A batch for a bucket past the last report: not yet droppable.
	if err := l.AppendBatch(obsFor(7, 3)); err != nil {
		t.Fatal(err)
	}
}

// recoveryProjection is the replay-relevant state: what the server would
// actually reconstruct. Compaction must preserve it exactly.
type projection struct {
	buckets   []BucketStream
	leftovers [][]trace.Observation // per-batch records no read settled
	reports   []Report
	maxSeal   netmodel.Bucket
	aggCells  [][]ingest.AggCell // batches surviving the flush replay
}

func project(rec *Recovery) projection {
	p := projection{buckets: rec.Buckets, reports: rec.Reports, maxSeal: rec.MaxSeal}
	// Mirror the server's leftover reconstruction: simulate each record's
	// fate against the reads that followed its batch's arrival.
	for _, batch := range rec.Batches {
		n := batch.AfterBuckets
		frontier := netmodel.Bucket(0)
		if n > 0 {
			frontier = rec.Buckets[n-1].Bucket + 1
		}
		var left []trace.Observation
		for _, o := range batch.Obs {
			if o.Bucket < frontier {
				if n == len(rec.Buckets) { // stale-held at the crash
					left = append(left, o)
				}
				continue
			}
			settled := false
			for j := n; j < len(rec.Buckets); j++ {
				if rec.Buckets[j].Bucket >= o.Bucket {
					settled = true
					break
				}
			}
			if !settled {
				left = append(left, o)
			}
		}
		if len(left) > 0 {
			p.leftovers = append(p.leftovers, left)
		}
	}
	// Replay the aggregate events: a flush discards buffered cells at or
	// below its threshold.
	var buffered [][]ingest.AggCell
	for _, ev := range rec.AggEvents {
		if !ev.Flush {
			buffered = append(buffered, ev.Cells)
			continue
		}
		var kept [][]ingest.AggCell
		for _, cells := range buffered {
			var still []ingest.AggCell
			for _, c := range cells {
				if c.Bucket > ev.Through {
					still = append(still, c)
				}
			}
			if len(still) > 0 {
				kept = append(kept, still)
			}
		}
		buffered = kept
	}
	p.aggCells = buffered
	return p
}

func checkProjectionsEqual(t *testing.T, got, want projection) {
	t.Helper()
	if len(got.buckets) != len(want.buckets) {
		t.Fatalf("bucket streams: %d, want %d", len(got.buckets), len(want.buckets))
	}
	for i := range want.buckets {
		if got.buckets[i].Bucket != want.buckets[i].Bucket || !obsEqual(got.buckets[i].Obs, want.buckets[i].Obs) {
			t.Fatalf("bucket stream %d differs", i)
		}
	}
	if len(got.leftovers) != len(want.leftovers) {
		t.Fatalf("leftover batches: %d, want %d", len(got.leftovers), len(want.leftovers))
	}
	for i := range want.leftovers {
		if !obsEqual(got.leftovers[i], want.leftovers[i]) {
			t.Fatalf("leftover batch %d differs", i)
		}
	}
	if len(got.reports) != len(want.reports) {
		t.Fatalf("reports: %d, want %d", len(got.reports), len(want.reports))
	}
	if got.maxSeal != want.maxSeal {
		t.Fatalf("maxSeal: %d, want %d", got.maxSeal, want.maxSeal)
	}
	if len(got.aggCells) != len(want.aggCells) {
		t.Fatalf("buffered agg batches: %d, want %d", len(got.aggCells), len(want.aggCells))
	}
}

func TestCompactionPreservesRecovery(t *testing.T) {
	dirRef := t.TempDir()
	cfg := Config{Fsync: SyncOff, Meta: "m"}
	lRef, _, err := Open(dirRef, cfg)
	if err != nil {
		t.Fatal(err)
	}
	populate(t, lRef)
	lRef.Close()
	_, recRef, err := Open(dirRef, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := project(recRef)

	dir := t.TempDir()
	l, _, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	populate(t, l)
	if err := l.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	// Post-compaction appends must land in the new segment.
	if err := l.AppendSeal(11); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Compactions != 1 {
		t.Fatalf("Compactions = %d, want 1", st.Compactions)
	}
	l.Close()

	_, rec, err := Open(dir, cfg)
	if err != nil {
		t.Fatalf("reopen after compaction: %v", err)
	}
	want.maxSeal = 11
	checkProjectionsEqual(t, project(rec), want)

	// The droppable records must actually be gone: consumed batches and
	// the flushed aggregate prefix.
	if len(rec.Batches) >= 7 {
		t.Fatalf("compaction kept %d batches; consumed ones should be dropped", len(rec.Batches))
	}
	if len(rec.AggEvents) >= 3 {
		t.Fatalf("compaction kept %d agg events; the flushed prefix should be dropped", len(rec.AggEvents))
	}
}

// TestCompactionCrashPoints kills the compaction at each protocol phase
// and verifies a reopen recovers the same state as no compaction at all.
func TestCompactionCrashPoints(t *testing.T) {
	cfg := Config{Fsync: SyncOff, Meta: "m"}
	dirRef := t.TempDir()
	lRef, _, err := Open(dirRef, cfg)
	if err != nil {
		t.Fatal(err)
	}
	populate(t, lRef)
	lRef.Close()
	_, recRef, err := Open(dirRef, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := project(recRef)

	for _, crashAt := range []string{"begin", "pre-rename", "pre-delete"} {
		t.Run(crashAt, func(t *testing.T) {
			dir := t.TempDir()
			l, _, err := Open(dir, cfg)
			if err != nil {
				t.Fatal(err)
			}
			populate(t, l)
			l.compactStep = func(phase string) bool { return phase != crashAt }
			if err := l.Compact(); err != nil {
				t.Fatalf("Compact: %v", err)
			}
			l.Abandon() // the simulated kill

			_, rec, err := Open(dir, cfg)
			if err != nil {
				t.Fatalf("reopen after crash at %s: %v", crashAt, err)
			}
			checkProjectionsEqual(t, project(rec), want)

			// And the directory must be fully usable: a second, untampered
			// compaction still works.
			l2, _, err := Open(dir, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := l2.Compact(); err != nil {
				t.Fatalf("compaction after crash recovery: %v", err)
			}
			l2.Close()
			_, rec2, err := Open(dir, cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkProjectionsEqual(t, project(rec2), want)
		})
	}
}

// TestDoubleCompaction verifies the dropped-count bookkeeping carries
// across compactions: a second pass over new history must project to the
// same replay state as a log never compacted at all.
func TestDoubleCompaction(t *testing.T) {
	cfg := Config{Fsync: SyncOff, Meta: "m"}
	extend := func(l *Log) {
		// Consume the leftover bucket-7 batch populate pushed, plus a new
		// one, and cover both with a report.
		obs := obsFor(7, 3)
		if err := l.AppendBatch(obs); err != nil {
			t.Fatal(err)
		}
		served := append(append([]trace.Observation(nil), obsFor(7, 3)...), obs...)
		if err := l.AppendBucket(7, served); err != nil {
			t.Fatal(err)
		}
		if err := l.AppendReport(Report{Seq: 2, From: 6, To: 8, Canonical: []byte("{}\n")}); err != nil {
			t.Fatal(err)
		}
	}

	dirRef := t.TempDir()
	lRef, _, err := Open(dirRef, cfg)
	if err != nil {
		t.Fatal(err)
	}
	populate(t, lRef)
	extend(lRef)
	lRef.Close()
	_, recRef, err := Open(dirRef, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := project(recRef)

	dir := t.TempDir()
	l, _, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	populate(t, l)
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	extend(l)
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, rec, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := project(rec)
	checkProjectionsEqual(t, p, want)
	// Everything pushed is now consumed and reported: no leftovers, and
	// no negative-skip phantom records either.
	if len(p.leftovers) != 0 {
		t.Fatalf("leftovers after double compaction: %d batches, want 0", len(p.leftovers))
	}
}
