package wal

import (
	"fmt"
	"os"
	"path/filepath"

	"blameit/internal/ingest"
	"blameit/internal/netmodel"
	"blameit/internal/trace"
)

// Compact rewrites the log without the records that have become
// redundant now that their buckets' reports are durable:
//
//   - Batch records whose observations were all consumed (they are
//     restated, in served order, by the bucket records) and whose buckets
//     are covered by a durable report are dropped; the snapshot carries
//     per-bucket dropped counts so this pass's own FIFO availability math
//     stays exact across repeated compactions. Partially consumed batches
//     are kept whole.
//   - Seal records collapse to the single highest one.
//   - The aggregate feed's prefix of fully flushed (batch, flush) events
//     is dropped; the snapshot carries the high-bucket state the dropped
//     prefix established.
//
// Bucket and report records are never dropped: the pipeline's learned
// state (thresholds, windows, budget, quarantine books) is a function of
// the full consumed history, and replay-from-zero is what makes recovery
// byte-exact. The WAL's steady state is therefore one copy of the
// consumed trace plus the report log — the durable incident record.
//
// The rewrite is crash-safe at every step: the filtered log is written to
// a .tmp file, fsynced, renamed to the next segment number (its snapshot
// record marks every lower segment superseded), the directory is fsynced,
// and only then are the old segments deleted. A kill between any two
// steps leaves either the old segments authoritative (tmp files are
// deleted on open) or both generations present with the snapshot marker
// deciding in favor of the new one.
func (l *Log) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log closed")
	}
	if err := l.syncLocked(); err != nil {
		return err
	}

	// Re-scan everything from disk — the files are the source of truth.
	var seqs []uint64
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	for _, e := range entries {
		var seq uint64
		if _, err := fmt.Sscanf(e.Name(), "wal-%d.log", &seq); err == nil && !isTmp(e.Name()) {
			seqs = append(seqs, seq)
		}
	}
	sortU64(seqs)
	var all []rawRecord
	for _, seq := range seqs {
		data, err := os.ReadFile(filepath.Join(l.dir, segName(seq)))
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		if len(data) < segHeader {
			continue
		}
		recs, _ := scanRecords(data[segHeader:], l.cfg.MaxRecordBytes)
		all = append(all, recs...)
	}

	kept, snap := filterForCompaction(all)
	snap.supersedes = l.seq // every existing segment is restated

	// Phase 1: write the rewrite to a tmp file.
	if !l.step("begin") {
		return nil
	}
	var extra []byte
	extra = appendFrame(extra, appendSnapshot([]byte{recSnapshot}, snap))
	for _, r := range kept {
		payload := make([]byte, 0, 1+len(r.body))
		payload = append(payload, r.typ)
		payload = append(payload, r.body...)
		extra = appendFrame(extra, payload)
	}
	newSeq := l.seq + 1
	tmpPath := filepath.Join(l.dir, segName(newSeq)+".tmp")
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	hdr := make([]byte, 0, segHeader)
	hdr = append(hdr, segMagic...)
	hdr = append(hdr, byte(segVersion), 0, 0, 0)
	hdr = appendFrame(hdr, append([]byte{recMeta}, l.cfg.Meta...))
	if _, err := tmp.Write(hdr); err == nil {
		_, err = tmp.Write(extra)
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("wal: %w", err)
	}

	// Phase 2: make the rewrite authoritative.
	if !l.step("pre-rename") {
		os.Remove(tmpPath)
		return nil
	}
	newPath := filepath.Join(l.dir, segName(newSeq))
	if err := os.Rename(tmpPath, newPath); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("wal: %w", err)
	}
	syncDir(l.dir)

	// Phase 3: retire the old generation and append to the new segment.
	if !l.step("pre-delete") {
		// Crash point: both generations on disk. Open resolves via the
		// snapshot's supersede marker. The in-memory log still appends to
		// the old active segment, which recovery will ignore — but this
		// branch only exists for tests, which stop here.
		return nil
	}
	for _, seq := range seqs {
		os.Remove(filepath.Join(l.dir, segName(seq)))
	}
	syncDir(l.dir)
	f, err := os.OpenFile(newPath, os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.f.Close()
	l.f, l.size, l.seq = f, st.Size(), newSeq
	l.stats.Segments = 1
	l.stats.Compactions++
	return nil
}

func (l *Log) step(phase string) bool {
	if l.compactStep == nil {
		return true
	}
	return l.compactStep(phase)
}

// filterForCompaction decides which records the rewrite keeps and builds
// the snapshot that carries the dropped records' accounting.
func filterForCompaction(all []rawRecord) (kept []rawRecord, snap snapshotRec) {
	snap = snapshotRec{aggHigh: -1, dropped: map[netmodel.Bucket]int64{}}

	// Carry forward the bookkeeping of any previous compaction.
	consumed := map[netmodel.Bucket]int64{}
	maxReportTo := netmodel.Bucket(-1)
	var maxSeal netmodel.Bucket = -1
	maxSealIdx := -1
	for i, r := range all {
		switch r.typ {
		case recSnapshot:
			s := r.val.(snapshotRec)
			for b, n := range s.dropped {
				snap.dropped[b] += n
			}
			if s.aggHigh > snap.aggHigh {
				snap.aggHigh = s.aggHigh
			}
		case recBucket:
			for _, o := range r.val.(BucketStream).Obs {
				consumed[o.Bucket]++
			}
		case recReport:
			if rep := r.val.(Report); rep.To > maxReportTo {
				maxReportTo = rep.To
			}
		case recSeal:
			if b := r.val.(netmodel.Bucket); b >= maxSeal {
				maxSeal, maxSealIdx = b, i
			}
		}
	}
	// Records already dropped by earlier compactions consumed part of the
	// totals; only the remainder is assignable to surviving batches.
	avail := map[netmodel.Bucket]int64{}
	for b, n := range consumed {
		avail[b] = n - snap.dropped[b]
	}

	// The aggregate prefix: batches fully covered by a later flush, and
	// the flushes between them, replay to a no-op.
	aggMaxFlush := make([]netmodel.Bucket, len(all))
	running := netmodel.Bucket(-1)
	for i := len(all) - 1; i >= 0; i-- {
		aggMaxFlush[i] = running
		if all[i].typ == recAggFlush {
			if b := all[i].val.(netmodel.Bucket); b > running {
				running = b
			}
		}
	}
	aggPrefix := true

	drop := make([]bool, len(all))
	for i, r := range all {
		switch r.typ {
		case recMeta, recSnapshot:
			drop[i] = true // restated by the new segment's own header
		case recSeal:
			drop[i] = i != maxSealIdx
		case recBatch:
			obs := r.val.([]trace.Observation)
			droppable := true
			for _, o := range obs {
				if avail[o.Bucket] < 1 || o.Bucket > maxReportTo {
					droppable = false
					break
				}
			}
			// FIFO accounting: whether dropped or kept, this batch's
			// records consume availability ahead of later batches.
			if droppable {
				for _, o := range obs {
					avail[o.Bucket]--
					snap.dropped[o.Bucket]++
				}
				drop[i] = true
			} else {
				for _, o := range obs {
					if avail[o.Bucket] > 0 {
						avail[o.Bucket]--
					}
				}
			}
		}
	}

	// Aggregate events: walk forward, dropping the fully flushed prefix.
	for i, r := range all {
		switch r.typ {
		case recAggBatch:
			if !aggPrefix {
				continue
			}
			high := netmodel.Bucket(-1)
			for _, c := range r.val.([]ingest.AggCell) {
				if c.Bucket > high {
					high = c.Bucket
				}
			}
			if high <= aggMaxFlush[i] {
				drop[i] = true
				if int64(high) > snap.aggHigh {
					snap.aggHigh = int64(high)
				}
			} else {
				aggPrefix = false
			}
		case recAggFlush:
			if aggPrefix {
				drop[i] = true
			}
		}
	}

	for i, r := range all {
		if !drop[i] {
			kept = append(kept, r)
		}
	}
	return kept, snap
}

func isTmp(name string) bool {
	return len(name) > 4 && name[len(name)-4:] == ".tmp"
}

func sortU64(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
