package sim

import (
	"reflect"
	"testing"

	"blameit/internal/bgp"
	"blameit/internal/faults"
	"blameit/internal/netmodel"
	"blameit/internal/topology"
)

// providerRig builds a simulator over a providers-wide small world.
func providerRig(t testing.TB, providers, workers int) *Simulator {
	t.Helper()
	scale := topology.SmallScale()
	scale.Providers = providers
	w := topology.Generate(scale, 42)
	tbl := bgp.NewTable(w, bgp.DefaultChurnConfig(), netmodel.BucketsPerDay, 7)
	cfg := DefaultConfig(99)
	cfg.Workers = workers
	return New(w, tbl, faults.NewSchedule(nil), cfg)
}

// TestProviderZeroStreamEqualsObservationsAt: in a single-provider world,
// the provider-scoped stream IS the classic stream — the equality the
// golden and replay fixtures rest on.
func TestProviderZeroStreamEqualsObservationsAt(t *testing.T) {
	s := providerRig(t, 1, 1)
	for b := netmodel.Bucket(0); b < 6; b++ {
		classic := s.ObservationsAt(b, nil)
		scoped := s.ObservationsForProvider(0, b, nil)
		if !reflect.DeepEqual(classic, scoped) {
			t.Fatalf("bucket %d: ObservationsForProvider(0) diverges from ObservationsAt", b)
		}
	}
}

// TestProviderStreamsDeterministic: each provider's stream is a pure
// function of (world, seeds, bucket) — two simulators built alike agree,
// and repeated reads agree with themselves.
func TestProviderStreamsDeterministic(t *testing.T) {
	a := providerRig(t, 3, 1)
	b := providerRig(t, 3, 1)
	for q := netmodel.ProviderID(0); q < 3; q++ {
		for bk := netmodel.Bucket(0); bk < 4; bk++ {
			x := a.ObservationsForProvider(q, bk, nil)
			y := b.ObservationsForProvider(q, bk, nil)
			if len(x) == 0 {
				t.Fatalf("provider %d bucket %d: empty stream", q, bk)
			}
			if !reflect.DeepEqual(x, y) {
				t.Fatalf("provider %d bucket %d: streams differ across identical simulators", q, bk)
			}
			if again := a.ObservationsForProvider(q, bk, nil); !reflect.DeepEqual(x, again) {
				t.Fatalf("provider %d bucket %d: re-read differs", q, bk)
			}
		}
	}
}

// TestProviderStreamsWorkerInvariance: sharded parallel generation yields
// byte-identical streams to the sequential path, per provider.
func TestProviderStreamsWorkerInvariance(t *testing.T) {
	seq := providerRig(t, 3, 1)
	par := providerRig(t, 3, 4)
	for q := netmodel.ProviderID(0); q < 3; q++ {
		for bk := netmodel.Bucket(0); bk < 3; bk++ {
			x := seq.ObservationsForProvider(q, bk, nil)
			y := par.ObservationsForProvider(q, bk, nil)
			if !reflect.DeepEqual(x, y) {
				t.Fatalf("provider %d bucket %d: parallel stream differs from sequential", q, bk)
			}
		}
	}
}

// TestProviderStreamsDistinct: different providers see different
// measurement noise (independent telemetry) over the same ground truth —
// their streams must not be identical, and each observation must target
// the provider's own clouds.
func TestProviderStreamsDistinct(t *testing.T) {
	s := providerRig(t, 2, 1)
	a := s.ObservationsForProvider(0, 0, nil)
	b := s.ObservationsForProvider(1, 0, nil)
	if reflect.DeepEqual(a, b) {
		t.Fatal("provider 0 and 1 generated identical streams")
	}
	for q, obs := range [][]Observation{a, b} {
		for _, o := range obs {
			if got := s.World.ProviderOf(o.Cloud); got != netmodel.ProviderID(q) {
				t.Fatalf("provider %d observation targets provider %d's cloud %d", q, got, o.Cloud)
			}
		}
	}
}
