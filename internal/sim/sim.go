// Package sim is the time-stepped wide-area latency simulator that stands
// in for Azure's production telemetry. Given a topology, a routing table,
// and a fault schedule, it produces per-quartet RTT observations (the
// passive TCP-handshake stream of the paper), answers per-AS latency
// ground-truth queries (the basis for traceroute simulation and accuracy
// grading), and models diurnal client-side congestion with the night-peaked
// shape reported in §2.2.
//
// All stochastic values are derived from a hash of (seed, prefix, cloud,
// bucket), so any observation can be regenerated at random access without
// replaying the stream. That same property makes generation embarrassingly
// parallel: ObservationsAt and SamplesAt shard the prefix space across a
// worker pool and merge the per-shard buffers in prefix order, so output is
// byte-identical to the sequential path at any worker count (see Config.
// Workers).
package sim

import (
	"fmt"
	"math"
	"sync"

	"blameit/internal/bgp"
	"blameit/internal/faults"
	"blameit/internal/ipaddr"
	"blameit/internal/metrics"
	"blameit/internal/netmodel"
	"blameit/internal/parallel"
	"blameit/internal/topology"
	"blameit/internal/trace"
)

// Config holds the simulator's dynamic-behaviour knobs.
type Config struct {
	Seed int64
	// NoiseSigma is the log-scale standard deviation of per-sample RTT
	// noise; the noise on a quartet mean shrinks with sqrt(sample count).
	NoiseSigma float64
	// MixSigma is the log-scale deviation of per-quartet client-mix
	// variation: which clients inside a /24 happen to connect shifts the
	// quartet mean and does NOT average away with more samples. This keeps
	// coherent few-millisecond shifts (drift, mild congestion) from
	// flipping an entire location's quartets past their medians at once.
	MixSigma float64
	// SamplesPerClient is the mean number of TCP connections (and hence RTT
	// samples) one active client contributes per 5-minute bucket.
	SamplesPerClient float64
	// DiurnalMaxMS bounds per-AS evening congestion amplitude.
	DiurnalMaxMS float64
	// DriftMS is the amplitude of the slow per-AS latency drift (a smooth
	// day-scale random walk). Stale traceroute baselines misestimate an
	// AS's normal contribution by up to roughly this much, which is what
	// makes background-probe freshness matter (Fig. 13).
	DriftMS float64
	// Workers caps the goroutines used to generate one bucket's
	// observations and samples. Non-positive means runtime.GOMAXPROCS(0);
	// 1 forces the sequential path. Because every stochastic value is
	// hash-derived and per-shard buffers are merged in prefix order, the
	// output stream is identical at any worker count.
	Workers int
	// Metrics receives the simulator's generation accounting (observation
	// and sample counts, shard fan-out). Nil falls back to the process
	// default registry, which is itself nil — i.e. uninstrumented — unless
	// metrics.EnableDefault was called.
	Metrics *metrics.Registry
}

// DefaultConfig returns the calibrated simulator settings. Workers is left
// at 0, i.e. runtime.GOMAXPROCS(0).
func DefaultConfig(seed int64) Config {
	return Config{Seed: seed, NoiseSigma: 0.10, MixSigma: 0.07, SamplesPerClient: 4.0, DiurnalMaxMS: 18, DriftMS: 2}
}

// Validate rejects configurations with no meaningful interpretation:
// negative or NaN magnitudes and a negative worker count. (Workers == 0 is
// the documented all-cores sentinel, not a mistake, so it stays valid.)
// New panics on an invalid config; callers assembling configs from
// external input (flags) should Validate first and report the error.
func (c Config) Validate() error {
	bad := func(x float64) bool { return math.IsNaN(x) || x < 0 }
	switch {
	case bad(c.NoiseSigma):
		return fmt.Errorf("sim: NoiseSigma %v must be >= 0", c.NoiseSigma)
	case bad(c.MixSigma):
		return fmt.Errorf("sim: MixSigma %v must be >= 0", c.MixSigma)
	case bad(c.SamplesPerClient):
		return fmt.Errorf("sim: SamplesPerClient %v must be >= 0", c.SamplesPerClient)
	case bad(c.DiurnalMaxMS):
		return fmt.Errorf("sim: DiurnalMaxMS %v must be >= 0", c.DiurnalMaxMS)
	case bad(c.DriftMS):
		return fmt.Errorf("sim: DriftMS %v must be >= 0", c.DriftMS)
	case c.Workers < 0:
		return fmt.Errorf("sim: Workers %d must be >= 0 (0 = all cores)", c.Workers)
	}
	return nil
}

// Observation aliases the shared passive-measurement record; the simulator
// produces the same record shape the production collector emits.
type Observation = trace.Observation

// Simulator generates observations and answers ground-truth queries.
//
// All query methods (MeanRTT, Contributions, Observe, ObservationsAt, ...)
// are safe for concurrent use: the per-AS maps are built once in New and
// only read afterwards, and the routing table and fault schedule are
// likewise read-only at query time. The only mutable state is the scratch
// buffers of the sharded generation paths, which are handed out under a
// mutex.
type Simulator struct {
	World  *topology.World
	Routes *bgp.Table
	Sched  *faults.Schedule
	cfg    Config

	diurnalAmp    map[netmodel.ASN]float64 // evening congestion amplitude per eyeball AS
	weekendFactor map[netmodel.ASN]float64 // how much of the diurnal shape survives weekends
	eveningPeak   map[netmodel.ASN]float64 // peak hour of the AS's congestion

	// Reusable per-shard buffers for the parallel generation paths,
	// checked out under mu so concurrent callers never share scratch.
	mu         sync.Mutex
	obsScratch [][]Observation
	smpScratch [][]trace.Sample

	// Metric handles (nil-safe no-ops when uninstrumented).
	mObservations *metrics.Counter
	mSamples      *metrics.Counter
	mRunsParallel *metrics.Counter
	mRunsSeq      *metrics.Counter
	mFanoutMax    *metrics.Gauge
}

// New creates a simulator. The routing table and fault schedule may cover
// any horizon; queries beyond the table's horizon use its last state.
func New(w *topology.World, routes *bgp.Table, sched *faults.Schedule, cfg Config) *Simulator {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &Simulator{
		World:         w,
		Routes:        routes,
		Sched:         sched,
		cfg:           cfg,
		diurnalAmp:    make(map[netmodel.ASN]float64),
		weekendFactor: make(map[netmodel.ASN]float64),
		eveningPeak:   make(map[netmodel.ASN]float64),
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.Default()
	}
	s.mObservations = reg.Counter("sim.observations.generated")
	s.mSamples = reg.Counter("sim.samples.generated")
	s.mRunsParallel = reg.Counter("sim.generation.runs.parallel")
	s.mRunsSeq = reg.Counter("sim.generation.runs.sequential")
	s.mFanoutMax = reg.Gauge("sim.generation.fanout.max")
	for _, reg := range netmodel.AllRegions() {
		for _, asn := range w.Eyeballs[reg] {
			// Only a subset of ISPs congest in the evening: well-provisioned
			// networks stay flat, most see a light bump, and a minority of
			// under-provisioned home ISPs swing hard. Keeping the heavy
			// swings to a minority is what lets Algorithm 1's Insight-2
			// hold — evening badness is a client-segment phenomenon, not a
			// location-wide shift.
			h := mix(uint64(cfg.Seed), uint64(asn), 0xd1)
			u := u01(h)
			h1b := mix(uint64(cfg.Seed), uint64(asn), 0xd4)
			switch {
			case u < 0.4:
				s.diurnalAmp[asn] = 0
			case u < 0.7:
				s.diurnalAmp[asn] = 1 + 3*u01(h1b)
			default:
				s.diurnalAmp[asn] = 5 + (cfg.DiurnalMaxMS-5)*u01(h1b)
			}
			h2 := mix(uint64(cfg.Seed), uint64(asn), 0xd2)
			s.weekendFactor[asn] = 0.3 + 0.7*u01(h2)
			h3 := mix(uint64(cfg.Seed), uint64(asn), 0xd3)
			s.eveningPeak[asn] = 19 + 4*u01(h3) // peak between 19:00 and 23:00
		}
	}
	return s
}

// Config returns the simulator configuration.
func (s *Simulator) Config() Config { return s.cfg }

// SetWorkers adjusts the generation fan-out after construction (benchmarks
// and the CLI -workers flag). It only changes how work is scheduled, never
// what is generated. Not safe to call concurrently with generation.
func (s *Simulator) SetWorkers(n int) { s.cfg.Workers = n }

// mix is a splitmix64-style hash over its inputs, used to derive
// deterministic per-entity randomness.
func mix(vals ...uint64) uint64 {
	var h uint64 = 0x9E3779B97F4A7C15
	for _, v := range vals {
		h ^= v + 0x9E3779B97F4A7C15 + (h << 6) + (h >> 2)
		h *= 0xBF58476D1CE4E5B9
		h ^= h >> 27
		h *= 0x94D049BB133111EB
		h ^= h >> 31
	}
	return h
}

// u01 maps a hash to a float in [0,1).
func u01(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// gauss maps two hashes to a standard normal draw (Box-Muller).
func gauss(h1, h2 uint64) float64 {
	u1 := u01(h1)
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u01(h2))
}

// nightFactor is the diurnal congestion shape: a bump peaking at the AS's
// evening peak hour, wrapping around midnight.
func nightFactor(hour float64, peak float64) float64 {
	best := 0.0
	for _, k := range [...]float64{-24, 0, 24} {
		d := hour - peak + k
		v := math.Exp(-d * d / (2 * 3.5 * 3.5))
		if v > best {
			best = v
		}
	}
	return best
}

// drift returns the slow latency drift of an AS (or cloud location, via a
// distinct salt) at a bucket: day-boundary values drawn in [-DriftMS,
// +DriftMS], linearly interpolated within the day.
func (s *Simulator) drift(id uint64, salt uint64, b netmodel.Bucket) float64 {
	if s.cfg.DriftMS == 0 {
		return 0
	}
	day := b.Day()
	at := func(d int) float64 {
		return (2*u01(mix(uint64(s.cfg.Seed), id, salt, uint64(d))) - 1) * s.cfg.DriftMS
	}
	frac := float64(b.OfDay()) / float64(netmodel.BucketsPerDay)
	return at(day)*(1-frac) + at(day+1)*frac
}

// DiurnalClientExtra returns the client-segment congestion (ms) a prefix
// experiences at a bucket: the organic, non-fault badness that the paper
// attributes to evening home-ISP load.
func (s *Simulator) DiurnalClientExtra(p netmodel.PrefixID, b netmodel.Bucket) float64 {
	pref := s.World.Prefixes[p]
	amp := s.diurnalAmp[pref.AS]
	if b.IsWeekend() {
		amp *= s.weekendFactor[pref.AS]
	}
	hour := float64(b.OfDay()) / float64(netmodel.BucketsPerHour)
	nf := nightFactor(hour, s.eveningPeak[pref.AS])
	// Per-prefix susceptibility: some /24s ride congested segments harder.
	sus := 0.5 + 1.0*u01(mix(uint64(s.cfg.Seed), uint64(p), 0xc0))
	return amp * nf * sus
}

// pathFor resolves the route for (prefix, cloud) at a bucket, honouring
// traffic-shift faults which pin the initial route of the shift target.
func (s *Simulator) pathFor(p netmodel.PrefixID, c netmodel.CloudID, b netmodel.Bucket) netmodel.Path {
	return s.Routes.PathAtForPrefix(c, p, b)
}

// Contributions returns the ground-truth per-AS latency contributions (ms)
// of the connection from prefix p to cloud c at bucket b, ordered cloud →
// middle → client, including fault and diurnal effects.
func (s *Simulator) Contributions(p netmodel.PrefixID, c netmodel.CloudID, b netmodel.Bucket) []topology.ASContribution {
	path := s.pathFor(p, c, b)
	out := s.World.BaseContributions(path, p)
	pref := s.World.Prefixes[p]
	// Cloud segment: faults plus slow drift. The location-wide drift is
	// kept small — coherent shifts across every client of a location are
	// rare in practice, and the per-AS drifts below already decorrelate
	// stale baselines.
	out[0].MS += s.Sched.CloudExtra(c, b) + 0.4*s.drift(uint64(c), 0xdc, b)
	// Middle segments: faults plus slow drift.
	for i := 1; i < len(out)-1; i++ {
		out[i].MS += s.Sched.MiddleExtra(out[i].AS, c, b) + s.drift(uint64(out[i].AS), 0xda, b)
	}
	// Traffic-shift congestion lands on the first middle AS of the shifted
	// path.
	if target, ok := s.Sched.ShiftTarget(p, b); ok && target == c && len(out) > 2 {
		out[1].MS += s.shiftExtra(p, b)
	}
	// Client segment: faults plus organic diurnal congestion.
	last := len(out) - 1
	out[last].MS += s.Sched.ClientExtra(p, pref.AS, b)
	out[last].MS += s.DiurnalClientExtra(p, b)
	// Negative drift must never drive a segment below a physical floor.
	for i := range out {
		if out[i].MS < 0.2 {
			out[i].MS = 0.2
		}
	}
	return out
}

// shiftExtra returns the congestion injected by an active traffic-shift
// fault covering prefix p.
func (s *Simulator) shiftExtra(p netmodel.PrefixID, b netmodel.Bucket) float64 {
	for _, f := range s.Sched.Faults {
		if f.Kind == faults.TrafficShift && f.ActiveAt(b) {
			for _, sp := range f.ShiftPrefixes {
				if sp == p {
					return f.ExtraMS
				}
			}
		}
	}
	return 0
}

// ReversePathFor returns the client→cloud route of the prefix's covering
// BGP prefix toward cloud c (in forward orientation; see
// topology.ReversePath).
func (s *Simulator) ReversePathFor(p netmodel.PrefixID, c netmodel.CloudID) netmodel.Path {
	return s.World.ReversePath(c, s.World.Prefixes[p].BGPPrefix)
}

// ReverseExtra returns the total latency injected by reverse-only faults
// on the client→cloud route of (prefix, cloud) at a bucket. The TCP
// handshake crosses both directions, so this rides on top of the forward
// contributions in MeanRTT.
func (s *Simulator) ReverseExtra(p netmodel.PrefixID, c netmodel.CloudID, b netmodel.Bucket) float64 {
	var sum float64
	for _, as := range s.ReversePathFor(p, c).Middle {
		sum += s.Sched.MiddleExtraReverse(as, c, b)
	}
	return sum
}

// ReverseFaultAS returns the reverse-path AS carrying the largest
// reverse-only inflation for (prefix, cloud) at a bucket, if any.
func (s *Simulator) ReverseFaultAS(p netmodel.PrefixID, c netmodel.CloudID, b netmodel.Bucket) (netmodel.ASN, float64, bool) {
	var bestAS netmodel.ASN
	var best float64
	for _, as := range s.ReversePathFor(p, c).Middle {
		if ms := s.Sched.MiddleExtraReverse(as, c, b); ms > best {
			best = ms
			bestAS = as
		}
	}
	return bestAS, best, best > 0
}

// MeanRTT returns the noise-free expected RTT of (prefix, cloud) at a
// bucket: the sum of forward ground-truth contributions plus any
// reverse-direction congestion the round trip crosses.
func (s *Simulator) MeanRTT(p netmodel.PrefixID, c netmodel.CloudID, b netmodel.Bucket) float64 {
	var sum float64
	for _, con := range s.Contributions(p, c, b) {
		sum += con.MS
	}
	return sum + s.ReverseExtra(p, c, b)
}

// attachmentsAt returns the provider-0 cloud attachments of a prefix at a
// bucket, honouring traffic-shift faults (a shifted prefix connects only
// to the shift target).
func (s *Simulator) attachmentsAt(p netmodel.PrefixID, b netmodel.Bucket) []topology.CloudAttachment {
	return s.attachmentsAtFor(0, p, b)
}

// attachmentsAtFor returns provider q's cloud attachments of a prefix at a
// bucket. A traffic-shift fault redirects only the traffic of the provider
// owning the shift-target location; other providers' steering is
// untouched (their anycast does not follow another cloud's redirection).
func (s *Simulator) attachmentsAtFor(q netmodel.ProviderID, p netmodel.PrefixID, b netmodel.Bucket) []topology.CloudAttachment {
	if target, ok := s.Sched.ShiftTarget(p, b); ok && s.World.ProviderOf(target) == q {
		return []topology.CloudAttachment{{Cloud: target, Weight: 1}}
	}
	return s.World.AttachmentsFor(q, p)
}

// volumeFactor models diurnal connection volume: consumer traffic peaks in
// the evening alongside congestion.
func (s *Simulator) volumeFactor(p netmodel.PrefixID, b netmodel.Bucket) float64 {
	pref := s.World.Prefixes[p]
	hour := float64(b.OfDay()) / float64(netmodel.BucketsPerHour)
	return 0.55 + 0.75*nightFactor(hour, s.eveningPeak[pref.AS])
}

// minParallelPrefixes is the prefix count below which the sharded path is
// not worth its goroutine overhead.
const minParallelPrefixes = 64

// ObservationsAt generates the quartet-level observations of one bucket,
// appending to buf (which may be nil) and returning the extended slice.
// Quartets with zero samples are omitted.
//
// When cfg.Workers resolves to more than one, the prefix space is split
// into contiguous shards generated concurrently; the per-shard buffers are
// merged in shard (= prefix) order, so the result is byte-identical to the
// sequential walk.
func (s *Simulator) ObservationsAt(b netmodel.Bucket, buf []Observation) []Observation {
	n := len(s.World.Prefixes)
	before := len(buf)
	workers := parallel.Resolve(s.cfg.Workers)
	if workers <= 1 || n < minParallelPrefixes {
		buf = s.observationsRange(b, 0, n, buf)
		s.mRunsSeq.Inc()
		s.mObservations.Add(int64(len(buf) - before))
		return buf
	}
	shards := parallel.Shards(n, workers)
	bufs := s.checkoutObs(len(shards))
	parallel.ForEach(len(shards), workers, func(i int) {
		bufs[i] = s.observationsRange(b, shards[i].Lo, shards[i].Hi, bufs[i][:0])
	})
	for _, sb := range bufs {
		buf = append(buf, sb...)
	}
	s.checkinObs(bufs)
	s.mRunsParallel.Inc()
	s.mFanoutMax.SetMax(int64(len(shards)))
	s.mObservations.Add(int64(len(buf) - before))
	return buf
}

// ObservationsRange generates the observations of prefixes [lo, hi) at a
// bucket, appending to buf. This is the per-shard walk ObservationsAt
// parallelizes over, exported for edge agents that own a contiguous slice
// of the prefix space: an agent fleet whose slices partition [0, len
// (World.Prefixes)) generates, collectively and in ascending-slice order,
// exactly the stream ObservationsAt emits.
func (s *Simulator) ObservationsRange(b netmodel.Bucket, lo, hi int, buf []Observation) []Observation {
	if lo < 0 {
		lo = 0
	}
	if n := len(s.World.Prefixes); hi > n {
		hi = n
	}
	if hi <= lo {
		return buf
	}
	return s.observationsRange(b, lo, hi, buf)
}

// observationsRange generates the observations of prefixes [lo, hi) — one
// shard of the bucket's stream.
func (s *Simulator) observationsRange(b netmodel.Bucket, lo, hi int, buf []Observation) []Observation {
	for i := lo; i < hi; i++ {
		pref := s.World.Prefixes[i]
		for _, att := range s.attachmentsAt(pref.ID, b) {
			o, ok := s.Observe(pref.ID, att.Cloud, att.Weight, b)
			if ok {
				buf = append(buf, o)
			}
		}
	}
	return buf
}

// providerStreamSeed derives the measurement-noise seed of provider q's
// observation stream. Provider 0 keeps the main seed, so its stream is
// bit-identical to the historical single-provider ObservationsAt. The
// underlying network reality (MeanRTT: faults, diurnal congestion, drift)
// stays keyed to the main seed for every provider — independent vantage
// points sample the same shared internet with independent noise.
func (s *Simulator) providerStreamSeed(q netmodel.ProviderID) uint64 {
	if q == 0 {
		return uint64(s.cfg.Seed)
	}
	return mix(uint64(s.cfg.Seed), 0x9c, uint64(q))
}

// ObservationsForProvider generates provider q's quartet observations of
// one bucket, appending to buf: the provider's served prefix population,
// steered to the provider's own edge locations, with provider-specific
// sampling noise over the shared ground-truth RTTs. For provider 0 of a
// single-provider world the stream is byte-identical to ObservationsAt.
//
// Like ObservationsAt, the population is sharded across cfg.Workers
// goroutines and the per-shard buffers merge in prefix order, so the
// stream is identical at any worker count.
func (s *Simulator) ObservationsForProvider(q netmodel.ProviderID, b netmodel.Bucket, buf []Observation) []Observation {
	pop := s.World.Population(q)
	n := len(pop)
	before := len(buf)
	workers := parallel.Resolve(s.cfg.Workers)
	if workers <= 1 || n < minParallelPrefixes {
		buf = s.observationsPop(q, b, pop, buf)
		s.mRunsSeq.Inc()
		s.mObservations.Add(int64(len(buf) - before))
		return buf
	}
	shards := parallel.Shards(n, workers)
	bufs := s.checkoutObs(len(shards))
	parallel.ForEach(len(shards), workers, func(i int) {
		bufs[i] = s.observationsPop(q, b, pop[shards[i].Lo:shards[i].Hi], bufs[i][:0])
	})
	for _, sb := range bufs {
		buf = append(buf, sb...)
	}
	s.checkinObs(bufs)
	s.mRunsParallel.Inc()
	s.mFanoutMax.SetMax(int64(len(shards)))
	s.mObservations.Add(int64(len(buf) - before))
	return buf
}

// observationsPop generates provider q's observations for one slice of its
// served population.
func (s *Simulator) observationsPop(q netmodel.ProviderID, b netmodel.Bucket, pop []netmodel.PrefixID, buf []Observation) []Observation {
	seed := s.providerStreamSeed(q)
	for _, pid := range pop {
		for _, att := range s.attachmentsAtFor(q, pid, b) {
			o, ok := s.observeSeeded(seed, pid, att.Cloud, att.Weight, b)
			if ok {
				buf = append(buf, o)
			}
		}
	}
	return buf
}

// checkoutObs hands the caller n per-shard scratch buffers, reusing the
// cached set when one is available. Concurrent callers that miss the cache
// simply allocate a fresh set.
func (s *Simulator) checkoutObs(n int) [][]Observation {
	s.mu.Lock()
	bufs := s.obsScratch
	s.obsScratch = nil
	s.mu.Unlock()
	if len(bufs) < n {
		bufs = append(bufs, make([][]Observation, n-len(bufs))...)
	}
	return bufs[:n]
}

func (s *Simulator) checkinObs(bufs [][]Observation) {
	s.mu.Lock()
	s.obsScratch = bufs
	s.mu.Unlock()
}

// Observe generates the observation of a single (prefix, cloud) quartet at
// a bucket with the given traffic weight. It reports false when no clients
// connected in the bucket.
func (s *Simulator) Observe(p netmodel.PrefixID, c netmodel.CloudID, weight float64, b netmodel.Bucket) (Observation, bool) {
	return s.observeSeeded(uint64(s.cfg.Seed), p, c, weight, b)
}

// observeSeeded is Observe with an explicit sampling-noise seed: the
// client-arrival and noise draws hash from it, while the expected RTT and
// diurnal volume remain functions of the shared world (cfg.Seed). Distinct
// seeds give distinct providers independent views of the same reality.
func (s *Simulator) observeSeeded(seed uint64, p netmodel.PrefixID, c netmodel.CloudID, weight float64, b netmodel.Bucket) (Observation, bool) {
	pref := s.World.Prefixes[p]
	h1 := mix(seed, uint64(p), uint64(c), uint64(b), 1)
	h2 := mix(seed, uint64(p), uint64(c), uint64(b), 2)
	h3 := mix(seed, uint64(p), uint64(c), uint64(b), 3)

	expClients := float64(pref.ActiveClients) * weight * s.volumeFactor(p, b)
	clients := int(expClients + gauss(h1, h2)*math.Sqrt(expClients)*0.5 + 0.5)
	if clients <= 0 {
		return Observation{}, false
	}
	samples := int(float64(clients)*s.cfg.SamplesPerClient + 0.5)
	if samples < 1 {
		samples = 1
	}
	mean := s.MeanRTT(p, c, b)
	// Mean-of-n noise: per-sample sigma shrinks with sqrt(n); the client
	// mix term does not.
	h4 := mix(seed, uint64(p), uint64(c), uint64(b), 4)
	noise := math.Exp(gauss(h2, h3)*s.cfg.NoiseSigma/math.Sqrt(float64(samples)) +
		gauss(h3, h4)*s.cfg.MixSigma)
	return Observation{
		Prefix:  p,
		Cloud:   c,
		Device:  pref.Device,
		Bucket:  b,
		Samples: samples,
		MeanRTT: mean * noise,
		Clients: clients,
	}, true
}

// SamplesAt expands one bucket's observations into the raw handshake
// sample stream (trace.Sample records with per-sample RTT spread and
// distinct client addresses), appending to buf. This is the record shape
// the cloud servers log before quartet aggregation.
//
// Like ObservationsAt, the expansion shards across cfg.Workers goroutines
// (here over the observation list) and merges per-shard buffers in order,
// so the stream is identical at any worker count.
func (s *Simulator) SamplesAt(b netmodel.Bucket, buf []trace.Sample) []trace.Sample {
	var obs []Observation
	obs = s.ObservationsAt(b, obs)
	before := len(buf)
	workers := parallel.Resolve(s.cfg.Workers)
	if workers <= 1 || len(obs) < minParallelPrefixes {
		buf = s.samplesRange(b, obs, buf)
		s.mSamples.Add(int64(len(buf) - before))
		return buf
	}
	shards := parallel.Shards(len(obs), workers)
	bufs := s.checkoutSamples(len(shards))
	parallel.ForEach(len(shards), workers, func(i int) {
		bufs[i] = s.samplesRange(b, obs[shards[i].Lo:shards[i].Hi], bufs[i][:0])
	})
	for _, sb := range bufs {
		buf = append(buf, sb...)
	}
	s.checkinSamples(bufs)
	s.mFanoutMax.SetMax(int64(len(shards)))
	s.mSamples.Add(int64(len(buf) - before))
	return buf
}

// samplesRange expands one shard of a bucket's observations into samples.
func (s *Simulator) samplesRange(b netmodel.Bucket, obs []Observation, buf []trace.Sample) []trace.Sample {
	for _, o := range obs {
		base := s.World.Prefixes[o.Prefix].Base
		clients := o.Clients
		if clients < 1 {
			clients = 1
		}
		if clients > 254 {
			clients = 254
		}
		for i := 0; i < o.Samples; i++ {
			h1 := mix(uint64(s.cfg.Seed), uint64(o.Prefix), uint64(o.Cloud), uint64(b), uint64(500+i), 1)
			h2 := mix(uint64(s.cfg.Seed), uint64(o.Prefix), uint64(o.Cloud), uint64(b), uint64(500+i), 2)
			rtt := o.MeanRTT * math.Exp(gauss(h1, h2)*s.cfg.NoiseSigma)
			buf = append(buf, trace.Sample{
				Client: ipaddr.Addr(base) | ipaddr.Addr(1+i%clients),
				Cloud:  o.Cloud,
				Device: o.Device,
				Bucket: b,
				RTTms:  rtt,
			})
		}
	}
	return buf
}

func (s *Simulator) checkoutSamples(n int) [][]trace.Sample {
	s.mu.Lock()
	bufs := s.smpScratch
	s.smpScratch = nil
	s.mu.Unlock()
	if len(bufs) < n {
		bufs = append(bufs, make([][]trace.Sample, n-len(bufs))...)
	}
	return bufs[:n]
}

func (s *Simulator) checkinSamples(bufs [][]trace.Sample) {
	s.mu.Lock()
	s.smpScratch = bufs
	s.mu.Unlock()
}

// SampleRTTs draws n individual RTT samples for a quartet, for tests that
// need sample-level data (e.g. the K-S homogeneity validation of §2.1).
func (s *Simulator) SampleRTTs(p netmodel.PrefixID, c netmodel.CloudID, b netmodel.Bucket, n int) []float64 {
	mean := s.MeanRTT(p, c, b)
	out := make([]float64, n)
	for i := range out {
		h1 := mix(uint64(s.cfg.Seed), uint64(p), uint64(c), uint64(b), uint64(100+i), 1)
		h2 := mix(uint64(s.cfg.Seed), uint64(p), uint64(c), uint64(b), uint64(100+i), 2)
		out[i] = mean * math.Exp(gauss(h1, h2)*s.cfg.NoiseSigma)
	}
	return out
}

// Inflation describes the ground-truth dominant cause of an RTT increase.
type Inflation struct {
	AS       netmodel.ASN
	Segment  netmodel.Segment
	ExtraMS  float64 // the dominant AS's inflation over its static base
	TotalMS  float64 // total inflation over the static base RTT
	Dominant bool    // true when the top AS carries >= 80% of the inflation
}

// DominantInflation identifies which AS contributes the largest latency
// increase over the static base for (prefix, cloud) at a bucket. This is
// the answer key used to grade BlameIt's localization. The 80% dominance
// threshold mirrors the paper's Insight-1 measurement.
func (s *Simulator) DominantInflation(p netmodel.PrefixID, c netmodel.CloudID, b netmodel.Bucket) Inflation {
	now := s.Contributions(p, c, b)
	path := s.pathFor(p, c, b)
	base := s.World.BaseContributions(path, p)
	var inf Inflation
	for i := range now {
		d := now[i].MS - base[i].MS
		inf.TotalMS += d
		if d > inf.ExtraMS {
			inf.ExtraMS = d
			inf.AS = now[i].AS
			inf.Segment = now[i].Segment
		}
	}
	// Reverse-direction congestion counts as middle inflation attributed
	// to the reverse-path AS carrying it.
	if as, ms, ok := s.ReverseFaultAS(p, c, b); ok {
		inf.TotalMS += ms
		if ms > inf.ExtraMS {
			inf.ExtraMS = ms
			inf.AS = as
			inf.Segment = netmodel.SegMiddle
		}
	}
	if inf.TotalMS > 0 && inf.ExtraMS/inf.TotalMS >= 0.8 {
		inf.Dominant = true
	}
	return inf
}
