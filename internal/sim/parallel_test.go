package sim

import (
	"runtime"
	"sync"
	"testing"

	"blameit/internal/faults"
	"blameit/internal/netmodel"
	"blameit/internal/trace"
)

// workerSweep is the set of fan-out widths every determinism test checks:
// the sequential reference, a fixed mid-size pool, and the full machine.
func workerSweep() []int {
	return []int{1, 4, runtime.GOMAXPROCS(0)}
}

// sweepFaults injects one fault per segment kind so the sharded paths
// cover the fault-overlay branches, not just the quiet case.
func sweepFaults(r *rig) []faults.Fault {
	return []faults.Fault{
		{Kind: faults.CloudFault, Cloud: r.w.Clouds[0].ID, ScopeCloud: faults.NoCloud, Start: 5, Duration: 50, ExtraMS: 40},
		{Kind: faults.MiddleASFault, AS: r.w.Transits[netmodel.RegionEurope][0], ScopeCloud: faults.NoCloud, Start: 10, Duration: 40, ExtraMS: 60},
		{Kind: faults.ClientASFault, AS: r.w.Eyeballs[netmodel.RegionUSA][0], ScopeCloud: faults.NoCloud, Start: 0, Duration: 60, ExtraMS: 80},
	}
}

// TestObservationsIdenticalAcrossWorkerCounts is the tentpole determinism
// guarantee: the same seed yields a byte-identical observation stream for
// Workers in {1, 4, GOMAXPROCS}.
func TestObservationsIdenticalAcrossWorkerCounts(t *testing.T) {
	base := newRig(t, nil, 1)
	fs := sweepFaults(base)
	buckets := []netmodel.Bucket{0, 10, netmodel.Bucket(20 * netmodel.BucketsPerHour)}

	var want []Observation
	for si, workers := range workerSweep() {
		r := newRig(t, fs, 1)
		r.sim.SetWorkers(workers)
		var got []Observation
		for _, b := range buckets {
			got = r.sim.ObservationsAt(b, got)
		}
		if si == 0 {
			want = got
			if len(want) == 0 {
				t.Fatal("no observations generated")
			}
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d observations, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: observation %d differs:\n got %+v\nwant %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestSamplesIdenticalAcrossWorkerCounts extends the guarantee to the raw
// handshake sample stream.
func TestSamplesIdenticalAcrossWorkerCounts(t *testing.T) {
	base := newRig(t, nil, 1)
	fs := sweepFaults(base)
	b := netmodel.Bucket(12 * netmodel.BucketsPerHour)

	var want []trace.Sample
	for si, workers := range workerSweep() {
		r := newRig(t, fs, 1)
		r.sim.SetWorkers(workers)
		got := r.sim.SamplesAt(b, nil)
		if si == 0 {
			want = got
			if len(want) == 0 {
				t.Fatal("no samples generated")
			}
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d samples, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: sample %d differs", workers, i)
			}
		}
	}
}

// TestObservationsAtReusableBuffersAreCallerSafe checks that the reusable
// per-shard scratch never leaks between calls: back-to-back generations at
// different buckets must match independent fresh generations.
func TestObservationsAtReusableBuffersAreCallerSafe(t *testing.T) {
	r := newRig(t, nil, 1)
	r.sim.SetWorkers(4)
	first := r.sim.ObservationsAt(3, nil)
	second := r.sim.ObservationsAt(4, nil)

	fresh := newRig(t, nil, 1)
	fresh.sim.SetWorkers(4)
	wantSecond := fresh.sim.ObservationsAt(4, nil)
	if len(second) != len(wantSecond) {
		t.Fatalf("reused-buffer run: %d observations, want %d", len(second), len(wantSecond))
	}
	for i := range second {
		if second[i] != wantSecond[i] {
			t.Fatalf("reused-buffer observation %d differs", i)
		}
	}
	if len(first) == 0 {
		t.Fatal("no observations in first bucket")
	}
}

// TestConcurrentObservationsAtCallers exercises the scratch checkout path
// under concurrent callers (run with -race): two goroutines generating
// different buckets from the same Simulator must not interfere.
func TestConcurrentObservationsAtCallers(t *testing.T) {
	r := newRig(t, nil, 1)
	r.sim.SetWorkers(4)
	want0 := r.sim.ObservationsAt(0, nil)
	want7 := r.sim.ObservationsAt(7, nil)

	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for it := 0; it < 8; it++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			got := r.sim.ObservationsAt(0, nil)
			if len(got) != len(want0) {
				errs <- "bucket 0 length mismatch"
				return
			}
			for i := range got {
				if got[i] != want0[i] {
					errs <- "bucket 0 content mismatch"
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			got := r.sim.ObservationsAt(7, nil)
			if len(got) != len(want7) {
				errs <- "bucket 7 length mismatch"
				return
			}
			for i := range got {
				if got[i] != want7[i] {
					errs <- "bucket 7 content mismatch"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
