package sim

import (
	"math"
	"testing"

	"blameit/internal/bgp"
	"blameit/internal/faults"
	"blameit/internal/ipaddr"
	"blameit/internal/netmodel"
	"blameit/internal/stats"
	"blameit/internal/topology"
	"blameit/internal/trace"
)

// rig bundles a small world with a simulator over the given schedule.
type rig struct {
	w   *topology.World
	tbl *bgp.Table
	sim *Simulator
}

func newRig(t testing.TB, fs []faults.Fault, horizonDays int) *rig {
	t.Helper()
	w := topology.Generate(topology.SmallScale(), 42)
	tbl := bgp.NewTable(w, bgp.ChurnConfig{}, netmodel.Bucket(horizonDays*netmodel.BucketsPerDay), 7)
	s := New(w, tbl, faults.NewSchedule(fs), DefaultConfig(99))
	return &rig{w: w, tbl: tbl, sim: s}
}

func TestMeanRTTMatchesBaseWithoutFaults(t *testing.T) {
	r := newRig(t, nil, 1)
	cfg := DefaultConfig(99)
	cfg.DriftMS = 0 // isolate the base-RTT identity from slow drift
	r.sim = New(r.w, r.tbl, r.sim.Sched, cfg)
	p := r.w.Prefixes[0]
	c := r.w.Attachments(p.ID)[0].Cloud
	// At an early-morning bucket the diurnal extra is near zero.
	var quiet netmodel.Bucket = -1
	for b := netmodel.Bucket(0); b < netmodel.BucketsPerDay; b++ {
		if r.sim.DiurnalClientExtra(p.ID, b) < 0.5 {
			quiet = b
			break
		}
	}
	if quiet < 0 {
		t.Fatal("no quiet bucket found")
	}
	base := r.w.BasePathRTT(r.w.InitialPath(c, p.BGPPrefix), p.ID)
	got := r.sim.MeanRTT(p.ID, c, quiet)
	if math.Abs(got-base) > 1.0 {
		t.Errorf("quiet-hour RTT %v differs from base %v", got, base)
	}
}

func TestCloudFaultRaisesRTTForAllClients(t *testing.T) {
	w := topology.Generate(topology.SmallScale(), 42)
	c := w.Clouds[0]
	f := faults.Fault{Kind: faults.CloudFault, Cloud: c.ID, ScopeCloud: faults.NoCloud, Start: 10, Duration: 5, ExtraMS: 50}
	tbl := bgp.NewTable(w, bgp.ChurnConfig{}, netmodel.BucketsPerDay, 7)
	s := New(w, tbl, faults.NewSchedule([]faults.Fault{f}), DefaultConfig(99))
	for _, p := range w.Prefixes[:20] {
		before := s.MeanRTT(p.ID, c.ID, 9)
		during := s.MeanRTT(p.ID, c.ID, 12)
		if during-before < 45 {
			t.Fatalf("prefix %d: fault raised RTT by only %.1f", p.ID, during-before)
		}
	}
}

func TestMiddleFaultAffectsOnlyPathsThroughAS(t *testing.T) {
	w := topology.Generate(topology.SmallScale(), 42)
	tbl := bgp.NewTable(w, bgp.ChurnConfig{}, netmodel.BucketsPerDay, 7)
	as := w.Tier1s[0]
	f := faults.Fault{Kind: faults.MiddleASFault, AS: as, ScopeCloud: faults.NoCloud, Start: 10, Duration: 5, ExtraMS: 60}
	s := New(w, tbl, faults.NewSchedule([]faults.Fault{f}), DefaultConfig(99))
	affected, unaffected := 0, 0
	for _, p := range w.Prefixes {
		for _, c := range w.Clouds {
			path := tbl.PathAtForPrefix(c.ID, p.ID, 12)
			onPath := false
			for _, m := range path.Middle {
				if m == as {
					onPath = true
				}
			}
			delta := s.MeanRTT(p.ID, c.ID, 12) - s.MeanRTT(p.ID, c.ID, 9)
			if onPath {
				affected++
				if delta < 55 {
					t.Fatalf("on-path pair saw delta %.1f", delta)
				}
			} else {
				unaffected++
				if delta > 10 {
					t.Fatalf("off-path pair saw delta %.1f", delta)
				}
			}
		}
	}
	if affected == 0 || unaffected == 0 {
		t.Fatalf("degenerate split: %d affected, %d unaffected", affected, unaffected)
	}
}

func TestScopedMiddleFault(t *testing.T) {
	w := topology.Generate(topology.SmallScale(), 42)
	tbl := bgp.NewTable(w, bgp.ChurnConfig{}, netmodel.BucketsPerDay, 7)
	as := w.Tier1s[0]
	scope := w.Clouds[0].ID
	f := faults.Fault{Kind: faults.MiddleASFault, AS: as, ScopeCloud: scope, Start: 10, Duration: 5, ExtraMS: 60}
	s := New(w, tbl, faults.NewSchedule([]faults.Fault{f}), DefaultConfig(99))
	// Find a prefix whose paths from two different clouds both traverse as.
	for _, p := range w.Prefixes {
		onScope, onOther := false, netmodel.CloudID(-1)
		for _, c := range w.Clouds {
			path := tbl.PathAtForPrefix(c.ID, p.ID, 12)
			for _, m := range path.Middle {
				if m != as {
					continue
				}
				if c.ID == scope {
					onScope = true
				} else {
					onOther = c.ID
				}
			}
		}
		if onScope && onOther >= 0 {
			dScoped := s.MeanRTT(p.ID, scope, 12) - s.MeanRTT(p.ID, scope, 9)
			dOther := s.MeanRTT(p.ID, onOther, 12) - s.MeanRTT(p.ID, onOther, 9)
			if dScoped < 55 {
				t.Errorf("scoped cloud delta %.1f too small", dScoped)
			}
			if dOther > 10 {
				t.Errorf("other cloud delta %.1f; scope leaked", dOther)
			}
			return
		}
	}
	t.Skip("no prefix traverses the AS from both the scoped and another cloud")
}

func TestDiurnalShape(t *testing.T) {
	r := newRig(t, nil, 7)
	p := r.w.Prefixes[0]
	// Average congestion at 21h must exceed the 06h value for the typical AS.
	evening := netmodel.Bucket(21 * netmodel.BucketsPerHour)
	morning := netmodel.Bucket(6 * netmodel.BucketsPerHour)
	totEve, totMor := 0.0, 0.0
	for _, pp := range r.w.Prefixes {
		totEve += r.sim.DiurnalClientExtra(pp.ID, evening)
		totMor += r.sim.DiurnalClientExtra(pp.ID, morning)
	}
	if totEve < totMor*2 {
		t.Errorf("evening congestion (%.1f) not clearly above morning (%.1f)", totEve, totMor)
	}
	_ = p
}

func TestWeekendDampensDiurnal(t *testing.T) {
	r := newRig(t, nil, 7)
	evening := 21 * netmodel.BucketsPerHour
	weekday := netmodel.Bucket(evening)                            // day 0, Monday
	weekend := netmodel.Bucket(5*netmodel.BucketsPerDay + evening) // day 5, Saturday
	var wk, we float64
	for _, p := range r.w.Prefixes {
		wk += r.sim.DiurnalClientExtra(p.ID, weekday)
		we += r.sim.DiurnalClientExtra(p.ID, weekend)
	}
	if we >= wk {
		t.Errorf("weekend congestion (%.1f) not dampened vs weekday (%.1f)", we, wk)
	}
}

func TestObservationsDeterministic(t *testing.T) {
	r := newRig(t, nil, 1)
	a := r.sim.ObservationsAt(10, nil)
	b := r.sim.ObservationsAt(10, nil)
	if len(a) != len(b) {
		t.Fatal("observation counts differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("observations not deterministic")
		}
	}
	if len(a) == 0 {
		t.Fatal("no observations generated")
	}
}

func TestObservationsShape(t *testing.T) {
	r := newRig(t, nil, 1)
	obs := r.sim.ObservationsAt(netmodel.Bucket(20*netmodel.BucketsPerHour), nil)
	withEnough := 0
	for _, o := range obs {
		if o.Samples <= 0 || o.MeanRTT <= 0 || o.Clients <= 0 {
			t.Fatalf("degenerate observation %+v", o)
		}
		if o.Device != r.w.Prefixes[o.Prefix].Device {
			t.Fatal("device class mismatch")
		}
		if o.Samples >= 10 {
			withEnough++
		}
	}
	if frac := float64(withEnough) / float64(len(obs)); frac < 0.3 {
		t.Errorf("only %.0f%% of quartets have >=10 samples", frac*100)
	}
}

func TestObservationNoiseShrinksWithSamples(t *testing.T) {
	// Quartets with many samples should have relative error smaller than
	// sparse ones on average.
	r := newRig(t, nil, 1)
	b := netmodel.Bucket(20 * netmodel.BucketsPerHour)
	var bigErr, smallErr stats.Welford
	for _, o := range r.sim.ObservationsAt(b, nil) {
		mean := r.sim.MeanRTT(o.Prefix, o.Cloud, b)
		rel := math.Abs(o.MeanRTT-mean) / mean
		if o.Samples >= 50 {
			bigErr.Add(rel)
		} else if o.Samples < 10 {
			smallErr.Add(rel)
		}
	}
	if bigErr.N() < 5 || smallErr.N() < 5 {
		t.Skip("not enough quartets in both classes")
	}
	if bigErr.Mean() >= smallErr.Mean() {
		t.Errorf("relative error with many samples (%.4f) not below sparse (%.4f)", bigErr.Mean(), smallErr.Mean())
	}
}

func TestSampleRTTsKSHomogeneity(t *testing.T) {
	// §2.1: splitting a quartet's samples in half must pass the K-S
	// same-distribution test.
	r := newRig(t, nil, 1)
	p := r.w.Prefixes[0]
	c := r.w.Attachments(p.ID)[0].Cloud
	xs := r.sim.SampleRTTs(p.ID, c, 10, 200)
	if !stats.KSSameDistribution(xs[:100], xs[100:], 0.01) {
		t.Error("K-S test rejected two halves of one quartet")
	}
}

func TestDominantInflationCloudFault(t *testing.T) {
	w := topology.Generate(topology.SmallScale(), 42)
	c := w.Clouds[0]
	f := faults.Fault{Kind: faults.CloudFault, Cloud: c.ID, ScopeCloud: faults.NoCloud, Start: 10, Duration: 5, ExtraMS: 50}
	tbl := bgp.NewTable(w, bgp.ChurnConfig{}, netmodel.BucketsPerDay, 7)
	s := New(w, tbl, faults.NewSchedule([]faults.Fault{f}), DefaultConfig(99))
	// Pick a quiet-hour bucket inside the fault to avoid diurnal competition.
	p := w.Prefixes[0]
	inf := s.DominantInflation(p.ID, c.ID, 12)
	if inf.Segment != netmodel.SegCloud || inf.AS != w.CloudASN() {
		t.Errorf("dominant inflation = %+v, want cloud", inf)
	}
	if !inf.Dominant && s.DiurnalClientExtra(p.ID, 12) < 10 {
		t.Errorf("cloud fault not dominant: %+v", inf)
	}
}

func TestDominantInflationClientFault(t *testing.T) {
	w := topology.Generate(topology.SmallScale(), 42)
	p := w.Prefixes[0]
	f := faults.Fault{Kind: faults.ClientPrefixFault, Prefix: p.ID, Start: 10, Duration: 5, ExtraMS: 70}
	tbl := bgp.NewTable(w, bgp.ChurnConfig{}, netmodel.BucketsPerDay, 7)
	s := New(w, tbl, faults.NewSchedule([]faults.Fault{f}), DefaultConfig(99))
	c := w.Attachments(p.ID)[0].Cloud
	inf := s.DominantInflation(p.ID, c, 12)
	if inf.Segment != netmodel.SegClient || inf.AS != p.AS {
		t.Errorf("dominant inflation = %+v, want client AS %d", inf, p.AS)
	}
}

func TestTrafficShiftReattachesAndInflatesMiddle(t *testing.T) {
	w := topology.Generate(topology.SmallScale(), 42)
	// Find an East-Asian prefix.
	var victim netmodel.PrefixID = -1
	for _, p := range w.Prefixes {
		if w.PrefixRegion(p.ID) == netmodel.RegionEastAsia {
			victim = p.ID
			break
		}
	}
	if victim < 0 {
		t.Fatal("no East-Asian prefix")
	}
	target := w.CloudsInRegion(netmodel.RegionUSA)[0]
	f := faults.Fault{
		Kind: faults.TrafficShift, Cloud: target, ShiftPrefixes: []netmodel.PrefixID{victim},
		Start: 10, Duration: 5, ExtraMS: 40,
	}
	tbl := bgp.NewTable(w, bgp.ChurnConfig{}, netmodel.BucketsPerDay, 7)
	s := New(w, tbl, faults.NewSchedule([]faults.Fault{f}), DefaultConfig(99))

	// During the shift the prefix connects only to the US location.
	obs := s.ObservationsAt(12, nil)
	for _, o := range obs {
		if o.Prefix == victim && o.Cloud != target {
			t.Fatal("shifted prefix still observed at home cloud")
		}
	}
	// And its dominant inflation on that pair is the middle segment.
	inf := s.DominantInflation(victim, target, 12)
	if inf.Segment != netmodel.SegMiddle {
		t.Errorf("shift inflation = %+v, want middle", inf)
	}
	// RTT through the shifted pair must be far above the prefix's home RTT.
	home := w.Attachments(victim)[0].Cloud
	if s.MeanRTT(victim, target, 12) < s.MeanRTT(victim, home, 9)+50 {
		t.Error("shift did not raise the client's experienced RTT substantially")
	}
}

func TestContributionsSumToMeanRTT(t *testing.T) {
	r := newRig(t, nil, 1)
	p := r.w.Prefixes[5]
	c := r.w.Attachments(p.ID)[0].Cloud
	var sum float64
	for _, con := range r.sim.Contributions(p.ID, c, 33) {
		sum += con.MS
	}
	if math.Abs(sum-r.sim.MeanRTT(p.ID, c, 33)) > 1e-9 {
		t.Error("contributions do not sum to MeanRTT")
	}
}

func BenchmarkObservationsAt(b *testing.B) {
	w := topology.Generate(topology.SmallScale(), 42)
	tbl := bgp.NewTable(w, bgp.ChurnConfig{}, netmodel.BucketsPerDay, 7)
	s := New(w, tbl, faults.NewSchedule(nil), DefaultConfig(99))
	var buf []Observation
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = s.ObservationsAt(netmodel.Bucket(i%netmodel.BucketsPerDay), buf[:0])
	}
}

func TestSamplesAtRoundTripsThroughAggregation(t *testing.T) {
	r := newRig(t, nil, 1)
	b := netmodel.Bucket(20 * netmodel.BucketsPerHour)
	raw := r.sim.SamplesAt(b, nil)
	if len(raw) == 0 {
		t.Fatal("no samples")
	}
	obs, dropped := trace.Aggregate(raw, func(base ipaddr.Addr) (netmodel.PrefixID, bool) {
		return r.w.ResolvePrefix(uint32(base))
	})
	if dropped != 0 {
		t.Fatalf("dropped %d samples", dropped)
	}
	direct := r.sim.ObservationsAt(b, nil)
	if len(obs) != len(direct) {
		t.Fatalf("aggregated %d quartets, direct %d", len(obs), len(direct))
	}
	// Index direct observations and compare counts and approximate means.
	type key struct {
		p netmodel.PrefixID
		c netmodel.CloudID
	}
	byKey := make(map[key]trace.Observation)
	for _, o := range direct {
		byKey[key{o.Prefix, o.Cloud}] = o
	}
	for _, o := range obs {
		d, ok := byKey[key{o.Prefix, o.Cloud}]
		if !ok {
			t.Fatal("aggregated quartet missing from direct stream")
		}
		if o.Samples != d.Samples {
			t.Fatalf("sample count mismatch: %d vs %d", o.Samples, d.Samples)
		}
		// Per-sample noise averages out: the aggregated mean stays near the
		// quartet mean.
		if math.Abs(o.MeanRTT-d.MeanRTT)/d.MeanRTT > 0.2 {
			t.Fatalf("aggregated mean %.1f far from quartet mean %.1f", o.MeanRTT, d.MeanRTT)
		}
	}
}

func TestResolvePrefixCoversAllPrefixes(t *testing.T) {
	r := newRig(t, nil, 1)
	for _, p := range r.w.Prefixes {
		got, ok := r.w.ResolvePrefix(p.Base)
		if !ok || got != p.ID {
			t.Fatalf("ResolvePrefix(%08x) = %v,%v want %v", p.Base, got, ok, p.ID)
		}
	}
	if _, ok := r.w.ResolvePrefix(0xDEADBEEF); ok {
		t.Error("unknown base resolved")
	}
}
