package sim

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"blameit/internal/bgp"
	"blameit/internal/faults"
	"blameit/internal/netmodel"
	"blameit/internal/topology"
)

// TestConfigValidate exercises every rejection branch plus the documented
// zero sentinels, which must stay valid.
func TestConfigValidate(t *testing.T) {
	for _, tc := range []struct {
		name    string
		mutate  func(*Config)
		wantErr string // substring; "" = valid
	}{
		{"default", func(c *Config) {}, ""},
		{"zero sentinels", func(c *Config) {
			c.NoiseSigma, c.MixSigma, c.SamplesPerClient = 0, 0, 0
			c.DiurnalMaxMS, c.DriftMS = 0, 0
			c.Workers = 0
		}, ""},
		{"NaN noise", func(c *Config) { c.NoiseSigma = math.NaN() }, "NoiseSigma"},
		{"negative noise", func(c *Config) { c.NoiseSigma = -1 }, "NoiseSigma"},
		{"negative mix", func(c *Config) { c.MixSigma = -0.1 }, "MixSigma"},
		{"NaN samples", func(c *Config) { c.SamplesPerClient = math.NaN() }, "SamplesPerClient"},
		{"negative samples", func(c *Config) { c.SamplesPerClient = -2 }, "SamplesPerClient"},
		{"negative diurnal", func(c *Config) { c.DiurnalMaxMS = -5 }, "DiurnalMaxMS"},
		{"negative drift", func(c *Config) { c.DriftMS = -1 }, "DriftMS"},
		{"negative workers", func(c *Config) { c.Workers = -1 }, "Workers"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(1)
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() accepted invalid config %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("Validate() = %q, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

// TestNewRejectsInvalidConfig: the constructor must refuse a bad config
// and name the offending knob.
func TestNewRejectsInvalidConfig(t *testing.T) {
	w := topology.Generate(topology.SmallScale(), 42)
	tbl := bgp.NewTable(w, bgp.DefaultChurnConfig(), netmodel.BucketsPerDay, 7)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("New accepted a config with negative NoiseSigma")
		}
		if !strings.Contains(fmt.Sprint(r), "NoiseSigma") {
			t.Fatalf("panic %v does not name the offending knob", r)
		}
	}()
	cfg := DefaultConfig(1)
	cfg.NoiseSigma = -3
	New(w, tbl, faults.NewSchedule(nil), cfg)
}
