// Package metrics is the reproduction's dependency-free instrumentation
// layer: a concurrency-safe registry of counters, gauges, and fixed-bucket
// histograms with atomic fast paths and snapshot-on-read semantics.
//
// The production BlameIt runs as a monitored Azure service (Fig. 7 of the
// paper); job latencies, probe budgets, and blame-category mixes are
// operator-facing signals. This package gives the pipeline the same
// per-stage accounting without pulling in an external metrics dependency.
//
// Handles are nil-safe: every method on a nil *Counter, *Gauge, or
// *Histogram is a no-op, and a nil *Registry hands out nil handles. An
// uninstrumented component therefore pays one nil check per event and
// callers never branch on whether metrics are enabled.
//
// Snapshot returns all metric values with deterministic ordering (sorted by
// name); WriteText and WriteJSON render it for operators and machines
// respectively. Counter and gauge values are bit-deterministic for a fixed
// workload; wall-time histograms (the *_ms families) necessarily vary from
// run to run.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins integer metric.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value. No-op on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// SetMax raises the gauge to n if n exceeds the current value — a
// high-watermark gauge (e.g. the widest shard fan-out seen). No-op on a nil
// receiver.
func (g *Gauge) SetMax(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current gauge value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets defined by ascending
// upper bounds, with an implicit +Inf overflow bucket, and tracks the
// observation count and sum. All updates are atomic; Observe takes one
// branchless scan over the (small, fixed) bound list plus two atomic adds.
type Histogram struct {
	bounds []float64 // ascending upper bounds; len(counts) == len(bounds)+1
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	// nonfinite counts NaN/±Inf observations. They are kept out of the
	// buckets and the sum: NaN compares false against every bound (it would
	// land in the overflow bucket by accident, not by meaning) and a single
	// NaN or Inf added to sum is permanent — one poisoned observation would
	// make every later snapshot unmarshalable (encoding/json rejects
	// non-finite numbers) long after the bad value was observed.
	nonfinite atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. Non-finite values are diverted to the
// NonFinite counter. No-op on a nil receiver.
func (h *Histogram) Observe(x float64) {
	if h == nil {
		return
	}
	if math.IsNaN(x) || math.IsInf(x, 0) {
		h.nonfinite.Add(1)
		return
	}
	i := sort.SearchFloat64s(h.bounds, x) // first bound >= x: bucket "le bound"
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + x)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// NonFinite returns how many NaN/±Inf observations were rejected (0 on a
// nil receiver).
func (h *Histogram) NonFinite() int64 {
	if h == nil {
		return 0
	}
	return h.nonfinite.Load()
}

// Registry is a named collection of metrics. All methods are safe for
// concurrent use; handle lookups take a mutex, so callers should fetch
// handles once (at construction) and hold them, keeping the per-event fast
// path a single atomic operation.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns a nil (no-op) handle.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (later calls reuse the existing buckets). A nil
// registry returns a nil (no-op) handle.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// NamedValue is one counter or gauge reading.
type NamedValue struct {
	Name  string
	Value int64
}

// HistogramValue is one histogram reading. Counts[i] is the number of
// observations <= Bounds[i]; the final entry of Counts is the +Inf overflow
// bucket.
type HistogramValue struct {
	Name   string
	Count  int64
	Sum    float64
	Bounds []float64
	Counts []int64
	// NonFinite is the number of NaN/±Inf observations rejected from the
	// buckets and sum.
	NonFinite int64
}

// Snapshot is a point-in-time reading of a registry, each section sorted by
// metric name so rendering order is deterministic.
type Snapshot struct {
	Counters   []NamedValue
	Gauges     []NamedValue
	Histograms []HistogramValue
}

// Snapshot reads every metric. Values are read atomically per metric (the
// snapshot is not a cross-metric atomic cut, which operator-facing
// monitoring does not need). A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, NamedValue{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, NamedValue{Name: name, Value: g.Value()})
	}
	for name, h := range r.histograms {
		hv := HistogramValue{
			Name:      name,
			Count:     h.Count(),
			Sum:       h.Sum(),
			Bounds:    append([]float64(nil), h.bounds...),
			Counts:    make([]int64, len(h.counts)),
			NonFinite: h.NonFinite(),
		}
		for i := range h.counts {
			hv.Counts[i] = h.counts[i].Load()
		}
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Counter returns the snapshot value of a counter and whether it exists.
func (s Snapshot) Counter(name string) (int64, bool) {
	for _, v := range s.Counters {
		if v.Name == name {
			return v.Value, true
		}
	}
	return 0, false
}

// Gauge returns the snapshot value of a gauge and whether it exists.
func (s Snapshot) Gauge(name string) (int64, bool) {
	for _, v := range s.Gauges {
		if v.Name == name {
			return v.Value, true
		}
	}
	return 0, false
}

// Histogram returns the snapshot of a histogram and whether it exists.
func (s Snapshot) Histogram(name string) (HistogramValue, bool) {
	for _, v := range s.Histograms {
		if v.Name == name {
			return v, true
		}
	}
	return HistogramValue{}, false
}

// Delta returns s minus prev: counters and histogram counts/sums are
// subtracted (metrics absent from prev are taken whole), gauges keep their
// current value. This is what per-job-run reporting needs — the activity of
// one interval against the registry's cumulative state.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := Snapshot{Gauges: append([]NamedValue(nil), s.Gauges...)}
	prevC := make(map[string]int64, len(prev.Counters))
	for _, v := range prev.Counters {
		prevC[v.Name] = v.Value
	}
	for _, v := range s.Counters {
		d.Counters = append(d.Counters, NamedValue{Name: v.Name, Value: v.Value - prevC[v.Name]})
	}
	prevH := make(map[string]HistogramValue, len(prev.Histograms))
	for _, v := range prev.Histograms {
		prevH[v.Name] = v
	}
	for _, v := range s.Histograms {
		hv := HistogramValue{
			Name:      v.Name,
			Count:     v.Count,
			Sum:       v.Sum,
			Bounds:    append([]float64(nil), v.Bounds...),
			Counts:    append([]int64(nil), v.Counts...),
			NonFinite: v.NonFinite,
		}
		if p, ok := prevH[v.Name]; ok && len(p.Counts) == len(hv.Counts) {
			hv.Count -= p.Count
			hv.Sum -= p.Sum
			hv.NonFinite -= p.NonFinite
			for i := range hv.Counts {
				hv.Counts[i] -= p.Counts[i]
			}
		}
		d.Histograms = append(d.Histograms, hv)
	}
	return d
}

// WriteText renders the snapshot as sorted "name value" lines grouped by
// metric kind.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, v := range s.Counters {
		if _, err := fmt.Fprintf(w, "counter   %-44s %d\n", v.Name, v.Value); err != nil {
			return err
		}
	}
	for _, v := range s.Gauges {
		if _, err := fmt.Fprintf(w, "gauge     %-44s %d\n", v.Name, v.Value); err != nil {
			return err
		}
	}
	for _, v := range s.Histograms {
		mean := 0.0
		if v.Count > 0 {
			mean = v.Sum / float64(v.Count)
		}
		// nonfinite is appended only when observations were rejected, so
		// clean-run text output is byte-identical to before the counter
		// existed (golden reports compare this rendering).
		if v.NonFinite > 0 {
			if _, err := fmt.Fprintf(w, "histogram %-44s count=%d sum=%.3f mean=%.3f nonfinite=%d\n", v.Name, v.Count, v.Sum, mean, v.NonFinite); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "histogram %-44s count=%d sum=%.3f mean=%.3f\n", v.Name, v.Count, v.Sum, mean); err != nil {
			return err
		}
	}
	return nil
}

// jsonHistogram is the JSON shape of one histogram. NonFinite is omitted
// when zero so clean-run snapshots are byte-identical to the pre-counter
// encoding.
type jsonHistogram struct {
	Count     int64     `json:"count"`
	Sum       float64   `json:"sum"`
	Bounds    []float64 `json:"bounds"`
	Counts    []int64   `json:"counts"`
	NonFinite int64     `json:"nonfinite,omitempty"`
}

// MarshalJSON renders the snapshot as a JSON object with "counters",
// "gauges", and "histograms" sections. Sections are maps, which
// encoding/json marshals with sorted keys, so the byte output is
// deterministic for deterministic values.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	counters := make(map[string]int64, len(s.Counters))
	for _, v := range s.Counters {
		counters[v.Name] = v.Value
	}
	gauges := make(map[string]int64, len(s.Gauges))
	for _, v := range s.Gauges {
		gauges[v.Name] = v.Value
	}
	hists := make(map[string]jsonHistogram, len(s.Histograms))
	for _, v := range s.Histograms {
		hists[v.Name] = jsonHistogram{Count: v.Count, Sum: v.Sum, Bounds: v.Bounds, Counts: v.Counts, NonFinite: v.NonFinite}
	}
	return json.Marshal(struct {
		Counters   map[string]int64         `json:"counters"`
		Gauges     map[string]int64         `json:"gauges"`
		Histograms map[string]jsonHistogram `json:"histograms"`
	}{counters, gauges, hists})
}

// WriteJSON renders the snapshot as indented JSON followed by a newline.
func (s Snapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// defaultRegistry is the process-wide registry behind Default. It stays nil
// (metrics disabled) until EnableDefault, so libraries constructed without
// an explicit registry are uninstrumented unless the process opts in — the
// blameit-experiments CLI does, since its experiment runners construct
// environments internally.
var (
	defaultMu       sync.Mutex
	defaultRegistry *Registry
)

// Default returns the process-wide registry, or nil when EnableDefault has
// not been called.
func Default() *Registry {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	return defaultRegistry
}

// EnableDefault installs (and returns) the process-wide registry that
// components fall back to when no explicit registry is configured. Calling
// it again returns the same registry.
func EnableDefault() *Registry {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultRegistry == nil {
		defaultRegistry = NewRegistry()
	}
	return defaultRegistry
}

// MSBuckets is the shared bucket layout for wall-time histograms, in
// milliseconds.
var MSBuckets = []float64{0.5, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 5000}

// SizeBuckets is the shared bucket layout for size-ish histograms (window
// sizes, batch widths).
var SizeBuckets = []float64{1, 3, 10, 30, 100, 300, 1000, 3000, 10000, 30000, 100000}
