package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a.count") != c {
		t.Fatal("second lookup returned a different counter")
	}
	g := r.Gauge("a.gauge")
	g.Set(7)
	g.SetMax(3) // lower: must not regress
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7 after SetMax(3)", got)
	}
	g.SetMax(11)
	if got := g.Value(); got != 11 {
		t.Fatalf("gauge = %d, want 11", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 10, 100})
	for _, x := range []float64{0.5, 1, 5, 10, 99, 1000} {
		h.Observe(x)
	}
	s := r.Snapshot()
	hv, ok := s.Histogram("h")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	// Buckets are "le bound": {<=1: 0.5, 1}, {<=10: 5, 10}, {<=100: 99}, {+Inf: 1000}.
	want := []int64{2, 2, 1, 1}
	for i, n := range want {
		if hv.Counts[i] != n {
			t.Errorf("bucket %d = %d, want %d (%v)", i, hv.Counts[i], n, hv.Counts)
		}
	}
	if hv.Count != 6 {
		t.Errorf("count = %d, want 6", hv.Count)
	}
	if want := 0.5 + 1 + 5 + 10 + 99 + 1000; math.Abs(hv.Sum-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", hv.Sum, want)
	}
}

// TestNilSafety: a nil registry hands out nil handles and every operation
// is a silent no-op — the contract that lets instrumentation sites run
// unconditionally.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", MSBuckets)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.SetMax(9)
	h.Observe(1.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

// TestConcurrentUpdates hammers one counter, gauge, and histogram from many
// goroutines and checks totals; run under -race this also proves the fast
// paths are data-race free.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := r.Counter("c")
			g := r.Gauge("g")
			h := r.Histogram("h", []float64{0.5})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.SetMax(int64(id*perWorker + i))
				h.Observe(1)
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("g").Value(); got != workers*perWorker-1 {
		t.Errorf("gauge high watermark = %d, want %d", got, workers*perWorker-1)
	}
	h := r.Histogram("h", nil)
	if h.Count() != workers*perWorker || h.Sum() != workers*perWorker {
		t.Errorf("histogram count=%d sum=%v, want %d", h.Count(), h.Sum(), workers*perWorker)
	}
}

// TestSnapshotDeterministicOrdering checks that snapshot sections are
// sorted by name and that JSON output is byte-identical across repeated
// snapshots of the same state.
func TestSnapshotDeterministicOrdering(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"z.last", "a.first", "m.middle"} {
		r.Counter(name).Inc()
		r.Gauge("g." + name).Set(1)
		r.Histogram("h."+name, SizeBuckets).Observe(2)
	}
	s := r.Snapshot()
	for i := 1; i < len(s.Counters); i++ {
		if s.Counters[i-1].Name >= s.Counters[i].Name {
			t.Fatalf("counters not sorted: %q before %q", s.Counters[i-1].Name, s.Counters[i].Name)
		}
	}
	var b1, b2 bytes.Buffer
	if err := s.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("JSON snapshots of identical state differ")
	}
	// The JSON must parse back with all three sections present.
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal(b1.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	for _, sec := range []string{"counters", "gauges", "histograms"} {
		if _, ok := decoded[sec]; !ok {
			t.Errorf("JSON missing %q section", sec)
		}
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs")
	h := r.Histogram("ms", []float64{10, 100})
	c.Add(3)
	h.Observe(5)
	before := r.Snapshot()
	c.Add(2)
	h.Observe(50)
	r.Counter("fresh").Inc() // appears only after the baseline snapshot
	after := r.Snapshot()
	d := after.Delta(before)
	if v, _ := d.Counter("jobs"); v != 2 {
		t.Errorf("delta jobs = %d, want 2", v)
	}
	if v, _ := d.Counter("fresh"); v != 1 {
		t.Errorf("delta fresh = %d, want 1 (absent from prev taken whole)", v)
	}
	hv, _ := d.Histogram("ms")
	if hv.Count != 1 || hv.Sum != 50 {
		t.Errorf("delta histogram count=%d sum=%v, want 1/50", hv.Count, hv.Sum)
	}
	if hv.Counts[1] != 1 || hv.Counts[0] != 0 {
		t.Errorf("delta buckets = %v, want [0 1 0]", hv.Counts)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("c.one").Add(4)
	r.Gauge("g.one").Set(2)
	r.Histogram("h.one", []float64{1}).Observe(3)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"counter", "c.one", "gauge", "g.one", "histogram", "h.one", "count=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestDefaultRegistry(t *testing.T) {
	// Default is nil until enabled; EnableDefault is idempotent.
	if Default() != nil {
		t.Skip("default registry already enabled by another test")
	}
	r := EnableDefault()
	if r == nil || Default() != r || EnableDefault() != r {
		t.Fatal("EnableDefault must install one stable registry")
	}
}

func TestHistogramNonFinite(t *testing.T) {
	h := NewRegistry().Histogram("ms", []float64{1, 10})
	h.Observe(5)
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	if h.Count() != 1 || h.Sum() != 5 {
		t.Fatalf("count=%d sum=%v, want 1/5 (non-finite must not touch buckets or sum)", h.Count(), h.Sum())
	}
	if h.NonFinite() != 3 {
		t.Fatalf("NonFinite = %d, want 3", h.NonFinite())
	}
	var nilH *Histogram
	nilH.Observe(math.NaN()) // nil-safety holds on the reject path too
	if nilH.NonFinite() != 0 {
		t.Fatal("nil histogram NonFinite must be 0")
	}
}

func TestSnapshotJSONSurvivesNaN(t *testing.T) {
	// A single NaN observation used to poison the CAS-accumulated sum
	// forever, making every later snapshot unmarshalable (encoding/json
	// rejects non-finite numbers). The nonfinite counter keeps the sum
	// finite, and clean histograms omit the field so their encoding is
	// byte-identical to the pre-counter shape.
	r := NewRegistry()
	r.Histogram("dirty", []float64{1}).Observe(math.NaN())
	r.Histogram("clean", []float64{1}).Observe(0.5)
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatalf("snapshot with NaN observation must still marshal: %v", err)
	}
	if !strings.Contains(string(b), `"nonfinite":1`) {
		t.Errorf("dirty histogram missing nonfinite field: %s", b)
	}
	if strings.Contains(string(b), `"clean":{"count":1,"sum":0.5,"bounds":[1],"counts":[1,0],"nonfinite"`) {
		t.Errorf("clean histogram must omit nonfinite: %s", b)
	}
}
