// Package fleet simulates an edge-aggregating agent fleet: the scalable
// alternative to the centralized telemetry pipe BlameIt's Algorithm 1
// assumes. Agents own disjoint contiguous slices of the client prefix
// space, pre-aggregate their slice's observations into per-bucket
// quartet.Partial batches at the edge, and ship them to a Collector that
// merges them — deduplicated by (agent, epoch, seq) — into the per-bucket
// quartet.Aggregate the pipeline classifies from.
//
// Delivery is where a real fleet hurts, so the Collector injects the
// fleet fault classes off the existing chaos configuration: whole-partial
// loss (Config.DropBatchProb), delivery lag (LateProb/LateMaxDelay,
// lagged partials arrive after their bucket sealed and are quarantined as
// stale), duplication (DuplicateProb, absorbed by dedup), agent churn
// (AgentChurnProb, restarts that lose the in-flight partial and bump the
// agent's epoch), and transient collector reads (TransientErrProb). Every
// injected fault is counted so tests can demand the books balance.
//
// On a fault-free configuration the fleet is a reshuffling of the
// centralized stream that changes nothing: slices partition the prefix
// space, the canonical fold walks agents in slice order, and the merged
// aggregate reconstructs byte-for-byte the observation stream the
// simulator would have emitted centrally — at any agent count and any
// delivery order.
package fleet

import (
	"context"
	"fmt"
	"sort"

	"blameit/internal/chaos"
	"blameit/internal/ingest"
	"blameit/internal/metrics"
	"blameit/internal/netmodel"
	"blameit/internal/parallel"
	"blameit/internal/quartet"
	"blameit/internal/sim"
	"blameit/internal/stats"
	"blameit/internal/trace"
)

// Agent is one edge vantage point: it owns the prefixes [Lo, Hi) and
// pre-aggregates their observations into one Partial per bucket.
type Agent struct {
	ID int
	// Epoch increments on every restart; Seq restarts with it. The pair
	// scopes deduplication, so a reborn agent reusing sequence numbers is
	// never confused with its pre-restart deliveries.
	Epoch int
	// Lo, Hi delimit the agent's half-open prefix slice.
	Lo, Hi int

	// Diag is the agent's lifetime RTT diagnostic summary (exact
	// count/mean/min/max, P² quantiles). It stays at the edge — the wire
	// carries the exactly-mergeable histogram sketch instead, because P²
	// marker state cannot be merged.
	Diag *stats.StreamingSummary

	sim    *sim.Simulator
	seq    int64
	obsBuf []trace.Observation
}

// Restart models an agent crash/redeploy: the epoch bumps and the
// sequence counter restarts. Whatever the agent was about to deliver is
// the caller's loss to account.
func (a *Agent) Restart() {
	a.Epoch++
	a.seq = 0
}

// Collect generates and pre-aggregates the agent's slice of bucket b:
// one Partial with cells in prefix-ascending order, edge-classified
// against the world's targets, carrying the mergeable latency sketch.
func (a *Agent) Collect(b netmodel.Bucket) *quartet.Partial {
	a.seq++
	p := quartet.NewPartial(quartet.PartialID{Agent: a.ID, Epoch: a.Epoch, Seq: a.seq}, b)
	a.obsBuf = a.sim.ObservationsRange(b, a.Lo, a.Hi, a.obsBuf[:0])
	for _, o := range a.obsBuf {
		p.ObserveClassified(o, a.sim.World.TargetFor(o.Prefix, o.Cloud))
		a.Diag.Add(o.MeanRTT)
	}
	return p
}

// Fleet is a set of agents whose slices partition the prefix space in
// ascending-ID order.
type Fleet struct {
	Agents []*Agent
}

// New splits the simulator's prefix space across at most `agents`
// contiguous slices (tiny worlds get fewer). The shard boundaries depend
// only on (prefix count, agent count), so a fleet is reproducible.
func New(s *sim.Simulator, agents int) *Fleet {
	if agents < 1 {
		agents = 1
	}
	shards := parallel.Shards(len(s.World.Prefixes), agents)
	f := &Fleet{}
	for i, sh := range shards {
		f.Agents = append(f.Agents, &Agent{
			ID: i, Lo: sh.Lo, Hi: sh.Hi,
			Diag: stats.NewStreamingSummary(),
			sim:  s,
		})
	}
	return f
}

// Stats counts the delivery fabric's outcomes, cumulatively. The books
// always balance: Attempted = ChurnDropped + Dropped + Held + Merged,
// Duplicated = Deduped, and Held = Stale + InFlight().
type Stats struct {
	// Attempted is agent-buckets: one potential partial per agent per
	// collected bucket.
	Attempted int64
	// Merged is partials folded into their bucket's aggregate.
	Merged int64
	// ChurnEvents is agent restarts; ChurnDropped the partials they lost.
	ChurnEvents, ChurnDropped int64
	// Dropped is partials lost outright in delivery.
	Dropped int64
	// Held is partials delayed in flight; Stale the ones that arrived
	// after their bucket was already sealed (quarantined, content lost).
	Held, Stale int64
	// Duplicated is extra delivered copies; Deduped the copies rejected
	// by (agent, epoch, seq) dedup.
	Duplicated, Deduped int64
	// TransientErrs is injected retryable collector read failures.
	TransientErrs int64
}

// Collector merges the fleet's delivered partials into per-bucket
// aggregates and serves them to the pipeline (it implements
// pipeline.AggregateSource). Not safe for concurrent use — the pipeline
// reads buckets serially.
type Collector struct {
	fleet *Fleet
	cfg   chaos.Config
	dice  chaos.Decider

	pending  map[netmodel.Bucket]*quartet.Aggregate
	inflight map[netmodel.Bucket][]*quartet.Partial
	// frontier is the lowest unread bucket: everything below it is
	// sealed, and a lagged partial landing below it is stale.
	frontier    netmodel.Bucket
	erredBucket netmodel.Bucket
	erredPrimed bool
	stats       Stats

	reg                              *metrics.Registry
	mMerged, mDropped, mHeld, mStale *metrics.Counter
	mDeduped, mChurn, mTransient     *metrics.Counter
}

// NewCollector builds the delivery fabric between a fleet and the
// pipeline. A zero chaos.Config delivers perfectly.
func NewCollector(f *Fleet, cfg chaos.Config) *Collector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.LateMaxDelay < 1 {
		cfg.LateMaxDelay = 1
	}
	return &Collector{
		fleet:    f,
		cfg:      cfg,
		dice:     chaos.Decider{Seed: cfg.Seed},
		pending:  make(map[netmodel.Bucket]*quartet.Aggregate),
		inflight: make(map[netmodel.Bucket][]*quartet.Partial),
	}
}

// SetMetrics mirrors delivery outcomes into fleet.* counters, registered
// lazily on first event so fault-free snapshots stay unchanged.
func (c *Collector) SetMetrics(reg *metrics.Registry) { c.reg = reg }

func (c *Collector) count(handle **metrics.Counter, name string) {
	if c.reg == nil {
		return
	}
	if *handle == nil {
		*handle = c.reg.Counter(name)
	}
	(*handle).Inc()
}

// Stats returns the cumulative delivery accounting.
func (c *Collector) Stats() Stats { return c.stats }

// InFlight is the number of lagged partials not yet (re)delivered.
func (c *Collector) InFlight() int {
	n := 0
	for _, ps := range c.inflight {
		n += len(ps)
	}
	return n
}

// deliver routes one partial toward its bucket's aggregate: stale if the
// bucket already sealed, deduplicated if the ID was already folded in.
func (c *Collector) deliver(p *quartet.Partial) {
	if p.Bucket < c.frontier {
		c.stats.Stale++
		c.count(&c.mStale, "fleet.partials.stale")
		return
	}
	agg := c.pending[p.Bucket]
	if agg == nil {
		agg = quartet.NewAggregate(p.Bucket)
		c.pending[p.Bucket] = agg
	}
	if agg.Add(p) {
		c.stats.Merged++
		c.count(&c.mMerged, "fleet.partials.merged")
	} else {
		c.stats.Deduped++
		c.count(&c.mDeduped, "fleet.partials.deduped")
	}
}

// AggregatesAt drives one bucket of the fleet: agents collect and
// pre-aggregate their slices, the delivery fabric applies its faults,
// lagged partials whose delivery time arrived are flushed, and the
// bucket's merged aggregate is sealed and handed to the pipeline. A nil
// aggregate means every partial of the bucket was lost.
func (c *Collector) AggregatesAt(ctx context.Context, b netmodel.Bucket) (*quartet.Aggregate, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Transient collector failure, rolled before any agent state advances
	// so the pipeline's retry re-reads an identical bucket.
	if c.cfg.TransientErrProb > 0 && !(c.erredPrimed && c.erredBucket == b) &&
		c.dice.Roll("fleet.transient", int64(b)) < c.cfg.TransientErrProb {
		c.erredBucket, c.erredPrimed = b, true
		c.stats.TransientErrs++
		c.count(&c.mTransient, "fleet.collector.transient_errs")
		return nil, ingest.Transient(fmt.Errorf("fleet: injected transient collector failure at bucket %d", b))
	}
	for _, ag := range c.fleet.Agents {
		c.stats.Attempted++
		if c.cfg.AgentChurnProb > 0 && c.dice.Roll("fleet.churn", int64(ag.ID), int64(b)) < c.cfg.AgentChurnProb {
			ag.Restart()
			c.stats.ChurnEvents++
			c.stats.ChurnDropped++
			c.count(&c.mChurn, "fleet.agent.churn")
			continue
		}
		part := ag.Collect(b)
		if c.cfg.DropBatchProb > 0 && c.dice.Roll("fleet.drop", int64(ag.ID), int64(b)) < c.cfg.DropBatchProb {
			c.stats.Dropped++
			c.count(&c.mDropped, "fleet.partials.dropped")
			continue
		}
		if c.cfg.LateProb > 0 && c.dice.Roll("fleet.lag", int64(ag.ID), int64(b)) < c.cfg.LateProb {
			delay := 1 + netmodel.Bucket(c.dice.Hash("fleet.lag", int64(ag.ID), int64(b))%uint64(c.cfg.LateMaxDelay))
			c.inflight[b+delay] = append(c.inflight[b+delay], part)
			c.stats.Held++
			c.count(&c.mHeld, "fleet.partials.held")
			continue
		}
		c.deliver(part)
		if c.cfg.DuplicateProb > 0 && c.dice.Roll("fleet.dup", int64(ag.ID), int64(b)) < c.cfg.DuplicateProb {
			c.stats.Duplicated++
			c.deliver(part)
		}
	}
	// Flush lagged partials whose delivery time arrived, in delivery-
	// bucket order for determinism. Their origin buckets sealed while
	// they were in flight, so deliver routes them to Stale.
	if len(c.inflight) > 0 {
		var due []netmodel.Bucket
		for k := range c.inflight {
			if k <= b {
				due = append(due, k)
			}
		}
		sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
		for _, k := range due {
			for _, p := range c.inflight[k] {
				c.deliver(p)
			}
			delete(c.inflight, k)
		}
	}
	agg := c.pending[b]
	delete(c.pending, b)
	c.frontier = b + 1
	return agg, nil
}
