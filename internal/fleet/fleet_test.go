package fleet_test

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"blameit/internal/bgp"
	"blameit/internal/chaos"
	"blameit/internal/faults"
	"blameit/internal/fleet"
	"blameit/internal/ingest"
	"blameit/internal/metrics"
	"blameit/internal/netmodel"
	"blameit/internal/pipeline"
	"blameit/internal/probe"
	"blameit/internal/quartet"
	"blameit/internal/sim"
	"blameit/internal/topology"
)

// buildSim constructs the shared deterministic world for one arm. Every
// arm rebuilds it from the same seeds so no state leaks between runs.
func buildSim(days int, fs []faults.Fault) (*sim.Simulator, netmodel.Bucket) {
	w := topology.Generate(topology.SmallScale(), 42)
	horizon := netmodel.Bucket((days + 1) * netmodel.BucketsPerDay)
	tbl := bgp.NewTable(w, bgp.DefaultChurnConfig(), horizon, 7)
	return sim.New(w, tbl, faults.NewSchedule(fs), sim.DefaultConfig(99)), horizon
}

// equivFaults is a small incident schedule so the equivalence runs
// produce non-trivial reports (verdicts and tickets, not just empty
// windows).
func equivFaults(w *topology.World, days int) []faults.Fault {
	regions := []netmodel.Region{netmodel.RegionUSA, netmodel.RegionEurope}
	var fs []faults.Fault
	for d := 1; d < days; d++ {
		tr := w.Transits[regions[d%len(regions)]]
		fs = append(fs, faults.Fault{
			Kind: faults.MiddleASFault, AS: tr[d%len(tr)], ScopeCloud: faults.NoCloud,
			Start:    netmodel.Bucket((d + 1) * netmodel.BucketsPerDay),
			Duration: 18, ExtraMS: 90,
		})
	}
	fs = append(fs, faults.Fault{
		Kind: faults.CloudFault, Cloud: w.Clouds[0].ID, ScopeCloud: faults.NoCloud,
		Start: netmodel.Bucket(netmodel.BucketsPerDay + netmodel.BucketsPerDay/2), Duration: 12, ExtraMS: 60,
	})
	return fs
}

// runReports drives warmup + full run and returns the concatenated
// CanonicalJSON of every report — the byte stream that must be identical
// across feed arrangements.
func runReports(t *testing.T, deps pipeline.Deps, horizon netmodel.Bucket) []byte {
	t.Helper()
	cfg := pipeline.DefaultConfig()
	cfg.Metrics = metrics.NewRegistry()
	p := pipeline.New(deps, cfg)
	var out bytes.Buffer
	if err := p.Warmup(0, netmodel.BucketsPerDay); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	err := p.Run(netmodel.BucketsPerDay, horizon, func(rep *pipeline.Report) {
		buf, err := rep.CanonicalJSON()
		if err != nil {
			t.Fatalf("canonical json: %v", err)
		}
		out.Write(buf)
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return out.Bytes()
}

// shuffledCollector replays a fleet's per-bucket partials in a seeded
// random delivery order — the adversarial permutation the set-union
// merge must be insensitive to.
type shuffledCollector struct {
	fleet *fleet.Fleet
	rng   *rand.Rand
}

func (sc *shuffledCollector) AggregatesAt(_ context.Context, b netmodel.Bucket) (*quartet.Aggregate, error) {
	parts := make([]*quartet.Partial, 0, len(sc.fleet.Agents))
	for _, ag := range sc.fleet.Agents {
		parts = append(parts, ag.Collect(b))
	}
	sc.rng.Shuffle(len(parts), func(i, j int) { parts[i], parts[j] = parts[j], parts[i] })
	agg := quartet.NewAggregate(b)
	for _, p := range parts {
		agg.Add(p)
	}
	return agg, nil
}

// TestFleetMatchesCentralized is the tentpole equivalence property end
// to end: a fleet of edge-aggregating agents feeding the pipeline merged
// partials produces byte-identical reports to the centralized raw
// observation feed — at 1, 4, and 16 agents, and under a shuffled
// delivery order.
func TestFleetMatchesCentralized(t *testing.T) {
	const days = 2
	w := topology.Generate(topology.SmallScale(), 42)
	fs := equivFaults(w, days)

	central, horizon := buildSim(days, fs)
	cfg := pipeline.DefaultConfig()
	want := runReports(t, pipeline.Deps{
		World:  central.World,
		Table:  central.Routes,
		Source: ingest.NewSimSource(central),
		Prober: probe.NewEngine(central, cfg.ProbeNoiseMS),
	}, horizon)
	if len(want) == 0 {
		t.Fatal("centralized run produced no report bytes")
	}

	for _, agents := range []int{1, 4, 16} {
		s, _ := buildSim(days, fs)
		f := fleet.New(s, agents)
		if agents <= len(s.World.Prefixes) && len(f.Agents) != agents {
			t.Fatalf("fleet.New(%d) built %d agents", agents, len(f.Agents))
		}
		col := fleet.NewCollector(f, chaos.Config{Seed: int64(agents)})
		got := runReports(t, pipeline.Deps{
			World:      s.World,
			Table:      s.Routes,
			Aggregates: col,
			Prober:     probe.NewEngine(s, cfg.ProbeNoiseMS),
		}, horizon)
		if !bytes.Equal(got, want) {
			t.Errorf("%d-agent fleet reports diverge from centralized (%d vs %d bytes)", agents, len(got), len(want))
		}
		st := col.Stats()
		if st.Merged != st.Attempted || st.Dropped+st.Held+st.Stale+st.Deduped+st.ChurnDropped != 0 {
			t.Errorf("fault-free collector books off: %+v", st)
		}
		for _, ag := range f.Agents {
			if ag.Diag.N() == 0 {
				t.Errorf("agent %d collected nothing into its diagnostic summary", ag.ID)
			}
		}
	}

	// Same property under an adversarial delivery order.
	s, _ := buildSim(days, fs)
	sc := &shuffledCollector{fleet: fleet.New(s, 16), rng: rand.New(rand.NewSource(7))}
	got := runReports(t, pipeline.Deps{
		World:      s.World,
		Table:      s.Routes,
		Aggregates: sc,
		Prober:     probe.NewEngine(s, cfg.ProbeNoiseMS),
	}, horizon)
	if !bytes.Equal(got, want) {
		t.Error("shuffled-delivery fleet reports diverge from centralized")
	}
}
