package fleet_test

import (
	"testing"

	"blameit/internal/chaos"
	"blameit/internal/faults"
	"blameit/internal/fleet"
	"blameit/internal/metrics"
	"blameit/internal/netmodel"
	"blameit/internal/pipeline"
	"blameit/internal/probe"
	"blameit/internal/topology"
)

// fleetArm is one arm of the fleet A/B run: the same world and incident
// schedule, with the delivery fabric either perfect or under the heavy
// chaos profile.
type fleetArm struct {
	pipe *pipeline.Pipeline
	col  *fleet.Collector
	fl   *fleet.Fleet
	reg  *metrics.Registry

	probed, degraded, localized int
	correct, wrong, graded      int
}

// runFleetArm drives a 1-warmup + N-day fleet-fed run, grading every
// active-phase verdict against simulator ground truth exactly like the
// centralized chaos harness does.
func runFleetArm(t *testing.T, chaosOn bool, fs []faults.Fault, days, agents int) *fleetArm {
	t.Helper()
	s, horizon := buildSim(days, fs)
	cfg := pipeline.DefaultConfig()
	res := &fleetArm{reg: metrics.NewRegistry()}
	cfg.Metrics = res.reg
	res.fl = fleet.New(s, agents)
	ccfg := chaos.Config{Seed: 77}
	if chaosOn {
		ccfg = chaos.Heavy(1234)
	}
	res.col = fleet.NewCollector(res.fl, ccfg)
	p := pipeline.New(pipeline.Deps{
		World:      s.World,
		Table:      s.Routes,
		Aggregates: res.col,
		Prober:     probe.NewEngine(s, cfg.ProbeNoiseMS),
	}, cfg)
	res.pipe = p
	if err := p.Warmup(0, netmodel.BucketsPerDay); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	err := p.Run(netmodel.BucketsPerDay, horizon, func(rep *pipeline.Report) {
		for _, v := range rep.Verdicts {
			if !v.Probed {
				continue
			}
			res.probed++
			if v.Degraded {
				res.degraded++
				continue
			}
			if !v.OK {
				continue
			}
			res.localized++
			// Grade only clear-cut cases: dominant, sizable, middle-segment
			// ground-truth inflation.
			inf := s.DominantInflation(v.Issue.Prefixes[0], v.Issue.Cloud, rep.To)
			if inf.Segment != netmodel.SegMiddle || !inf.Dominant || inf.TotalMS < 20 {
				continue
			}
			res.graded++
			if v.AS == inf.AS {
				res.correct++
			} else {
				res.wrong++
			}
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

// TestFleetChaosEndToEnd is the fleet robustness headline: a 7-day run
// where the delivery fabric loses, delays, duplicates, and churns agent
// partials under the heavy chaos profile, against a perfect-delivery
// control arm over the identical world and incident schedule. Every
// partial must be accounted for — merged, churn-dropped, dropped, stale,
// still in flight, or deduplicated — the quarantine must stay empty
// (fleet faults are absorbed upstream of it), and lost aggregates may
// cost localizations but never produce a wrong one.
func TestFleetChaosEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("7-day fleet chaos A/B run skipped in -short mode")
	}
	const (
		days   = 7
		agents = 8
	)
	w := topology.Generate(topology.SmallScale(), 42)
	regions := []netmodel.Region{netmodel.RegionUSA, netmodel.RegionEurope, netmodel.RegionEastAsia}
	var fs []faults.Fault
	for d := 1; d < days; d++ {
		tr := w.Transits[regions[d%len(regions)]]
		fs = append(fs, faults.Fault{
			Kind: faults.MiddleASFault, AS: tr[d%len(tr)], ScopeCloud: faults.NoCloud,
			Start:    netmodel.Bucket((d + 1) * netmodel.BucketsPerDay),
			Duration: 18, ExtraMS: 90,
		})
	}
	fs = append(fs,
		faults.Fault{Kind: faults.CloudFault, Cloud: w.Clouds[0].ID, ScopeCloud: faults.NoCloud,
			Start: 2*netmodel.BucketsPerDay + 100, Duration: 12, ExtraMS: 60},
		faults.Fault{Kind: faults.ClientPrefixFault, Prefix: w.Prefixes[0].ID,
			Start: 3*netmodel.BucketsPerDay + 50, Duration: 12, ExtraMS: 70},
	)

	golden := runFleetArm(t, false, fs, days, agents)
	hostile := runFleetArm(t, true, fs, days, agents)

	// --- Control arm sanity: perfect delivery, clean books. ---
	gst := golden.col.Stats()
	if gst.Merged != gst.Attempted || gst.Dropped+gst.Held+gst.Stale+gst.Deduped+gst.ChurnDropped+gst.TransientErrs != 0 {
		t.Errorf("control collector books not clean: %+v", gst)
	}
	if n := golden.pipe.Quarantine().Total(); n != 0 {
		t.Errorf("control arm quarantined %d records", n)
	}
	if golden.graded == 0 || golden.correct == 0 {
		t.Fatalf("control arm graded nothing (graded=%d correct=%d) — test world too quiet", golden.graded, golden.correct)
	}

	// --- Every partial must be accounted for, exactly. ---
	st := hostile.col.Stats()
	if st.ChurnEvents == 0 || st.Dropped == 0 || st.Held == 0 || st.Stale == 0 ||
		st.Duplicated == 0 || st.TransientErrs == 0 {
		t.Fatalf("heavy profile injected nothing: %+v", st)
	}
	if st.Attempted != st.ChurnDropped+st.Dropped+st.Held+st.Merged {
		t.Errorf("partial books off: attempted %d != churn %d + dropped %d + held %d + merged %d",
			st.Attempted, st.ChurnDropped, st.Dropped, st.Held, st.Merged)
	}
	if st.Duplicated != st.Deduped {
		t.Errorf("duplicated %d partials but deduplicated %d — a duplicate slipped into a merge", st.Duplicated, st.Deduped)
	}
	if inflight := int64(hostile.col.InFlight()); st.Held != st.Stale+inflight {
		t.Errorf("held %d != stale %d + in flight %d", st.Held, st.Stale, inflight)
	}
	// Churn is epoch-scoped: restarts must be visible on the agents
	// themselves, so reborn sequence numbers can never collide.
	var epochs int64
	for _, ag := range hostile.fl.Agents {
		epochs += int64(ag.Epoch)
	}
	if epochs != st.ChurnEvents {
		t.Errorf("agent epochs sum to %d, collector counted %d churn events", epochs, st.ChurnEvents)
	}
	retries, dark := hostile.pipe.SourceFaults()
	if retries+dark != st.TransientErrs {
		t.Errorf("transient errors: injected %d, pipeline absorbed %d retries + %d dark buckets", st.TransientErrs, retries, dark)
	}
	// Fleet faults are whole-partial faults, absorbed before validation:
	// nothing reaches the observation quarantine.
	if n := hostile.pipe.Quarantine().Total(); n != 0 {
		t.Errorf("fleet faults leaked %d records into the observation quarantine", n)
	}
	// The same books, through the metrics registry.
	snap := hostile.reg.Snapshot()
	for name, want := range map[string]int64{
		"fleet.partials.merged":          st.Merged,
		"fleet.partials.dropped":         st.Dropped,
		"fleet.partials.held":            st.Held,
		"fleet.partials.stale":           st.Stale,
		"fleet.partials.deduped":         st.Deduped,
		"fleet.agent.churn":              st.ChurnEvents,
		"fleet.collector.transient_errs": st.TransientErrs,
		"pipeline.source.retries":        retries,
	} {
		if got, ok := snap.Counter(name); !ok || got != want {
			t.Errorf("counter %s = %d (ok=%v), want %d", name, got, ok, want)
		}
	}

	// --- Graceful degradation: shortfall is fine, wrong answers are not. ---
	if hostile.correct == 0 {
		t.Error("hostile arm localized nothing correctly over 7 days")
	}
	if hostile.localized*2 < golden.localized {
		t.Errorf("hostile arm localized %d issues vs control %d — degraded more than half", hostile.localized, golden.localized)
	}
	if golden.wrong != 0 {
		t.Errorf("control arm produced %d wrong localizations", golden.wrong)
	}
	if hostile.wrong != 0 {
		t.Errorf("lost/lagged partials flipped %d verdicts to wrong localizations", hostile.wrong)
	}
	t.Logf("control: probed=%d localized=%d graded=%d correct=%d wrong=%d",
		golden.probed, golden.localized, golden.graded, golden.correct, golden.wrong)
	t.Logf("fleet chaos: probed=%d localized=%d graded=%d correct=%d wrong=%d degraded=%d",
		hostile.probed, hostile.localized, hostile.graded, hostile.correct, hostile.wrong, hostile.degraded)
	t.Logf("delivery books: %+v in-flight=%d", st, hostile.col.InFlight())
}
