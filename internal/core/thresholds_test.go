package core

import (
	"math"
	"testing"

	"blameit/internal/netmodel"
)

func TestLearnerMedian(t *testing.T) {
	l := NewLearner()
	for i := 0; i < 101; i++ {
		l.AddCloud(1, netmodel.NonMobile, float64(i))
	}
	th := l.Snapshot()
	v, ok := th.CloudExpected(1, netmodel.NonMobile)
	if !ok {
		t.Fatal("no learned value")
	}
	if math.Abs(v-50) > 1 {
		t.Errorf("median = %v, want ~50", v)
	}
	if _, ok := th.CloudExpected(2, netmodel.NonMobile); ok {
		t.Error("unlearned cloud returned a value")
	}
}

func TestLearnerDeviceSeparation(t *testing.T) {
	l := NewLearner()
	for i := 0; i < 50; i++ {
		l.AddCloud(1, netmodel.NonMobile, 20)
		l.AddCloud(1, netmodel.Mobile, 80)
	}
	th := l.Snapshot()
	nm, _ := th.CloudExpected(1, netmodel.NonMobile)
	mo, _ := th.CloudExpected(1, netmodel.Mobile)
	if nm != 20 || mo != 80 {
		t.Errorf("device separation broken: %v / %v", nm, mo)
	}
}

func TestLearnerMiddle(t *testing.T) {
	l := NewLearner()
	k := netmodel.MiddleKey("c1|2001")
	for i := 0; i < 30; i++ {
		l.AddMiddle(k, netmodel.NonMobile, 42)
	}
	th := l.Snapshot()
	v, ok := th.MiddleExpected(k, netmodel.NonMobile)
	if !ok || v != 42 {
		t.Errorf("middle expected = %v,%v", v, ok)
	}
	if th.NumMiddleEntries() != 1 || th.NumCloudEntries() != 0 {
		t.Error("entry counts wrong")
	}
}

func TestLearnerReservoirBounded(t *testing.T) {
	l := NewLearner()
	// Feed far more values than the reservoir capacity; the median of a
	// uniform stream must stay near the true median.
	n := 50000
	for i := 0; i < n; i++ {
		l.AddCloud(1, netmodel.NonMobile, float64(i%1000))
	}
	r := l.cloud[cloudDevKey{1, netmodel.NonMobile}]
	if len(r.vals) > reservoirCap {
		t.Fatalf("reservoir grew to %d", len(r.vals))
	}
	th := l.Snapshot()
	v, _ := th.CloudExpected(1, netmodel.NonMobile)
	if math.Abs(v-500) > 50 {
		t.Errorf("reservoir median = %v, want ~500", v)
	}
}

func TestLearnerDeterministic(t *testing.T) {
	run := func() float64 {
		l := NewLearner()
		for i := 0; i < 10000; i++ {
			l.AddCloud(3, netmodel.Mobile, float64((i*7)%500))
		}
		v, _ := l.Snapshot().CloudExpected(3, netmodel.Mobile)
		return v
	}
	if run() != run() {
		t.Error("learner not deterministic")
	}
}

func TestAddObservation(t *testing.T) {
	l := NewLearner()
	k := netmodel.MiddleKey("c2|2001|1000")
	l.AddObservation(2, k, netmodel.NonMobile, 33)
	th := l.Snapshot()
	if v, ok := th.CloudExpected(2, netmodel.NonMobile); !ok || v != 33 {
		t.Error("cloud side of AddObservation missing")
	}
	if v, ok := th.MiddleExpected(k, netmodel.NonMobile); !ok || v != 33 {
		t.Error("middle side of AddObservation missing")
	}
}

func TestStaticThresholdsCoverBothDevices(t *testing.T) {
	th := StaticThresholds(map[netmodel.CloudID]float64{5: 44}, nil)
	for d := 0; d < netmodel.NumDeviceClasses; d++ {
		if v, ok := th.CloudExpected(5, netmodel.DeviceClass(d)); !ok || v != 44 {
			t.Errorf("device %d missing static threshold", d)
		}
	}
}
