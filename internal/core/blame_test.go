package core

import (
	"fmt"
	"testing"

	"blameit/internal/netmodel"
	"blameit/internal/quartet"
	"blameit/internal/trace"
)

// fixedPaths builds a PathFunc from a (prefix, cloud) -> path map.
type pcKey struct {
	p netmodel.PrefixID
	c netmodel.CloudID
}

func pathFunc(m map[pcKey]netmodel.Path) PathFunc {
	return func(p netmodel.PrefixID, c netmodel.CloudID, b netmodel.Bucket) netmodel.Path {
		path, ok := m[pcKey{p, c}]
		if !ok {
			panic(fmt.Sprintf("no path for prefix %d cloud %d", p, c))
		}
		return path
	}
}

// mkQuartet builds a classified quartet.
func mkQuartet(p int, c int, rtt float64, target float64, samples int) quartet.Quartet {
	o := trace.Observation{
		Prefix: netmodel.PrefixID(p), Cloud: netmodel.CloudID(c),
		Device: netmodel.NonMobile, Bucket: 7, Samples: samples, MeanRTT: rtt,
	}
	return quartet.Classify(o, target)
}

const cloudASN = netmodel.ASN(8075)

// simplePath gives every (prefix, cloud) a one-AS middle keyed by the given
// transit, with client AS 100+prefix.
func simplePath(c int, middle netmodel.ASN, client netmodel.ASN) netmodel.Path {
	return netmodel.Path{Cloud: netmodel.CloudID(c), Middle: []netmodel.ASN{middle}, Client: client}
}

func TestBlameCloudWhenAllClientsBad(t *testing.T) {
	paths := make(map[pcKey]netmodel.Path)
	var qs []quartet.Quartet
	// 20 prefixes across two middles, all inflated: the cloud is the
	// smaller failure set (Insight-2).
	for p := 0; p < 20; p++ {
		mid := netmodel.ASN(2000 + p%2)
		paths[pcKey{netmodel.PrefixID(p), 1}] = simplePath(1, mid, netmodel.ASN(100+p))
		qs = append(qs, mkQuartet(p, 1, 90, 50, 20))
	}
	th := StaticThresholds(map[netmodel.CloudID]float64{1: 40}, nil)
	l := NewLocalizer(DefaultConfig(), cloudASN, pathFunc(paths), th)
	rs := l.Localize(qs)
	if len(rs) != 20 {
		t.Fatalf("results = %d", len(rs))
	}
	for _, r := range rs {
		if r.Blame != BlameCloud {
			t.Fatalf("blame = %v, want cloud", r.Blame)
		}
		if r.BlamedAS != cloudASN {
			t.Fatalf("blamed AS = %d", r.BlamedAS)
		}
	}
}

func TestBlameMiddleWhenOnePathBad(t *testing.T) {
	paths := make(map[pcKey]netmodel.Path)
	var qs []quartet.Quartet
	// 10 prefixes on the faulty middle (AS 2001), all bad.
	for p := 0; p < 10; p++ {
		paths[pcKey{netmodel.PrefixID(p), 1}] = simplePath(1, 2001, netmodel.ASN(100+p))
		qs = append(qs, mkQuartet(p, 1, 95, 50, 20))
	}
	// 30 prefixes on a healthy middle keep the cloud aggregate below tau.
	for p := 10; p < 40; p++ {
		paths[pcKey{netmodel.PrefixID(p), 1}] = simplePath(1, 2002, netmodel.ASN(100+p))
		qs = append(qs, mkQuartet(p, 1, 30, 50, 20))
	}
	badKey := simplePath(1, 2001, 0).Key()
	goodKey := simplePath(1, 2002, 0).Key()
	th := StaticThresholds(
		map[netmodel.CloudID]float64{1: 35},
		map[netmodel.MiddleKey]float64{badKey: 38, goodKey: 38},
	)
	l := NewLocalizer(DefaultConfig(), cloudASN, pathFunc(paths), th)
	rs := l.Localize(qs)
	if len(rs) != 10 {
		t.Fatalf("results = %d, want only the 10 bad quartets", len(rs))
	}
	for _, r := range rs {
		if r.Blame != BlameMiddle {
			t.Fatalf("blame = %v, want middle", r.Blame)
		}
		if r.Path.Key() != badKey {
			t.Fatal("middle verdict carries the wrong path")
		}
	}
}

func TestBlameClientWhenIsolated(t *testing.T) {
	paths := make(map[pcKey]netmodel.Path)
	var qs []quartet.Quartet
	// One bad prefix among many good ones sharing its middle.
	for p := 0; p < 12; p++ {
		paths[pcKey{netmodel.PrefixID(p), 1}] = simplePath(1, 2001, netmodel.ASN(100+p))
		rtt := 30.0
		if p == 0 {
			rtt = 120
		}
		qs = append(qs, mkQuartet(p, 1, rtt, 50, 20))
	}
	th := StaticThresholds(map[netmodel.CloudID]float64{1: 35},
		map[netmodel.MiddleKey]float64{simplePath(1, 2001, 0).Key(): 35})
	l := NewLocalizer(DefaultConfig(), cloudASN, pathFunc(paths), th)
	rs := l.Localize(qs)
	if len(rs) != 1 {
		t.Fatalf("results = %d", len(rs))
	}
	if rs[0].Blame != BlameClient {
		t.Fatalf("blame = %v, want client", rs[0].Blame)
	}
	if rs[0].BlamedAS != 100 {
		t.Fatalf("blamed AS = %d, want the client AS 100", rs[0].BlamedAS)
	}
}

func TestBlameAmbiguousWhenGoodElsewhere(t *testing.T) {
	paths := make(map[pcKey]netmodel.Path)
	var qs []quartet.Quartet
	for p := 0; p < 12; p++ {
		paths[pcKey{netmodel.PrefixID(p), 1}] = simplePath(1, 2001, netmodel.ASN(100+p))
		rtt := 30.0
		if p == 0 {
			rtt = 120
		}
		qs = append(qs, mkQuartet(p, 1, rtt, 50, 20))
	}
	// Prefix 0 also reaches cloud 2 with good RTT in the same window.
	paths[pcKey{0, 2}] = simplePath(2, 2005, 100)
	qs = append(qs, mkQuartet(0, 2, 25, 50, 20))
	// Cloud 2 needs company to pass its aggregate gate — irrelevant here
	// since only cloud 1's bad quartet is localized.
	th := StaticThresholds(map[netmodel.CloudID]float64{1: 35, 2: 35},
		map[netmodel.MiddleKey]float64{simplePath(1, 2001, 0).Key(): 35})
	l := NewLocalizer(DefaultConfig(), cloudASN, pathFunc(paths), th)
	rs := l.Localize(qs)
	if len(rs) != 1 {
		t.Fatalf("results = %d", len(rs))
	}
	if rs[0].Blame != BlameAmbiguous {
		t.Fatalf("blame = %v, want ambiguous", rs[0].Blame)
	}
}

func TestBlameInsufficientCloudAggregate(t *testing.T) {
	paths := make(map[pcKey]netmodel.Path)
	var qs []quartet.Quartet
	// Only 3 quartets at the cloud: below the MinAggregate of 5.
	for p := 0; p < 3; p++ {
		paths[pcKey{netmodel.PrefixID(p), 1}] = simplePath(1, 2001, netmodel.ASN(100+p))
		qs = append(qs, mkQuartet(p, 1, 90, 50, 20))
	}
	l := NewLocalizer(DefaultConfig(), cloudASN, pathFunc(paths), nil)
	rs := l.Localize(qs)
	for _, r := range rs {
		if r.Blame != BlameInsufficient {
			t.Fatalf("blame = %v, want insufficient", r.Blame)
		}
	}
}

func TestBlameInsufficientMiddleAggregate(t *testing.T) {
	paths := make(map[pcKey]netmodel.Path)
	var qs []quartet.Quartet
	// Plenty of quartets at the cloud (mostly good), but the bad quartet's
	// middle has only itself.
	paths[pcKey{0, 1}] = simplePath(1, 2009, 100)
	qs = append(qs, mkQuartet(0, 1, 120, 50, 20))
	for p := 1; p < 12; p++ {
		paths[pcKey{netmodel.PrefixID(p), 1}] = simplePath(1, 2001, netmodel.ASN(100+p))
		qs = append(qs, mkQuartet(p, 1, 30, 50, 20))
	}
	th := StaticThresholds(map[netmodel.CloudID]float64{1: 35}, nil)
	l := NewLocalizer(DefaultConfig(), cloudASN, pathFunc(paths), th)
	rs := l.Localize(qs)
	if len(rs) != 1 {
		t.Fatalf("results = %d", len(rs))
	}
	if rs[0].Blame != BlameInsufficient {
		t.Fatalf("blame = %v, want insufficient (middle aggregate too small)", rs[0].Blame)
	}
}

// TestExactlyMinAggregateCloudIsDecidable pins the Algorithm 1 gate at its
// stated boundary: an aggregate with exactly MinAggregate (5) quartets is
// enough to decide, one fewer is not. (Regression: the gate used to demand
// MinAggregate+1.)
func TestExactlyMinAggregateCloudIsDecidable(t *testing.T) {
	build := func(n int) []Result {
		paths := make(map[pcKey]netmodel.Path)
		var qs []quartet.Quartet
		for p := 0; p < n; p++ {
			paths[pcKey{netmodel.PrefixID(p), 1}] = simplePath(1, netmodel.ASN(2000+p), netmodel.ASN(100+p))
			qs = append(qs, mkQuartet(p, 1, 90, 50, 20))
		}
		th := StaticThresholds(map[netmodel.CloudID]float64{1: 40}, nil)
		l := NewLocalizer(DefaultConfig(), cloudASN, pathFunc(paths), th)
		return l.Localize(qs)
	}

	min := DefaultConfig().MinAggregate // 5, per Algorithm 1
	for _, r := range build(min) {
		if r.Blame != BlameCloud {
			t.Fatalf("exactly MinAggregate quartets: blame = %v, want cloud", r.Blame)
		}
	}
	for _, r := range build(min - 1) {
		if r.Blame != BlameInsufficient {
			t.Fatalf("MinAggregate-1 quartets: blame = %v, want insufficient", r.Blame)
		}
	}
}

// TestExactlyMinAggregateMiddleIsDecidable pins the same boundary on the
// middle aggregate.
func TestExactlyMinAggregateMiddleIsDecidable(t *testing.T) {
	build := func(onMiddle int) []Result {
		paths := make(map[pcKey]netmodel.Path)
		var qs []quartet.Quartet
		// onMiddle bad quartets share the faulty middle 2001.
		for p := 0; p < onMiddle; p++ {
			paths[pcKey{netmodel.PrefixID(p), 1}] = simplePath(1, 2001, netmodel.ASN(100+p))
			qs = append(qs, mkQuartet(p, 1, 95, 50, 20))
		}
		// 30 good quartets elsewhere keep the cloud aggregate healthy.
		for p := onMiddle; p < onMiddle+30; p++ {
			paths[pcKey{netmodel.PrefixID(p), 1}] = simplePath(1, 2002, netmodel.ASN(100+p))
			qs = append(qs, mkQuartet(p, 1, 30, 50, 20))
		}
		th := StaticThresholds(
			map[netmodel.CloudID]float64{1: 35},
			map[netmodel.MiddleKey]float64{
				simplePath(1, 2001, 0).Key(): 38,
				simplePath(1, 2002, 0).Key(): 38,
			})
		l := NewLocalizer(DefaultConfig(), cloudASN, pathFunc(paths), th)
		return l.Localize(qs)
	}

	min := DefaultConfig().MinAggregate
	rs := build(min)
	if len(rs) != min {
		t.Fatalf("results = %d, want %d", len(rs), min)
	}
	for _, r := range rs {
		if r.Blame != BlameMiddle {
			t.Fatalf("exactly MinAggregate on the middle: blame = %v, want middle", r.Blame)
		}
	}
	for _, r := range build(min - 1) {
		if r.Blame != BlameInsufficient {
			t.Fatalf("MinAggregate-1 on the middle: blame = %v, want insufficient", r.Blame)
		}
	}
}

// TestEqualityAtExpectedRTTCountsBad locks the unified >= convention: a
// quartet whose mean RTT sits exactly at the learned expected RTT counts
// as bad in the aggregate, the same way quartet.Classify counts a mean
// exactly at the target as bad. (Regression: the aggregates used strict >.)
func TestEqualityAtExpectedRTTCountsBad(t *testing.T) {
	paths := make(map[pcKey]netmodel.Path)
	var qs []quartet.Quartet
	// Every quartet's mean RTT is exactly the cloud's expected RTT (45)
	// and above the static badness target (40), so all are bad quartets
	// and the cloud bad-fraction must be 1.0, not 0.0.
	for p := 0; p < 10; p++ {
		paths[pcKey{netmodel.PrefixID(p), 1}] = simplePath(1, netmodel.ASN(2000+p%2), netmodel.ASN(100+p))
		qs = append(qs, mkQuartet(p, 1, 45, 40, 20))
	}
	th := StaticThresholds(map[netmodel.CloudID]float64{1: 45}, nil)
	l := NewLocalizer(DefaultConfig(), cloudASN, pathFunc(paths), th)
	rs := l.Localize(qs)
	if len(rs) != 10 {
		t.Fatalf("results = %d, want 10", len(rs))
	}
	for _, r := range rs {
		if r.Blame != BlameCloud {
			t.Fatalf("RTT exactly at expected: blame = %v, want cloud", r.Blame)
		}
	}
}

// TestEqualityAtExpectedMiddleCountsBad locks the >= convention on the
// middle aggregate too.
func TestEqualityAtExpectedMiddleCountsBad(t *testing.T) {
	paths := make(map[pcKey]netmodel.Path)
	var qs []quartet.Quartet
	// 10 bad quartets whose RTT equals the middle's expected RTT exactly.
	for p := 0; p < 10; p++ {
		paths[pcKey{netmodel.PrefixID(p), 1}] = simplePath(1, 2001, netmodel.ASN(100+p))
		qs = append(qs, mkQuartet(p, 1, 45, 40, 20))
	}
	// 30 good quartets on another middle keep the cloud fraction low.
	for p := 10; p < 40; p++ {
		paths[pcKey{netmodel.PrefixID(p), 1}] = simplePath(1, 2002, netmodel.ASN(100+p))
		qs = append(qs, mkQuartet(p, 1, 20, 40, 20))
	}
	th := StaticThresholds(
		map[netmodel.CloudID]float64{1: 50}, // cloud never looks bad
		map[netmodel.MiddleKey]float64{
			simplePath(1, 2001, 0).Key(): 45, // equality on the faulty middle
			simplePath(1, 2002, 0).Key(): 45,
		})
	l := NewLocalizer(DefaultConfig(), cloudASN, pathFunc(paths), th)
	rs := l.Localize(qs)
	if len(rs) != 10 {
		t.Fatalf("results = %d, want 10", len(rs))
	}
	for _, r := range rs {
		if r.Blame != BlameMiddle {
			t.Fatalf("RTT exactly at middle expected: blame = %v, want middle", r.Blame)
		}
	}
}

// TestWorkedExampleSection43 reproduces the §4.3 worked example: with RTTs
// uniform in [40,70] after a cloud fault, a 50ms static threshold sees only
// 1/3 of quartets bad (no cloud blame at τ=0.8), while the learned 40ms
// expected RTT sees all of them shifted and correctly blames the cloud.
func TestWorkedExampleSection43(t *testing.T) {
	paths := make(map[pcKey]netmodel.Path)
	var qs []quartet.Quartet
	n := 30
	for p := 0; p < n; p++ {
		paths[pcKey{netmodel.PrefixID(p), 1}] = simplePath(1, netmodel.ASN(2000+p%3), netmodel.ASN(100+p))
		// RTTs spread uniformly across [40, 70].
		rtt := 40 + 30*float64(p)/float64(n-1)
		qs = append(qs, mkQuartet(p, 1, rtt, 50, 20))
	}
	th := StaticThresholds(map[netmodel.CloudID]float64{1: 40}, nil)

	// With learned expected RTT: every bad quartet blames the cloud.
	l := NewLocalizer(DefaultConfig(), cloudASN, pathFunc(paths), th)
	for _, r := range l.Localize(qs) {
		if r.Blame != BlameCloud {
			t.Fatalf("with expected RTT: blame = %v, want cloud", r.Blame)
		}
	}

	// Ablation: using the static 50ms threshold instead, the bad fraction
	// is ~1/3 < τ and the cloud escapes blame.
	cfg := DefaultConfig()
	cfg.UseExpectedRTT = false
	l2 := NewLocalizer(cfg, cloudASN, pathFunc(paths), th)
	for _, r := range l2.Localize(qs) {
		if r.Blame == BlameCloud {
			t.Fatal("without expected RTT the cloud should escape blame")
		}
	}
}

// TestUnweightedBadFraction verifies the deliberate design choice in
// CalcBadFraction: a single high-traffic good /24 must not mask badness
// seen by many low-traffic /24s. Weighting by samples (the ablation) does
// mask it.
func TestUnweightedBadFraction(t *testing.T) {
	paths := make(map[pcKey]netmodel.Path)
	var qs []quartet.Quartet
	// 9 bad low-traffic prefixes and 1 good whale share a middle segment.
	for p := 0; p < 9; p++ {
		paths[pcKey{netmodel.PrefixID(p), 1}] = simplePath(1, 2001, netmodel.ASN(100+p))
		qs = append(qs, mkQuartet(p, 1, 95, 50, 12))
	}
	paths[pcKey{9, 1}] = simplePath(1, 2001, 109)
	qs = append(qs, mkQuartet(9, 1, 30, 50, 5000))
	// Keep the cloud aggregate healthy with a separate good middle.
	for p := 10; p < 50; p++ {
		paths[pcKey{netmodel.PrefixID(p), 1}] = simplePath(1, 2002, netmodel.ASN(100+p))
		qs = append(qs, mkQuartet(p, 1, 30, 50, 20))
	}
	th := StaticThresholds(map[netmodel.CloudID]float64{1: 35},
		map[netmodel.MiddleKey]float64{
			simplePath(1, 2001, 0).Key(): 38,
			simplePath(1, 2002, 0).Key(): 38,
		})

	l := NewLocalizer(DefaultConfig(), cloudASN, pathFunc(paths), th)
	for _, r := range l.Localize(qs) {
		if r.Blame != BlameMiddle {
			t.Fatalf("unweighted: blame = %v, want middle", r.Blame)
		}
	}

	cfg := DefaultConfig()
	cfg.WeightBySamples = true
	l2 := NewLocalizer(cfg, cloudASN, pathFunc(paths), th)
	for _, r := range l2.Localize(qs) {
		if r.Blame == BlameMiddle {
			t.Fatal("weighted ablation should mask the middle issue")
		}
	}
}

func TestInsufficientSamplesExcluded(t *testing.T) {
	paths := make(map[pcKey]netmodel.Path)
	var qs []quartet.Quartet
	for p := 0; p < 10; p++ {
		paths[pcKey{netmodel.PrefixID(p), 1}] = simplePath(1, 2001, netmodel.ASN(100+p))
		qs = append(qs, mkQuartet(p, 1, 95, 50, 3)) // below MinSamples
	}
	l := NewLocalizer(DefaultConfig(), cloudASN, pathFunc(paths), nil)
	if rs := l.Localize(qs); len(rs) != 0 {
		t.Fatalf("under-sampled quartets produced %d verdicts", len(rs))
	}
}

func TestSummarize(t *testing.T) {
	rs := []Result{{Blame: BlameCloud}, {Blame: BlameCloud}, {Blame: BlameClient}}
	s := Summarize(rs)
	if s[BlameCloud] != 2 || s[BlameClient] != 1 {
		t.Errorf("summary = %v", s)
	}
}

func TestBlameString(t *testing.T) {
	names := map[Blame]string{
		BlameNone: "none", BlameInsufficient: "insufficient", BlameCloud: "cloud",
		BlameMiddle: "middle", BlameAmbiguous: "ambiguous", BlameClient: "client",
	}
	for b, want := range names {
		if b.String() != want {
			t.Errorf("%v != %s", b, want)
		}
	}
	if Blame(42).String() != "Blame(42)" {
		t.Error("unknown blame formatting")
	}
	if len(Categories()) != 5 {
		t.Error("Categories must list 5 verdicts")
	}
}
