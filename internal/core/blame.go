// Package core implements BlameIt's passive phase: Algorithm 1 of the
// paper. Using only the quartet-level RTT observations of existing client
// connections, it assigns the blame for each bad quartet to the cloud,
// middle, or client segment — or declares the data insufficient or
// ambiguous — by hierarchical elimination starting from the cloud.
//
// The two empirical insights of §4.1 justify the approach: (1) typically
// only one segment causes the inflation, and (2) a smaller failure set is
// more likely than a larger one, so badness across a broad spectrum of a
// cloud location's clients implicates the cloud rather than thousands of
// independent client faults.
package core

import (
	"fmt"

	"blameit/internal/metrics"
	"blameit/internal/netmodel"
	"blameit/internal/quartet"
)

// Blame is Algorithm 1's verdict for one bad quartet.
type Blame int

const (
	// BlameNone marks a quartet that was not bad (no verdict needed).
	BlameNone Blame = iota
	// BlameInsufficient: too few quartets in the aggregate to decide.
	BlameInsufficient
	// BlameCloud: the cloud location's own network or servers.
	BlameCloud
	// BlameMiddle: the transit ASes between cloud and client.
	BlameMiddle
	// BlameAmbiguous: the same /24 saw good RTT to another cloud location
	// in the same window, so no segment can be conclusively blamed.
	BlameAmbiguous
	// BlameClient: the client's own ISP.
	BlameClient
	numBlames
)

// String names the blame category as in the paper's figures.
func (b Blame) String() string {
	switch b {
	case BlameNone:
		return "none"
	case BlameInsufficient:
		return "insufficient"
	case BlameCloud:
		return "cloud"
	case BlameMiddle:
		return "middle"
	case BlameAmbiguous:
		return "ambiguous"
	case BlameClient:
		return "client"
	default:
		return fmt.Sprintf("Blame(%d)", int(b))
	}
}

// Categories lists the verdict categories in display order.
func Categories() []Blame {
	return []Blame{BlameCloud, BlameMiddle, BlameClient, BlameAmbiguous, BlameInsufficient}
}

// Config holds Algorithm 1's tunables. The defaults are the production
// values reported in the paper.
type Config struct {
	// Tau is the bad-fraction threshold for blaming an aggregate (τ = 0.8
	// in production; with median-based expected RTTs this tests whether
	// the distribution shifted left by 30%).
	Tau float64
	// MinAggregate is the minimum number of quartets an aggregate needs
	// before its bad fraction is meaningful (5 in Algorithm 1).
	MinAggregate int
	// WeightBySamples switches CalcBadFraction to weight quartets by their
	// RTT sample count. The paper deliberately leaves this off: a handful
	// of good high-traffic /24s must not mask badness seen by many
	// low-traffic /24s. Exposed for the ablation bench.
	WeightBySamples bool
	// UseExpectedRTT compares aggregates against learned expected RTTs
	// (§4.3); when false the static badness target is used instead.
	// Exposed for the ablation bench.
	UseExpectedRTT bool
}

// DefaultConfig returns the production parameters.
func DefaultConfig() Config {
	return Config{Tau: 0.8, MinAggregate: 5, WeightBySamples: false, UseExpectedRTT: true}
}

// PathFunc resolves the AS-level route of a quartet (from the BGP table in
// effect at the quartet's bucket).
type PathFunc func(p netmodel.PrefixID, c netmodel.CloudID, b netmodel.Bucket) netmodel.Path

// Result is Algorithm 1's verdict for one quartet.
type Result struct {
	Q     quartet.Quartet
	Blame Blame
	// Path is the AS-level route of the quartet; its MiddleKey groups the
	// quartets that share a middle segment.
	Path netmodel.Path
	// BlamedAS is filled for cloud and client verdicts, where the coarse
	// segment already identifies the AS. Middle verdicts need the active
	// phase for AS-level localization.
	BlamedAS netmodel.ASN
}

// MiddleKeyFunc derives the grouping key of a quartet's middle segment.
// BlameIt groups by the BGP path (the path's own MiddleKey); the ⟨AS,
// Metro⟩ baseline of Fig. 11 substitutes a coarser key.
type MiddleKeyFunc func(path netmodel.Path, p netmodel.PrefixID) netmodel.MiddleKey

// Localizer runs Algorithm 1 over one time window of quartets.
//
// A Localizer is read-only once configured: Localize touches only local
// aggregates plus the immutable cfg, thresholds, pathOf and keyOf fields,
// so one Localizer may serve any number of concurrent Localize calls (the
// pipeline fans a job's buckets out this way) provided the installed
// PathFunc and MiddleKeyFunc are themselves safe for concurrent use — the
// BGP table's path resolution is. SetMiddleKeyFunc is configuration, not
// operation: call it before sharing the Localizer across goroutines.
type Localizer struct {
	cfg     Config
	cloudAS netmodel.ASN
	pathOf  PathFunc
	th      *Thresholds
	keyOf   MiddleKeyFunc

	// Verdict counters indexed by Blame; the counters themselves are
	// atomic, so concurrent Localize calls may share them. Configuration,
	// like SetMiddleKeyFunc: install before sharing across goroutines.
	mVerdicts  [numBlames]*metrics.Counter
	mLocalized *metrics.Counter
}

// NewLocalizer builds a localizer. th may be nil, in which case the static
// badness targets stand in for learned expected RTTs.
func NewLocalizer(cfg Config, cloudAS netmodel.ASN, pathOf PathFunc, th *Thresholds) *Localizer {
	return &Localizer{
		cfg: cfg, cloudAS: cloudAS, pathOf: pathOf, th: th,
		keyOf: func(path netmodel.Path, _ netmodel.PrefixID) netmodel.MiddleKey { return path.Key() },
	}
}

// SetMiddleKeyFunc overrides how quartets are grouped into middle
// aggregates (used by the ⟨AS, Metro⟩ grouping baseline).
func (l *Localizer) SetMiddleKeyFunc(f MiddleKeyFunc) { l.keyOf = f }

// SetMetrics mirrors verdict counts into a metrics registry
// (core.verdicts.<category> counters plus core.quartets.localized). Like
// SetMiddleKeyFunc this is configuration: call it before sharing the
// Localizer across goroutines.
func (l *Localizer) SetMetrics(reg *metrics.Registry) {
	for b := Blame(0); b < numBlames; b++ {
		l.mVerdicts[b] = reg.Counter("core.verdicts." + b.String())
	}
	l.mLocalized = reg.Counter("core.quartets.localized")
}

// aggregate accumulates the per-cloud and per-middle bad fractions.
type aggregate struct {
	n      int
	bad    int
	wTotal float64
	wBad   float64
}

func (a *aggregate) add(badVsExpected bool, samples int) {
	a.n++
	a.wTotal += float64(samples)
	if badVsExpected {
		a.bad++
		a.wBad += float64(samples)
	}
}

func (a *aggregate) badFraction(weighted bool) float64 {
	if weighted {
		if a.wTotal == 0 {
			return 0
		}
		return a.wBad / a.wTotal
	}
	if a.n == 0 {
		return 0
	}
	return float64(a.bad) / float64(a.n)
}

// expectedCloud returns the reference RTT for a cloud aggregate.
func (l *Localizer) expectedCloud(c netmodel.CloudID, d netmodel.DeviceClass, fallback float64) float64 {
	if l.cfg.UseExpectedRTT && l.th != nil {
		if v, ok := l.th.CloudExpected(c, d); ok {
			return v
		}
	}
	return fallback
}

// expectedMiddle returns the reference RTT for a middle aggregate.
func (l *Localizer) expectedMiddle(k netmodel.MiddleKey, d netmodel.DeviceClass, fallback float64) float64 {
	if l.cfg.UseExpectedRTT && l.th != nil {
		if v, ok := l.th.MiddleExpected(k, d); ok {
			return v
		}
	}
	return fallback
}

// Localize assigns blame to every bad quartet in the window. All quartets
// of the window (good and bad) must be passed: the good ones feed the
// aggregates and the ambiguity check. Quartets failing the sample gate are
// excluded from aggregates, as in the paper.
func (l *Localizer) Localize(qs []quartet.Quartet) []Result {
	clouds := make(map[netmodel.CloudID]*aggregate)
	middles := make(map[netmodel.MiddleKey]*aggregate)
	goodClouds := make(map[netmodel.PrefixID][]netmodel.CloudID) // clouds each prefix reached with good RTT
	paths := make([]netmodel.Path, len(qs))

	for i, q := range qs {
		if !q.Enough {
			continue
		}
		o := q.Obs
		paths[i] = l.pathOf(o.Prefix, o.Cloud, o.Bucket)
		// Cloud aggregate: compare against the location's expected RTT.
		ca := clouds[o.Cloud]
		if ca == nil {
			ca = &aggregate{}
			clouds[o.Cloud] = ca
		}
		// Equality counts as bad, matching quartet.Classify's >= gate so
		// the aggregate test and the per-quartet test agree at the
		// threshold.
		ca.add(o.MeanRTT >= l.expectedCloud(o.Cloud, o.Device, q.Target), o.Samples)
		// Middle aggregate, keyed by the BGP path (or the override).
		mk := l.keyOf(paths[i], o.Prefix)
		ma := middles[mk]
		if ma == nil {
			ma = &aggregate{}
			middles[mk] = ma
		}
		ma.add(o.MeanRTT >= l.expectedMiddle(mk, o.Device, q.Target), o.Samples)
		if !q.Bad {
			goodClouds[o.Prefix] = append(goodClouds[o.Prefix], o.Cloud)
		}
	}

	if l.mLocalized != nil {
		var enough int64
		for _, q := range qs {
			if q.Enough {
				enough++
			}
		}
		l.mLocalized.Add(enough)
	}

	results := make([]Result, 0, len(qs))
	for i, q := range qs {
		if !q.Enough || !q.Bad {
			continue
		}
		o := q.Obs
		path := paths[i] // resolved above: every Enough quartet has its path
		res := Result{Q: q, Path: path}
		mk := l.keyOf(path, o.Prefix)
		switch {
		// An aggregate with exactly MinAggregate quartets is decidable:
		// Algorithm 1 requires "at least" MinAggregate (5) quartets.
		case clouds[o.Cloud] == nil || clouds[o.Cloud].n < l.cfg.MinAggregate:
			res.Blame = BlameInsufficient
		case clouds[o.Cloud].badFraction(l.cfg.WeightBySamples) >= l.cfg.Tau:
			res.Blame = BlameCloud
			res.BlamedAS = l.cloudAS
		case middles[mk] == nil || middles[mk].n < l.cfg.MinAggregate:
			res.Blame = BlameInsufficient
		case middles[mk].badFraction(l.cfg.WeightBySamples) >= l.cfg.Tau:
			res.Blame = BlameMiddle
		case goodToAnotherCloud(goodClouds[o.Prefix], o.Cloud):
			res.Blame = BlameAmbiguous
		default:
			res.Blame = BlameClient
			res.BlamedAS = path.Client
		}
		results = append(results, res)
	}
	// Batch the per-category counts into the shared atomic counters (one
	// Add per category per call, not per verdict).
	var byCat [numBlames]int64
	for _, r := range results {
		byCat[r.Blame]++
	}
	for b, n := range byCat {
		if n > 0 {
			l.mVerdicts[b].Add(n)
		}
	}
	return results
}

// goodToAnotherCloud reports whether any of the clouds a prefix reached
// with good RTT differs from the bad quartet's cloud.
func goodToAnotherCloud(goodClouds []netmodel.CloudID, bad netmodel.CloudID) bool {
	for _, c := range goodClouds {
		if c != bad {
			return true
		}
	}
	return false
}

// Summarize counts verdicts by category.
func Summarize(rs []Result) map[Blame]int {
	out := make(map[Blame]int)
	for _, r := range rs {
		out[r.Blame]++
	}
	return out
}
