package core

import (
	"blameit/internal/netmodel"
	"blameit/internal/stats"
)

// Thresholds holds the learned expected RTTs of §4.3: per cloud location
// and per middle segment (BGP path), split by device class. They are the
// medians of the RTT values observed over the trailing learning window
// (14 days in production).
type Thresholds struct {
	cloud  map[cloudDevKey]float64
	middle map[middleDevKey]float64
}

type cloudDevKey struct {
	c netmodel.CloudID
	d netmodel.DeviceClass
}

type middleDevKey struct {
	k netmodel.MiddleKey
	d netmodel.DeviceClass
}

// CloudExpected returns the learned expected RTT of clients connecting to
// a cloud location.
func (t *Thresholds) CloudExpected(c netmodel.CloudID, d netmodel.DeviceClass) (float64, bool) {
	v, ok := t.cloud[cloudDevKey{c, d}]
	return v, ok
}

// MiddleExpected returns the learned expected RTT of connections
// traversing a middle segment.
func (t *Thresholds) MiddleExpected(k netmodel.MiddleKey, d netmodel.DeviceClass) (float64, bool) {
	v, ok := t.middle[middleDevKey{k, d}]
	return v, ok
}

// NumCloudEntries returns how many (cloud, device) medians were learned.
func (t *Thresholds) NumCloudEntries() int { return len(t.cloud) }

// NumMiddleEntries returns how many (middle, device) medians were learned.
func (t *Thresholds) NumMiddleEntries() int { return len(t.middle) }

// reservoir is a deterministic fixed-capacity uniform sample (algorithm R
// with a hash-derived random index), bounding the learner's memory while
// keeping the median estimate unbiased.
type reservoir struct {
	vals []float64
	n    int // values offered so far
}

const reservoirCap = 2048

// resMix hashes the offer index for deterministic replacement decisions.
func resMix(a, b uint64) uint64 {
	h := a*0x9E3779B97F4A7C15 + b
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return h
}

func (r *reservoir) add(v float64, salt uint64) {
	r.n++
	if len(r.vals) < reservoirCap {
		r.vals = append(r.vals, v)
		return
	}
	j := resMix(uint64(r.n), salt) % uint64(r.n)
	if j < reservoirCap {
		r.vals[j] = v
	}
}

func (r *reservoir) median() (float64, bool) {
	if len(r.vals) == 0 {
		return 0, false
	}
	return stats.Median(r.vals), true
}

// Learner accumulates RTT observations over a learning window and produces
// Thresholds. In production this runs over the trailing 14 days; the
// reproduction feeds it warmup observations.
type Learner struct {
	cloud  map[cloudDevKey]*reservoir
	middle map[middleDevKey]*reservoir
}

// NewLearner creates an empty threshold learner.
func NewLearner() *Learner {
	return &Learner{
		cloud:  make(map[cloudDevKey]*reservoir),
		middle: make(map[middleDevKey]*reservoir),
	}
}

// AddCloud records one quartet-mean RTT for a cloud location.
func (l *Learner) AddCloud(c netmodel.CloudID, d netmodel.DeviceClass, rtt float64) {
	key := cloudDevKey{c, d}
	r := l.cloud[key]
	if r == nil {
		r = &reservoir{}
		l.cloud[key] = r
	}
	r.add(rtt, uint64(c)<<8|uint64(d))
}

// AddMiddle records one quartet-mean RTT for a middle segment.
func (l *Learner) AddMiddle(k netmodel.MiddleKey, d netmodel.DeviceClass, rtt float64) {
	key := middleDevKey{k, d}
	r := l.middle[key]
	if r == nil {
		r = &reservoir{}
		l.middle[key] = r
	}
	var salt uint64
	for i := 0; i < len(k); i++ {
		salt = salt*131 + uint64(k[i])
	}
	r.add(rtt, salt<<8|uint64(d))
}

// AddObservation records a quartet-mean RTT into both the cloud and middle
// aggregates it belongs to.
func (l *Learner) AddObservation(c netmodel.CloudID, k netmodel.MiddleKey, d netmodel.DeviceClass, rtt float64) {
	l.AddCloud(c, d, rtt)
	l.AddMiddle(k, d, rtt)
}

// Snapshot computes the current medians.
func (l *Learner) Snapshot() *Thresholds {
	t := &Thresholds{
		cloud:  make(map[cloudDevKey]float64, len(l.cloud)),
		middle: make(map[middleDevKey]float64, len(l.middle)),
	}
	for k, r := range l.cloud {
		if m, ok := r.median(); ok {
			t.cloud[k] = m
		}
	}
	for k, r := range l.middle {
		if m, ok := r.median(); ok {
			t.middle[k] = m
		}
	}
	return t
}

// StaticThresholds builds Thresholds directly from known expected values,
// for tests and worked examples.
func StaticThresholds(cloud map[netmodel.CloudID]float64, middle map[netmodel.MiddleKey]float64) *Thresholds {
	t := &Thresholds{
		cloud:  make(map[cloudDevKey]float64),
		middle: make(map[middleDevKey]float64),
	}
	for c, v := range cloud {
		for d := 0; d < netmodel.NumDeviceClasses; d++ {
			t.cloud[cloudDevKey{c, netmodel.DeviceClass(d)}] = v
		}
	}
	for k, v := range middle {
		for d := 0; d < netmodel.NumDeviceClasses; d++ {
			t.middle[middleDevKey{k, netmodel.DeviceClass(d)}] = v
		}
	}
	return t
}
