package server

import (
	"bytes"
	"net/http"
	"testing"
	"time"

	"blameit/internal/trace"
)

// TestServiceMillionRecordBucket: the daemon must sustain a bucket of a
// million records delivered over HTTP — the paper's hundreds-of-billions
// -per-day scale collapsed onto one 5-minute bucket — with exact
// accounting: every record either survives into the step or is counted
// in the quarantine, and the window still localizes and reports.
func TestServiceMillionRecordBucket(t *testing.T) {
	if testing.Short() {
		t.Skip("million-record ingest in -short mode")
	}
	const target = 1_000_000
	e := newTestEnv(t, nil)
	obs := e.bucketObs(0)
	unique := len(obs)
	if unique == 0 {
		t.Fatal("bucket 0 generated no observations")
	}

	// Tile the bucket's observation set up to a million records: repeats
	// beyond the first occurrence are (prefix, cloud, device) duplicates,
	// which the pipeline's quarantine must count — ingestion-path volume
	// is what this test loads, not unique quartets.
	var body bytes.Buffer
	if err := trace.WriteJSONL(&body, obs); err != nil {
		t.Fatal(err)
	}
	tile := append([]byte(nil), body.Bytes()...)
	total := unique
	const batchBytes = 8 << 20
	start := time.Now()
	flush := func() {
		if body.Len() == 0 {
			return
		}
		postWithRetry(t, e.ts.Client(), e.ts.URL+"/v1/ingest", body.Bytes())
		body.Reset()
	}
	for total < target {
		body.Write(tile)
		total += unique
		if body.Len() >= batchBytes {
			flush()
		}
	}
	flush()
	elapsed := time.Since(start)

	e.seal(t, 0)
	e.shutdown(t) // steps bucket 0, flushes the window, surfaces any backend error

	_, h := e.health(t)
	if h.Ingested != int64(total) {
		t.Fatalf("ingested = %d, want %d", h.Ingested, total)
	}
	q := e.srv.Pipeline().Quarantine()
	if dups := q.Total(); dups != int64(total-unique) {
		t.Fatalf("quarantined = %d (%s), want %d duplicates", dups, q, total-unique)
	}
	if status, _ := e.get(t, "/v1/reports/0"); status != http.StatusOK {
		t.Fatalf("GET /v1/reports/0 = %d, want 200 after the drain", status)
	}
	t.Logf("ingested %d records over HTTP in %v (%.0f records/sec)",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
}
