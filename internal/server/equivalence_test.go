package server

import (
	"bufio"
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"blameit/internal/bgp"
	"blameit/internal/faults"
	"blameit/internal/netmodel"
	"blameit/internal/pipeline"
	"blameit/internal/probe"
	"blameit/internal/sim"
	"blameit/internal/topology"
	"blameit/internal/trace"
)

// The service equivalence test replays the same workload the batch
// replay-equivalence gate in internal/pipeline uses: the medium-scale
// world with a random fault mix plus a marker cloud fault, half a day of
// warmup and half a day of localization.
const (
	replayWarmup  = netmodel.Bucket(netmodel.BucketsPerDay / 2)
	replayHorizon = netmodel.Bucket(netmodel.BucketsPerDay)
)

// replaySimFor builds one fresh simulator for the replay workload; live
// and service runs must not share an instance.
func replaySimFor(scale topology.Scale, workers int) *sim.Simulator {
	w := topology.Generate(scale, 7)
	fs := faults.Generate(w, faults.DefaultGenerateConfig(), replayHorizon, 8).Faults
	fs = append(fs, faults.Fault{
		Kind: faults.CloudFault, Cloud: w.CloudsInRegion(netmodel.RegionIndia)[0], ScopeCloud: faults.NoCloud,
		Start: replayWarmup + 2*netmodel.BucketsPerHour, Duration: 12, ExtraMS: 80,
	})
	tbl := bgp.NewTable(w, bgp.DefaultChurnConfig(), replayHorizon, 9)
	scfg := sim.DefaultConfig(10)
	scfg.Workers = workers
	return sim.New(w, tbl, faults.NewSchedule(fs), scfg)
}

// batchCanonicalStream is the reference: the batch CLI's live run over
// the workload, reports concatenated as canonical JSON lines.
func batchCanonicalStream(t *testing.T, scale topology.Scale) []byte {
	t.Helper()
	cfg := pipeline.DefaultConfig()
	cfg.Workers = 1
	p := pipeline.NewSim(replaySimFor(scale, 1), cfg)
	if err := p.Warmup(0, replayWarmup); err != nil {
		t.Fatalf("batch warmup: %v", err)
	}
	var out bytes.Buffer
	err := p.Run(replayWarmup, replayHorizon, func(rep *pipeline.Report) {
		buf, err := rep.CanonicalJSON()
		if err != nil {
			t.Fatalf("canonicalize report: %v", err)
		}
		out.Write(buf)
		out.WriteByte('\n')
	})
	if err != nil {
		t.Fatalf("batch run: %v", err)
	}
	return out.Bytes()
}

// writeServiceTrace records the workload's full observation trace
// (warmup included) as a JSONL file, exactly as blameit-tracegen would.
func writeServiceTrace(t *testing.T, scale topology.Scale) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s := replaySimFor(scale, 1)
	var buf []trace.Observation
	for b := netmodel.Bucket(0); b < replayHorizon; b++ {
		buf = s.ObservationsAt(b, buf[:0])
		if err := trace.WriteJSONL(f, buf); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

// serviceCanonicalStream replays the recorded trace over HTTP into a
// live daemon — batched POSTs, a final seal, a graceful drain — and
// rebuilds the canonical report stream from the read APIs.
func serviceCanonicalStream(t *testing.T, scale topology.Scale, tracePath string, workers int) []byte {
	t.Helper()
	s := replaySimFor(scale, workers) // serves probes only
	pcfg := pipeline.DefaultConfig()
	pcfg.Workers = workers
	srv, err := New(pipeline.Deps{
		World:  s.World,
		Table:  s.Routes,
		Prober: probe.NewEngine(s, pcfg.ProbeNoiseMS),
	}, Config{Pipeline: pcfg, WarmupBuckets: replayWarmup})
	if err != nil {
		t.Fatalf("server.New (workers=%d): %v", workers, err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	const batchLines = 8192
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var batch bytes.Buffer
	lines := 0
	flush := func() {
		if lines == 0 {
			return
		}
		postWithRetry(t, client, ts.URL+"/v1/ingest", batch.Bytes())
		batch.Reset()
		lines = 0
	}
	for sc.Scan() {
		batch.Write(sc.Bytes())
		batch.WriteByte('\n')
		if lines++; lines >= batchLines {
			flush()
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scanning trace: %v", err)
	}
	flush()

	// Seal the final bucket (no later record arrives to do it implicitly),
	// then drain: the backend steps everything queued and exits cleanly.
	status, body := postSeal(t, client, ts.URL, replayHorizon-1)
	if status != 202 {
		t.Fatalf("seal = %d (%s), want 202", status, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown (workers=%d): %v", workers, err)
	}
	return collectCanonical(t, client, ts.URL)
}

// TestServiceReplayEquivalence is the acceptance gate for blameitd: a
// trace replayed over HTTP into the live daemon must produce reports
// byte-identical to the batch CLI's run over the same telemetry, at
// job parallelism 1 and 4. This is the control-inversion proof — the
// event-driven step-on-seal backend and the pull-driven batch loop are
// the same pipeline.
func TestServiceReplayEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-scale service equivalence in -short mode")
	}
	scale := topology.MediumScale()
	want := batchCanonicalStream(t, scale)
	if len(want) == 0 {
		t.Fatal("batch run produced no reports")
	}
	tracePath := writeServiceTrace(t, scale)
	for _, workers := range []int{1, 4} {
		got := serviceCanonicalStream(t, scale, tracePath, workers)
		if !bytes.Equal(got, want) {
			t.Fatalf("HTTP service replay (workers=%d) diverged from the batch run: %d vs %d canonical bytes",
				workers, len(got), len(want))
		}
	}
}
