// Package server is blameitd: the BlameIt pipeline stood up as a
// long-running HTTP service with a frontend/backend split, mirroring the
// production shape of Fig. 7 — collection at the edge, an ingestion tier,
// and a periodic localization job over the sealed buckets.
//
// The frontend accepts JSONL observation batches on POST /v1/ingest
// (decoded by the same alloc-free canonical scanner the batch replay path
// uses), with bounded request bodies and queue backpressure. The backend
// is one worker goroutine that owns the pipeline — which is not safe for
// concurrent use and never needs to be — and steps it bucket by bucket as
// buckets seal in the ingest queue. Because the backend drives the very
// same WarmupContext/StepContext entry points the batch CLI drives, and
// reads through the same ingest.ObservationSource seam, a trace replayed
// over HTTP produces reports byte-identical to `blameit -replay` over the
// same file.
//
// Read APIs: GET /v1/verdicts (localizations across retained reports),
// GET /v1/reports and /v1/reports/{bucket} (canonical report JSON),
// GET /healthz (fed by the latest Report.Health), and GET /metrics (the
// pipeline registry's JSON snapshot).
package server

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"blameit/internal/ingest"
	"blameit/internal/metrics"
	"blameit/internal/netmodel"
	"blameit/internal/pipeline"
	"blameit/internal/quartet"
	"blameit/internal/wal"
)

// Config assembles the service tunables around an embedded pipeline
// configuration.
type Config struct {
	// Pipeline configures the backend's localization pipeline.
	Pipeline pipeline.Config
	// WarmupBuckets is how many leading buckets feed expected-RTT learning
	// before the step loop starts (the batch CLI's warmup days). 0 starts
	// localizing immediately with empty thresholds.
	WarmupBuckets netmodel.Bucket
	// MaxBatchBytes bounds one ingest request body; larger bodies get 413.
	// 0 takes DefaultMaxBatchBytes.
	MaxBatchBytes int64
	// MaxPendingRecords bounds the ingest queue; a batch that would exceed
	// it gets 429 until the backend drains. 0 takes
	// DefaultMaxPendingRecords; negative is invalid.
	MaxPendingRecords int
	// MaxReports bounds the retained report log (oldest evicted first).
	// 0 takes DefaultMaxReports; negative is invalid.
	MaxReports int
	// ManualSeal disables the streaming watermark: buckets seal only via
	// POST /v1/seal (or shutdown drain), never implicitly by the arrival
	// of later-bucket records. Use it when concurrent collectors deliver
	// buckets out of order.
	ManualSeal bool
	// DataDir, when set, enables the write-ahead log: ingested buckets
	// and published reports are journaled under it, and the next New
	// over the same directory replays the journal — reconstructing the
	// backend byte-exactly — before serving traffic. Empty disables
	// durability entirely (the seed behavior).
	DataDir string
	// WAL tunes the write-ahead log; used only when DataDir is set. An
	// empty WAL.Meta gets a fingerprint derived from this Config.
	WAL wal.Config
	// CompactEveryReports compacts the WAL after every N newly journaled
	// reports. 0 takes DefaultCompactEveryReports; negative disables
	// compaction.
	CompactEveryReports int
}

// Defaults for the zero-valued Config fields.
const (
	DefaultMaxBatchBytes     = 32 << 20
	DefaultMaxPendingRecords = 4 << 20
	DefaultMaxReports        = 4096
)

// Validate rejects configurations with no meaningful interpretation.
func (c Config) Validate() error {
	switch {
	case c.WarmupBuckets < 0:
		return fmt.Errorf("server: WarmupBuckets %d must be >= 0", c.WarmupBuckets)
	case c.MaxBatchBytes < 0:
		return fmt.Errorf("server: MaxBatchBytes %d must be >= 0 (0 = default)", c.MaxBatchBytes)
	case c.MaxPendingRecords < 0:
		return fmt.Errorf("server: MaxPendingRecords %d must be >= 0 (0 = default)", c.MaxPendingRecords)
	case c.MaxReports < 0:
		return fmt.Errorf("server: MaxReports %d must be >= 0 (0 = default)", c.MaxReports)
	}
	return c.Pipeline.Validate()
}

// DefaultConfig returns the production-like service configuration.
func DefaultConfig() Config {
	return Config{
		Pipeline:      pipeline.DefaultConfig(),
		WarmupBuckets: netmodel.BucketsPerDay,
	}
}

// storedReport is one retained report with its canonical rendering
// computed once at publish time.
type storedReport struct {
	seq       int64
	rep       *pipeline.Report
	canonical []byte
}

// reportLog retains the most recent reports for the read APIs.
type reportLog struct {
	mu      sync.Mutex
	reports []storedReport
	nextSeq int64
	max     int
}

func (l *reportLog) add(rep *pipeline.Report, canonical []byte) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	seq := l.nextSeq
	l.reports = append(l.reports, storedReport{seq: seq, rep: rep, canonical: canonical})
	l.nextSeq++
	if l.max > 0 && len(l.reports) > l.max {
		n := copy(l.reports, l.reports[len(l.reports)-l.max:])
		for i := n; i < len(l.reports); i++ {
			l.reports[i] = storedReport{}
		}
		l.reports = l.reports[:n]
	}
	return seq
}

// replace swaps the regenerated report into a restored entry, keeping
// its seq and canonical bytes. Restart recovery uses it to graft the
// Health and Metrics — which the canonical form excludes — back onto
// reports restored from the WAL once the replay regenerates them.
func (l *reportLog) replace(seq int64, rep *pipeline.Report) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range l.reports {
		if l.reports[i].seq == seq {
			l.reports[i].rep = rep
			return
		}
	}
}

// snapshot returns the retained reports, oldest first.
func (l *reportLog) snapshot() []storedReport {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]storedReport, len(l.reports))
	copy(out, l.reports)
	return out
}

// byBucket returns the retained report whose window covers b.
func (l *reportLog) byBucket(b netmodel.Bucket) (storedReport, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range l.reports {
		if r := l.reports[i]; r.rep.From <= b && b <= r.rep.To {
			return r, true
		}
	}
	return storedReport{}, false
}

// latest returns the most recent report.
func (l *reportLog) latest() (storedReport, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.reports) == 0 {
		return storedReport{}, false
	}
	return l.reports[len(l.reports)-1], true
}

func (l *reportLog) count() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// Server is the assembled daemon: an HTTP frontend over the ingest queue
// and one backend worker driving the pipeline. Create it with New, serve
// Handler() on any net/http server (or httptest), and stop it with
// Shutdown.
type Server struct {
	cfg  Config
	pipe *pipeline.Pipeline
	q    *ingestQueue
	reg  *metrics.Registry
	mux  *http.ServeMux

	reports reportLog

	// frontQuar collects records the FRONTEND refuses — undecodable lines
	// of salvage-mode batches — before they ever reach the queue. The
	// backend's quarantine (pipeline.Quarantine) handles late, corrupt,
	// and duplicate records at step time; both report into the same
	// ingest.quarantine.* counters. Guarded by frontMu: handlers run
	// concurrently and Quarantine is single-goroutine.
	frontMu   sync.Mutex
	frontQuar *ingest.Quarantine

	// agg buffers the /v1/aggregates feed's per-bucket merged aggregates
	// until their buckets complete and flush into the queue. Guarded by
	// aggMu: handlers run concurrently and quartet.Aggregate is
	// single-goroutine.
	aggMu sync.Mutex
	agg   aggState

	// wal, when non-nil, is the durability layer (Config.DataDir set).
	wal *walState

	mBatches     *metrics.Counter
	mRecords     *metrics.Counter
	mRejected    *metrics.Counter
	mOversized   *metrics.Counter
	mBackpress   *metrics.Counter
	mSeals       *metrics.Counter
	gQueueDepth  *metrics.Gauge
	mReportsPub  *metrics.Counter
	mAggBatches  *metrics.Counter
	mAggCells    *metrics.Counter
	mAggPartials *metrics.Counter
	mAggDeduped  *metrics.Counter
	mAggFlushed  *metrics.Counter
	mAggRejected *metrics.Counter

	bctx     context.Context
	bcancel  context.CancelFunc
	done     chan struct{}
	draining atomic.Bool

	errMu sync.Mutex
	err   error
}

// New assembles a server over the pipeline's external dependencies and
// starts the backend worker. deps.Source must be nil: the server installs
// its ingest queue as the pipeline's observation source — that seam is the
// whole point of the daemon. World, Table, and Prober are required, as for
// pipeline.New.
func New(deps pipeline.Deps, cfg Config) (*Server, error) {
	if deps.Source != nil {
		return nil, fmt.Errorf("server: deps.Source must be nil; the server feeds the pipeline from its HTTP ingest queue")
	}
	if deps.Aggregates != nil {
		return nil, fmt.Errorf("server: deps.Aggregates must be nil; POST /v1/aggregates feeds edge partials through the ingest queue")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxBatchBytes == 0 {
		cfg.MaxBatchBytes = DefaultMaxBatchBytes
	}
	if cfg.MaxPendingRecords == 0 {
		cfg.MaxPendingRecords = DefaultMaxPendingRecords
	}
	if cfg.MaxReports == 0 {
		cfg.MaxReports = DefaultMaxReports
	}
	s := &Server{
		cfg:  cfg,
		q:    newIngestQueue(cfg.MaxPendingRecords, cfg.ManualSeal),
		done: make(chan struct{}),
	}
	deps.Source = s.q
	s.pipe = pipeline.New(deps, cfg.Pipeline)
	s.reg = s.pipe.Metrics
	s.reports.max = cfg.MaxReports
	s.frontQuar = ingest.NewQuarantine(netmodel.PrefixID(len(deps.World.Prefixes)), len(deps.World.Clouds))
	s.frontQuar.SetMetrics(s.reg)
	s.mBatches = s.reg.Counter("server.ingest.batches")
	s.mRecords = s.reg.Counter("server.ingest.records")
	s.mRejected = s.reg.Counter("server.ingest.rejected_batches")
	s.mOversized = s.reg.Counter("server.ingest.oversized")
	s.mBackpress = s.reg.Counter("server.ingest.backpressure")
	s.mSeals = s.reg.Counter("server.seal.requests")
	s.gQueueDepth = s.reg.Gauge("server.ingest.queue_depth")
	s.mReportsPub = s.reg.Counter("server.reports.published")
	s.agg.pending = make(map[netmodel.Bucket]*quartet.Aggregate)
	s.mAggBatches = s.reg.Counter("server.aggregates.batches")
	s.mAggCells = s.reg.Counter("server.aggregates.cells")
	s.mAggPartials = s.reg.Counter("server.aggregates.partials")
	s.mAggDeduped = s.reg.Counter("server.aggregates.deduped")
	s.mAggFlushed = s.reg.Counter("server.aggregates.flushed_records")
	s.mAggRejected = s.reg.Counter("server.aggregates.rejected_batches")
	s.mux = http.NewServeMux()
	s.routes()
	s.bctx, s.bcancel = context.WithCancel(context.Background())
	// With a data directory, open the WAL and restore the journaled
	// reports BEFORE the backend starts, then replay the consumed
	// history through it before New returns: callers get a server whose
	// state is already byte-equivalent to the pre-crash one.
	var rec *wal.Recovery
	if cfg.DataDir != "" {
		var err error
		if rec, err = s.openWAL(cfg); err != nil {
			return nil, err
		}
	}
	go s.run()
	if rec != nil {
		if err := s.replayRecovery(rec); err != nil {
			s.q.Close()
			s.bcancel()
			<-s.done
			s.wal.log.Close()
			return nil, err
		}
	}
	return s, nil
}

// Handler returns the frontend's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Pipeline exposes the backend pipeline for inspection (tests, the CLI's
// exit summary). The backend goroutine owns its mutable state; read it
// only after Shutdown has returned.
func (s *Server) Pipeline() *pipeline.Pipeline { return s.pipe }

// Reports returns how many reports the backend has published.
func (s *Server) Reports() int64 { return s.reports.count() }

// WALHealth returns the durability summary /healthz serves, or nil when
// the server runs without a data directory.
func (s *Server) WALHealth() *WALHealth {
	if s.wal == nil {
		return nil
	}
	return s.wal.health()
}

// Err returns the backend's terminal error, if it failed.
func (s *Server) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

func (s *Server) setErr(err error) {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	if s.err == nil {
		s.err = err
	}
}

// run is the backend worker: learn over the warmup buckets, then step the
// pipeline once per sealed bucket until the queue drains, publishing each
// job report. It is the batch CLI's warmup+run loop inverted — the loop no
// longer pulls buckets toward a fixed horizon; the queue's seals push it
// forward.
func (s *Server) run() {
	defer close(s.done)
	ctx := s.bctx
	if s.cfg.WarmupBuckets > 0 {
		if err := s.pipe.WarmupContext(ctx, 0, s.cfg.WarmupBuckets); err != nil {
			s.setErr(fmt.Errorf("server: warmup: %w", err))
			return
		}
	} else {
		s.pipe.SetThresholds(s.pipe.Learner.Snapshot())
	}
	for b := s.cfg.WarmupBuckets; ; b++ {
		if !s.q.awaitBucket(ctx, b) {
			break
		}
		rep, err := s.pipe.StepContext(ctx, b)
		if err != nil {
			s.setErr(fmt.Errorf("server: step bucket %d: %w", b, err))
			return
		}
		s.publish(rep)
		// The step is fully done — pipeline mutation and publication.
		// WAL replay synchronizes on this barrier before touching
		// pipeline state between replayed buckets.
		s.q.markStepped(b)
		pending, _ := s.q.Depth()
		s.gQueueDepth.Set(int64(pending))
	}
	if err := ctx.Err(); err != nil {
		s.setErr(err)
		return
	}
	// Drain complete: flush the partial window so the records of a run
	// that stopped off the job cadence still get localized and reported.
	rep, err := s.pipe.FinalizeContext(context.Background())
	if err != nil {
		s.setErr(fmt.Errorf("server: finalize: %w", err))
		return
	}
	s.publish(rep)
}

// publish renders, retains, and journals one report. A nil report (a
// step between job runs) is a no-op. During WAL replay a regenerated
// report is already journaled and already restored into the log: it is
// verified against the journaled bytes and grafted onto the restored
// entry instead of being appended again.
func (s *Server) publish(rep *pipeline.Report) {
	if rep == nil {
		return
	}
	canonical, err := rep.CanonicalJSON()
	if err != nil {
		s.setErr(fmt.Errorf("server: canonicalize report [%d, %d]: %w", rep.From, rep.To, err))
		return
	}
	if s.wal != nil {
		if seq, replayed := s.wal.consumeReplayed(rep, canonical); replayed {
			s.reports.replace(seq, rep)
			s.mReportsPub.Inc()
			return
		}
	}
	seq := s.reports.add(rep, canonical)
	s.mReportsPub.Inc()
	if s.wal != nil {
		s.wal.journalReport(seq, rep, canonical)
	}
}

// Shutdown drains the daemon gracefully: ingestion stops (new batches get
// 503), every bucket already queued is stepped, the in-flight window is
// flushed as a final report, and the backend exits. If ctx expires first,
// the backend is cancelled hard. Returns the backend's terminal error
// (nil after a clean drain).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	// Flush every buffered aggregate bucket before closing the queue, so
	// a fleet run that never sent a trailing seal still gets its last
	// buckets localized. Backpressure clears as the backend drains. The
	// flush is bounded by the highest buffered bucket, not an arbitrary
	// huge seal: the seal it implies is journaled and replayed on
	// restart, and the backend walks every sealed bucket.
	for {
		s.aggMu.Lock()
		through := netmodel.Bucket(-1)
		for b := range s.agg.pending {
			if b > through {
				through = b
			}
		}
		s.aggMu.Unlock()
		if through < 0 {
			break
		}
		err := s.flushAggregates(through)
		if err == nil || ctx.Err() != nil {
			break
		}
		select {
		case <-time.After(2 * time.Millisecond):
		case <-ctx.Done():
		}
	}
	s.q.Close()
	select {
	case <-s.done:
	case <-ctx.Done():
		s.bcancel()
		<-s.done
	}
	s.bcancel()
	if s.wal != nil {
		// Everything the backend will ever journal is journaled; sync
		// and close so even SyncOff leaves a complete log behind.
		if err := s.wal.log.Close(); err != nil {
			s.wal.absorb(err)
		}
	}
	return s.Err()
}
